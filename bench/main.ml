(* Benchmark harness.

   Part 1 regenerates every table the paper reproduction produces (E1-E10)
   and prints the pass/fail summary — this is the artifact the EXPERIMENTS.md
   numbers come from.

   Part 2 runs one Bechamel micro-benchmark per experiment, timing the
   computational kernel behind each table (synthesis flow, STA, placement,
   dual-rail mapping, Monte Carlo, ...), so regressions in the engines are
   visible.

   With [--kernels-json PATH] the harness instead times the hot kernels the
   performance work targets (STA, annealing placement, Monte Carlo at 1/2/4
   domains, the percentile-heavy MC flow) and writes machine-readable
   ns/run to PATH, with the pre-optimization baselines embedded for
   before/after comparison. *)

open Bechamel
open Toolkit

let regenerate_tables () =
  print_endline "=== reproduction tables (E1-E10) + extensions (X1-X3) ===";
  let results =
    Gap_experiments.Registry.run_all () @ Gap_experiments.Registry.run_extensions ()
  in
  List.iter Gap_experiments.Exp.print results;
  print_newline ();
  print_string (Gap_experiments.Registry.summary results);
  print_newline ()

(* ---- shared prebuilt inputs so the staged functions time only the kernel ---- *)

let tech = Gap_tech.Tech.asic_025um
let rich_lib = Gap_liberty.Libgen.(make tech rich)
let domino_lib = Gap_liberty.Libgen.(make tech domino)
let cla8 = Gap_datapath.Adders.cla_adder 8
let mult8 = Gap_datapath.Multiplier.array_multiplier ~width:8
let ks16 = Gap_datapath.Adders.kogge_stone_adder 16
let alu16_netlist = lazy (Gap_synth.Mapper.map_aig ~lib:rich_lib (Gap_datapath.Alu.alu 16))
let mult6_netlist = lazy (Gap_synth.Mapper.map_aig ~lib:rich_lib (Gap_datapath.Multiplier.array_multiplier ~width:6))
let factors = lazy (Gap_core.Factors.all ())

let bench_tests =
  Test.make_grouped ~name:"gap"
    [
      Test.make ~name:"e1_processor_table"
        (Staged.stage (fun () ->
             List.map Gap_uarch.Processors.modeled_mhz Gap_uarch.Processors.all));
      Test.make ~name:"e2_factor_flow_kernel"
        (Staged.stage (fun () ->
             Gap_synth.Flow.run ~lib:rich_lib
               ~effort:{ Gap_synth.Flow.default_effort with Gap_synth.Flow.tilos_moves = 50 }
               cla8));
      Test.make ~name:"e3_pipelining"
        (Staged.stage (fun () ->
             let nl = Gap_synth.Mapper.map_aig ~lib:rich_lib mult8 in
             Gap_retime.Pipeline.pipeline ~stages:4 nl));
      Test.make ~name:"e4_fo4_sta"
        (Staged.stage (fun () -> Gap_sta.Sta.analyze (Lazy.force alu16_netlist)));
      Test.make ~name:"e5_clock_tree"
        (Staged.stage (fun () ->
             ( Gap_clocktree.Htree.build ~tech ~die_side_um:10000. ~sinks:20000
                 Gap_clocktree.Htree.Asic_automated,
               Gap_clocktree.Htree.build ~tech ~die_side_um:10000. ~sinks:20000
                 Gap_clocktree.Htree.Custom_tuned )));
      Test.make ~name:"e6_placement"
        (Staged.stage (fun () ->
             Gap_place.Placer.place
               ~options:{ Gap_place.Placer.default_options with Gap_place.Placer.sweeps = 5 }
               (Lazy.force mult6_netlist)));
      Test.make ~name:"e7_tilos_sizing"
        (Staged.stage (fun () ->
             let nl = Gap_synth.Mapper.map_aig ~lib:rich_lib cla8 in
             Gap_synth.Sizing.tilos ~max_moves:50 nl));
      Test.make ~name:"e8_dualrail_domino"
        (Staged.stage (fun () -> Gap_domino.Dualrail.map_aig ~domino_lib ks16));
      Test.make ~name:"e9_variation_mc"
        (Staged.stage (fun () ->
             Gap_variation.Montecarlo.simulate
               ~model:(Gap_variation.Model.make Gap_variation.Model.mature)
               ~nominal_mhz:250. ~dies:2000 ()));
      Test.make ~name:"e10_residual_analysis"
        (Staged.stage (fun () ->
             ( Gap_core.Gap_model.residual_analysis (Lazy.force factors),
               Gap_core.Gap_model.predicted_asic_custom_gap () )));
      Test.make ~name:"x1_power_estimation"
        (Staged.stage (fun () ->
             Gap_netlist.Power_est.estimate ~vectors:100 (Lazy.force mult6_netlist)
               ~freq_mhz:200.));
      Test.make ~name:"x2_binning_economics"
        (Staged.stage (fun () ->
             let mc =
               Gap_variation.Montecarlo.simulate
                 ~model:(Gap_variation.Model.make Gap_variation.Model.mature)
                 ~nominal_mhz:250. ~dies:5000 ()
             in
             Gap_variation.Economics.best_single_rating
               Gap_variation.Economics.default_pricing mc
               ~candidates:(Array.init 20 (fun i -> 180. +. (5. *. float_of_int i)))));
      Test.make ~name:"x3_time_borrowing"
        (Staged.stage (fun () ->
             Gap_retime.Borrowing.min_period
               ~stage_delays:[| 900.; 400.; 700.; 550. |]
               (Gap_retime.Borrowing.Two_phase_latch 0.5)));
      Test.make ~name:"x4_fsm_synthesis"
        (Staged.stage (fun () ->
             Gap_synth.Mapper.map_aig ~lib:rich_lib
               (Gap_datapath.Fsm.to_aig Gap_datapath.Fsm.bus_interface)));
      Test.make ~name:"x5_datapath_tiling"
        (Staged.stage (fun () -> Gap_place.Tiler.place (Lazy.force mult6_netlist)));
    ]

let measure_suite ~quota tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let per_run_ns =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> est
        | Some [] | None -> nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
      in
      (* drop the "group/" prefix bechamel adds to grouped test names *)
      let short =
        match String.index_opt name '/' with
        | Some k -> String.sub name (k + 1) (String.length name - k - 1)
        | None -> name
      in
      rows := (short, per_run_ns, r2) :: !rows)
    results;
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !rows

let print_rows rows =
  Gap_util.Table.print
    ~header:[ "kernel"; "time/run"; "r^2" ]
    (List.map
       (fun (name, ns, r2) ->
         [ name; Gap_obs.Obs.pp_ns ns; Printf.sprintf "%.3f" r2 ])
       rows)

(* record measured timings into an observability sink; the JSON artifact is
   then emitted from the sink's gauges rather than from ad-hoc printf *)
let record_rows sink rows =
  Gap_obs.Obs.with_sink sink (fun () ->
      List.iter
        (fun (name, ns, r2) ->
          if not (Float.is_nan ns) then
            Gap_obs.Obs.gauge ("kernel." ^ name ^ ".ns_per_run") ns;
          if not (Float.is_nan r2) then
            Gap_obs.Obs.gauge ("kernel." ^ name ^ ".r_square") r2)
        rows)

let run_benchmarks ~quota () =
  print_endline "=== bechamel micro-benchmarks (one kernel per table) ===";
  (* force the lazies so setup cost stays out of the measurements *)
  ignore (Lazy.force alu16_netlist);
  ignore (Lazy.force mult6_netlist);
  ignore (Lazy.force factors);
  print_rows (measure_suite ~quota bench_tests)

(* ---- hot-kernel suite (the targets of the incremental-HPWL / CSR /
   sharded-MC performance work) ------------------------------------------- *)

(* ns/run at the pre-optimization seed (commit 56f85bc), wall-clock
   best-of-3 on this repository's 1-CPU reference container. The
   mc_60000_d2/_d4 rows have no seed counterpart (the seed simulator was
   single-threaded); their baselines were measured at the PR 5 head
   (commit f2fd16c, pre Bigarray/chunk rebuild), where extra domains made
   the run *slower* — 40.8 ms at d2 and 89.0 ms at d4 against 11.9 ms at
   d1 — because per-sample allocation forced constant cross-domain minor-GC
   synchronization. *)
let seed_baseline_ns =
  [
    ("e4_sta", 492327.);
    ("e6_place_s5", 1742751.);
    ("e6_place_s50", 16007404.);
    ("e9_mc_2000", 351704.);
    ("mc_60000_d1", 10856005.);
    ("mc_60000_d2", 40842000.);
    ("mc_60000_d4", 89012000.);
    ("mc_60000_pctl", 113284614.);
  ]

let mc_model = lazy (Gap_variation.Model.make Gap_variation.Model.mature)

(* DSE point-evaluation kernels: the analytic path (no binning) and the
   MC-backed variation path, plus the FNV-1a cache-key hash *)
let dse_analytic_pt =
  { Gap_dse.Space.custom_corner with Gap_dse.Space.binning = false }

let dse_mc_pt = { Gap_dse.Space.custom_corner with Gap_dse.Space.mc_dies = 2000 }

let kernel_tests =
  Test.make_grouped ~name:"kernels"
    [
      Test.make ~name:"e4_sta"
        (Staged.stage (fun () -> Gap_sta.Sta.analyze (Lazy.force alu16_netlist)));
      Test.make ~name:"e6_place_s5"
        (Staged.stage (fun () ->
             Gap_place.Placer.place
               ~options:{ Gap_place.Placer.default_options with Gap_place.Placer.sweeps = 5 }
               (Lazy.force mult6_netlist)));
      Test.make ~name:"e6_place_s50"
        (Staged.stage (fun () ->
             Gap_place.Placer.place
               ~options:{ Gap_place.Placer.default_options with Gap_place.Placer.sweeps = 50 }
               (Lazy.force mult6_netlist)));
      Test.make ~name:"e9_mc_2000"
        (Staged.stage (fun () ->
             Gap_variation.Montecarlo.simulate ~model:(Lazy.force mc_model)
               ~nominal_mhz:250. ~dies:2000 ()));
      Test.make ~name:"mc_60000_d1"
        (Staged.stage (fun () ->
             Gap_variation.Montecarlo.simulate ~domains:1 ~model:(Lazy.force mc_model)
               ~nominal_mhz:250. ~dies:60000 ()));
      Test.make ~name:"mc_60000_d2"
        (Staged.stage (fun () ->
             Gap_variation.Montecarlo.simulate ~domains:2 ~model:(Lazy.force mc_model)
               ~nominal_mhz:250. ~dies:60000 ()));
      Test.make ~name:"mc_60000_d4"
        (Staged.stage (fun () ->
             Gap_variation.Montecarlo.simulate ~domains:4 ~model:(Lazy.force mc_model)
               ~nominal_mhz:250. ~dies:60000 ()));
      Test.make ~name:"mc_60000_pctl"
        (Staged.stage (fun () ->
             let r =
               Gap_variation.Montecarlo.simulate ~model:(Lazy.force mc_model)
                 ~nominal_mhz:250. ~dies:60000 ()
             in
             ( Gap_variation.Montecarlo.percentile r 1.,
               Gap_variation.Montecarlo.percentile r 50.,
               Gap_variation.Montecarlo.percentile r 99.,
               Gap_variation.Montecarlo.spread r )));
      Test.make ~name:"dse_eval_analytic"
        (Staged.stage (fun () -> Gap_dse.Eval.point dse_analytic_pt));
      Test.make ~name:"dse_eval_mc_2000"
        (Staged.stage (fun () -> Gap_dse.Eval.point dse_mc_pt));
      Test.make ~name:"dse_key_fnv"
        (Staged.stage (fun () -> Gap_dse.Key.of_point Gap_dse.Space.custom_corner));
    ]

(* Parallel-scaling gate over mc_60000: d4/d1 wall-clock ratio. The
   threshold adapts to the host because the ratio physically cannot drop
   below ~1.0 without spare cores: with >= 4 cores we demand a >= 2x
   speedup (ratio <= 0.5); with 2-3 cores, "parallel at least breaks even"
   (<= 0.9); on a single core, time-slicing 4 domains has an irreducible
   cost — each domain spawn/teardown forces a stop-the-world minor
   collection the lone core must serialize — so the bound there is "no
   worse than scheduling overhead" (<= 2.0; the pre-rebuild tree, whose
   per-sample boxing forced thousands of cross-domain GC barriers, sat
   at 7.5). *)
let scaling_threshold ~cores =
  if cores >= 4 then 0.5 else if cores >= 2 then 0.9 else 2.0

let scaling_doc rows =
  let module Json = Gap_obs.Json in
  let find name =
    List.find_map (fun (n, ns, _) -> if n = name then Some ns else None) rows
  in
  match (find "mc_60000_d1", find "mc_60000_d4") with
  | Some d1, Some d4 when d1 > 0. && not (Float.is_nan d4) ->
      let ratio = d4 /. d1 in
      let cores = Domain.recommended_domain_count () in
      let threshold = scaling_threshold ~cores in
      let pass = ratio <= threshold in
      let doc =
        Json.Obj
          [
            ("kernel", Json.Str "mc_60000");
            ("d1_ns", Json.Float d1);
            ( "d2_ns",
              match find "mc_60000_d2" with
              | Some ns -> Json.Float ns
              | None -> Json.Null );
            ("d4_ns", Json.Float d4);
            ("d4_over_d1", Json.Float ratio);
            ("host_cores", Json.Int cores);
            ("threshold", Json.Float threshold);
            ("pass", Json.Bool pass);
          ]
      in
      Some (doc, ratio, cores, threshold, pass)
  | _ -> None

let write_kernels_json ?history path =
  let module Json = Gap_obs.Json in
  print_endline "=== hot-kernel benchmarks ===";
  ignore (Lazy.force alu16_netlist);
  ignore (Lazy.force mult6_netlist);
  Gap_dse.Eval.warmup ();
  (* fixed 1s quota: several kernels run >10 ms each, and a short quota
     gives the OLS fit too few samples to be trustworthy.  The sink is NOT
     installed while measuring: recording spans inside the timed kernels
     would bias the ns/run against the pre-instrumentation baselines. *)
  let rows = measure_suite ~quota:1.0 kernel_tests in
  print_rows rows;
  let sink = Gap_obs.Obs.recorder () in
  record_rows sink rows;
  let kernels =
    List.map
      (fun (name, _, _) ->
        let g suffix = Gap_obs.Obs.gauge_value sink ("kernel." ^ name ^ suffix) in
        let ns = g ".ns_per_run" in
        let baseline = List.assoc_opt name seed_baseline_ns in
        let opt_f = function Some v -> Json.Float v | None -> Json.Null in
        Json.Obj
          [
            ("name", Json.Str name);
            ("ns_per_run", opt_f ns);
            ("r_square", opt_f (g ".r_square"));
            ("baseline_ns_per_run", opt_f baseline);
            ("speedup",
             match (baseline, ns) with
             | Some b, Some ns when ns > 0. -> Json.Float (b /. ns)
             | _ -> Json.Null);
          ])
      rows
  in
  let scaling = scaling_doc rows in
  (* provenance: snapshots are only comparable across machines when each
     says which machine (and toolchain) produced it *)
  let meta = Gap_obs.History.meta_now () in
  let doc =
    Json.Obj
      ([
         ("meta", Gap_obs.History.meta_json meta);
         ("baseline_note",
          Json.Str
            "baseline ns/run measured at seed commit 56f85bc \
             (pre-optimization), wall-clock best-of-3 on the 1-CPU reference \
             container; mc_60000_d2/_d4 baselines measured at the PR 5 head \
             (pre Bigarray/chunk rebuild); null = kernel has no baseline");
         ("determinism_note",
          Json.Str
            "mc_60000_d{1,2,4} produce byte-identical sample buffers; the \
             domain count changes wall-clock only");
         ("scaling_note",
          Json.Str
            "d4_over_d1 is the parallel-scaling gate for mc_60000; the \
             threshold adapts to host_cores (>=4 cores: 0.5 i.e. >=2x \
             speedup; 2-3 cores: 0.9; 1 core: 2.0, extra domains may cost \
             at most time-slicing overhead)");
         ("kernels", Json.List kernels);
       ]
      @
      match scaling with
      | Some (sdoc, _, _, _, _) -> [ ("scaling", sdoc) ]
      | None -> [])
  in
  Gap_util.Atomic_io.write_string path (Json.to_string ~pretty:true doc ^ "\n");
  Printf.printf "wrote %s\n%!" path;
  Option.iter
    (fun store ->
      (* the history snapshot carries ns/run per kernel plus the scaling
         ratio, so `repro report --diff prev last` gates kernel regressions *)
      let metrics =
        List.filter_map
          (fun (name, ns, _) ->
            if Float.is_nan ns then None
            else Some ("kernel." ^ name ^ ".ns_per_run", ns))
          rows
        @
        match scaling with
        | Some (_, ratio, _, _, _) -> [ ("mc_60000.d4_over_d1", ratio) ]
        | None -> []
      in
      Gap_obs.History.append store
        (Gap_obs.History.make ~meta ~label:"bench-kernels" metrics);
      Printf.printf "history: appended %d metrics to %s\n%!"
        (List.length metrics) store)
    history;
  match scaling with
  | Some (_, ratio, cores, threshold, pass) ->
      Printf.printf "mc_60000 scaling: d4/d1 = %.3f (host cores %d, threshold %.2f) %s\n%!"
        ratio cores threshold
        (if pass then "ok" else "FAIL");
      if not pass then begin
        prerr_endline
          "bench: mc_60000 parallel-scaling gate failed (d4/d1 above threshold)";
        exit 1
      end
  | None ->
      prerr_endline "bench: mc_60000_d1/_d4 rows missing, scaling gate not evaluated";
      exit 1

let usage () =
  print_endline
    "usage: bench [--tables-only | --bench-only] [--quick] [--kernels-json PATH]\n\
     \             [--history PATH]\n\
     \  default            regenerate the E1-E10/X1-X5 tables, then run the\n\
     \                     per-experiment bechamel suite\n\
     \  --tables-only      only regenerate the tables\n\
     \  --bench-only       only run the per-experiment bechamel suite\n\
     \  --kernels-json P   run only the hot-kernel suite and write ns/run\n\
     \                     (with seed baselines and speedups) to P as JSON\n\
     \  --history P        with --kernels-json: also append a host-tagged\n\
     \                     snapshot (ns/run per kernel + scaling ratio) to the\n\
     \                     P history store, for repro report --diff\n\
     \  --quick            shorter measurement quota per benchmark (does not\n\
     \                     shrink the hot-kernel suite, which needs the\n\
     \                     samples for a stable fit)"

let () =
  let tables_only = ref false in
  let bench_only = ref false in
  let quick = ref false in
  let kernels_json = ref None in
  let history = ref None in
  let rec parse = function
    | [] -> ()
    | "--tables-only" :: rest -> tables_only := true; parse rest
    | "--bench-only" :: rest -> bench_only := true; parse rest
    | "--quick" :: rest -> quick := true; parse rest
    | "--kernels-json" :: path :: rest -> kernels_json := Some path; parse rest
    | [ "--kernels-json" ] ->
        prerr_endline "bench: --kernels-json requires a path";
        usage ();
        exit 2
    | "--history" :: path :: rest -> history := Some path; parse rest
    | [ "--history" ] ->
        prerr_endline "bench: --history requires a path";
        usage ();
        exit 2
    | ("--help" | "-h") :: _ -> usage (); exit 0
    | arg :: _ ->
        Printf.eprintf "bench: unknown argument %s\n" arg;
        usage ();
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !tables_only && !bench_only then begin
    prerr_endline "bench: --tables-only and --bench-only are mutually exclusive";
    usage ();
    exit 2
  end;
  let quota = if !quick then 0.25 else 0.5 in
  match !kernels_json with
  | Some path -> write_kernels_json ?history:!history path
  | None ->
      if !history <> None then begin
        prerr_endline "bench: --history requires --kernels-json";
        usage ();
        exit 2
      end;
      if not !bench_only then regenerate_tables ();
      if not !tables_only then run_benchmarks ~quota ()
