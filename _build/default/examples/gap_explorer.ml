(* Gap explorer: the paper's headline analysis as a tool.

   Prints the factor table (paper vs our models), then walks a design from
   worst-practice ASIC to full custom one methodology axis at a time, showing
   how much of the 6-8x gap each choice closes.

   Run with: dune exec examples/gap_explorer.exe *)

module M = Gap_core.Methodology
module GM = Gap_core.Gap_model

let () =
  Gap_core.Report.print_full_analysis ();
  print_newline ();

  (* one axis at a time, starting from the typical ASIC *)
  let base = M.typical_asic in
  let steps =
    [
      ("pipeline 5 deep", { base with M.pipelining = M.Pipelined 5 });
      ("+ careful floorplan",
       { base with M.pipelining = M.Pipelined 5; M.floorplanning = M.Careful });
      ("+ critical-path sizing",
       {
         base with
         M.pipelining = M.Pipelined 5;
         M.floorplanning = M.Careful;
         M.sizing = M.Critical_path_sized;
       });
      ("+ speed-tested parts",
       {
         base with
         M.pipelining = M.Pipelined 5;
         M.floorplanning = M.Careful;
         M.sizing = M.Critical_path_sized;
         M.process = M.Speed_tested;
       });
      ("full custom", M.custom);
    ]
  in
  let base_mult = GM.speed_multiplier base in
  print_endline "climbing out of the gap, one methodology choice at a time:";
  Gap_util.Table.print
    ~header:[ "step"; "speed vs typical ASIC"; "remaining gap to custom" ]
    (List.map
       (fun (label, m) ->
         let mult = GM.speed_multiplier m /. base_mult in
         let remaining = GM.gap_between M.custom m in
         [ label; Gap_util.Table.fmt_ratio mult; Gap_util.Table.fmt_ratio remaining ])
       steps);
  Printf.printf "\n(the paper's conclusion: even the best ASIC methodology leaves a gap —\n";
  Printf.printf " here x%.2f — mostly from process access and dynamic logic)\n"
    (GM.gap_between M.custom M.good_asic)
