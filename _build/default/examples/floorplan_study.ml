(* Floorplanning study: three views of the paper's Sec. 5.

   1. chip level (BACPAC-style): a critical path with a cross-chip wire vs a
      floorplanned, module-local one, across logic depths;
   2. block level: SA placement of a mapped multiplier vs random scatter,
      with post-placement wire delays in the STA;
   3. the slicing floorplanner packing macro blocks.

   Run with: dune exec examples/floorplan_study.exe *)

let tech = Gap_tech.Tech.asic_025um

let chip_level () =
  let chip = Gap_interconnect.Bacpac.default_chip in
  Printf.printf "chip-level (100 mm^2 die, 0.25um Al, optimally repeated wires):\n";
  Gap_util.Table.print
    ~header:[ "logic depth"; "local path"; "cross-chip path"; "floorplanning buys" ]
    (List.map
       (fun depth ->
         let local =
           Gap_interconnect.Bacpac.path ~tech ~logic_depth_fo4:depth
             ~wire_length_um:(Gap_interconnect.Bacpac.local_length_um chip)
         in
         let cross =
           Gap_interconnect.Bacpac.path ~tech ~logic_depth_fo4:depth
             ~wire_length_um:(Gap_interconnect.Bacpac.cross_chip_length_um chip)
         in
         [
           Printf.sprintf "%.0f FO4" depth;
           Gap_util.Units.pp_time_ps local.Gap_interconnect.Bacpac.total_ps;
           Gap_util.Units.pp_time_ps cross.Gap_interconnect.Bacpac.total_ps;
           Gap_util.Table.fmt_pct
             ((cross.Gap_interconnect.Bacpac.total_ps /. local.Gap_interconnect.Bacpac.total_ps) -. 1.);
         ])
       [ 20.; 30.; 44.; 60.; 80. ])

let block_level () =
  Printf.printf "\nblock-level: 8x8 multiplier, annealed vs random placement:\n";
  let lib = Gap_liberty.Libgen.(make tech rich) in
  let g = Gap_datapath.Multiplier.array_multiplier ~width:8 in
  let effort = { Gap_synth.Flow.default_effort with Gap_synth.Flow.tilos_moves = 0 } in
  let build () = (Gap_synth.Flow.run ~lib ~effort g).Gap_synth.Flow.netlist in
  let measure name place =
    let nl = build () in
    let stats = place nl in
    Gap_place.Wire_estimate.annotate nl;
    let sta = Gap_sta.Sta.analyze nl in
    Printf.printf "  %-9s HPWL %8.0f um, period %s\n" name
      stats.Gap_place.Placer.final_hpwl_um
      (Gap_util.Units.pp_time_ps sta.Gap_sta.Sta.min_period_ps)
  in
  measure "annealed" (fun nl -> Gap_place.Placer.place nl);
  measure "random" (fun nl -> Gap_place.Placer.place_random nl)

let floorplanner () =
  Printf.printf "\nslicing floorplanner (Wong-Liu annealing over Polish expressions):\n";
  let rng = Gap_util.Rng.create ~seed:21L () in
  let blocks =
    Array.init 12 (fun i ->
        {
          Gap_place.Floorplan.block_name = Printf.sprintf "macro%d" i;
          w_um = 400. +. Gap_util.Rng.float rng 1600.;
          h_um = 400. +. Gap_util.Rng.float rng 1600.;
        })
  in
  let fp0 = Gap_place.Floorplan.initial blocks in
  let r = Gap_place.Floorplan.anneal ~sweeps:250 fp0 in
  let area0 = r.Gap_place.Floorplan.initial_area_um2 /. 1e6 in
  let area1 = r.Gap_place.Floorplan.layout.Gap_place.Floorplan.area_um2 /. 1e6 in
  Printf.printf "  12 macros: %.1f mm^2 (single row) -> %.1f mm^2 annealed, dead space %s\n"
    area0 area1
    (Gap_util.Table.fmt_pct (Gap_place.Floorplan.dead_space_frac r.Gap_place.Floorplan.plan));
  Printf.printf "  bounding box %.1f x %.1f mm\n"
    (r.Gap_place.Floorplan.layout.Gap_place.Floorplan.width_um /. 1000.)
    (r.Gap_place.Floorplan.layout.Gap_place.Floorplan.height_um /. 1000.)

let () =
  chip_level ();
  block_level ();
  floorplanner ()
