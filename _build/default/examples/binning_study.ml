(* Binning study: Monte Carlo over the process-variation model for a 250 MHz
   (nominal) ASIC design, with the speed-bin economics of the paper's Sec. 8:
   what the fab guarantees, what the silicon actually does, and what testing
   each part would buy.

   Run with: dune exec examples/binning_study.exe *)

module V = Gap_variation.Model
module MC = Gap_variation.Montecarlo
module B = Gap_variation.Binning

let () =
  let nominal = 250. in
  let dies = 50_000 in
  let typical = MC.simulate ~model:(V.make V.mature) ~nominal_mhz:nominal ~dies () in
  let slow = V.make ~fab_mean:V.slow_fab V.mature in
  Printf.printf "design: nominal %s at a typical 0.25um fab, %d dies sampled\n\n"
    (Gap_util.Units.pp_freq_mhz nominal) dies;

  (* distribution *)
  Printf.printf "fmax distribution: p1 %s | p25 %s | p50 %s | p75 %s | p99 %s\n"
    (Gap_util.Units.pp_freq_mhz (MC.percentile typical 1.))
    (Gap_util.Units.pp_freq_mhz (MC.percentile typical 25.))
    (Gap_util.Units.pp_freq_mhz (MC.percentile typical 50.))
    (Gap_util.Units.pp_freq_mhz (MC.percentile typical 75.))
    (Gap_util.Units.pp_freq_mhz (MC.percentile typical 99.));
  Printf.printf "visible spread (p99-p1)/p50: %.0f%%\n\n" (100. *. MC.spread typical);

  (* bins *)
  let edges = [| 200.; 225.; 250.; 275. |] in
  let bins = B.bin typical ~edges_mhz:edges in
  print_endline "speed bins:";
  Gap_util.Table.print ~header:[ "bin"; "dies"; "share" ]
    (List.init
       (Array.length bins.B.counts)
       (fun i ->
         let label =
           if i = 0 then Printf.sprintf "< %.0f MHz (scrap)" edges.(0)
           else if i = Array.length edges then Printf.sprintf ">= %.0f MHz" edges.(i - 1)
           else Printf.sprintf "%.0f - %.0f MHz" edges.(i - 1) edges.(i)
         in
         [
           label;
           string_of_int bins.B.counts.(i);
           Gap_util.Table.fmt_pct (float_of_int bins.B.counts.(i) /. float_of_int dies);
         ]));

  (* the paper's ratios *)
  let signoff = nominal *. V.signoff_speed slow in
  Printf.printf "\nASIC worst-case rating (slow fab, V/T derated): %s\n"
    (Gap_util.Units.pp_freq_mhz signoff);
  Printf.printf "typical silicon vs that rating:   x%.2f  (paper: 60-70%% faster)\n"
    (MC.percentile typical 50. /. signoff);
  Printf.printf "speed-testing each part instead:  x%.2f  (paper: 30-40%%)\n"
    (B.speed_test_gain typical);
  let custom = MC.simulate ~seed:7L ~model:(V.make ~fab_mean:V.best_fab V.mature) ~nominal_mhz:nominal ~dies () in
  let asic = MC.simulate ~seed:8L ~model:slow ~nominal_mhz:nominal ~dies () in
  Printf.printf "custom best-fab top bin vs it:    x%.2f  (paper: ~90%% faster)\n"
    (B.custom_best_vs_asic_worst ~custom ~asic);
  Printf.printf "\nprocess maturity: a 5%% shrink buys +%.0f%%; re-characterized libraries +%.0f%% over 2 years\n"
    (100. *. Gap_variation.Maturity.shrink_speed_gain ~linear_shrink:0.05)
    (100. *. Gap_variation.Maturity.library_update_gain ~months:24.)
