(* Process-generation scaling: the paper's "1.5x per generation" yardstick
   (Sec. 2), checked by regenerating libraries at each node and re-running
   the same design through the flow.

   Run with: dune exec examples/scaling_study.exe *)

module Flow = Gap_synth.Flow
module Tech = Gap_tech.Tech

let () =
  let design () = Gap_datapath.Alu.alu ~adder:`Cla 16 in
  let nodes = [ Tech.asic_035um; Tech.asic_025um; Tech.asic_018um ] in
  print_endline "the same 16-bit ALU, re-mapped to a freshly generated library per node:";
  let periods =
    List.map
      (fun tech ->
        let lib = Gap_liberty.Libgen.(make tech rich) in
        let effort = { Flow.default_effort with Flow.tilos_moves = 200 } in
        let o = Flow.run ~lib ~effort (design ()) in
        (tech, o.Flow.sta.Gap_sta.Sta.min_period_ps))
      nodes
  in
  Gap_util.Table.print
    ~header:[ "node"; "FO4"; "min period"; "clock"; "speedup vs prev" ]
    (List.mapi
       (fun i (tech, period) ->
         let speedup =
           if i = 0 then "-"
           else
             let _, prev = List.nth periods (i - 1) in
             Printf.sprintf "x%.2f" (prev /. period)
         in
         [
           tech.Tech.name;
           Printf.sprintf "%.0f ps" (Tech.fo4_ps tech);
           Gap_util.Units.pp_time_ps period;
           Gap_util.Units.pp_freq_mhz (Gap_util.Units.mhz_of_period_ps period);
           speedup;
         ])
       periods);
  Printf.printf "\npaper's rule of thumb: %.1fx per generation; the 6-8x ASIC-custom gap\n"
    Gap_tech.Scaling.speed_per_generation;
  Printf.printf "is therefore worth ~%.1f generations (%.1f for 7x).\n"
    (Gap_tech.Scaling.equivalent_generations 8.)
    (Gap_tech.Scaling.equivalent_generations 7.);
  (* note: FO4 scaling between our nodes is Leff-driven: 0.25um ASIC (Leff
     0.18) -> 0.18um ASIC (Leff 0.11) is a 1.64x gate-speed step; the paper's
     1.5x is the marketing-node average *)
  let r25 = Tech.fo4_ps Tech.asic_025um /. Tech.fo4_ps Tech.asic_018um in
  Printf.printf "\ngate-level FO4 step 0.25um -> 0.18um: x%.2f (Leff 0.18 -> 0.11)\n" r25
