(* Quickstart: generate a standard-cell library, synthesize a 16-bit
   carry-lookahead adder through the full flow (balance -> map -> buffer ->
   size), time it, and verify the mapped netlist against the AIG.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. a technology and a library *)
  let tech = Gap_tech.Tech.asic_025um in
  let lib = Gap_liberty.Libgen.(make tech rich) in
  Format.printf "%a@." Gap_liberty.Library.pp_summary lib;
  Printf.printf "FO4 delay: %.0f ps\n\n" (Gap_tech.Tech.fo4_ps tech);

  (* 2. a circuit, as an AIG *)
  let adder = Gap_datapath.Adders.cla_adder 16 in
  Format.printf "%a@." Gap_logic.Aig.pp_stats adder;

  (* 3. the synthesis flow *)
  let outcome = Gap_synth.Flow.run ~lib ~name:"cla16" adder in
  let nl = outcome.Gap_synth.Flow.netlist in
  Format.printf "%a@." Gap_netlist.Netlist.pp_stats nl;
  (match outcome.Gap_synth.Flow.sizing with
  | Some r ->
      Printf.printf "TILOS sizing: %d moves, %.0f -> %.0f ps\n" r.Gap_synth.Sizing.moves
        r.Gap_synth.Sizing.initial_period_ps r.Gap_synth.Sizing.final_period_ps
  | None -> ());

  (* 4. timing *)
  print_newline ();
  Gap_sta.Report.print outcome.Gap_synth.Flow.sta ~lib;

  (* 5. verify the mapped netlist still adds *)
  let rng = Gap_util.Rng.create () in
  let errors = ref 0 in
  for _ = 1 to 1000 do
    let a = Gap_util.Rng.int rng 65536 and b = Gap_util.Rng.int rng 65536 in
    let ins =
      Array.concat
        [
          Gap_datapath.Word.to_bools ~width:16 a;
          Gap_datapath.Word.to_bools ~width:16 b;
          [| false |];
        ]
    in
    let out = Gap_netlist.Sim.eval nl (Gap_netlist.Sim.initial nl) ins in
    let sum = Gap_datapath.Word.value (Array.sub out 0 16) in
    if sum <> (a + b) land 0xFFFF then incr errors
  done;
  Printf.printf "\nfunctional check: %s (1000 random vectors)\n"
    (if !errors = 0 then "PASS" else Printf.sprintf "%d ERRORS" !errors)
