(* Control logic vs datapath: why the paper's x4 pipelining factor is a
   *maximum*.

   Sec. 4.1: "Many designs, such as bus interfaces, have a tight interaction
   with their environment ... it is not clear how an ASIC may be reorganized
   to allow pipelining." We synthesize a bus-interface FSM and a multiplier
   datapath through the same flow and compare what registers can do for each:
   the FSM's state loop is a hard floor (minimum cycle ratio); the
   multiplier's floor keeps dropping as pipeline ranks are added.

   Run with: dune exec examples/control_vs_datapath.exe *)

module Fsm = Gap_datapath.Fsm
module Extract = Gap_retime.Extract
module Flow = Gap_synth.Flow

let tech = Gap_tech.Tech.asic_025um
let lib = Gap_liberty.Libgen.(make tech rich)
let fo4 = Gap_tech.Tech.fo4_ps tech

let () =
  (* the control side: a request/acknowledge bus controller *)
  let spec = Fsm.bus_interface in
  let g = Fsm.to_aig spec in
  let comb = Gap_synth.Mapper.map_aig ~lib ~name:"bus_interface" g in
  ignore (Gap_synth.Sizing.tilos comb);
  let loops =
    List.init (Fsm.state_bits Fsm.Binary spec.Fsm.n_states) (fun b ->
        (Printf.sprintf "state%d" b, Printf.sprintf "next%d" b))
  in
  let busif = Gap_synth.Sequential.close_loops ~loops comb in
  Format.printf "%a@." Gap_netlist.Netlist.pp_stats busif;
  let sta = Extract.sta_period_ps busif in
  let floor = Extract.retiming_bound_ps busif in
  Printf.printf
    "bus interface: clock %s (%.1f FO4), retiming floor %s (%.1f FO4)\n"
    (Gap_util.Units.pp_time_ps sta) (sta /. fo4)
    (Gap_util.Units.pp_time_ps floor) (floor /. fo4);
  Printf.printf
    "  -> no register placement beats the state loop; extra registers only add latency\n\n";

  (* the datapath side: same flow, progressively deeper pipelines *)
  print_endline "16x16 multiplier under the same flow:";
  Gap_util.Table.print ~header:[ "ranks"; "clock"; "retiming floor"; "floor in FO4" ]
    (List.map
       (fun stages ->
         let mult = Gap_datapath.Multiplier.array_multiplier ~width:16 in
         let effort = { Flow.default_effort with Flow.tilos_moves = 0 } in
         let nl = (Flow.run ~lib ~effort mult).Flow.netlist in
         ignore (Gap_retime.Pipeline.pipeline ~stages nl);
         let sta = Extract.sta_period_ps nl in
         let floor = Extract.retiming_bound_ps nl in
         [
           string_of_int stages;
           Gap_util.Units.pp_time_ps sta;
           Gap_util.Units.pp_time_ps floor;
           Printf.sprintf "%.1f" (floor /. fo4);
         ])
       [ 1; 2; 4; 6; 8 ]);
  Printf.printf
    "\nthe paper's conclusion in one table: data parallelism pipelines, control loops don't —\n\
     which is why 'typical ASICs' (control-heavy) sit at 80+ FO4 while pipelined\n\
     datapath machines reach 13-15 FO4.\n"
