examples/binning_study.ml: Array Gap_util Gap_variation List Printf
