examples/quickstart.mli:
