examples/scaling_study.ml: Gap_datapath Gap_liberty Gap_sta Gap_synth Gap_tech Gap_util List Printf
