examples/control_vs_datapath.ml: Format Gap_datapath Gap_liberty Gap_netlist Gap_retime Gap_synth Gap_tech Gap_util List Printf
