examples/quickstart.ml: Array Format Gap_datapath Gap_liberty Gap_logic Gap_netlist Gap_sta Gap_synth Gap_tech Gap_util Printf
