examples/gap_explorer.ml: Gap_core Gap_util List Printf
