examples/control_vs_datapath.mli:
