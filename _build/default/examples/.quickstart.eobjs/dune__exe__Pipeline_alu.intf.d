examples/pipeline_alu.mli:
