examples/floorplan_study.ml: Array Gap_datapath Gap_interconnect Gap_liberty Gap_place Gap_sta Gap_synth Gap_tech Gap_util List Printf
