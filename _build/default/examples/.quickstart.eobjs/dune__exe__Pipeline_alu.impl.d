examples/pipeline_alu.ml: Gap_datapath Gap_liberty Gap_logic Gap_retime Gap_sta Gap_synth Gap_tech Gap_uarch Gap_util List Printf
