examples/binning_study.mli:
