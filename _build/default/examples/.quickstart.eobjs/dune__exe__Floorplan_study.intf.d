examples/floorplan_study.mli:
