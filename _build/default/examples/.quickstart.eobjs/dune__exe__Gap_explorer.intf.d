examples/gap_explorer.mli:
