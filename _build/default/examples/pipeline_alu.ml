(* Pipelining study: a 16x16 multiplier datapath is cutset-pipelined into
   1..6 stages under ASIC and custom register/skew overheads, reproducing the
   paper's Sec. 4 trade-off including the CPI cost of depth.

   Run with: dune exec examples/pipeline_alu.exe *)

module Flow = Gap_synth.Flow
module Sta = Gap_sta.Sta
module Pipeline = Gap_retime.Pipeline
module Overhead = Gap_retime.Overhead

let tech = Gap_tech.Tech.asic_025um

let sweep ~lib ~skew_frac ~label g =
  Printf.printf "\n%s (skew %.0f%% of cycle):\n" label (100. *. skew_frac);
  let effort = { Flow.default_effort with Flow.tilos_moves = 0 } in
  let comb =
    (Sta.analyze (Flow.run ~lib ~effort g).Flow.netlist).Sta.min_period_ps
  in
  let reg = Overhead.register_overhead_ps ~lib ~skew_ps:0. in
  let rows =
    List.map
      (fun stages ->
        let nl = (Flow.run ~lib ~effort g).Flow.netlist in
        let cycle_est = ((comb /. float_of_int stages) +. reg) /. (1. -. skew_frac) in
        let config = Sta.config_with_skew (skew_frac *. cycle_est) in
        let r = Pipeline.pipeline ~config ~stages nl in
        let freq = Gap_util.Units.mhz_of_period_ps r.Pipeline.period_after_ps in
        (* performance under a SPEC-like workload: deeper pipes flush more *)
        let ipc =
          Gap_uarch.Cpi.ipc ~pipeline_stages:stages ~issue_width:1 Gap_uarch.Cpi.spec_like
        in
        [
          string_of_int stages;
          Gap_util.Units.pp_time_ps r.Pipeline.period_after_ps;
          Gap_util.Units.pp_freq_mhz freq;
          string_of_int r.Pipeline.registers_added;
          Printf.sprintf "%.2f" ipc;
          Printf.sprintf "%.0f" (freq *. ipc);
        ])
      [ 1; 2; 3; 4; 5; 6 ]
  in
  Gap_util.Table.print
    ~header:[ "stages"; "cycle"; "clock"; "regs added"; "IPC"; "MIPS" ]
    rows

let () =
  let g = Gap_datapath.Multiplier.array_multiplier ~width:16 in
  Printf.printf "datapath: 16x16 array multiplier, %d AND nodes\n"
    (Gap_logic.Aig.num_ands g);
  let asic_lib = Gap_liberty.Libgen.(make tech rich) in
  let custom_lib = Gap_liberty.Libgen.(make tech custom) in
  sweep ~lib:asic_lib ~skew_frac:0.10 ~label:"ASIC flops, automated clock tree" g;
  sweep ~lib:custom_lib ~skew_frac:0.05 ~label:"custom latches, tuned clock tree" g;
  (* the paper's analytic expectation *)
  Printf.printf "\npaper arithmetic: 5 stages @ 30%% overhead = x%.2f, 4 @ 20%% = x%.2f\n"
    (Overhead.paper_speedup ~stages:5 ~overhead_frac:0.30)
    (Overhead.paper_speedup ~stages:4 ~overhead_frac:0.20)
