(* repro: command-line driver for the paper reproduction.

   repro list            enumerate experiments (E1..E10 + extensions X1..X3)
   repro run E3 X1       run selected experiments
   repro all             run everything and print the summary
   repro analysis        print the core gap analysis (factor table etc.)
   repro dump cla16      synthesize a named circuit and emit structural Verilog *)

open Cmdliner

let list_experiments () =
  List.iter
    (fun (id, title, _) -> Printf.printf "%-4s %s\n" id title)
    Gap_experiments.Registry.all;
  print_endline "--- extensions ---";
  List.iter
    (fun (id, title, _) -> Printf.printf "%-4s %s\n" id title)
    Gap_experiments.Registry.extensions;
  0

let run_ids ids =
  let missing = ref [] in
  List.iter
    (fun id ->
      match Gap_experiments.Registry.find id with
      | Some run -> Gap_experiments.Exp.print (run ())
      | None -> missing := id :: !missing)
    ids;
  if !missing <> [] then begin
    Printf.eprintf "unknown experiment id(s): %s\n" (String.concat ", " !missing);
    1
  end
  else 0

let run_all with_extensions =
  let results = Gap_experiments.Registry.run_all () in
  let results =
    if with_extensions then results @ Gap_experiments.Registry.run_extensions ()
    else results
  in
  List.iter Gap_experiments.Exp.print results;
  print_newline ();
  print_string (Gap_experiments.Registry.summary results);
  let all_pass =
    List.for_all
      (fun r ->
        let p, c = Gap_experiments.Exp.passes r in
        p = c)
      results
  in
  if all_pass then 0 else 1

let analysis () =
  Gap_core.Report.print_full_analysis ();
  0

(* --- dump: synthesize a named circuit and print Verilog --- *)

let circuits =
  [
    ("cla16", fun () -> Gap_datapath.Adders.cla_adder 16);
    ("cla32", fun () -> Gap_datapath.Adders.cla_adder 32);
    ("ripple16", fun () -> Gap_datapath.Adders.ripple_adder 16);
    ("ks32", fun () -> Gap_datapath.Adders.kogge_stone_adder 32);
    ("mult8", fun () -> Gap_datapath.Multiplier.array_multiplier ~width:8);
    ("alu16", fun () -> Gap_datapath.Alu.alu ~adder:`Cla 16);
    ("shift32", fun () -> Gap_datapath.Shifter.barrel_shifter ~width:32);
    ("popcount16", fun () -> Gap_datapath.Counting.popcount ~width:16);
    ("decoder5", fun () -> Gap_datapath.Encoders.decoder ~width:5);
  ]

let dump name lib_profile stages =
  match List.assoc_opt name circuits with
  | None ->
      Printf.eprintf "unknown circuit %s; available: %s\n" name
        (String.concat ", " (List.map fst circuits));
      1
  | Some gen ->
      let tech = Gap_tech.Tech.asic_025um in
      let profile =
        match lib_profile with
        | "rich" -> Gap_liberty.Libgen.rich
        | "poor" -> Gap_liberty.Libgen.poor
        | "typical" -> Gap_liberty.Libgen.typical
        | "custom" -> Gap_liberty.Libgen.custom
        | other ->
            Printf.eprintf "unknown library profile %s, using rich\n" other;
            Gap_liberty.Libgen.rich
      in
      let lib = Gap_liberty.Libgen.make tech profile in
      let outcome = Gap_synth.Flow.run ~lib ~name (gen ()) in
      let nl = outcome.Gap_synth.Flow.netlist in
      if stages > 1 then
        ignore (Gap_retime.Pipeline.pipeline ~stages nl);
      Printf.eprintf "// %s\n" (Gap_sta.Report.summary (Gap_sta.Sta.analyze nl) ~lib);
      print_string (Gap_netlist.Verilog.write nl);
      0

let libdump profile_name =
  let tech = Gap_tech.Tech.asic_025um in
  let profile =
    match profile_name with
    | "rich" -> Some Gap_liberty.Libgen.rich
    | "poor" -> Some Gap_liberty.Libgen.poor
    | "typical" -> Some Gap_liberty.Libgen.typical
    | "domino" -> Some Gap_liberty.Libgen.domino
    | "custom" -> Some Gap_liberty.Libgen.custom
    | _ -> None
  in
  match profile with
  | None ->
      Printf.eprintf "unknown profile %s (rich, typical, poor, domino, custom)\n" profile_name;
      1
  | Some p ->
      Gap_liberty.Liberty_io.write_to_channel stdout (Gap_liberty.Libgen.make tech p);
      0

let list_cmd =
  let doc = "List the reproduced experiments." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list_experiments $ const ())

let run_cmd =
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (e.g. E3, X1)") in
  let doc = "Run selected experiments." in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run_ids $ ids)

let all_cmd =
  let ext =
    Arg.(value & flag & info [ "extensions"; "x" ] ~doc:"Also run the X1..X3 extensions.")
  in
  let doc = "Run every experiment and print the pass/fail summary." in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run_all $ ext)

let analysis_cmd =
  let doc = "Print the factor table, residual analysis and methodology comparison." in
  Cmd.v (Cmd.info "analysis" ~doc) Term.(const analysis $ const ())

let dump_cmd =
  let circuit_arg =
    Arg.(required & pos 0 (some string) None
        & info [] ~docv:"CIRCUIT" ~doc:"Circuit name (see error message for the list).")
  in
  let lib_arg =
    Arg.(value & opt string "rich"
        & info [ "lib" ] ~docv:"PROFILE" ~doc:"Library profile: rich, typical, poor, custom.")
  in
  let stages_arg =
    Arg.(value & opt int 1
        & info [ "stages" ] ~docv:"N" ~doc:"Pipeline the circuit into N stages before dumping.")
  in
  let doc = "Synthesize a circuit and emit structural Verilog on stdout." in
  Cmd.v (Cmd.info "dump" ~doc) Term.(const dump $ circuit_arg $ lib_arg $ stages_arg)

let libdump_cmd =
  let profile_arg =
    Arg.(value & pos 0 string "rich"
        & info [] ~docv:"PROFILE" ~doc:"Library profile: rich, typical, poor, domino, custom.")
  in
  let doc = "Generate a library and emit it in Liberty format on stdout." in
  Cmd.v (Cmd.info "libdump" ~doc) Term.(const libdump $ profile_arg)

let main =
  let doc = "reproduction of Chinnery & Keutzer, 'Closing the Gap Between ASIC and Custom' (DAC 2000)" in
  Cmd.group
    (Cmd.info "repro" ~version:"1.0" ~doc)
    [ list_cmd; run_cmd; all_cmd; analysis_cmd; dump_cmd; libdump_cmd ]

let () = exit (Cmd.eval' main)
