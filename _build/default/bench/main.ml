(* Benchmark harness.

   Part 1 regenerates every table the paper reproduction produces (E1-E10)
   and prints the pass/fail summary — this is the artifact the EXPERIMENTS.md
   numbers come from.

   Part 2 runs one Bechamel micro-benchmark per experiment, timing the
   computational kernel behind each table (synthesis flow, STA, placement,
   dual-rail mapping, Monte Carlo, ...), so regressions in the engines are
   visible. *)

open Bechamel
open Toolkit

let regenerate_tables () =
  print_endline "=== reproduction tables (E1-E10) + extensions (X1-X3) ===";
  let results =
    Gap_experiments.Registry.run_all () @ Gap_experiments.Registry.run_extensions ()
  in
  List.iter Gap_experiments.Exp.print results;
  print_newline ();
  print_string (Gap_experiments.Registry.summary results);
  print_newline ()

(* ---- shared prebuilt inputs so the staged functions time only the kernel ---- *)

let tech = Gap_tech.Tech.asic_025um
let rich_lib = Gap_liberty.Libgen.(make tech rich)
let domino_lib = Gap_liberty.Libgen.(make tech domino)
let cla8 = Gap_datapath.Adders.cla_adder 8
let mult8 = Gap_datapath.Multiplier.array_multiplier ~width:8
let ks16 = Gap_datapath.Adders.kogge_stone_adder 16
let alu16_netlist = lazy (Gap_synth.Mapper.map_aig ~lib:rich_lib (Gap_datapath.Alu.alu 16))
let mult6_netlist = lazy (Gap_synth.Mapper.map_aig ~lib:rich_lib (Gap_datapath.Multiplier.array_multiplier ~width:6))
let factors = lazy (Gap_core.Factors.all ())

let bench_tests =
  Test.make_grouped ~name:"gap"
    [
      Test.make ~name:"e1_processor_table"
        (Staged.stage (fun () ->
             List.map Gap_uarch.Processors.modeled_mhz Gap_uarch.Processors.all));
      Test.make ~name:"e2_factor_flow_kernel"
        (Staged.stage (fun () ->
             Gap_synth.Flow.run ~lib:rich_lib
               ~effort:{ Gap_synth.Flow.default_effort with Gap_synth.Flow.tilos_moves = 50 }
               cla8));
      Test.make ~name:"e3_pipelining"
        (Staged.stage (fun () ->
             let nl = Gap_synth.Mapper.map_aig ~lib:rich_lib mult8 in
             Gap_retime.Pipeline.pipeline ~stages:4 nl));
      Test.make ~name:"e4_fo4_sta"
        (Staged.stage (fun () -> Gap_sta.Sta.analyze (Lazy.force alu16_netlist)));
      Test.make ~name:"e5_clock_tree"
        (Staged.stage (fun () ->
             ( Gap_clocktree.Htree.build ~tech ~die_side_um:10000. ~sinks:20000
                 Gap_clocktree.Htree.Asic_automated,
               Gap_clocktree.Htree.build ~tech ~die_side_um:10000. ~sinks:20000
                 Gap_clocktree.Htree.Custom_tuned )));
      Test.make ~name:"e6_placement"
        (Staged.stage (fun () ->
             Gap_place.Placer.place
               ~options:{ Gap_place.Placer.default_options with Gap_place.Placer.sweeps = 5 }
               (Lazy.force mult6_netlist)));
      Test.make ~name:"e7_tilos_sizing"
        (Staged.stage (fun () ->
             let nl = Gap_synth.Mapper.map_aig ~lib:rich_lib cla8 in
             Gap_synth.Sizing.tilos ~max_moves:50 nl));
      Test.make ~name:"e8_dualrail_domino"
        (Staged.stage (fun () -> Gap_domino.Dualrail.map_aig ~domino_lib ks16));
      Test.make ~name:"e9_variation_mc"
        (Staged.stage (fun () ->
             Gap_variation.Montecarlo.simulate
               ~model:(Gap_variation.Model.make Gap_variation.Model.mature)
               ~nominal_mhz:250. ~dies:2000 ()));
      Test.make ~name:"e10_residual_analysis"
        (Staged.stage (fun () ->
             ( Gap_core.Gap_model.residual_analysis (Lazy.force factors),
               Gap_core.Gap_model.predicted_asic_custom_gap () )));
      Test.make ~name:"x1_power_estimation"
        (Staged.stage (fun () ->
             Gap_netlist.Power_est.estimate ~vectors:100 (Lazy.force mult6_netlist)
               ~freq_mhz:200.));
      Test.make ~name:"x2_binning_economics"
        (Staged.stage (fun () ->
             let mc =
               Gap_variation.Montecarlo.simulate
                 ~model:(Gap_variation.Model.make Gap_variation.Model.mature)
                 ~nominal_mhz:250. ~dies:5000 ()
             in
             Gap_variation.Economics.best_single_rating
               Gap_variation.Economics.default_pricing mc
               ~candidates:(Array.init 20 (fun i -> 180. +. (5. *. float_of_int i)))));
      Test.make ~name:"x3_time_borrowing"
        (Staged.stage (fun () ->
             Gap_retime.Borrowing.min_period
               ~stage_delays:[| 900.; 400.; 700.; 550. |]
               (Gap_retime.Borrowing.Two_phase_latch 0.5)));
      Test.make ~name:"x4_fsm_synthesis"
        (Staged.stage (fun () ->
             Gap_synth.Mapper.map_aig ~lib:rich_lib
               (Gap_datapath.Fsm.to_aig Gap_datapath.Fsm.bus_interface)));
      Test.make ~name:"x5_datapath_tiling"
        (Staged.stage (fun () -> Gap_place.Tiler.place (Lazy.force mult6_netlist)));
    ]

let run_benchmarks () =
  print_endline "=== bechamel micro-benchmarks (one kernel per table) ===";
  (* force the lazies so setup cost stays out of the measurements *)
  ignore (Lazy.force alu16_netlist);
  ignore (Lazy.force mult6_netlist);
  ignore (Lazy.force factors);
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances bench_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let per_run_ns =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> est
        | Some [] | None -> nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
      in
      rows := (name, per_run_ns, r2) :: !rows)
    results;
  let rows = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !rows in
  Gap_util.Table.print
    ~header:[ "kernel"; "time/run"; "r^2" ]
    (List.map
       (fun (name, ns, r2) ->
         let time =
           if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
           else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         [ name; time; Printf.sprintf "%.3f" r2 ])
       rows)

let () =
  regenerate_tables ();
  run_benchmarks ()
