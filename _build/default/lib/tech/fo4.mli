(** FO4 (fanout-of-four inverter delay) arithmetic.

    The paper expresses every design's logic depth in FO4 delays so that chips
    in different variants of "the same" technology can be compared; this
    module centralizes those conversions. *)

val of_leff_um : float -> float
(** FO4 delay in ps from effective channel length, by the 0.5 ns/um rule
    (paper footnote 1: Leff 0.15um -> 75 ps). *)

val depth_of_period : period_ps:float -> fo4_ps:float -> float
(** How many FO4 delays fit in a clock period. *)

val period_of_depth : depth:float -> fo4_ps:float -> float
val frequency_mhz : depth:float -> fo4_ps:float -> float
(** Clock frequency of a design with [depth] FO4 delays per cycle. *)
