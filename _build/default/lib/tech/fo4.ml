let of_leff_um leff = 500. *. leff

let depth_of_period ~period_ps ~fo4_ps =
  assert (fo4_ps > 0.);
  period_ps /. fo4_ps

let period_of_depth ~depth ~fo4_ps = depth *. fo4_ps

let frequency_mhz ~depth ~fo4_ps =
  Gap_util.Units.mhz_of_period_ps (period_of_depth ~depth ~fo4_ps)
