lib/tech/fo4.mli:
