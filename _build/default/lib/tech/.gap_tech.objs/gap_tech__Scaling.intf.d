lib/tech/scaling.mli:
