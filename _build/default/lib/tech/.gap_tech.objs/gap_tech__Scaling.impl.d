lib/tech/scaling.ml: Float
