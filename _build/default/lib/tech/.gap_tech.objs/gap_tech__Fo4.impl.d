lib/tech/fo4.ml: Gap_util
