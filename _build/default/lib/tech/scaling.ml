let generations = [ 0.6; 0.5; 0.35; 0.25; 0.18; 0.13 ]
let speed_per_generation = 1.5

let speedup_over_generations n = speed_per_generation ** float_of_int n

let equivalent_generations ratio =
  assert (ratio > 0.);
  log ratio /. log speed_per_generation

let next_generation drawn =
  let rec loop = function
    | a :: (b :: _ as rest) ->
        if Float.abs (a -. drawn) < 1e-9 then Some b else loop rest
    | _ -> None
  in
  loop generations
