(** Process-generation scaling arithmetic (paper Sec. 2: "If we put the speed
    improvement due to one process generation ... as 1.5x then this gap is
    equivalent to that of five process generations"). *)

val generations : float list
(** The drawn feature sizes of successive generations, coarsest first:
    0.6, 0.5, 0.35, 0.25, 0.18, 0.13. *)

val speed_per_generation : float
(** 1.5x, the paper's assumption. *)

val speedup_over_generations : int -> float
(** [speedup_over_generations n] = 1.5^n. *)

val equivalent_generations : float -> float
(** How many process generations a speed ratio corresponds to:
    [log ratio / log 1.5]. The paper's 6-8x gap maps to ~4.4-5.1. *)

val next_generation : float -> float option
(** Next finer drawn size after the given one, if tabulated. *)
