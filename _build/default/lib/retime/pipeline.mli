(** Cutset pipelining of combinational netlists.

    Splits a mapped combinational netlist into [stages] pipeline stages by
    arrival time: every input-to-output path receives exactly [stages - 1]
    registers, so the pipelined circuit computes the same function with
    [stages - 1] cycles of latency and a clock period of roughly
    [logic / stages + register overhead] — the mechanism behind the paper's
    dominant x4 factor (Sec. 4).

    Register ranks are placed at equal-delay thresholds; register chains on a
    net are shared among sinks that need the same depth. *)

type result = {
  stages : int;
  registers_added : int;
  period_before_ps : float;
  period_after_ps : float;
  speedup : float;
}

val pipeline :
  ?config:Gap_sta.Sta.config -> stages:int -> Gap_netlist.Netlist.t -> result
(** Mutates the netlist. Requires a flop-free netlist and [stages >= 1]
    (1 = just register the outputs' timing view; no registers inserted).
    The STA [config]'s skew is charged in both the before and after
    periods. *)

val latency_cycles : result -> int
(** [stages - 1]. *)
