let register_overhead_ps ~lib ~skew_ps =
  let flop = Gap_liberty.Library.smallest_flop lib in
  match Gap_liberty.Cell.seq_timing flop with
  | Some seq -> seq.Gap_liberty.Cell.setup_ps +. seq.Gap_liberty.Cell.clk_to_q_ps +. skew_ps
  | None -> skew_ps

let overhead_fraction ~lib ~skew_frac ~stage_logic_ps =
  assert (skew_frac >= 0. && skew_frac < 1.);
  let reg = register_overhead_ps ~lib ~skew_ps:0. in
  (* period = logic + reg + skew_frac * period  =>  period = (logic + reg) / (1 - skew_frac) *)
  let period = (stage_logic_ps +. reg) /. (1. -. skew_frac) in
  (period -. stage_logic_ps) /. stage_logic_ps

let paper_speedup ~stages ~overhead_frac =
  float_of_int stages /. (1. +. overhead_frac)

let period_ps ~total_logic_ps ~stages ~overhead_ps =
  (total_logic_ps /. float_of_int stages) +. overhead_ps

let exact_speedup ~total_logic_ps ~stages ~overhead_ps =
  (total_logic_ps +. overhead_ps) /. period_ps ~total_logic_ps ~stages ~overhead_ps
