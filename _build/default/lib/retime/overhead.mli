(** Analytic pipelining-overhead model (paper Sec. 4).

    The paper's estimate: a pipeline of [N] stages with per-stage overhead
    fraction [v] (latch setup + clk->q + skew, as a fraction of the stage's
    logic time) speeds a design up by [N / (1 + v)] — e.g. the 5-stage
    Tensilica with ~30% ASIC overhead is "about 3.8 times faster", the
    4-stage IBM PPC with ~20% custom overhead "about 3.4 times faster". *)

val register_overhead_ps :
  lib:Gap_liberty.Library.t -> skew_ps:float -> float
(** Absolute overhead of one register boundary: smallest flop's setup +
    clk->q + skew. *)

val overhead_fraction :
  lib:Gap_liberty.Library.t -> skew_frac:float -> stage_logic_ps:float -> float
(** Overhead as a fraction of stage logic time, with skew given as a fraction
    of the resulting cycle (solved self-consistently). *)

val paper_speedup : stages:int -> overhead_frac:float -> float
(** The paper's [N / (1 + v)] approximation. *)

val exact_speedup :
  total_logic_ps:float -> stages:int -> overhead_ps:float -> float
(** [(T + o) / (T/N + o)]: speedup over the registered single-stage design
    with ideal stage balancing. *)

val period_ps :
  total_logic_ps:float -> stages:int -> overhead_ps:float -> float
