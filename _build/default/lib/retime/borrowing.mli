(** Time borrowing through level-sensitive latches.

    Sec. 4.1: "ASIC tools have problems with complicated multi-phase clocking
    schemes that would allow time borrowing between pipeline stages to
    increase speed. While there are level-sensitive latches in some ASIC
    libraries, typically only one or two clock phases are used."

    With edge-triggered flops every stage must fit in one period, so the
    clock is set by the {e worst} stage. A transparent latch lets data depart
    late — up to the end of the transparency window — so a long stage can
    borrow time from a short neighbour, and the clock approaches the
    {e average} stage delay. This module computes the minimum period of a
    stage-delay profile under both disciplines:

    departures [t_i] from latch [i] obey
    [t_{i+1} = max 0 (t_i + d_i - P)] with the arrival constraint
    [t_i + d_i - P <= B], where [B] is the transparency window
    ([0] for flops, [duty x P] for latches). *)

type clocking =
  | Edge_ff  (** hard edges: no borrowing *)
  | Two_phase_latch of float
      (** transparent for the given duty fraction of the cycle (e.g. 0.5) *)

val feasible :
  ?ring:bool -> stage_delays:float array -> period:float -> clocking -> bool
(** Whether the profile meets the period. [ring] treats the last stage as
    feeding the first (a loop, as in a processor pipeline with a bypass);
    default is a linear pipeline whose input departs at the edge. *)

val min_period :
  ?ring:bool ->
  ?epsilon:float ->
  stage_delays:float array ->
  clocking ->
  float
(** Binary search over {!feasible}. [epsilon] defaults to [1e-3]. *)

val borrowing_gain :
  ?ring:bool -> stage_delays:float array -> duty:float -> unit -> float
(** [min_period Edge_ff / min_period (Two_phase_latch duty)]: how much the
    latch discipline recovers from stage imbalance ([1.0] when stages are
    already balanced). *)

val stage_delays_of_pipeline :
  Gap_netlist.Netlist.t -> config:Gap_sta.Sta.config -> float array
(** Extracts per-stage critical delays from a pipelined netlist (produced by
    {!Pipeline.pipeline}): stage [k] is the worst register-to-register (or
    port-to-register) path delay of rank [k], including setup and clk->q.
    Used to feed the borrowing model with real stage imbalance. *)
