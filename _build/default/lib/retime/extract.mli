(** Retiming lower bound extracted from a mapped sequential netlist.

    Builds the register-weighted instance graph (combinational instances as
    nodes, flop chains collapsed onto edges, a clocked host standing for the
    environment: inputs arrive at the cycle edge, outputs are registered by
    the environment) and binary-searches the smallest period [P] such that
    no cycle violates [sum delay <= P x sum registers] — the classic
    minimum-cycle-ratio bound that no retiming can beat.

    For a feed-forward pipeline the bound is roughly total delay over
    (register ranks + 1): retiming can rebalance to it. For a tight state
    machine the feedback loop pins the bound at its current speed — the
    quantitative form of Sec. 4.1's "bus interfaces ... it is not clear how
    an ASIC may be reorganized to allow pipelining". *)

type t = {
  graph : Gap_util.Digraph.t;  (** node 0 is the host *)
  delays : float array;  (** per node; edge weights carry register counts *)
  node_of_inst : int array;  (** comb instance id -> node id (-1 for flops) *)
}

val of_netlist : Gap_netlist.Netlist.t -> t

val feasible : t -> period_ps:float -> bool
(** No cycle with more delay than [period x registers]. *)

val retiming_bound_ps : ?epsilon:float -> Gap_netlist.Netlist.t -> float
(** The smallest feasible period: what an ideal retiming could reach. *)

val sta_period_ps : Gap_netlist.Netlist.t -> float
(** Current STA min period, for comparison. *)

val retiming_headroom : Gap_netlist.Netlist.t -> float
(** [sta / bound]: > 1 when register rebalancing could speed the design up;
    ~1 when the loops (or the stage balance) already pin it. *)
