module Netlist = Gap_netlist.Netlist
module Sta = Gap_sta.Sta

type result = {
  stages : int;
  registers_added : int;
  period_before_ps : float;
  period_after_ps : float;
  speedup : float;
}

let latency_cycles r = r.stages - 1

let pipeline ?(config = Sta.default_config) ~stages nl =
  assert (stages >= 1);
  assert (Netlist.flops nl = []);
  let before = Sta.analyze ~config nl in
  let total = before.Sta.min_period_ps in
  let registers_added = ref 0 in
  if stages > 1 && total > 0. then begin
    let lib = Netlist.lib nl in
    let flop = Gap_liberty.Library.smallest_flop lib in
    let n = float_of_int stages in
    let stage_of net =
      let a = before.Sta.arrival.(net) in
      let s = int_of_float (floor (a /. total *. n)) in
      min (stages - 1) (max 0 s)
    in
    (* Register chains are memoized per source net: chain.(net) is a list of
       nets where element [j] (1-based depth) is the net delayed j times. *)
    let chains : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
    let delayed net depth =
      if depth = 0 then net
      else begin
        let chain =
          match Hashtbl.find_opt chains net with
          | Some c -> c
          | None ->
              let c = ref [] in
              Hashtbl.replace chains net c;
              c
        in
        while List.length !chain < depth do
          let src = match !chain with [] -> net | last :: _ -> last in
          let inst = Netlist.add_cell nl flop [| src |] in
          incr registers_added;
          chain := Netlist.out_net nl inst :: !chain
        done;
        List.nth !chain (List.length !chain - depth)
      end
    in
    (* Snapshot the instance/output lists before mutation: new flop instances
       must not be revisited. *)
    let comb_insts = Netlist.combinational_instances nl in
    let out_ports = List.init (Netlist.num_outputs nl) (fun p -> p) in
    List.iter
      (fun inst ->
        let s_out = stage_of (Netlist.out_net nl inst) in
        let fanins = Netlist.fanins_of nl inst in
        Array.iteri
          (fun pin fnet ->
            let k = s_out - stage_of fnet in
            assert (k >= 0);
            if k > 0 then Netlist.rewire_pin nl ~inst ~pin (delayed fnet k))
          fanins)
      comb_insts;
    List.iter
      (fun port ->
        let net = Netlist.output_net nl port in
        let k = stages - 1 - stage_of net in
        assert (k >= 0);
        if k > 0 then Netlist.rewire_output nl port (delayed net k))
      out_ports
  end;
  let after = Sta.analyze ~config nl in
  let period_after =
    if stages = 1 then
      (* charge one register boundary even without inserted flops, so the
         1-stage baseline is comparable to deeper pipelines *)
      let flop = Gap_liberty.Library.smallest_flop (Netlist.lib nl) in
      let seq = Option.get (Gap_liberty.Cell.seq_timing flop) in
      after.Sta.min_period_ps +. seq.Gap_liberty.Cell.setup_ps
      +. seq.Gap_liberty.Cell.clk_to_q_ps +. config.Sta.clock_skew_ps
    else after.Sta.min_period_ps
  in
  {
    stages;
    registers_added = !registers_added;
    period_before_ps = total;
    period_after_ps = period_after;
    speedup = (if period_after > 0. then total /. period_after else 1.);
  }
