lib/retime/retime.ml: Array Float Gap_util List
