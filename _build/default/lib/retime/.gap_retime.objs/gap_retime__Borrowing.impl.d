lib/retime/borrowing.ml: Array Float Gap_liberty Gap_netlist Gap_sta Hashtbl List
