lib/retime/pipeline.ml: Array Gap_liberty Gap_netlist Gap_sta Hashtbl List Option
