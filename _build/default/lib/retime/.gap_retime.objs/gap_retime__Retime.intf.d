lib/retime/retime.mli:
