lib/retime/borrowing.mli: Gap_netlist Gap_sta
