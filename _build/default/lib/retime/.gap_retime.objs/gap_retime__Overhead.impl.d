lib/retime/overhead.ml: Gap_liberty
