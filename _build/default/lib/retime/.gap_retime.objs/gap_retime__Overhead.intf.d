lib/retime/overhead.mli: Gap_liberty
