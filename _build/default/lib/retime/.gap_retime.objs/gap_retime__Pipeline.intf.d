lib/retime/pipeline.mli: Gap_netlist Gap_sta
