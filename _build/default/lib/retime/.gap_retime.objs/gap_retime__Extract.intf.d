lib/retime/extract.mli: Gap_netlist Gap_util
