let delay_ps ~r_drv_kohm ~wire ~length_um ~c_load_ff =
  let r = Wire.total_r_kohm wire ~length_um in
  let c = Wire.total_c_ff wire ~length_um in
  (0.69 *. r_drv_kohm *. (c +. c_load_ff))
  +. (0.38 *. r *. c)
  +. (0.69 *. r *. c_load_ff)

let segmented ?(sections = 64) ~r_drv_kohm ~wire ~length_um ~c_load_ff () =
  assert (sections >= 1);
  let n = sections in
  let seg_r = Wire.total_r_kohm wire ~length_um /. float_of_int n in
  let seg_c = Wire.total_c_ff wire ~length_um /. float_of_int n in
  (* Elmore sum: each capacitor sees the resistance upstream of it. The 0.69
     factor converts the time constant to a 50% delay for the lumped driver
     and load; 2x0.38~0.69 emerges for the distributed part automatically as
     interior segments see roughly half the resistance. *)
  let acc = ref 0. in
  for i = 1 to n do
    let upstream = r_drv_kohm +. (float_of_int i *. seg_r) in
    acc := !acc +. (upstream *. seg_c)
  done;
  acc := !acc +. ((r_drv_kohm +. (float_of_int n *. seg_r)) *. c_load_ff);
  0.69 *. !acc
