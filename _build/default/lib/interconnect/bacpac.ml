type chip = { area_mm2 : float; module_mm : float }

let default_chip = { area_mm2 = 100.; module_mm = 1. }
let die_side_mm chip = sqrt chip.area_mm2

let cross_chip_length_um chip =
  (* semi-perimeter of the die: a path that crosses the chip and back up one
     side, the worst plausible global route *)
  2. *. die_side_mm chip *. 1000.

let local_length_um chip = 2. *. chip.module_mm *. 1000.

type path_delay = { logic_ps : float; wire_ps : float; total_ps : float }

let path ~tech ~logic_depth_fo4 ~wire_length_um =
  let logic_ps = logic_depth_fo4 *. Gap_tech.Tech.fo4_ps tech in
  let wire = Wire.of_tech tech in
  let drv = Repeater.default_driver tech in
  let wire_ps = Repeater.optimal_delay_ps drv wire ~length_um:wire_length_um in
  { logic_ps; wire_ps; total_ps = logic_ps +. wire_ps }

let floorplan_speedup ~tech ~logic_depth_fo4 ~chip =
  let bad = path ~tech ~logic_depth_fo4 ~wire_length_um:(cross_chip_length_um chip) in
  let good = path ~tech ~logic_depth_fo4 ~wire_length_um:(local_length_um chip) in
  bad.total_ps /. good.total_ps
