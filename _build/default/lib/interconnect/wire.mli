(** Wire electrical models.

    A wire is characterized by per-micron resistance and capacitance taken
    from the technology, optionally widened: widening by [w] divides
    resistance by [w] and grows capacitance (area term scales, fringe does
    not), the knob behind "wires may be widened to reduce the delays"
    (Sec. 6). *)

type t = {
  r_kohm_per_um : float;
  c_ff_per_um : float;
}

val of_tech : ?width_mult:float -> Gap_tech.Tech.t -> t
(** [width_mult] defaults to 1 (minimum-pitch global wire). *)

val total_r_kohm : t -> length_um:float -> float
val total_c_ff : t -> length_um:float -> float

val rc_delay_ps : t -> length_um:float -> float
(** Distributed RC delay of the bare wire, [0.38 R C] (step response to
    50%). Quadratic in length: the reason long wires need repeaters. *)
