(** Repeater (buffer) insertion on long wires, after Bakoglu.

    Long-wire delay is quadratic in length; inserting [n] repeaters of size
    [h] makes it linear. The optima are the textbook expressions

    [n* = L sqrt(0.38 r c / (0.69 R0 C0))],  [h* = sqrt(R0 c / (r C0))]

    with [r], [c] per-unit wire parasitics and [R0], [C0] the unit repeater's
    resistance and input capacitance. "Proper driving of a wire depends on
    sizing of drivers and insertion of repeaters" (Sec. 5). *)

type driver = {
  r0_kohm : float;
  c0_ff : float;
  intrinsic_ps : float;
}

val driver_of_inverter : Gap_liberty.Cell.t -> driver
val default_driver : Gap_tech.Tech.t -> driver
(** Unit inverter of the technology's logical-effort model. *)

val optimal_count : driver -> Wire.t -> length_um:float -> int
(** At least 1 when repeating helps; 0 when the wire is short enough that no
    repeater beats the bare wire. *)

val optimal_size : driver -> Wire.t -> float

val delay_with : driver -> Wire.t -> length_um:float -> n:int -> h:float -> float
(** Total delay through [n] equal segments, each driven by a size-[h]
    repeater (n >= 1). *)

val optimal_delay_ps : driver -> Wire.t -> length_um:float -> float
(** Delay at the optimal (integer) repeater count and size; falls back to the
    bare Elmore wire when repeaters don't help. *)

val delay_per_mm_ps : driver -> Wire.t -> float
(** Asymptotic repeated-wire delay per millimeter. *)
