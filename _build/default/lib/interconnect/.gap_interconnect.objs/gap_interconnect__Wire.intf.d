lib/interconnect/wire.mli: Gap_tech
