lib/interconnect/elmore.ml: Wire
