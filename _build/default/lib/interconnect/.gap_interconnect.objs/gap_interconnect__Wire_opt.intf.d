lib/interconnect/wire_opt.mli: Gap_tech
