lib/interconnect/bacpac.mli: Gap_tech
