lib/interconnect/repeater.mli: Gap_liberty Gap_tech Wire
