lib/interconnect/bacpac.ml: Gap_tech Repeater Wire
