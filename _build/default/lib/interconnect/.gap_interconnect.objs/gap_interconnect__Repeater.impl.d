lib/interconnect/repeater.ml: Elmore Float Gap_liberty Wire
