lib/interconnect/wire_opt.ml: Repeater Wire
