lib/interconnect/elmore.mli: Wire
