lib/interconnect/wire.ml: Gap_tech
