(** Wire sizing: "wires may be widened to reduce the delays ... by reducing
    the resistance" (Sec. 6), with the fringe-capacitance penalty that keeps
    the optimum finite. "Tools for wire sizing along with transistor sizing
    may be available in the future (e.g. [6])" — this is a small such tool
    for a single repeated net: golden-section search over the width
    multiplier of the optimally-repeated wire delay. *)

val delay_at_width :
  Gap_tech.Tech.t -> length_um:float -> width_mult:float -> float
(** Optimally-repeated delay of the net at the given wire width. *)

val optimal_width :
  ?max_width:float -> Gap_tech.Tech.t -> length_um:float -> float * float
(** [(width, delay_ps)] minimizing {!delay_at_width} over
    [1 .. max_width] (default 8). *)

val sizing_gain : Gap_tech.Tech.t -> length_um:float -> float
(** Minimum-width delay over optimal-width delay: what wire sizing is worth
    on this net (>= 1). *)
