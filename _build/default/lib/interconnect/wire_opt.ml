let delay_at_width tech ~length_um ~width_mult =
  let wire = Wire.of_tech ~width_mult tech in
  let drv = Repeater.default_driver tech in
  Repeater.optimal_delay_ps drv wire ~length_um

let optimal_width ?(max_width = 8.) tech ~length_um =
  let f w = delay_at_width tech ~length_um ~width_mult:w in
  (* golden-section search on a unimodal objective *)
  let phi = (sqrt 5. -. 1.) /. 2. in
  let a = ref 1. and b = ref max_width in
  let x1 = ref (!b -. (phi *. (!b -. !a))) in
  let x2 = ref (!a +. (phi *. (!b -. !a))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  while !b -. !a > 1e-3 do
    if !f1 <= !f2 then begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !b -. (phi *. (!b -. !a));
      f1 := f !x1
    end
    else begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !a +. (phi *. (!b -. !a));
      f2 := f !x2
    end
  done;
  let w = (!a +. !b) /. 2. in
  (w, f w)

let sizing_gain tech ~length_um =
  let _, best = optimal_width tech ~length_um in
  delay_at_width tech ~length_um ~width_mult:1. /. best
