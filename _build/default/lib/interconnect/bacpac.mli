(** Chip-level wire-delay model in the spirit of BACPAC (Sylvester's Berkeley
    Advanced Chip Performance Calculator), which the paper used for its
    floorplanning experiment (Sec. 5, footnote 3): a critical path made of
    logic plus a global wire, evaluated localized-within-a-module versus
    distributed across the die. *)

type chip = {
  area_mm2 : float;
  module_mm : float;  (** linear size of one floorplan module *)
}

val default_chip : chip
(** 100 mm^2 die (the paper's example) with 1 mm modules. *)

val die_side_mm : chip -> float

val cross_chip_length_um : chip -> float
(** A badly-placed critical path wanders about one die semi-perimeter. *)

val local_length_um : chip -> float
(** A well-floorplanned path stays within a module (~one module
    semi-perimeter). *)

type path_delay = {
  logic_ps : float;
  wire_ps : float;
  total_ps : float;
}

val path :
  tech:Gap_tech.Tech.t ->
  logic_depth_fo4:float ->
  wire_length_um:float ->
  path_delay
(** Logic depth in FO4 plus an optimally-repeated global wire of the given
    length. *)

val floorplan_speedup :
  tech:Gap_tech.Tech.t -> logic_depth_fo4:float -> chip:chip -> float
(** Ratio of cross-chip to localized path delay: the paper's "up to 25%"
    claim is this number at ~40 FO4 of logic on a 100 mm^2 0.25um die. *)
