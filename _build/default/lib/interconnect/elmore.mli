(** Elmore delay of driver + distributed wire + load.

    The standard first-moment model: a driver of resistance [r_drv] charging
    a wire of total [R], [C] into a lumped load [c_load]:

    [t = 0.69 r_drv (C + c_load) + 0.38 R C + 0.69 R c_load]

    [segmented] computes the same structure as an N-section RC ladder and is
    used by the tests to confirm the closed form converges. *)

val delay_ps :
  r_drv_kohm:float -> wire:Wire.t -> length_um:float -> c_load_ff:float -> float

val segmented :
  ?sections:int ->
  r_drv_kohm:float ->
  wire:Wire.t ->
  length_um:float ->
  c_load_ff:float ->
  unit ->
  float
(** Elmore delay of the discretized ladder (default 64 sections), with the
    0.69/0.38 weighting applied per segment position analytically. *)
