type driver = { r0_kohm : float; c0_ff : float; intrinsic_ps : float }

let driver_of_inverter (c : Gap_liberty.Cell.t) =
  {
    r0_kohm = c.drive_res_kohm *. c.drive;
    c0_ff = c.input_cap_ff /. c.drive;
    intrinsic_ps = c.intrinsic_ps;
  }

let default_driver tech =
  let model = Gap_liberty.Delay_model.of_tech tech in
  {
    r0_kohm = Gap_liberty.Delay_model.drive_res_kohm_per_ff model ~drive:1.;
    c0_ff = Gap_liberty.Delay_model.input_cap_ff model ~g:1. ~drive:1.;
    intrinsic_ps = Gap_liberty.Delay_model.intrinsic_ps model ~p:1.;
  }

let optimal_size d (w : Wire.t) =
  sqrt (d.r0_kohm *. w.c_ff_per_um /. (w.r_kohm_per_um *. d.c0_ff))

let raw_optimal_count d (w : Wire.t) ~length_um =
  length_um
  *. sqrt (0.38 *. w.r_kohm_per_um *. w.c_ff_per_um /. (0.69 *. d.r0_kohm *. d.c0_ff))

let delay_with d w ~length_um ~n ~h =
  assert (n >= 1 && h > 0.);
  let l = length_um /. float_of_int n in
  let rw = Wire.total_r_kohm w ~length_um:l in
  let cw = Wire.total_c_ff w ~length_um:l in
  let rd = d.r0_kohm /. h in
  let cin = d.c0_ff *. h in
  let seg =
    d.intrinsic_ps
    +. (0.69 *. rd *. (cw +. cin))
    +. (0.38 *. rw *. cw)
    +. (0.69 *. rw *. cin)
  in
  float_of_int n *. seg

let bare_delay d w ~length_um =
  Elmore.delay_ps ~r_drv_kohm:d.r0_kohm ~wire:w ~length_um ~c_load_ff:d.c0_ff

let optimal_count d w ~length_um =
  let n = int_of_float (Float.round (raw_optimal_count d w ~length_um)) in
  if n < 1 then 0
  else begin
    let h = optimal_size d w in
    if delay_with d w ~length_um ~n ~h < bare_delay d w ~length_um then n else 0
  end

let optimal_delay_ps d w ~length_um =
  match optimal_count d w ~length_um with
  | 0 -> bare_delay d w ~length_um
  | n -> delay_with d w ~length_um ~n ~h:(optimal_size d w)

let delay_per_mm_ps d w =
  let l = 10000. in
  (* long enough to be in the linear regime *)
  optimal_delay_ps d w ~length_um:(2. *. l) -. optimal_delay_ps d w ~length_um:l
  |> fun dd -> dd /. (l /. 1000.)
