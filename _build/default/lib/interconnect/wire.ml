type t = { r_kohm_per_um : float; c_ff_per_um : float }

let of_tech ?(width_mult = 1.) (tech : Gap_tech.Tech.t) =
  assert (width_mult >= 1.);
  {
    r_kohm_per_um = tech.wire_r_kohm_per_um /. width_mult;
    (* ~60% of minimum-pitch capacitance is area term that scales with width;
       the rest is fringe/coupling and stays. *)
    c_ff_per_um = tech.wire_c_ff_per_um *. (0.4 +. (0.6 *. width_mult)) /. 1.0;
  }

let total_r_kohm t ~length_um = t.r_kohm_per_um *. length_um
let total_c_ff t ~length_um = t.c_ff_per_um *. length_um

let rc_delay_ps t ~length_um =
  0.38 *. total_r_kohm t ~length_um *. total_c_ff t ~length_um
