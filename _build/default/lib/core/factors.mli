(** The paper's Sec. 3 factor table, re-derived from the substrate models.

    Each factor's "maximum contribution" is measured by running the relevant
    engine at its two extremes (e.g. mapping the same netlist against the
    poor and rich libraries) rather than asserted. Results are cached: the
    heavier factors synthesize real netlists. *)

type t = {
  factor_name : string;
  paper_max : float;  (** the value the paper asserts *)
  modeled : float;  (** what our models produce *)
  how : string;  (** one-line provenance of [modeled] *)
}

val microarchitecture : unit -> t
(** Paper x4.00: deep custom pipelining + fewer logic levels vs an
    unpipelined ASIC, in FO4-normalized frequency. *)

val floorplanning : unit -> t
(** Paper x1.25: BACPAC-style localized vs cross-chip critical path. *)

val sizing_and_circuit : unit -> t
(** Paper x1.25: poor library + minimal sizing vs rich library + TILOS, on a
    mapped benchmark netlist. *)

val dynamic_logic : unit -> t
(** Paper x1.50: static vs dual-rail domino mapping of the same logic. *)

val process_variation : unit -> t
(** Paper x1.90: Monte Carlo best-fab binned custom vs slow-fab worst-case
    ASIC rating. *)

val all : unit -> t list
val ranked : t list -> t list
(** Factors sorted by modeled contribution, largest first — the paper's
    Sec. 9 ordering ("the two most significant factors are pipelining and
    process variation"). *)

val composite : t list -> float
(** Product of [modeled] values. *)

val paper_composite : t list -> float
