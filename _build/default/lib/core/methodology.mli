(** Design-methodology descriptors.

    "When designing a custom processor, the designer has a full range of
    choices in design style" (Sec. 3). A methodology fixes one choice per
    factor axis; {!Gap_model} turns the choices into a speed estimate. *)

type pipelining =
  | Unpipelined  (** control-dominated ASIC practice *)
  | Pipelined of int  (** number of stages *)

type floorplanning = Automatic_scatter | Careful
type library_quality = Poor_two_drive | Rich
type sizing_effort = None_minimal | Critical_path_sized
type logic_family = Static_only | Domino_on_critical
type clocking = Asic_tree | Custom_tuned_tree

type process_access =
  | Worst_case_slow_fab  (** signoff rating, committed to a slower foundry *)
  | Worst_case_typical_fab
  | Speed_tested  (** per-part binning of an ASIC (Sec. 8.3) *)
  | Best_fab_binned  (** custom: best plant, top bins sold as such *)

type t = {
  meth_name : string;
  pipelining : pipelining;
  floorplanning : floorplanning;
  library : library_quality;
  sizing : sizing_effort;
  logic_family : logic_family;
  clocking : clocking;
  process : process_access;
}

val typical_asic : t
(** Unpipelined, scattered, decent library but no sizing effort, static,
    ASIC tree, slow-fab worst-case rating: the 120-150 MHz design. *)

val good_asic : t
(** What the paper says ASIC flows {e can} do: pipelined x5, floorplanned,
    rich library, sized, speed-tested. *)

val custom : t
(** Alpha/PPC practice: deep pipeline, manual floorplan, continuous sizing,
    domino on critical paths, tuned clock, best fab. *)

val describe : t -> string
