let observed_gap_lo = 6.
let observed_gap_hi = 8.
let observed_gap_mid = sqrt (observed_gap_lo *. observed_gap_hi)

type residual_step = {
  after_factors : string list;
  explained : float;
  residual : float;
}

let residual_analysis factors =
  (* Paper order: pipelining, process variation, dynamic logic, then the
     remaining two. Residuals are measured against the full composite, as in
     Sec. 9: "pipelining and process variation ... account for all except a
     factor of about 2 to 3x" = composite / (pipelining x variation). *)
  let composite = Factors.composite factors in
  let find name =
    List.find (fun (f : Factors.t) -> f.Factors.factor_name = name) factors
  in
  let order =
    [
      "micro-architecture (pipelining, logic levels)";
      "process variation and accessibility";
      "dynamic logic on critical paths";
      "floorplanning and placement";
      "transistor/wire sizing, circuit design";
    ]
  in
  let rec go applied explained = function
    | [] -> []
    | name :: rest ->
        let f = find name in
        let applied = applied @ [ name ] in
        let explained = explained *. f.Factors.modeled in
        { after_factors = applied; explained; residual = composite /. explained }
        :: go applied explained rest
  in
  go [] 1. order

(* Methodology axis -> fraction of a factor's modeled ratio that the choice
   captures. A ratio r captured at fraction a contributes r^a (log-linear
   interpolation), so "half the benefit" composes sensibly. *)
let partial ratio fraction = ratio ** fraction

let overlap_kappa = 0.72

let speed_multiplier (m : Methodology.t) =
  let fs = Factors.all () in
  let get name = (List.find (fun (f : Factors.t) -> f.Factors.factor_name = name) fs).Factors.modeled in
  let uarch = get "micro-architecture (pipelining, logic levels)" in
  let floorplan = get "floorplanning and placement" in
  let sizing = get "transistor/wire sizing, circuit design" in
  let domino = get "dynamic logic on critical paths" in
  let process = get "process variation and accessibility" in
  let pipe_mult =
    match m.Methodology.pipelining with
    | Methodology.Unpipelined -> 1.
    | Methodology.Pipelined stages ->
        (* fraction of the full (deep custom) pipelining benefit; the
           reference custom point is ~8 effective stages *)
        let frac = Float.min 1. (log (float_of_int stages) /. log 8.) in
        partial uarch frac
  in
  let fp_mult =
    match m.Methodology.floorplanning with
    | Methodology.Automatic_scatter -> 1.
    | Methodology.Careful -> floorplan
  in
  let lib_sizing_mult =
    match (m.Methodology.library, m.Methodology.sizing) with
    | Methodology.Poor_two_drive, Methodology.None_minimal -> 1.
    | Methodology.Rich, Methodology.None_minimal -> partial sizing 0.5
    | Methodology.Poor_two_drive, Methodology.Critical_path_sized -> partial sizing 0.5
    | Methodology.Rich, Methodology.Critical_path_sized -> sizing
  in
  let logic_mult =
    match m.Methodology.logic_family with
    | Methodology.Static_only -> 1.
    | Methodology.Domino_on_critical -> domino
  in
  let clock_mult =
    match m.Methodology.clocking with
    | Methodology.Asic_tree -> 1.
    | Methodology.Custom_tuned_tree ->
        (* ~5% of cycle recovered: Sec. 4.1's skew comparison *)
        1.05
  in
  let process_mult =
    match m.Methodology.process with
    | Methodology.Worst_case_slow_fab -> 1.
    | Methodology.Worst_case_typical_fab -> partial process 0.25
    | Methodology.Speed_tested -> partial process 0.55
    | Methodology.Best_fab_binned -> process
  in
  let raw =
    pipe_mult *. fp_mult *. lib_sizing_mult *. logic_mult *. clock_mult *. process_mult
  in
  (* Overlap discount: the per-factor maxima are measured one at a time
     against a common baseline, but jointly they overlap — the chip-derived
     pipelining depths already bank part of the domino and sizing gains, and
     deep pipelines shorten the global wires floorplanning would have fixed.
     The paper makes the same observation from the other side: the raw
     product is ~18x while real custom parts show only 6-8x. A single
     log-domain coefficient (raw^kappa) calibrated on that anchor captures
     it. *)
  raw ** overlap_kappa

let gap_between a b = speed_multiplier a /. speed_multiplier b

let predicted_asic_custom_gap () =
  gap_between Methodology.custom Methodology.typical_asic
