type pipelining = Unpipelined | Pipelined of int
type floorplanning = Automatic_scatter | Careful
type library_quality = Poor_two_drive | Rich
type sizing_effort = None_minimal | Critical_path_sized
type logic_family = Static_only | Domino_on_critical
type clocking = Asic_tree | Custom_tuned_tree

type process_access =
  | Worst_case_slow_fab
  | Worst_case_typical_fab
  | Speed_tested
  | Best_fab_binned

type t = {
  meth_name : string;
  pipelining : pipelining;
  floorplanning : floorplanning;
  library : library_quality;
  sizing : sizing_effort;
  logic_family : logic_family;
  clocking : clocking;
  process : process_access;
}

let typical_asic =
  {
    meth_name = "typical ASIC";
    pipelining = Unpipelined;
    floorplanning = Automatic_scatter;
    library = Rich;
    sizing = None_minimal;
    logic_family = Static_only;
    clocking = Asic_tree;
    process = Worst_case_slow_fab;
  }

let good_asic =
  {
    meth_name = "best-practice ASIC";
    pipelining = Pipelined 5;
    floorplanning = Careful;
    library = Rich;
    sizing = Critical_path_sized;
    logic_family = Static_only;
    clocking = Asic_tree;
    process = Speed_tested;
  }

let custom =
  {
    meth_name = "custom";
    pipelining = Pipelined 8;
    floorplanning = Careful;
    library = Rich;
    sizing = Critical_path_sized;
    logic_family = Domino_on_critical;
    clocking = Custom_tuned_tree;
    process = Best_fab_binned;
  }

let describe t =
  let pipe =
    match t.pipelining with
    | Unpipelined -> "unpipelined"
    | Pipelined n -> Printf.sprintf "%d-stage pipeline" n
  in
  Printf.sprintf "%s: %s, %s floorplan, %s library, %s sizing, %s logic, %s clock, %s"
    t.meth_name pipe
    (match t.floorplanning with Automatic_scatter -> "automatic" | Careful -> "careful")
    (match t.library with Poor_two_drive -> "2-drive" | Rich -> "rich")
    (match t.sizing with None_minimal -> "minimal" | Critical_path_sized -> "critical-path")
    (match t.logic_family with Static_only -> "static" | Domino_on_critical -> "domino")
    (match t.clocking with Asic_tree -> "ASIC" | Custom_tuned_tree -> "tuned")
    (match t.process with
    | Worst_case_slow_fab -> "worst-case @ slow fab"
    | Worst_case_typical_fab -> "worst-case @ typical fab"
    | Speed_tested -> "speed-tested"
    | Best_fab_binned -> "best fab, binned")
