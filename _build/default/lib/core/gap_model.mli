(** The paper's headline analysis: compose the factor models, compare against
    the observed 6-8x ASIC-custom gap, and compute the residuals of Sec. 9
    ("pipelining and process variation ... account for all except a factor of
    about 2 to 3x; [with] dynamic-logic ... all but a factor of about
    1.6x"). *)

val observed_gap_lo : float
val observed_gap_hi : float
val observed_gap_mid : float
(** Geometric mean of 6 and 8. *)

type residual_step = {
  after_factors : string list;  (** factors applied so far *)
  explained : float;  (** product of their modeled values *)
  residual : float;  (** composite / explained, the paper's Sec. 9 quantity *)
}

val residual_analysis : Factors.t list -> residual_step list
(** Progressive explanation in the paper's order of importance: pipelining,
    process variation, dynamic logic, then the rest. *)

(** {1 Methodology-level speed estimates} *)

val overlap_kappa : float
(** Log-domain overlap coefficient applied when composing factors into a
    methodology-level estimate (0.72): the individual factor maxima are
    measured one at a time and overlap when applied jointly — the paper's own
    observation that the raw ~18x product exceeds the observed 6-8x gap. *)

val speed_multiplier : Methodology.t -> float
(** Frequency multiplier of a methodology relative to {e worst practice}
    (unpipelined, scattered, poor library, minimal sizing, static, ASIC
    clock, slow-fab worst-case). Each axis contributes the fraction of its
    factor's modeled range that the choice unlocks; the product is discounted
    by {!overlap_kappa}. *)

val gap_between : Methodology.t -> Methodology.t -> float
(** [speed_multiplier a /. speed_multiplier b]. *)

val predicted_asic_custom_gap : unit -> float
(** [gap_between custom typical_asic]: should land in the observed 6-8x. *)
