lib/core/methodology.ml: Printf
