lib/core/report.mli: Factors Gap_model Methodology
