lib/core/factors.ml: Gap_datapath Gap_domino Gap_interconnect Gap_liberty Gap_place Gap_sta Gap_synth Gap_tech Gap_uarch Gap_variation List
