lib/core/methodology.mli:
