lib/core/gap_model.mli: Factors Methodology
