lib/core/factors.mli:
