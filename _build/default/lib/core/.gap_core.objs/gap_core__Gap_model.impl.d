lib/core/gap_model.ml: Factors Float List Methodology
