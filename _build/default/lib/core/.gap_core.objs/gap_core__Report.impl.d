lib/core/report.ml: Factors Gap_model Gap_util List Methodology Printf String
