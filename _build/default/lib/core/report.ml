let factor_table factors =
  let rows =
    List.map
      (fun (f : Factors.t) ->
        [
          f.Factors.factor_name;
          Gap_util.Table.fmt_ratio f.Factors.paper_max;
          Gap_util.Table.fmt_ratio f.Factors.modeled;
          f.Factors.how;
        ])
      factors
    @ [
        [
          "composite (product)";
          Gap_util.Table.fmt_ratio (Factors.paper_composite factors);
          Gap_util.Table.fmt_ratio (Factors.composite factors);
          "";
        ];
      ]
  in
  Gap_util.Table.render
    ~aligns:[ Gap_util.Table.Left; Right; Right; Left ]
    ~header:[ "factor"; "paper max"; "modeled"; "derivation" ]
    rows

let residual_table steps =
  let rows =
    List.map
      (fun (s : Gap_model.residual_step) ->
        [
          String.concat " + "
            (List.map
               (fun n -> List.hd (String.split_on_char ' ' n))
               s.Gap_model.after_factors);
          Gap_util.Table.fmt_ratio s.Gap_model.explained;
          Gap_util.Table.fmt_ratio s.Gap_model.residual;
        ])
      steps
  in
  Gap_util.Table.render
    ~header:[ "factors applied"; "explained"; "residual of composite" ]
    rows

let methodology_table meths =
  let rows =
    List.map
      (fun m ->
        [
          m.Methodology.meth_name;
          Gap_util.Table.fmt_ratio (Gap_model.speed_multiplier m);
        ])
      meths
  in
  Gap_util.Table.render ~header:[ "methodology"; "speed vs worst practice" ] rows

let print_full_analysis () =
  let fs = Factors.all () in
  print_string (factor_table fs);
  print_newline ();
  print_string (residual_table (Gap_model.residual_analysis fs));
  print_newline ();
  print_string
    (methodology_table
       [ Methodology.typical_asic; Methodology.good_asic; Methodology.custom ]);
  Printf.printf "predicted ASIC-custom gap: x%.2f (observed: %.0f-%.0fx)\n"
    (Gap_model.predicted_asic_custom_gap ())
    Gap_model.observed_gap_lo Gap_model.observed_gap_hi
