(** Rendering of the gap analysis as the paper's tables. *)

val factor_table : Factors.t list -> string
(** The Sec. 3 overview: factor, paper value, modeled value, provenance,
    with the composite row at the bottom. *)

val residual_table : Gap_model.residual_step list -> string
val methodology_table : Methodology.t list -> string
(** Speed multipliers relative to worst practice, plus mutual gaps. *)

val print_full_analysis : unit -> unit
