module Aig = Gap_logic.Aig
module Cell = Gap_liberty.Cell
module Library = Gap_liberty.Library
module Netlist = Gap_netlist.Netlist

(* Cells for each arity of the monotone tree builders: AND2/3/4, OR2/3/4 at a
   mid-ladder drive. Missing arities fall back to composing smaller ones. *)
type kit = {
  ands : (int * Cell.t) list;  (** arity, cell; descending arity *)
  ors : (int * Cell.t) list;
  inv : Cell.t;
}

let pick lib base =
  match Library.drives_of lib base with
  | [] -> None
  | cells ->
      let arr = Array.of_list cells in
      Some arr.(Array.length arr / 2)

let kit_of lib =
  let bases prefix = List.filter_map
      (fun arity ->
        Option.map (fun c -> (arity, c)) (pick lib (Printf.sprintf "%s%d" prefix arity)))
      [ 4; 3; 2 ]
  in
  let ands = bases "AND" and ors = bases "OR" in
  if not (List.exists (fun (a, _) -> a = 2) ands && List.exists (fun (a, _) -> a = 2) ors)
  then failwith "Dualrail: domino library needs AND2 and OR2";
  let inv =
    match Library.inverters lib with
    | [] -> failwith "Dualrail: domino library needs a static inverter"
    | c :: _ -> c
  in
  { ands; ors; inv }

let map_aig ~domino_lib ?(name = "domino") g =
  let kit = kit_of domino_lib in
  let nl = Netlist.create ~lib:domino_lib name in
  let input_nets =
    Array.map (fun (pname, _) -> Netlist.add_input nl pname) (Aig.inputs g)
  in
  let const0 = lazy (Netlist.add_const nl false) in
  let const1 = lazy (Netlist.add_const nl true) in
  let fanout = Aig.fanout_counts g in
  (* rail caches: (net, tree depth estimate) per node *)
  let pos : (int, int * int) Hashtbl.t = Hashtbl.create 256 in
  let neg : (int, int * int) Hashtbl.t = Hashtbl.create 256 in
  (* Build a balanced tree of [cells] (arity list) over operand (net, level)
     pairs; combine lowest-level operands first. *)
  let tree cells operands =
    let heap =
      Gap_util.Heap.of_array
        ~cmp:(fun (_, l1) (_, l2) -> compare l1 l2)
        (Array.of_list operands)
    in
    let rec reduce () =
      match Gap_util.Heap.pop heap with
      | None -> failwith "Dualrail: empty operand list"
      | Some (net, level) -> (
          match Gap_util.Heap.peek heap with
          | None -> (net, level)
          | Some _ ->
              (* take up to the widest available arity *)
              let arity, cell =
                let remaining = 1 + Gap_util.Heap.length heap in
                let fits = List.filter (fun (a, _) -> a <= remaining) cells in
                match fits with
                | [] -> List.nth cells (List.length cells - 1) (* smallest *)
                | best :: _ -> best
              in
              let ops = ref [ (net, level) ] in
              for _ = 2 to arity do
                match Gap_util.Heap.pop heap with
                | Some op -> ops := op :: !ops
                | None -> ()
              done;
              let nets = Array.of_list (List.map fst !ops) in
              let max_level = List.fold_left (fun m (_, l) -> max m l) 0 !ops in
              let inst = Netlist.add_cell nl cell nets in
              Gap_util.Heap.push heap (Netlist.out_net nl inst, max_level + 1);
              reduce ())
    in
    reduce ()
  in
  let rec rail_pos id =
    match Hashtbl.find_opt pos id with
    | Some r -> r
    | None ->
        let r =
          if id = 0 then (Lazy.force const0, 0)
          else
            match Aig.input_index g id with
            | Some p -> (input_nets.(p), 0)
            | None ->
                (* collect the AND super-gate leaves (single-fanout,
                   non-complemented AND children expand) *)
                let leaves = collect_and_leaves id in
                tree kit.ands (List.map rail_of leaves)
        in
        Hashtbl.replace pos id r;
        r
  and rail_neg id =
    match Hashtbl.find_opt neg id with
    | Some r -> r
    | None ->
        let r =
          if id = 0 then (Lazy.force const1, 0)
          else
            match Aig.input_index g id with
            | Some p ->
                let inst = Netlist.add_cell nl kit.inv [| input_nets.(p) |] in
                (Netlist.out_net nl inst, 0)
            | None ->
                (* !(/\ leaves) = \/ !leaves *)
                let leaves = collect_and_leaves id in
                tree kit.ors (List.map (fun l -> rail_of (Aig.negate l)) leaves)
        in
        Hashtbl.replace neg id r;
        r
  and collect_and_leaves id =
    let rec go lit acc =
      let cid = Aig.id_of_lit lit in
      if (not (Aig.is_compl lit)) && Aig.is_and g cid && fanout.(cid) <= 1 then begin
        let a, b = Aig.fanins g cid in
        go a (go b acc)
      end
      else lit :: acc
    in
    let a, b = Aig.fanins g id in
    go a (go b [])
  and rail_of l =
    let id = Aig.id_of_lit l in
    if Aig.is_compl l then rail_neg id else rail_pos id
  in
  Array.iter
    (fun (oname, l) -> ignore (Netlist.set_output nl oname (fst (rail_of l))))
    (Aig.outputs g);
  nl

let rails_instantiated nl =
  let domino = ref 0 and inverters = ref 0 in
  for i = 0 to Netlist.num_instances nl - 1 do
    let c = Netlist.cell_of nl i in
    if c.Cell.family = Cell.Domino then incr domino
    else if Cell.is_inverter c then incr inverters
  done;
  (!domino, !inverters)
