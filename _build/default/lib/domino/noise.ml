type family_margin = { label : string; margin_frac : float }

let static_cmos = { label = "static CMOS"; margin_frac = 0.45 }
let domino_unkeepered = { label = "domino (no keeper)"; margin_frac = 0.20 }
let domino_keeper = { label = "domino (keeper)"; margin_frac = 0.30 }

let glitch_frac ~coupling_ratio = coupling_ratio
let fails fm ~coupling_ratio = glitch_frac ~coupling_ratio > fm.margin_frac
let max_safe_coupling fm = fm.margin_frac

type exposure = {
  nets_at_risk : int;
  nets_total : int;
  risk_frac : float;
  worst_coupling : float;
}

let coupling_of_usage ~usage ~capacity =
  assert (capacity >= 1);
  let neighbours = max 0 (usage - 1) in
  let raw = 0.6 *. float_of_int neighbours /. float_of_int capacity in
  Float.min 0.6 raw

let exposure fm nl (r : Gap_place.Router.result) =
  (* proxy: a net's coupling scales with the router's average cell usage
     along its length; we approximate with the global max-usage-derived
     pressure per net length share *)
  let module Netlist = Gap_netlist.Netlist in
  let total = ref 0 and at_risk = ref 0 and worst = ref 0. in
  let avg_usage =
    (* overall track pressure: overflowed cells push the average up *)
    let base = float_of_int r.Gap_place.Router.max_usage in
    Float.min base (float_of_int r.Gap_place.Router.capacity *. 1.5)
  in
  for net = 0 to Netlist.num_nets nl - 1 do
    let len = r.Gap_place.Router.routed_len_um.(net) in
    if len > 0. then begin
      incr total;
      (* longer nets spend more length in congested regions *)
      let length_share =
        Float.min 1. (len /. (float_of_int r.Gap_place.Router.grid_side *. 10.))
      in
      let usage = 1. +. (avg_usage -. 1.) *. (0.4 +. (0.6 *. length_share)) in
      let k =
        coupling_of_usage
          ~usage:(int_of_float (Float.round usage))
          ~capacity:r.Gap_place.Router.capacity
      in
      if k > !worst then worst := k;
      if fails fm ~coupling_ratio:k then incr at_risk
    end
  done;
  {
    nets_at_risk = !at_risk;
    nets_total = !total;
    risk_frac = (if !total = 0 then 0. else float_of_int !at_risk /. float_of_int !total);
    worst_coupling = !worst;
  }
