lib/domino/dualrail.mli: Gap_liberty Gap_logic Gap_netlist
