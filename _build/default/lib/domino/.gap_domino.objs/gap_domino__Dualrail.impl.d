lib/domino/dualrail.ml: Array Gap_liberty Gap_logic Gap_netlist Gap_util Hashtbl Lazy List Option Printf
