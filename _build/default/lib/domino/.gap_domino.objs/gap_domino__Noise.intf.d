lib/domino/noise.mli: Gap_netlist Gap_place
