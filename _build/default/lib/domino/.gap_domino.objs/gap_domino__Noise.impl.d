lib/domino/noise.ml: Array Float Gap_netlist Gap_place
