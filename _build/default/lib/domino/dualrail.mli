(** Dual-rail domino synthesis.

    Domino gates evaluate monotonically: after precharge, the output can only
    rise, so a domino network computes only monotone (non-inverting)
    functions of its inputs — "inputs must not glitch during or after the
    precharge" (Sec. 7.1). Arbitrary logic is made monotone by {e dual-rail}
    expansion: every signal [s] travels as a pair [(s, !s)], inversion
    becomes a free rail swap, and De Morgan turns every AND of rails into an
    OR on the complementary rails. Both rails are built from monotone
    AND/OR domino cells; only complementing the primary inputs needs static
    inverters.

    This is the real mechanism behind the paper's Sec. 7 factor: each domino
    stage is 1.5-2x faster than its static equivalent, at roughly twice the
    gates (both rails) and careful clocking that we do not model further. *)

val map_aig :
  domino_lib:Gap_liberty.Library.t ->
  ?name:string ->
  Gap_logic.Aig.t ->
  Gap_netlist.Netlist.t
(** Dual-rail cover of the whole AIG with domino AND2/OR2 cells (plus static
    inverters at the inputs). Output functions are identical to the AIG's.
    Requires a library generated with [Libgen.domino] (monotone cells plus a
    static inverter). *)

val rails_instantiated : Gap_netlist.Netlist.t -> int * int
(** (domino cells, static inverters) in a mapped result — diagnostics for
    the area-cost discussion. *)
