(** Noise margins of dynamic versus static logic.

    Sec. 7.1: "Dynamic logic is particularly susceptible to noise, as any
    glitches on input voltages may cause a discharge of the charge stored."
    A static gate only propagates noise that exceeds its switching threshold
    {e and} it self-restores afterwards; a precharged domino node latches any
    glitch above the pull-down threshold for the rest of the cycle.

    The model: a victim wire couples to aggressors with capacitance ratio
    [k = Cc / (Cc + Cg)]; a full-swing aggressor injects a glitch of
    [k x Vdd]. The glitch is fatal when it exceeds the family's noise
    margin — [~0.45 Vdd] for static CMOS, [~0.20 Vdd] for an unkeepered
    domino input, [~0.30 Vdd] with a keeper. Coupling ratios per net are
    estimated from routing congestion (neighbours in the same grid cell). *)

type family_margin = {
  label : string;
  margin_frac : float;  (** of Vdd *)
}

val static_cmos : family_margin
val domino_unkeepered : family_margin
val domino_keeper : family_margin

val glitch_frac : coupling_ratio:float -> float
(** [k] in, glitch as a fraction of Vdd out (identity, named for clarity). *)

val fails : family_margin -> coupling_ratio:float -> bool
val max_safe_coupling : family_margin -> float

type exposure = {
  nets_at_risk : int;
  nets_total : int;
  risk_frac : float;
  worst_coupling : float;
}

val coupling_of_usage : usage:int -> capacity:int -> float
(** Congestion-derived coupling estimate: a net in a cell with [usage]
    occupants out of [capacity] tracks sees [usage - 1] potential aggressors;
    ratio saturates at 0.6. *)

val exposure :
  family_margin ->
  Gap_netlist.Netlist.t ->
  Gap_place.Router.result ->
  exposure
(** Fraction of routed nets whose congestion-implied coupling would break the
    family's noise margin: the quantitative form of "requires careful design
    of power distribution, and clock distribution as well". *)
