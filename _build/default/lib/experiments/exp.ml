type verdict = Pass | Near of string | Info

type row = { label : string; paper : string; measured : string; verdict : verdict }

type result = {
  id : string;
  title : string;
  section : string;
  rows : row list;
  notes : string list;
}

let row ?(verdict = Info) ~label ~paper ~measured () = { label; paper; measured; verdict }

let check x ~lo ~hi =
  let slop = 0.02 *. (hi -. lo +. Float.abs lo) in
  if x >= lo -. slop && x <= hi +. slop then Pass
  else
    Near
      (Printf.sprintf "%.2f vs %.2f..%.2f (%+.0f%% off nearest bound)" x lo hi
         (100.
         *. (if x < lo then (x -. lo) /. lo else (x -. hi) /. hi)))

let ratio x = Printf.sprintf "x%.2f" x
let pct x = Printf.sprintf "%.0f%%" (100. *. x)
let mhz = Gap_util.Units.pp_freq_mhz
let ps = Gap_util.Units.pp_time_ps
let f1 x = Printf.sprintf "%.1f" x

let verdict_str = function
  | Pass -> "ok"
  | Near s -> "NEAR: " ^ s
  | Info -> ""

let render r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "=== %s: %s (paper %s) ===\n" r.id r.title r.section);
  let rows =
    List.map
      (fun row -> [ row.label; row.paper; row.measured; verdict_str row.verdict ])
      r.rows
  in
  Buffer.add_string buf
    (Gap_util.Table.render
       ~aligns:[ Gap_util.Table.Left; Right; Right; Left ]
       ~header:[ "claim"; "paper"; "measured"; "verdict" ]
       rows);
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "note: %s\n" n)) r.notes;
  Buffer.contents buf

let print r = print_string (render r)

let csv_escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_csv r =
  let buf = Buffer.create 512 in
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat ","
           [
             csv_escape r.id;
             csv_escape row.label;
             csv_escape row.paper;
             csv_escape row.measured;
             csv_escape (verdict_str row.verdict);
           ]);
      Buffer.add_char buf '\n')
    r.rows;
  Buffer.contents buf

let passes r =
  List.fold_left
    (fun (p, c) row ->
      match row.verdict with
      | Pass -> (p + 1, c + 1)
      | Near _ -> (p, c + 1)
      | Info -> (p, c))
    (0, 0) r.rows
