(** X5 (extension): regular-datapath tiling, the area perspective, and
    multi-issue.

    - Sec. 5.2: "A bit slice may be laid out automatically then tiled" — the
      tiler recovers bit slices from the mapped netlist and beats annealing
      on timing (the carry chain abuts) even when annealing wins the raw
      wirelength objective.
    - Sec. 9's caveat: "Viewed from the standpoint of area our results and
      conclusions would be significantly different" — we quantify the area
      side of three speed techniques.
    - Sec. 4.1: the Alpha "can issue up to six instructions per cycle ...
      significantly faster performance when instruction parallelism can be
      exploited". *)

module Flow = Gap_synth.Flow
module Netlist = Gap_netlist.Netlist
module Sta = Gap_sta.Sta

let tech = Gap_tech.Tech.asic_025um

let run () =
  let lib = Gap_liberty.Libgen.(make tech rich) in
  let poor_lib = Gap_liberty.Libgen.(make tech poor) in
  let domino_lib = Gap_liberty.Libgen.(make tech domino) in
  (* tiling vs annealing on a bit-sliced datapath *)
  let g = Gap_datapath.Adders.ripple_adder 16 in
  let build () = Gap_synth.Mapper.map_aig ~lib g in
  let tiled_nl = build () in
  let tiled = Gap_place.Tiler.place tiled_nl in
  Gap_place.Wire_estimate.annotate tiled_nl;
  let tiled_period = (Sta.analyze tiled_nl).Sta.min_period_ps in
  let sa_nl = build () in
  ignore (Gap_place.Placer.place sa_nl);
  Gap_place.Wire_estimate.annotate sa_nl;
  let sa_period = (Sta.analyze sa_nl).Sta.min_period_ps in
  (* area rows *)
  let effort = { Flow.default_effort with Flow.tilos_moves = 0 } in
  (* area comparisons use area-oriented mapping so speed/area trade-offs in
     the delay mapper don't confound the library effect *)
  let area lib g =
    Netlist.area_um2 (Gap_synth.Mapper.map_aig ~lib ~mode:Gap_synth.Mapper.Area g)
  in
  let cla = Gap_datapath.Adders.cla_adder 16 in
  let rich_area = area lib cla in
  let poor_area = area poor_lib cla in
  (* domino vs the speed-oriented static cover: both are built for speed *)
  let rich_delay_area =
    Netlist.area_um2 (Gap_synth.Mapper.map_aig ~lib ~mode:Gap_synth.Mapper.Delay cla)
  in
  let dom = Gap_domino.Dualrail.map_aig ~domino_lib cla in
  let dom_area = Netlist.area_um2 dom in
  let pipe_nl = (Flow.run ~lib ~effort (Gap_datapath.Multiplier.array_multiplier ~width:8)).Flow.netlist in
  let comb_area = Netlist.area_um2 pipe_nl in
  ignore (Gap_retime.Pipeline.pipeline ~stages:4 pipe_nl);
  let piped_area = Netlist.area_um2 pipe_nl in
  (* multi-issue *)
  let ipc issue = Gap_uarch.Cpi.ipc ~pipeline_stages:7 ~issue_width:issue Gap_uarch.Cpi.spec_like in
  let ipc_dsp issue = Gap_uarch.Cpi.ipc ~pipeline_stages:7 ~issue_width:issue Gap_uarch.Cpi.dsp_like in
  {
    Exp.id = "X5";
    title = "datapath regularity, area costs, multi-issue (extension)";
    section = "Sec. 5.2 / 9 / 4.1";
    rows =
      [
        Exp.row
          ~verdict:(Exp.check (sa_period /. tiled_period) ~lo:1.0 ~hi:1.6)
          ~label:"bit-slice tiling vs annealed placement, ripple adder period"
          ~paper:"tiled slices abut (Sec. 5.2)"
          ~measured:
            (Printf.sprintf "%.0f ps vs %.0f ps (x%.2f)" tiled_period sa_period
               (sa_period /. tiled_period))
          ();
        Exp.row
          ~verdict:
            (if tiled.Gap_place.Tiler.rows = 16 then Exp.Pass
             else Exp.Near (Printf.sprintf "%d rows" tiled.Gap_place.Tiler.rows))
          ~label:"tiler recovers the 16 bit slices from the netlist" ~paper:"-"
          ~measured:(Printf.sprintf "%d rows x %d cols" tiled.Gap_place.Tiler.rows tiled.Gap_place.Tiler.cols)
          ();
        Exp.row
          ~verdict:(Exp.check (poor_area /. rich_area) ~lo:1.0 ~hi:2.5)
          ~label:"poor library costs area too" ~paper:"richer library reduces area [19]"
          ~measured:(Exp.ratio (poor_area /. rich_area)) ();
        Exp.row
          ~verdict:(Exp.check (dom_area /. rich_delay_area) ~lo:1.2 ~hi:4.0)
          ~label:"dual-rail domino area vs delay-mapped static (same function)"
          ~paper:"area cost of rails"
          ~measured:(Exp.ratio (dom_area /. rich_delay_area)) ();
        Exp.row
          ~verdict:(Exp.check (piped_area /. comb_area) ~lo:1.05 ~hi:2.5)
          ~label:"4-stage pipelining area overhead (registers)"
          ~paper:"speed costs area (Sec. 9)"
          ~measured:(Exp.ratio (piped_area /. comb_area)) ();
        Exp.row
          ~verdict:(Exp.check (ipc 6 /. ipc 1) ~lo:1.3 ~hi:3.0)
          ~label:"6-issue vs single-issue IPC (SPEC-like, 7 stages)"
          ~paper:"Alpha: faster when ILP exploited (Sec. 4.1)"
          ~measured:
            (Printf.sprintf "%.2f vs %.2f (x%.2f)" (ipc 6) (ipc 1) (ipc 6 /. ipc 1))
          ();
        Exp.row ~verdict:Exp.Info
          ~label:"same comparison on parallel DSP code" ~paper:"-"
          ~measured:(Printf.sprintf "x%.2f" (ipc_dsp 6 /. ipc_dsp 1))
          ();
      ];
    notes =
      [
        "the tiling row is the paper's regularity argument made concrete: \
         annealing minimizes *total* wirelength, tiling keeps the *critical* \
         slice chain adjacent — timing wins even as HPWL loses";
      ];
  }
