(** E5 (Sec. 4.1): clock skew and register overhead.

    H-tree model at ASIC-automated vs custom-tuned quality, on dies matching
    the paper's chips: skew lands at ~10% of an ASIC cycle vs ~5% of a custom
    cycle (Alpha: 75 ps at 600 MHz), custom-quality skew is worth ~5-10%
    speed, and the Alpha's latches cost ~15% of its cycle. *)

module H = Gap_clocktree.Htree

let run () =
  let tech = Gap_tech.Tech.asic_025um in
  let custom_tech = Gap_tech.Tech.custom_025um in
  (* ASIC: 150 MHz part on a 10 mm die *)
  let asic_period = Gap_util.Units.period_ps_of_mhz 150. in
  let asic_tree = H.build ~tech ~die_side_um:10000. ~sinks:20000 H.Asic_automated in
  let asic_frac = H.skew_fraction_of_period asic_tree ~period_ps:asic_period in
  (* Alpha: 600 MHz, 15 mm die (2.25 cm^2), tuned *)
  let alpha_period = Gap_util.Units.period_ps_of_mhz 600. in
  let alpha_tree =
    H.build ~tech:custom_tech ~die_side_um:15000. ~sinks:100000 H.Custom_tuned
  in
  let alpha_frac = H.skew_fraction_of_period alpha_tree ~period_ps:alpha_period in
  let gain =
    H.speed_gain_from_custom_skew ~tech ~die_side_um:10000. ~sinks:20000
      ~period_ps:asic_period
  in
  (* Alpha latch overhead: custom latch (2.0 FO4) of a 15 FO4 cycle *)
  let custom_lib = Gap_liberty.Libgen.(make custom_tech custom) in
  let latch = Gap_retime.Overhead.register_overhead_ps ~lib:custom_lib ~skew_ps:0. in
  let latch_frac = latch /. (15. *. Gap_tech.Tech.fo4_ps custom_tech) in
  {
    Exp.id = "E5";
    title = "clock skew and latch overhead";
    section = "Sec. 4.1";
    rows =
      [
        Exp.row
          ~verdict:(Exp.check asic_frac ~lo:0.06 ~hi:0.14)
          ~label:"ASIC tree skew, 10 mm die @ 150 MHz" ~paper:"~10% of cycle"
          ~measured:(Printf.sprintf "%s (%s)" (Exp.ps asic_tree.H.skew_ps) (Exp.pct asic_frac))
          ();
        Exp.row
          ~verdict:(Exp.check alpha_frac ~lo:0.03 ~hi:0.07)
          ~label:"custom-tuned tree, Alpha-sized die @ 600 MHz" ~paper:"75 ps, ~5%"
          ~measured:(Printf.sprintf "%s (%s)" (Exp.ps alpha_tree.H.skew_ps) (Exp.pct alpha_frac))
          ();
        Exp.row
          ~verdict:(Exp.check gain ~lo:1.04 ~hi:1.12)
          ~label:"speed from custom-quality skew alone" ~paper:"~10%"
          ~measured:(Exp.ratio gain) ();
        Exp.row
          ~verdict:(Exp.check latch_frac ~lo:0.10 ~hi:0.18)
          ~label:"latch share of Alpha's 15 FO4 cycle" ~paper:"15%"
          ~measured:(Exp.pct latch_frac) ();
      ];
    notes =
      [
        Printf.sprintf "ASIC tree: %d levels, %.1f mm root-to-leaf, latency %s"
          asic_tree.H.levels
          (asic_tree.H.wirelength_um /. 1000.)
          (Exp.ps asic_tree.H.latency_ps);
      ];
  }
