(** X8 (extension): deep-submicron trends.

    Two of the paper's forward-looking remarks, checked across our 0.35 ->
    0.25 -> 0.18um nodes:

    - wires scale worse than gates, so the cross-chip wire costs more FO4
      every generation — the floorplanning factor grows;
    - gate speed itself tracks the 1.5x-per-generation rule the paper uses
      as its yardstick, when the same design is re-mapped to each node's
      freshly generated library. *)

module Tech = Gap_tech.Tech
module Flow = Gap_synth.Flow

let nodes = [ Tech.asic_035um; Tech.asic_025um; Tech.asic_018um ]

let wire_fo4_per_mm tech =
  let wire = Gap_interconnect.Wire.of_tech tech in
  let drv = Gap_interconnect.Repeater.default_driver tech in
  Gap_interconnect.Repeater.delay_per_mm_ps drv wire /. Tech.fo4_ps tech

let run () =
  let wire_trend = List.map (fun t -> (t, wire_fo4_per_mm t)) nodes in
  let w35 = List.assoc Tech.asic_035um wire_trend in
  let w18 = List.assoc Tech.asic_018um wire_trend in
  let fp t =
    Gap_interconnect.Bacpac.floorplan_speedup ~tech:t ~logic_depth_fo4:44.
      ~chip:Gap_interconnect.Bacpac.default_chip
  in
  let fp35 = fp Tech.asic_035um and fp18 = fp Tech.asic_018um in
  (* same design re-mapped per node *)
  let period t =
    let lib = Gap_liberty.Libgen.(make t rich) in
    let effort = { Flow.default_effort with Flow.tilos_moves = 100 } in
    (Flow.run ~lib ~effort (Gap_datapath.Adders.cla_adder 16)).Flow.sta
      .Gap_sta.Sta.min_period_ps
  in
  let p35 = period Tech.asic_035um in
  let p25 = period Tech.asic_025um in
  let p18 = period Tech.asic_018um in
  {
    Exp.id = "X8";
    title = "deep-submicron trends (extension)";
    section = "Sec. 2 / 7.1 / 8.3";
    rows =
      [
        Exp.row
          ~verdict:(Exp.check (w18 /. w35) ~lo:1.05 ~hi:3.0)
          ~label:"repeated global wire, FO4 per mm, 0.35um -> 0.18um"
          ~paper:"wires scale worse than gates"
          ~measured:
            (String.concat ", "
               (List.map
                  (fun (t, w) -> Printf.sprintf "%.2f @ %.2fum" w t.Tech.drawn_um)
                  wire_trend))
          ();
        Exp.row
          ~verdict:(Exp.check (((fp18 -. 1.) /. (fp35 -. 1.))) ~lo:1.0 ~hi:4.0)
          ~label:"floorplanning factor grows with scaling"
          ~paper:"problems more pronounced (Sec. 7.1)"
          ~measured:(Printf.sprintf "x%.2f @0.35um -> x%.2f @0.18um" fp35 fp18)
          ();
        Exp.row
          ~verdict:(Exp.check (p35 /. p25) ~lo:1.2 ~hi:1.8)
          ~label:"re-mapped design speedup 0.35 -> 0.25um"
          ~paper:"~1.5x per generation (Sec. 2)"
          ~measured:(Exp.ratio (p35 /. p25)) ();
        Exp.row
          ~verdict:(Exp.check (p25 /. p18) ~lo:1.2 ~hi:1.9)
          ~label:"re-mapped design speedup 0.25 -> 0.18um"
          ~paper:"~1.5x per generation"
          ~measured:(Exp.ratio (p25 /. p18)) ();
        Exp.row ~verdict:Exp.Info
          ~label:"ASIC migration advantage (Sec. 8.3)"
          ~paper:"retarget by re-mapping"
          ~measured:"same AIG, three freshly generated libraries, no manual work"
          ();
      ];
    notes =
      [
        "wire FO4/mm uses each node's own optimally-repeated global wire; \
         the growth is the geometric reason floorplanning matters more every \
         generation";
      ];
  }
