(** X4 (extension): what pipelining cannot fix.

    Sec. 4.1: "Many designs, such as bus interfaces, have a tight interaction
    with their environment in which each execution cycle depends on new
    primary inputs and branches are common. In such cases, it is not clear
    how an ASIC may be reorganized to allow pipelining."

    We synthesize exactly such a design (a request/acknowledge bus
    controller FSM), extract its register-weighted graph, and show the
    feedback loop pins the clock: the minimum-cycle-ratio retiming bound is
    a hard floor no register insertion can beat. A feed-forward multiplier
    with the same flow keeps dropping its floor as ranks are added. *)

module Fsm = Gap_datapath.Fsm
module Extract = Gap_retime.Extract
module Flow = Gap_synth.Flow

let tech = Gap_tech.Tech.asic_025um
let fo4 = Gap_tech.Tech.fo4_ps tech

let synthesize_fsm ~lib ?(encoding = Fsm.Binary) spec =
  let g = Fsm.to_aig ~encoding spec in
  let comb = Gap_synth.Mapper.map_aig ~lib ~name:spec.Fsm.fsm_name g in
  ignore (Gap_synth.Sizing.tilos comb);
  let sbits = Fsm.state_bits encoding spec.Fsm.n_states in
  let loops =
    List.init sbits (fun b -> (Printf.sprintf "state%d" b, Printf.sprintf "next%d" b))
  in
  Gap_synth.Sequential.close_loops ~loops comb

let run () =
  let lib = Gap_liberty.Libgen.(make tech rich) in
  let busif = synthesize_fsm ~lib Fsm.bus_interface in
  let fsm_sta = Extract.sta_period_ps busif in
  let fsm_bound = Extract.retiming_bound_ps busif in
  let onehot = synthesize_fsm ~lib ~encoding:Fsm.Onehot Fsm.bus_interface in
  let onehot_sta = Extract.sta_period_ps onehot in
  (* feed-forward contrast: the multiplier's floor drops with rank count *)
  let mult_bound stages =
    let g = Gap_datapath.Multiplier.array_multiplier ~width:6 in
    let effort = { Flow.default_effort with Flow.tilos_moves = 0 } in
    let nl = (Flow.run ~lib ~effort g).Flow.netlist in
    ignore (Gap_retime.Pipeline.pipeline ~stages nl);
    Extract.retiming_bound_ps nl
  in
  let b2 = mult_bound 2 and b4 = mult_bound 4 and b6 = mult_bound 6 in
  {
    Exp.id = "X4";
    title = "feedback loops vs pipelining (extension)";
    section = "Sec. 4.1";
    rows =
      [
        Exp.row
          ~verdict:(Exp.check (fsm_bound /. fo4) ~lo:3. ~hi:20.)
          ~label:"bus-interface FSM: retiming floor from its state loop"
          ~paper:"cannot be reorganized to pipeline"
          ~measured:(Printf.sprintf "%.0f ps (%.1f FO4)" fsm_bound (fsm_bound /. fo4))
          ();
        Exp.row
          ~verdict:(Exp.check (fsm_sta /. fsm_bound) ~lo:1.0 ~hi:3.0)
          ~label:"FSM achieved vs floor (input cones retimable, loop not)"
          ~paper:"-"
          ~measured:(Printf.sprintf "%.0f ps vs %.0f ps" fsm_sta fsm_bound)
          ();
        Exp.row
          ~verdict:(Exp.check (b2 /. b6) ~lo:1.5 ~hi:6.0)
          ~label:"feed-forward multiplier: floor keeps dropping with ranks"
          ~paper:"parallel data can be pipelined (Sec. 4.2)"
          ~measured:
            (Printf.sprintf "2/4/6 ranks: %.0f / %.0f / %.0f ps" b2 b4 b6)
          ();
        Exp.row ~verdict:Exp.Info
          ~label:"one-hot vs binary state encoding (same FSM)" ~paper:"-"
          ~measured:
            (Printf.sprintf "%.0f ps vs %.0f ps" onehot_sta fsm_sta)
          ();
      ];
    notes =
      [
        "the floor is the minimum cycle ratio (loop delay per register): \
         registers added anywhere on the loop arrive with matching latency \
         cost, so throughput never improves";
      ];
  }
