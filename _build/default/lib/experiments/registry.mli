(** All reproduced experiments, in paper order. *)

val all : (string * string * (unit -> Exp.result)) list
(** The paper's claims, E1..E10: (id, short title, runner). *)

val extensions : (string * string * (unit -> Exp.result)) list
(** Our extensions beyond the paper (X1..): power, economics, ablations. *)

val find : string -> (unit -> Exp.result) option
(** Case-insensitive lookup by id (e.g. "e3"). *)

val run_all : unit -> Exp.result list
val run_extensions : unit -> Exp.result list
val summary : Exp.result list -> string
(** Pass/checkable counts per experiment plus a total line. *)
