(** E10 (Sec. 9): the residual analysis.

    "The two most significant factors are pipelining and process variation.
    ... these two factors alone account for all except a factor of about 2
    to 3x [of the composite]. The use of dynamic-logic families is a third
    significant influence ... Adding this factor ... accounts for all but a
    factor of about 1.6x." Plus the composed methodology-level prediction of
    the observed 6-8x gap. *)

let run () =
  let fs = Gap_core.Factors.all () in
  let steps = Gap_core.Gap_model.residual_analysis fs in
  let nth i = List.nth steps i in
  let r2 = (nth 1).Gap_core.Gap_model.residual in
  let r3 = (nth 2).Gap_core.Gap_model.residual in
  let predicted = Gap_core.Gap_model.predicted_asic_custom_gap () in
  {
    Exp.id = "E10";
    title = "which factors explain the gap";
    section = "Sec. 9";
    rows =
      [
        Exp.row
          ~verdict:(Exp.check r2 ~lo:2.0 ~hi:3.0)
          ~label:"residual after pipelining x process variation" ~paper:"~2-3x"
          ~measured:(Exp.ratio r2) ();
        Exp.row
          ~verdict:(Exp.check r3 ~lo:1.4 ~hi:2.0)
          ~label:"residual after also applying dynamic logic" ~paper:"~1.6x"
          ~measured:(Exp.ratio r3) ();
        Exp.row
          ~verdict:(Exp.check predicted ~lo:6.0 ~hi:8.0)
          ~label:"methodology-composed custom vs typical-ASIC gap" ~paper:"6-8x observed"
          ~measured:(Exp.ratio predicted) ();
        Exp.row ~verdict:Exp.Info ~label:"composite of all modeled factors"
          ~paper:"~17.8x"
          ~measured:(Exp.ratio (Gap_core.Factors.composite fs))
          ();
      ];
    notes =
      [
        "residuals are against the composite, as in the paper's own arithmetic \
         (18 / (4.0 x 1.9) = 2.4; / 1.5 = 1.6)";
        "the methodology composition applies the overlap discount kappa=0.72 \
         (see Gap_model)";
      ];
  }
