(** E7 (Sec. 6): cell libraries and sizing.

    - A two-drive-strength, single-polarity library versus a rich library
      (Scott & Keutzer via the paper: "may be 25% slower"), geometric mean
      over a circuit suite.
    - Discrete drive ladder versus a near-continuous one ("2% to 7% or
      less").
    - TILOS critical-path sizing versus minimal sizes, with placed wire
      loads ("20% or more"). *)

module Flow = Gap_synth.Flow
module Sta = Gap_sta.Sta

let tech = Gap_tech.Tech.asic_025um

let circuits () =
  [
    ("cla16", Gap_datapath.Adders.cla_adder 16);
    ("ks16", Gap_datapath.Adders.kogge_stone_adder 16);
    ("mult8", Gap_datapath.Multiplier.array_multiplier ~width:8);
    ("shift32", Gap_datapath.Shifter.barrel_shifter ~width:32);
    ("rand1k", Gap_datapath.Random_logic.generate ~inputs:48 ~outputs:24 ~gates:1000 ());
  ]

let period lib ?(tilos = false) g =
  let effort = { Flow.default_effort with tilos_moves = (if tilos then 2000 else 0) } in
  (Flow.run ~lib ~effort g).Flow.sta.Sta.min_period_ps

let geomean xs =
  exp (List.fold_left (fun a x -> a +. log x) 0. xs /. float_of_int (List.length xs))

let run () =
  let poor_lib = Gap_liberty.Libgen.(make tech poor) in
  let rich_lib = Gap_liberty.Libgen.(make tech rich) in
  let continuous_lib =
    (* near-continuous ladder: quarter-octave steps *)
    let drives = List.init 25 (fun i -> 0.5 *. (2. ** (float_of_int i /. 4.))) in
    Gap_liberty.Libgen.(make tech (with_name (with_drives rich drives) "continuous"))
  in
  let suite = circuits () in
  let poor_ratios =
    List.map (fun (_, g) -> period poor_lib g /. period rich_lib g) suite
  in
  let poor_ratio = geomean poor_ratios in
  let worst_poor = List.fold_left Float.max 1. poor_ratios in
  (* discrete vs continuous: both TILOS-sized so the ladder is exercised *)
  let disc_ratios =
    List.map
      (fun (_, g) -> period rich_lib ~tilos:true g /. period continuous_lib ~tilos:true g)
      [ List.nth suite 0; List.nth suite 2 ]
  in
  let disc_penalty = geomean disc_ratios -. 1. in
  (* TILOS with placed wire loads *)
  let tilos_gain =
    let g = Gap_datapath.Adders.cla_adder 16 in
    let build () =
      let nl =
        (Flow.run ~lib:rich_lib ~effort:{ Flow.default_effort with tilos_moves = 0 } g)
          .Flow.netlist
      in
      ignore (Gap_place.Placer.place nl);
      Gap_place.Wire_estimate.annotate nl;
      nl
    in
    let minimal = build () in
    Gap_synth.Sizing.set_all_drives minimal ~drive:1.;
    let p_min = (Sta.analyze minimal).Sta.min_period_ps in
    let sized = build () in
    ignore (Gap_synth.Sizing.tilos sized);
    let p_sized = (Sta.analyze sized).Sta.min_period_ps in
    p_min /. p_sized
  in
  {
    Exp.id = "E7";
    title = "library richness, drive granularity, and sizing";
    section = "Sec. 6";
    rows =
      [
        Exp.row
          ~verdict:(Exp.check poor_ratio ~lo:1.10 ~hi:1.35)
          ~label:"2-drive single-polarity lib vs rich lib (geomean, 5 circuits)"
          ~paper:"~25% slower"
          ~measured:(Exp.ratio poor_ratio) ();
        Exp.row ~verdict:Exp.Info ~label:"worst circuit in the suite" ~paper:"-"
          ~measured:(Exp.ratio worst_poor) ();
        Exp.row
          ~verdict:(Exp.check disc_penalty ~lo:(-0.01) ~hi:0.07)
          ~label:"discrete (9-step) vs near-continuous (25-step) ladder"
          ~paper:"2-7% or less"
          ~measured:(Exp.pct disc_penalty) ();
        Exp.row
          ~verdict:(Exp.check tilos_gain ~lo:1.15 ~hi:2.00)
          ~label:"TILOS critical-path sizing vs uniform X1 (placed wires)"
          ~paper:"20% or more"
          ~measured:(Exp.ratio tilos_gain) ();
      ];
    notes =
      [
        "per-circuit poor/rich ratios: "
        ^ String.concat ", "
            (List.map2
               (fun (n, _) r -> Printf.sprintf "%s x%.2f" n r)
               suite poor_ratios);
      ];
  }
