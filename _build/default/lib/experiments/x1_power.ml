(** X1 (extension): the paper's qualitative power statements, measured.

    Sec. 7.1: "dynamic logic has higher power consumption"; Sec. 6.2: "sizing
    transistors minimally to reduce power, except on critical paths". Both
    are checked with activity-based power estimation on the same function
    implemented both ways. *)

module Flow = Gap_synth.Flow
module Power = Gap_netlist.Power_est
module Sta = Gap_sta.Sta

let tech = Gap_tech.Tech.asic_025um

let run () =
  let rich_lib = Gap_liberty.Libgen.(make tech rich) in
  let domino_lib = Gap_liberty.Libgen.(make tech domino) in
  let g = Gap_datapath.Adders.cla_adder 16 in
  let effort = { Flow.default_effort with Flow.tilos_moves = 0 } in
  (* static vs domino at each implementation's own achievable frequency *)
  let static_nl = (Flow.run ~lib:rich_lib ~effort g).Flow.netlist in
  let static_f = Gap_util.Units.mhz_of_period_ps (Sta.analyze static_nl).Sta.min_period_ps in
  let static_p = (Power.estimate static_nl ~freq_mhz:static_f).Power.total_mw in
  let dom = Gap_domino.Dualrail.map_aig ~domino_lib g in
  let dom_f = Gap_util.Units.mhz_of_period_ps (Sta.analyze dom).Sta.min_period_ps in
  let dom_p = (Power.estimate dom ~freq_mhz:dom_f).Power.total_mw in
  (* same frequency comparison isolates the circuit style *)
  let dom_p_same_f = (Power.estimate dom ~freq_mhz:static_f).Power.total_mw in
  let power_ratio = dom_p_same_f /. static_p in
  (* sizing for power: oversized everywhere vs downsized off-critical *)
  let sized = (Flow.run ~lib:rich_lib ~effort g).Flow.netlist in
  Gap_synth.Sizing.set_all_drives sized ~drive:4.;
  let p_oversized = (Power.estimate sized ~freq_mhz:static_f).Power.total_mw in
  let period_before = (Sta.analyze sized).Sta.min_period_ps in
  let downsizes = Gap_synth.Sizing.downsize_noncritical ~slack_margin_ps:1. sized in
  let p_downsized = (Power.estimate sized ~freq_mhz:static_f).Power.total_mw in
  let period_after = (Sta.analyze sized).Sta.min_period_ps in
  let saving = 1. -. (p_downsized /. p_oversized) in
  {
    Exp.id = "X1";
    title = "power costs of circuit-style choices (extension)";
    section = "Sec. 6.2 / 7.1";
    rows =
      [
        Exp.row
          ~verdict:(Exp.check power_ratio ~lo:1.5 ~hi:15.)
          ~label:"dual-rail domino vs static power, same function & frequency"
          ~paper:"domino consumes more (Sec. 7.1)"
          ~measured:(Exp.ratio power_ratio) ();
        Exp.row ~verdict:Exp.Info ~label:"at each style's own max frequency"
          ~paper:"-"
          ~measured:(Printf.sprintf "%.2f vs %.2f mW" static_p dom_p)
          ();
        Exp.row
          ~verdict:(Exp.check saving ~lo:0.10 ~hi:0.80)
          ~label:"downsizing off-critical cells (power recovery)"
          ~paper:"sized minimally to reduce power (Sec. 6.2)"
          ~measured:(Printf.sprintf "-%s (%d cells)" (Exp.pct saving) downsizes)
          ();
        Exp.row
          ~verdict:
            (Exp.check (period_after /. period_before) ~lo:0.7 ~hi:1.02)
          ~label:"speed held (or improved, by unloading) while downsizing"
          ~paper:"critical path kept sized"
          ~measured:(Exp.ratio (period_after /. period_before))
          ();
        Exp.row ~verdict:Exp.Info
          ~label:"context: Alpha 21264A vs IBM PPC reported power" ~paper:"90 W vs 6.3 W"
          ~measured:"(reported, Sec. 2)" ();
      ];
    notes =
      [
        "domino pays twice: both rails are built, and every evaluate-high cycle \
         discharges and precharges the dynamic node. Full dual-rail conversion \
         (here ~10x) overstates practice, where domino covers only critical \
         cones; the paper's point is only the direction";
      ];
  }
