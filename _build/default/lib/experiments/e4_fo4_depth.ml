(** E4 (Sec. 4): logic depth in FO4 delays.

    The paper's FO4 depths (Alpha 15, IBM PPC 13, Xtensa ~44) are checked two
    ways: the FO4 rule must recover each chip's frequency (as in E1), and our
    own synthesis flow must put an Xtensa-class single-cycle ALU datapath in
    the ~40-50 FO4 range on the 0.25um ASIC library. *)

module P = Gap_uarch.Processors

let run () =
  let tech = Gap_tech.Tech.asic_025um in
  let lib = Gap_liberty.Libgen.(make tech rich) in
  let ibm_fo4_ps = Gap_tech.Fo4.of_leff_um 0.15 in
  (* our Xtensa-like datapath: 32-bit single-cycle ALU with block
     carry-lookahead, a reasonable synthesis result *)
  let alu = Gap_datapath.Alu.alu ~adder:`Cla 32 in
  let outcome = Gap_synth.Flow.run ~lib ~name:"alu32" alu in
  let measured_depth = Gap_sta.Sta.fo4_depth outcome.Gap_synth.Flow.sta ~lib in
  let ripple = Gap_datapath.Alu.alu ~adder:`Ripple 32 in
  let ripple_depth =
    Gap_sta.Sta.fo4_depth (Gap_synth.Flow.run ~lib ~name:"alu32r" ripple).Gap_synth.Flow.sta ~lib
  in
  (* with a datapath library (Kogge-Stone via macro cells) *)
  let alu_fast = Gap_datapath.Alu.alu ~adder:`Kogge_stone 32 in
  let fast = Gap_synth.Flow.run ~lib ~name:"alu32-ks" alu_fast in
  let fast_depth = Gap_sta.Sta.fo4_depth fast.Gap_synth.Flow.sta ~lib in
  {
    Exp.id = "E4";
    title = "FO4 logic depths per cycle";
    section = "Sec. 4 (footnotes 1-2)";
    rows =
      [
        Exp.row
          ~verdict:(Exp.check ibm_fo4_ps ~lo:74. ~hi:76.)
          ~label:"FO4 delay at Leff 0.15um (IBM PPC)" ~paper:"75 ps"
          ~measured:(Exp.ps ibm_fo4_ps) ();
        Exp.row
          ~verdict:
            (Exp.check
               (1e6 /. (13. *. ibm_fo4_ps))
               ~lo:975. ~hi:1080.)
          ~label:"13 FO4 cycle at 75 ps" ~paper:"1.0 GHz"
          ~measured:(Exp.mhz (1e6 /. (13. *. ibm_fo4_ps)))
          ();
        Exp.row
          ~verdict:(Exp.check P.alpha_21264a.P.fo4_depth ~lo:15. ~hi:15.)
          ~label:"Alpha 21264 depth (from Harris/Horowitz)" ~paper:"15 FO4"
          ~measured:(Exp.f1 P.alpha_21264a.P.fo4_depth) ();
        Exp.row
          ~verdict:
            (if measured_depth <= 44. && ripple_depth >= 44. then Exp.Pass
             else Exp.check 44. ~lo:measured_depth ~hi:ripple_depth)
          ~label:"Xtensa's 44 FO4 within our synthesized ALU range" ~paper:"~44 FO4"
          ~measured:
            (Printf.sprintf "%.1f (CLA) .. %.1f (ripple)" measured_depth ripple_depth)
          ();
        Exp.row
          ~verdict:(Exp.check (ripple_depth /. fast_depth) ~lo:1.3 ~hi:3.5)
          ~label:"datapath-library ALU (Kogge-Stone) vs ripple" ~paper:"fewer levels (Sec. 4.2)"
          ~measured:(Printf.sprintf "%.1f FO4 (x%.2f)" fast_depth (ripple_depth /. fast_depth))
          ();
      ];
    notes =
      [
        "the ALU depth stands in for Xtensa's execute stage: the paper's 44 FO4 is \
         the whole 250 MHz cycle";
      ];
  }
