(** X3 (extension): ablations of the design choices DESIGN.md calls out,
    plus the extension models (time borrowing, statistical timing, wire
    sizing) exercised on real netlists. *)

module Flow = Gap_synth.Flow
module Sta = Gap_sta.Sta

let tech = Gap_tech.Tech.asic_025um

let run () =
  let lib = Gap_liberty.Libgen.(make tech rich) in
  let effort = { Flow.default_effort with Flow.tilos_moves = 0 } in
  let depth g = Sta.fo4_depth (Flow.run ~lib ~effort g).Flow.sta ~lib in
  (* adder architecture sweep: the Sec. 4.2 "predefined datapath macros" case *)
  let adder_depths =
    List.map (fun (name, gen) -> (name, depth (gen 32))) Gap_datapath.Adders.architectures
  in
  let ripple_d = List.assoc "ripple" adder_depths in
  let ks_d = List.assoc "kogge-stone" adder_depths in
  (* mapper mode ablation *)
  let g = Gap_datapath.Adders.cla_adder 16 in
  let delay_nl = Gap_synth.Mapper.map_aig ~lib ~mode:Gap_synth.Mapper.Delay g in
  let area_nl = Gap_synth.Mapper.map_aig ~lib ~mode:Gap_synth.Mapper.Area g in
  let d_period = (Sta.analyze delay_nl).Sta.min_period_ps in
  let a_period = (Sta.analyze area_nl).Sta.min_period_ps in
  let area_saving =
    1. -. (Gap_netlist.Netlist.area_um2 area_nl /. Gap_netlist.Netlist.area_um2 delay_nl)
  in
  (* balance ablation on a chain-heavy circuit *)
  let chain =
    let g = Gap_logic.Aig.create () in
    let inputs = Array.init 24 (fun i -> Gap_logic.Aig.add_input g (Printf.sprintf "x%d" i)) in
    let acc = Array.fold_left (fun acc l -> Gap_logic.Aig.and_ g acc l) Gap_logic.Aig.lit_true inputs in
    Gap_logic.Aig.add_output g "y" acc;
    g
  in
  let unbalanced = Gap_synth.Mapper.map_aig ~lib chain in
  let balanced = Gap_synth.Mapper.map_aig ~lib (Gap_synth.Balance.balance chain) in
  let balance_gain =
    (Sta.analyze unbalanced).Sta.min_period_ps /. (Sta.analyze balanced).Sta.min_period_ps
  in
  (* time borrowing on a real (quantization-unbalanced) pipeline *)
  let mult = Gap_datapath.Multiplier.array_multiplier ~width:8 in
  let pipe_nl = (Flow.run ~lib ~effort mult).Flow.netlist in
  ignore (Gap_retime.Pipeline.pipeline ~stages:4 pipe_nl);
  let stages =
    Gap_retime.Borrowing.stage_delays_of_pipeline pipe_nl ~config:Sta.default_config
  in
  let borrow_gain = Gap_retime.Borrowing.borrowing_gain ~stage_delays:stages ~duty:0.5 () in
  (* statistical STA: intra-die variation on a netlist *)
  let ssta =
    Gap_variation.Ssta.simulate ~samples:120 ~sigma_cell:0.05
      (Gap_synth.Mapper.map_aig ~lib (Gap_datapath.Adders.cla_adder 8))
  in
  (* wire sizing *)
  let wire_gain = Gap_interconnect.Wire_opt.sizing_gain tech ~length_um:10000. in
  let opt_w, _ = Gap_interconnect.Wire_opt.optimal_width tech ~length_um:10000. in
  {
    Exp.id = "X3";
    title = "flow ablations and extension models";
    section = "extensions";
    rows =
      [
        Exp.row
          ~verdict:(Exp.check (ripple_d /. ks_d) ~lo:2.0 ~hi:8.0)
          ~label:"32-bit adder architecture: ripple vs Kogge-Stone depth"
          ~paper:"datapath macros cut logic levels (Sec. 4.2)"
          ~measured:
            (String.concat ", "
               (List.map (fun (n, d) -> Printf.sprintf "%s %.1f FO4" n d) adder_depths))
          ();
        Exp.row
          ~verdict:(Exp.check (a_period /. d_period) ~lo:1.0 ~hi:3.0)
          ~label:"mapper objective: area mode period penalty"
          ~paper:"-"
          ~measured:
            (Printf.sprintf "x%.2f slower, %s smaller" (a_period /. d_period)
               (Exp.pct area_saving))
          ();
        Exp.row
          ~verdict:(Exp.check balance_gain ~lo:1.5 ~hi:8.0)
          ~label:"AIG balancing on a 24-input AND chain"
          ~paper:"fewer logic levels (Sec. 4)"
          ~measured:(Exp.ratio balance_gain) ();
        Exp.row
          ~verdict:(Exp.check borrow_gain ~lo:1.0 ~hi:1.6)
          ~label:"latch time borrowing on the pipelined mult8's real stage imbalance"
          ~paper:"multi-phase clocking recovers imbalance (Sec. 4.1)"
          ~measured:
            (Printf.sprintf "x%.2f over %d stages" borrow_gain (Array.length stages))
          ();
        Exp.row
          ~verdict:(Exp.check (Gap_variation.Ssta.mean_shift ssta) ~lo:0.0 ~hi:0.10)
          ~label:"intra-die variation inflates the worst path (SSTA mean shift)"
          ~paper:"intra-die listed in Sec. 8.1.1"
          ~measured:(Exp.pct (Gap_variation.Ssta.mean_shift ssta))
          ();
        Exp.row
          ~verdict:
            (Exp.check (Gap_variation.Ssta.relative_sigma ssta) ~lo:0.001
               ~hi:(ssta.Gap_variation.Ssta.sigma_cell))
          ~label:"path averaging shrinks chip-level sigma below cell sigma"
          ~paper:"-"
          ~measured:
            (Printf.sprintf "%.3f (cell sigma %.3f)"
               (Gap_variation.Ssta.relative_sigma ssta)
               ssta.Gap_variation.Ssta.sigma_cell)
          ();
        Exp.row
          ~verdict:(Exp.check wire_gain ~lo:1.02 ~hi:2.0)
          ~label:"wire widening on a 10 mm repeated net"
          ~paper:"wires widened to reduce delays (Sec. 6)"
          ~measured:(Printf.sprintf "x%.2f at width %.1fx" wire_gain opt_w)
          ();
      ];
    notes =
      [
        "all ablations run the real engines on both settings; the bands are \
         ours (the paper states the mechanisms, not numbers, for these)";
      ];
  }
