lib/experiments/e4_fo4_depth.ml: Exp Gap_datapath Gap_liberty Gap_sta Gap_synth Gap_tech Gap_uarch Printf
