lib/experiments/x4_sequential.ml: Exp Gap_datapath Gap_liberty Gap_retime Gap_synth Gap_tech List Printf
