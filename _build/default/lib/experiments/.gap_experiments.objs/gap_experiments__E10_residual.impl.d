lib/experiments/e10_residual.ml: Exp Gap_core List
