lib/experiments/exp.ml: Buffer Float Gap_util List Printf String
