lib/experiments/e7_library_sizing.ml: Exp Float Gap_datapath Gap_liberty Gap_place Gap_sta Gap_synth Gap_tech List Printf String
