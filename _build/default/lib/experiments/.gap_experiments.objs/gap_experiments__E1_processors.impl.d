lib/experiments/e1_processors.ml: Exp Float Gap_tech Gap_uarch List Printf
