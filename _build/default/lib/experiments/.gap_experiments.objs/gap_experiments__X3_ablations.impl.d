lib/experiments/x3_ablations.ml: Array Exp Gap_datapath Gap_interconnect Gap_liberty Gap_logic Gap_netlist Gap_retime Gap_sta Gap_synth Gap_tech Gap_variation List Printf String
