lib/experiments/e2_factors.ml: Exp Gap_core List Printf
