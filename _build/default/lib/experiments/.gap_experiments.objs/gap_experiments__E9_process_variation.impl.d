lib/experiments/e9_process_variation.ml: Exp Gap_variation Printf
