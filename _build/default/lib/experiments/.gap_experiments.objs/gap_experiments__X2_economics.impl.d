lib/experiments/x2_economics.ml: Array Exp Gap_variation Printf
