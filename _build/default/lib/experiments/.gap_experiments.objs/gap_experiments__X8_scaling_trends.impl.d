lib/experiments/x8_scaling_trends.ml: Exp Gap_datapath Gap_interconnect Gap_liberty Gap_sta Gap_synth Gap_tech List Printf String
