lib/experiments/e5_clock_skew.ml: Exp Gap_clocktree Gap_liberty Gap_retime Gap_tech Gap_util Printf
