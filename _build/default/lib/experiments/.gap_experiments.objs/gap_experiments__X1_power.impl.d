lib/experiments/x1_power.ml: Exp Gap_datapath Gap_domino Gap_liberty Gap_netlist Gap_sta Gap_synth Gap_tech Gap_util Printf
