lib/experiments/exp.mli:
