lib/experiments/e8_dynamic_logic.ml: Exp Gap_datapath Gap_domino Gap_liberty Gap_retime Gap_sta Gap_synth Gap_tech List Printf String
