lib/experiments/x5_area_regularity.ml: Exp Gap_datapath Gap_domino Gap_liberty Gap_netlist Gap_place Gap_retime Gap_sta Gap_synth Gap_tech Gap_uarch Printf
