lib/experiments/e3_pipelining.ml: Array Exp Gap_datapath Gap_liberty Gap_retime Gap_sta Gap_synth Gap_tech Printf
