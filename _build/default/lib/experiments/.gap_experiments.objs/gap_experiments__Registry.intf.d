lib/experiments/registry.mli: Exp
