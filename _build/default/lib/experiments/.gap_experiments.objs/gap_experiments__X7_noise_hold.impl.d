lib/experiments/x7_noise_hold.ml: Exp Gap_datapath Gap_domino Gap_liberty Gap_netlist Gap_place Gap_retime Gap_sta Gap_synth Gap_tech Printf
