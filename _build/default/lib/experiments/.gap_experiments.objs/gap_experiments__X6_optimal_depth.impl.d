lib/experiments/x6_optimal_depth.ml: Exp Gap_datapath Gap_liberty Gap_retime Gap_sta Gap_synth Gap_tech Gap_uarch Printf
