(** X6 (extension): how deep should the pipeline be?

    Sec. 4.1: "There is a trade-off between issuing more instructions
    simultaneously and the penalties for branch misprediction and data
    hazards ... unless there is a high degree of parallelism in
    instructions." The frequency-vs-IPC model makes the trade-off concrete:
    frequency keeps rising with depth (saturating at the register overhead)
    while performance peaks and then falls as branch flushes eat the clock
    gains — and the peak moves with the workload's branchiness. Hold-time
    safety is the other side of deep pipelines: more skew means short paths
    need padding. *)

module PM = Gap_uarch.Pipeline_model
module Cpi = Gap_uarch.Cpi

let run () =
  let opt w =
    PM.optimal_depth ~max_stages:40 { PM.asic_default with PM.workload = w }
  in
  let control_depth, _ = opt Cpi.control_dominated in
  let spec_depth, _ = opt Cpi.spec_like in
  let dsp_depth, _ = opt Cpi.dsp_like in
  (* frequency rises monotonically; performance does not *)
  let c = { PM.asic_default with PM.workload = Cpi.control_dominated } in
  let f20_over_f5 = PM.frequency_mhz c ~stages:20 /. PM.frequency_mhz c ~stages:5 in
  let perf40_over_opt =
    PM.performance_mips c ~stages:40 /. snd (opt Cpi.control_dominated)
  in
  (* hold: more skew -> short paths need padding (a pipelined netlist) *)
  let lib = Gap_liberty.Libgen.(make Gap_tech.Tech.asic_025um rich) in
  let g = Gap_datapath.Multiplier.array_multiplier ~width:6 in
  let effort = { Gap_synth.Flow.default_effort with Gap_synth.Flow.tilos_moves = 0 } in
  let nl = (Gap_synth.Flow.run ~lib ~effort g).Gap_synth.Flow.netlist in
  ignore (Gap_retime.Pipeline.pipeline ~stages:4 nl);
  let clean = Gap_sta.Hold.analyze ~skew_ps:0. nl in
  let skewed = Gap_sta.Hold.analyze ~skew_ps:150. nl in
  {
    Exp.id = "X6";
    title = "optimal pipeline depth and hold safety (extension)";
    section = "Sec. 4.1";
    rows =
      [
        Exp.row
          ~verdict:
            (if control_depth < spec_depth && spec_depth <= dsp_depth then Exp.Pass
             else
               Exp.Near
                 (Printf.sprintf "%d / %d / %d" control_depth spec_depth dsp_depth))
          ~label:"performance-optimal depth: control < SPEC <= DSP"
          ~paper:"penalties vs parallelism (Sec. 4.1)"
          ~measured:
            (Printf.sprintf "%d / %d / %d stages" control_depth spec_depth dsp_depth)
          ();
        Exp.row
          ~verdict:(Exp.check f20_over_f5 ~lo:1.5 ~hi:4.0)
          ~label:"frequency alone keeps rising with depth" ~paper:"-"
          ~measured:(Exp.ratio f20_over_f5) ();
        Exp.row
          ~verdict:(Exp.check perf40_over_opt ~lo:0.5 ~hi:0.99)
          ~label:"but 40-stage control-code performance falls below its optimum"
          ~paper:"branches diminish performance"
          ~measured:(Exp.ratio perf40_over_opt) ();
        Exp.row
          ~verdict:
            (if Gap_sta.Hold.violation_count clean = 0 then Exp.Pass
             else Exp.Near "violations at zero skew")
          ~label:"pipelined netlist hold-clean at zero skew" ~paper:"-"
          ~measured:(Printf.sprintf "%d violations" (Gap_sta.Hold.violation_count clean))
          ();
        Exp.row
          ~verdict:
            (if Gap_sta.Hold.violation_count skewed > 0 then Exp.Pass
             else Exp.Near "no violations under heavy skew")
          ~label:"150 ps skew forces hold padding into short paths"
          ~paper:"ASIC registers made skew-tolerant (Sec. 4.1)"
          ~measured:
            (Printf.sprintf "%d violations, worst %.0f ps"
               (Gap_sta.Hold.violation_count skewed)
               (Gap_sta.Hold.padding_needed_ps skewed))
          ();
      ];
    notes =
      [
        "skew-tolerant ASIC registers are exactly this padding baked into the \
         cell: hold margin costs either flop complexity or explicit delay cells";
      ];
  }
