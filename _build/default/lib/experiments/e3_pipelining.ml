(** E3 (Sec. 4): pipelining speedups.

    Analytic rows reproduce the paper's overhead arithmetic (N stages at
    overhead fraction v give N/(1+v)); netlist rows actually pipeline a
    mapped 16x16 multiplier with cutset register insertion and measure the
    STA speedup, ASIC flops + 10% skew versus custom latches + 5% skew.
    A retiming row shows Leiserson-Saxe rebalancing an unbalanced pipe. *)

module Flow = Gap_synth.Flow
module Sta = Gap_sta.Sta
module Overhead = Gap_retime.Overhead
module Pipeline = Gap_retime.Pipeline

let tech = Gap_tech.Tech.asic_025um

let netlist_speedup ~lib ~skew_frac ~stages g =
  let effort = { Flow.default_effort with tilos_moves = 0 } in
  let build () = (Flow.run ~lib ~effort g).Flow.netlist in
  let comb = (Sta.analyze (build ())).Sta.min_period_ps in
  let reg = Overhead.register_overhead_ps ~lib ~skew_ps:0. in
  let measure n =
    let nl = build () in
    let cycle_est =
      ((comb /. float_of_int n) +. reg) /. (1. -. skew_frac)
    in
    let config = Sta.config_with_skew (skew_frac *. cycle_est) in
    (Pipeline.pipeline ~config ~stages:n nl).Gap_retime.Pipeline.period_after_ps
  in
  let p1 = measure 1 in
  let pn = measure stages in
  (p1 /. pn, p1, pn)

let retiming_demo () =
  (* a 6-node ring of 2-delay stages whose 3 registers are all bunched on one
     edge: the register-free path covers all six nodes (period 12); retiming
     spreads the registers so each stage holds two nodes (period 4) *)
  let g = Gap_retime.Retime.create () in
  let nodes = Array.init 6 (fun _ -> Gap_retime.Retime.add_node g ~delay:2.) in
  for i = 0 to 5 do
    let regs = if i = 5 then 3 else 0 in
    Gap_retime.Retime.add_edge g ~src:nodes.(i) ~dst:nodes.((i + 1) mod 6) ~regs
  done;
  let before = Gap_retime.Retime.clock_period g in
  let after, _ = Gap_retime.Retime.min_period g in
  (before, after)

let run () =
  let asic_lib = Gap_liberty.Libgen.(make tech rich) in
  let custom_lib = Gap_liberty.Libgen.(make tech custom) in
  let s5 = Overhead.paper_speedup ~stages:5 ~overhead_frac:0.30 in
  let s4 = Overhead.paper_speedup ~stages:4 ~overhead_frac:0.20 in
  let fo4 = Gap_tech.Tech.fo4_ps tech in
  let asic_ovh = Overhead.overhead_fraction ~lib:asic_lib ~skew_frac:0.10 ~stage_logic_ps:(13. *. fo4) in
  let custom_ovh =
    Overhead.overhead_fraction ~lib:custom_lib ~skew_frac:0.05 ~stage_logic_ps:(11. *. fo4)
  in
  let g = Gap_datapath.Multiplier.array_multiplier ~width:16 in
  let asic_speedup, asic_p1, asic_p5 =
    netlist_speedup ~lib:asic_lib ~skew_frac:0.10 ~stages:5 g
  in
  let custom_speedup, _, _ = netlist_speedup ~lib:custom_lib ~skew_frac:0.05 ~stages:4 g in
  let rt_before, rt_after = retiming_demo () in
  {
    Exp.id = "E3";
    title = "pipelining speedups with register + skew overheads";
    section = "Sec. 4";
    rows =
      [
        Exp.row
          ~verdict:(Exp.check s5 ~lo:3.7 ~hi:3.9)
          ~label:"5-stage ASIC pipe, 30% overhead (analytic)" ~paper:"x3.8"
          ~measured:(Exp.ratio s5) ();
        Exp.row
          ~verdict:(Exp.check s4 ~lo:3.3 ~hi:3.5)
          ~label:"4-stage custom pipe, 20% overhead (analytic)" ~paper:"x3.4"
          ~measured:(Exp.ratio s4) ();
        Exp.row
          ~verdict:(Exp.check asic_ovh ~lo:0.25 ~hi:0.40)
          ~label:"ASIC per-stage overhead @ 13 FO4 stage" ~paper:"~30%"
          ~measured:(Exp.pct asic_ovh) ();
        Exp.row
          ~verdict:(Exp.check custom_ovh ~lo:0.15 ~hi:0.28)
          ~label:"custom per-stage overhead @ 11 FO4 stage" ~paper:"~20%"
          ~measured:(Exp.pct custom_ovh) ();
        Exp.row
          ~verdict:(Exp.check asic_speedup ~lo:3.0 ~hi:4.3)
          ~label:"mult16 netlist, 5 stages, ASIC flops + 10% skew" ~paper:"~x3.8"
          ~measured:(Exp.ratio asic_speedup) ();
        Exp.row
          ~verdict:(Exp.check custom_speedup ~lo:2.8 ~hi:3.8)
          ~label:"mult16 netlist, 4 stages, custom latches + 5% skew" ~paper:"~x3.4"
          ~measured:(Exp.ratio custom_speedup) ();
        Exp.row
          ~verdict:(Exp.check (rt_before /. rt_after) ~lo:2.5 ~hi:3.5)
          ~label:"retiming rebalances a bunched-register ring (Leiserson-Saxe)"
          ~paper:"balanced x3"
          ~measured:
            (Printf.sprintf "%.1f -> %.1f (x%.2f)" rt_before rt_after
               (rt_before /. rt_after))
          ();
      ];
    notes =
      [
        Printf.sprintf
          "mult16: unpipelined registered period %s, 5-stage period %s; stage \
           imbalance from gate-granularity cuts is visible, as Sec. 4.1 predicts"
          (Exp.ps asic_p1) (Exp.ps asic_p5);
      ];
  }
