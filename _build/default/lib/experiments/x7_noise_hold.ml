(** X7 (extension): the care domino and skew demand, priced.

    Sec. 7.1: "Dynamic logic is particularly susceptible to noise ... These
    problems become more pronounced with deeper submicron technologies" —
    measured as the fraction of routed nets whose congestion-implied coupling
    would break each family's noise margin.

    Sec. 4.1's skew-tolerant registers: we charge the tolerance explicitly by
    hold-fixing a pipelined netlist under an ASIC skew budget and counting
    the buffers/area it takes. *)

module Flow = Gap_synth.Flow
module Noise = Gap_domino.Noise

let tech = Gap_tech.Tech.asic_025um

let run () =
  let lib = Gap_liberty.Libgen.(make tech rich) in
  (* a placed & routed block to take coupling statistics from *)
  let g = Gap_datapath.Multiplier.array_multiplier ~width:8 in
  let nl = Gap_synth.Mapper.map_aig ~lib g in
  ignore (Gap_place.Placer.place nl);
  let routed = Gap_place.Router.route nl in
  let static_exp = Noise.exposure Noise.static_cmos nl routed in
  let domino_exp = Noise.exposure Noise.domino_unkeepered nl routed in
  let keeper_exp = Noise.exposure Noise.domino_keeper nl routed in
  (* hold fixing under ASIC skew *)
  let effort = { Flow.default_effort with Flow.tilos_moves = 0 } in
  let pipe = (Flow.run ~lib ~effort (Gap_datapath.Multiplier.array_multiplier ~width:6)).Flow.netlist in
  ignore (Gap_retime.Pipeline.pipeline ~stages:4 pipe);
  let area_before = Gap_netlist.Netlist.area_um2 pipe in
  let skew = 150. in
  let violations_before =
    Gap_sta.Hold.violation_count (Gap_sta.Hold.analyze ~skew_ps:skew pipe)
  in
  let fixed = Gap_synth.Hold_fix.fix ~skew_ps:skew pipe in
  let area_cost = fixed.Gap_synth.Hold_fix.area_added_um2 /. area_before in
  (* depth context: divider as the worst-case unpipelined datapath *)
  let div = Gap_datapath.Divider.array_divider ~width:8 in
  let div_depth =
    Gap_sta.Sta.fo4_depth (Flow.run ~lib ~effort div).Flow.sta ~lib
  in
  {
    Exp.id = "X7";
    title = "noise margins and the price of skew tolerance (extension)";
    section = "Sec. 7.1 / 4.1";
    rows =
      [
        Exp.row
          ~verdict:
            (if
               domino_exp.Noise.risk_frac >= static_exp.Noise.risk_frac
               && keeper_exp.Noise.risk_frac >= static_exp.Noise.risk_frac
               && keeper_exp.Noise.risk_frac <= domino_exp.Noise.risk_frac
             then Exp.Pass
             else Exp.Near "ordering broken")
          ~label:"nets at noise risk: static <= keepered domino <= bare domino"
          ~paper:"domino particularly susceptible (Sec. 7.1)"
          ~measured:
            (Printf.sprintf "%s / %s / %s"
               (Exp.pct static_exp.Noise.risk_frac)
               (Exp.pct keeper_exp.Noise.risk_frac)
               (Exp.pct domino_exp.Noise.risk_frac))
          ();
        Exp.row
          ~verdict:
            (Exp.check (Noise.max_safe_coupling Noise.domino_unkeepered
                        /. Noise.max_safe_coupling Noise.static_cmos)
               ~lo:0.3 ~hi:0.6)
          ~label:"coupling budget: domino vs static" ~paper:"careful design required"
          ~measured:
            (Printf.sprintf "%.2f vs %.2f of Vdd"
               (Noise.max_safe_coupling Noise.domino_unkeepered)
               (Noise.max_safe_coupling Noise.static_cmos))
          ();
        Exp.row
          ~verdict:(if fixed.Gap_synth.Hold_fix.clean then Exp.Pass else Exp.Near "not clean")
          ~label:
            (Printf.sprintf "hold-fixing a 4-stage pipeline under %.0f ps skew" skew)
          ~paper:"registers made skew-tolerant (Sec. 4.1)"
          ~measured:
            (Printf.sprintf "%d violations -> 0, %d buffers" violations_before
               fixed.Gap_synth.Hold_fix.buffers_inserted)
          ();
        Exp.row
          ~verdict:(Exp.check area_cost ~lo:0.005 ~hi:0.4)
          ~label:"area cost of that tolerance" ~paper:"ASIC register overhead"
          ~measured:(Exp.pct area_cost) ();
        Exp.row ~verdict:Exp.Info
          ~label:"8-bit restoring divider depth (why divide is multi-cycle)"
          ~paper:"-"
          ~measured:(Printf.sprintf "%.0f FO4" div_depth)
          ();
      ];
    notes =
      [
        "coupling is estimated from routing congestion (neighbours per grid \
         cell); margins: static 0.45 Vdd, keepered domino 0.30, bare 0.20";
      ];
  }
