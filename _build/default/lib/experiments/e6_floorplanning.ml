(** E6 (Sec. 5): floorplanning, placement and routing.

    Chip level (the paper's BACPAC experiment): a critical path whose global
    wire stays inside a module versus one wandering across a 100 mm^2 die —
    "may increase circuit speed by up to 25%". Block level: our annealing
    placer versus random scatter on a real mapped netlist, and the slicing
    floorplanner's dead-space recovery. *)

module B = Gap_interconnect.Bacpac

let run () =
  let tech = Gap_tech.Tech.asic_025um in
  let chip = B.default_chip in
  let speedup_44 = B.floorplan_speedup ~tech ~logic_depth_fo4:44. ~chip in
  let sweep =
    List.map
      (fun d -> (d, B.floorplan_speedup ~tech ~logic_depth_fo4:d ~chip))
      [ 20.; 30.; 44.; 60.; 80. ]
  in
  let max_speedup = List.fold_left (fun a (_, s) -> Float.max a s) 1. sweep in
  (* real placement: mapped multiplier, annealed vs scattered *)
  let lib = Gap_liberty.Libgen.(make tech rich) in
  let g = Gap_datapath.Multiplier.array_multiplier ~width:8 in
  let effort = { Gap_synth.Flow.default_effort with tilos_moves = 0 } in
  let place_run random =
    let nl = (Gap_synth.Flow.run ~lib ~effort g).Gap_synth.Flow.netlist in
    let stats =
      if random then Gap_place.Placer.place_random nl
      else Gap_place.Placer.place nl
    in
    Gap_place.Wire_estimate.annotate nl;
    let sta = Gap_sta.Sta.analyze nl in
    (stats.Gap_place.Placer.final_hpwl_um, sta.Gap_sta.Sta.min_period_ps)
  in
  let hpwl_sa, period_sa = place_run false in
  let hpwl_rand, period_rand = place_run true in
  (* slicing floorplanner on a 10-block design *)
  let rng = Gap_util.Rng.create ~seed:5L () in
  let blocks =
    Array.init 10 (fun i ->
        {
          Gap_place.Floorplan.block_name = Printf.sprintf "b%d" i;
          w_um = 300. +. Gap_util.Rng.float rng 1200.;
          h_um = 300. +. Gap_util.Rng.float rng 1200.;
        })
  in
  let fp = Gap_place.Floorplan.anneal (Gap_place.Floorplan.initial blocks) in
  let dead = Gap_place.Floorplan.dead_space_frac fp.Gap_place.Floorplan.plan in
  {
    Exp.id = "E6";
    title = "floorplanning, placement, and global wires";
    section = "Sec. 5";
    rows =
      [
        Exp.row
          ~verdict:(Exp.check speedup_44 ~lo:1.15 ~hi:1.40)
          ~label:"localized vs cross-chip path @ 44 FO4, 100 mm^2" ~paper:"up to 25%"
          ~measured:(Exp.ratio speedup_44) ();
        Exp.row ~verdict:Exp.Info
          ~label:"worst case over logic depths 20-80 FO4 (our extension)" ~paper:"-"
          ~measured:(Exp.ratio max_speedup) ();
        Exp.row
          ~verdict:(Exp.check (hpwl_rand /. hpwl_sa) ~lo:1.3 ~hi:6.)
          ~label:"SA placement vs random scatter, mult8 HPWL" ~paper:"(mechanism)"
          ~measured:
            (Printf.sprintf "%.0f vs %.0f um (x%.2f)" hpwl_sa hpwl_rand
               (hpwl_rand /. hpwl_sa))
          ();
        Exp.row
          ~verdict:(Exp.check (period_rand /. period_sa) ~lo:1.0 ~hi:2.0)
          ~label:"annealed vs random placement, block-level period" ~paper:"(mechanism)"
          ~measured:(Exp.ratio (period_rand /. period_sa))
          ();
        Exp.row
          ~verdict:(Exp.check dead ~lo:0.0 ~hi:0.20)
          ~label:"slicing floorplan dead space after annealing" ~paper:"(tool quality)"
          ~measured:(Exp.pct dead) ();
      ];
    notes =
      [
        "the 25% is a chip-scale effect: block-internal wires are too short to \
         matter, exactly the paper's point that floorplanning governs *global* wires";
        Printf.sprintf "floorplan area: %.1f -> %.1f mm^2"
          (fp.Gap_place.Floorplan.initial_area_um2 /. 1e6)
          (fp.Gap_place.Floorplan.layout.Gap_place.Floorplan.area_um2 /. 1e6);
      ];
  }
