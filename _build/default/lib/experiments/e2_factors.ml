(** E2 (Sec. 3): the factor-overview table, re-derived from the substrate
    models rather than asserted. *)

let run () =
  let fs = Gap_core.Factors.all () in
  let rows =
    List.map
      (fun (f : Gap_core.Factors.t) ->
        Exp.row
          ~verdict:
            (Exp.check f.Gap_core.Factors.modeled
               ~lo:(0.75 *. f.Gap_core.Factors.paper_max)
               ~hi:(1.25 *. f.Gap_core.Factors.paper_max))
          ~label:f.Gap_core.Factors.factor_name
          ~paper:(Exp.ratio f.Gap_core.Factors.paper_max)
          ~measured:(Exp.ratio f.Gap_core.Factors.modeled)
          ())
      fs
  in
  let composite = Gap_core.Factors.composite fs in
  let comp_row =
    Exp.row
      ~verdict:(Exp.check composite ~lo:13. ~hi:23.)
      ~label:"composite (product of factors)" ~paper:"~17.8x"
      ~measured:(Exp.ratio composite) ()
  in
  {
    Exp.id = "E2";
    title = "maximum per-factor contributions to the gap";
    section = "Sec. 3";
    rows = rows @ [ comp_row ];
    notes =
      List.map
        (fun (f : Gap_core.Factors.t) ->
          Printf.sprintf "%s: %s" f.Gap_core.Factors.factor_name f.Gap_core.Factors.how)
        fs;
  }
