(** X2 (extension): binning economics.

    Sec. 8.2: "Fabrication plants won't offer ASIC customers the top chip
    speed off the production line, as they cannot guarantee a sufficiently
    high yield for this to be profitable." Priced with the Monte Carlo
    population: the revenue-maximizing single rating sits far down the
    distribution, a top-bin-only rating loses money, and per-part speed
    testing (custom practice) beats any single rating. *)

module V = Gap_variation.Model
module MC = Gap_variation.Montecarlo
module E = Gap_variation.Economics

let run () =
  let nominal = 250. in
  let run_mc =
    MC.simulate ~model:(V.make V.mature) ~nominal_mhz:nominal ~dies:30000 ()
  in
  let pricing = E.default_pricing in
  let candidates = Array.init 30 (fun i -> 150. +. (5. *. float_of_int i)) in
  let best = E.best_single_rating pricing run_mc ~candidates in
  let top_rating = MC.percentile run_mc 99. in
  let top_only = E.single_rating pricing run_mc ~rating_mhz:top_rating in
  let binned =
    E.binned pricing run_mc ~edges_mhz:[| 200.; 225.; 250.; 275. |]
  in
  let best_percentile =
    100. *. (1. -. MC.fraction_above run_mc best.E.rating_mhz)
  in
  {
    Exp.id = "X2";
    title = "speed-bin economics (extension)";
    section = "Sec. 8.2";
    rows =
      [
        Exp.row
          ~verdict:(Exp.check best_percentile ~lo:0. ~hi:40.)
          ~label:"revenue-best single rating sits low in the distribution"
          ~paper:"fabs guarantee worst-case, not top speed"
          ~measured:
            (Printf.sprintf "%.0f MHz (p%.0f), %.2f/die" best.E.rating_mhz
               best_percentile best.E.revenue_per_die)
          ();
        Exp.row
          ~verdict:
            (Exp.check (top_only.E.revenue_per_die /. best.E.revenue_per_die) ~lo:(-2.)
               ~hi:0.5)
          ~label:"selling only the p99 top bin" ~paper:"without sufficient yield"
          ~measured:
            (Printf.sprintf "%.2f/die at %s yield" top_only.E.revenue_per_die
               (Exp.pct top_only.E.sold_fraction))
          ();
        Exp.row
          ~verdict:
            (Exp.check (binned.E.revenue_per_die /. best.E.revenue_per_die) ~lo:1.0
               ~hi:3.0)
          ~label:"per-part speed testing + graded bins vs best single rating"
          ~paper:"custom practice (Sec. 8.3)"
          ~measured:(Exp.ratio (binned.E.revenue_per_die /. best.E.revenue_per_die))
          ();
      ];
    notes =
      [
        "price model: linear in rated speed (slope 2), fixed die cost; only \
         the shape of the comparison matters";
      ];
  }
