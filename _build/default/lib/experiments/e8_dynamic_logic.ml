(** E8 (Sec. 7): dynamic (domino) logic.

    Gate level: generated domino cells are 50-100% faster than their static
    counterparts by construction (we check the realized ratio under load).
    Circuit level: dual-rail domino synthesis of real datapaths versus the
    static mapping of the same AIGs — the structural costs of domino
    (dual-rail duplication, monotone-only cells) eat into the raw gate
    speedup, which is why the paper nets "about 50% faster" for sequential
    circuits out of gates that are up to 2x faster. *)

module Flow = Gap_synth.Flow
module Sta = Gap_sta.Sta

let tech = Gap_tech.Tech.asic_025um

let gate_ratio static_lib domino_lib =
  (* AND2 pin-to-pin delay at FO4-ish load, static vs domino *)
  let load = 10. in
  let get lib base =
    match Gap_liberty.Library.find lib ~base ~drive:2. with
    | Some c -> Gap_liberty.Cell.delay_ps c ~load_ff:load
    | None -> nan
  in
  get static_lib "AND2" /. get domino_lib "AND2"

let run () =
  let static_lib = Gap_liberty.Libgen.(make tech rich) in
  let domino_lib = Gap_liberty.Libgen.(make tech domino) in
  let g_ratio = gate_ratio static_lib domino_lib in
  let circuits =
    [
      ("cla16", Gap_datapath.Adders.cla_adder 16);
      ("ks32", Gap_datapath.Adders.kogge_stone_adder 32);
      ("mult8", Gap_datapath.Multiplier.array_multiplier ~width:8);
      ("rand1k", Gap_datapath.Random_logic.generate ~inputs:48 ~outputs:24 ~gates:1000 ());
    ]
  in
  let effort = { Flow.default_effort with tilos_moves = 0 } in
  let domino_flow g =
    (* give the domino netlist the same back-end effort the static flow gets:
       fanout buffering and TILOS sizing over the domino drive ladder *)
    let dom = Gap_domino.Dualrail.map_aig ~domino_lib g in
    ignore (Gap_synth.Buffering.buffer_fanout dom);
    ignore (Gap_synth.Sizing.tilos dom);
    dom
  in
  let ratios =
    List.map
      (fun (name, g) ->
        let static_p = (Flow.run ~lib:static_lib ~effort g).Flow.sta.Sta.min_period_ps in
        let dom = domino_flow g in
        let dom_p = (Sta.analyze dom).Sta.min_period_ps in
        (name, static_p /. dom_p, dom))
      circuits
  in
  let comb_ratio =
    exp
      (List.fold_left (fun a (_, r, _) -> a +. log r) 0. ratios
      /. float_of_int (List.length ratios))
  in
  (* sequential: add one register boundary to both *)
  let reg_static =
    Gap_retime.Overhead.register_overhead_ps ~lib:static_lib ~skew_ps:0.
  in
  let seq_ratio =
    let g = Gap_datapath.Adders.kogge_stone_adder 32 in
    let static_p = (Flow.run ~lib:static_lib ~effort g).Flow.sta.Sta.min_period_ps in
    let dom_p = (Sta.analyze (domino_flow g)).Sta.min_period_ps in
    (static_p +. reg_static) /. (dom_p +. reg_static)
  in
  let _, _, dom_example = List.nth ratios 0 in
  let dom_cells, inv_cells = Gap_domino.Dualrail.rails_instantiated dom_example in
  {
    Exp.id = "E8";
    title = "dynamic logic speedup";
    section = "Sec. 7";
    rows =
      [
        Exp.row
          ~verdict:(Exp.check g_ratio ~lo:1.5 ~hi:2.0)
          ~label:"domino gate vs static gate (AND2 under load)" ~paper:"50-100% faster"
          ~measured:(Exp.ratio g_ratio) ();
        Exp.row
          ~verdict:(Exp.check comb_ratio ~lo:1.05 ~hi:1.7)
          ~label:"dual-rail domino circuits vs static (geomean, 4 datapaths)"
          ~paper:"~50% (sequential)"
          ~measured:(Exp.ratio comb_ratio) ();
        Exp.row
          ~verdict:(Exp.check seq_ratio ~lo:1.05 ~hi:1.7)
          ~label:"with register overhead (ks32)" ~paper:"~50%"
          ~measured:(Exp.ratio seq_ratio) ();
        Exp.row ~verdict:Exp.Info ~label:"dual-rail area cost (cla16: domino cells + static invs)"
          ~paper:"2x gates" ~measured:(Printf.sprintf "%d + %d" dom_cells inv_cells) ();
      ];
    notes =
      [
        "per-circuit static/domino: "
        ^ String.concat ", "
            (List.map (fun (n, r, _) -> Printf.sprintf "%s x%.2f" n r) ratios);
        "the dual-rail duplication and monotone-only cells eat part of the 1.75x \
         gate advantage: adder/control cones keep 1.1-1.7x, mux-heavy blocks \
         (barrel shifters) lose it entirely — consistent with domino being used \
         selectively on critical paths (Sec. 7)";
      ];
  }
