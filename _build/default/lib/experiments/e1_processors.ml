(** E1 (Sec. 2): the processor comparison table and the 6-8x gap.

    Reproduces the paper's opening numbers: each chip's reported frequency is
    recovered from its FO4 logic depth and effective channel length via the
    FO4 rule, and the custom/ASIC frequency ratios land in the 6-8x band the
    paper calls "equivalent to five process generations". *)

module P = Gap_uarch.Processors

let run () =
  let proc_rows =
    List.map
      (fun (p : P.t) ->
        let modeled = P.modeled_mhz p in
        Exp.row
          ~verdict:(Exp.check (Float.abs (P.model_error p)) ~lo:0. ~hi:0.08)
          ~label:
            (Printf.sprintf "%s (%.0f FO4 @ Leff %.3fum)" p.P.proc_name p.P.fo4_depth
               p.P.leff_um)
          ~paper:(Exp.mhz p.P.reported_mhz) ~measured:(Exp.mhz modeled) ())
      P.all
  in
  let gap_fast_asic = P.gap_vs ~fast:P.ibm_ppc_1ghz ~slow:P.typical_asic in
  let gap_alpha_asic = P.gap_vs ~fast:P.alpha_21264a ~slow:P.typical_asic in
  let generations = Gap_tech.Scaling.equivalent_generations gap_fast_asic in
  let gap_rows =
    [
      Exp.row
        ~verdict:(Exp.check gap_alpha_asic ~lo:5. ~hi:8.)
        ~label:"Alpha 21264A vs typical ASIC" ~paper:"6-8x"
        ~measured:(Exp.ratio gap_alpha_asic) ();
      Exp.row
        ~verdict:(Exp.check gap_fast_asic ~lo:6. ~hi:8.)
        ~label:"IBM PPC vs typical ASIC" ~paper:"6-8x"
        ~measured:(Exp.ratio gap_fast_asic) ();
      Exp.row
        ~verdict:(Exp.check generations ~lo:4. ~hi:5.5)
        ~label:"gap in process generations (1.5x each)" ~paper:"~5"
        ~measured:(Exp.f1 generations) ();
    ]
  in
  {
    Exp.id = "E1";
    title = "processor speeds in 0.25um and the ASIC-custom gap";
    section = "Sec. 2";
    rows = proc_rows @ gap_rows;
    notes =
      [
        "modeled MHz = 1 / (FO4 depth x 500 Leff); Leff per the paper's footnotes";
        "typical ASIC modeled at 82 FO4, the midpoint of the anecdotal 120-150 MHz";
      ];
  }
