type t = { vars : int; bits : int64 }

let max_vars = 6

let mask vars =
  let rows = 1 lsl vars in
  if rows >= 64 then -1L else Int64.sub (Int64.shift_left 1L rows) 1L

let create ~vars bits =
  assert (vars >= 0 && vars <= max_vars);
  { vars; bits = Int64.logand bits (mask vars) }

let vars t = t.vars
let bits t = t.bits
let const_false ~vars = create ~vars 0L
let const_true ~vars = create ~vars (-1L)

(* The projection patterns for each variable over 64 minterm slots. *)
let var_patterns =
  [|
    0xAAAAAAAAAAAAAAAAL;
    0xCCCCCCCCCCCCCCCCL;
    0xF0F0F0F0F0F0F0F0L;
    0xFF00FF00FF00FF00L;
    0xFFFF0000FFFF0000L;
    0xFFFFFFFF00000000L;
  |]

let var ~vars i =
  assert (i >= 0 && i < vars);
  create ~vars var_patterns.(i)

let lognot t = create ~vars:t.vars (Int64.lognot t.bits)

let binop op a b =
  assert (a.vars = b.vars);
  create ~vars:a.vars (op a.bits b.bits)

let logand = binop Int64.logand
let logor = binop Int64.logor
let logxor = binop Int64.logxor
let equal a b = a.vars = b.vars && Int64.equal a.bits b.bits

let eval t m =
  assert (m >= 0 && m < 1 lsl t.vars);
  Int64.logand (Int64.shift_right_logical t.bits m) 1L = 1L

let of_fun ~vars f =
  let acc = ref 0L in
  for m = (1 lsl vars) - 1 downto 0 do
    acc := Int64.shift_left !acc 1;
    if f m then acc := Int64.logor !acc 1L
  done;
  create ~vars !acc

let count_ones t =
  let rec loop bits acc =
    if Int64.equal bits 0L then acc
    else loop (Int64.logand bits (Int64.sub bits 1L)) (acc + 1)
  in
  loop t.bits 0

let is_const t = Int64.equal t.bits 0L || Int64.equal t.bits (mask t.vars)

let cofactor t i v =
  assert (i >= 0 && i < t.vars);
  of_fun ~vars:t.vars (fun m ->
      let m' = if v then m lor (1 lsl i) else m land lnot (1 lsl i) in
      eval t m')

let depends_on t i = not (equal (cofactor t i false) (cofactor t i true))

let support_size t =
  let n = ref 0 in
  for i = 0 to t.vars - 1 do
    if depends_on t i then incr n
  done;
  !n

let permute t p =
  assert (Array.length p = t.vars);
  of_fun ~vars:t.vars (fun m ->
      (* Input j of the new function feeds input p^-1... we define: new input
         p.(i) plays the role of old input i, i.e. old minterm bit i = new
         minterm bit p.(i). *)
      let old_m = ref 0 in
      for i = 0 to t.vars - 1 do
        if m land (1 lsl p.(i)) <> 0 then old_m := !old_m lor (1 lsl i)
      done;
      eval t !old_m)

let negate_input t i =
  assert (i >= 0 && i < t.vars);
  of_fun ~vars:t.vars (fun m -> eval t (m lxor (1 lsl i)))

let expand t ~vars =
  assert (vars >= t.vars && vars <= max_vars);
  of_fun ~vars (fun m -> eval t (m land ((1 lsl t.vars) - 1)))

let is_positive_unate_in t i =
  if not (depends_on t i) then true
  else begin
    let ok = ref true in
    for m = 0 to (1 lsl t.vars) - 1 do
      if m land (1 lsl i) = 0 then
        if eval t m && not (eval t (m lor (1 lsl i))) then ok := false
    done;
    !ok
  end

let is_monotone t =
  let ok = ref true in
  for i = 0 to t.vars - 1 do
    if not (is_positive_unate_in t i) then ok := false
  done;
  !ok

let pp ppf t = Format.fprintf ppf "0x%Lx/%d vars" t.bits t.vars
