(** Boolean expression trees: the convenient front-end notation for building
    datapath logic before it is turned into an AIG or a truth table. *)

type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val ( ^^^ ) : t -> t -> t
val not_ : t -> t
val var : int -> t
val tru : t
val fls : t

val mux : sel:t -> t -> t -> t
(** [mux ~sel a b] is [a] when [sel] is false, [b] when [sel] is true. *)

val majority : t -> t -> t -> t
(** Carry function of a full adder. *)

val eval : t -> (int -> bool) -> bool
val max_var : t -> int
(** Highest variable index used, [-1] for constants. *)

val to_truthtable : vars:int -> t -> Truthtable.t
(** Requires [max_var < vars <= 6]. *)

val size : t -> int
(** Operator count. *)

val pp : Format.formatter -> t -> unit
