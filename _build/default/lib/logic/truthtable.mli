(** Truth tables of boolean functions with up to 6 inputs, packed into an
    [int64] (bit [m] holds the output for input minterm [m]).

    These describe standard-cell functions, technology-mapping cut functions,
    and drive exhaustive equivalence checks in the tests. *)

type t
(** A function together with its declared input count. *)

val max_vars : int

val create : vars:int -> int64 -> t
(** Builds a table from raw bits; bits above [2^vars] are masked off. *)

val vars : t -> int
val bits : t -> int64

val const_false : vars:int -> t
val const_true : vars:int -> t

val var : vars:int -> int -> t
(** [var ~vars i] is the projection onto input [i] ([0 <= i < vars]). *)

val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
(** Binary ops require equal [vars]. *)

val equal : t -> t -> bool
val eval : t -> int -> bool
(** [eval f m] looks up minterm [m] (input [i] = bit [i] of [m]). *)

val of_fun : vars:int -> (int -> bool) -> t
(** Tabulates [f minterm]. *)

val count_ones : t -> int
val is_const : t -> bool

val depends_on : t -> int -> bool
(** Whether the function actually depends on input [i]. *)

val support_size : t -> int

val cofactor : t -> int -> bool -> t
(** [cofactor f i v] fixes input [i] to value [v] (result keeps [vars]). *)

val permute : t -> int array -> t
(** [permute f p] renames input [i] to [p.(i)]; [p] must be a permutation of
    [0 .. vars-1]. *)

val negate_input : t -> int -> t
(** Composes with inversion of one input. *)

val expand : t -> vars:int -> t
(** Re-declare with more variables (new ones are don't-cares the function
    ignores). *)

val is_positive_unate_in : t -> int -> bool
(** True if the function is positive unate (monotone non-decreasing) in input
    [i]; used by the domino-mapping legality check. *)

val is_monotone : t -> bool
(** Positive unate in every support input. *)

val pp : Format.formatter -> t -> unit
(** Hex dump such as [0x8/4 vars]. *)
