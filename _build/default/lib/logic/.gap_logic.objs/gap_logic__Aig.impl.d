lib/logic/aig.ml: Array Expr Format Gap_util Hashtbl Int64 List
