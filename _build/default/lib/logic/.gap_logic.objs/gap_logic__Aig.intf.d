lib/logic/aig.mli: Expr Format Gap_util
