lib/logic/expr.ml: Format Truthtable
