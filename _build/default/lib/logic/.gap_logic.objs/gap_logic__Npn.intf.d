lib/logic/npn.mli: Truthtable
