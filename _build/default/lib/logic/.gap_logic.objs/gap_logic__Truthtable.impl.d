lib/logic/truthtable.ml: Array Format Int64
