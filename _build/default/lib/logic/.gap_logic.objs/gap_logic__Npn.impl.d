lib/logic/npn.ml: Array Int64 Lazy List Truthtable
