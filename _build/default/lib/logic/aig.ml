type lit = int

type node =
  | Const
  | Input of int (* position in the input list *)
  | And of lit * lit

type t = {
  nodes : node Gap_util.Vec.t;
  mutable input_names : string list; (* reversed *)
  mutable output_list : (string * lit) list; (* reversed *)
  strash : (int * int, lit) Hashtbl.t;
}

let lit_false = 0
let lit_true = 1
let lit_of_id id compl = (2 * id) + if compl then 1 else 0
let id_of_lit l = l lsr 1
let is_compl l = l land 1 = 1
let negate l = l lxor 1

let create () =
  let nodes = Gap_util.Vec.create () in
  ignore (Gap_util.Vec.push nodes Const);
  { nodes; input_names = []; output_list = []; strash = Hashtbl.create 1024 }

let add_input g name =
  let pos = List.length g.input_names in
  g.input_names <- name :: g.input_names;
  let id = Gap_util.Vec.push g.nodes (Input pos) in
  lit_of_id id false

let and_ g a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = lit_false then lit_false
  else if a = lit_true then b
  else if a = b then a
  else if a = negate b then lit_false
  else
    match Hashtbl.find_opt g.strash (a, b) with
    | Some l -> l
    | None ->
        let id = Gap_util.Vec.push g.nodes (And (a, b)) in
        let l = lit_of_id id false in
        Hashtbl.add g.strash (a, b) l;
        l

let or_ g a b = negate (and_ g (negate a) (negate b))

let xor_ g a b =
  (* a ^ b = !(a & b) & !(!a & !b), two AND nodes after sharing *)
  let nand = negate (and_ g a b) in
  let nor = negate (or_ g a b) in
  and_ g nand (negate nor)

let mux_ g ~sel a b = or_ g (and_ g (negate sel) a) (and_ g sel b)
let add_output g name l = g.output_list <- (name, l) :: g.output_list
let num_inputs g = List.length g.input_names
let num_outputs g = List.length g.output_list
let num_nodes g = Gap_util.Vec.length g.nodes
let num_ands g = num_nodes g - num_inputs g - 1

let inputs g =
  let names = Array.of_list (List.rev g.input_names) in
  let result = Array.make (Array.length names) ("", 0) in
  Gap_util.Vec.iteri
    (fun id node ->
      match node with
      | Input pos -> result.(pos) <- (names.(pos), lit_of_id id false)
      | Const | And _ -> ())
    g.nodes;
  result

let outputs g = Array.of_list (List.rev g.output_list)

let input_index g id =
  match Gap_util.Vec.get g.nodes id with
  | Input pos -> Some pos
  | Const | And _ -> None

let is_input g id =
  match Gap_util.Vec.get g.nodes id with Input _ -> true | Const | And _ -> false

let is_and g id =
  match Gap_util.Vec.get g.nodes id with And _ -> true | Const | Input _ -> false

let fanins g id =
  match Gap_util.Vec.get g.nodes id with
  | And (a, b) -> (a, b)
  | Const | Input _ -> invalid_arg "Aig.fanins: not an AND node"

let rec of_expr g e env =
  match (e : Expr.t) with
  | Const true -> lit_true
  | Const false -> lit_false
  | Var i -> env.(i)
  | Not a -> negate (of_expr g a env)
  | And (a, b) -> and_ g (of_expr g a env) (of_expr g b env)
  | Or (a, b) -> or_ g (of_expr g a env) (of_expr g b env)
  | Xor (a, b) -> xor_ g (of_expr g a env) (of_expr g b env)

let levels g =
  let n = num_nodes g in
  let lev = Array.make n 0 in
  for id = 0 to n - 1 do
    match Gap_util.Vec.get g.nodes id with
    | Const | Input _ -> ()
    | And (a, b) -> lev.(id) <- 1 + max lev.(id_of_lit a) lev.(id_of_lit b)
  done;
  lev

let depth g =
  let lev = levels g in
  List.fold_left (fun acc (_, l) -> max acc lev.(id_of_lit l)) 0 g.output_list

let fanout_counts g =
  let counts = Array.make (num_nodes g) 0 in
  Gap_util.Vec.iter
    (fun node ->
      match node with
      | And (a, b) ->
          counts.(id_of_lit a) <- counts.(id_of_lit a) + 1;
          counts.(id_of_lit b) <- counts.(id_of_lit b) + 1
      | Const | Input _ -> ())
    g.nodes;
  List.iter
    (fun (_, l) -> counts.(id_of_lit l) <- counts.(id_of_lit l) + 1)
    g.output_list;
  counts

let eval64 g ins =
  assert (Array.length ins = num_inputs g);
  let n = num_nodes g in
  let values = Array.make n 0L in
  let value_of l =
    let v = values.(id_of_lit l) in
    if is_compl l then Int64.lognot v else v
  in
  for id = 0 to n - 1 do
    match Gap_util.Vec.get g.nodes id with
    | Const -> values.(id) <- 0L
    | Input pos -> values.(id) <- ins.(pos)
    | And (a, b) -> values.(id) <- Int64.logand (value_of a) (value_of b)
  done;
  Array.map (fun (_, l) -> value_of l) (outputs g)

let eval g ins =
  let packed = Array.map (fun b -> if b then 1L else 0L) ins in
  Array.map (fun v -> Int64.logand v 1L = 1L) (eval64 g packed)

let topo_ands g =
  let acc = ref [] in
  for id = num_nodes g - 1 downto 0 do
    if is_and g id then acc := id :: !acc
  done;
  Array.of_list !acc

let cone_of g roots =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      match Gap_util.Vec.get g.nodes id with
      | Const | Input _ -> ()
      | And (a, b) ->
          visit (id_of_lit a);
          visit (id_of_lit b);
          acc := id :: !acc
    end
  in
  List.iter (fun l -> visit (id_of_lit l)) roots;
  (* [acc] is collected children-first, i.e. already topological. *)
  Array.of_list (List.rev !acc)

let equivalent_random ?(rounds = 16) g1 g2 rng =
  num_inputs g1 = num_inputs g2
  && num_outputs g1 = num_outputs g2
  &&
  let n = num_inputs g1 in
  let rec round k =
    if k = 0 then true
    else begin
      let ins = Array.init n (fun _ -> Gap_util.Rng.int64 rng) in
      let o1 = eval64 g1 ins and o2 = eval64 g2 ins in
      if o1 = o2 then round (k - 1) else false
    end
  in
  round rounds

let pp_stats ppf g =
  Format.fprintf ppf "aig: %d inputs, %d outputs, %d ands, depth %d"
    (num_inputs g) (num_outputs g) (num_ands g) (depth g)
