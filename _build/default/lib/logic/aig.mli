(** And-Inverter Graphs with structural hashing.

    The AIG is the synthesis flow's internal representation: datapath
    generators produce AIGs, [Gap_synth.Balance] restructures them for depth,
    and the technology mapper covers them with library cells.

    Nodes are referred to by {e literals}: [lit = 2 * id + complement_bit].
    Node id 0 is the constant false, so literal 0 is false and literal 1 is
    true. *)

type t
type lit = int

val lit_false : lit
val lit_true : lit
val lit_of_id : int -> bool -> lit
val id_of_lit : lit -> int
val is_compl : lit -> bool
val negate : lit -> lit

val create : unit -> t

val add_input : t -> string -> lit
(** New primary input (positive literal). *)

val and_ : t -> lit -> lit -> lit
(** Structurally-hashed AND with the usual simplifications
    (x & 0, x & 1, x & x, x & !x). *)

val or_ : t -> lit -> lit -> lit
val xor_ : t -> lit -> lit -> lit
val mux_ : t -> sel:lit -> lit -> lit -> lit
(** [mux_ ~sel a b] is [a] when [sel] = 0, [b] when [sel] = 1. *)

val add_output : t -> string -> lit -> unit

val num_inputs : t -> int
val num_outputs : t -> int
val num_ands : t -> int
val num_nodes : t -> int
(** Constant + inputs + AND nodes. *)

val inputs : t -> (string * lit) array
val outputs : t -> (string * lit) array
val input_index : t -> int -> int option
(** [input_index g id] is the position of node [id] in the input list, if the
    node is an input. *)

val is_input : t -> int -> bool
val is_and : t -> int -> bool
val fanins : t -> int -> lit * lit
(** Fanin literals of an AND node. *)

val of_expr : t -> Expr.t -> lit array -> lit
(** [of_expr g e env] builds [e] with [Var i] bound to [env.(i)]. *)

val levels : t -> int array
(** Per-node AND-depth (inputs and constants at level 0). *)

val depth : t -> int
(** Max level over the outputs' cones. *)

val fanout_counts : t -> int array
(** Number of uses of each node (as either fanin or output, counting
    multiplicity). *)

val eval : t -> bool array -> bool array
(** [eval g ins] evaluates all outputs for one input assignment (indexed like
    [inputs g]). *)

val eval64 : t -> int64 array -> int64 array
(** Bit-parallel evaluation of 64 assignments at once: element [i] of the
    argument holds 64 values for input [i]. Used for fast random equivalence
    checking. *)

val topo_ands : t -> int array
(** All AND node ids in topological (creation) order. *)

val cone_of : t -> lit list -> int array
(** Ids of all AND nodes in the transitive fanin of the given literals. *)

val equivalent_random : ?rounds:int -> t -> t -> Gap_util.Rng.t -> bool
(** Monte Carlo combinational-equivalence check of two AIGs with identically
    named/ordered inputs and outputs: 64 x [rounds] random patterns. Sound
    only probabilistically; exhaustive for [<= 6] inputs when
    [rounds * 64 >= 2^inputs] patterns are distinct, so the tests also use
    {!eval} exhaustively on small cones. *)

val pp_stats : Format.formatter -> t -> unit
