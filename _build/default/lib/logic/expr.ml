type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let ( ^^^ ) a b = Xor (a, b)
let not_ a = Not a
let var i = Var i
let tru = Const true
let fls = Const false
let mux ~sel a b = Or (And (Not sel, a), And (sel, b))
let majority a b c = Or (And (a, b), Or (And (a, c), And (b, c)))

let rec eval e env =
  match e with
  | Const b -> b
  | Var i -> env i
  | Not a -> not (eval a env)
  | And (a, b) -> eval a env && eval b env
  | Or (a, b) -> eval a env || eval b env
  | Xor (a, b) -> eval a env <> eval b env

let rec max_var = function
  | Const _ -> -1
  | Var i -> i
  | Not a -> max_var a
  | And (a, b) | Or (a, b) | Xor (a, b) -> max (max_var a) (max_var b)

let to_truthtable ~vars e =
  assert (max_var e < vars);
  Truthtable.of_fun ~vars (fun m -> eval e (fun i -> m land (1 lsl i) <> 0))

let rec size = function
  | Const _ | Var _ -> 0
  | Not a -> 1 + size a
  | And (a, b) | Or (a, b) | Xor (a, b) -> 1 + size a + size b

let rec pp ppf = function
  | Const b -> Format.fprintf ppf "%b" b
  | Var i -> Format.fprintf ppf "x%d" i
  | Not a -> Format.fprintf ppf "!%a" pp_atom a
  | And (a, b) -> Format.fprintf ppf "%a & %a" pp_atom a pp_atom b
  | Or (a, b) -> Format.fprintf ppf "%a | %a" pp_atom a pp_atom b
  | Xor (a, b) -> Format.fprintf ppf "%a ^ %a" pp_atom a pp_atom b

and pp_atom ppf e =
  match e with
  | Const _ | Var _ | Not _ -> pp ppf e
  | _ -> Format.fprintf ppf "(%a)" pp e
