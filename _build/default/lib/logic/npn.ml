type transform = { perm : int array; input_neg : int; output_neg : bool }

let identity n = { perm = Array.init n (fun i -> i); input_neg = 0; output_neg = false }

let apply f t =
  let g = ref (Truthtable.permute f t.perm) in
  for i = 0 to Truthtable.vars f - 1 do
    if t.input_neg land (1 lsl i) <> 0 then g := Truthtable.negate_input !g i
  done;
  if t.output_neg then Truthtable.lognot !g else !g

let permutations n =
  let rec insert_everywhere x = function
    | [] -> [ [ x ] ]
    | y :: ys as l ->
        (x :: l) :: List.map (fun r -> y :: r) (insert_everywhere x ys)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: xs -> List.concat_map (insert_everywhere x) (perms xs)
  in
  List.map Array.of_list (perms (List.init n (fun i -> i)))

let all_transforms n =
  let perms = permutations n in
  List.concat_map
    (fun perm ->
      List.concat_map
        (fun output_neg ->
          List.init (1 lsl n) (fun input_neg -> { perm; input_neg; output_neg }))
        [ false; true ])
    perms

(* Cache the transform lists: they only depend on the input count. *)
let transform_cache = Array.init 5 (fun n -> lazy (all_transforms n))

let transforms_for n =
  assert (n >= 0 && n <= 4);
  Lazy.force transform_cache.(n)

let canonical f =
  let n = Truthtable.vars f in
  let best = ref (Truthtable.bits f) in
  let consider t =
    let b = Truthtable.bits (apply f t) in
    if Int64.unsigned_compare b !best < 0 then best := b
  in
  List.iter consider (transforms_for n);
  Truthtable.create ~vars:n !best

let canonical_key f = Truthtable.bits (canonical f)

let match_against ~target ~candidate =
  let n = Truthtable.vars target in
  assert (Truthtable.vars candidate = n);
  let rec search = function
    | [] -> None
    | t :: rest ->
        if Truthtable.equal (apply candidate t) target then Some t else search rest
  in
  search (transforms_for n)

let popcount =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  fun x -> loop x 0

let negation_cost t = popcount t.input_neg + if t.output_neg then 1 else 0

let best_match ~target ~candidate =
  let n = Truthtable.vars target in
  assert (Truthtable.vars candidate = n);
  let best = ref None in
  let consider t =
    if Truthtable.equal (apply candidate t) target then
      match !best with
      | Some b when negation_cost b <= negation_cost t -> ()
      | _ -> best := Some t
  in
  List.iter consider (transforms_for n);
  !best
