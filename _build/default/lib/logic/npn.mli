(** NPN classification of small boolean functions.

    Two functions are NPN-equivalent when one can be obtained from the other
    by Negating inputs, Permuting inputs, and/or Negating the output. The
    technology mapper matches cut functions against library cells up to NPN,
    so a library need only store one representative per class. Brute force
    over all [n! * 2^n * 2] transforms is fine for [n <= 4]. *)

type transform = {
  perm : int array;
      (** candidate (cell) input [i] is driven by target (cut) input
          [perm.(i)] *)
  input_neg : int;
      (** bitmask over {e target} (cut) inputs that must be inverted before
          feeding the cell *)
  output_neg : bool;  (** whether the cell output must be inverted *)
}

(** Wiring semantics: if [apply candidate t = target], then
    [target (x0, ..)] = [(neg if t.output_neg) candidate (y0, ..)] where cell
    input [i] receives [y_i = x_{t.perm.(i)}], inverted iff bit [t.perm.(i)]
    of [t.input_neg] is set. *)

val identity : int -> transform

val apply : Truthtable.t -> transform -> Truthtable.t
(** [apply f t] is the function computed when [f] is wrapped in transform [t]:
    inputs permuted by [t.perm], inputs in [t.input_neg] inverted, output
    inverted when [t.output_neg]. *)

val canonical : Truthtable.t -> Truthtable.t
(** Least (by raw bits) member of the NPN class. Requires [vars <= 4]. *)

val canonical_key : Truthtable.t -> int64
(** Bits of [canonical]; usable as a hash key. *)

val match_against : target:Truthtable.t -> candidate:Truthtable.t -> transform option
(** A transform [t] such that [apply candidate t = target], if the two are
    NPN-equivalent. The mapper uses it to wire a library cell ([candidate]) so
    that it realizes the cut function ([target]). Requires equal [vars <= 4]. *)

val best_match :
  target:Truthtable.t -> candidate:Truthtable.t -> transform option
(** Like {!match_against} but scans all transforms and returns one minimizing
    the number of inversions (negated inputs + negated output), i.e. the
    cheapest wiring in inverter count. *)

val negation_cost : transform -> int

val permutations : int -> int array list
(** All permutations of [0 .. n-1]; exposed for the tests. *)
