(** Post-placement parasitic annotation.

    Turns placed instance locations into per-net wire capacitance and delay
    (HPWL length, technology RC, optimal repeaters for long nets) and writes
    them into the netlist for {!Gap_sta.Sta} to pick up: the "after layout"
    timing the paper contrasts with synthesis-time estimates (Sec. 6.2). *)

val annotate : ?use_repeaters:bool -> Gap_netlist.Netlist.t -> unit
(** Sets [wire_cap_ff] and [wire_delay_ps] on every net with placed pins.
    With [use_repeaters] (default true), nets longer than the repeater
    break-even get the repeated-wire delay, else bare Elmore wire delay (the
    driver-resistance term is already handled by STA through the wire cap). *)

val clear : Gap_netlist.Netlist.t -> unit
