(** Regular datapath tiling.

    Sec. 5.2: "tools with the capacity to identify similar structures that may
    be abutted ... will reduce area, reducing wire lengths and increasing
    performance. A bit slice may be laid out automatically then tiled, rather
    than the circuitry being placed without considering that it may be
    abutted."

    The tiler recovers bit-slice structure from a mapped word-oriented
    netlist: each instance is assigned a {e row} (the index of the first
    output bit it transitively feeds, i.e. its slice) and a {e column} (its
    topological level within the slice), then placed on that regular grid.
    For ripple-style datapaths this reproduces the hand-tiled layout custom
    designers use; compare against {!Placer.place} (general-purpose
    annealing) and {!Placer.place_random}. *)

type stats = {
  rows : int;
  cols : int;
  hpwl_um : float;
  unassigned : int;  (** instances with no reachable indexed output *)
}

val slice_of_instances : Gap_netlist.Netlist.t -> int array
(** Per-instance slice index: the smallest trailing integer parsed from the
    names of the primary outputs the instance reaches ([s0], [s12], [p3],
    ...); [-1] when it reaches none. *)

val place : Gap_netlist.Netlist.t -> stats
(** Places every instance at (column x pitch, row x pitch); instances mapping
    to the same (row, column) are spread along a sub-column offset. *)
