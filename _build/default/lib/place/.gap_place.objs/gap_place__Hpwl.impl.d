lib/place/hpwl.ml: Gap_netlist List
