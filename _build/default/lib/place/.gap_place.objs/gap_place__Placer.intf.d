lib/place/placer.mli: Gap_netlist
