lib/place/router.ml: Array Float Gap_interconnect Gap_liberty Gap_netlist Gap_util Hashtbl Hpwl List
