lib/place/tiler.mli: Gap_netlist
