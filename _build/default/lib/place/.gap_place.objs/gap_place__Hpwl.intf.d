lib/place/hpwl.mli: Gap_netlist
