lib/place/tiler.ml: Array Float Gap_netlist Hashtbl Hpwl List Option String
