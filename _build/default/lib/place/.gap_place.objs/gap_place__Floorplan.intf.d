lib/place/floorplan.mli:
