lib/place/placer.ml: Array Float Gap_netlist Gap_util Hpwl List
