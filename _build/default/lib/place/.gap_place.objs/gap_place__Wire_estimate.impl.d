lib/place/wire_estimate.ml: Float Gap_interconnect Gap_liberty Gap_netlist Hpwl
