lib/place/router.mli: Gap_netlist
