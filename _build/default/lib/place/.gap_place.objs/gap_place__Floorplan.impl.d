lib/place/floorplan.ml: Array Float Gap_util List Stack
