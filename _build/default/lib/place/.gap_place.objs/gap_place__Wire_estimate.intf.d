lib/place/wire_estimate.mli: Gap_netlist
