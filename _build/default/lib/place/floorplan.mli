(** Slicing floorplans via simulated annealing over Polish expressions
    (Wong-Liu). "Custom ICs are typically manually floorplanned. A number of
    tools are now reaching the ASIC market to facilitate chip-level
    floorplanning" (Sec. 5.2) — this is such a tool.

    A slicing floorplan over [n] blocks is a normalized Polish expression:
    a sequence of block ids and cut operators ([H]orizontal stacks, [V]ertical
    abuts) that parses as a postfix slicing tree. Annealing uses the three
    classic Wong-Liu moves. *)

type block = {
  block_name : string;
  w_um : float;
  h_um : float;
}

type element = Operand of int | Hcut | Vcut

type t = { blocks : block array; expr : element array }

val initial : block array -> t
(** [b0 b1 V b2 V ...]: a single row. *)

val is_valid : t -> bool
(** Balloting property + alternating normalization checks. *)

type layout = {
  width_um : float;
  height_um : float;
  area_um2 : float;
  positions : (float * float) array;  (** lower-left corner per block *)
}

val evaluate : t -> layout
val blocks_area_um2 : t -> float
val dead_space_frac : t -> float

type result = {
  plan : t;
  layout : layout;
  initial_area_um2 : float;
  moves_tried : int;
}

val anneal : ?seed:int64 -> ?sweeps:int -> t -> result
(** Area-driven annealing with moves M1 (swap adjacent operands), M2
    (complement an operator chain), M3 (swap operand with adjacent operator,
    validity-checked). *)
