module Netlist = Gap_netlist.Netlist

type stats = { rows : int; cols : int; hpwl_um : float; unassigned : int }

(* trailing integer of a port name: "s12" -> Some 12 *)
let trailing_index name =
  let n = String.length name in
  let rec start i =
    if i > 0 && name.[i - 1] >= '0' && name.[i - 1] <= '9' then start (i - 1) else i
  in
  let s = start n in
  if s = n then None else int_of_string_opt (String.sub name s (n - s))

let slice_of_instances nl =
  let n = Netlist.num_instances nl in
  let slice = Array.make (max 1 n) (-1) in
  (* reverse topological sweep: an instance's slice = min slice of its
     sinks; primary outputs seed their trailing index *)
  let net_slice = Array.make (max 1 (Netlist.num_nets nl)) max_int in
  for port = 0 to Netlist.num_outputs nl - 1 do
    match trailing_index (Netlist.output_name nl port) with
    | Some i ->
        let net = Netlist.output_net nl port in
        net_slice.(net) <- min net_slice.(net) i
    | None -> ()
  done;
  let order = Netlist.topo_instances nl in
  for k = Array.length order - 1 downto 0 do
    let inst = order.(k) in
    let onet = Netlist.out_net nl inst in
    (* also absorb slices of any sink pins already known *)
    let s = net_slice.(onet) in
    if s <> max_int then begin
      slice.(inst) <- s;
      Array.iter
        (fun fnet -> net_slice.(fnet) <- min net_slice.(fnet) s)
        (Netlist.fanins_of nl inst)
    end
  done;
  (* flops too (not in topo order) *)
  List.iter
    (fun f ->
      let s = net_slice.(Netlist.out_net nl f) in
      if s <> max_int then begin
        slice.(f) <- s;
        let d = (Netlist.fanins_of nl f).(0) in
        net_slice.(d) <- min net_slice.(d) s
      end)
    (Netlist.flops nl);
  slice

let place nl =
  let n = Netlist.num_instances nl in
  let slice = slice_of_instances nl in
  (* column = topological level *)
  let level = Array.make (max 1 n) 0 in
  let net_level = Array.make (max 1 (Netlist.num_nets nl)) 0 in
  Array.iter
    (fun inst ->
      let l =
        Array.fold_left (fun acc net -> max acc net_level.(net)) 0 (Netlist.fanins_of nl inst)
      in
      level.(inst) <- l;
      net_level.(Netlist.out_net nl inst) <- l + 1)
    (Netlist.topo_instances nl);
  let pitch = sqrt (Netlist.area_um2 nl /. float_of_int (max 1 n)) in
  let pitch = Float.max 1. pitch in
  let max_row = ref 0 and max_col = ref 0 and unassigned = ref 0 in
  (* spread same-(row,col) instances with a small offset stack *)
  let occupancy = Hashtbl.create 64 in
  for inst = 0 to n - 1 do
    let row = if slice.(inst) >= 0 then slice.(inst) else 0 in
    if slice.(inst) < 0 then incr unassigned;
    let col = level.(inst) in
    if row > !max_row then max_row := row;
    if col > !max_col then max_col := col;
    let key = (row, col) in
    let stack = Option.value ~default:0 (Hashtbl.find_opt occupancy key) in
    Hashtbl.replace occupancy key (stack + 1);
    Netlist.place nl inst
      ~x_um:((float_of_int col +. (0.2 *. float_of_int stack)) *. pitch)
      ~y_um:(float_of_int row *. pitch)
  done;
  {
    rows = !max_row + 1;
    cols = !max_col + 1;
    hpwl_um = Hpwl.total_um nl;
    unassigned = !unassigned;
  }
