type block = { block_name : string; w_um : float; h_um : float }
type element = Operand of int | Hcut | Vcut
type t = { blocks : block array; expr : element array }

let initial blocks =
  assert (Array.length blocks >= 1);
  let n = Array.length blocks in
  let expr = Array.make ((2 * n) - 1) (Operand 0) in
  expr.(0) <- Operand 0;
  let k = ref 1 in
  for i = 1 to n - 1 do
    expr.(!k) <- Operand i;
    expr.(!k + 1) <- Vcut;
    k := !k + 2
  done;
  { blocks; expr }

let is_valid t =
  (* balloting: every prefix has more operands than operators; total
     operators = operands - 1; every operand appears exactly once *)
  let n = Array.length t.blocks in
  let seen = Array.make n false in
  let operands = ref 0 and operators = ref 0 in
  let ok = ref true in
  Array.iter
    (fun e ->
      match e with
      | Operand i ->
          if i < 0 || i >= n || seen.(i) then ok := false else seen.(i) <- true;
          incr operands
      | Hcut | Vcut ->
          incr operators;
          if !operators >= !operands then ok := false)
    t.expr;
  !ok && !operands = n && !operators = n - 1

type layout = {
  width_um : float;
  height_um : float;
  area_um2 : float;
  positions : (float * float) array;
}

(* Evaluate by postfix interpretation; each stack entry carries dimensions
   and a function placing its blocks given the lower-left corner. *)
let evaluate t =
  let positions = Array.make (Array.length t.blocks) (0., 0.) in
  let stack = Stack.create () in
  Array.iter
    (fun e ->
      match e with
      | Operand i ->
          let b = t.blocks.(i) in
          Stack.push (b.w_um, b.h_um, fun x y -> positions.(i) <- (x, y)) stack
      | Hcut ->
          (* top is the right/upper operand in postfix order *)
          let w2, h2, p2 = Stack.pop stack in
          let w1, h1, p1 = Stack.pop stack in
          (* horizontal cut: stack vertically *)
          let place x y =
            p1 x y;
            p2 x (y +. h1)
          in
          Stack.push (Float.max w1 w2, h1 +. h2, place) stack
      | Vcut ->
          let w2, h2, p2 = Stack.pop stack in
          let w1, h1, p1 = Stack.pop stack in
          let place x y =
            p1 x y;
            p2 (x +. w1) y
          in
          Stack.push (w1 +. w2, Float.max h1 h2, place) stack)
    t.expr;
  let w, h, place = Stack.pop stack in
  assert (Stack.is_empty stack);
  place 0. 0.;
  { width_um = w; height_um = h; area_um2 = w *. h; positions }

let blocks_area_um2 t =
  Array.fold_left (fun acc b -> acc +. (b.w_um *. b.h_um)) 0. t.blocks

let dead_space_frac t =
  let l = evaluate t in
  1. -. (blocks_area_um2 t /. l.area_um2)

type result = {
  plan : t;
  layout : layout;
  initial_area_um2 : float;
  moves_tried : int;
}

let operand_positions expr =
  let acc = ref [] in
  Array.iteri (fun i e -> match e with Operand _ -> acc := i :: !acc | _ -> ()) expr;
  Array.of_list (List.rev !acc)

let operator_positions expr =
  let acc = ref [] in
  Array.iteri (fun i e -> match e with Hcut | Vcut -> acc := i :: !acc | _ -> ()) expr;
  Array.of_list (List.rev !acc)

let anneal ?(seed = 3L) ?(sweeps = 200) t0 =
  let rng = Gap_util.Rng.create ~seed () in
  let expr = Array.copy t0.expr in
  let current = { t0 with expr } in
  let cost plan = (evaluate plan).area_um2 in
  let initial_area = cost current in
  let best = ref (Array.copy expr) in
  let best_cost = ref initial_area in
  let cur_cost = ref initial_area in
  let tried = ref 0 in
  let n = Array.length expr in
  let attempt temperature =
    incr tried;
    let saved = Array.copy expr in
    let kind = Gap_util.Rng.int rng 3 in
    (match kind with
    | 0 ->
        (* M1: swap two adjacent operands (adjacent in operand order) *)
        let ops = operand_positions expr in
        if Array.length ops >= 2 then begin
          let k = Gap_util.Rng.int rng (Array.length ops - 1) in
          let i = ops.(k) and j = ops.(k + 1) in
          let tmp = expr.(i) in
          expr.(i) <- expr.(j);
          expr.(j) <- tmp
        end
    | 1 ->
        (* M2: complement a maximal operator chain *)
        let ops = operator_positions expr in
        if Array.length ops >= 1 then begin
          let k = Gap_util.Rng.int rng (Array.length ops) in
          let start = ops.(k) in
          let flip = function Hcut -> Vcut | Vcut -> Hcut | Operand i -> Operand i in
          let i = ref start in
          while
            !i < n && (match expr.(!i) with Hcut | Vcut -> true | Operand _ -> false)
          do
            expr.(!i) <- flip expr.(!i);
            incr i
          done
        end
    | _ ->
        (* M3: swap an operand with an adjacent operator *)
        let k = Gap_util.Rng.int rng (n - 1) in
        let tmp = expr.(k) in
        expr.(k) <- expr.(k + 1);
        expr.(k + 1) <- tmp);
    if not (is_valid current) then Array.blit saved 0 expr 0 n
    else begin
      let c = cost current in
      let delta = c -. !cur_cost in
      let accept =
        delta <= 0.
        || temperature > 0. && Gap_util.Rng.float rng 1. < exp (-.delta /. temperature)
      in
      if accept then begin
        cur_cost := c;
        if c < !best_cost then begin
          best_cost := c;
          best := Array.copy expr
        end
      end
      else Array.blit saved 0 expr 0 n
    end
  in
  let t_start = 0.2 *. initial_area in
  let moves_per_sweep = max 4 (2 * n) in
  for sweep = 0 to sweeps - 1 do
    let temperature =
      t_start *. (0.001 ** (float_of_int sweep /. float_of_int (max 1 (sweeps - 1))))
    in
    for _ = 1 to moves_per_sweep do
      attempt temperature
    done
  done;
  let final = { t0 with expr = !best } in
  {
    plan = final;
    layout = evaluate final;
    initial_area_um2 = initial_area;
    moves_tried = !tried;
  }
