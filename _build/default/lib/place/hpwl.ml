module Netlist = Gap_netlist.Netlist

let of_points = function
  | [] | [ _ ] -> 0.
  | (x0, y0) :: rest ->
      let xmin = ref x0 and xmax = ref x0 and ymin = ref y0 and ymax = ref y0 in
      List.iter
        (fun (x, y) ->
          if x < !xmin then xmin := x;
          if x > !xmax then xmax := x;
          if y < !ymin then ymin := y;
          if y > !ymax then ymax := y)
        rest;
      !xmax -. !xmin +. (!ymax -. !ymin)

let net_points nl net =
  let pts = ref [] in
  (match Netlist.driver_of nl net with
  | Netlist.From_cell i -> (
      match Netlist.location nl i with Some p -> pts := p :: !pts | None -> ())
  | Netlist.From_input _ | Netlist.From_const _ | Netlist.Undriven -> ());
  List.iter
    (function
      | Netlist.To_pin (i, _) -> (
          match Netlist.location nl i with Some p -> pts := p :: !pts | None -> ())
      | Netlist.To_output _ -> ())
    (Netlist.sinks_of nl net);
  !pts

let net_length_um nl net = of_points (net_points nl net)

let total_um nl =
  let acc = ref 0. in
  for net = 0 to Netlist.num_nets nl - 1 do
    acc := !acc +. net_length_um nl net
  done;
  !acc
