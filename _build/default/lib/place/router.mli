(** Congestion-aware global routing on a grid.

    "Wire length is obviously dependent on placement ... but is also
    influenced by the quality of routing" (Sec. 5). This maze router turns
    placed instance locations into actual routed wire lengths: each net is
    decomposed into two-pin connections (nearest-unconnected-sink order) and
    each connection is routed with Dijkstra over the routing grid, paying a
    growing penalty for cells already near capacity. The routed lengths are
    at least the half-perimeter bound and exceed it under congestion —
    exactly the degradation the paper attributes to routing quality. *)

type result = {
  routed_len_um : float array;  (** per net; 0 for unrouted/single-pin nets *)
  total_len_um : float;
  overflowed_cells : int;  (** grid cells loaded beyond capacity *)
  max_usage : int;
  capacity : int;
  grid_side : int;
}

val route : ?capacity:int -> Gap_netlist.Netlist.t -> result
(** Routes every multi-pin net of a placed netlist. [capacity] is the number
    of wires a grid cell accommodates per layer direction (default 8).
    Instances must be placed ({!Placer.place} or {!Placer.place_random}). *)

val annotate : Gap_netlist.Netlist.t -> result -> unit
(** Writes routed lengths into the netlist's wire parasitics (same RC model
    as {!Wire_estimate.annotate}, but with routed rather than estimated
    lengths). *)

val detour_factor : Gap_netlist.Netlist.t -> result -> float
(** Total routed length over total HPWL (>= ~1; grows with congestion). *)
