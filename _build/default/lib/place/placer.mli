(** Simulated-annealing standard-cell placement on a uniform grid.

    Cost is total HPWL, optionally weighted per net by timing criticality
    (giving the "careful placement of the critical path" the paper credits
    custom designs with). Placement results are written back into the
    netlist's instance locations. *)

type options = {
  utilization : float;  (** fraction of sites occupied, default 0.6 *)
  sweeps : int;  (** SA sweeps (moves = sweeps x instances), default 50 *)
  seed : int64;
  net_weights : (int -> float) option;  (** per-net multiplier *)
}

val default_options : options

type stats = {
  site_pitch_um : float;
  grid_side : int;
  initial_hpwl_um : float;
  final_hpwl_um : float;
  moves_accepted : int;
}

val place : ?options:options -> Gap_netlist.Netlist.t -> stats
(** Anneals and writes locations. *)

val place_random : ?seed:int64 -> Gap_netlist.Netlist.t -> stats
(** Random scatter over the same grid: the no-floorplanning baseline. *)

val die_side_um : ?utilization:float -> Gap_netlist.Netlist.t -> float
(** Side of the square die implied by total cell area and utilization. *)
