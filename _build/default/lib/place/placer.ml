module Netlist = Gap_netlist.Netlist
module Rng = Gap_util.Rng

type options = {
  utilization : float;
  sweeps : int;
  seed : int64;
  net_weights : (int -> float) option;
}

let default_options =
  { utilization = 0.6; sweeps = 50; seed = 7L; net_weights = None }

type stats = {
  site_pitch_um : float;
  grid_side : int;
  initial_hpwl_um : float;
  final_hpwl_um : float;
  moves_accepted : int;
}

let die_side_um ?(utilization = 0.6) nl =
  sqrt (Netlist.area_um2 nl /. utilization)

(* The grid: side x side sites; slot s -> (x, y). Some slots are empty. *)
type grid = {
  pitch : float;
  side : int;
  slot_of_inst : int array;
  inst_of_slot : int array; (* -1 = empty *)
}

let slot_xy g s =
  let x = float_of_int (s mod g.side) *. g.pitch in
  let y = float_of_int (s / g.side) *. g.pitch in
  (x, y)

let commit nl g =
  Array.iteri
    (fun i s ->
      let x, y = slot_xy g s in
      Netlist.place nl i ~x_um:x ~y_um:y)
    g.slot_of_inst

let build_grid ~utilization ~rng ~random_init nl =
  let n = Netlist.num_instances nl in
  let avg_area = if n = 0 then 10. else Netlist.area_um2 nl /. float_of_int n in
  let pitch = sqrt avg_area in
  let side =
    let s = int_of_float (ceil (sqrt (float_of_int n /. utilization))) in
    max 1 s
  in
  let slots = side * side in
  let slot_of_inst = Array.make (max 1 n) 0 in
  let inst_of_slot = Array.make slots (-1) in
  let order = Array.init slots (fun s -> s) in
  if random_init then Rng.shuffle rng order;
  for i = 0 to n - 1 do
    let s = order.(i) in
    slot_of_inst.(i) <- s;
    inst_of_slot.(s) <- i
  done;
  { pitch; side; slot_of_inst; inst_of_slot }

(* Incremental cost bookkeeping: nets touching an instance. *)
let nets_of_instance nl i =
  let acc = ref [ Netlist.out_net nl i ] in
  Array.iter (fun net -> if not (List.mem net !acc) then acc := net :: !acc) (Netlist.fanins_of nl i);
  !acc

let weighted_length nl weights net = weights net *. Hpwl.net_length_um nl net

let total_cost nl weights =
  let acc = ref 0. in
  for net = 0 to Netlist.num_nets nl - 1 do
    acc := !acc +. weighted_length nl weights net
  done;
  !acc

let anneal ?(options = default_options) nl =
  let rng = Rng.create ~seed:options.seed () in
  let g = build_grid ~utilization:options.utilization ~rng ~random_init:true nl in
  commit nl g;
  let weights = match options.net_weights with Some w -> w | None -> fun _ -> 1. in
  let n = Netlist.num_instances nl in
  if n = 0 then
    {
      site_pitch_um = g.pitch;
      grid_side = g.side;
      initial_hpwl_um = 0.;
      final_hpwl_um = 0.;
      moves_accepted = 0;
    }
  else begin
    let inst_nets = Array.init n (nets_of_instance nl) in
    let initial = Hpwl.total_um nl in
    let cost = ref (total_cost nl weights) in
    let accepted = ref 0 in
    let slots = g.side * g.side in
    (* move: pick an instance and a random slot; swap or shift *)
    let try_move temperature =
      let i = Rng.int rng n in
      let target = Rng.int rng slots in
      let src = g.slot_of_inst.(i) in
      if target <> src then begin
        let j = g.inst_of_slot.(target) in
        let affected =
          if j >= 0 then inst_nets.(i) @ inst_nets.(j) else inst_nets.(i)
        in
        let affected = List.sort_uniq compare affected in
        let before = List.fold_left (fun a net -> a +. weighted_length nl weights net) 0. affected in
        (* apply *)
        let apply_slot inst slot =
          g.slot_of_inst.(inst) <- slot;
          g.inst_of_slot.(slot) <- inst;
          let x, y = slot_xy g slot in
          Netlist.place nl inst ~x_um:x ~y_um:y
        in
        g.inst_of_slot.(src) <- (-1);
        apply_slot i target;
        if j >= 0 then apply_slot j src;
        let after = List.fold_left (fun a net -> a +. weighted_length nl weights net) 0. affected in
        let delta = after -. before in
        let accept =
          delta <= 0.
          || temperature > 0.
             && Rng.float rng 1. < exp (-.delta /. temperature)
        in
        if accept then begin
          cost := !cost +. delta;
          incr accepted
        end
        else begin
          (* revert *)
          g.inst_of_slot.(target) <- (-1);
          apply_slot i src;
          if j >= 0 then apply_slot j target
        end
      end
    in
    (* initial temperature: scale of one move's cost change *)
    let t0 = Float.max 1. (!cost /. float_of_int (max 1 n)) in
    let sweeps = max 1 options.sweeps in
    for sweep = 0 to sweeps - 1 do
      let temperature =
        t0 *. (0.002 /. 1.0) ** (float_of_int sweep /. float_of_int (max 1 (sweeps - 1)))
      in
      for _ = 1 to n do
        try_move temperature
      done
    done;
    {
      site_pitch_um = g.pitch;
      grid_side = g.side;
      initial_hpwl_um = initial;
      final_hpwl_um = Hpwl.total_um nl;
      moves_accepted = !accepted;
    }
  end

let place ?options nl = anneal ?options nl

let place_random ?(seed = 11L) nl =
  let rng = Rng.create ~seed () in
  let g = build_grid ~utilization:default_options.utilization ~rng ~random_init:true nl in
  commit nl g;
  let h = Hpwl.total_um nl in
  {
    site_pitch_um = g.pitch;
    grid_side = g.side;
    initial_hpwl_um = h;
    final_hpwl_um = h;
    moves_accepted = 0;
  }
