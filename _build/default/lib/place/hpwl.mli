(** Half-perimeter wirelength: the standard placement cost model. *)

val of_points : (float * float) list -> float
(** Bounding-box semi-perimeter of a set of pin locations (um). Empty or
    singleton sets cost 0. *)

val net_length_um : Gap_netlist.Netlist.t -> int -> float
(** HPWL of one net from the placed locations of its driver and sink
    instances; unplaced pins and port pins are skipped. *)

val total_um : Gap_netlist.Netlist.t -> float
