module Netlist = Gap_netlist.Netlist

let close_loops ?flop ~loops nl =
  let lib = Netlist.lib nl in
  let flop = match flop with Some f -> f | None -> Gap_liberty.Library.smallest_flop lib in
  let input_names = List.map fst loops in
  let output_names = List.map snd loops in
  let find_input name =
    let rec go i =
      if i >= Netlist.num_inputs nl then
        invalid_arg (Printf.sprintf "Sequential.close_loops: no input %s" name)
      else if Netlist.input_name nl i = name then i
      else go (i + 1)
    in
    go 0
  in
  let find_output name =
    let rec go i =
      if i >= Netlist.num_outputs nl then
        invalid_arg (Printf.sprintf "Sequential.close_loops: no output %s" name)
      else if Netlist.output_name nl i = name then i
      else go (i + 1)
    in
    go 0
  in
  List.iter (fun n -> ignore (find_input n)) input_names;
  List.iter (fun n -> ignore (find_output n)) output_names;
  let out = Netlist.create ~lib (Netlist.name nl) in
  (* old net id -> new net id *)
  let net_map = Hashtbl.create 64 in
  (* non-loop inputs *)
  for port = 0 to Netlist.num_inputs nl - 1 do
    let name = Netlist.input_name nl port in
    if not (List.mem name input_names) then
      Hashtbl.replace net_map (Netlist.input_net nl port) (Netlist.add_input out name)
  done;
  (* one flop per loop, temporarily fed by a placeholder constant; its Q net
     stands in for the old state input's net *)
  let placeholder = Netlist.add_const out false in
  let loop_flops =
    List.map
      (fun (in_name, out_name) ->
        let inst = Netlist.add_cell out flop [| placeholder |] in
        let old_state_net = Netlist.input_net nl (find_input in_name) in
        Hashtbl.replace net_map old_state_net (Netlist.out_net out inst);
        (inst, find_output out_name))
      loops
  in
  (* clone constants *)
  for net = 0 to Netlist.num_nets nl - 1 do
    match Netlist.driver_of nl net with
    | Netlist.From_const b -> Hashtbl.replace net_map net (Netlist.add_const out b)
    | _ -> ()
  done;
  (* clone instances topologically (flop outputs are sources, so existing
     flops in [nl] need their Q nets pre-created: clone flops first with
     placeholder D, rewire after) *)
  let old_flops = Netlist.flops nl in
  let flop_clones =
    List.map
      (fun f ->
        let inst = Netlist.add_cell out (Netlist.cell_of nl f) [| placeholder |] in
        Hashtbl.replace net_map (Netlist.out_net nl f) (Netlist.out_net out inst);
        (f, inst))
      old_flops
  in
  let order = Netlist.topo_instances nl in
  Array.iter
    (fun i ->
      if not (Netlist.is_flop nl i) then begin
        let fanins =
          Array.map
            (fun net ->
              match Hashtbl.find_opt net_map net with
              | Some n -> n
              | None -> failwith "Sequential.close_loops: unmapped fanin")
            (Netlist.fanins_of nl i)
        in
        let inst = Netlist.add_cell out (Netlist.cell_of nl i) fanins in
        Hashtbl.replace net_map (Netlist.out_net nl i) (Netlist.out_net out inst)
      end)
    order;
  (* rewire all flop D pins to their real sources *)
  List.iter
    (fun (old_f, new_f) ->
      let d_old = (Netlist.fanins_of nl old_f).(0) in
      Netlist.rewire_pin out ~inst:new_f ~pin:0 (Hashtbl.find net_map d_old))
    flop_clones;
  List.iter
    (fun (inst, out_port) ->
      let d_old = Netlist.output_net nl out_port in
      Netlist.rewire_pin out ~inst ~pin:0 (Hashtbl.find net_map d_old))
    loop_flops;
  (* non-loop outputs *)
  for port = 0 to Netlist.num_outputs nl - 1 do
    let name = Netlist.output_name nl port in
    if not (List.mem name output_names) then
      ignore (Netlist.set_output out name (Hashtbl.find net_map (Netlist.output_net nl port)))
  done;
  out
