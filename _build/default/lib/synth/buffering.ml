module Netlist = Gap_netlist.Netlist
module Cell = Gap_liberty.Cell
module Library = Gap_liberty.Library

(* Pick the buffer (or inverter) whose drive best suits [load]: smallest cell
   with delay within 5% of the best, to avoid wasting area. *)
let pick_for_load candidates load =
  match candidates with
  | [] -> None
  | cells ->
      let delay c = Cell.delay_ps c ~load_ff:load in
      let best = List.fold_left (fun a c -> if delay c < delay a then c else a) (List.hd cells) cells in
      let threshold = 1.05 *. delay best in
      Some
        (List.fold_left
           (fun acc c ->
             if delay c <= threshold && c.Cell.area_um2 < acc.Cell.area_um2 then c else acc)
           best cells)

let chunks n lst =
  let rec go acc cur k = function
    | [] -> if cur = [] then List.rev acc else List.rev (List.rev cur :: acc)
    | x :: rest ->
        if k = n then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 lst

let buffer_fanout ?(max_fanout = 8) nl =
  assert (max_fanout >= 2);
  let lib = Netlist.lib nl in
  let buffers = Library.buffers lib in
  let inverters = Library.inverters lib in
  let inserted = ref 0 in
  let sink_load sinks = List.fold_left (fun acc s -> acc +. Netlist.pin_load_ff nl s) 0. sinks in
  (* One pass splits a net into <= max_fanout groups; repeat to fix up the
     driver side and any group nets that are still too wide. *)
  let split_net net =
    let sinks = Netlist.sinks_of nl net in
    if List.length sinks > max_fanout then begin
      let groups = chunks max_fanout sinks in
      List.iter
        (fun group ->
          let load = sink_load group in
          match pick_for_load buffers load with
          | Some buf ->
              ignore (Netlist.insert_on_sinks nl buf ~net ~sinks:group);
              incr inserted
          | None -> (
              (* no buffers: inverter pair *)
              match pick_for_load inverters load with
              | Some inv2 ->
                  let inv1 =
                    Option.value ~default:inv2 (pick_for_load inverters inv2.Cell.input_cap_ff)
                  in
                  let i1 = Netlist.insert_on_sinks nl inv1 ~net ~sinks:group in
                  let mid = Netlist.out_net nl i1 in
                  let i2 =
                    Netlist.insert_on_sinks nl inv2 ~net:mid
                      ~sinks:(Netlist.sinks_of nl mid |> List.filter (function
                        | Netlist.To_pin (i, _) -> i <> i1
                        | Netlist.To_output _ -> true))
                  in
                  ignore i2;
                  inserted := !inserted + 2
              | None -> ()))
        groups;
      true
    end
    else false
  in
  let rec fixpoint () =
    let changed = ref false in
    for net = 0 to Netlist.num_nets nl - 1 do
      if split_net net then changed := true
    done;
    if !changed then fixpoint ()
  in
  fixpoint ();
  !inserted
