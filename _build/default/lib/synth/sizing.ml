module Netlist = Gap_netlist.Netlist
module Cell = Gap_liberty.Cell
module Library = Gap_liberty.Library
module Sta = Gap_sta.Sta

type result = { moves : int; initial_period_ps : float; final_period_ps : float }

(* Local sensitivity of upsizing [inst] from [old_c] to [new_c]: the change of
   its own delay under its present load, plus the worst slowdown induced on a
   fanin driver by the increased pin capacitance. Negative = path gets
   faster. *)
let move_gain nl inst (old_c : Cell.t) (new_c : Cell.t) =
  let onet = Netlist.out_net nl inst in
  let load = Netlist.net_load_ff nl onet in
  let d_self = Cell.delay_ps new_c ~load_ff:load -. Cell.delay_ps old_c ~load_ff:load in
  let d_cin = new_c.input_cap_ff -. old_c.input_cap_ff in
  let worst_upstream = ref 0. in
  Array.iter
    (fun fnet ->
      match Netlist.driver_of nl fnet with
      | Netlist.From_cell d ->
          let dc = Netlist.cell_of nl d in
          let slow = dc.Cell.drive_res_kohm *. d_cin in
          if slow > !worst_upstream then worst_upstream := slow
      | Netlist.From_input _ | Netlist.From_const _ | Netlist.Undriven -> ())
    (Netlist.fanins_of nl inst);
  d_self +. !worst_upstream

let tilos ?(config = Sta.default_config) ?max_moves nl =
  let lib = Netlist.lib nl in
  let max_moves =
    match max_moves with Some m -> m | None -> 4 * max 1 (Netlist.num_instances nl)
  in
  let initial = (Sta.analyze ~config nl).Sta.min_period_ps in
  let rec loop moves current_period =
    if moves >= max_moves then (moves, current_period)
    else begin
      let sta = Sta.analyze ~config nl in
      let candidates =
        List.filter_map
          (fun (s : Sta.step) ->
            match s.inst with
            | Some i when not (Netlist.is_flop nl i) -> (
                let c = Netlist.cell_of nl i in
                match Library.next_drive_up lib c with
                | Some up -> Some (i, c, up, move_gain nl i c up)
                | None -> None)
            | Some _ | None -> None)
          sta.Sta.critical.steps
      in
      let best =
        List.fold_left
          (fun acc (i, c, up, gain) ->
            match acc with
            | Some (_, _, _, g) when g <= gain -> acc
            | _ -> Some (i, c, up, gain))
          None candidates
      in
      match best with
      | Some (i, _, up, gain) when gain < -1e-9 ->
          Netlist.replace_cell nl i up;
          let period = (Sta.analyze ~config nl).Sta.min_period_ps in
          if period > current_period +. 1e-9 then begin
            (* The local model lied (rare): revert and stop. *)
            let c = Netlist.cell_of nl i in
            (match Library.next_drive_down lib c with
            | Some down -> Netlist.replace_cell nl i down
            | None -> ());
            (moves, current_period)
          end
          else loop (moves + 1) period
      | _ -> (moves, current_period)
    end
  in
  let moves, final = loop 0 initial in
  { moves; initial_period_ps = initial; final_period_ps = final }

let minimize_drives nl =
  let lib = Netlist.lib nl in
  List.iter
    (fun i ->
      let c = Netlist.cell_of nl i in
      match Library.drives_of lib c.Cell.base with
      | smallest :: _ when smallest.Cell.name <> c.Cell.name ->
          Netlist.replace_cell nl i smallest
      | _ -> ())
    (Netlist.combinational_instances nl)

let set_all_drives nl ~drive =
  let lib = Netlist.lib nl in
  List.iter
    (fun i ->
      let c = Netlist.cell_of nl i in
      let ladder = Library.drives_of lib c.Cell.base in
      let nearest =
        List.fold_left
          (fun best (cand : Cell.t) ->
            match best with
            | None -> Some cand
            | Some (b : Cell.t) ->
                if Float.abs (cand.drive -. drive) < Float.abs (b.drive -. drive) then
                  Some cand
                else best)
          None ladder
      in
      match nearest with
      | Some cand when cand.Cell.name <> c.Cell.name -> Netlist.replace_cell nl i cand
      | Some _ | None -> ())
    (Netlist.combinational_instances nl)

let downsize_noncritical ?(config = Sta.default_config) ~slack_margin_ps nl =
  let lib = Netlist.lib nl in
  let baseline = (Sta.analyze ~config nl).Sta.min_period_ps in
  let budget = baseline +. slack_margin_ps in
  let accepted = ref 0 in
  let sta = ref (Sta.analyze ~config nl) in
  List.iter
    (fun i ->
      if not (Sta.instance_on_critical_path !sta i) then begin
        let c = Netlist.cell_of nl i in
        match Library.next_drive_down lib c with
        | Some down ->
            Netlist.replace_cell nl i down;
            let after = Sta.analyze ~config nl in
            if after.Sta.min_period_ps <= budget then begin
              incr accepted;
              sta := after
            end
            else Netlist.replace_cell nl i c
        | None -> ()
      end)
    (Netlist.combinational_instances nl);
  !accepted
