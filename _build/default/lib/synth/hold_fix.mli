(** Hold fixing: padding short paths until every register's hold constraint
    is met under the skew budget.

    This is the flow stage behind Sec. 4.1's observation that ASIC registers
    "have to be more tolerant to clock skew": tolerance is bought either
    inside the cell or, as here, with explicit delay (buffer chains) inserted
    before violating D pins. The cost is area and power — part of the ASIC
    overhead the paper prices. *)

type result = {
  buffers_inserted : int;
  area_added_um2 : float;
  iterations : int;
  clean : bool;  (** all hold endpoints non-negative afterwards *)
}

val fix : ?skew_ps:float -> ?max_iterations:int -> Gap_netlist.Netlist.t -> result
(** Inserts minimum-size buffers in front of violating flop D pins until
    {!Gap_sta.Hold.analyze} is clean or [max_iterations] (default 10) passes
    elapse. Mutates the netlist; logic function is unchanged (buffers are
    non-inverting). Uses inverter pairs when the library has no buffer. *)
