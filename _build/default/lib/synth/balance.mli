(** AIG depth balancing.

    Long AND chains produced by word-level construction (e.g. a ripple of
    [a0 & a1 & a2 & ...]) are re-associated into minimum-depth trees: the
    leaves of each maximal single-fanout AND tree are re-combined
    smallest-level-first (the Huffman-style heuristic used by ABC's
    [balance]). Logic function is preserved; depth typically drops from O(n)
    to O(log n), which is the "fewer logic levels" lever of the paper's
    Sec. 4. *)

val balance : Gap_logic.Aig.t -> Gap_logic.Aig.t
(** Returns a fresh AIG with identical inputs (same names and order) and
    outputs, balanced for depth. *)
