(** Closing combinational loops through registers: turns a mapped
    combinational netlist with explicit state-in/state-out ports into a
    sequential machine.

    The FSM generator (and any feedback design) is synthesized as pure
    combinational logic whose current-state bits are primary inputs and
    next-state bits primary outputs; [close_loops] rebuilds the netlist with
    a flop per loop, removing both ports. This keeps the technology mapper
    oblivious to sequential structure. *)

val close_loops :
  ?flop:Gap_liberty.Cell.t ->
  loops:(string * string) list ->
  Gap_netlist.Netlist.t ->
  Gap_netlist.Netlist.t
(** [close_loops ~loops nl] returns a fresh netlist in which, for every
    [(input_name, output_name)] pair, the primary input is replaced by the Q
    of a new flop whose D is the net of the named output, and both ports
    disappear from the interface. Port order of the remaining ports is
    preserved. [flop] defaults to the library's smallest flop.

    Raises [Invalid_argument] if a named port is missing. *)
