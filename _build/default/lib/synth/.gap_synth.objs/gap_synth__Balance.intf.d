lib/synth/balance.mli: Gap_logic
