lib/synth/buffering.mli: Gap_netlist
