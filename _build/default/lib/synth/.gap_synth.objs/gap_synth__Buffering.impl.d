lib/synth/buffering.ml: Gap_liberty Gap_netlist List Option
