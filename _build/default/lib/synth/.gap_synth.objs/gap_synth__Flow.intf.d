lib/synth/flow.mli: Gap_liberty Gap_logic Gap_netlist Gap_sta Mapper Sizing
