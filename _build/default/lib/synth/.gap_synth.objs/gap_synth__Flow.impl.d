lib/synth/flow.ml: Balance Buffering Gap_netlist Gap_sta Mapper Sizing
