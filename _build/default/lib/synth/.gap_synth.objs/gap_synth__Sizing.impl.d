lib/synth/sizing.ml: Array Float Gap_liberty Gap_netlist Gap_sta List
