lib/synth/balance.ml: Array Gap_logic Gap_util Hashtbl List Option
