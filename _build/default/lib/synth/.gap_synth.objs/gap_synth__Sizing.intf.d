lib/synth/sizing.mli: Gap_netlist Gap_sta
