lib/synth/mapper.ml: Array Cuts Float Gap_liberty Gap_logic Gap_netlist Hashtbl Lazy List Option Printf
