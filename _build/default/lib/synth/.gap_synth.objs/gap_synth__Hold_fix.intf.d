lib/synth/hold_fix.mli: Gap_netlist
