lib/synth/mapper.mli: Gap_liberty Gap_logic Gap_netlist
