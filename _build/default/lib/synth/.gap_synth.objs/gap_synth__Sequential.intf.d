lib/synth/sequential.mli: Gap_liberty Gap_netlist
