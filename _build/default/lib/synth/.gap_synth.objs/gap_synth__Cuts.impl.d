lib/synth/cuts.ml: Array Gap_logic Hashtbl List
