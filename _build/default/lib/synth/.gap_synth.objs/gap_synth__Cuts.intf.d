lib/synth/cuts.mli: Gap_logic
