lib/synth/sequential.ml: Array Gap_liberty Gap_netlist Hashtbl List Printf
