(** Gate sizing on mapped netlists.

    [tilos] is the classic TILOS-style greedy optimizer (Fishburn & Dunlop,
    the paper's [7]): repeatedly pick, among the cells on the critical path,
    the upsizing move with the best local delay improvement, until no move
    helps. Sizing moves walk the library's drive ladder, so the richness of
    that ladder (Sec. 6) directly bounds what sizing can do.

    [minimize_drives] sets every combinational cell to its smallest drive:
    the "sizing transistors minimally to reduce power" baseline. *)

type result = {
  moves : int;
  initial_period_ps : float;
  final_period_ps : float;
}

val tilos :
  ?config:Gap_sta.Sta.config ->
  ?max_moves:int ->
  Gap_netlist.Netlist.t ->
  result
(** Mutates the netlist. Default [max_moves] = 4 x instance count. *)

val minimize_drives : Gap_netlist.Netlist.t -> unit

val set_all_drives : Gap_netlist.Netlist.t -> drive:float -> unit
(** Sets every combinational cell to the ladder entry nearest [drive]: the
    "reasonable uniform sizes, no per-path effort" baseline. *)

val downsize_noncritical :
  ?config:Gap_sta.Sta.config -> slack_margin_ps:float -> Gap_netlist.Netlist.t -> int
(** Power recovery: walks non-critical cells down the drive ladder while the
    design's min period does not degrade by more than [slack_margin_ps];
    returns the number of accepted downsizes. *)
