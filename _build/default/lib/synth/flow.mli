(** The full ASIC synthesis flow: AIG -> balance -> map -> buffer -> size.

    This is the "register-transfer level logic synthesis" pipeline the paper
    contrasts with custom design; the effort knobs correspond to the
    methodology choices the paper prices (library, sizing, buffering). *)

type effort = {
  balance : bool;
  mode : Mapper.mode;
  buffer_max_fanout : int option;
  tilos_moves : int;  (** 0 disables sizing *)
  sta_config : Gap_sta.Sta.config;
}

val default_effort : effort
(** Balanced, delay-mode mapping, fanout 8 buffering, sizing enabled, no
    skew. *)

val low_effort : effort
(** No balancing, area-mode mapping, no buffering, no sizing: the
    careless-flow baseline. *)

type outcome = {
  netlist : Gap_netlist.Netlist.t;
  sta : Gap_sta.Sta.t;
  sizing : Sizing.result option;
  buffers_inserted : int;
}

val run :
  lib:Gap_liberty.Library.t ->
  ?effort:effort ->
  ?name:string ->
  Gap_logic.Aig.t ->
  outcome
