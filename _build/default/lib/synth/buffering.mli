(** Fanout buffering: splits heavily-loaded nets behind buffer trees.

    "Additional buffers may be included to drive large capacitive loads that
    would be charged and discharged too slowly otherwise" (Sec. 6). Libraries
    without buffer cells (the paper's impoverished-library case) fall back to
    inverter pairs, paying two stages instead of one. *)

val buffer_fanout : ?max_fanout:int -> Gap_netlist.Netlist.t -> int
(** Rebuilds every net with more than [max_fanout] sinks (default 8) into a
    tree of buffers, choosing drives by load. Returns the number of cells
    inserted. Mutates the netlist; logic function is preserved. *)
