(** Cut-based technology mapping: covers an AIG with library cells.

    For every AND node the mapper enumerates k-feasible cuts, matches each
    cut function against the library up to NPN (inverters are inserted for
    negated pins and charged in the cost), and keeps the best implementation
    by dynamic programming over the topological order:

    - [Delay] mode minimizes estimated arrival (load estimated from AIG
      fanout counts, since real loads exist only after the cover is chosen);
    - [Area] mode minimizes area flow (cell area amortized over fanout).

    The mapped result is a combinational {!Gap_netlist.Netlist.t} with the
    same primary inputs/outputs as the AIG. Mapping always succeeds on
    libraries containing at least NAND2 and INV. *)

type mode = Delay | Area

val map_aig :
  lib:Gap_liberty.Library.t ->
  ?mode:mode ->
  ?passes:int ->
  ?name:string ->
  Gap_logic.Aig.t ->
  Gap_netlist.Netlist.t
(** [passes] (default 1) > 1 re-runs the covering DP with the {e realized}
    loads of the previous cover fed back in place of the fanout estimate —
    the usual two-pass refinement that fixes load-estimate misjudgements.
    Raises [Failure] if some cut has no library match and neither does the
    fallback 2-leaf cut (impossible with NAND2+INV present). *)

val estimated_arrival_ps :
  lib:Gap_liberty.Library.t -> ?mode:mode -> Gap_logic.Aig.t -> float
(** The mapper's internal arrival estimate for the worst output; exposed for
    diagnostics and tests (the real number comes from [Gap_sta]). *)
