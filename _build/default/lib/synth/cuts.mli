(** K-feasible cut enumeration on AIGs, the front half of technology mapping.

    A cut of node [n] is a set of nodes ("leaves") such that every path from
    the inputs to [n] passes through a leaf; a k-feasible cut has at most [k]
    leaves. The mapper covers the AIG by choosing one cut per mapped node and
    one library cell realizing that cut's function. *)

type cut = { leaves : int array  (** node ids, sorted ascending *) }

val trivial : int -> cut
val size : cut -> int

val enumerate : ?k:int -> ?per_node:int -> Gap_logic.Aig.t -> cut list array
(** [enumerate g] returns, for every node id, its cut list (trivial cut
    included, dominated cuts pruned, at most [per_node] kept). Inputs and the
    constant node get only their trivial cut. Defaults: [k = 4],
    [per_node = 10]. *)

val cut_function : Gap_logic.Aig.t -> int -> cut -> Gap_logic.Truthtable.t
(** [cut_function g root cut] is the function of [root] (positive phase) in
    terms of the cut leaves, with leaf [i] (in array order) as variable [i].
    Requires the cut to actually cover [root]. *)
