module Aig = Gap_logic.Aig

let balance g =
  let g' = Aig.create () in
  let in_map = Array.map (fun (name, _) -> Aig.add_input g' name) (Aig.inputs g) in
  let fanout = Aig.fanout_counts g in
  let memo : (int, int) Hashtbl.t = Hashtbl.create 256 in
  (* level of a node in the new AIG, tracked incrementally *)
  let level : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let level_of_lit l =
    Option.value ~default:0 (Hashtbl.find_opt level (Aig.id_of_lit l))
  in
  let and_tracked a b =
    let l = Aig.and_ g' a b in
    let id = Aig.id_of_lit l in
    if Aig.is_and g' id && not (Hashtbl.mem level id) then
      Hashtbl.replace level id (1 + max (level_of_lit a) (level_of_lit b));
    l
  in
  let rec build id =
    match Hashtbl.find_opt memo id with
    | Some l -> l
    | None ->
        let result =
          if id = 0 then Aig.lit_false
          else
            match Aig.input_index g id with
            | Some pos -> in_map.(pos)
            | None ->
                let a, b = Aig.fanins g id in
                (* Collect the super-gate leaves: expand through
                   non-complemented, single-fanout AND children. *)
                let rec collect lit acc =
                  let cid = Aig.id_of_lit lit in
                  if (not (Aig.is_compl lit)) && Aig.is_and g cid && fanout.(cid) <= 1
                  then begin
                    let fa, fb = Aig.fanins g cid in
                    collect fa (collect fb acc)
                  end
                  else lit :: acc
                in
                let leaves = collect a (collect b []) in
                let new_lits = List.map build_lit leaves in
                (* Combine smallest levels first for minimum depth. *)
                let heap =
                  Gap_util.Heap.of_array
                    ~cmp:(fun x y -> compare (level_of_lit x) (level_of_lit y))
                    (Array.of_list new_lits)
                in
                let rec reduce () =
                  match Gap_util.Heap.pop heap with
                  | None -> Aig.lit_true (* empty conjunction *)
                  | Some x -> (
                      match Gap_util.Heap.pop heap with
                      | None -> x
                      | Some y ->
                          Gap_util.Heap.push heap (and_tracked x y);
                          reduce ())
                in
                reduce ()
        in
        Hashtbl.replace memo id result;
        result
  and build_lit l =
    let nl = build (Aig.id_of_lit l) in
    if Aig.is_compl l then Aig.negate nl else nl
  in
  Array.iter (fun (name, l) -> Aig.add_output g' name (build_lit l)) (Aig.outputs g);
  g'
