type t = {
  succs : (int * float) list Vec.t;
  preds : (int * float) list Vec.t;
  mutable edges : int;
}

let create () = { succs = Vec.create (); preds = Vec.create (); edges = 0 }

let add_node g =
  let id = Vec.push g.succs [] in
  let id' = Vec.push g.preds [] in
  assert (id = id');
  id

let add_nodes g n =
  while Vec.length g.succs < n do
    ignore (add_node g)
  done

let node_count g = Vec.length g.succs
let edge_count g = g.edges

let add_edge g ?(weight = 0.) u v =
  Vec.set g.succs u ((v, weight) :: Vec.get g.succs u);
  Vec.set g.preds v ((u, weight) :: Vec.get g.preds v);
  g.edges <- g.edges + 1

let succ g u = Vec.get g.succs u
let pred g v = Vec.get g.preds v
let out_degree g u = List.length (succ g u)
let in_degree g v = List.length (pred g v)

let topo_order g =
  let n = node_count g in
  let indeg = Array.init n (in_degree g) in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = Array.make n 0 in
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order.(!filled) <- u;
    incr filled;
    let relax (v, _) =
      indeg.(v) <- indeg.(v) - 1;
      if indeg.(v) = 0 then Queue.add v queue
    in
    List.iter relax (succ g u)
  done;
  if !filled = n then Some order else None

let is_acyclic g = topo_order g <> None

let longest_path g ~node_delay =
  match topo_order g with
  | None -> None
  | Some order ->
      let n = node_count g in
      let arr = Array.make n 0. in
      let visit u =
        let best =
          List.fold_left
            (fun acc (p, w) -> Float.max acc (arr.(p) +. w))
            0. (pred g u)
        in
        arr.(u) <- best +. node_delay u
      in
      Array.iter visit order;
      Some arr

(* Bellman-Ford over an explicit initial distance vector; shared by
   [bellman_ford] and [feasible_potentials]. *)
let bellman_ford_from g dist =
  let n = node_count g in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    for u = 0 to n - 1 do
      if dist.(u) < infinity then
        let relax (v, w) =
          if dist.(u) +. w < dist.(v) then begin
            dist.(v) <- dist.(u) +. w;
            changed := true
          end
        in
        List.iter relax (succ g u)
    done
  done;
  if !changed then None else Some dist

let bellman_ford g ~source =
  let dist = Array.make (node_count g) infinity in
  dist.(source) <- 0.;
  bellman_ford_from g dist

let feasible_potentials g =
  (* A virtual source with 0-weight edges to all nodes is equivalent to
     starting every distance at 0. *)
  bellman_ford_from g (Array.make (node_count g) 0.)

let scc g =
  let n = node_count g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  (* Iterative Tarjan to survive deep netlists without stack overflow. *)
  let strongconnect v0 =
    let call_stack = Stack.create () in
    Stack.push (v0, succ g v0) call_stack;
    index.(v0) <- !next_index;
    lowlink.(v0) <- !next_index;
    incr next_index;
    Stack.push v0 stack;
    on_stack.(v0) <- true;
    while not (Stack.is_empty call_stack) do
      let v, remaining = Stack.pop call_stack in
      match remaining with
      | (w, _) :: rest ->
          Stack.push (v, rest) call_stack;
          if index.(w) = -1 then begin
            index.(w) <- !next_index;
            lowlink.(w) <- !next_index;
            incr next_index;
            Stack.push w stack;
            on_stack.(w) <- true;
            Stack.push (w, succ g w) call_stack
          end
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
      | [] ->
          if lowlink.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              let w = Stack.pop stack in
              on_stack.(w) <- false;
              comp.(w) <- !next_comp;
              if w = v then continue := false
            done;
            incr next_comp
          end;
          if not (Stack.is_empty call_stack) then begin
            let parent, _ = Stack.top call_stack in
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          end
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  comp
