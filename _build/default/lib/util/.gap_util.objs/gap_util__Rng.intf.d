lib/util/rng.mli:
