lib/util/units.ml: Float Printf
