lib/util/stats.mli:
