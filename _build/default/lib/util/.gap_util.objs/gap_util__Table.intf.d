lib/util/table.mli:
