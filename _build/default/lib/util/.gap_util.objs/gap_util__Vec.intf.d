lib/util/vec.mli:
