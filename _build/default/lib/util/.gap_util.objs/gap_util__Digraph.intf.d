lib/util/digraph.mli:
