lib/util/digraph.ml: Array Float List Queue Stack Vec
