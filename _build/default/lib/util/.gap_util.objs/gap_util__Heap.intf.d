lib/util/heap.mli:
