lib/util/units.mli:
