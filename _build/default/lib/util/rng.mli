(** Deterministic pseudo-random number generation.

    All stochastic parts of the library (Monte Carlo variation sampling,
    simulated annealing, random netlist generation, property tests) draw from
    this module so that every experiment is reproducible from a seed.

    The generator is xoshiro256**, seeded through splitmix64, following the
    reference implementations of Blackman and Vigna. *)

type t
(** Mutable generator state. *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] makes a fresh generator. The default seed is a fixed
    constant, so two generators created without a seed produce identical
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. Streams of the
    parent and child are (statistically) independent; used to give each
    Monte Carlo die or annealing worker its own stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniform bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val normal : t -> mean:float -> sigma:float -> float
(** Gaussian sample by the Box-Muller transform (the spare value is cached, so
    successive calls use both halves of each transform). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [exp] of a [normal] sample with the given underlying parameters. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
