let ps_of_ns ns = ns *. 1000.
let ns_of_ps ps = ps /. 1000.
let mhz_of_period_ps ps = 1e6 /. ps
let period_ps_of_mhz mhz = 1e6 /. mhz
let ghz_of_period_ps ps = 1e3 /. ps
let um_of_mm mm = mm *. 1000.
let mm_of_um um = um /. 1000.
let ff_of_pf pf = pf *. 1000.
let kohm_of_ohm ohm = ohm /. 1000.

let pp_time_ps ps =
  if Float.abs ps >= 1000. then Printf.sprintf "%.2f ns" (ns_of_ps ps)
  else Printf.sprintf "%.0f ps" ps

let pp_freq_mhz mhz =
  if mhz >= 1000. then Printf.sprintf "%.2f GHz" (mhz /. 1000.)
  else Printf.sprintf "%.0f MHz" mhz

let pp_length_um um =
  if Float.abs um >= 1000. then Printf.sprintf "%.2f mm" (mm_of_um um)
  else Printf.sprintf "%.1f um" um
