(** Directed graphs over dense integer node ids.

    This is the shared graph machinery behind the netlist timing graph, the
    retiming graph, and the AIG levelizer: topological ordering, cycle
    detection, longest paths, Bellman-Ford (needed by Leiserson-Saxe
    retiming), and Tarjan strongly-connected components. *)

type t

val create : unit -> t

val add_node : t -> int
(** Returns the id of the new node; ids are consecutive from 0. *)

val add_nodes : t -> int -> unit
(** Ensures the graph has at least [n] nodes. *)

val node_count : t -> int
val edge_count : t -> int

val add_edge : t -> ?weight:float -> int -> int -> unit
(** [add_edge g u v] adds a directed edge [u -> v]. Parallel edges are kept. *)

val succ : t -> int -> (int * float) list
(** Successors with edge weights. *)

val pred : t -> int -> (int * float) list
val out_degree : t -> int -> int
val in_degree : t -> int -> int

val topo_order : t -> int array option
(** Kahn's algorithm; [None] if the graph has a cycle. *)

val is_acyclic : t -> bool

val longest_path : t -> node_delay:(int -> float) -> float array option
(** For a DAG, per-node longest-path arrival: [arr v = node_delay v + max over
    predecessors u of (arr u + weight (u,v))]; [None] on cyclic graphs. *)

val bellman_ford : t -> source:int -> float array option
(** Shortest distances from [source] treating edge weights as lengths;
    [None] when a negative cycle is reachable. Unreachable nodes get
    [infinity]. *)

val feasible_potentials : t -> float array option
(** Solves the difference-constraint system [x(v) - x(u) <= weight (u,v)] for
    all edges, via Bellman-Ford from a virtual source connected to every node
    with weight 0. [None] if the system is infeasible (negative cycle). This
    is the core feasibility test of Leiserson-Saxe retiming. *)

val scc : t -> int array
(** Tarjan strongly-connected components: returns a component id per node,
    numbered in reverse topological order of the condensation. *)
