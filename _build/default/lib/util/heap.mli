(** Binary min-heap with a caller-supplied ordering. Used by the placer's
    net-queue and the sizing engine's candidate selection. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the smallest element. *)

val of_array : cmp:('a -> 'a -> int) -> 'a array -> 'a t
val drain : 'a t -> 'a list
(** Pops everything, smallest first. *)
