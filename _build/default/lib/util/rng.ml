type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable spare : float option; (* cached second Box-Muller output *)
}

let default_seed = 0x9E3779B97F4A7C15L

(* splitmix64: used only to expand a single seed into the four xoshiro words,
   as recommended by the xoshiro authors. *)
let splitmix64 state =
  let z = Int64.add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed seed =
  let st = ref seed in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3; spare = None }

let create ?(seed = default_seed) () = of_seed seed
let copy t = { t with spare = t.spare }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed (int64 t)
let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t n =
  assert (n > 0);
  if n land (n - 1) = 0 then bits30 t land (n - 1)
  else begin
    (* rejection sampling to avoid modulo bias *)
    let rec draw () =
      let v = bits30 t in
      let bound = (1 lsl 30) - ((1 lsl 30) mod n) in
      if v < bound then v mod n else draw ()
    in
    draw ()
  end

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

(* 53 uniform bits mapped to [0,1) *)
let unit_float t =
  let bits = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bits *. 0x1p-53

let float t x = unit_float t *. x
let float_in t lo hi = lo +. (unit_float t *. (hi -. lo))
let bool t = Int64.logand (int64 t) 1L = 1L

let normal t ~mean ~sigma =
  match t.spare with
  | Some z ->
      t.spare <- None;
      mean +. (sigma *. z)
  | None ->
      let rec pair () =
        let u = unit_float t in
        if u <= 1e-300 then pair () else (u, unit_float t)
      in
      let u1, u2 = pair () in
      let r = sqrt (-2.0 *. log u1) in
      let theta = 2.0 *. Float.pi *. u2 in
      t.spare <- Some (r *. sin theta);
      mean +. (sigma *. (r *. cos theta))

let lognormal t ~mu ~sigma = exp (normal t ~mean:mu ~sigma)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
