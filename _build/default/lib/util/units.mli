(** Unit conventions and formatting.

    The whole library uses one consistent set of base units:
    - time: picoseconds (ps)
    - capacitance: femtofarads (fF)
    - resistance: kilo-ohms (kOhm)  — so [r *. c] is directly in ps
    - length: microns (um)
    - area: square microns (um^2)
    - frequency: megahertz (MHz)

    These helpers convert and pretty-print; they exist so magnitude mistakes
    show up as type-in-the-name errors at review time. *)

val ps_of_ns : float -> float
val ns_of_ps : float -> float
val mhz_of_period_ps : float -> float
(** [mhz_of_period_ps 1000.] = 1000 MHz. *)

val period_ps_of_mhz : float -> float
val ghz_of_period_ps : float -> float
val um_of_mm : float -> float
val mm_of_um : float -> float
val ff_of_pf : float -> float
val kohm_of_ohm : float -> float

val pp_time_ps : float -> string
(** Chooses ps/ns for readability, e.g. ["842 ps"], ["4.23 ns"]. *)

val pp_freq_mhz : float -> string
(** Chooses MHz/GHz, e.g. ["250 MHz"], ["1.00 GHz"]. *)

val pp_length_um : float -> string
(** Chooses um/mm. *)
