type quality = Asic_automated | Custom_tuned

type t = {
  levels : int;
  sinks : int;
  die_side_um : float;
  wirelength_um : float;
  latency_ps : float;
  skew_ps : float;
  quality : quality;
}

let mismatch_fraction = function
  | Asic_automated -> 0.18
  | Custom_tuned -> 0.025

let levels_for sinks =
  (* each H level serves 4x the sinks *)
  let rec go served levels = if served >= sinks then levels else go (served * 4) (levels + 1) in
  go 1 0

let build ~tech ~die_side_um ~sinks quality =
  assert (sinks >= 1 && die_side_um > 0.);
  let levels = max 1 (levels_for sinks) in
  let wire = Gap_interconnect.Wire.of_tech tech in
  let drv = Gap_interconnect.Repeater.default_driver tech in
  let buffer_stage_ps =
    (* one clock buffer per level, ~2 FO4 each *)
    2. *. Gap_tech.Tech.fo4_ps tech
  in
  let wirelength = ref 0. and latency = ref 0. in
  for level = 0 to levels - 1 do
    (* the H at level i spans a square of side side/2^i; root-to-quadrant
       wire is ~3/4 of that side *)
    let seg = 0.75 *. die_side_um /. (2. ** float_of_int level) in
    wirelength := !wirelength +. seg;
    latency :=
      !latency
      +. Gap_interconnect.Repeater.optimal_delay_ps drv wire ~length_um:seg
      +. buffer_stage_ps
  done;
  {
    levels;
    sinks;
    die_side_um;
    wirelength_um = !wirelength;
    latency_ps = !latency;
    skew_ps = mismatch_fraction quality *. !latency;
    quality;
  }

let skew_fraction_of_period t ~period_ps = t.skew_ps /. period_ps

let speed_gain_from_custom_skew ~tech ~die_side_um ~sinks ~period_ps =
  let asic = build ~tech ~die_side_um ~sinks Asic_automated in
  let custom = build ~tech ~die_side_um ~sinks Custom_tuned in
  (* the logic gets the cycle minus skew; same logic, smaller skew -> shorter
     achievable period *)
  let logic_time = period_ps -. asic.skew_ps in
  period_ps /. (logic_time +. custom.skew_ps)
