(** H-tree clock distribution and skew estimation.

    The tree is a recursive H over a square die: each level splits the
    serviced square in four, with buffered, optimally-repeated wire segments.
    Skew is modeled as a calibrated fraction of insertion latency — the
    calibration anchors are the paper's own numbers: a tuned custom tree
    achieves ~5% of cycle (Alpha 21264: 75 ps global skew at 600 MHz), an
    automatically synthesized ASIC tree ~10% or more (Sec. 4.1). *)

type quality =
  | Asic_automated  (** un-tuned CTS: mismatch ~18% of latency *)
  | Custom_tuned  (** hand-tuned grid/deskew: mismatch ~2.5% of latency *)

type t = {
  levels : int;
  sinks : int;
  die_side_um : float;
  wirelength_um : float;  (** root-to-leaf path length *)
  latency_ps : float;  (** insertion delay *)
  skew_ps : float;
  quality : quality;
}

val build :
  tech:Gap_tech.Tech.t -> die_side_um:float -> sinks:int -> quality -> t

val skew_fraction_of_period : t -> period_ps:float -> float

val speed_gain_from_custom_skew :
  tech:Gap_tech.Tech.t -> die_side_um:float -> sinks:int -> period_ps:float -> float
(** How much faster the same logic could clock if the ASIC tree's skew were
    replaced by a custom-tuned tree's: [(period - skew_custom) vs
    (period - skew_asic)] headroom ratio. *)
