lib/clocktree/htree.ml: Gap_interconnect Gap_tech
