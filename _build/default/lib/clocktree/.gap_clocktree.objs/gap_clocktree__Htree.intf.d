lib/clocktree/htree.mli: Gap_tech
