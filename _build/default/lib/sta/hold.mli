(** Hold (min-delay) analysis.

    Sec. 4.1: "Registers and latches in ASICs have additional overheads as
    they have to be more tolerant to clock skew". Tolerance means hold
    margin: after a clock edge, every flop's D input must stay stable for
    [hold + skew]; the earliest the fastest register-to-register path can
    change it is [clk->q(min) + shortest combinational delay]. This pass
    computes minimum arrivals (intrinsic cell delays, no load — the fast
    corner of the linear model) and reports the violations that force ASIC
    flops to carry padding. *)

type violation = {
  flop : int;  (** capturing flop instance *)
  min_arrival_ps : float;
  required_ps : float;  (** hold + skew *)
  slack_ps : float;  (** negative = violation *)
}

type t = {
  min_arrival : float array;  (** earliest-change time per net *)
  violations : violation list;  (** negative-slack endpoints, worst first *)
  worst_slack_ps : float;
  checked_endpoints : int;
}

val analyze :
  ?skew_ps:float -> ?input_min_arrival_ps:float -> Gap_netlist.Netlist.t -> t
(** Min-delay analysis against the given skew budget (default 0). Primary
    inputs are assumed hold-safe by the environment (min arrival infinity)
    unless [input_min_arrival_ps] gives their earliest change. *)

val violation_count : t -> int

val padding_needed_ps : t -> float
(** Delay that would have to be padded into the worst short path to fix all
    violations ([0.] when clean) — the "additional overhead" the paper
    assigns to skew-tolerant ASIC registers. *)
