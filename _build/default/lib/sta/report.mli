(** Human-readable timing reports. *)

val summary : Sta.t -> lib:Gap_liberty.Library.t -> string
(** One-line period / frequency / FO4-depth summary. *)

val path_table : Sta.t -> string
(** The critical path as an ASCII table (point, incr, arrival). *)

val print : Sta.t -> lib:Gap_liberty.Library.t -> unit
