lib/sta/hold.mli: Gap_netlist
