lib/sta/hold.ml: Array Float Gap_liberty Gap_netlist List
