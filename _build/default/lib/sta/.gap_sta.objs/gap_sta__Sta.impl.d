lib/sta/sta.ml: Array Float Gap_liberty Gap_netlist Gap_tech Gap_util List Printf
