lib/sta/report.ml: Gap_util List Printf Sta
