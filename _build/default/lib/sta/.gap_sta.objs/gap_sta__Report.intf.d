lib/sta/report.mli: Gap_liberty Sta
