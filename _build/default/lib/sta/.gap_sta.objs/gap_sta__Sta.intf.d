lib/sta/sta.mli: Gap_liberty Gap_netlist
