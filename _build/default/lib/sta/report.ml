let summary (t : Sta.t) ~lib =
  Printf.sprintf "%s: min period %s, %s, %.1f FO4, endpoint %s (slack %s)"
    t.netlist_name
    (Gap_util.Units.pp_time_ps t.min_period_ps)
    (Gap_util.Units.pp_freq_mhz (Sta.frequency_mhz t))
    (Sta.fo4_depth t ~lib)
    t.critical.endpoint
    (Gap_util.Units.pp_time_ps t.critical.slack_ps)

let path_table (t : Sta.t) =
  let rows =
    List.map
      (fun (s : Sta.step) ->
        [
          s.what;
          Gap_util.Table.fmt_float ~decimals:1 s.incr_ps;
          Gap_util.Table.fmt_float ~decimals:1 s.arrival_ps;
        ])
      t.critical.steps
  in
  Gap_util.Table.render ~header:[ "point"; "incr (ps)"; "arrival (ps)" ] rows

let print t ~lib =
  print_endline (summary t ~lib);
  print_string (path_table t)
