(** Netlist power estimation from simulated switching activity.

    Activity is measured by functional simulation over random input streams:
    for static cells, the per-cycle toggle probability of their output net;
    for domino cells, the per-cycle probability of evaluating high (every
    such cycle discharges and precharges the output). Dynamic power is then
    [sum over nets of (rate x energy) x frequency], plus area-proportional
    leakage. *)

type report = {
  dynamic_mw : float;
  leakage_mw : float;
  total_mw : float;
  mean_activity : float;  (** average static toggle rate over driven nets *)
  vectors : int;
}

val activities : ?vectors:int -> ?seed:int64 -> Netlist.t -> float array
(** Per-net transitions per cycle, from [vectors] random cycles (default
    500). Deterministic by [seed]. Sequential netlists are driven cycle by
    cycle through their flops. *)

val estimate :
  ?vectors:int -> ?seed:int64 -> Netlist.t -> freq_mhz:float -> report

val pp_report : Format.formatter -> report -> unit
