(** Functional simulation of netlists.

    Combinational evaluation follows the topological order; sequential
    stepping implements a single-clock edge-triggered semantics (all flops
    update simultaneously from their D pins). Used by the tests to prove that
    synthesis transforms (mapping, sizing, buffering, domino conversion,
    pipelining) preserve behaviour. *)

type state
(** Flop values. *)

val initial : Netlist.t -> state
(** All flops at [false]. *)

val flop_value : state -> int -> bool
(** Value of a flop instance. *)

val eval : Netlist.t -> state -> bool array -> bool array
(** [eval t st ins] computes primary outputs from primary inputs [ins]
    (indexed like the netlist's input ports) and the current flop state. *)

val step : Netlist.t -> state -> bool array -> bool array * state
(** One clock cycle: returns the outputs seen during the cycle and the state
    after the active edge. *)

val run : Netlist.t -> bool array list -> bool array list
(** Multi-cycle simulation from the initial state. *)

val net_values : Netlist.t -> state -> bool array -> bool array
(** All net values for one combinational evaluation (exposed for tests and
    for the domino converter's monotonicity checks). *)

val advance : Netlist.t -> state -> bool array -> state
(** The flop state after one active edge with the given inputs (the state
    half of {!step}); used by activity-based power estimation. *)
