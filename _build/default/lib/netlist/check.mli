(** Structural design-rule checks on netlists. *)

type issue =
  | Undriven_net of int
  | Dangling_net of int  (** no sinks: usually benign, reported anyway *)
  | Combinational_cycle
  | Output_undriven of int  (** primary output port fed by an undriven net *)

val check : Netlist.t -> issue list
val is_clean : Netlist.t -> bool
(** No issues other than [Dangling_net]. *)

val pp_issue : Format.formatter -> issue -> unit
