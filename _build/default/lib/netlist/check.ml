type issue =
  | Undriven_net of int
  | Dangling_net of int
  | Combinational_cycle
  | Output_undriven of int

let check t =
  let issues = ref [] in
  for n = Netlist.num_nets t - 1 downto 0 do
    (match Netlist.driver_of t n with
    | Netlist.Undriven -> issues := Undriven_net n :: !issues
    | Netlist.From_input _ | Netlist.From_cell _ | Netlist.From_const _ -> ());
    if Netlist.sinks_of t n = [] then issues := Dangling_net n :: !issues
  done;
  for port = Netlist.num_outputs t - 1 downto 0 do
    match Netlist.driver_of t (Netlist.output_net t port) with
    | Netlist.Undriven -> issues := Output_undriven port :: !issues
    | Netlist.From_input _ | Netlist.From_cell _ | Netlist.From_const _ -> ()
  done;
  (match Netlist.topo_instances t with
  | (_ : int array) -> ()
  | exception Failure _ -> issues := Combinational_cycle :: !issues);
  !issues

let is_clean t =
  List.for_all (function Dangling_net _ -> true | _ -> false) (check t)

let pp_issue ppf = function
  | Undriven_net n -> Format.fprintf ppf "undriven net %d" n
  | Dangling_net n -> Format.fprintf ppf "dangling net %d" n
  | Combinational_cycle -> Format.fprintf ppf "combinational cycle"
  | Output_undriven p -> Format.fprintf ppf "primary output %d undriven" p
