lib/netlist/verilog.ml: Array Buffer Bytes Char Gap_liberty Hashtbl List Netlist Printf String
