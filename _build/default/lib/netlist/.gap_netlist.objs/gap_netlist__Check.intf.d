lib/netlist/check.mli: Format Netlist
