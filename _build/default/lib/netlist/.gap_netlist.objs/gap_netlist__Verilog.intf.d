lib/netlist/verilog.mli: Gap_liberty Netlist
