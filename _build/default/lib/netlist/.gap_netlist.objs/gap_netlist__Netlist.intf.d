lib/netlist/netlist.mli: Format Gap_liberty
