lib/netlist/netlist.ml: Array Format Gap_liberty Gap_util List Printf
