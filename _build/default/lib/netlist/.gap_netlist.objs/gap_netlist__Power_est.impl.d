lib/netlist/power_est.ml: Array Format Gap_liberty Gap_tech Gap_util Netlist Sim
