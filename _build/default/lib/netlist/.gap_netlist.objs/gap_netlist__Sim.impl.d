lib/netlist/sim.ml: Array Gap_liberty Gap_logic List Netlist
