lib/netlist/power_est.mli: Format Netlist
