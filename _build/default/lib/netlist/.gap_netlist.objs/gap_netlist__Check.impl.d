lib/netlist/check.ml: Format List Netlist
