module Cell = Gap_liberty.Cell

type report = {
  dynamic_mw : float;
  leakage_mw : float;
  total_mw : float;
  mean_activity : float;
  vectors : int;
}

(* (toggle count, high count) per net over the stream *)
let counts ~vectors ~seed nl =
  let rng = Gap_util.Rng.create ~seed () in
  let n_in = Netlist.num_inputs nl in
  let n_nets = Netlist.num_nets nl in
  let toggles = Array.make (max 1 n_nets) 0 in
  let highs = Array.make (max 1 n_nets) 0 in
  let state = ref (Sim.initial nl) in
  let prev = ref None in
  for _ = 1 to vectors do
    let ins = Array.init n_in (fun _ -> Gap_util.Rng.bool rng) in
    let values = Sim.net_values nl !state ins in
    state := Sim.advance nl !state ins;
    (match !prev with
    | Some old ->
        Array.iteri
          (fun net v ->
            if v <> old.(net) then toggles.(net) <- toggles.(net) + 1)
          values
    | None -> ());
    Array.iteri (fun net v -> if v then highs.(net) <- highs.(net) + 1) values;
    prev := Some values
  done;
  (toggles, highs)

let activities ?(vectors = 500) ?(seed = 31L) nl =
  let toggles, _ = counts ~vectors ~seed nl in
  Array.map (fun t -> float_of_int t /. float_of_int (max 1 (vectors - 1))) toggles

let estimate ?(vectors = 500) ?(seed = 31L) nl ~freq_mhz =
  let toggles, highs = counts ~vectors ~seed nl in
  let cycles = float_of_int (max 1 (vectors - 1)) in
  let vdd = (Gap_liberty.Library.tech (Netlist.lib nl)).Gap_tech.Tech.vdd_v in
  let dynamic_fj_per_cycle = ref 0. in
  let activity_sum = ref 0. and driven = ref 0 in
  for inst = 0 to Netlist.num_instances nl - 1 do
    let cell = Netlist.cell_of nl inst in
    let onet = Netlist.out_net nl inst in
    let load = Netlist.net_load_ff nl onet in
    let energy =
      match cell.Cell.family with
      | Cell.Domino ->
          (* evaluate-high discharges; precharge restores: CV^2 per such cycle *)
          let p_one = float_of_int highs.(onet) /. float_of_int vectors in
          p_one *. Gap_liberty.Power.domino_cycle_energy_fj cell ~vdd_v:vdd ~load_ff:load
      | Cell.Static_cmos ->
          let rate = float_of_int toggles.(onet) /. cycles in
          activity_sum := !activity_sum +. rate;
          incr driven;
          rate *. Gap_liberty.Power.switching_energy_fj cell ~vdd_v:vdd ~load_ff:load
    in
    dynamic_fj_per_cycle := !dynamic_fj_per_cycle +. energy
  done;
  (* fJ per cycle x cycles/us = uW x 1e-3 = mW; fJ x MHz = nW *)
  let dynamic_mw = !dynamic_fj_per_cycle *. freq_mhz *. 1e-6 in
  let leakage_nw = ref 0. in
  for inst = 0 to Netlist.num_instances nl - 1 do
    leakage_nw := !leakage_nw +. Gap_liberty.Power.leakage_nw (Netlist.cell_of nl inst)
  done;
  let leakage_mw = !leakage_nw *. 1e-6 in
  {
    dynamic_mw;
    leakage_mw;
    total_mw = dynamic_mw +. leakage_mw;
    mean_activity = (if !driven = 0 then 0. else !activity_sum /. float_of_int !driven);
    vectors;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "dynamic %.3f mW + leakage %.4f mW = %.3f mW (mean activity %.3f, %d vectors)"
    r.dynamic_mw r.leakage_mw r.total_mw r.mean_activity r.vectors
