type state = bool array (* per instance id; meaningful for flops only *)

let initial t = Array.make (max 1 (Netlist.num_instances t)) false
let flop_value st i = st.(i)

let net_values t st ins =
  assert (Array.length ins = Netlist.num_inputs t);
  let values = Array.make (max 1 (Netlist.num_nets t)) false in
  (* Sources first: primary inputs, constants, flop outputs. *)
  for n = 0 to Netlist.num_nets t - 1 do
    match Netlist.driver_of t n with
    | Netlist.From_input port -> values.(n) <- ins.(port)
    | Netlist.From_const b -> values.(n) <- b
    | Netlist.From_cell i when Netlist.is_flop t i -> values.(n) <- st.(i)
    | Netlist.From_cell _ | Netlist.Undriven -> ()
  done;
  let order = Netlist.topo_instances t in
  Array.iter
    (fun i ->
      if not (Netlist.is_flop t i) then begin
        let cell = Netlist.cell_of t i in
        let fanins = Netlist.fanins_of t i in
        let minterm = ref 0 in
        Array.iteri (fun pin net -> if values.(net) then minterm := !minterm lor (1 lsl pin)) fanins;
        values.(Netlist.out_net t i) <-
          Gap_logic.Truthtable.eval cell.Gap_liberty.Cell.func !minterm
      end)
    order;
  values

let eval t st ins =
  let values = net_values t st ins in
  Array.init (Netlist.num_outputs t) (fun port -> values.(Netlist.output_net t port))

let step t st ins =
  let values = net_values t st ins in
  let outs = Array.init (Netlist.num_outputs t) (fun port -> values.(Netlist.output_net t port)) in
  let st' = Array.copy st in
  List.iter
    (fun i ->
      let d_net = (Netlist.fanins_of t i).(0) in
      st'.(i) <- values.(d_net))
    (Netlist.flops t);
  (outs, st')

let advance t st ins =
  let values = net_values t st ins in
  let st' = Array.copy st in
  List.iter
    (fun i ->
      let d_net = (Netlist.fanins_of t i).(0) in
      st'.(i) <- values.(d_net))
    (Netlist.flops t);
  st'

let run t input_seq =
  let rec loop st acc = function
    | [] -> List.rev acc
    | ins :: rest ->
        let outs, st' = step t st ins in
        loop st' (outs :: acc) rest
  in
  loop (initial t) [] input_seq
