type run = { nominal_mhz : float; fmax_mhz : float array; model : Model.t }

let simulate ?(seed = 2024L) ~model ~nominal_mhz ~dies () =
  assert (dies > 0);
  let rng = Gap_util.Rng.create ~seed () in
  let fmax_mhz =
    Array.init dies (fun _ -> nominal_mhz *. Model.sample_speed_factor model rng)
  in
  { nominal_mhz; fmax_mhz; model }

let percentile run p = Gap_util.Stats.percentile run.fmax_mhz p
let mean run = Gap_util.Stats.mean_of run.fmax_mhz

let spread run =
  (percentile run 99. -. percentile run 1.) /. percentile run 50.

let fraction_above run mhz =
  let n = Array.length run.fmax_mhz in
  let above = Array.fold_left (fun acc f -> if f >= mhz then acc + 1 else acc) 0 run.fmax_mhz in
  float_of_int above /. float_of_int n
