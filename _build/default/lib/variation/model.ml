type sigmas = { lot : float; wafer : float; die : float; intra : float }

let mature = { lot = 0.035; wafer = 0.025; die = 0.04; intra = 0.03 }
let new_process = { lot = 0.05; wafer = 0.035; die = 0.06; intra = 0.045 }

let total_sigma s = sqrt ((s.lot *. s.lot) +. (s.wafer *. s.wafer) +. (s.die *. s.die))

type t = { sigmas : sigmas; fab_mean : float }

let make ?(fab_mean = 1.0) sigmas = { sigmas; fab_mean }

let sample_speed_factor t rng =
  let s = t.sigmas in
  let g sigma = Gap_util.Rng.normal rng ~mean:0. ~sigma in
  let dtd = 1. +. g s.lot +. g s.wafer +. g s.die in
  let intra_penalty = Float.abs (g s.intra) in
  Float.max 0.05 (t.fab_mean *. dtd *. (1. -. intra_penalty))

let best_fab = 1.05
let typical_fab = 1.0
let slow_fab = 0.85
let voltage_temp_derate = 0.85
let worst_case_sigma_count = 3.0

let signoff_speed t =
  t.fab_mean *. (1. -. (worst_case_sigma_count *. total_sigma t.sigmas)) *. voltage_temp_derate
