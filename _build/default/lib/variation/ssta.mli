(** Statistical timing: intra-die variation at netlist granularity.

    Sec. 8.1.1 lists intra-die variation among the process components; the
    chip-level model ({!Model}) treats it as a lumped penalty. This module
    derives that penalty from the netlist itself: each Monte Carlo sample
    draws an independent delay factor per cell instance, re-runs STA, and
    the resulting period distribution shows the two classic effects —
    the mean period exceeds the nominal (a maximum over random paths) and
    the relative spread shrinks with logic depth (averaging along paths). *)

type run = {
  nominal_ps : float;  (** STA period with all factors at 1 *)
  periods_ps : float array;
  sigma_cell : float;
}

val simulate :
  ?seed:int64 ->
  ?samples:int ->
  ?config:Gap_sta.Sta.config ->
  sigma_cell:float ->
  Gap_netlist.Netlist.t ->
  run
(** [samples] defaults to 200. Each sample scales every combinational
    instance's delay by an independent [N(1, sigma_cell)] factor (clamped to
    [>= 0.5]) through per-net extra wire delay, leaving the netlist unchanged
    afterwards. *)

val mean_period_ps : run -> float
val sigma_period_ps : run -> float

val mean_shift : run -> float
(** [(mean - nominal) / nominal]: the systematic slowdown intra-die
    variation inflicts on the worst path (always >= ~0). *)

val relative_sigma : run -> float
(** [sigma / mean]: the chip-level sigma this netlist's depth implies —
    feeds back into {!Model.sigmas}' [intra] component. *)
