(** Monte Carlo fmax sampling over a variation model. *)

type run = {
  nominal_mhz : float;
  fmax_mhz : float array;  (** one entry per die, unsorted *)
  model : Model.t;
}

val simulate :
  ?seed:int64 -> model:Model.t -> nominal_mhz:float -> dies:int -> unit -> run

val percentile : run -> float -> float
val mean : run -> float
val spread : run -> float
(** (p99 - p1) / p50: the visible speed spread of shipped parts. *)

val fraction_above : run -> float -> float
(** Yield at a frequency: fraction of dies at or above [mhz]. *)
