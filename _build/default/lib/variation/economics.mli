(** Speed-binning economics.

    Sec. 8.2: "Fabrication plants won't offer ASIC customers the top chip
    speed off the production line, as they cannot guarantee a sufficiently
    high yield for this to be profitable." This module prices that statement:
    given a Monte Carlo fmax population, die cost, and a price curve over
    frequency, compare the revenue of (a) rating every die at a guaranteed
    worst-case speed, (b) binning tested dies into graded speed/price bins,
    and (c) trying to sell only a top-speed rating. *)

type pricing = {
  base_price : float;  (** price of a part at the nominal frequency *)
  price_slope : float;
      (** relative price increase per relative speed increase, e.g. 2.0:
          a part 10% faster sells for 20% more *)
  die_cost : float;  (** manufacturing cost per die, sold or not *)
}

val default_pricing : pricing
(** base 10.0, slope 2.0, die cost 3.0 — the shape, not a market survey. *)

val price_at : pricing -> nominal_mhz:float -> mhz:float -> float
(** Price of a part rated at [mhz], linear in relative speed, floored at
    20% of base. *)

type strategy_result = {
  strategy : string;
  revenue_per_die : float;  (** expected revenue net of die cost *)
  sold_fraction : float;
  rating_mhz : float;  (** the (lowest) speed rating offered *)
}

val single_rating :
  pricing -> Montecarlo.run -> rating_mhz:float -> strategy_result
(** Sell every die meeting [rating_mhz] at that one rating; dies below are
    scrap. *)

val binned :
  pricing -> Montecarlo.run -> edges_mhz:float array -> strategy_result
(** Speed-test each die and sell it in the highest bin it meets; dies below
    the lowest edge are scrap. [rating_mhz] reports the lowest edge. *)

val die_yield : area_mm2:float -> defects_per_cm2:float -> float
(** Negative-binomial (clustered) defect yield,
    [(1 + A D / alpha)^-alpha] with alpha = 2: the area side of a speed
    technique also costs working dies — why the dual-rail domino's ~2x area
    is not free even before power. *)

val best_single_rating :
  pricing -> Montecarlo.run -> candidates:float array -> strategy_result
(** The revenue-maximizing single rating among [candidates] — this lands far
    below the top of the distribution, which is the paper's point. *)
