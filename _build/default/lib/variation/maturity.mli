(** Process maturity effects within one technology generation (Sec. 8.1.1).

    A process improves after introduction: optical shrinks, transistor
    tuning, and library re-characterization recover speed. Anchors from the
    paper: Intel's 0.25um "856" process shrank dimensions 5% for an 18% speed
    gain; initial 0.18um parts spanned 533-733 MHz; fabs release faster ASIC
    libraries as Leff shortens. *)

val shrink_speed_gain : linear_shrink:float -> float
(** Speed gain from an optical shrink, calibrated so a 5% shrink gives ~18%
    (gate delay ~ Leff, plus voltage/tuning headroom: exponent ~3.5 on the
    shrink factor). *)

val initial_spread : float
(** Relative spread (max/min - 1) of shipped speeds when a process is new:
    modeled from {!Model.new_process} at p5..p95 (+/-1.645 sigma), ~0.3-0.4. *)

val library_update_gain : months:float -> float
(** Speed recovered by re-characterized libraries as the process matures:
    saturating exponential approaching 20% (Sec. 8.2: "potentially as much
    as a 20% possible improvement in speed is lost" by not updating). *)
