lib/variation/montecarlo.ml: Array Gap_util Model
