lib/variation/ssta.ml: Array Float Gap_liberty Gap_netlist Gap_sta Gap_util List
