lib/variation/economics.ml: Array Float Montecarlo Printf
