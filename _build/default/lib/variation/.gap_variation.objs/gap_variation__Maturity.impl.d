lib/variation/maturity.ml: Model
