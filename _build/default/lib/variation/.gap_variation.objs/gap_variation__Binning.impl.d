lib/variation/binning.ml: Array Model Montecarlo
