lib/variation/maturity.mli:
