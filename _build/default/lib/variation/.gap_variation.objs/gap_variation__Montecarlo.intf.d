lib/variation/montecarlo.mli: Model
