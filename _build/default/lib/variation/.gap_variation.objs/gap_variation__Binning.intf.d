lib/variation/binning.mli: Montecarlo
