lib/variation/ssta.mli: Gap_netlist Gap_sta
