lib/variation/model.ml: Float Gap_util
