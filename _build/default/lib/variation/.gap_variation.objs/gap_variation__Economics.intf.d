lib/variation/economics.mli: Montecarlo
