lib/variation/model.mli: Gap_util
