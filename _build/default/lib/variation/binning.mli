(** Speed binning and the process-accessibility ratios of Sec. 8.

    A fab quotes ASIC customers a worst-case ("signoff") speed it can
    guarantee at high yield; actual dies are faster, and custom vendors
    speed-test and bin each part. These functions compute the paper's derived
    ratios from Monte Carlo runs. *)

type bins = {
  edges_mhz : float array;  (** ascending bin thresholds *)
  counts : int array;  (** dies whose fmax falls between successive edges;
                           [counts.(0)] is below [edges.(0)] (scrap) *)
}

val bin : Montecarlo.run -> edges_mhz:float array -> bins
val yield_at : Montecarlo.run -> mhz:float -> float

val typical_vs_signoff : Montecarlo.run -> float
(** Median die speed over the library's quoted worst-case speed on this fab
    (paper: 1.6-1.7x when the signoff is for the worse plants). *)

val speed_test_gain : Montecarlo.run -> float
(** Gain from testing each chip instead of trusting the signoff rating, at
    85% yield: p15 / signoff (paper Sec. 8.3: "30% to 40%"). *)

val top_bin_vs_typical : Montecarlo.run -> float
(** p99 / p50: what the fastest parts off the line give you
    (paper: 20-40% on a new process, without ASIC-usable yield). *)

val custom_best_vs_asic_worst :
  custom:Montecarlo.run -> asic:Montecarlo.run -> float
(** Fastest custom parts from the best fab versus the ASIC design's
    worst-case rating on its (slower) fab: the paper's overall ~1.9x process
    factor. The custom run should use [Model.best_fab], the ASIC run
    [Model.slow_fab]. *)

val fab_to_fab_span : float
(** [Model.best_fab / Model.slow_fab] - 1: the 20-25% fab-to-fab claim. *)
