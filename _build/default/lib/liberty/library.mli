(** A standard-cell library: a set of {!Cell.t} with lookup structure.

    Lookups the synthesis flow needs:
    - by NPN class of the function (technology mapping),
    - by base name and drive (sizing moves along the drive ladder),
    - the inverter / buffer / register families. *)

type t

val make : name:string -> tech:Gap_tech.Tech.t -> Cell.t list -> t
val name : t -> string
val tech : t -> Gap_tech.Tech.t
val cells : t -> Cell.t array
val size : t -> int

val find : t -> base:string -> drive:float -> Cell.t option
val drives_of : t -> string -> Cell.t list
(** All sizes of one base, sorted by increasing drive. *)

val bases : t -> string list

val cells_matching : t -> Gap_logic.Truthtable.t -> Cell.t list
(** Combinational cells whose function is NPN-equivalent to the argument
    (compared at the argument's variable count, [<= 4]). All drive strengths
    are returned. *)

val inverters : t -> Cell.t list
val buffers : t -> Cell.t list
val smallest_inverter : t -> Cell.t
(** Raises [Not_found] on a library without inverters (never the case for
    generated libraries). *)

val flops : t -> Cell.t list
val smallest_flop : t -> Cell.t

val next_drive_up : t -> Cell.t -> Cell.t option
(** Same base, next larger drive, if any; the TILOS sizing move. *)

val next_drive_down : t -> Cell.t -> Cell.t option

val pp_summary : Format.formatter -> t -> unit
