(** Standard-cell descriptions.

    A cell is a named, sized implementation of a small boolean function (or a
    register), with the linear delay parameters from {!Delay_model}. Cells of
    the same [base] (e.g. ["NAND2"]) at different drive strengths form the
    library's drive-strength ladder. *)

type family =
  | Static_cmos
  | Domino  (** precharged dynamic cell; only monotone functions *)

type seq_timing = {
  setup_ps : float;
  hold_ps : float;
  clk_to_q_ps : float;
}

type kind =
  | Comb  (** combinational *)
  | Flop of seq_timing
  | Latch of seq_timing  (** level-sensitive, usable for time borrowing *)

type t = {
  name : string;  (** e.g. "NAND2_X4" *)
  base : string;  (** e.g. "NAND2" *)
  kind : kind;
  family : family;
  func : Gap_logic.Truthtable.t;
      (** Data function. For registers, the identity on input 0. *)
  n_inputs : int;
  drive : float;
  input_cap_ff : float;  (** per data input *)
  intrinsic_ps : float;
  drive_res_kohm : float;
  area_um2 : float;
  logical_effort : float;
  parasitic : float;
}

val delay_ps : t -> load_ff:float -> float
(** Pin-to-output delay under the linear model. *)

val is_sequential : t -> bool
val is_inverter : t -> bool
val is_buffer : t -> bool
val seq_timing : t -> seq_timing option
val npn_key : t -> int64
(** NPN-canonical key of [func]; cells in the same class are interchangeable
    up to inverters. *)

val pp : Format.formatter -> t -> unit
