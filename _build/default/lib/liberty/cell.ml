type family = Static_cmos | Domino
type seq_timing = { setup_ps : float; hold_ps : float; clk_to_q_ps : float }
type kind = Comb | Flop of seq_timing | Latch of seq_timing

type t = {
  name : string;
  base : string;
  kind : kind;
  family : family;
  func : Gap_logic.Truthtable.t;
  n_inputs : int;
  drive : float;
  input_cap_ff : float;
  intrinsic_ps : float;
  drive_res_kohm : float;
  area_um2 : float;
  logical_effort : float;
  parasitic : float;
}

let delay_ps t ~load_ff = t.intrinsic_ps +. (t.drive_res_kohm *. load_ff)
let is_sequential t = match t.kind with Comb -> false | Flop _ | Latch _ -> true

let identity_tt = lazy (Gap_logic.Truthtable.var ~vars:1 0)

let is_inverter t =
  t.kind = Comb && t.n_inputs = 1
  && Gap_logic.Truthtable.equal t.func
       (Gap_logic.Truthtable.lognot (Lazy.force identity_tt))

let is_buffer t =
  t.kind = Comb && t.n_inputs = 1
  && Gap_logic.Truthtable.equal t.func (Lazy.force identity_tt)

let seq_timing t =
  match t.kind with Comb -> None | Flop s | Latch s -> Some s

let npn_key t = Gap_logic.Npn.canonical_key t.func

let pp ppf t =
  Format.fprintf ppf "%s (drive x%.1f, cin %.2f fF, d0 %.1f ps, R %.3f kOhm, %.1f um2)"
    t.name t.drive t.input_cap_ff t.intrinsic_ps t.drive_res_kohm t.area_um2
