type flop_style = Asic_flop | Custom_latch

type profile = {
  profile_name : string;
  drives : float list;
  dual_polarity : bool;
  complex_gates : bool;
  macro_cells : bool;
  flop_style : flop_style;
  family : Cell.family;
  speed_factor : float;
}

let rich =
  {
    profile_name = "rich";
    drives = [ 0.5; 1.; 2.; 3.; 4.; 6.; 8.; 12.; 16. ];
    dual_polarity = true;
    complex_gates = true;
    macro_cells = true;
    flop_style = Asic_flop;
    family = Static_cmos;
    speed_factor = 1.0;
  }

let poor =
  {
    profile_name = "poor";
    drives = [ 1.; 4. ];
    dual_polarity = false;
    complex_gates = false;
    macro_cells = false;
    flop_style = Asic_flop;
    family = Static_cmos;
    speed_factor = 1.0;
  }

let typical =
  {
    profile_name = "typical";
    drives = [ 1.; 2.; 4.; 8. ];
    dual_polarity = true;
    complex_gates = true;
    macro_cells = false;
    flop_style = Asic_flop;
    family = Static_cmos;
    speed_factor = 1.0;
  }

let domino =
  {
    profile_name = "domino";
    drives = [ 1.; 2.; 4.; 8. ];
    dual_polarity = true;
    complex_gates = false;
    macro_cells = true;
    flop_style = Custom_latch;
    family = Domino;
    speed_factor = 1.75;
  }

let custom =
  {
    profile_name = "custom";
    drives = [ 0.5; 1.; 1.5; 2.; 3.; 4.; 6.; 8.; 12.; 16.; 24. ];
    dual_polarity = true;
    complex_gates = true;
    macro_cells = true;
    flop_style = Custom_latch;
    family = Static_cmos;
    speed_factor = 1.0;
  }

let with_drives p drives = { p with drives }
let with_speed_factor p speed_factor = { p with speed_factor }
let with_name p profile_name = { p with profile_name }

(* Gate templates: (base, function, logical effort g, parasitic p). The g/p
   values are the textbook logical-effort numbers; compound (non-inverting)
   cells carry the parasitic of their internal inverter stage. *)

let tt vars f = Gap_logic.Truthtable.of_fun ~vars f
let bit m i = m land (1 lsl i) <> 0

let inverting_templates =
  [
    ("INV", tt 1 (fun m -> not (bit m 0)), 1.0, 1.0);
    ("NAND2", tt 2 (fun m -> not (bit m 0 && bit m 1)), 4. /. 3., 2.0);
    ("NAND3", tt 3 (fun m -> not (bit m 0 && bit m 1 && bit m 2)), 5. /. 3., 3.0);
    ("NAND4", tt 4 (fun m -> not (bit m 0 && bit m 1 && bit m 2 && bit m 3)), 2.0, 4.0);
    ("NOR2", tt 2 (fun m -> not (bit m 0 || bit m 1)), 5. /. 3., 2.0);
    ("NOR3", tt 3 (fun m -> not (bit m 0 || bit m 1 || bit m 2)), 7. /. 3., 3.0);
  ]

let noninverting_templates =
  [
    ("BUF", tt 1 (fun m -> bit m 0), 1.0, 2.0);
    ("AND2", tt 2 (fun m -> bit m 0 && bit m 1), 4. /. 3., 4.0);
    ("AND3", tt 3 (fun m -> bit m 0 && bit m 1 && bit m 2), 5. /. 3., 5.0);
    ("AND4", tt 4 (fun m -> bit m 0 && bit m 1 && bit m 2 && bit m 3), 2.0, 6.0);
    ("OR2", tt 2 (fun m -> bit m 0 || bit m 1), 5. /. 3., 4.0);
    ("OR3", tt 3 (fun m -> bit m 0 || bit m 1 || bit m 2), 7. /. 3., 5.0);
    ("OR4", tt 4 (fun m -> bit m 0 || bit m 1 || bit m 2 || bit m 3), 7. /. 3., 6.0);
    ("MUX2", tt 3 (fun m -> if bit m 2 then bit m 1 else bit m 0), 2.0, 5.0);
  ]

let complex_templates =
  [
    ("XOR2", tt 2 (fun m -> bit m 0 <> bit m 1), 4.0, 6.0);
    ("XNOR2", tt 2 (fun m -> bit m 0 = bit m 1), 4.0, 6.0);
    ("AOI21", tt 3 (fun m -> not ((bit m 0 && bit m 1) || bit m 2)), 5. /. 3., 3.0);
    ("OAI21", tt 3 (fun m -> not ((bit m 0 || bit m 1) && bit m 2)), 5. /. 3., 3.0);
    ("AOI22", tt 4 (fun m -> not ((bit m 0 && bit m 1) || (bit m 2 && bit m 3))), 2.0, 4.0);
    ("OAI22", tt 4 (fun m -> not ((bit m 0 || bit m 1) && (bit m 2 || bit m 3))), 2.0, 4.0);
    ("MUXI2", tt 3 (fun m -> not (if bit m 2 then bit m 1 else bit m 0)), 2.0, 4.0);
  ]

let macro_templates =
  [
    (* Datapath helpers: 3-input XOR (full-adder sum) and majority (full-adder
       carry). Complex static cells of this kind are what "use of predefined
       macro cells ... can significantly improve the resulting design"
       (Sec. 4.2) is about. *)
    ("XOR3", tt 3 (fun m -> bit m 0 <> bit m 1 <> bit m 2), 6.0, 8.0);
    ("MAJ3", tt 3 (fun m ->
        (bit m 0 && bit m 1) || (bit m 0 && bit m 2) || (bit m 1 && bit m 2)),
     2.0, 6.0);
  ]

let monotone f = Gap_logic.Truthtable.is_monotone f

let templates profile =
  let base =
    inverting_templates
    @ (if profile.dual_polarity then noninverting_templates else [])
    @ (if profile.complex_gates then complex_templates else [])
    @ if profile.macro_cells then macro_templates else []
  in
  match profile.family with
  | Cell.Static_cmos -> base
  | Cell.Domino ->
      (* Dynamic gates evaluate monotonically: only non-inverting, monotone
         functions are implementable (Sec. 7.1). Keep a static inverter so
         support logic can still be built. *)
      let dynamic = List.filter (fun (_, f, _, _) -> monotone f) base in
      let inv = List.hd inverting_templates in
      inv :: dynamic

let drive_name drive =
  if Float.is_integer drive then Printf.sprintf "X%.0f" drive
  else
    let whole = floor drive in
    Printf.sprintf "X%.0fP%.0f" whole ((drive -. whole) *. 10.)

let area_unit_um2 tech =
  (* ~12 um^2 per unit-drive 2-input gate at 0.25um, scaling with the square
     of the drawn feature size. *)
  let s = Gap_tech.Tech.(tech.drawn_um) /. 0.25 in
  12. *. s *. s

let make tech profile =
  let model = Delay_model.of_tech tech in
  let fo4 = Gap_tech.Tech.fo4_ps tech in
  let speed = profile.speed_factor in
  let a0 = area_unit_um2 tech in
  let comb_cell (base, func, g, p) drive =
    let n_inputs = Gap_logic.Truthtable.vars func in
    (* In a domino library only the monotone cells are dynamic; support cells
       (the static inverter) keep static-CMOS speed. *)
    let family =
      match profile.family with
      | Cell.Static_cmos -> Cell.Static_cmos
      | Cell.Domino -> if monotone func then Cell.Domino else Cell.Static_cmos
    in
    let cell_speed = match family with Cell.Domino -> speed | Cell.Static_cmos -> 1.0 in
    {
      Cell.name = Printf.sprintf "%s_%s" base (drive_name drive);
      base;
      kind = Comb;
      family;
      func;
      n_inputs;
      drive;
      input_cap_ff = Delay_model.input_cap_ff model ~g ~drive;
      intrinsic_ps = Delay_model.intrinsic_ps model ~p /. cell_speed;
      drive_res_kohm = Delay_model.drive_res_kohm_per_ff model ~drive /. cell_speed;
      area_um2 = a0 *. float_of_int (max 1 n_inputs) *. (0.5 +. (0.5 *. drive));
      logical_effort = g;
      parasitic = p;
    }
  in
  let seq =
    match profile.flop_style with
    | Asic_flop ->
        (* Guard-banded ASIC flop: total setup + clk->q = 2.5 FO4, the kind of
           overhead that makes "registers and latches in ASICs ... require a
           far larger absolute segment of the clock cycle" (Sec. 4.1). *)
        { Cell.setup_ps = 1.0 *. fo4; hold_ps = 0.1 *. fo4; clk_to_q_ps = 1.5 *. fo4 }
    | Custom_latch ->
        (* Tuned custom register: 2.0 FO4 total, matching the ~15% of a
           15-FO4 cycle the Alpha pays (Sec. 4.1). *)
        { Cell.setup_ps = 0.8 *. fo4; hold_ps = 0.05 *. fo4; clk_to_q_ps = 1.2 *. fo4 }
  in
  let flop_cell drive =
    let g = 1.5 in
    {
      Cell.name = Printf.sprintf "DFF_%s" (drive_name drive);
      base = "DFF";
      kind = Flop seq;
      family = profile.family;
      func = Gap_logic.Truthtable.var ~vars:1 0;
      n_inputs = 1;
      drive;
      input_cap_ff = Delay_model.input_cap_ff model ~g ~drive;
      intrinsic_ps = seq.clk_to_q_ps;
      drive_res_kohm = Delay_model.drive_res_kohm_per_ff model ~drive;
      area_um2 = area_unit_um2 tech *. 5. *. (0.5 +. (0.5 *. drive));
      logical_effort = g;
      parasitic = 2.0;
    }
  in
  let combs =
    List.concat_map
      (fun template -> List.map (comb_cell template) profile.drives)
      (templates profile)
  in
  let flop_drives =
    (* registers come in a reduced ladder *)
    List.filter (fun d -> d >= 1.) profile.drives
    |> List.filteri (fun i _ -> i mod 2 = 0)
  in
  let flops = List.map flop_cell (if flop_drives = [] then [ 1. ] else flop_drives) in
  let lib_name = Printf.sprintf "%s-%s" profile.profile_name Gap_tech.Tech.(tech.name) in
  Library.make ~name:lib_name ~tech (combs @ flops)
