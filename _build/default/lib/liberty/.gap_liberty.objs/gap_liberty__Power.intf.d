lib/liberty/power.mli: Cell
