lib/liberty/liberty_io.ml: Array Buffer Cell Char Gap_logic Gap_tech Library List Power Printf String
