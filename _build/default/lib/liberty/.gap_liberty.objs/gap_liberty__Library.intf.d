lib/liberty/library.mli: Cell Format Gap_logic Gap_tech
