lib/liberty/libgen.mli: Cell Gap_logic Gap_tech Library
