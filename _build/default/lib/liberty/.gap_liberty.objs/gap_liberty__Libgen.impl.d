lib/liberty/libgen.ml: Cell Delay_model Float Gap_logic Gap_tech Library List Printf
