lib/liberty/library.ml: Array Cell Float Format Gap_logic Gap_tech Hashtbl List Option
