lib/liberty/cell.ml: Format Gap_logic Lazy
