lib/liberty/delay_model.mli: Gap_tech
