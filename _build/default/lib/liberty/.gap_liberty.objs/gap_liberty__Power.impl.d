lib/liberty/power.ml: Cell Delay_model
