lib/liberty/liberty_io.mli: Buffer Cell Library
