lib/liberty/cell.mli: Format Gap_logic
