lib/liberty/delay_model.ml: Gap_tech
