type t = { tau_ps : float; c1_ff : float }

let unit_input_cap_ff = 2.0
let of_tech tech = { tau_ps = Gap_tech.Tech.tau_ps tech; c1_ff = unit_input_cap_ff }
let input_cap_ff t ~g ~drive = g *. drive *. t.c1_ff
let intrinsic_ps t ~p = p *. t.tau_ps

let drive_res_kohm_per_ff t ~drive =
  assert (drive > 0.);
  t.tau_ps /. (drive *. t.c1_ff)

let delay_ps t ~g ~p ~drive ~load_ff =
  ignore g;
  intrinsic_ps t ~p +. (drive_res_kohm_per_ff t ~drive *. load_ff)

let fo4_ps t =
  let load = 4. *. input_cap_ff t ~g:1. ~drive:1. in
  delay_ps t ~g:1. ~p:1. ~drive:1. ~load_ff:load
