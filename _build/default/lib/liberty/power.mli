(** Cell-level power models.

    The paper scopes power out of its analysis but leans on it qualitatively:
    dynamic logic "has higher power consumption" (Sec. 7.1) and transistors
    are "sized minimally to reduce power" off the critical path (Sec. 6.2).
    This model makes those statements measurable:

    - switching energy per output transition: [0.5 (C_load + C_self) Vdd^2]
      (fJ with C in fF), with [C_self] the cell's own output parasitic;
    - domino cells pay the full [C V^2] when they discharge (evaluate +
      precharge both move the node);
    - leakage proportional to area (tiny at 0.25um, included for
      completeness). *)

val self_cap_ff : Cell.t -> float
(** Output-node parasitic capacitance: half the parasitic-delay-equivalent
    input capacitance, scaled by drive. *)

val switching_energy_fj : Cell.t -> vdd_v:float -> load_ff:float -> float
(** Energy of one output transition (static CMOS semantics). *)

val domino_cycle_energy_fj : Cell.t -> vdd_v:float -> load_ff:float -> float
(** Energy of one discharge/precharge cycle of a dynamic gate: [C V^2]. *)

val leakage_nw : Cell.t -> float
(** Standby leakage, ~0.02 nW/um^2 at this node. *)
