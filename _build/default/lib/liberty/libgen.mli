(** Library generation from logical-effort templates.

    Commercial 0.25um libraries are proprietary, so we synthesize libraries
    whose *structure* matches the paper's discussion (Sec. 6): number of drive
    strengths, availability of both gate polarities, availability of complex
    gates and datapath macro cells, register overhead, and (for Sec. 7) a
    domino variant restricted to monotone functions with 1.5-2x faster
    gates. *)

type flop_style =
  | Asic_flop  (** guard-banded: setup 1.0 FO4, clk->q 1.5 FO4 *)
  | Custom_latch  (** tuned: setup 0.8 FO4, clk->q 1.2 FO4 *)

type profile = {
  profile_name : string;
  drives : float list;  (** available drive strengths, ascending *)
  dual_polarity : bool;  (** include non-inverting AND/OR/BUF/MUX cells *)
  complex_gates : bool;  (** include AOI/OAI/XOR cells *)
  macro_cells : bool;  (** include XOR3/MAJ3 datapath cells *)
  flop_style : flop_style;
  family : Cell.family;
  speed_factor : float;
      (** divide all delays by this; domino libraries use 1.5-2.0
          (paper Sec. 7: "50% to 100% faster"). 1.0 for static. *)
}

val rich : profile
(** Many drive strengths, dual polarity, complex gates and macros: the
    "good standard cell library" of Sec. 6.2. *)

val poor : profile
(** Two drive strengths, single (inverting) polarity, no complex gates: the
    library the paper says "may be 25% slower" (Sec. 6.1, citing Scott &
    Keutzer). *)

val typical : profile
(** Middle ground: four drives, dual polarity, no macros. *)

val domino : profile
(** Monotone-only dynamic cells at 1.75x speed, plus static inverters for
    completeness of mapping support logic. *)

val custom : profile
(** Rich cell set with custom-latch registers; static CMOS (dynamic logic is
    modeled by {!domino} / [Gap_domino]). *)

val with_drives : profile -> float list -> profile
val with_speed_factor : profile -> float -> profile
val with_name : profile -> string -> profile

val make : Gap_tech.Tech.t -> profile -> Library.t

val templates :
  profile -> (string * Gap_logic.Truthtable.t * float * float) list
(** The (base, function, g, p) gate templates the profile instantiates;
    exposed for tests. *)
