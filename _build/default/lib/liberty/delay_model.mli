(** The linear (logical-effort) cell delay model.

    Every combinational cell is characterized by three numbers derived from
    logical-effort theory (Sutherland/Sproull/Harris): logical effort [g],
    parasitic delay [p], and drive strength [s]. With [tau] the technology
    time unit (FO4 / 5) and [c1] the unit inverter input capacitance:

    - input capacitance  [cin  = g * s * c1]
    - intrinsic delay    [d0   = p * tau]
    - drive resistance   [r    = tau / (s * c1)]
    - total delay        [d    = d0 + r * c_load]

    This reproduces FO4 exactly: a unit inverter ([g=1, p=1]) driving four
    copies of itself sees [d = tau * (1 + 4) = FO4]. The paper's claims about
    drive-strength granularity (Sec. 6) are claims about the available values
    of [s], which this model exposes directly. *)

type t = {
  tau_ps : float;
  c1_ff : float;  (** unit inverter input capacitance *)
}

val of_tech : Gap_tech.Tech.t -> t
(** Standard calibration: [tau = FO4 / 5], [c1 = 2 fF]. *)

val unit_input_cap_ff : float

val input_cap_ff : t -> g:float -> drive:float -> float
val intrinsic_ps : t -> p:float -> float
val drive_res_kohm_per_ff : t -> drive:float -> float

val delay_ps :
  t -> g:float -> p:float -> drive:float -> load_ff:float -> float
(** [d0 + r * load]; [g] is unused by the delay itself (it only sets input
    cap) but kept for interface uniformity. *)

val fo4_ps : t -> float
(** Round-trip check value: the delay of a unit inverter driving 4 unit
    inverters under this model. *)
