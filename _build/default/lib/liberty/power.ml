let self_cap_ff (c : Cell.t) =
  0.5 *. c.Cell.parasitic *. c.Cell.drive *. Delay_model.unit_input_cap_ff

let switching_energy_fj c ~vdd_v ~load_ff =
  0.5 *. (load_ff +. self_cap_ff c) *. vdd_v *. vdd_v

let domino_cycle_energy_fj c ~vdd_v ~load_ff =
  (load_ff +. self_cap_ff c) *. vdd_v *. vdd_v

let leakage_nw (c : Cell.t) = 0.02 *. c.Cell.area_um2
