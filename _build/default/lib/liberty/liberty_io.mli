(** Liberty-format export of generated libraries.

    Emits the industry-standard `.lib` text so generated libraries can be
    inspected with standard tooling or diffed across profiles. The linear
    delay model maps directly onto Liberty's generic-CMOS attributes:
    intrinsic delay and drive resistance per output pin, capacitance per
    input pin, with the cell function rendered as a boolean expression on
    the conventional pin names (A, B, C, ... / Y). *)

val function_string : Cell.t -> string
(** Sum-of-products expression of the cell function over pin names, e.g.
    ["!(A B)"] for an inverting cell whose complement is simpler, or
    ["(A B) + (A C) + (B C)"] for MAJ3. *)

val write_cell : Buffer.t -> Cell.t -> unit
val write : Library.t -> string
val write_to_channel : out_channel -> Library.t -> unit
