(** The processors the paper compares (Sec. 2 and 4), normalized the way the
    paper normalizes them: cycle time expressed in FO4 delays at the chip's
    effective channel length.

    The [leff_um] values are the paper's: IBM PPC 0.15um (footnote 1),
    Xtensa/typical ASIC 0.18um (footnote 2); for the Alpha 21264A the
    effective FO4 delay is back-computed from its 750 MHz / 15 FO4 operating
    point, reflecting Compaq's aggressive 0.25um process. *)

type style = Custom | Asic

type t = {
  proc_name : string;
  style : style;
  fo4_depth : float;  (** logic depth per cycle, in FO4 *)
  leff_um : float;
  pipeline_stages : int;
  issue_width : int;
  reported_mhz : float;
  area_mm2 : float;
  notes : string;
}

val alpha_21264a : t
val ibm_ppc_1ghz : t
val tensilica_xtensa : t
val typical_asic : t
val network_asic : t
val all : t list

val fo4_ps : t -> float
val modeled_mhz : t -> float
(** [1 / (fo4_depth x fo4_ps)]: the FO4 model's frequency prediction. *)

val model_error : t -> float
(** [(modeled - reported) / reported]. *)

val gap_vs : fast:t -> slow:t -> float
(** Reported-frequency ratio. *)
