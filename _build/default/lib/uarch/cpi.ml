type workload = {
  branch_freq : float;
  mispredict_rate : float;
  load_freq : float;
  load_use_stall : float;
  cache_miss_rate : float;
  miss_penalty_cycles : float;
  ilp : float;
}

let spec_like =
  {
    branch_freq = 0.20;
    mispredict_rate = 0.08;
    load_freq = 0.25;
    load_use_stall = 0.35;
    cache_miss_rate = 0.02;
    miss_penalty_cycles = 20.;
    ilp = 2.5;
  }

let dsp_like =
  {
    branch_freq = 0.05;
    mispredict_rate = 0.02;
    load_freq = 0.30;
    load_use_stall = 0.10;
    cache_miss_rate = 0.005;
    miss_penalty_cycles = 20.;
    ilp = 6.;
  }

let control_dominated =
  {
    branch_freq = 0.35;
    mispredict_rate = 0.25;
    load_freq = 0.20;
    load_use_stall = 0.5;
    cache_miss_rate = 0.01;
    miss_penalty_cycles = 20.;
    ilp = 1.2;
  }

let flush_penalty ~pipeline_stages = 0.6 *. float_of_int (max 1 pipeline_stages)

let cpi ~pipeline_stages ~issue_width w =
  assert (issue_width >= 1);
  let effective_issue = Float.min (float_of_int issue_width) w.ilp in
  let base = 1. /. effective_issue in
  let branch = w.branch_freq *. w.mispredict_rate *. flush_penalty ~pipeline_stages in
  let load_use = w.load_freq *. w.load_use_stall in
  let memory = w.cache_miss_rate *. w.miss_penalty_cycles in
  base +. branch +. load_use +. memory

let ipc ~pipeline_stages ~issue_width w = 1. /. cpi ~pipeline_stages ~issue_width w
