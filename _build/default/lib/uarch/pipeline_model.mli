(** Frequency/performance versus pipeline depth, in FO4-normalized units.

    A design with [logic_fo4] of total work split over [stages] stages clocks
    at [logic_fo4 / stages + overhead_fo4] per cycle. Performance is
    frequency x IPC; deeper pipelines buy frequency but pay branch-flush CPI,
    so performance has an interior optimum — the reason the paper's x4
    pipelining factor is a {e maximum}, not a free lunch. *)

type config = {
  logic_fo4 : float;  (** total logic depth of one "instruction's" work *)
  overhead_fo4 : float;  (** per-stage register + skew overhead *)
  fo4_ps : float;
  issue_width : int;
  workload : Cpi.workload;
}

val asic_default : config
(** 44 FO4 of work (Xtensa-like), 3.5 FO4 overhead (ASIC registers + 10%
    skew), 90 ps FO4, single issue, SPEC-like code. *)

val custom_default : config
(** Same work, 2.4 FO4 overhead (custom latches + 5% skew), 75 ps FO4. *)

val period_ps : config -> stages:int -> float
val frequency_mhz : config -> stages:int -> float
val performance_mips : config -> stages:int -> float
(** Million instructions/s: frequency x IPC under the config's workload. *)

val speedup_vs_unpipelined : config -> stages:int -> float
(** Frequency ratio versus the 1-stage version of the same config. *)

val optimal_depth : ?max_stages:int -> config -> int * float
(** Performance-optimal stage count and its MIPS. *)

val sweep : ?max_stages:int -> config -> (int * float * float * float) list
(** Per depth: (stages, frequency MHz, IPC, MIPS). *)
