lib/uarch/pipeline_model.ml: Cpi Gap_util List
