lib/uarch/pipeline_model.mli: Cpi
