lib/uarch/cpi.mli:
