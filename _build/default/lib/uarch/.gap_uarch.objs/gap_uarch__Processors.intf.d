lib/uarch/processors.mli:
