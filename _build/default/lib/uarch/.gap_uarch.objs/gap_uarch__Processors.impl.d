lib/uarch/processors.ml: Gap_tech
