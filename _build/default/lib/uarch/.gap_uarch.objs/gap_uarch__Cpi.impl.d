lib/uarch/cpi.ml: Float
