(** Cycles-per-instruction model (Hennessy & Patterson style, the paper's
    [16]): pipelining only pays when work can be overlapped, and "branches in
    execution will diminish performance" (Sec. 4.1).

    CPI = issue-limited base
        + branch flush penalty (grows with pipeline depth)
        + load-use and memory stalls. *)

type workload = {
  branch_freq : float;  (** fraction of instructions that branch *)
  mispredict_rate : float;
  load_freq : float;
  load_use_stall : float;  (** cycles lost per dependent load *)
  cache_miss_rate : float;
  miss_penalty_cycles : float;
  ilp : float;  (** available instruction-level parallelism *)
}

val spec_like : workload
(** General-purpose code: 20% branches, 8% mispredicts with a decent
    predictor, ILP ~2.5. *)

val dsp_like : workload
(** Streaming kernels: few branches, abundant parallelism — the "large
    amounts of data processed in parallel" case of Sec. 4.2. *)

val control_dominated : workload
(** Bus-interface-style code: every cycle depends on new inputs
    (Sec. 4.1); branches frequent and poorly predictable. *)

val flush_penalty : pipeline_stages:int -> float
(** Cycles lost on a mispredicted branch: the front of the pipe refills
    (~60% of the stages). *)

val cpi : pipeline_stages:int -> issue_width:int -> workload -> float
val ipc : pipeline_stages:int -> issue_width:int -> workload -> float
