type config = {
  logic_fo4 : float;
  overhead_fo4 : float;
  fo4_ps : float;
  issue_width : int;
  workload : Cpi.workload;
}

let asic_default =
  {
    logic_fo4 = 44.;
    overhead_fo4 = 3.5;
    fo4_ps = 90.;
    issue_width = 1;
    workload = Cpi.spec_like;
  }

let custom_default =
  {
    logic_fo4 = 44.;
    overhead_fo4 = 2.4;
    fo4_ps = 75.;
    issue_width = 1;
    workload = Cpi.spec_like;
  }

let period_ps c ~stages =
  assert (stages >= 1);
  ((c.logic_fo4 /. float_of_int stages) +. c.overhead_fo4) *. c.fo4_ps

let frequency_mhz c ~stages = Gap_util.Units.mhz_of_period_ps (period_ps c ~stages)

let performance_mips c ~stages =
  frequency_mhz c ~stages
  *. Cpi.ipc ~pipeline_stages:stages ~issue_width:c.issue_width c.workload

let speedup_vs_unpipelined c ~stages = period_ps c ~stages:1 /. period_ps c ~stages

let sweep ?(max_stages = 20) c =
  List.init max_stages (fun i ->
      let stages = i + 1 in
      ( stages,
        frequency_mhz c ~stages,
        Cpi.ipc ~pipeline_stages:stages ~issue_width:c.issue_width c.workload,
        performance_mips c ~stages ))

let optimal_depth ?(max_stages = 20) c =
  List.fold_left
    (fun (bs, bp) (stages, _, _, mips) -> if mips > bp then (stages, mips) else (bs, bp))
    (1, performance_mips c ~stages:1)
    (sweep ~max_stages c)
