type style = Custom | Asic

type t = {
  proc_name : string;
  style : style;
  fo4_depth : float;
  leff_um : float;
  pipeline_stages : int;
  issue_width : int;
  reported_mhz : float;
  area_mm2 : float;
  notes : string;
}

let alpha_21264a =
  {
    proc_name = "Alpha 21264A";
    style = Custom;
    fo4_depth = 15.;
    leff_um = 0.178;
    pipeline_stages = 7;
    issue_width = 6;
    reported_mhz = 750.;
    area_mm2 = 225.;
    notes = "dynamic logic, out-of-order, 2.1 V, 90 W";
  }

let ibm_ppc_1ghz =
  {
    proc_name = "IBM 1.0 GHz PPC";
    style = Custom;
    fo4_depth = 13.;
    leff_um = 0.15;
    pipeline_stages = 4;
    issue_width = 1;
    reported_mhz = 1000.;
    area_mm2 = 9.8;
    notes = "single-issue integer core, dynamic logic, 1.8 V, 6.3 W";
  }

let tensilica_xtensa =
  {
    proc_name = "Tensilica Xtensa";
    style = Asic;
    fo4_depth = 44.;
    leff_um = 0.18;
    pipeline_stages = 5;
    issue_width = 1;
    reported_mhz = 250.;
    area_mm2 = 4.;
    notes = "configurable ASIC processor, static CMOS";
  }

let typical_asic =
  {
    proc_name = "typical ASIC";
    style = Asic;
    fo4_depth = 82.;
    leff_um = 0.18;
    pipeline_stages = 1;
    issue_width = 1;
    reported_mhz = 135.;
    area_mm2 = 25.;
    notes = "anecdotal 120-150 MHz midpoint, little pipelining";
  }

let network_asic =
  {
    proc_name = "high-speed network ASIC";
    style = Asic;
    fo4_depth = 55.;
    leff_um = 0.18;
    pipeline_stages = 2;
    issue_width = 1;
    reported_mhz = 200.;
    area_mm2 = 50.;
    notes = "the fast end of ASIC practice";
  }

let all = [ alpha_21264a; ibm_ppc_1ghz; tensilica_xtensa; network_asic; typical_asic ]

let fo4_ps t = Gap_tech.Fo4.of_leff_um t.leff_um
let modeled_mhz t = Gap_tech.Fo4.frequency_mhz ~depth:t.fo4_depth ~fo4_ps:(fo4_ps t)
let model_error t = (modeled_mhz t -. t.reported_mhz) /. t.reported_mhz
let gap_vs ~fast ~slow = fast.reported_mhz /. slow.reported_mhz
