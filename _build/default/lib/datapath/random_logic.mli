(** Random combinational benchmark circuits.

    Deterministic (seeded) random AIGs stand in for the proprietary benchmark
    suites the paper's cited library studies used; the library-richness and
    sizing experiments sweep over a family of these plus the structured
    datapaths. *)

val generate :
  ?seed:int64 -> inputs:int -> outputs:int -> gates:int -> unit -> Gap_logic.Aig.t
(** Builds a random DAG of AND/OR/XOR/NOT-combinations, biased toward
    recently-created nodes so depth grows (like real control logic, not a
    flat soup). Every output is a distinct node; inputs all feed something. *)
