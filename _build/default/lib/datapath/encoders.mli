(** Decoders, encoders and wide muxes: the control-side structures of a
    datapath (register-file address decode, bypass selects, ...). *)

val decoder_core : Gap_logic.Aig.t -> Word.t -> Word.t
(** [decoder_core g sel] is the [2^n]-bit one-hot decode of the [n]-bit
    select. *)

val decoder : width:int -> Gap_logic.Aig.t
(** Standalone: inputs [s*] ([width] bits), outputs [d0 .. d(2^width-1)]. *)

val priority_encoder_core :
  Gap_logic.Aig.t -> Word.t -> Word.t * Gap_logic.Aig.lit
(** [priority_encoder_core g req = (index, valid)]: the index of the
    highest-numbered asserted request line, and whether any was asserted.
    [req] length must be a power of two. *)

val priority_encoder : lines:int -> Gap_logic.Aig.t
(** Standalone: inputs [r*], outputs [i*] plus [valid]. *)

val mux_tree_core :
  Gap_logic.Aig.t -> Word.t -> Gap_logic.Aig.lit array -> Gap_logic.Aig.lit
(** [mux_tree_core g sel data] selects [data.(value of sel)];
    [Array.length data = 2^(length sel)]. *)

val onehot_check_core : Gap_logic.Aig.t -> Word.t -> Gap_logic.Aig.lit
(** True iff exactly one bit of the word is set. *)
