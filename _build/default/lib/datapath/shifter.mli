(** Barrel shifter: logarithmic mux stages, the paper's canonical example of
    a block where custom circuit techniques look locally impressive
    (Sec. 9). *)

val shift_left_core : Gap_logic.Aig.t -> Word.t -> Word.t -> Word.t
(** [shift_left_core g a sh] shifts [a] left by the unsigned value of the
    [sh] word, filling with zeros; bits shifted past the top are lost. *)

val shift_right_core : Gap_logic.Aig.t -> Word.t -> Word.t -> Word.t

val rotate_left_core : Gap_logic.Aig.t -> Word.t -> Word.t -> Word.t
(** Requires the width to be a power of two (the rotate amount wraps). *)

val barrel_shifter : width:int -> Gap_logic.Aig.t
(** Standalone left shifter: inputs [a*], [sh*] ([ceil log2 width] bits),
    outputs [y*]. *)

val shamt_bits : int -> int
