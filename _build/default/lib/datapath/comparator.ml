module Aig = Gap_logic.Aig

let eq_core g a b =
  let diffs = Word.logxor g a b in
  Aig.negate (Word.reduce_or g diffs)

let ult_core g a b =
  (* a < b  <=>  a - b borrows  <=>  not (carry out of a + ~b + 1) *)
  let nb = Word.lognot g b in
  let _, cout = Adders.ripple g a nb Aig.lit_true in
  Aig.negate cout

let comparator ~width =
  let g = Aig.create () in
  let a = Word.inputs g "a" width in
  let b = Word.inputs g "b" width in
  Aig.add_output g "eq" (eq_core g a b);
  Aig.add_output g "lt" (ult_core g a b);
  g
