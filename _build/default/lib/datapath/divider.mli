(** Restoring array divider: the deepest of the classic datapath blocks
    (quadratic depth — each quotient bit's subtract depends on the previous
    restore decision), which is why real machines iterate it over many
    cycles instead. Useful here as a worst-case combinational depth
    benchmark for the pipelining experiments. *)

val core : Gap_logic.Aig.t -> Word.t -> Word.t -> Word.t * Word.t
(** [core g dividend divisor = (quotient, remainder)], unsigned, equal
    widths. Division by zero yields all-ones quotient and the dividend as
    remainder (the conventional array-divider behaviour of our reference). *)

val array_divider : width:int -> Gap_logic.Aig.t
(** Standalone: inputs [a*] (dividend), [b*] (divisor); outputs [q*], [r*]. *)

val reference : width:int -> a:int -> b:int -> int * int
(** Software model matching [core], including the division-by-zero
    convention. *)
