module Aig = Gap_logic.Aig
module Rng = Gap_util.Rng

let generate ?(seed = 42L) ~inputs ~outputs ~gates () =
  assert (inputs >= 2 && outputs >= 1 && gates >= outputs);
  let rng = Rng.create ~seed () in
  let g = Aig.create () in
  let pool = Gap_util.Vec.create () in
  for i = 0 to inputs - 1 do
    ignore (Gap_util.Vec.push pool (Aig.add_input g (Printf.sprintf "x%d" i)))
  done;
  (* Pick operands with recency bias: a random one of the last [window]
     nodes half of the time, uniform otherwise. *)
  let pick () =
    let n = Gap_util.Vec.length pool in
    let idx =
      if Rng.bool rng then begin
        let window = max 4 (n / 4) in
        n - 1 - Rng.int rng (min window n)
      end
      else Rng.int rng n
    in
    let l = Gap_util.Vec.get pool idx in
    if Rng.int rng 4 = 0 then Aig.negate l else l
  in
  let made = ref 0 in
  while !made < gates do
    let a = pick () and b = pick () in
    let l =
      match Rng.int rng 3 with
      | 0 -> Aig.and_ g a b
      | 1 -> Aig.or_ g a b
      | _ -> Aig.xor_ g a b
    in
    (* structural hashing may return an existing node; only count fresh ones *)
    if Aig.is_and g (Aig.id_of_lit l) then begin
      ignore (Gap_util.Vec.push pool l);
      incr made
    end
    else incr made
  done;
  let n = Gap_util.Vec.length pool in
  for o = 0 to outputs - 1 do
    let idx = n - 1 - (o mod n) in
    Aig.add_output g (Printf.sprintf "y%d" o) (Gap_util.Vec.get pool idx)
  done;
  g
