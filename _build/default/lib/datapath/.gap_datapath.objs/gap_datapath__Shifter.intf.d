lib/datapath/shifter.mli: Gap_logic Word
