lib/datapath/word.mli: Gap_logic
