lib/datapath/adders.mli: Gap_logic Word
