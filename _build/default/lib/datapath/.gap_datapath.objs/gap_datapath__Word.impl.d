lib/datapath/word.ml: Array Gap_logic Printf
