lib/datapath/divider.ml: Adders Array Gap_logic Word
