lib/datapath/alu.ml: Adders Array Gap_logic Shifter Word
