lib/datapath/counting.ml: Array Gap_logic Word
