lib/datapath/fsm.mli: Gap_logic
