lib/datapath/alu.mli: Gap_logic
