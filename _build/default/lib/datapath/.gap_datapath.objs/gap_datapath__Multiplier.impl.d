lib/datapath/multiplier.ml: Adders Array Gap_logic Word
