lib/datapath/comparator.ml: Adders Gap_logic Word
