lib/datapath/random_logic.mli: Gap_logic
