lib/datapath/shifter.ml: Array Gap_logic Word
