lib/datapath/encoders.mli: Gap_logic Word
