lib/datapath/encoders.ml: Array Gap_logic Printf Shifter Word
