lib/datapath/adders.ml: Array Gap_logic List Word
