lib/datapath/comparator.mli: Gap_logic Word
