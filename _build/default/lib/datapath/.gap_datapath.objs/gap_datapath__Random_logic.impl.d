lib/datapath/random_logic.ml: Gap_logic Gap_util Printf
