lib/datapath/multiplier.mli: Gap_logic Word
