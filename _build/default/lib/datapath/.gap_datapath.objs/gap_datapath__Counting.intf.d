lib/datapath/counting.mli: Gap_logic Word
