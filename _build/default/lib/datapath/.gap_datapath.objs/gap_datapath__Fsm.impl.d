lib/datapath/fsm.ml: Array Gap_logic Printf Word
