lib/datapath/divider.mli: Gap_logic Word
