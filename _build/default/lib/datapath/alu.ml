module Aig = Gap_logic.Aig

type adder_style = [ `Ripple | `Cla | `Kogge_stone ]

let alu ?(adder = `Ripple) width =
  let g = Aig.create () in
  let a = Word.inputs g "a" width in
  let b = Word.inputs g "b" width in
  let sh = Word.inputs g "sh" (Shifter.shamt_bits width) in
  let op = Word.inputs g "op" 3 in
  let core : Adders.core =
    match adder with
    | `Ripple -> Adders.ripple
    | `Cla -> Adders.carry_lookahead ()
    | `Kogge_stone -> Adders.kogge_stone
  in
  (* ADD/SUB share the adder: b is conditionally inverted and cin set by the
     sub select (op = 1 or op = 5 needs a subtraction). *)
  let is_sub =
    (* op=1 (001) or op=5 (101): op0 & !op1 *)
    Aig.and_ g op.(0) (Aig.negate op.(1))
  in
  let b_eff = Array.map (fun l -> Aig.xor_ g l is_sub) b in
  let sum, cout = core g a b_eff is_sub in
  let lt = Aig.and_ g is_sub (Aig.negate cout) in
  let slt_word =
    Array.init width (fun i -> if i = 0 then lt else Aig.lit_false)
  in
  let and_w = Word.logand g a b in
  let or_w = Word.logor g a b in
  let xor_w = Word.logxor g a b in
  let shl = Shifter.shift_left_core g a sh in
  let shr = Shifter.shift_right_core g a sh in
  (* 8-way select on op (mux tree); op2 op1 op0 =
       000 add, 001 sub, 010 and, 011 or, 100 xor, 101 slt, 110 shl, 111 shr *)
  let sel0 = op.(0) and sel1 = op.(1) and sel2 = op.(2) in
  let and_or = Word.mux g ~sel:sel0 and_w or_w in
  let low = Word.mux g ~sel:sel1 sum and_or in
  let xor_slt = Word.mux g ~sel:sel0 xor_w slt_word in
  let shifts = Word.mux g ~sel:sel0 shl shr in
  let high = Word.mux g ~sel:sel1 xor_slt shifts in
  let y = Word.mux g ~sel:sel2 low high in
  Word.outputs g "y" y;
  g

let reference ~width ~op ~a ~b ~sh =
  let mask = (1 lsl width) - 1 in
  let a = a land mask and b = b land mask in
  let result =
    match op with
    | 0 -> a + b
    | 1 -> a - b
    | 2 -> a land b
    | 3 -> a lor b
    | 4 -> a lxor b
    | 5 -> if a < b then 1 else 0
    | 6 -> a lsl sh
    | 7 -> a lsr sh
    | _ -> invalid_arg "Alu.reference: op out of range"
  in
  result land mask
