module Aig = Gap_logic.Aig

(* Restoring long division, one row per quotient bit (MSB first): try to
   subtract the divisor from the current remainder head; keep the difference
   when it doesn't borrow, restore otherwise. *)
let core g dividend divisor =
  let width = Array.length dividend in
  assert (Array.length divisor = width);
  let quotient = Array.make width Aig.lit_false in
  (* remainder register, width+1 bits to hold the shifted-in head *)
  let rem = Array.make (width + 1) Aig.lit_false in
  let divisor_ext = Array.append divisor [| Aig.lit_false |] in
  for step = width - 1 downto 0 do
    (* shift left, bring in dividend bit [step] *)
    for k = width downto 1 do
      rem.(k) <- rem.(k - 1)
    done;
    rem.(0) <- dividend.(step);
    (* trial subtract: rem - divisor *)
    let ndiv = Array.map Aig.negate divisor_ext in
    let diff, carry = Adders.ripple g rem ndiv Aig.lit_true in
    (* carry out = no borrow = subtract succeeded *)
    quotient.(step) <- carry;
    for k = 0 to width do
      rem.(k) <- Aig.mux_ g ~sel:carry rem.(k) diff.(k)
    done
  done;
  (quotient, Array.sub rem 0 width)

let array_divider ~width =
  let g = Aig.create () in
  let a = Word.inputs g "a" width in
  let b = Word.inputs g "b" width in
  let q, r = core g a b in
  Word.outputs g "q" q;
  Word.outputs g "r" r;
  g

let reference ~width ~a ~b =
  let mask = (1 lsl width) - 1 in
  let a = a land mask and b = b land mask in
  if b = 0 then (mask, a) else (a / b, a mod b)
