(** Bit-counting and codes: popcount, parity, increment, Gray code. *)

val popcount_core : Gap_logic.Aig.t -> Word.t -> Word.t
(** Population count as a [ceil(log2(n+1))]-bit word, built from a full-adder
    reduction tree. *)

val popcount : width:int -> Gap_logic.Aig.t
(** Standalone: inputs [x*], outputs [c*]. *)

val parity_core : Gap_logic.Aig.t -> Word.t -> Gap_logic.Aig.lit
(** XOR reduction (balanced tree). *)

val incrementer_core : Gap_logic.Aig.t -> Word.t -> Word.t * Gap_logic.Aig.lit
(** [x + 1] and the carry out. *)

val gray_encode_core : Gap_logic.Aig.t -> Word.t -> Word.t
(** Binary to reflected Gray: [g = b xor (b >> 1)]. *)

val gray_decode_core : Gap_logic.Aig.t -> Word.t -> Word.t
(** Gray back to binary (prefix XOR from the top). *)

val result_bits : int -> int
(** Width of a popcount result for an [n]-bit input. *)
