(** A small single-cycle ALU: the Xtensa-like "typical ASIC datapath" used by
    the pipelining and FO4-depth experiments.

    Operations (3-bit [op] input, little-endian):
    {v
      0  ADD   a + b
      1  SUB   a - b
      2  AND   a & b
      3  OR    a | b
      4  XOR   a ^ b
      5  SLT   unsigned a < b (1-bit result, zero-extended)
      6  SHL   a << sh
      7  SHR   a >> sh
    v} *)

type adder_style = [ `Ripple | `Cla | `Kogge_stone ]

val alu : ?adder:adder_style -> int -> Gap_logic.Aig.t
(** Argument is the bit width. Inputs [a*], [b*], [sh*], [op0..op2];
    outputs [y*]. The adder style
    controls the ADD/SUB/SLT datapath; [`Ripple] is what naive synthesis
    gives, [`Kogge_stone] what a datapath library would. *)

val reference : width:int -> op:int -> a:int -> b:int -> sh:int -> int
(** Bit-accurate software model, for tests. *)
