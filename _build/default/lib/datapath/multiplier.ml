module Aig = Gap_logic.Aig

let full_adder g x y z =
  let s = Aig.xor_ g (Aig.xor_ g x y) z in
  let c = Aig.or_ g (Aig.and_ g x y) (Aig.and_ g z (Aig.xor_ g x y)) in
  (s, c)

(* Column-based carry-save reduction: partial-product bits are bucketed per
   weight, full adders compress each column to at most two rows, and a final
   carry-propagate adder finishes. Carries that would land beyond the product
   width are provably constant-0 (the product always fits) and are dropped. *)
let core g a b =
  let wa = Array.length a and wb = Array.length b in
  let out_w = wa + wb in
  let cols = Array.make out_w [] in
  for j = 0 to wb - 1 do
    for i = 0 to wa - 1 do
      cols.(i + j) <- Aig.and_ g a.(i) b.(j) :: cols.(i + j)
    done
  done;
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    for pos = 0 to out_w - 1 do
      match cols.(pos) with
      | x :: y :: z :: rest ->
          let s, c = full_adder g x y z in
          cols.(pos) <- s :: rest;
          if pos + 1 < out_w then cols.(pos + 1) <- c :: cols.(pos + 1);
          continue_ := true
      | _ :: _ | [] -> ()
    done
  done;
  let row n pos = match cols.(pos) with
    | x :: rest -> if n = 0 then x else (match rest with y :: _ -> y | [] -> Aig.lit_false)
    | [] -> Aig.lit_false
  in
  let r0 = Array.init out_w (row 0) in
  let r1 = Array.init out_w (row 1) in
  let sum, _ = Adders.ripple g r0 r1 Aig.lit_false in
  sum

let array_multiplier ~width =
  let g = Aig.create () in
  let a = Word.inputs g "a" width in
  let b = Word.inputs g "b" width in
  let p = core g a b in
  Word.outputs g "p" p;
  g
