module Aig = Gap_logic.Aig

let shamt_bits width =
  let rec go n bits = if n >= width then bits else go (n * 2) (bits + 1) in
  go 1 0

let stage g ~sel ~offset ~fill a =
  let width = Array.length a in
  Array.init width (fun i ->
      let shifted = if i - offset >= 0 then a.(i - offset) else fill in
      Aig.mux_ g ~sel a.(i) shifted)

let stage_right g ~sel ~offset ~fill a =
  let width = Array.length a in
  Array.init width (fun i ->
      let shifted = if i + offset < width then a.(i + offset) else fill in
      Aig.mux_ g ~sel a.(i) shifted)

let shift_left_core g a sh =
  let result = ref a in
  Array.iteri
    (fun k sel -> result := stage g ~sel ~offset:(1 lsl k) ~fill:Aig.lit_false !result)
    sh;
  !result

let shift_right_core g a sh =
  let result = ref a in
  Array.iteri
    (fun k sel ->
      result := stage_right g ~sel ~offset:(1 lsl k) ~fill:Aig.lit_false !result)
    sh;
  !result

let rotate_left_core g a sh =
  let width = Array.length a in
  assert (width land (width - 1) = 0);
  let result = ref a in
  Array.iteri
    (fun k sel ->
      let offset = 1 lsl k in
      let rotated cur =
        Array.init width (fun i -> cur.((i - offset + width) mod width))
      in
      let cur = !result in
      let rot = rotated cur in
      result := Array.init width (fun i -> Aig.mux_ g ~sel cur.(i) rot.(i)))
    sh;
  !result

let barrel_shifter ~width =
  let g = Aig.create () in
  let a = Word.inputs g "a" width in
  let sh = Word.inputs g "sh" (shamt_bits width) in
  let y = shift_left_core g a sh in
  Word.outputs g "y" y;
  g
