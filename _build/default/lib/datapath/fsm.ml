module Aig = Gap_logic.Aig

type spec = {
  fsm_name : string;
  n_states : int;
  n_inputs : int;
  n_outputs : int;
  reset_state : int;
  next : int -> int -> int;
  out : int -> int -> int;
}

type encoding = Binary | Onehot

let binary_bits n =
  let rec go v bits = if v >= n then bits else go (v * 2) (bits + 1) in
  max 1 (go 1 0)

let state_bits encoding n =
  match encoding with Binary -> binary_bits n | Onehot -> n

(* Sum-of-minterm construction of an arbitrary tabulated function: OR over
   (state-decode & input-minterm-decode) terms. The mapper re-optimizes this,
   so structural quality here only affects runtime. *)
let to_aig ?(encoding = Binary) spec =
  assert (spec.n_states >= 1 && spec.reset_state < spec.n_states);
  assert (spec.n_inputs <= 8);
  let g = Aig.create () in
  let ins = Word.inputs g "in" spec.n_inputs in
  let sbits = state_bits encoding spec.n_states in
  let state = Word.inputs g "state" sbits in
  (* state-valid decode per state id *)
  let state_is =
    match encoding with
    | Binary ->
        Array.init spec.n_states (fun s ->
            let lits =
              Array.mapi
                (fun b l -> if s land (1 lsl b) <> 0 then l else Aig.negate l)
                state
            in
            Word.reduce_and g lits)
    | Onehot -> Array.init spec.n_states (fun s -> state.(s))
  in
  (* recovery: treat invalid codes as reset. valid = OR of state_is *)
  let valid = Word.reduce_or g state_is in
  let effective_is =
    Array.mapi
      (fun s lit ->
        if s = spec.reset_state then Aig.or_ g lit (Aig.negate valid) else lit)
      state_is
  in
  (* input minterm decode *)
  let in_minterms =
    Array.init (1 lsl spec.n_inputs) (fun m ->
        let lits =
          Array.mapi (fun b l -> if m land (1 lsl b) <> 0 then l else Aig.negate l) ins
        in
        Word.reduce_and g lits)
  in
  let encode_state s =
    match encoding with
    | Binary -> Array.init sbits (fun b -> s land (1 lsl b) <> 0)
    | Onehot -> Array.init sbits (fun b -> b = s)
  in
  (* for each output/next bit: OR over (state, minterm) pairs where set *)
  let build_bit value_of =
    let terms = ref [] in
    for s = 0 to spec.n_states - 1 do
      for m = 0 to (1 lsl spec.n_inputs) - 1 do
        if value_of s m then
          terms := Aig.and_ g effective_is.(s) in_minterms.(m) :: !terms
      done
    done;
    Word.reduce_or g (Array.of_list !terms)
  in
  for o = 0 to spec.n_outputs - 1 do
    Aig.add_output g (Printf.sprintf "out%d" o)
      (build_bit (fun s m -> spec.out s m land (1 lsl o) <> 0))
  done;
  for b = 0 to sbits - 1 do
    Aig.add_output g (Printf.sprintf "next%d" b)
      (build_bit (fun s m -> (encode_state (spec.next s m)).(b)))
  done;
  g

let reference_step spec state ins =
  assert (Array.length ins = spec.n_inputs);
  let m = ref 0 in
  Array.iteri (fun i b -> if b then m := !m lor (1 lsl i)) ins;
  let next_state = spec.next state !m in
  let out_bits = spec.out state !m in
  (next_state, Array.init spec.n_outputs (fun o -> out_bits land (1 lsl o) <> 0))

(* --- the bus-interface controller --- *)

(* states *)
let idle = 0
let req = 1
let wait_ack = 2
let xfer0 = 3
let xfer1 = 4
let xfer2 = 5
let xfer3 = 6
let done_ = 7

let bus_interface =
  let start m = m land 1 <> 0 in
  let ack m = m land 2 <> 0 in
  let abort m = m land 4 <> 0 in
  let next s m =
    if abort m then idle
    else
      match s with
      | 0 (* idle *) -> if start m then req else idle
      | 1 (* req *) -> wait_ack
      | 2 (* wait_ack *) -> if ack m then xfer0 else wait_ack
      | 3 -> xfer1
      | 4 -> xfer2
      | 5 -> xfer3
      | 6 -> done_
      | 7 -> idle
      | _ -> idle
  in
  let out s m =
    let req_o = if s = req || s = wait_ack then 1 else 0 in
    let busy_o = if s <> idle && not (abort m) then 2 else 0 in
    let done_o = if s = done_ then 4 else 0 in
    req_o lor busy_o lor done_o
  in
  {
    fsm_name = "bus_interface";
    n_states = 8;
    n_inputs = 3;
    n_outputs = 3;
    reset_state = idle;
    next;
    out;
  }

let counter ~bits =
  assert (bits >= 1 && bits <= 8);
  let n = 1 lsl bits in
  {
    fsm_name = Printf.sprintf "counter%d" bits;
    n_states = n;
    n_inputs = 1;
    n_outputs = bits;
    reset_state = 0;
    next = (fun s m -> if m land 1 <> 0 then (s + 1) mod n else s);
    out = (fun s _ -> s);
  }
