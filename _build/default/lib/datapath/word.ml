module Aig = Gap_logic.Aig

type t = Aig.lit array

let inputs g prefix width =
  Array.init width (fun i -> Aig.add_input g (Printf.sprintf "%s%d" prefix i))

let outputs g prefix w =
  Array.iteri (fun i l -> Aig.add_output g (Printf.sprintf "%s%d" prefix i) l) w

let const _g ~width v =
  Array.init width (fun i ->
      if v land (1 lsl i) <> 0 then Aig.lit_true else Aig.lit_false)

let value bits =
  let v = ref 0 in
  Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) bits;
  !v

let to_bools ~width v = Array.init width (fun i -> v land (1 lsl i) <> 0)
let lognot _g a = Array.map Aig.negate a

let map2 f a b =
  assert (Array.length a = Array.length b);
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let logand g a b = map2 (Aig.and_ g) a b
let logor g a b = map2 (Aig.or_ g) a b
let logxor g a b = map2 (Aig.xor_ g) a b
let mux g ~sel a b = map2 (fun x y -> Aig.mux_ g ~sel x y) a b

let reduce g op a =
  (* balanced reduction tree *)
  let rec level = function
    | [] -> Aig.lit_false
    | [ x ] -> x
    | xs ->
        let rec pair = function
          | x :: y :: rest -> op x y :: pair rest
          | [ x ] -> [ x ]
          | [] -> []
        in
        level (pair xs)
  in
  ignore g;
  level (Array.to_list a)

let reduce_or g a = reduce g (Aig.or_ g) a

let reduce_and g a =
  if Array.length a = 0 then Aig.lit_true else reduce g (Aig.and_ g) a
