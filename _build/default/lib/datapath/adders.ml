module Aig = Gap_logic.Aig

type core = Aig.t -> Word.t -> Word.t -> Aig.lit -> Word.t * Aig.lit

let full_adder g a b c =
  let s = Aig.xor_ g (Aig.xor_ g a b) c in
  let carry = Aig.or_ g (Aig.and_ g a b) (Aig.and_ g c (Aig.xor_ g a b)) in
  (s, carry)

let ripple g a b cin =
  let width = Array.length a in
  assert (Array.length b = width);
  let sum = Array.make width Aig.lit_false in
  let carry = ref cin in
  for i = 0 to width - 1 do
    let s, c = full_adder g a.(i) b.(i) !carry in
    sum.(i) <- s;
    carry := c
  done;
  (sum, !carry)

(* Block carry-lookahead: every carry inside a block is computed from the
   block-input carry by the flattened two-level expansion

     c_k = g_{k-1} | p_{k-1} g_{k-2} | ... | p_{k-1}..p_1 g_0
         | p_{k-1}..p_0 c_in

   so the block contributes a constant number of logic levels; blocks are
   chained through their carry-out. This is the "carry-lookahead ... in
   pre-designed libraries" structure of Sec. 4.2. *)
let carry_lookahead ?(block = 4) () g a b cin =
  assert (block >= 1);
  let width = Array.length a in
  let gen = Array.init width (fun i -> Aig.and_ g a.(i) b.(i)) in
  let prop = Array.init width (fun i -> Aig.xor_ g a.(i) b.(i)) in
  let sum = Array.make width Aig.lit_false in
  let or_tree lits =
    match lits with
    | [] -> Aig.lit_false
    | _ ->
        let rec level = function
          | [ x ] -> x
          | xs ->
              let rec pair = function
                | x :: y :: rest -> Aig.or_ g x y :: pair rest
                | tail -> tail
              in
              level (pair xs)
        in
        level lits
  in
  let block_cin = ref cin in
  let i = ref 0 in
  while !i < width do
    let hi = min (!i + block) width in
    (* terms.(j) = g_{i+j} & p_{i+j+1} & ... & p_{i+k-1}, updated as k grows;
       pbar = p_i & ... & p_{i+k-1} *)
    let terms = ref [] in
    let pbar = ref Aig.lit_true in
    for k = 0 to hi - !i - 1 do
      let bit = !i + k in
      (* carry into [bit] from the expansion accumulated so far *)
      let c = or_tree (Aig.and_ g !pbar !block_cin :: !terms) in
      sum.(bit) <- Aig.xor_ g prop.(bit) c;
      terms := gen.(bit) :: List.map (fun t -> Aig.and_ g t prop.(bit)) !terms;
      pbar := Aig.and_ g !pbar prop.(bit)
    done;
    block_cin := or_tree (Aig.and_ g !pbar !block_cin :: !terms);
    i := hi
  done;
  (sum, !block_cin)

let carry_select ?(block = 4) () g a b cin =
  let width = Array.length a in
  let sum = Array.make width Aig.lit_false in
  let carry = ref cin in
  let i = ref 0 in
  while !i < width do
    let hi = min (!i + block) width in
    let sub arr = Array.sub arr !i (hi - !i) in
    if !i = 0 then begin
      (* first block: plain ripple from the real carry *)
      let s, c = ripple g (sub a) (sub b) !carry in
      Array.blit s 0 sum !i (hi - !i);
      carry := c
    end
    else begin
      (* speculative blocks for carry-in 0 and 1, then select *)
      let s0, c0 = ripple g (sub a) (sub b) Aig.lit_false in
      let s1, c1 = ripple g (sub a) (sub b) Aig.lit_true in
      let sel = !carry in
      for j = 0 to hi - !i - 1 do
        sum.(!i + j) <- Aig.mux_ g ~sel s0.(j) s1.(j)
      done;
      carry := Aig.mux_ g ~sel c0 c1
    end;
    i := hi
  done;
  (sum, !carry)

let kogge_stone g a b cin =
  let width = Array.length a in
  let gen = Array.init width (fun i -> Aig.and_ g a.(i) b.(i)) in
  let prop = Array.init width (fun i -> Aig.xor_ g a.(i) b.(i)) in
  (* incorporate cin as generate of a virtual bit -1 by adjusting g0 *)
  let gcur = Array.copy gen and pcur = Array.copy prop in
  gcur.(0) <- Aig.or_ g gen.(0) (Aig.and_ g prop.(0) cin);
  let dist = ref 1 in
  while !dist < width do
    let gnext = Array.copy gcur and pnext = Array.copy pcur in
    for i = width - 1 downto !dist do
      gnext.(i) <- Aig.or_ g gcur.(i) (Aig.and_ g pcur.(i) gcur.(i - !dist));
      pnext.(i) <- Aig.and_ g pcur.(i) pcur.(i - !dist)
    done;
    Array.blit gnext 0 gcur 0 width;
    Array.blit pnext 0 pcur 0 width;
    dist := !dist * 2
  done;
  (* carry into bit i is gcur.(i-1); carry into bit 0 is cin *)
  let sum =
    Array.init width (fun i ->
        let c = if i = 0 then cin else gcur.(i - 1) in
        Aig.xor_ g prop.(i) c)
  in
  (sum, gcur.(width - 1))

let standalone ~name core width =
  ignore name;
  let g = Aig.create () in
  let a = Word.inputs g "a" width in
  let b = Word.inputs g "b" width in
  let cin = Aig.add_input g "cin" in
  let sum, cout = core g a b cin in
  Word.outputs g "s" sum;
  Aig.add_output g "cout" cout;
  g

let ripple_adder width = standalone ~name:"ripple" ripple width
let cla_adder ?block width = standalone ~name:"cla" (carry_lookahead ?block ()) width

let carry_select_adder ?block width =
  standalone ~name:"csel" (carry_select ?block ()) width

let kogge_stone_adder width = standalone ~name:"ks" kogge_stone width

let subtract core g a b cin =
  let nb = Array.map Aig.negate b in
  core g a nb cin

let architectures =
  [
    ("ripple", ripple_adder);
    ("carry-lookahead", fun width -> cla_adder width);
    ("carry-select", fun width -> carry_select_adder width);
    ("kogge-stone", kogge_stone_adder);
  ]
