(** Equality and magnitude comparators. *)

val eq_core : Gap_logic.Aig.t -> Word.t -> Word.t -> Gap_logic.Aig.lit
val ult_core : Gap_logic.Aig.t -> Word.t -> Word.t -> Gap_logic.Aig.lit
(** Unsigned [a < b], computed as the borrow of [a - b]. *)

val comparator : width:int -> Gap_logic.Aig.t
(** Standalone: inputs [a*], [b*]; outputs [eq], [lt]. *)
