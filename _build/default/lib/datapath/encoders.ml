module Aig = Gap_logic.Aig

let decoder_core g sel =
  let n = Array.length sel in
  Array.init (1 lsl n) (fun code ->
      let terms =
        Array.mapi (fun i s -> if code land (1 lsl i) <> 0 then s else Aig.negate s) sel
      in
      Word.reduce_and g terms)

let decoder ~width =
  let g = Aig.create () in
  let sel = Word.inputs g "s" width in
  let outs = decoder_core g sel in
  Array.iteri (fun i l -> Aig.add_output g (Printf.sprintf "d%d" i) l) outs;
  g

let priority_encoder_core g req =
  let lines = Array.length req in
  assert (lines > 0 && lines land (lines - 1) = 0);
  let bits = Shifter.shamt_bits lines in
  let valid = Word.reduce_or g req in
  (* grant: highest asserted line wins *)
  let index =
    Array.init bits (fun b ->
        (* bit b of the winning index: OR over lines with bit b set that are
           not shadowed by any higher line *)
        let terms = ref [] in
        for line = 0 to lines - 1 do
          if line land (1 lsl b) <> 0 then begin
            (* line wins iff req.(line) and no higher req *)
            let higher = Array.to_list (Array.sub req (line + 1) (lines - line - 1)) in
            let no_higher = Aig.negate (Word.reduce_or g (Array.of_list higher)) in
            terms := Aig.and_ g req.(line) no_higher :: !terms
          end
        done;
        Word.reduce_or g (Array.of_list !terms))
  in
  (index, valid)

let priority_encoder ~lines =
  let g = Aig.create () in
  let req = Word.inputs g "r" lines in
  let index, valid = priority_encoder_core g req in
  Word.outputs g "i" index;
  Aig.add_output g "valid" valid;
  g

let rec mux_tree_core g sel data =
  match Array.length sel with
  | 0 ->
      assert (Array.length data = 1);
      data.(0)
  | n ->
      assert (Array.length data = 1 lsl n);
      let half = Array.length data / 2 in
      let lo = mux_tree_core g (Array.sub sel 0 (n - 1)) (Array.sub data 0 half) in
      let hi = mux_tree_core g (Array.sub sel 0 (n - 1)) (Array.sub data half half) in
      Aig.mux_ g ~sel:sel.(n - 1) lo hi

let onehot_check_core g word =
  (* exactly one set: some set, and no two set *)
  let any = Word.reduce_or g word in
  let pairs = ref [] in
  Array.iteri
    (fun i a ->
      Array.iteri (fun j b -> if i < j then pairs := Aig.and_ g a b :: !pairs) word;
      ignore a)
    word;
  let two = Word.reduce_or g (Array.of_list !pairs) in
  Aig.and_ g any (Aig.negate two)
