(** Word-level helpers over AIG literals: the little-endian bit-vector layer
    the datapath generators are written in. Bit 0 is the LSB everywhere. *)

type t = Gap_logic.Aig.lit array

val inputs : Gap_logic.Aig.t -> string -> int -> t
(** [inputs g "a" 4] declares inputs [a0 .. a3]. *)

val outputs : Gap_logic.Aig.t -> string -> t -> unit
val const : Gap_logic.Aig.t -> width:int -> int -> t
(** Little-endian constant; bits beyond [width] are dropped. *)

val value : bool array -> int
(** Integer value of a little-endian bit pattern (LSB first). *)

val to_bools : width:int -> int -> bool array

val lognot : Gap_logic.Aig.t -> t -> t
val logand : Gap_logic.Aig.t -> t -> t -> t
val logor : Gap_logic.Aig.t -> t -> t -> t
val logxor : Gap_logic.Aig.t -> t -> t -> t
val mux : Gap_logic.Aig.t -> sel:Gap_logic.Aig.lit -> t -> t -> t
(** Bitwise select: [a] when [sel]=0, [b] when [sel]=1. *)

val reduce_or : Gap_logic.Aig.t -> t -> Gap_logic.Aig.lit
val reduce_and : Gap_logic.Aig.t -> t -> Gap_logic.Aig.lit
