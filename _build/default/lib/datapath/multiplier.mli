(** Array multiplier: the classic carry-save array of full adders, one of the
    "regular structures" (Sec. 4.1) custom designers lay out by hand. *)

val core : Gap_logic.Aig.t -> Word.t -> Word.t -> Word.t
(** [core g a b] is the full [wa + wb]-bit product. *)

val array_multiplier : width:int -> Gap_logic.Aig.t
(** Standalone [width x width -> 2*width] multiplier, inputs [a*], [b*],
    outputs [p*]. *)
