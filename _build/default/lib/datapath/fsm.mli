(** Finite-state-machine generation.

    Sec. 4.1's counter-example to pipelining: "many designs, such as bus
    interfaces, have a tight interaction with their environment in which
    each execution cycle depends on new primary inputs ... it is not clear
    how an ASIC may be reorganized to allow pipelining." These generators
    produce exactly that kind of logic: a Mealy machine compiled to
    next-state/output truth logic over the chosen state encoding, ready for
    the mapper (state bits appear as [state<k>] inputs and [next<k>]
    outputs, closed through flops by [Gap_synth.Sequential.close_loops]). *)

type spec = {
  fsm_name : string;
  n_states : int;
  n_inputs : int;
  n_outputs : int;
  reset_state : int;
  next : int -> int -> int;  (** [next state input_minterm] -> next state *)
  out : int -> int -> int;  (** [out state input_minterm] -> output bits *)
}

type encoding = Binary | Onehot

val state_bits : encoding -> int -> int
(** Register count for an [n]-state machine under the encoding. *)

val to_aig : ?encoding:encoding -> spec -> Gap_logic.Aig.t
(** Combinational body: inputs [in0..], [state0..]; outputs [out0..],
    [next0..]. Unreachable state codes (binary encoding with non-power-of-two
    state counts, or invalid one-hot patterns) recover to the reset state. *)

val reference_step : spec -> int -> bool array -> int * bool array
(** [reference_step spec state ins = (next_state, outputs)]: the software
    model, for tests. *)

val bus_interface : spec
(** The paper's example shape: a request/acknowledge bus controller.
    Inputs: start, ack, abort. Outputs: req, busy, done.
    IDLE -> REQ -> (wait for ack) -> 4 transfer beats -> DONE -> IDLE,
    abort returns to IDLE from anywhere. 8 states. *)

val counter : bits:int -> spec
(** A [bits]-wide wrapping up-counter with enable: the classic sequential
    loop whose period retiming cannot shorten. *)
