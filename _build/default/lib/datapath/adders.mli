(** Adder architectures.

    The paper's Sec. 4.2 points out that "fast datapath designs, such as
    carry-lookahead and carry-select adders ... are not automatically invoked
    in register-transfer level logic synthesis"; these generators let the
    experiments compare the architectures directly. All are little-endian.

    Core builders take/return literal arrays inside an existing AIG; the
    [*_adder] wrappers build a standalone circuit with inputs
    [a0.., b0.., cin] and outputs [s0.., cout]. *)

type core =
  Gap_logic.Aig.t ->
  Word.t ->
  Word.t ->
  Gap_logic.Aig.lit ->
  Word.t * Gap_logic.Aig.lit
(** [core g a b cin = (sum, cout)] *)

val ripple : core
val carry_lookahead : ?block:int -> unit -> core
(** Block propagate/generate lookahead with the given block size
    (default 4). *)

val carry_select : ?block:int -> unit -> core
(** Duplicated-block carry select, default block 4. *)

val kogge_stone : core
(** Logarithmic parallel-prefix adder. *)

val ripple_adder : int -> Gap_logic.Aig.t
(** Argument is the bit width, for all four standalone generators. *)

val cla_adder : ?block:int -> int -> Gap_logic.Aig.t
val carry_select_adder : ?block:int -> int -> Gap_logic.Aig.t
val kogge_stone_adder : int -> Gap_logic.Aig.t

val subtract : core -> core
(** Wraps an adder core into a subtractor ([a - b], [cin] = borrow-in
    inverted: pass [lit_true] for plain subtraction). *)

val architectures : (string * (int -> Gap_logic.Aig.t)) list
(** Named standalone generators, for sweep experiments. *)
