module Aig = Gap_logic.Aig

let result_bits n =
  let rec go v bits = if v >= n + 1 then bits else go (v * 2) (bits + 1) in
  if n = 0 then 1 else go 1 0

let full_adder g a b c =
  let s = Aig.xor_ g (Aig.xor_ g a b) c in
  let carry = Aig.or_ g (Aig.and_ g a b) (Aig.and_ g c (Aig.xor_ g a b)) in
  (s, carry)

(* column-compression popcount: bucket bits by weight, compress with full
   adders until each column holds one bit *)
let popcount_core g word =
  let n = Array.length word in
  let out_w = result_bits n in
  let cols = Array.make (out_w + 1) [] in
  Array.iter (fun l -> cols.(0) <- l :: cols.(0)) word;
  for w = 0 to out_w - 1 do
    let rec compress () =
      match cols.(w) with
      | a :: b :: c :: rest ->
          let s, carry = full_adder g a b c in
          cols.(w) <- s :: rest;
          cols.(w + 1) <- carry :: cols.(w + 1);
          compress ()
      | a :: b :: [] ->
          let s, carry = full_adder g a b Aig.lit_false in
          cols.(w) <- [ s ];
          cols.(w + 1) <- carry :: cols.(w + 1)
      | _ -> ()
    in
    compress ()
  done;
  Array.init out_w (fun w -> match cols.(w) with l :: _ -> l | [] -> Aig.lit_false)

let popcount ~width =
  let g = Aig.create () in
  let x = Word.inputs g "x" width in
  Word.outputs g "c" (popcount_core g x);
  g

let parity_core g word =
  let rec level = function
    | [] -> Aig.lit_false
    | [ x ] -> x
    | xs ->
        let rec pair = function
          | a :: b :: rest -> Aig.xor_ g a b :: pair rest
          | tail -> tail
        in
        level (pair xs)
  in
  level (Array.to_list word)

let incrementer_core g word =
  let n = Array.length word in
  let out = Array.make n Aig.lit_false in
  let carry = ref Aig.lit_true in
  for i = 0 to n - 1 do
    out.(i) <- Aig.xor_ g word.(i) !carry;
    carry := Aig.and_ g word.(i) !carry
  done;
  (out, !carry)

let gray_encode_core g word =
  let n = Array.length word in
  Array.init n (fun i -> if i = n - 1 then word.(i) else Aig.xor_ g word.(i) word.(i + 1))

let gray_decode_core g word =
  let n = Array.length word in
  let out = Array.make n Aig.lit_false in
  for i = n - 1 downto 0 do
    out.(i) <- (if i = n - 1 then word.(i) else Aig.xor_ g word.(i) out.(i + 1))
  done;
  out
