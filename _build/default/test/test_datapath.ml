(* Tests for Gap_datapath: adders, multiplier, shifter, comparator, ALU,
   random logic. All generators are checked bit-accurately against integer
   reference models. *)

module Aig = Gap_logic.Aig
module Word = Gap_datapath.Word

let eval_adder g ~width ~a ~b ~cin =
  let ins =
    Array.concat
      [ Word.to_bools ~width a; Word.to_bools ~width b; [| cin |] ]
  in
  let out = Aig.eval g ins in
  let s = Word.value (Array.sub out 0 width) in
  let cout = out.(width) in
  (s, cout)

let exhaustive_adder_check name gen width =
  let g = gen width in
  for a = 0 to (1 lsl width) - 1 do
    for b = 0 to (1 lsl width) - 1 do
      List.iter
        (fun cin ->
          let s, cout = eval_adder g ~width ~a ~b ~cin in
          let expect = a + b + if cin then 1 else 0 in
          if s <> expect land ((1 lsl width) - 1) || cout <> (expect >= 1 lsl width) then
            Alcotest.failf "%s w%d: %d+%d+%b gave %d/%b" name width a b cin s cout)
        [ false; true ]
    done
  done

let test_adders_exhaustive_4bit () =
  List.iter
    (fun (name, gen) -> exhaustive_adder_check name gen 4)
    Gap_datapath.Adders.architectures

let adder_random_prop (name, gen) =
  let width = 16 in
  let g = gen width in
  QCheck.Test.make
    ~name:(Printf.sprintf "%s adder random 16-bit" name)
    ~count:300
    QCheck.(triple (int_bound 65535) (int_bound 65535) bool)
    (fun (a, b, cin) ->
      let s, cout = eval_adder g ~width ~a ~b ~cin in
      let expect = a + b + if cin then 1 else 0 in
      s = expect land 0xFFFF && cout = (expect >= 65536))

let test_cla_block_sizes () =
  (* non-default block sizes, including ones that don't divide the width *)
  List.iter
    (fun block -> exhaustive_adder_check "cla-block" (Gap_datapath.Adders.cla_adder ~block) 5)
    [ 1; 2; 3; 5; 7 ]

let test_carry_select_blocks () =
  List.iter
    (fun block ->
      exhaustive_adder_check "csel-block" (Gap_datapath.Adders.carry_select_adder ~block) 5)
    [ 2; 3; 4 ]

let test_subtract () =
  let width = 6 in
  let g = Aig.create () in
  let a = Word.inputs g "a" width in
  let b = Word.inputs g "b" width in
  let diff, _ =
    Gap_datapath.Adders.subtract Gap_datapath.Adders.ripple g a b Aig.lit_true
  in
  Word.outputs g "d" diff;
  for x = 0 to 63 do
    for y = 0 to 63 do
      let ins = Array.append (Word.to_bools ~width x) (Word.to_bools ~width y) in
      let out = Aig.eval g ins in
      let d = Word.value out in
      Alcotest.(check int) "a - b" ((x - y) land 63) d
    done
  done

let test_multiplier_exhaustive_4x4 () =
  let width = 4 in
  let g = Gap_datapath.Multiplier.array_multiplier ~width in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let ins = Array.append (Word.to_bools ~width a) (Word.to_bools ~width b) in
      let p = Word.value (Aig.eval g ins) in
      Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b) p
    done
  done

let multiplier_random_prop =
  let width = 10 in
  let g = Gap_datapath.Multiplier.array_multiplier ~width in
  QCheck.Test.make ~name:"multiplier random 10x10" ~count:300
    QCheck.(pair (int_bound 1023) (int_bound 1023))
    (fun (a, b) ->
      let ins = Array.append (Word.to_bools ~width a) (Word.to_bools ~width b) in
      Word.value (Aig.eval g ins) = a * b)

let test_shifter () =
  let width = 8 in
  let g = Gap_datapath.Shifter.barrel_shifter ~width in
  let shw = Gap_datapath.Shifter.shamt_bits width in
  Alcotest.(check int) "shamt bits" 3 shw;
  for a = 0 to 255 do
    for sh = 0 to 7 do
      let ins = Array.append (Word.to_bools ~width a) (Word.to_bools ~width:shw sh) in
      let y = Word.value (Aig.eval g ins) in
      Alcotest.(check int) "shl" ((a lsl sh) land 255) y
    done
  done

let test_shift_right_and_rotate () =
  let width = 8 in
  let shw = Gap_datapath.Shifter.shamt_bits width in
  let g = Aig.create () in
  let a = Word.inputs g "a" width in
  let sh = Word.inputs g "sh" shw in
  Word.outputs g "r" (Gap_datapath.Shifter.shift_right_core g a sh);
  Word.outputs g "rot" (Gap_datapath.Shifter.rotate_left_core g a sh);
  for x = 0 to 255 do
    for s = 0 to 7 do
      let ins = Array.append (Word.to_bools ~width x) (Word.to_bools ~width:shw s) in
      let out = Aig.eval g ins in
      let r = Word.value (Array.sub out 0 width) in
      let rot = Word.value (Array.sub out width width) in
      Alcotest.(check int) "shr" (x lsr s) r;
      Alcotest.(check int) "rotl" (((x lsl s) lor (x lsr (8 - s))) land 255) rot
    done
  done

let test_comparator () =
  let width = 5 in
  let g = Gap_datapath.Comparator.comparator ~width in
  for a = 0 to 31 do
    for b = 0 to 31 do
      let ins = Array.append (Word.to_bools ~width a) (Word.to_bools ~width b) in
      let out = Aig.eval g ins in
      Alcotest.(check bool) "eq" (a = b) out.(0);
      Alcotest.(check bool) "lt" (a < b) out.(1)
    done
  done

let alu_prop adder =
  let width = 8 in
  let g = Gap_datapath.Alu.alu ~adder width in
  let shw = Gap_datapath.Shifter.shamt_bits width in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "alu ops vs reference (%s)"
         (match adder with `Ripple -> "ripple" | `Cla -> "cla" | `Kogge_stone -> "ks"))
    ~count:500
    QCheck.(quad (int_bound 255) (int_bound 255) (int_bound 7) (int_bound 7))
    (fun (a, b, sh, op) ->
      let ins =
        Array.concat
          [
            Word.to_bools ~width a;
            Word.to_bools ~width b;
            Word.to_bools ~width:shw sh;
            Word.to_bools ~width:3 op;
          ]
      in
      let y = Word.value (Aig.eval g ins) in
      y = Gap_datapath.Alu.reference ~width ~op ~a ~b ~sh)

let test_random_logic_deterministic () =
  let g1 = Gap_datapath.Random_logic.generate ~seed:5L ~inputs:10 ~outputs:4 ~gates:50 () in
  let g2 = Gap_datapath.Random_logic.generate ~seed:5L ~inputs:10 ~outputs:4 ~gates:50 () in
  let rng = Gap_util.Rng.create () in
  Alcotest.(check bool) "same seed same function" true (Aig.equivalent_random g1 g2 rng);
  Alcotest.(check int) "same size" (Aig.num_ands g1) (Aig.num_ands g2)

let test_random_logic_shape () =
  let g = Gap_datapath.Random_logic.generate ~inputs:20 ~outputs:8 ~gates:300 () in
  Alcotest.(check int) "inputs" 20 (Aig.num_inputs g);
  Alcotest.(check int) "outputs" 8 (Aig.num_outputs g);
  Alcotest.(check bool) "nontrivial depth" true (Aig.depth g > 3)

let test_divider_exhaustive () =
  let width = 5 in
  let g = Gap_datapath.Divider.array_divider ~width in
  for a = 0 to 31 do
    for b = 0 to 31 do
      let ins = Array.append (Word.to_bools ~width a) (Word.to_bools ~width b) in
      let out = Aig.eval g ins in
      let q = Word.value (Array.sub out 0 width) in
      let r = Word.value (Array.sub out width width) in
      let eq, er = Gap_datapath.Divider.reference ~width ~a ~b in
      if (q, r) <> (eq, er) then
        Alcotest.failf "%d / %d: got %d rem %d, want %d rem %d" a b q r eq er
    done
  done

let divider_random_prop =
  let width = 9 in
  let g = Gap_datapath.Divider.array_divider ~width in
  QCheck.Test.make ~name:"divider random 9-bit" ~count:200
    QCheck.(pair (int_bound 511) (int_bound 511))
    (fun (a, b) ->
      let ins = Array.append (Word.to_bools ~width a) (Word.to_bools ~width b) in
      let out = Aig.eval g ins in
      let q = Word.value (Array.sub out 0 width) in
      let r = Word.value (Array.sub out width width) in
      (q, r) = Gap_datapath.Divider.reference ~width ~a ~b)

(* --- encoders --- *)

let test_decoder () =
  let width = 3 in
  let g = Gap_datapath.Encoders.decoder ~width in
  for s = 0 to 7 do
    let out = Aig.eval g (Word.to_bools ~width s) in
    Array.iteri
      (fun i v -> Alcotest.(check bool) "one-hot" (i = s) v)
      out
  done

let test_priority_encoder () =
  let lines = 8 in
  let g = Gap_datapath.Encoders.priority_encoder ~lines in
  for req = 0 to 255 do
    let out = Aig.eval g (Word.to_bools ~width:lines req) in
    let index = Word.value (Array.sub out 0 3) in
    let valid = out.(3) in
    if req = 0 then Alcotest.(check bool) "invalid when no request" false valid
    else begin
      Alcotest.(check bool) "valid" true valid;
      (* highest set bit *)
      let expect = ref 0 in
      for b = 0 to lines - 1 do
        if req land (1 lsl b) <> 0 then expect := b
      done;
      Alcotest.(check int) "highest priority wins" !expect index
    end
  done

let test_mux_tree () =
  let g = Aig.create () in
  let sel = Word.inputs g "s" 2 in
  let data = Word.inputs g "d" 4 in
  Aig.add_output g "y" (Gap_datapath.Encoders.mux_tree_core g sel data);
  for m = 0 to 63 do
    let s = m land 3 and d = m lsr 2 in
    let ins = Array.append (Word.to_bools ~width:2 s) (Word.to_bools ~width:4 d) in
    let out = Aig.eval g ins in
    Alcotest.(check bool) "selects right line" (d land (1 lsl s) <> 0) out.(0)
  done

let test_onehot_check () =
  let g = Aig.create () in
  let x = Word.inputs g "x" 5 in
  Aig.add_output g "oh" (Gap_datapath.Encoders.onehot_check_core g x);
  for m = 0 to 31 do
    let out = Aig.eval g (Word.to_bools ~width:5 m) in
    let pop = ref 0 in
    for b = 0 to 4 do
      if m land (1 lsl b) <> 0 then incr pop
    done;
    Alcotest.(check bool) "exactly one" (!pop = 1) out.(0)
  done

(* --- counting --- *)

let test_popcount () =
  let width = 9 in
  let g = Gap_datapath.Counting.popcount ~width in
  for m = 0 to 511 do
    let out = Aig.eval g (Word.to_bools ~width m) in
    let expect = ref 0 in
    for b = 0 to width - 1 do
      if m land (1 lsl b) <> 0 then incr expect
    done;
    Alcotest.(check int) "popcount" !expect (Word.value out)
  done

let test_parity_increment_gray () =
  let width = 6 in
  let g = Aig.create () in
  let x = Word.inputs g "x" width in
  Aig.add_output g "par" (Gap_datapath.Counting.parity_core g x);
  let inc, carry = Gap_datapath.Counting.incrementer_core g x in
  Word.outputs g "inc" inc;
  Aig.add_output g "cout" carry;
  let gray = Gap_datapath.Counting.gray_encode_core g x in
  Word.outputs g "gray" gray;
  Word.outputs g "back" (Gap_datapath.Counting.gray_decode_core g gray);
  for m = 0 to 63 do
    let out = Aig.eval g (Word.to_bools ~width m) in
    let parity = out.(0) in
    let incv = Word.value (Array.sub out 1 width) in
    let cout = out.(width + 1) in
    let grayv = Word.value (Array.sub out (width + 2) width) in
    let backv = Word.value (Array.sub out (2 * width + 2) width) in
    let pop = ref 0 in
    for b = 0 to width - 1 do
      if m land (1 lsl b) <> 0 then incr pop
    done;
    Alcotest.(check bool) "parity" (!pop land 1 = 1) parity;
    Alcotest.(check int) "increment" ((m + 1) land 63) incv;
    Alcotest.(check bool) "inc carry" (m = 63) cout;
    Alcotest.(check int) "gray" (m lxor (m lsr 1)) grayv;
    Alcotest.(check int) "gray roundtrip" m backv
  done

let test_gray_adjacent_codes () =
  (* successive Gray codes differ in exactly one bit *)
  let width = 5 in
  let g = Aig.create () in
  let x = Word.inputs g "x" width in
  Word.outputs g "g" (Gap_datapath.Counting.gray_encode_core g x);
  let code m = Word.value (Aig.eval g (Word.to_bools ~width m)) in
  for m = 0 to 30 do
    let diff = code m lxor code (m + 1) in
    Alcotest.(check bool) "one bit flips" true (diff land (diff - 1) = 0 && diff <> 0)
  done

let test_result_bits () =
  Alcotest.(check int) "4 bits -> 3" 3 (Gap_datapath.Counting.result_bits 4);
  Alcotest.(check int) "7 bits -> 3" 3 (Gap_datapath.Counting.result_bits 7);
  Alcotest.(check int) "8 bits -> 4" 4 (Gap_datapath.Counting.result_bits 8)

let test_word_helpers () =
  Alcotest.(check int) "value little-endian" 6 (Word.value [| false; true; true |]);
  Alcotest.(check (array bool)) "to_bools" [| true; false; true |] (Word.to_bools ~width:3 5);
  let g = Aig.create () in
  let w = Word.const g ~width:4 0b1010 in
  Alcotest.(check int) "const drops high bits" Aig.lit_false w.(0);
  Alcotest.(check int) "const bit set" Aig.lit_true w.(1)

let suite =
  [
    ("adders exhaustive 4-bit", `Quick, test_adders_exhaustive_4bit);
    QCheck_alcotest.to_alcotest (adder_random_prop (List.nth Gap_datapath.Adders.architectures 0));
    QCheck_alcotest.to_alcotest (adder_random_prop (List.nth Gap_datapath.Adders.architectures 1));
    QCheck_alcotest.to_alcotest (adder_random_prop (List.nth Gap_datapath.Adders.architectures 2));
    QCheck_alcotest.to_alcotest (adder_random_prop (List.nth Gap_datapath.Adders.architectures 3));
    ("cla odd block sizes", `Quick, test_cla_block_sizes);
    ("carry-select block sizes", `Quick, test_carry_select_blocks);
    ("subtractor", `Quick, test_subtract);
    ("multiplier exhaustive 4x4", `Quick, test_multiplier_exhaustive_4x4);
    QCheck_alcotest.to_alcotest multiplier_random_prop;
    ("barrel shifter", `Quick, test_shifter);
    ("shift right / rotate", `Quick, test_shift_right_and_rotate);
    ("comparator", `Quick, test_comparator);
    QCheck_alcotest.to_alcotest (alu_prop `Ripple);
    QCheck_alcotest.to_alcotest (alu_prop `Cla);
    QCheck_alcotest.to_alcotest (alu_prop `Kogge_stone);
    ("random logic deterministic", `Quick, test_random_logic_deterministic);
    ("random logic shape", `Quick, test_random_logic_shape);
    ("word helpers", `Quick, test_word_helpers);
    ("decoder one-hot", `Quick, test_decoder);
    ("priority encoder", `Quick, test_priority_encoder);
    ("mux tree", `Quick, test_mux_tree);
    ("one-hot checker", `Quick, test_onehot_check);
    ("popcount", `Quick, test_popcount);
    ("parity/increment/gray", `Quick, test_parity_increment_gray);
    ("gray adjacency", `Quick, test_gray_adjacent_codes);
    ("popcount result bits", `Quick, test_result_bits);
    ("divider exhaustive 5-bit", `Quick, test_divider_exhaustive);
    QCheck_alcotest.to_alcotest divider_random_prop;
  ]
