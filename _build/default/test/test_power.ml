(* Tests for the power models: cell energies and netlist activity
   estimation. *)

module Power = Gap_liberty.Power
module Power_est = Gap_netlist.Power_est
module Netlist = Gap_netlist.Netlist
module Library = Gap_liberty.Library
module Libgen = Gap_liberty.Libgen
module Cell = Gap_liberty.Cell

let tech = Gap_tech.Tech.asic_025um
let lib = lazy (Libgen.make tech Libgen.rich)
let domino_lib = lazy (Libgen.make tech Libgen.domino)

let cell base drive = Option.get (Library.find (Lazy.force lib) ~base ~drive)

let test_switching_energy_scales () =
  let c = cell "INV" 1. in
  let e1 = Power.switching_energy_fj c ~vdd_v:2.5 ~load_ff:10. in
  let e2 = Power.switching_energy_fj c ~vdd_v:2.5 ~load_ff:20. in
  Alcotest.(check bool) "more load, more energy" true (e2 > e1);
  let e_lowv = Power.switching_energy_fj c ~vdd_v:1.8 ~load_ff:10. in
  Alcotest.(check (float 1e-9)) "quadratic in vdd"
    (e1 *. (1.8 /. 2.5) ** 2.) e_lowv

let test_domino_energy_double () =
  let c = cell "AND2" 2. in
  Alcotest.(check (float 1e-9)) "CV^2 vs CV^2/2"
    (2. *. Power.switching_energy_fj c ~vdd_v:2.5 ~load_ff:8.)
    (Power.domino_cycle_energy_fj c ~vdd_v:2.5 ~load_ff:8.)

let test_leakage_scales_with_area () =
  let small = cell "INV" 0.5 and big = cell "INV" 16. in
  Alcotest.(check bool) "bigger cell leaks more" true
    (Power.leakage_nw big > Power.leakage_nw small)

let test_activity_bounds () =
  let g = Gap_datapath.Adders.cla_adder 8 in
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force lib) g in
  let acts = Power_est.activities ~vectors:200 nl in
  Array.iter
    (fun a -> Alcotest.(check bool) "0 <= activity <= 1" true (a >= 0. && a <= 1.))
    acts;
  (* adder outputs toggle under random inputs *)
  let mean = Gap_util.Stats.mean_of acts in
  Alcotest.(check bool) "nonzero average activity" true (mean > 0.05)

let test_constant_net_never_toggles () =
  let lib = Lazy.force lib in
  let nl = Netlist.create ~lib "const" in
  let a = Netlist.add_input nl "a" in
  let one = Netlist.add_const nl true in
  let inst = Netlist.add_cell nl (Option.get (Library.find lib ~base:"AND2" ~drive:1.)) [| a; one |] in
  ignore (Netlist.set_output nl "y" (Netlist.out_net nl inst));
  let acts = Power_est.activities ~vectors:100 nl in
  Alcotest.(check (float 1e-9)) "constant net silent" 0. acts.(one)

let test_estimate_deterministic_and_positive () =
  let g = Gap_datapath.Adders.cla_adder 8 in
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force lib) g in
  let r1 = Power_est.estimate ~seed:3L nl ~freq_mhz:200. in
  let r2 = Power_est.estimate ~seed:3L nl ~freq_mhz:200. in
  Alcotest.(check (float 1e-12)) "deterministic" r1.Power_est.total_mw r2.Power_est.total_mw;
  Alcotest.(check bool) "dynamic positive" true (r1.Power_est.dynamic_mw > 0.);
  Alcotest.(check bool) "leakage positive" true (r1.Power_est.leakage_mw > 0.)

let test_power_linear_in_frequency () =
  let g = Gap_datapath.Adders.cla_adder 8 in
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force lib) g in
  let p100 = (Power_est.estimate nl ~freq_mhz:100.).Power_est.dynamic_mw in
  let p200 = (Power_est.estimate nl ~freq_mhz:200.).Power_est.dynamic_mw in
  Alcotest.(check (float 1e-9)) "dynamic power linear in f" (2. *. p100) p200

let test_domino_costs_more () =
  let g = Gap_datapath.Adders.cla_adder 8 in
  let static_nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force lib) g in
  let dom = Gap_domino.Dualrail.map_aig ~domino_lib:(Lazy.force domino_lib) g in
  let ps = (Power_est.estimate static_nl ~freq_mhz:200.).Power_est.total_mw in
  let pd = (Power_est.estimate dom ~freq_mhz:200.).Power_est.total_mw in
  Alcotest.(check bool) "domino burns more power" true (pd > 1.5 *. ps)

let test_downsizing_saves_power () =
  let g = Gap_datapath.Adders.cla_adder 8 in
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force lib) g in
  Gap_synth.Sizing.set_all_drives nl ~drive:4.;
  let big = (Power_est.estimate nl ~freq_mhz:200.).Power_est.total_mw in
  Gap_synth.Sizing.set_all_drives nl ~drive:1.;
  let small = (Power_est.estimate nl ~freq_mhz:200.).Power_est.total_mw in
  Alcotest.(check bool) "smaller drives, less power" true (small < big)

let test_sequential_activity () =
  (* a pipelined netlist simulates through its flops without error *)
  let g = Gap_datapath.Adders.ripple_adder 4 in
  let effort = { Gap_synth.Flow.default_effort with Gap_synth.Flow.tilos_moves = 0 } in
  let nl = (Gap_synth.Flow.run ~lib:(Lazy.force lib) ~effort g).Gap_synth.Flow.netlist in
  ignore (Gap_retime.Pipeline.pipeline ~stages:2 nl);
  let r = Power_est.estimate ~vectors:100 nl ~freq_mhz:300. in
  Alcotest.(check bool) "sequential estimate positive" true (r.Power_est.total_mw > 0.)

let suite =
  [
    ("switching energy scales", `Quick, test_switching_energy_scales);
    ("domino energy is CV^2", `Quick, test_domino_energy_double);
    ("leakage scales with area", `Quick, test_leakage_scales_with_area);
    ("activity bounds", `Quick, test_activity_bounds);
    ("constant nets silent", `Quick, test_constant_net_never_toggles);
    ("estimate deterministic/positive", `Quick, test_estimate_deterministic_and_positive);
    ("power linear in frequency", `Quick, test_power_linear_in_frequency);
    ("domino costs more", `Quick, test_domino_costs_more);
    ("downsizing saves power", `Quick, test_downsizing_saves_power);
    ("sequential activity", `Quick, test_sequential_activity);
  ]
