(* Tests for FSM generation, loop closure (Gap_synth.Sequential), and the
   retiming bound extraction (Gap_retime.Extract). *)

module Fsm = Gap_datapath.Fsm
module Netlist = Gap_netlist.Netlist
module Sim = Gap_netlist.Sim
module Libgen = Gap_liberty.Libgen

let lib = lazy (Libgen.make Gap_tech.Tech.asic_025um Libgen.rich)

let synthesize_fsm ?(encoding = Fsm.Binary) spec =
  let g = Fsm.to_aig ~encoding spec in
  let comb = Gap_synth.Mapper.map_aig ~lib:(Lazy.force lib) ~name:spec.Fsm.fsm_name g in
  let sbits = Fsm.state_bits encoding spec.Fsm.n_states in
  let loops =
    List.init sbits (fun b -> (Printf.sprintf "state%d" b, Printf.sprintf "next%d" b))
  in
  Gap_synth.Sequential.close_loops ~loops comb

(* drive the netlist and the reference side by side *)
let check_against_reference ?(cycles = 400) ?(seed = 13L) spec nl =
  let rng = Gap_util.Rng.create ~seed () in
  let state = ref spec.Fsm.reset_state in
  let st = ref (Sim.initial nl) in
  for cycle = 1 to cycles do
    let ins = Array.init spec.Fsm.n_inputs (fun _ -> Gap_util.Rng.bool rng) in
    let outs, st' = Sim.step nl !st ins in
    let next_state, ref_outs = Fsm.reference_step spec !state ins in
    if outs <> ref_outs then
      Alcotest.failf "%s: output mismatch at cycle %d" spec.Fsm.fsm_name cycle;
    state := next_state;
    st := st'
  done

let test_bus_interface_binary () =
  let nl = synthesize_fsm Fsm.bus_interface in
  Alcotest.(check int) "interface ports" 3 (Netlist.num_inputs nl);
  Alcotest.(check int) "outputs" 3 (Netlist.num_outputs nl);
  Alcotest.(check int) "three state flops (8 states)" 3 (List.length (Netlist.flops nl));
  Alcotest.(check bool) "clean" true (Gap_netlist.Check.is_clean nl);
  check_against_reference Fsm.bus_interface nl

let test_bus_interface_onehot () =
  let nl = synthesize_fsm ~encoding:Fsm.Onehot Fsm.bus_interface in
  Alcotest.(check int) "eight one-hot flops" 8 (List.length (Netlist.flops nl));
  (* one-hot reset state: all-zero registers decode as reset via the
     recovery term, so behaviour still matches from power-up *)
  check_against_reference Fsm.bus_interface nl

let test_counter_fsm () =
  let spec = Fsm.counter ~bits:4 in
  let nl = synthesize_fsm spec in
  check_against_reference ~cycles:200 spec nl;
  (* count 40 enabled cycles from reset: output = 40 mod 16 = 8 *)
  let st = ref (Sim.initial nl) in
  let last = ref [||] in
  for _ = 1 to 40 do
    let outs, st' = Sim.step nl !st [| true |] in
    last := outs;
    st := st'
  done;
  (* output during cycle k shows the state after k-1 increments *)
  Alcotest.(check int) "counter value during cycle 40" (39 mod 16)
    (Gap_datapath.Word.value !last)

let test_fsm_invalid_state_recovery () =
  (* force an invalid binary code (states 8..15 unused would need 4 bits;
     with 8 states all 3-bit codes are used, so use a 5-state machine) *)
  let spec =
    {
      Fsm.fsm_name = "mod5";
      n_states = 5;
      n_inputs = 1;
      n_outputs = 3;
      reset_state = 0;
      next = (fun s m -> if m = 1 then (s + 1) mod 5 else s);
      out = (fun s _ -> s);
    }
  in
  let nl = synthesize_fsm spec in
  check_against_reference ~cycles:100 spec nl

let test_close_loops_rejects_unknown_ports () =
  let g = Fsm.to_aig Fsm.bus_interface in
  let comb = Gap_synth.Mapper.map_aig ~lib:(Lazy.force lib) g in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Gap_synth.Sequential.close_loops ~loops:[ ("nope", "next0") ] comb);
       false
     with Invalid_argument _ -> true)

(* --- retiming bounds --- *)

module Extract = Gap_retime.Extract

let test_fsm_loop_pins_retiming () =
  let nl = synthesize_fsm Fsm.bus_interface in
  let bound = Extract.retiming_bound_ps nl in
  let sta = Extract.sta_period_ps nl in
  Alcotest.(check bool) "bound positive and below STA" true (bound > 100. && bound <= sta);
  (* the loop floor: several gate delays, not collapsible to one cell *)
  let fo4 = Gap_tech.Tech.fo4_ps Gap_tech.Tech.asic_025um in
  Alcotest.(check bool) "loop costs multiple FO4" true (bound > 3. *. fo4)

let test_pipeline_headroom_and_depth () =
  let build stages =
    let g = Gap_datapath.Multiplier.array_multiplier ~width:6 in
    let effort = { Gap_synth.Flow.default_effort with Gap_synth.Flow.tilos_moves = 0 } in
    let nl = (Gap_synth.Flow.run ~lib:(Lazy.force lib) ~effort g).Gap_synth.Flow.netlist in
    ignore (Gap_retime.Pipeline.pipeline ~stages nl);
    nl
  in
  let b3 = Extract.retiming_bound_ps (build 3) in
  let b5 = Extract.retiming_bound_ps (build 5) in
  Alcotest.(check bool) "more ranks, lower retiming floor" true (b5 < b3);
  Alcotest.(check bool) "cutset pipeline leaves rebalancing headroom" true
    (Extract.retiming_headroom (build 3) > 1.05)

let test_extract_headroom_at_least_one () =
  let nl = synthesize_fsm (Fsm.counter ~bits:3) in
  Alcotest.(check bool) "headroom >= 1" true (Extract.retiming_headroom nl >= 1. -. 1e-6)

let test_extract_feasibility_monotone () =
  let nl = synthesize_fsm Fsm.bus_interface in
  let t = Extract.of_netlist nl in
  let bound = Extract.retiming_bound_ps nl in
  Alcotest.(check bool) "above bound feasible" true (Extract.feasible t ~period_ps:(bound +. 5.));
  Alcotest.(check bool) "below bound infeasible" false
    (Extract.feasible t ~period_ps:(bound /. 2.))

let suite =
  [
    ("bus interface (binary)", `Quick, test_bus_interface_binary);
    ("bus interface (one-hot)", `Quick, test_bus_interface_onehot);
    ("counter fsm", `Quick, test_counter_fsm);
    ("invalid-state recovery", `Quick, test_fsm_invalid_state_recovery);
    ("close_loops rejects unknown ports", `Quick, test_close_loops_rejects_unknown_ports);
    ("fsm loop pins retiming", `Quick, test_fsm_loop_pins_retiming);
    ("pipeline headroom and depth", `Quick, test_pipeline_headroom_and_depth);
    ("headroom at least one", `Quick, test_extract_headroom_at_least_one);
    ("feasibility monotone", `Quick, test_extract_feasibility_monotone);
  ]
