(* Tests for Gap_sta: hand-computed arrivals, slack/required invariants,
   sequential timing with setup/clk->q/skew. *)

module Netlist = Gap_netlist.Netlist
module Sta = Gap_sta.Sta
module Library = Gap_liberty.Library
module Cell = Gap_liberty.Cell
module Libgen = Gap_liberty.Libgen

let lib = lazy (Libgen.make Gap_tech.Tech.asic_025um Libgen.rich)
let cell base drive = Option.get (Library.find (Lazy.force lib) ~base ~drive)
let check_close msg tol expected actual = Alcotest.(check (float tol)) msg expected actual

(* chain of n X1 inverters, input -> out *)
let inv_chain n =
  let nl = Netlist.create ~lib:(Lazy.force lib) "chain" in
  let cur = ref (Netlist.add_input nl "in") in
  for _ = 1 to n do
    let i = Netlist.add_cell nl (cell "INV" 1.) [| !cur |] in
    cur := Netlist.out_net nl i
  done;
  ignore (Netlist.set_output nl "out" !cur);
  nl

let test_inverter_chain_arrival () =
  (* each stage drives one X1 inverter input except the last (port, no load):
     stage delay = intrinsic + R * cin; hand-compute from the cell data *)
  let nl = inv_chain 4 in
  let sta = Sta.analyze nl in
  let inv = cell "INV" 1. in
  let loaded = inv.Cell.intrinsic_ps +. (inv.Cell.drive_res_kohm *. inv.Cell.input_cap_ff) in
  let unloaded = inv.Cell.intrinsic_ps in
  check_close "4-stage chain" 1e-6 ((3. *. loaded) +. unloaded) sta.Sta.min_period_ps

let test_fo4_of_inverter_chain () =
  (* an inverter driving 4 inverters has delay exactly one FO4 *)
  let nl = Netlist.create ~lib:(Lazy.force lib) "fo4" in
  let input = Netlist.add_input nl "in" in
  let drv = Netlist.add_cell nl (cell "INV" 1.) [| input |] in
  let mid = Netlist.out_net nl drv in
  for k = 0 to 3 do
    let i = Netlist.add_cell nl (cell "INV" 1.) [| mid |] in
    ignore (Netlist.set_output nl (Printf.sprintf "o%d" k) (Netlist.out_net nl i))
  done;
  let sta = Sta.analyze nl in
  (* first stage = FO4, second stage unloaded = intrinsic *)
  let inv = cell "INV" 1. in
  let fo4 = Gap_tech.Tech.fo4_ps Gap_tech.Tech.asic_025um in
  check_close "FO4 + unloaded stage" 1e-6 (fo4 +. inv.Cell.intrinsic_ps) sta.Sta.min_period_ps

let test_slack_invariants () =
  let g = Gap_datapath.Adders.cla_adder 8 in
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force lib) g in
  let sta = Sta.analyze nl in
  (* slack is never negative against the min period, and ~0 on the critical
     endpoint *)
  check_close "critical slack zero" 1e-6 0. sta.Sta.critical.Sta.slack_ps;
  for net = 0 to Netlist.num_nets nl - 1 do
    Alcotest.(check bool) "no negative slack at min period" true (Sta.slack sta net >= -1e-6)
  done

let test_criticality_bounds () =
  let g = Gap_datapath.Adders.ripple_adder 8 in
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force lib) g in
  let sta = Sta.analyze nl in
  for net = 0 to Netlist.num_nets nl - 1 do
    let c = Sta.net_criticality sta net in
    Alcotest.(check bool) "0 <= c <= 1" true (c >= 0. && c <= 1. +. 1e-9)
  done

let test_critical_path_structure () =
  let nl = inv_chain 5 in
  let sta = Sta.analyze nl in
  (* the path visits the input then every inverter *)
  Alcotest.(check int) "path steps" 6 (List.length sta.Sta.critical.Sta.steps);
  let arrivals = List.map (fun (s : Sta.step) -> s.Sta.arrival_ps) sta.Sta.critical.Sta.steps in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "arrivals increase" true (increasing arrivals);
  (* every instance on the path is flagged *)
  List.iter
    (fun (s : Sta.step) ->
      match s.Sta.inst with
      | Some i -> Alcotest.(check bool) "on critical path" true (Sta.instance_on_critical_path sta i)
      | None -> ())
    sta.Sta.critical.Sta.steps

let with_flops () =
  (* in -> INV -> DFF -> INV -> out *)
  let nl = Netlist.create ~lib:(Lazy.force lib) "seq" in
  let input = Netlist.add_input nl "in" in
  let i1 = Netlist.add_cell nl (cell "INV" 1.) [| input |] in
  let flop = Netlist.add_cell nl (Library.smallest_flop (Lazy.force lib)) [| Netlist.out_net nl i1 |] in
  let i2 = Netlist.add_cell nl (cell "INV" 1.) [| Netlist.out_net nl flop |] in
  ignore (Netlist.set_output nl "out" (Netlist.out_net nl i2));
  nl

let test_sequential_endpoints () =
  let nl = with_flops () in
  let sta = Sta.analyze nl in
  Alcotest.(check int) "two endpoints (flop D + output)" 2 sta.Sta.endpoint_count;
  (* min period covers the slower of: in->D + setup, clk->q -> out *)
  let inv = cell "INV" 1. in
  let flop = Library.smallest_flop (Lazy.force lib) in
  let seq = Option.get (Cell.seq_timing flop) in
  let stage1 = inv.Cell.intrinsic_ps +. (inv.Cell.drive_res_kohm *. flop.Cell.input_cap_ff) in
  let launch =
    seq.Cell.clk_to_q_ps +. (flop.Cell.drive_res_kohm *. inv.Cell.input_cap_ff)
    +. inv.Cell.intrinsic_ps
  in
  let expect = Float.max (stage1 +. seq.Cell.setup_ps) launch in
  check_close "min period" 1e-5 expect sta.Sta.min_period_ps

let test_skew_charges_flop_paths () =
  let nl = with_flops () in
  let no_skew = (Sta.analyze nl).Sta.min_period_ps in
  let skewed = (Sta.analyze ~config:(Sta.config_with_skew 100.) nl).Sta.min_period_ps in
  (* skew is charged only at flop endpoints, so the min period grows by at
     most the skew (exactly the skew when the register path dominates) *)
  Alcotest.(check bool) "skew increases min period" true (skewed > no_skew);
  Alcotest.(check bool) "by at most the skew" true (skewed -. no_skew <= 100. +. 1e-6)

let test_wire_delay_included () =
  let nl = inv_chain 3 in
  let base = (Sta.analyze nl).Sta.min_period_ps in
  (* annotate some wire delay on the middle net *)
  Netlist.set_wire_delay_ps nl 2 50.;
  let with_wire = (Sta.analyze nl).Sta.min_period_ps in
  check_close "wire delay added" 1e-6 (base +. 50.) with_wire

let test_input_arrival_config () =
  let nl = inv_chain 2 in
  let base = (Sta.analyze nl).Sta.min_period_ps in
  let cfg = { Sta.default_config with Sta.input_arrival_ps = 200. } in
  let shifted = (Sta.analyze ~config:cfg nl).Sta.min_period_ps in
  check_close "input arrival shifts" 1e-6 (base +. 200.) shifted

let test_derate_scales_delays () =
  let nl = inv_chain 4 in
  let base = (Sta.analyze nl).Sta.min_period_ps in
  let cfg = { Sta.default_config with Sta.derate = 1.25 } in
  check_close "comb path scales linearly" 1e-6 (1.25 *. base)
    ((Sta.analyze ~config:cfg nl).Sta.min_period_ps)

let test_derate_signoff_corner () =
  (* the library's quoted worst-case speed: nominal x signoff_speed *)
  let nl = with_flops () in
  let base = (Sta.analyze nl).Sta.min_period_ps in
  let signoff = Gap_variation.Model.signoff_speed
      (Gap_variation.Model.make ~fab_mean:Gap_variation.Model.slow_fab
         Gap_variation.Model.mature)
  in
  let cfg = { Sta.default_config with Sta.derate = 1. /. signoff } in
  let slow = (Sta.analyze ~config:cfg nl).Sta.min_period_ps in
  (* setup margins don't scale, so the period grows by at most the derate *)
  Alcotest.(check bool) "slower at the corner" true (slow > base);
  Alcotest.(check bool) "bounded by full derate" true (slow <= base /. signoff +. 1e-6)

(* --- hold analysis --- *)

module Hold = Gap_sta.Hold

let test_hold_clean_combinational () =
  let nl = inv_chain 3 in
  let h = Hold.analyze nl in
  Alcotest.(check int) "no flops, nothing to check" 0 h.Hold.checked_endpoints;
  Alcotest.(check int) "no violations" 0 (Hold.violation_count h)

let test_hold_flop_chain () =
  (* DFF -> DFF direct connection: min path = clk->q, hold tiny: clean at
     zero skew, violated when skew exceeds clk->q - hold *)
  let nl = Netlist.create ~lib:(Lazy.force lib) "shift" in
  let input = Netlist.add_input nl "in" in
  let flop_cell = Library.smallest_flop (Lazy.force lib) in
  let f1 = Netlist.add_cell nl flop_cell [| input |] in
  let f2 = Netlist.add_cell nl flop_cell [| Netlist.out_net nl f1 |] in
  ignore (Netlist.set_output nl "q" (Netlist.out_net nl f2));
  let seq = Option.get (Cell.seq_timing flop_cell) in
  let clean = Hold.analyze ~skew_ps:0. nl in
  Alcotest.(check int) "two endpoints" 2 clean.Hold.checked_endpoints;
  Alcotest.(check int) "clean at zero skew" 0 (Hold.violation_count clean);
  let margin = seq.Cell.clk_to_q_ps -. seq.Cell.hold_ps in
  let bad = Hold.analyze ~skew_ps:(margin +. 50.) nl in
  Alcotest.(check bool) "violated under excess skew" true (Hold.violation_count bad >= 1);
  check_close "padding equals the shortfall" 1e-6 50. (Hold.padding_needed_ps bad)

let test_hold_min_arrival_is_min () =
  (* two parallel paths of different depth into a flop: min arrival takes the
     short one *)
  let nl = Netlist.create ~lib:(Lazy.force lib) "paths" in
  let input = Netlist.add_input nl "in" in
  let inv1 = Netlist.add_cell nl (cell "INV" 1.) [| input |] in
  let inv2 = Netlist.add_cell nl (cell "INV" 1.) [| Netlist.out_net nl inv1 |] in
  let and2 = Netlist.add_cell nl (cell "AND2" 1.) [| Netlist.out_net nl inv1; Netlist.out_net nl inv2 |] in
  let f = Netlist.add_cell nl (Library.smallest_flop (Lazy.force lib)) [| Netlist.out_net nl and2 |] in
  ignore (Netlist.set_output nl "q" (Netlist.out_net nl f));
  (* pin the inputs to the edge so the combinational min path is exercised *)
  let h = Hold.analyze ~input_min_arrival_ps:0. nl in
  let inv = cell "INV" 1. in
  let a2 = cell "AND2" 1. in
  (* min path: input -> inv1 -> and2 (intrinsic-only delays) *)
  check_close "min arrival" 1e-6
    (inv.Cell.intrinsic_ps +. a2.Cell.intrinsic_ps)
    h.Hold.min_arrival.(Netlist.out_net nl and2)

let test_report_renders () =
  let nl = inv_chain 3 in
  let sta = Sta.analyze nl in
  let s = Gap_sta.Report.summary sta ~lib:(Lazy.force lib) in
  Alcotest.(check bool) "summary nonempty" true (String.length s > 10);
  let table = Gap_sta.Report.path_table sta in
  Alcotest.(check bool) "table mentions arrival" true
    (let sub = "arrival" in
     let n = String.length sub and m = String.length table in
     let rec go i = i + n <= m && (String.sub table i n = sub || go (i + 1)) in
     go 0)

let suite =
  [
    ("inverter chain arrival", `Quick, test_inverter_chain_arrival);
    ("FO4 via netlist", `Quick, test_fo4_of_inverter_chain);
    ("slack invariants", `Quick, test_slack_invariants);
    ("criticality bounds", `Quick, test_criticality_bounds);
    ("critical path structure", `Quick, test_critical_path_structure);
    ("sequential endpoints", `Quick, test_sequential_endpoints);
    ("skew charges flop paths", `Quick, test_skew_charges_flop_paths);
    ("wire delay included", `Quick, test_wire_delay_included);
    ("input arrival config", `Quick, test_input_arrival_config);
    ("report renders", `Quick, test_report_renders);
    ("derate scales delays", `Quick, test_derate_scales_delays);
    ("derate signoff corner", `Quick, test_derate_signoff_corner);
    ("hold: combinational clean", `Quick, test_hold_clean_combinational);
    ("hold: flop chain vs skew", `Quick, test_hold_flop_chain);
    ("hold: min arrival", `Quick, test_hold_min_arrival_is_min);
  ]
