(* Tests for Gap_synth: cuts, balancing, mapping, sizing, buffering, flow.
   The load-bearing property throughout is functional equivalence: every
   transform must preserve the circuit's function. *)

module Aig = Gap_logic.Aig
module Cuts = Gap_synth.Cuts
module Netlist = Gap_netlist.Netlist
module Sim = Gap_netlist.Sim
module Sta = Gap_sta.Sta
module Library = Gap_liberty.Library
module Libgen = Gap_liberty.Libgen

let tech = Gap_tech.Tech.asic_025um
let rich = lazy (Libgen.make tech Libgen.rich)
let poor = lazy (Libgen.make tech Libgen.poor)
let typical = lazy (Libgen.make tech Libgen.typical)

(* netlist vs aig equivalence on random vectors *)
let netlist_matches_aig ?(vectors = 300) g nl =
  let rng = Gap_util.Rng.create ~seed:99L () in
  let n = Aig.num_inputs g in
  let ok = ref true in
  for _ = 1 to vectors do
    let ins = Array.init n (fun _ -> Gap_util.Rng.bool rng) in
    let want = Aig.eval g ins in
    let got = Sim.eval nl (Sim.initial nl) ins in
    if want <> got then ok := false
  done;
  !ok

(* --- cuts --- *)

let test_cuts_trivial_inputs () =
  let g = Aig.create () in
  let a = Aig.add_input g "a" and b = Aig.add_input g "b" in
  let ab = Aig.and_ g a b in
  Aig.add_output g "y" ab;
  let cuts = Cuts.enumerate g in
  let a_id = Aig.id_of_lit a in
  Alcotest.(check int) "input has only trivial cut" 1 (List.length cuts.(a_id));
  let node_cuts = cuts.(Aig.id_of_lit ab) in
  Alcotest.(check bool) "and node has trivial + leaf cut" true (List.length node_cuts >= 2)

let test_cut_function () =
  let g = Aig.create () in
  let a = Aig.add_input g "a" and b = Aig.add_input g "b" and c = Aig.add_input g "c" in
  let ab = Aig.and_ g a b in
  let abc = Aig.and_ g ab (Aig.negate c) in
  Aig.add_output g "y" abc;
  let cut = { Cuts.leaves = [| Aig.id_of_lit a; Aig.id_of_lit b; Aig.id_of_lit c |] } in
  let f = Cuts.cut_function g (Aig.id_of_lit abc) cut in
  for m = 0 to 7 do
    let bit i = m land (1 lsl i) <> 0 in
    Alcotest.(check bool) "cut function" (bit 0 && bit 1 && not (bit 2)) (Gap_logic.Truthtable.eval f m)
  done

let test_cuts_k_bound () =
  let g = Gap_datapath.Adders.ripple_adder 8 in
  let cuts = Cuts.enumerate ~k:4 g in
  Array.iter (List.iter (fun c -> Alcotest.(check bool) "cut <= 4 leaves" true (Cuts.size c <= 4))) cuts

(* --- balance --- *)

let test_balance_chain_depth () =
  (* a long AND chain balances to log depth *)
  let g = Aig.create () in
  let inputs = Array.init 16 (fun i -> Aig.add_input g (Printf.sprintf "x%d" i)) in
  let acc = Array.fold_left (fun acc l -> Aig.and_ g acc l) Aig.lit_true inputs in
  Aig.add_output g "y" acc;
  Alcotest.(check int) "chain depth" 15 (Aig.depth g);
  let b = Gap_synth.Balance.balance g in
  Alcotest.(check int) "balanced depth" 4 (Aig.depth b);
  let rng = Gap_util.Rng.create () in
  Alcotest.(check bool) "equivalent" true (Aig.equivalent_random g b rng)

let balance_preserves_function =
  QCheck.Test.make ~name:"balance preserves random logic" ~count:30
    QCheck.(int_range 0 10000)
    (fun seed ->
      let g =
        Gap_datapath.Random_logic.generate ~seed:(Int64.of_int seed) ~inputs:12
          ~outputs:6 ~gates:150 ()
      in
      let b = Gap_synth.Balance.balance g in
      let rng = Gap_util.Rng.create () in
      Aig.depth b <= Aig.depth g + 1 && Aig.equivalent_random g b rng)

let test_balance_preserves_adder () =
  let g = Gap_datapath.Adders.cla_adder 12 in
  let b = Gap_synth.Balance.balance g in
  let rng = Gap_util.Rng.create () in
  Alcotest.(check bool) "adder equivalent after balance" true (Aig.equivalent_random g b rng)

(* --- mapper --- *)

let test_mapper_equivalence_rich () =
  let g = Gap_datapath.Adders.cla_adder 10 in
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force rich) g in
  Alcotest.(check bool) "mapped = aig (rich)" true (netlist_matches_aig g nl);
  Alcotest.(check bool) "clean" true (Gap_netlist.Check.is_clean nl)

let test_mapper_equivalence_poor () =
  let g = Gap_datapath.Multiplier.array_multiplier ~width:5 in
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force poor) g in
  Alcotest.(check bool) "mapped = aig (poor, NAND/NOR/INV only)" true (netlist_matches_aig g nl)

let test_mapper_area_mode () =
  let g = Gap_datapath.Adders.kogge_stone_adder 12 in
  let d = Gap_synth.Mapper.map_aig ~lib:(Lazy.force rich) ~mode:Gap_synth.Mapper.Delay g in
  let a = Gap_synth.Mapper.map_aig ~lib:(Lazy.force rich) ~mode:Gap_synth.Mapper.Area g in
  Alcotest.(check bool) "area mode equivalent" true (netlist_matches_aig g a);
  Alcotest.(check bool) "area mode not larger" true
    (Netlist.area_um2 a <= Netlist.area_um2 d +. 1e-6);
  let ds = Sta.analyze d and als = Sta.analyze a in
  Alcotest.(check bool) "delay mode not slower" true
    (ds.Sta.min_period_ps <= als.Sta.min_period_ps +. 1e-6)

let mapper_random_equivalence =
  QCheck.Test.make ~name:"mapper preserves random logic" ~count:15
    QCheck.(int_range 0 10000)
    (fun seed ->
      let g =
        Gap_datapath.Random_logic.generate ~seed:(Int64.of_int seed) ~inputs:10
          ~outputs:5 ~gates:120 ()
      in
      let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force typical) g in
      netlist_matches_aig ~vectors:100 g nl)

let test_mapper_constant_outputs () =
  let g = Aig.create () in
  let a = Aig.add_input g "a" in
  Aig.add_output g "zero" (Aig.and_ g a (Aig.negate a));
  Aig.add_output g "one" Aig.lit_true;
  Aig.add_output g "pass" a;
  Aig.add_output g "inv" (Aig.negate a);
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force rich) g in
  Alcotest.(check bool) "constants and wires map" true (netlist_matches_aig ~vectors:4 g nl)

let test_mapper_two_pass () =
  let g = Gap_datapath.Adders.kogge_stone_adder 16 in
  let one = Gap_synth.Mapper.map_aig ~lib:(Lazy.force rich) ~passes:1 g in
  let two = Gap_synth.Mapper.map_aig ~lib:(Lazy.force rich) ~passes:2 g in
  Alcotest.(check bool) "two-pass equivalent" true (netlist_matches_aig g two);
  let p1 = (Sta.analyze one).Sta.min_period_ps in
  let p2 = (Sta.analyze two).Sta.min_period_ps in
  (* load feedback should not make things meaningfully worse *)
  Alcotest.(check bool) "two-pass within 5% or better" true (p2 <= p1 *. 1.05)

let test_mapper_estimate_positive () =
  let g = Gap_datapath.Adders.ripple_adder 8 in
  let est = Gap_synth.Mapper.estimated_arrival_ps ~lib:(Lazy.force rich) g in
  Alcotest.(check bool) "estimate positive" true (est > 0.)

(* --- sizing --- *)

let test_tilos_never_worsens () =
  let g = Gap_datapath.Adders.ripple_adder 12 in
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force rich) g in
  let before = (Sta.analyze nl).Sta.min_period_ps in
  let r = Gap_synth.Sizing.tilos nl in
  Alcotest.(check bool) "no regression" true (r.Gap_synth.Sizing.final_period_ps <= before +. 1e-6);
  Alcotest.(check bool) "equivalent after sizing" true (netlist_matches_aig g nl)

let test_tilos_gains_under_wire_load () =
  let g = Gap_datapath.Adders.cla_adder 12 in
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force rich) g in
  Gap_synth.Sizing.set_all_drives nl ~drive:1.;
  (* hang a fat wire on a critical net *)
  let sta = Sta.analyze nl in
  let victim =
    List.find_map (fun (s : Sta.step) -> if s.Sta.inst <> None then Some s.Sta.net else None)
      sta.Sta.critical.Sta.steps
  in
  (match victim with Some net -> Netlist.set_wire_cap_ff nl net 150. | None -> ());
  let before = (Sta.analyze nl).Sta.min_period_ps in
  let r = Gap_synth.Sizing.tilos nl in
  Alcotest.(check bool) "sizing helps with wire load" true
    (r.Gap_synth.Sizing.final_period_ps < before -. 1.);
  Alcotest.(check bool) "moves made" true (r.Gap_synth.Sizing.moves > 0)

let test_set_all_drives () =
  let g = Gap_datapath.Adders.ripple_adder 6 in
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force rich) g in
  Gap_synth.Sizing.set_all_drives nl ~drive:2.;
  List.iter
    (fun i ->
      let c = Netlist.cell_of nl i in
      Alcotest.(check (float 1e-9)) ("drive of " ^ c.Gap_liberty.Cell.name) 2. c.Gap_liberty.Cell.drive)
    (Netlist.combinational_instances nl)

let test_minimize_drives () =
  let g = Gap_datapath.Adders.ripple_adder 6 in
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force rich) g in
  Gap_synth.Sizing.minimize_drives nl;
  List.iter
    (fun i ->
      let c = Netlist.cell_of nl i in
      Alcotest.(check (float 1e-9)) "at smallest" 0.5 c.Gap_liberty.Cell.drive)
    (Netlist.combinational_instances nl)

let test_downsize_noncritical () =
  let g = Gap_datapath.Adders.cla_adder 8 in
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force rich) g in
  Gap_synth.Sizing.set_all_drives nl ~drive:4.;
  let before_area = Netlist.area_um2 nl in
  let before_period = (Sta.analyze nl).Sta.min_period_ps in
  let accepted = Gap_synth.Sizing.downsize_noncritical ~slack_margin_ps:1. nl in
  Alcotest.(check bool) "some downsizes accepted" true (accepted > 0);
  Alcotest.(check bool) "area shrank" true (Netlist.area_um2 nl < before_area);
  Alcotest.(check bool) "period held" true
    ((Sta.analyze nl).Sta.min_period_ps <= before_period +. 1.1)

(* --- buffering --- *)

let high_fanout_netlist fanout =
  let lib = Lazy.force rich in
  let nl = Netlist.create ~lib "fanout" in
  let a = Netlist.add_input nl "a" in
  let inv = Netlist.add_cell nl (Option.get (Library.find lib ~base:"INV" ~drive:1.)) [| a |] in
  let src = Netlist.out_net nl inv in
  for k = 0 to fanout - 1 do
    let i = Netlist.add_cell nl (Option.get (Library.find lib ~base:"INV" ~drive:1.)) [| src |] in
    ignore (Netlist.set_output nl (Printf.sprintf "o%d" k) (Netlist.out_net nl i))
  done;
  nl

let test_buffering_limits_fanout () =
  let nl = high_fanout_netlist 40 in
  let inserted = Gap_synth.Buffering.buffer_fanout ~max_fanout:6 nl in
  Alcotest.(check bool) "buffers inserted" true (inserted > 0);
  for net = 0 to Netlist.num_nets nl - 1 do
    Alcotest.(check bool) "fanout bounded" true (List.length (Netlist.sinks_of nl net) <= 6)
  done;
  Alcotest.(check bool) "clean" true (Gap_netlist.Check.is_clean nl)

let test_buffering_preserves_function () =
  let nl = high_fanout_netlist 20 in
  let eval_all n =
    List.map (fun v -> Sim.eval n (Sim.initial n) [| v |]) [ true; false ]
  in
  let before = eval_all nl in
  ignore (Gap_synth.Buffering.buffer_fanout ~max_fanout:4 nl);
  Alcotest.(check bool) "function preserved" true (before = eval_all nl)

let test_buffering_inverter_pairs_in_poor_lib () =
  (* the poor library has no buffers; pairs of inverters must be used *)
  let lib = Lazy.force poor in
  let nl = Netlist.create ~lib "fanout-poor" in
  let a = Netlist.add_input nl "a" in
  let inv_cell = Option.get (Library.find lib ~base:"INV" ~drive:1.) in
  let inv = Netlist.add_cell nl inv_cell [| a |] in
  let src = Netlist.out_net nl inv in
  for k = 0 to 19 do
    let i = Netlist.add_cell nl inv_cell [| src |] in
    ignore (Netlist.set_output nl (Printf.sprintf "o%d" k) (Netlist.out_net nl i))
  done;
  let evals n = List.map (fun v -> Sim.eval n (Sim.initial n) [| v |]) [ true; false ] in
  let before = evals nl in
  let inserted = Gap_synth.Buffering.buffer_fanout ~max_fanout:6 nl in
  Alcotest.(check bool) "inserted pairs" true (inserted >= 2);
  Alcotest.(check bool) "polarity preserved" true (before = evals nl)

(* --- hold fixing --- *)

let test_hold_fix_cleans () =
  let g = Gap_datapath.Multiplier.array_multiplier ~width:5 in
  let effort = { Gap_synth.Flow.default_effort with Gap_synth.Flow.tilos_moves = 0 } in
  let nl = (Gap_synth.Flow.run ~lib:(Lazy.force rich) ~effort g).Gap_synth.Flow.netlist in
  ignore (Gap_retime.Pipeline.pipeline ~stages:3 nl);
  let skew = 150. in
  let before = Gap_sta.Hold.violation_count (Gap_sta.Hold.analyze ~skew_ps:skew nl) in
  Alcotest.(check bool) "violations exist under heavy skew" true (before > 0);
  let outputs_before =
    let rng = Gap_util.Rng.create ~seed:2L () in
    let n = Gap_logic.Aig.num_inputs g in
    List.init 15 (fun _ -> Array.init n (fun _ -> Gap_util.Rng.bool rng))
  in
  let sim_before = Sim.run nl outputs_before in
  let r = Gap_synth.Hold_fix.fix ~skew_ps:skew nl in
  Alcotest.(check bool) "clean afterwards" true r.Gap_synth.Hold_fix.clean;
  Alcotest.(check bool) "buffers inserted" true (r.Gap_synth.Hold_fix.buffers_inserted > 0);
  Alcotest.(check int) "hold now clean" 0
    (Gap_sta.Hold.violation_count (Gap_sta.Hold.analyze ~skew_ps:skew nl));
  Alcotest.(check bool) "behaviour preserved" true (Sim.run nl outputs_before = sim_before)

let test_hold_fix_noop_when_clean () =
  let g = Gap_datapath.Adders.ripple_adder 6 in
  let nl = Gap_synth.Mapper.map_aig ~lib:(Lazy.force rich) g in
  let r = Gap_synth.Hold_fix.fix ~skew_ps:0. nl in
  Alcotest.(check int) "nothing inserted" 0 r.Gap_synth.Hold_fix.buffers_inserted;
  Alcotest.(check bool) "clean" true r.Gap_synth.Hold_fix.clean

(* --- flow --- *)

let test_flow_end_to_end () =
  let g = Gap_datapath.Alu.alu 8 in
  let outcome = Gap_synth.Flow.run ~lib:(Lazy.force rich) ~name:"alu8" g in
  Alcotest.(check bool) "flow result equivalent" true
    (netlist_matches_aig g outcome.Gap_synth.Flow.netlist);
  Alcotest.(check bool) "sta present" true (outcome.Gap_synth.Flow.sta.Sta.min_period_ps > 0.);
  Alcotest.(check bool) "sizing ran" true (outcome.Gap_synth.Flow.sizing <> None)

let test_flow_low_effort_is_worse () =
  let g = Gap_datapath.Adders.ripple_adder 16 in
  let hi = Gap_synth.Flow.run ~lib:(Lazy.force rich) g in
  let lo = Gap_synth.Flow.run ~lib:(Lazy.force rich) ~effort:Gap_synth.Flow.low_effort g in
  Alcotest.(check bool) "default effort at least as fast" true
    (hi.Gap_synth.Flow.sta.Sta.min_period_ps
    <= lo.Gap_synth.Flow.sta.Sta.min_period_ps +. 1e-6)

let suite =
  [
    ("cuts: inputs trivial", `Quick, test_cuts_trivial_inputs);
    ("cuts: cut function", `Quick, test_cut_function);
    ("cuts: k bound respected", `Quick, test_cuts_k_bound);
    ("balance: chain to log depth", `Quick, test_balance_chain_depth);
    QCheck_alcotest.to_alcotest balance_preserves_function;
    ("balance: adder equivalence", `Quick, test_balance_preserves_adder);
    ("mapper: equivalence (rich)", `Quick, test_mapper_equivalence_rich);
    ("mapper: equivalence (poor)", `Quick, test_mapper_equivalence_poor);
    ("mapper: area mode", `Quick, test_mapper_area_mode);
    QCheck_alcotest.to_alcotest mapper_random_equivalence;
    ("mapper: constants and wires", `Quick, test_mapper_constant_outputs);
    ("mapper: two-pass refinement", `Quick, test_mapper_two_pass);
    ("mapper: estimate positive", `Quick, test_mapper_estimate_positive);
    ("tilos: never worsens", `Quick, test_tilos_never_worsens);
    ("tilos: gains under wire load", `Quick, test_tilos_gains_under_wire_load);
    ("sizing: set_all_drives", `Quick, test_set_all_drives);
    ("sizing: minimize_drives", `Quick, test_minimize_drives);
    ("sizing: downsize non-critical", `Quick, test_downsize_noncritical);
    ("buffering: limits fanout", `Quick, test_buffering_limits_fanout);
    ("buffering: preserves function", `Quick, test_buffering_preserves_function);
    ("buffering: inverter pairs", `Quick, test_buffering_inverter_pairs_in_poor_lib);
    ("hold fix: cleans violations", `Quick, test_hold_fix_cleans);
    ("hold fix: no-op when clean", `Quick, test_hold_fix_noop_when_clean);
    ("flow: end to end", `Quick, test_flow_end_to_end);
    ("flow: low effort worse", `Quick, test_flow_low_effort_is_worse);
  ]
