(* Tests for Gap_core: factors, gap model, methodology composition,
   reporting. The factor computations are cached, so these integration tests
   pay the synthesis cost once. *)

module F = Gap_core.Factors
module GM = Gap_core.Gap_model
module M = Gap_core.Methodology

let factors = lazy (F.all ())

let test_factor_count_and_names () =
  let fs = Lazy.force factors in
  Alcotest.(check int) "five factors" 5 (List.length fs);
  let names = List.map (fun (f : F.t) -> f.F.factor_name) fs in
  Alcotest.(check bool) "unique names" true
    (List.length (List.sort_uniq compare names) = 5)

let test_factors_near_paper () =
  List.iter
    (fun (f : F.t) ->
      let rel = f.F.modeled /. f.F.paper_max in
      Alcotest.(check bool)
        (Printf.sprintf "%s within 30%% of paper (%.2f vs %.2f)" f.F.factor_name
           f.F.modeled f.F.paper_max)
        true
        (rel > 0.70 && rel < 1.30))
    (Lazy.force factors)

let test_ranked_matches_paper_conclusion () =
  let ranked = F.ranked (Lazy.force factors) in
  let names = List.map (fun (f : F.t) -> f.F.factor_name) ranked in
  (* "the two most significant factors are pipelining and process variation" *)
  Alcotest.(check string) "pipelining first"
    "micro-architecture (pipelining, logic levels)" (List.nth names 0);
  Alcotest.(check string) "process variation second"
    "process variation and accessibility" (List.nth names 1)

let test_composite_range () =
  let fs = Lazy.force factors in
  let c = F.composite fs in
  Alcotest.(check bool) "composite near the paper's ~18x" true (c > 12. && c < 26.);
  Alcotest.(check (float 0.2)) "paper composite" 17.8 (F.paper_composite fs)

let test_residuals () =
  let steps = GM.residual_analysis (Lazy.force factors) in
  Alcotest.(check int) "five steps" 5 (List.length steps);
  let r2 = (List.nth steps 1).GM.residual in
  let r3 = (List.nth steps 2).GM.residual in
  Alcotest.(check bool) "pipe+process residual 2-3x" true (r2 >= 2.0 && r2 <= 3.0);
  Alcotest.(check bool) "+dynamic residual ~1.6-2x" true (r3 >= 1.4 && r3 <= 2.1);
  (* residuals decrease monotonically and end at 1 *)
  let residuals = List.map (fun s -> s.GM.residual) steps in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone decreasing" true (decreasing residuals);
  Alcotest.(check (float 1e-6)) "full explanation" 1.0 (List.nth residuals 4)

let test_methodology_ordering () =
  let t = GM.speed_multiplier M.typical_asic in
  let g = GM.speed_multiplier M.good_asic in
  let c = GM.speed_multiplier M.custom in
  Alcotest.(check bool) "typical < good < custom" true (t < g && g < c);
  Alcotest.(check bool) "all at least 1" true (t >= 1.0)

let test_predicted_gap_in_band () =
  let gap = GM.predicted_asic_custom_gap () in
  Alcotest.(check bool) "6-8x" true (gap >= GM.observed_gap_lo && gap <= GM.observed_gap_hi)

let test_gap_between_antisymmetric () =
  let ab = GM.gap_between M.custom M.typical_asic in
  let ba = GM.gap_between M.typical_asic M.custom in
  Alcotest.(check (float 1e-9)) "reciprocal" 1.0 (ab *. ba)

let test_observed_constants () =
  Alcotest.(check (float 1e-9)) "lo" 6. GM.observed_gap_lo;
  Alcotest.(check (float 1e-9)) "hi" 8. GM.observed_gap_hi;
  Alcotest.(check bool) "mid between" true
    (GM.observed_gap_mid > 6. && GM.observed_gap_mid < 8.)

let test_describe () =
  let s = M.describe M.custom in
  Alcotest.(check bool) "mentions name" true
    (String.length s > 10 && String.sub s 0 6 = "custom")

let test_pipelining_depth_monotone () =
  let with_stages n = { M.typical_asic with M.pipelining = M.Pipelined n } in
  let s2 = GM.speed_multiplier (with_stages 2) in
  let s5 = GM.speed_multiplier (with_stages 5) in
  let s8 = GM.speed_multiplier (with_stages 8) in
  Alcotest.(check bool) "deeper pipelines score higher" true (s2 < s5 && s5 < s8)

let test_report_tables_render () =
  let fs = Lazy.force factors in
  let t1 = Gap_core.Report.factor_table fs in
  let t2 = Gap_core.Report.residual_table (GM.residual_analysis fs) in
  let t3 = Gap_core.Report.methodology_table [ M.typical_asic; M.custom ] in
  List.iter
    (fun t -> Alcotest.(check bool) "table nonempty" true (String.length t > 100))
    [ t1; t2; t3 ]

let suite =
  [
    ("factor count and names", `Quick, test_factor_count_and_names);
    ("factors near paper values", `Quick, test_factors_near_paper);
    ("ranking matches Sec. 9", `Quick, test_ranked_matches_paper_conclusion);
    ("composite range", `Quick, test_composite_range);
    ("residual analysis", `Quick, test_residuals);
    ("methodology ordering", `Quick, test_methodology_ordering);
    ("predicted gap in 6-8x", `Quick, test_predicted_gap_in_band);
    ("gap_between antisymmetric", `Quick, test_gap_between_antisymmetric);
    ("observed constants", `Quick, test_observed_constants);
    ("describe", `Quick, test_describe);
    ("pipelining depth monotone", `Quick, test_pipelining_depth_monotone);
    ("report tables render", `Quick, test_report_tables_render);
  ]
