(* Tests for Gap_logic: truth tables, NPN classification, expressions, AIGs. *)

module Tt = Gap_logic.Truthtable
module Npn = Gap_logic.Npn
module Expr = Gap_logic.Expr
module Aig = Gap_logic.Aig

let tt_gen vars =
  QCheck.Gen.map (fun bits -> Tt.create ~vars bits) QCheck.Gen.int64

let tt_arb vars = QCheck.make ~print:(Format.asprintf "%a" Tt.pp) (tt_gen vars)

(* --- truth tables --- *)

let test_tt_var () =
  let x0 = Tt.var ~vars:2 0 and x1 = Tt.var ~vars:2 1 in
  Alcotest.(check bool) "x0 at m=1" true (Tt.eval x0 1);
  Alcotest.(check bool) "x0 at m=2" false (Tt.eval x0 2);
  Alcotest.(check bool) "x1 at m=2" true (Tt.eval x1 2);
  Alcotest.(check bool) "x1 at m=1" false (Tt.eval x1 1)

let test_tt_ops () =
  let vars = 3 in
  let a = Tt.var ~vars 0 and b = Tt.var ~vars 1 in
  let and_ab = Tt.logand a b in
  for m = 0 to 7 do
    Alcotest.(check bool) "and semantics" (m land 1 <> 0 && m land 2 <> 0) (Tt.eval and_ab m)
  done;
  Alcotest.(check bool) "xor differs from or" false
    (Tt.equal (Tt.logxor a b) (Tt.logor a b))

let de_morgan =
  QCheck.Test.make ~name:"tt De Morgan" ~count:300
    (QCheck.pair (tt_arb 4) (tt_arb 4))
    (fun (a, b) ->
      Tt.equal (Tt.lognot (Tt.logand a b)) (Tt.logor (Tt.lognot a) (Tt.lognot b)))

let shannon_expansion =
  QCheck.Test.make ~name:"tt Shannon expansion" ~count:300 (tt_arb 4) (fun f ->
      let x = Tt.var ~vars:4 2 in
      let f1 = Tt.cofactor f 2 true and f0 = Tt.cofactor f 2 false in
      Tt.equal f (Tt.logor (Tt.logand x f1) (Tt.logand (Tt.lognot x) f0)))

let test_tt_depends () =
  let vars = 3 in
  let f = Tt.logand (Tt.var ~vars 0) (Tt.var ~vars 2) in
  Alcotest.(check bool) "depends on 0" true (Tt.depends_on f 0);
  Alcotest.(check bool) "not on 1" false (Tt.depends_on f 1);
  Alcotest.(check int) "support" 2 (Tt.support_size f)

let permute_roundtrip =
  QCheck.Test.make ~name:"tt permute by inverse permutation" ~count:200 (tt_arb 4)
    (fun f ->
      let p = [| 2; 0; 3; 1 |] in
      let inv = Array.make 4 0 in
      Array.iteri (fun i pi -> inv.(pi) <- i) p;
      Tt.equal f (Tt.permute (Tt.permute f p) inv))

let negate_involution =
  QCheck.Test.make ~name:"tt negate_input involution" ~count:200 (tt_arb 4) (fun f ->
      Tt.equal f (Tt.negate_input (Tt.negate_input f 1) 1))

let test_tt_monotone () =
  let vars = 3 in
  let and3 = Tt.logand (Tt.logand (Tt.var ~vars 0) (Tt.var ~vars 1)) (Tt.var ~vars 2) in
  let maj =
    Tt.of_fun ~vars (fun m ->
        let b i = m land (1 lsl i) <> 0 in
        (b 0 && b 1) || (b 0 && b 2) || (b 1 && b 2))
  in
  let xor = Tt.logxor (Tt.var ~vars 0) (Tt.var ~vars 1) in
  Alcotest.(check bool) "and3 monotone" true (Tt.is_monotone and3);
  Alcotest.(check bool) "maj monotone" true (Tt.is_monotone maj);
  Alcotest.(check bool) "xor not monotone" false (Tt.is_monotone xor);
  Alcotest.(check bool) "nand not positive unate" false
    (Tt.is_positive_unate_in (Tt.lognot and3) 0)

let test_tt_expand () =
  let f = Tt.logand (Tt.var ~vars:2 0) (Tt.var ~vars:2 1) in
  let g = Tt.expand f ~vars:4 in
  Alcotest.(check int) "vars" 4 (Tt.vars g);
  Alcotest.(check bool) "same function" true (Tt.eval g 0b1011 && not (Tt.eval g 0b1001))

let test_tt_count_ones () =
  Alcotest.(check int) "and2 has one minterm" 1
    (Tt.count_ones (Tt.logand (Tt.var ~vars:2 0) (Tt.var ~vars:2 1)));
  Alcotest.(check int) "const true 3 vars" 8 (Tt.count_ones (Tt.const_true ~vars:3))

(* --- NPN --- *)

let test_npn_permutation_count () =
  Alcotest.(check int) "4!" 24 (List.length (Npn.permutations 4));
  Alcotest.(check int) "3!" 6 (List.length (Npn.permutations 3))

let npn_canonical_invariant =
  QCheck.Test.make ~name:"npn canonical is transform-invariant" ~count:150
    (QCheck.pair (tt_arb 3) (QCheck.make QCheck.Gen.(pair (int_bound 5) (pair (int_bound 7) bool))))
    (fun (f, (perm_idx, (neg_mask, out_neg))) ->
      let perm = List.nth (Npn.permutations 3) perm_idx in
      let t = { Npn.perm; input_neg = neg_mask; output_neg = out_neg } in
      let g = Npn.apply f t in
      Int64.equal (Npn.canonical_key f) (Npn.canonical_key g))

let npn_match_roundtrip =
  QCheck.Test.make ~name:"npn match_against wires correctly" ~count:150
    (QCheck.pair (tt_arb 3) (tt_arb 3))
    (fun (target, candidate) ->
      match Npn.match_against ~target ~candidate with
      | None -> not (Int64.equal (Npn.canonical_key target) (Npn.canonical_key candidate))
      | Some t -> Tt.equal (Npn.apply candidate t) target)

let test_npn_best_match_cost () =
  (* AND2 as target, NAND2 as candidate: best wiring needs exactly one
     negation (the output) *)
  let vars = 2 in
  let and2 = Tt.logand (Tt.var ~vars 0) (Tt.var ~vars 1) in
  let nand2 = Tt.lognot and2 in
  match Npn.best_match ~target:and2 ~candidate:nand2 with
  | None -> Alcotest.fail "NAND2 matches AND2 up to NPN"
  | Some t -> Alcotest.(check int) "one negation" 1 (Npn.negation_cost t)

let test_npn_identity () =
  let f = Tt.var ~vars:3 1 in
  let t = Npn.identity 3 in
  Alcotest.(check bool) "identity applies" true (Tt.equal f (Npn.apply f t));
  Alcotest.(check int) "zero cost" 0 (Npn.negation_cost t)

(* --- expr --- *)

let test_expr_eval () =
  let open Expr in
  let e = mux ~sel:(var 2) (var 0) (var 1) in
  let env m i = m land (1 lsl i) <> 0 in
  for m = 0 to 7 do
    let expect = if m land 4 <> 0 then m land 2 <> 0 else m land 1 <> 0 in
    Alcotest.(check bool) "mux semantics" expect (eval e (env m))
  done

let test_expr_majority () =
  let open Expr in
  let e = majority (var 0) (var 1) (var 2) in
  let tt = to_truthtable ~vars:3 e in
  Alcotest.(check int) "maj minterms" 4 (Tt.count_ones tt);
  Alcotest.(check bool) "monotone" true (Tt.is_monotone tt)

let test_expr_max_var () =
  let open Expr in
  Alcotest.(check int) "const" (-1) (max_var tru);
  Alcotest.(check int) "nested" 5 (max_var (var 2 &&& not_ (var 5)))

(* --- aig --- *)

let test_aig_simplifications () =
  let g = Aig.create () in
  let a = Aig.add_input g "a" in
  Alcotest.(check int) "x & 0" Aig.lit_false (Aig.and_ g a Aig.lit_false);
  Alcotest.(check int) "x & 1" a (Aig.and_ g a Aig.lit_true);
  Alcotest.(check int) "x & x" a (Aig.and_ g a a);
  Alcotest.(check int) "x & !x" Aig.lit_false (Aig.and_ g a (Aig.negate a));
  Alcotest.(check int) "no nodes created" 0 (Aig.num_ands g)

let test_aig_strash () =
  let g = Aig.create () in
  let a = Aig.add_input g "a" and b = Aig.add_input g "b" in
  let n1 = Aig.and_ g a b in
  let n2 = Aig.and_ g b a in
  Alcotest.(check int) "structural hashing" n1 n2;
  Alcotest.(check int) "one node" 1 (Aig.num_ands g)

let test_aig_eval_gates () =
  let g = Aig.create () in
  let a = Aig.add_input g "a" and b = Aig.add_input g "b" in
  Aig.add_output g "xor" (Aig.xor_ g a b);
  Aig.add_output g "or" (Aig.or_ g a b);
  Aig.add_output g "nand" (Aig.negate (Aig.and_ g a b));
  let cases = [ (false, false); (false, true); (true, false); (true, true) ] in
  List.iter
    (fun (x, y) ->
      let out = Aig.eval g [| x; y |] in
      Alcotest.(check bool) "xor" (x <> y) out.(0);
      Alcotest.(check bool) "or" (x || y) out.(1);
      Alcotest.(check bool) "nand" (not (x && y)) out.(2))
    cases

let test_aig_mux () =
  let g = Aig.create () in
  let a = Aig.add_input g "a" and b = Aig.add_input g "b" and s = Aig.add_input g "s" in
  Aig.add_output g "y" (Aig.mux_ g ~sel:s a b);
  for m = 0 to 7 do
    let x = m land 1 <> 0 and y = m land 2 <> 0 and sel = m land 4 <> 0 in
    let out = Aig.eval g [| x; y; sel |] in
    Alcotest.(check bool) "mux" (if sel then y else x) out.(0)
  done

let test_aig_eval64_matches_eval () =
  let g = Gap_datapath.Adders.ripple_adder 6 in
  let rng = Gap_util.Rng.create () in
  let n = Aig.num_inputs g in
  for _ = 1 to 50 do
    let ins = Array.init n (fun _ -> Gap_util.Rng.bool rng) in
    let packed = Array.map (fun b -> if b then -1L else 0L) ins in
    let o1 = Aig.eval g ins in
    let o64 = Aig.eval64 g packed in
    Array.iteri
      (fun i b ->
        Alcotest.(check bool) "bit-parallel agrees" b (Int64.logand o64.(i) 1L = 1L))
      o1
  done

let test_aig_depth_and_levels () =
  let g = Aig.create () in
  let a = Aig.add_input g "a" and b = Aig.add_input g "b" and c = Aig.add_input g "c" in
  let ab = Aig.and_ g a b in
  let abc = Aig.and_ g ab c in
  Aig.add_output g "y" abc;
  Alcotest.(check int) "depth 2" 2 (Aig.depth g);
  let lev = Aig.levels g in
  Alcotest.(check int) "input level" 0 lev.(Aig.id_of_lit a);
  Alcotest.(check int) "top level" 2 lev.(Aig.id_of_lit abc)

let test_aig_cone_of () =
  let g = Aig.create () in
  let a = Aig.add_input g "a" and b = Aig.add_input g "b" and c = Aig.add_input g "c" in
  let ab = Aig.and_ g a b in
  let bc = Aig.and_ g b c in
  let cone = Aig.cone_of g [ ab ] in
  Alcotest.(check int) "cone size" 1 (Array.length cone);
  Alcotest.(check int) "cone content" (Aig.id_of_lit ab) cone.(0);
  let cone2 = Aig.cone_of g [ ab; bc ] in
  Alcotest.(check int) "joint cone" 2 (Array.length cone2)

let test_aig_fanout_counts () =
  let g = Aig.create () in
  let a = Aig.add_input g "a" and b = Aig.add_input g "b" in
  let ab = Aig.and_ g a b in
  let x = Aig.and_ g ab a in
  Aig.add_output g "y" x;
  Aig.add_output g "z" ab;
  let f = Aig.fanout_counts g in
  Alcotest.(check int) "a used twice" 2 f.(Aig.id_of_lit a);
  Alcotest.(check int) "ab used twice (and + output)" 2 f.(Aig.id_of_lit ab)

let test_aig_equivalence_check () =
  (* xor built two ways *)
  let build f =
    let g = Aig.create () in
    let a = Aig.add_input g "a" and b = Aig.add_input g "b" in
    Aig.add_output g "y" (f g a b);
    g
  in
  let g1 = build (fun g a b -> Aig.xor_ g a b) in
  let g2 =
    build (fun g a b ->
        Aig.or_ g (Aig.and_ g a (Aig.negate b)) (Aig.and_ g (Aig.negate a) b))
  in
  let g3 = build (fun g a b -> Aig.or_ g a b) in
  let rng = Gap_util.Rng.create () in
  Alcotest.(check bool) "equivalent xors" true (Aig.equivalent_random g1 g2 rng);
  Alcotest.(check bool) "xor is not or" false (Aig.equivalent_random g1 g3 rng)

let test_aig_of_expr () =
  let g = Aig.create () in
  let a = Aig.add_input g "a" and b = Aig.add_input g "b" and c = Aig.add_input g "c" in
  let e = Expr.(majority (var 0) (var 1) (var 2)) in
  Aig.add_output g "m" (Aig.of_expr g e [| a; b; c |]);
  for m = 0 to 7 do
    let bit i = m land (1 lsl i) <> 0 in
    let out = Aig.eval g [| bit 0; bit 1; bit 2 |] in
    let expect = Expr.eval e bit in
    Alcotest.(check bool) "majority via aig" expect out.(0)
  done

let suite =
  [
    ("tt var", `Quick, test_tt_var);
    ("tt ops", `Quick, test_tt_ops);
    QCheck_alcotest.to_alcotest de_morgan;
    QCheck_alcotest.to_alcotest shannon_expansion;
    ("tt depends/support", `Quick, test_tt_depends);
    QCheck_alcotest.to_alcotest permute_roundtrip;
    QCheck_alcotest.to_alcotest negate_involution;
    ("tt monotone/unate", `Quick, test_tt_monotone);
    ("tt expand", `Quick, test_tt_expand);
    ("tt count_ones", `Quick, test_tt_count_ones);
    ("npn permutation count", `Quick, test_npn_permutation_count);
    QCheck_alcotest.to_alcotest npn_canonical_invariant;
    QCheck_alcotest.to_alcotest npn_match_roundtrip;
    ("npn best match cost", `Quick, test_npn_best_match_cost);
    ("npn identity", `Quick, test_npn_identity);
    ("expr mux eval", `Quick, test_expr_eval);
    ("expr majority", `Quick, test_expr_majority);
    ("expr max_var", `Quick, test_expr_max_var);
    ("aig simplifications", `Quick, test_aig_simplifications);
    ("aig structural hashing", `Quick, test_aig_strash);
    ("aig gate eval", `Quick, test_aig_eval_gates);
    ("aig mux", `Quick, test_aig_mux);
    ("aig eval64 vs eval", `Quick, test_aig_eval64_matches_eval);
    ("aig depth/levels", `Quick, test_aig_depth_and_levels);
    ("aig cone_of", `Quick, test_aig_cone_of);
    ("aig fanout counts", `Quick, test_aig_fanout_counts);
    ("aig equivalence check", `Quick, test_aig_equivalence_check);
    ("aig of_expr", `Quick, test_aig_of_expr);
  ]
