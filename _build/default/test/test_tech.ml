(* Tests for Gap_tech: process presets, the FO4 rule, generation scaling. *)

module Tech = Gap_tech.Tech
module Fo4 = Gap_tech.Fo4
module Scaling = Gap_tech.Scaling

let check_close msg tol expected actual = Alcotest.(check (float tol)) msg expected actual

let test_fo4_rule () =
  check_close "0.18um Leff -> 90 ps" 1e-9 90. (Fo4.of_leff_um 0.18);
  check_close "0.15um Leff -> 75 ps" 1e-9 75. (Fo4.of_leff_um 0.15);
  check_close "paper footnote: 13 FO4 @ 75 ps ~ 1 GHz" 30. 1000.
    (Fo4.frequency_mhz ~depth:13. ~fo4_ps:75.)

let test_fo4_roundtrip () =
  let period = Fo4.period_of_depth ~depth:44. ~fo4_ps:90. in
  check_close "depth roundtrip" 1e-9 44. (Fo4.depth_of_period ~period_ps:period ~fo4_ps:90.)

let test_presets_sane () =
  List.iter
    (fun (t : Tech.t) ->
      Alcotest.(check bool) (t.Tech.name ^ " leff < drawn") true (t.Tech.leff_um < t.Tech.drawn_um);
      Alcotest.(check bool) "positive wire R" true (t.Tech.wire_r_kohm_per_um > 0.);
      Alcotest.(check bool) "positive wire C" true (t.Tech.wire_c_ff_per_um > 0.);
      Alcotest.(check bool) "metal layers" true (t.Tech.metal_layers >= 4);
      Alcotest.(check bool) "tau = fo4/5" true
        (Float.abs ((Tech.tau_ps t *. 5.) -. Tech.fo4_ps t) < 1e-9))
    Tech.all_presets

let test_custom_faster_than_asic_at_same_node () =
  Alcotest.(check bool) "custom 0.25um FO4 below ASIC 0.25um" true
    (Tech.fo4_ps Tech.custom_025um < Tech.fo4_ps Tech.asic_025um)

let test_scaling () =
  check_close "two generations" 1e-9 2.25 (Scaling.speedup_over_generations 2);
  check_close "7x gap ~ 4.8 generations" 0.05 4.8 (Scaling.equivalent_generations 7.);
  Alcotest.(check (option (float 1e-9))) "next after 0.25" (Some 0.18)
    (Scaling.next_generation 0.25);
  Alcotest.(check (option (float 1e-9))) "end of table" None (Scaling.next_generation 0.13)

let test_pp () =
  let s = Format.asprintf "%a" Tech.pp Tech.asic_025um in
  Alcotest.(check bool) "mentions FO4" true (String.length s > 10)

let suite =
  [
    ("FO4 rule", `Quick, test_fo4_rule);
    ("FO4 roundtrip", `Quick, test_fo4_roundtrip);
    ("presets sane", `Quick, test_presets_sane);
    ("custom faster at same node", `Quick, test_custom_faster_than_asic_at_same_node);
    ("generation scaling", `Quick, test_scaling);
    ("pretty printer", `Quick, test_pp);
  ]
