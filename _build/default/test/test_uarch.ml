(* Tests for Gap_uarch: processor presets, CPI model, pipeline performance
   model. *)

module P = Gap_uarch.Processors
module Cpi = Gap_uarch.Cpi
module PM = Gap_uarch.Pipeline_model

let check_close msg tol expected actual = Alcotest.(check (float tol)) msg expected actual

let test_processor_model_accuracy () =
  List.iter
    (fun (p : P.t) ->
      Alcotest.(check bool)
        (p.P.proc_name ^ " within 8%")
        true
        (Float.abs (P.model_error p) < 0.08))
    P.all

let test_processor_gaps () =
  let gap = P.gap_vs ~fast:P.ibm_ppc_1ghz ~slow:P.typical_asic in
  Alcotest.(check bool) "IBM vs ASIC in 6..8" true (gap >= 6. && gap <= 8.);
  Alcotest.(check bool) "custom faster than every ASIC" true
    (List.for_all
       (fun (p : P.t) ->
         match p.P.style with
         | P.Asic -> p.P.reported_mhz < P.ibm_ppc_1ghz.P.reported_mhz
         | P.Custom -> true)
       P.all)

let test_fo4_rule () =
  check_close "xtensa fo4" 1e-9 90. (P.fo4_ps P.tensilica_xtensa);
  check_close "ppc fo4" 1e-9 75. (P.fo4_ps P.ibm_ppc_1ghz)

let test_cpi_components () =
  let w = Cpi.spec_like in
  let shallow = Cpi.cpi ~pipeline_stages:2 ~issue_width:1 w in
  let deep = Cpi.cpi ~pipeline_stages:20 ~issue_width:1 w in
  Alcotest.(check bool) "deeper pipe pays more CPI" true (deep > shallow);
  Alcotest.(check bool) "cpi >= issue-limited base" true (shallow >= 1.);
  let wide = Cpi.cpi ~pipeline_stages:5 ~issue_width:4 w in
  Alcotest.(check bool) "multi-issue lowers CPI" true
    (wide < Cpi.cpi ~pipeline_stages:5 ~issue_width:1 w)

let test_cpi_ilp_limit () =
  let w = { Cpi.spec_like with Cpi.ilp = 2.0 } in
  let cpi4 = Cpi.cpi ~pipeline_stages:5 ~issue_width:4 w in
  let cpi8 = Cpi.cpi ~pipeline_stages:5 ~issue_width:8 w in
  check_close "issue beyond ILP is wasted" 1e-9 cpi4 cpi8

let test_workload_ordering () =
  (* control-dominated code suffers most from depth, DSP least *)
  let penalty w =
    Cpi.cpi ~pipeline_stages:15 ~issue_width:1 w -. Cpi.cpi ~pipeline_stages:2 ~issue_width:1 w
  in
  Alcotest.(check bool) "control > spec > dsp" true
    (penalty Cpi.control_dominated > penalty Cpi.spec_like
    && penalty Cpi.spec_like > penalty Cpi.dsp_like)

let test_flush_penalty () =
  check_close "penalty scales" 1e-9 6. (Cpi.flush_penalty ~pipeline_stages:10)

let test_pipeline_model_frequency () =
  let c = PM.asic_default in
  Alcotest.(check bool) "deeper clocks faster" true
    (PM.frequency_mhz c ~stages:5 > PM.frequency_mhz c ~stages:1);
  (* frequency saturates at the overhead bound *)
  let f_inf = 1e6 /. (c.PM.overhead_fo4 *. c.PM.fo4_ps) in
  Alcotest.(check bool) "bounded by overhead" true (PM.frequency_mhz c ~stages:100 < f_inf)

let test_pipeline_model_speedup () =
  let c = PM.asic_default in
  let s = PM.speedup_vs_unpipelined c ~stages:5 in
  (* 44 FO4 + 3.5 overhead over 5 stages: (47.5)/(8.8+3.5) = 3.86 *)
  check_close "5-stage speedup" 0.05 3.86 s

let test_optimal_depth_interior () =
  let stages, mips = PM.optimal_depth PM.asic_default in
  Alcotest.(check bool) "deeper than 1" true (stages > 1);
  Alcotest.(check bool) "perf positive" true (mips > 0.);
  let opt w =
    fst (PM.optimal_depth ~max_stages:40 { PM.asic_default with PM.workload = w })
  in
  (* branch-heavy control code has an interior optimum; DSP code keeps
     profiting from depth far longer — the Sec. 4.1 trade-off *)
  Alcotest.(check bool) "control optimum interior" true
    (opt Gap_uarch.Cpi.control_dominated < 40);
  Alcotest.(check bool) "dsp wants deeper pipes than control" true
    (opt Gap_uarch.Cpi.dsp_like > opt Gap_uarch.Cpi.control_dominated)

let test_sweep_shape () =
  let rows = PM.sweep ~max_stages:10 PM.asic_default in
  Alcotest.(check int) "10 rows" 10 (List.length rows);
  List.iter
    (fun (stages, f, ipc, mips) ->
      Alcotest.(check bool) "stages positive" true (stages >= 1);
      check_close "mips = f * ipc" 1e-6 (f *. ipc) mips)
    rows

let test_custom_beats_asic_config () =
  let fa = PM.frequency_mhz PM.asic_default ~stages:5 in
  let fc = PM.frequency_mhz PM.custom_default ~stages:5 in
  Alcotest.(check bool) "custom config clocks faster" true (fc > fa)

let suite =
  [
    ("processor model accuracy", `Quick, test_processor_model_accuracy);
    ("processor gaps", `Quick, test_processor_gaps);
    ("FO4 rule", `Quick, test_fo4_rule);
    ("CPI components", `Quick, test_cpi_components);
    ("CPI ILP limit", `Quick, test_cpi_ilp_limit);
    ("workload ordering", `Quick, test_workload_ordering);
    ("flush penalty", `Quick, test_flush_penalty);
    ("pipeline model frequency", `Quick, test_pipeline_model_frequency);
    ("pipeline model speedup", `Quick, test_pipeline_model_speedup);
    ("optimal depth interior", `Quick, test_optimal_depth_interior);
    ("sweep shape", `Quick, test_sweep_shape);
    ("custom config faster", `Quick, test_custom_beats_asic_config);
  ]
