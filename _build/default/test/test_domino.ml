(* Tests for Gap_domino: dual-rail domino synthesis. *)

module Aig = Gap_logic.Aig
module Dualrail = Gap_domino.Dualrail
module Netlist = Gap_netlist.Netlist
module Sim = Gap_netlist.Sim
module Cell = Gap_liberty.Cell
module Libgen = Gap_liberty.Libgen

let tech = Gap_tech.Tech.asic_025um
let domino_lib = lazy (Libgen.make tech Libgen.domino)
let static_lib = lazy (Libgen.make tech Libgen.rich)

let equivalent ?(vectors = 200) g nl =
  let rng = Gap_util.Rng.create ~seed:123L () in
  let n = Aig.num_inputs g in
  let ok = ref true in
  for _ = 1 to vectors do
    let ins = Array.init n (fun _ -> Gap_util.Rng.bool rng) in
    if Aig.eval g ins <> Sim.eval nl (Sim.initial nl) ins then ok := false
  done;
  !ok

let test_dualrail_equivalence_adder () =
  let g = Gap_datapath.Adders.cla_adder 8 in
  let nl = Dualrail.map_aig ~domino_lib:(Lazy.force domino_lib) g in
  Alcotest.(check bool) "domino adder equivalent" true (equivalent g nl);
  Alcotest.(check bool) "clean" true (Gap_netlist.Check.is_clean nl)

let test_dualrail_equivalence_xor_heavy () =
  (* XOR forces both rails everywhere: the stress case for the De Morgan
     bookkeeping *)
  let g = Aig.create () in
  let a = Aig.add_input g "a" and b = Aig.add_input g "b" and c = Aig.add_input g "c" in
  Aig.add_output g "x" (Aig.xor_ g (Aig.xor_ g a b) c);
  Aig.add_output g "nx" (Aig.negate (Aig.xor_ g a b));
  let nl = Dualrail.map_aig ~domino_lib:(Lazy.force domino_lib) g in
  Alcotest.(check bool) "xor3 equivalent" true (equivalent ~vectors:8 g nl)

let dualrail_random_equivalence =
  QCheck.Test.make ~name:"dual-rail preserves random logic" ~count:15
    QCheck.(int_range 0 10000)
    (fun seed ->
      let g =
        Gap_datapath.Random_logic.generate ~seed:(Int64.of_int seed) ~inputs:10
          ~outputs:5 ~gates:100 ()
      in
      let nl = Dualrail.map_aig ~domino_lib:(Lazy.force domino_lib) g in
      equivalent ~vectors:100 g nl)

let test_dualrail_cells_are_monotone_or_input_inverters () =
  let g = Gap_datapath.Adders.kogge_stone_adder 8 in
  let nl = Dualrail.map_aig ~domino_lib:(Lazy.force domino_lib) g in
  for i = 0 to Netlist.num_instances nl - 1 do
    let c = Netlist.cell_of nl i in
    if c.Cell.family = Cell.Domino then
      Alcotest.(check bool) "domino cell monotone" true
        (Gap_logic.Truthtable.is_monotone c.Cell.func)
    else if Cell.is_inverter c then
      (* static inverters only complement primary inputs *)
      Array.iter
        (fun net ->
          match Netlist.driver_of nl net with
          | Netlist.From_input _ -> ()
          | _ -> Alcotest.fail "inverter not at a primary input")
        (Netlist.fanins_of nl i)
  done

let test_dualrail_area_cost () =
  let g = Gap_datapath.Adders.cla_adder 8 in
  let static = Gap_synth.Mapper.map_aig ~lib:(Lazy.force static_lib) g in
  let dom = Dualrail.map_aig ~domino_lib:(Lazy.force domino_lib) g in
  let dom_cells, invs = Dualrail.rails_instantiated dom in
  Alcotest.(check bool) "uses domino cells" true (dom_cells > 0);
  Alcotest.(check bool) "some input inverters" true (invs > 0);
  (* dual-rail costs gates: between 1x and ~3x the static cover *)
  let ratio = float_of_int (Netlist.num_instances dom) /. float_of_int (Netlist.num_instances static) in
  Alcotest.(check bool) "rail duplication visible" true (ratio > 0.8 && ratio < 4.)

let test_dualrail_speed_on_adder () =
  let g = Gap_datapath.Adders.kogge_stone_adder 16 in
  let effort = { Gap_synth.Flow.default_effort with Gap_synth.Flow.tilos_moves = 0 } in
  let static = Gap_synth.Flow.run ~lib:(Lazy.force static_lib) ~effort g in
  let dom = Dualrail.map_aig ~domino_lib:(Lazy.force domino_lib) g in
  ignore (Gap_synth.Buffering.buffer_fanout dom);
  ignore (Gap_synth.Sizing.tilos dom);
  let sp = static.Gap_synth.Flow.sta.Gap_sta.Sta.min_period_ps in
  let dp = (Gap_sta.Sta.analyze dom).Gap_sta.Sta.min_period_ps in
  Alcotest.(check bool) "domino wins on the prefix adder" true (dp < sp)

let test_dualrail_inverter_sharing () =
  (* both rails of the same input complement share one static inverter *)
  let g = Aig.create () in
  let a = Aig.add_input g "a" and b = Aig.add_input g "b" in
  Aig.add_output g "y1" (Aig.and_ g (Aig.negate a) b);
  Aig.add_output g "y2" (Aig.or_ g (Aig.negate a) b);
  let nl = Dualrail.map_aig ~domino_lib:(Lazy.force domino_lib) g in
  let _, invs = Dualrail.rails_instantiated nl in
  Alcotest.(check int) "one inverter for !a" 1 invs

(* --- noise margins --- *)

module Noise = Gap_domino.Noise

let test_noise_margin_ordering () =
  Alcotest.(check bool) "static most robust" true
    (Noise.max_safe_coupling Noise.static_cmos > Noise.max_safe_coupling Noise.domino_keeper);
  Alcotest.(check bool) "keeper helps" true
    (Noise.max_safe_coupling Noise.domino_keeper > Noise.max_safe_coupling Noise.domino_unkeepered)

let test_noise_fails_threshold () =
  Alcotest.(check bool) "under margin safe" false
    (Noise.fails Noise.static_cmos ~coupling_ratio:0.3);
  Alcotest.(check bool) "same coupling kills bare domino" true
    (Noise.fails Noise.domino_unkeepered ~coupling_ratio:0.3)

let test_coupling_of_usage () =
  Alcotest.(check (float 1e-9)) "single occupant no coupling" 0.
    (Noise.coupling_of_usage ~usage:1 ~capacity:8);
  Alcotest.(check bool) "more neighbours more coupling" true
    (Noise.coupling_of_usage ~usage:6 ~capacity:8 > Noise.coupling_of_usage ~usage:3 ~capacity:8);
  Alcotest.(check bool) "saturates" true (Noise.coupling_of_usage ~usage:100 ~capacity:8 <= 0.6)

let test_noise_exposure () =
  let lib = Lazy.force static_lib in
  let nl = Gap_synth.Mapper.map_aig ~lib (Gap_datapath.Adders.cla_adder 8) in
  ignore (Gap_place.Placer.place nl);
  let routed = Gap_place.Router.route nl in
  let s = Noise.exposure Noise.static_cmos nl routed in
  let d = Noise.exposure Noise.domino_unkeepered nl routed in
  Alcotest.(check bool) "domino at least as exposed" true (d.Noise.risk_frac >= s.Noise.risk_frac);
  Alcotest.(check bool) "fractions bounded" true
    (s.Noise.risk_frac >= 0. && d.Noise.risk_frac <= 1.);
  Alcotest.(check int) "totals agree" s.Noise.nets_total d.Noise.nets_total

let suite =
  [
    ("dual-rail adder equivalence", `Quick, test_dualrail_equivalence_adder);
    ("dual-rail xor equivalence", `Quick, test_dualrail_equivalence_xor_heavy);
    QCheck_alcotest.to_alcotest dualrail_random_equivalence;
    ("monotone cells / input inverters only", `Quick, test_dualrail_cells_are_monotone_or_input_inverters);
    ("area cost of rails", `Quick, test_dualrail_area_cost);
    ("domino wins on prefix adder", `Quick, test_dualrail_speed_on_adder);
    ("inverter sharing", `Quick, test_dualrail_inverter_sharing);
    ("noise margin ordering", `Quick, test_noise_margin_ordering);
    ("noise failure threshold", `Quick, test_noise_fails_threshold);
    ("coupling from congestion", `Quick, test_coupling_of_usage);
    ("noise exposure on routed block", `Quick, test_noise_exposure);
  ]
