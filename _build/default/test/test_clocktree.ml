(* Tests for Gap_clocktree: H-tree construction and skew model. *)

module H = Gap_clocktree.Htree

let tech = Gap_tech.Tech.asic_025um

let test_levels_scale_with_sinks () =
  let t1 = H.build ~tech ~die_side_um:10000. ~sinks:16 H.Asic_automated in
  let t2 = H.build ~tech ~die_side_um:10000. ~sinks:16384 H.Asic_automated in
  Alcotest.(check int) "16 sinks = 2 levels" 2 t1.H.levels;
  Alcotest.(check int) "16k sinks = 7 levels" 7 t2.H.levels;
  Alcotest.(check bool) "more levels, more latency" true (t2.H.latency_ps > t1.H.latency_ps)

let test_latency_grows_with_die () =
  let small = H.build ~tech ~die_side_um:2000. ~sinks:1000 H.Asic_automated in
  let big = H.build ~tech ~die_side_um:15000. ~sinks:1000 H.Asic_automated in
  Alcotest.(check bool) "bigger die slower tree" true (big.H.latency_ps > small.H.latency_ps);
  Alcotest.(check bool) "wirelength grows" true (big.H.wirelength_um > small.H.wirelength_um)

let test_custom_beats_asic () =
  let asic = H.build ~tech ~die_side_um:10000. ~sinks:10000 H.Asic_automated in
  let custom = H.build ~tech ~die_side_um:10000. ~sinks:10000 H.Custom_tuned in
  Alcotest.(check (float 1e-9)) "same latency" asic.H.latency_ps custom.H.latency_ps;
  Alcotest.(check bool) "much less skew" true (custom.H.skew_ps < asic.H.skew_ps /. 4.)

let test_skew_fraction () =
  let t = H.build ~tech ~die_side_um:10000. ~sinks:10000 H.Asic_automated in
  let f = H.skew_fraction_of_period t ~period_ps:6666. in
  Alcotest.(check (float 1e-9)) "fraction arithmetic" (t.H.skew_ps /. 6666.) f

let test_speed_gain () =
  let gain =
    H.speed_gain_from_custom_skew ~tech ~die_side_um:10000. ~sinks:20000 ~period_ps:6666.
  in
  Alcotest.(check bool) "gain in 1.0 .. 1.2" true (gain > 1.0 && gain < 1.2)

let test_root_to_leaf_bounded_by_die () =
  let t = H.build ~tech ~die_side_um:10000. ~sinks:100000 H.Asic_automated in
  (* geometric series of 0.75 * side halvings converges below 1.5 x side *)
  Alcotest.(check bool) "wirelength below 1.5 die sides" true (t.H.wirelength_um < 15000.)

let suite =
  [
    ("levels scale with sinks", `Quick, test_levels_scale_with_sinks);
    ("latency grows with die", `Quick, test_latency_grows_with_die);
    ("custom tuning beats ASIC CTS", `Quick, test_custom_beats_asic);
    ("skew fraction", `Quick, test_skew_fraction);
    ("speed gain from custom skew", `Quick, test_speed_gain);
    ("wirelength bounded", `Quick, test_root_to_leaf_bounded_by_die);
  ]
