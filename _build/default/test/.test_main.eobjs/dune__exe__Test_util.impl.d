test/test_util.ml: Alcotest Array Fun Gap_util Int64 List QCheck QCheck_alcotest String
