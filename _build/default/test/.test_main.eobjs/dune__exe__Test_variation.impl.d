test/test_variation.ml: Alcotest Array Gap_datapath Gap_liberty Gap_sta Gap_synth Gap_tech Gap_util Gap_variation Lazy
