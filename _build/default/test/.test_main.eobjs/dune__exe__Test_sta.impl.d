test/test_sta.ml: Alcotest Array Float Gap_datapath Gap_liberty Gap_netlist Gap_sta Gap_synth Gap_tech Gap_variation Lazy List Option Printf String
