test/test_synth.ml: Alcotest Array Gap_datapath Gap_liberty Gap_logic Gap_netlist Gap_retime Gap_sta Gap_synth Gap_tech Gap_util Int64 Lazy List Option Printf QCheck QCheck_alcotest
