test/test_logic.ml: Alcotest Array Format Gap_datapath Gap_logic Gap_util Int64 List QCheck QCheck_alcotest
