test/test_place.ml: Alcotest Array Gap_datapath Gap_liberty Gap_netlist Gap_place Gap_sta Gap_synth Gap_tech Gap_util Hashtbl Int64 Lazy Option Printf QCheck QCheck_alcotest
