test/test_interconnect.ml: Alcotest Float Gap_interconnect Gap_tech
