test/test_power.ml: Alcotest Array Gap_datapath Gap_domino Gap_liberty Gap_netlist Gap_retime Gap_synth Gap_tech Gap_util Lazy Option
