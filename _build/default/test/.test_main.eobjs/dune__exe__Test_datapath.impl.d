test/test_datapath.ml: Alcotest Array Gap_datapath Gap_logic Gap_util List Printf QCheck QCheck_alcotest
