test/test_sequential.ml: Alcotest Array Gap_datapath Gap_liberty Gap_netlist Gap_retime Gap_synth Gap_tech Gap_util Lazy List Printf
