test/test_experiments.ml: Alcotest Gap_experiments List Printf String
