test/test_verilog.ml: Alcotest Array Bytes Gap_datapath Gap_liberty Gap_netlist Gap_retime Gap_sta Gap_synth Gap_tech Gap_util Int64 Lazy List Option QCheck QCheck_alcotest String
