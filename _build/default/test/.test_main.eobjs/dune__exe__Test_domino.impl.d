test/test_domino.ml: Alcotest Array Gap_datapath Gap_domino Gap_liberty Gap_logic Gap_netlist Gap_place Gap_sta Gap_synth Gap_tech Gap_util Int64 Lazy QCheck QCheck_alcotest
