test/test_core.ml: Alcotest Gap_core Lazy List Printf String
