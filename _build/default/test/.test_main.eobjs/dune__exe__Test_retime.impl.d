test/test_retime.ml: Alcotest Array Float Fun Gap_datapath Gap_liberty Gap_logic Gap_netlist Gap_retime Gap_sta Gap_synth Gap_tech Gap_util Gen Int64 Lazy List Printf QCheck QCheck_alcotest
