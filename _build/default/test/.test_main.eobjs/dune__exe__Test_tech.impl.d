test/test_tech.ml: Alcotest Float Format Gap_tech List String
