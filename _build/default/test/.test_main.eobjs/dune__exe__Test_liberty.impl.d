test/test_liberty.ml: Alcotest Array Gap_liberty Gap_logic Gap_tech Lazy List Option Printf String
