test/test_clocktree.ml: Alcotest Gap_clocktree Gap_tech
