test/test_uarch.ml: Alcotest Float Gap_uarch List
