test/test_netlist.ml: Alcotest Array Gap_liberty Gap_netlist Gap_tech Lazy List Option
