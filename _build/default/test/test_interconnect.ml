(* Tests for Gap_interconnect: wire RC, Elmore, repeaters, BACPAC model. *)

module Wire = Gap_interconnect.Wire
module Elmore = Gap_interconnect.Elmore
module Repeater = Gap_interconnect.Repeater
module Bacpac = Gap_interconnect.Bacpac

let tech = Gap_tech.Tech.asic_025um
let check_close msg tol expected actual = Alcotest.(check (float tol)) msg expected actual

let test_wire_scaling () =
  let w1 = Wire.of_tech tech in
  let w2 = Wire.of_tech ~width_mult:2. tech in
  Alcotest.(check bool) "wider wire less resistive" true (w2.Wire.r_kohm_per_um < w1.Wire.r_kohm_per_um);
  Alcotest.(check bool) "wider wire more capacitive" true (w2.Wire.c_ff_per_um > w1.Wire.c_ff_per_um);
  Alcotest.(check bool) "RC product improves" true
    (w2.Wire.r_kohm_per_um *. w2.Wire.c_ff_per_um < w1.Wire.r_kohm_per_um *. w1.Wire.c_ff_per_um)

let test_wire_totals_linear () =
  let w = Wire.of_tech tech in
  check_close "R linear" 1e-9
    (2. *. Wire.total_r_kohm w ~length_um:500.)
    (Wire.total_r_kohm w ~length_um:1000.);
  check_close "C linear" 1e-9
    (2. *. Wire.total_c_ff w ~length_um:500.)
    (Wire.total_c_ff w ~length_um:1000.)

let test_rc_delay_quadratic () =
  let w = Wire.of_tech tech in
  let d1 = Wire.rc_delay_ps w ~length_um:1000. in
  let d2 = Wire.rc_delay_ps w ~length_um:2000. in
  check_close "quadratic in length" 1e-6 (4. *. d1) d2

let test_elmore_closed_vs_segmented () =
  let w = Wire.of_tech tech in
  let closed = Elmore.delay_ps ~r_drv_kohm:1. ~wire:w ~length_um:3000. ~c_load_ff:10. in
  let seg = Elmore.segmented ~sections:256 ~r_drv_kohm:1. ~wire:w ~length_um:3000. ~c_load_ff:10. () in
  (* the discretized ladder converges to within ~12% (0.345RC vs 0.38RC on
     the distributed term) *)
  Alcotest.(check bool) "within 12%" true (Float.abs (seg -. closed) /. closed < 0.12)

let test_elmore_monotone () =
  let w = Wire.of_tech tech in
  let d len = Elmore.delay_ps ~r_drv_kohm:2. ~wire:w ~length_um:len ~c_load_ff:5. in
  Alcotest.(check bool) "monotone in length" true (d 100. < d 200. && d 200. < d 1000.);
  let dl load = Elmore.delay_ps ~r_drv_kohm:2. ~wire:w ~length_um:500. ~c_load_ff:load in
  Alcotest.(check bool) "monotone in load" true (dl 1. < dl 100.)

let test_repeater_count_grows () =
  let w = Wire.of_tech tech in
  let d = Repeater.default_driver tech in
  let n1 = Repeater.optimal_count d w ~length_um:2000. in
  let n2 = Repeater.optimal_count d w ~length_um:10000. in
  Alcotest.(check bool) "longer wire wants more repeaters" true (n2 > n1);
  Alcotest.(check int) "short wire wants none" 0 (Repeater.optimal_count d w ~length_um:100.)

let test_repeater_beats_bare_wire () =
  let w = Wire.of_tech tech in
  let d = Repeater.default_driver tech in
  let bare = Elmore.delay_ps ~r_drv_kohm:d.Repeater.r0_kohm ~wire:w ~length_um:10000. ~c_load_ff:d.Repeater.c0_ff in
  let rep = Repeater.optimal_delay_ps d w ~length_um:10000. in
  Alcotest.(check bool) "repeated 10mm much faster" true (rep < bare /. 4.)

let test_repeated_delay_linear () =
  let w = Wire.of_tech tech in
  let d = Repeater.default_driver tech in
  let d5 = Repeater.optimal_delay_ps d w ~length_um:5000. in
  let d10 = Repeater.optimal_delay_ps d w ~length_um:10000. in
  let ratio = d10 /. d5 in
  Alcotest.(check bool) "roughly linear (1.8..2.2x)" true (ratio > 1.8 && ratio < 2.2)

let test_delay_per_mm_plausible () =
  let w = Wire.of_tech tech in
  let d = Repeater.default_driver tech in
  let per_mm = Repeater.delay_per_mm_ps d w in
  (* 0.25um aluminum: tens of ps per mm with optimal repeaters *)
  Alcotest.(check bool) "30..150 ps/mm" true (per_mm > 30. && per_mm < 150.)

let test_optimal_size_positive () =
  let w = Wire.of_tech tech in
  let d = Repeater.default_driver tech in
  let h = Repeater.optimal_size d w in
  Alcotest.(check bool) "sensible repeater size" true (h > 5. && h < 500.)

let test_bacpac_geometry () =
  let chip = Bacpac.default_chip in
  check_close "die side" 1e-9 10. (Bacpac.die_side_mm chip);
  check_close "cross-chip wire" 1e-6 20000. (Bacpac.cross_chip_length_um chip);
  check_close "local wire" 1e-6 2000. (Bacpac.local_length_um chip)

let test_bacpac_speedup_shape () =
  let chip = Bacpac.default_chip in
  let s d = Bacpac.floorplan_speedup ~tech ~logic_depth_fo4:d ~chip in
  Alcotest.(check bool) "speedup > 1" true (s 44. > 1.);
  Alcotest.(check bool) "shallower logic suffers more from wires" true (s 20. > s 80.);
  let p = Bacpac.path ~tech ~logic_depth_fo4:44. ~wire_length_um:10000. in
  check_close "total = logic + wire" 1e-9
    p.Bacpac.total_ps
    (p.Bacpac.logic_ps +. p.Bacpac.wire_ps)

let test_bacpac_vs_paper_band () =
  let s =
    Bacpac.floorplan_speedup ~tech ~logic_depth_fo4:44. ~chip:Bacpac.default_chip
  in
  Alcotest.(check bool) "44 FO4 speedup in 1.15..1.40" true (s > 1.15 && s < 1.40)

(* --- wire sizing --- *)

let test_wire_opt_beats_minimum () =
  let w, d = Gap_interconnect.Wire_opt.optimal_width tech ~length_um:10000. in
  Alcotest.(check bool) "width above minimum" true (w > 1.);
  let d1 = Gap_interconnect.Wire_opt.delay_at_width tech ~length_um:10000. ~width_mult:1. in
  Alcotest.(check bool) "optimum no slower" true (d <= d1 +. 1e-9)

let test_wire_opt_is_local_minimum () =
  let len = 8000. in
  let w, d = Gap_interconnect.Wire_opt.optimal_width ~max_width:6. tech ~length_um:len in
  let at x = Gap_interconnect.Wire_opt.delay_at_width tech ~length_um:len ~width_mult:x in
  if w > 1.05 && w < 5.95 then begin
    Alcotest.(check bool) "left neighbour worse" true (at (w *. 0.9) >= d -. 1e-6);
    Alcotest.(check bool) "right neighbour worse" true (at (w *. 1.1) >= d -. 1e-6)
  end

let test_wire_opt_gain_reasonable () =
  let gain = Gap_interconnect.Wire_opt.sizing_gain tech ~length_um:10000. in
  Alcotest.(check bool) "gain in 1..2" true (gain >= 1. && gain < 2.)

let suite =
  [
    ("wire width scaling", `Quick, test_wire_scaling);
    ("wire totals linear", `Quick, test_wire_totals_linear);
    ("bare RC quadratic", `Quick, test_rc_delay_quadratic);
    ("elmore closed vs segmented", `Quick, test_elmore_closed_vs_segmented);
    ("elmore monotone", `Quick, test_elmore_monotone);
    ("repeater count grows with length", `Quick, test_repeater_count_grows);
    ("repeaters beat bare wire", `Quick, test_repeater_beats_bare_wire);
    ("repeated delay linear", `Quick, test_repeated_delay_linear);
    ("delay per mm plausible", `Quick, test_delay_per_mm_plausible);
    ("optimal repeater size", `Quick, test_optimal_size_positive);
    ("bacpac geometry", `Quick, test_bacpac_geometry);
    ("bacpac speedup shape", `Quick, test_bacpac_speedup_shape);
    ("bacpac vs paper band", `Quick, test_bacpac_vs_paper_band);
    ("wire sizing beats minimum", `Quick, test_wire_opt_beats_minimum);
    ("wire sizing local minimum", `Quick, test_wire_opt_is_local_minimum);
    ("wire sizing gain", `Quick, test_wire_opt_gain_reasonable);
  ]
