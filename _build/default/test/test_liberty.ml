(* Tests for Gap_liberty: delay model, cells, library lookups, generation. *)

module DM = Gap_liberty.Delay_model
module Cell = Gap_liberty.Cell
module Library = Gap_liberty.Library
module Libgen = Gap_liberty.Libgen
module Tech = Gap_tech.Tech

let tech = Tech.asic_025um
let rich = lazy (Libgen.make tech Libgen.rich)
let poor = lazy (Libgen.make tech Libgen.poor)
let domino = lazy (Libgen.make tech Libgen.domino)

let check_close msg tol expected actual = Alcotest.(check (float tol)) msg expected actual

let test_fo4_calibration () =
  List.iter
    (fun t ->
      let model = DM.of_tech t in
      check_close ("FO4 roundtrip " ^ t.Tech.name) 1e-6 (Tech.fo4_ps t) (DM.fo4_ps model))
    Tech.all_presets

let test_delay_monotone_in_load () =
  let lib = Lazy.force rich in
  Array.iter
    (fun (c : Cell.t) ->
      if c.Cell.kind = Cell.Comb then
        Alcotest.(check bool)
          ("monotone " ^ c.Cell.name)
          true
          (Cell.delay_ps c ~load_ff:20. > Cell.delay_ps c ~load_ff:2.))
    (Library.cells lib)

let test_bigger_drive_is_faster_under_load () =
  let lib = Lazy.force rich in
  let x1 = Option.get (Library.find lib ~base:"NAND2" ~drive:1.) in
  let x8 = Option.get (Library.find lib ~base:"NAND2" ~drive:8.) in
  Alcotest.(check bool) "x8 beats x1 at heavy load" true
    (Cell.delay_ps x8 ~load_ff:100. < Cell.delay_ps x1 ~load_ff:100.);
  Alcotest.(check bool) "x8 has more input cap" true (x8.Cell.input_cap_ff > x1.Cell.input_cap_ff);
  Alcotest.(check bool) "x8 larger" true (x8.Cell.area_um2 > x1.Cell.area_um2)

let test_library_lookups () =
  let lib = Lazy.force rich in
  let ladder = Library.drives_of lib "INV" in
  Alcotest.(check int) "9 inverter sizes" 9 (List.length ladder);
  let drives = List.map (fun (c : Cell.t) -> c.Cell.drive) ladder in
  Alcotest.(check (list (float 1e-9))) "sorted ascending" (List.sort compare drives) drives;
  Alcotest.(check bool) "find missing" true (Library.find lib ~base:"NAND9" ~drive:1. = None)

let test_drive_ladder_navigation () =
  let lib = Lazy.force rich in
  let x2 = Option.get (Library.find lib ~base:"INV" ~drive:2.) in
  let up = Option.get (Library.next_drive_up lib x2) in
  let down = Option.get (Library.next_drive_down lib x2) in
  check_close "up is 3" 1e-9 3. up.Cell.drive;
  check_close "down is 1" 1e-9 1. down.Cell.drive;
  let x16 = Option.get (Library.find lib ~base:"INV" ~drive:16.) in
  Alcotest.(check bool) "top has no up" true (Library.next_drive_up lib x16 = None)

let test_npn_class_lookup () =
  let lib = Lazy.force rich in
  let vars = 2 in
  let and2 =
    Gap_logic.Truthtable.logand (Gap_logic.Truthtable.var ~vars 0)
      (Gap_logic.Truthtable.var ~vars 1)
  in
  let matches = Library.cells_matching lib and2 in
  let bases = List.sort_uniq compare (List.map (fun (c : Cell.t) -> c.Cell.base) matches) in
  Alcotest.(check bool) "AND2 in class" true (List.mem "AND2" bases);
  Alcotest.(check bool) "NAND2 in class (output-negated)" true (List.mem "NAND2" bases);
  Alcotest.(check bool) "NOR2 in class (input-negated)" true (List.mem "NOR2" bases)

let test_inverter_buffer_identification () =
  let lib = Lazy.force rich in
  Alcotest.(check bool) "has inverters" true (Library.inverters lib <> []);
  Alcotest.(check bool) "has buffers" true (Library.buffers lib <> []);
  let inv = Library.smallest_inverter lib in
  Alcotest.(check bool) "is inverter" true (Cell.is_inverter inv);
  Alcotest.(check bool) "not buffer" false (Cell.is_buffer inv);
  check_close "smallest" 1e-9 0.5 inv.Cell.drive

let test_poor_library_shape () =
  let lib = Lazy.force poor in
  Alcotest.(check bool) "no buffers" true (Library.buffers lib = []);
  Alcotest.(check int) "two INV drives" 2 (List.length (Library.drives_of lib "INV"));
  Alcotest.(check bool) "no XOR cell" true (Library.drives_of lib "XOR2" = []);
  Alcotest.(check bool) "no AND cell (single polarity)" true (Library.drives_of lib "AND2" = []);
  Alcotest.(check bool) "smaller than rich" true (Library.size lib < Library.size (Lazy.force rich))

let test_domino_library_monotone () =
  let lib = Lazy.force domino in
  Array.iter
    (fun (c : Cell.t) ->
      match c.Cell.family with
      | Cell.Domino ->
          Alcotest.(check bool)
            ("domino cell monotone: " ^ c.Cell.name)
            true
            (Gap_logic.Truthtable.is_monotone c.Cell.func)
      | Cell.Static_cmos -> ())
    (Library.cells lib);
  (* the support inverter is static and full-speed *)
  let inv = Library.smallest_inverter lib in
  Alcotest.(check bool) "inverter static" true (inv.Cell.family = Cell.Static_cmos)

let test_domino_speedup () =
  let s = Lazy.force rich and d = Lazy.force domino in
  let sc = Option.get (Library.find s ~base:"AND2" ~drive:2.) in
  let dc = Option.get (Library.find d ~base:"AND2" ~drive:2.) in
  let ratio = Cell.delay_ps sc ~load_ff:10. /. Cell.delay_ps dc ~load_ff:10. in
  check_close "1.75x faster" 1e-6 1.75 ratio

let test_flop_styles () =
  let asic_flop = Library.smallest_flop (Lazy.force rich) in
  let custom_lib = Libgen.make tech Libgen.custom in
  let custom_flop = Library.smallest_flop custom_lib in
  let t c = Option.get (Cell.seq_timing c) in
  Alcotest.(check bool) "asic flop slower"
    true
    ((t asic_flop).Cell.setup_ps +. (t asic_flop).Cell.clk_to_q_ps
    > (t custom_flop).Cell.setup_ps +. (t custom_flop).Cell.clk_to_q_ps);
  Alcotest.(check bool) "flop is sequential" true (Cell.is_sequential asic_flop);
  check_close "asic overhead = 2.5 FO4" 1e-6
    (2.5 *. Tech.fo4_ps tech)
    ((t asic_flop).Cell.setup_ps +. (t asic_flop).Cell.clk_to_q_ps)

let test_templates_exposed () =
  let rich_t = Libgen.templates Libgen.rich in
  let poor_t = Libgen.templates Libgen.poor in
  Alcotest.(check bool) "rich has more gate types" true (List.length rich_t > List.length poor_t);
  Alcotest.(check bool) "poor has NAND2" true
    (List.exists (fun (b, _, _, _) -> b = "NAND2") poor_t);
  (* logical efforts are sane: INV has g=1, everything else >= 1 *)
  List.iter
    (fun (base, _, g, p) ->
      Alcotest.(check bool) (base ^ " g >= 1") true (g >= 1.0 -. 1e-9);
      Alcotest.(check bool) (base ^ " p >= 1") true (p >= 1.0 -. 1e-9))
    rich_t

let test_profile_builders () =
  let p = Libgen.with_drives Libgen.rich [ 1.; 2. ] in
  Alcotest.(check int) "drives replaced" 2 (List.length p.Libgen.drives);
  let p2 = Libgen.with_speed_factor Libgen.domino 2.0 in
  check_close "speed factor" 1e-9 2.0 p2.Libgen.speed_factor;
  let p3 = Libgen.with_name Libgen.rich "frobnitz" in
  Alcotest.(check string) "renamed" "frobnitz" p3.Libgen.profile_name

let test_cell_count_consistency () =
  let lib = Lazy.force rich in
  (* every cell is findable through its own base/drive *)
  Array.iter
    (fun (c : Cell.t) ->
      match Library.find lib ~base:c.Cell.base ~drive:c.Cell.drive with
      | Some found -> Alcotest.(check string) "found itself" c.Cell.name found.Cell.name
      | None -> Alcotest.fail ("cell not findable: " ^ c.Cell.name))
    (Library.cells lib)

(* --- liberty export --- *)

let test_function_strings () =
  let nand2 = Option.get (Library.find (Lazy.force rich) ~base:"NAND2" ~drive:1.) in
  let and2 = Option.get (Library.find (Lazy.force rich) ~base:"AND2" ~drive:1.) in
  Alcotest.(check string) "nand2 rendered via complement" "!((A B))"
    (Gap_liberty.Liberty_io.function_string nand2);
  Alcotest.(check string) "and2 direct" "(A B)"
    (Gap_liberty.Liberty_io.function_string and2)

let test_liberty_write_shape () =
  let lib = Lazy.force rich in
  let s = Gap_liberty.Liberty_io.write lib in
  let contains sub =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "library header" true (contains "library (");
  Alcotest.(check bool) "has NAND2_X1" true (contains "cell (NAND2_X1)");
  Alcotest.(check bool) "has flop group" true (contains "ff (IQ)");
  Alcotest.(check bool) "timing arcs" true (contains "rise_resistance");
  (* every cell appears *)
  Array.iter
    (fun (c : Cell.t) ->
      Alcotest.(check bool) ("cell present " ^ c.Cell.name) true
        (contains (Printf.sprintf "cell (%s)" c.Cell.name)))
    (Library.cells lib);
  (* braces balance *)
  let opens = String.fold_left (fun acc ch -> if ch = '{' then acc + 1 else acc) 0 s in
  let closes = String.fold_left (fun acc ch -> if ch = '}' then acc + 1 else acc) 0 s in
  Alcotest.(check int) "balanced braces" opens closes

let test_function_string_semantics () =
  (* parse-free check: the SOP we emit must have the same minterm count *)
  let check_cell (c : Cell.t) =
    if c.Cell.kind = Cell.Comb then begin
      let s = Gap_liberty.Liberty_io.function_string c in
      Alcotest.(check bool) ("nonempty for " ^ c.Cell.name) true (String.length s > 0)
    end
  in
  Array.iter check_cell (Library.cells (Lazy.force rich))

let suite =
  [
    ("FO4 calibration across techs", `Quick, test_fo4_calibration);
    ("delay monotone in load", `Quick, test_delay_monotone_in_load);
    ("bigger drive faster under load", `Quick, test_bigger_drive_is_faster_under_load);
    ("library lookups", `Quick, test_library_lookups);
    ("drive ladder navigation", `Quick, test_drive_ladder_navigation);
    ("NPN class lookup", `Quick, test_npn_class_lookup);
    ("inverter/buffer identification", `Quick, test_inverter_buffer_identification);
    ("poor library shape", `Quick, test_poor_library_shape);
    ("domino library monotone", `Quick, test_domino_library_monotone);
    ("domino speedup factor", `Quick, test_domino_speedup);
    ("flop styles", `Quick, test_flop_styles);
    ("templates exposed", `Quick, test_templates_exposed);
    ("profile builders", `Quick, test_profile_builders);
    ("cells findable by base/drive", `Quick, test_cell_count_consistency);
    ("liberty function strings", `Quick, test_function_strings);
    ("liberty write shape", `Quick, test_liberty_write_shape);
    ("liberty function strings nonempty", `Quick, test_function_string_semantics);
  ]
