module Tech = Gap_tech.Tech
module Charm = Gap_tech.Charm
module Cell = Gap_liberty.Cell
module Library = Gap_liberty.Library
module Truthtable = Gap_logic.Truthtable

type t = {
  name : string;
  variant : Charm.variant;
  lut_k : int;
  lut_delay_ps : float;
  lut_drive_res_kohm : float;
  lut_input_cap_ff : float;
  lut_tile_area_um2 : float;
  tile_route_frac : float;
  hop_delay_ps : float;
  hop_cap_ff : float;
  hop_fanout_base : int;
  flop_setup_ps : float;
  flop_clk_to_q_ps : float;
  flop_input_cap_ff : float;
  flop_tile_area_um2 : float;
}

(* The soft-logic fabric, calibrated so the measured FPGA/ASIC ratios on the
   combinational fixture suite land on the Charm logic-variant targets
   (x35 area, x3.4 freq, x14 dynamic power). The split between LUT read and
   routing hop delay follows the usual island-style budget: roughly half the
   critical path is programmable interconnect. All constants are expressed
   at the [Tech.fpga_025um] frame (same process as the ASIC reference), so
   the ratios are pure architecture, as in Charm's same-node comparison. *)
let logic =
  {
    name = "lut4-island";
    variant = Charm.Logic;
    lut_k = 4;
    lut_delay_ps = 365.;
    lut_drive_res_kohm = 0.12;
    lut_input_cap_ff = 108.;
    lut_tile_area_um2 = 3670.;
    tile_route_frac = 0.70;
    hop_delay_ps = 161.;
    hop_cap_ff = 350.;
    hop_fanout_base = 4;
    flop_setup_ps = 97.;
    flop_clk_to_q_ps = 145.;
    flop_input_cap_ff = 81.;
    flop_tile_area_um2 = 1300.;
  }

(* Hard DSP blocks absorb multiplier arrays at ASIC-like density and speed;
   the Charm data shows the gaps narrowing to x25 area / x3.5 freq / x12
   power. Modeled as a fabric whose tiles are proportionally cheaper for
   the DSP-heavy fixture class. *)
let logic_dsp =
  {
    logic with
    name = "lut4-island+dsp";
    variant = Charm.Logic_dsp;
    lut_delay_ps = 411.;
    lut_drive_res_kohm = 0.26;
    lut_input_cap_ff = 54.;
    lut_tile_area_um2 = 1560.;
    hop_delay_ps = 181.;
    hop_cap_ff = 151.;
  }

(* Hard block RAM narrows area slightly (x33) while the speed gap stays at
   x3.5; power stays at x14 — the memory-heavy fixture class maps its mux
   trees into LUT-RAM-like structures. *)
let logic_memory =
  {
    logic with
    name = "lut4-island+bram";
    variant = Charm.Logic_memory;
    lut_delay_ps = 257.;
    lut_drive_res_kohm = 0.113;
    lut_input_cap_ff = 78.;
    lut_tile_area_um2 = 2475.;
    hop_delay_ps = 113.;
    hop_cap_ff = 253.;
  }

let of_variant = function
  | Charm.Logic -> logic
  | Charm.Logic_dsp -> logic_dsp
  | Charm.Logic_memory -> logic_memory
  | Charm.Logic_memory_dsp ->
      {
        logic_dsp with
        name = "lut4-island+dsp+bram";
        variant = Charm.Logic_memory_dsp;
        lut_tile_area_um2 = 1120.;
        hop_cap_ff = 88.;
      }

let tech (_ : t) = Tech.fpga_025um

(* Fixed-fabric routing: a net reaches its first sink through one switch-box
   hop and fans out through a log-radix tree of further hops. This replaces
   the ASIC parasitic estimator — the wire model is a property of the fabric,
   not of a placement. *)
let hops f ~fanout =
  if fanout <= 0 then 0
  else
    1
    + int_of_float
        (ceil
           (log (float_of_int fanout)
           /. log (float_of_int (max 2 f.hop_fanout_base))))

let lut_name func =
  let n = Truthtable.vars func in
  let mask =
    if n >= 4 then 0xFFFF else (1 lsl (1 lsl n)) - 1
  in
  Printf.sprintf "LUT%d_%04X" n (Int64.to_int (Truthtable.bits func) land mask)

let lut_cell f func =
  let n = Truthtable.vars func in
  {
    Cell.name = lut_name func;
    base = Printf.sprintf "LUT%d" n;
    kind = Cell.Comb;
    family = Cell.Static_cmos;
    func;
    n_inputs = n;
    drive = 1.;
    input_cap_ff = f.lut_input_cap_ff;
    intrinsic_ps = f.lut_delay_ps;
    drive_res_kohm = f.lut_drive_res_kohm;
    area_um2 = f.lut_tile_area_um2;
    logical_effort = 1.;
    parasitic = 0.;
  }

let flop_cell f =
  {
    Cell.name = "FDRE";
    base = "FDRE";
    kind =
      Cell.Flop
        {
          Cell.setup_ps = f.flop_setup_ps;
          hold_ps = 0.;
          clk_to_q_ps = f.flop_clk_to_q_ps;
        };
    family = Cell.Static_cmos;
    func = Truthtable.var ~vars:1 0;
    n_inputs = 1;
    drive = 1.;
    input_cap_ff = f.flop_input_cap_ff;
    intrinsic_ps = f.flop_clk_to_q_ps;
    drive_res_kohm = f.lut_drive_res_kohm;
    area_um2 = f.flop_tile_area_um2;
    logical_effort = 1.;
    parasitic = 0.;
  }

let library f =
  let inv = lut_cell f (Truthtable.lognot (Truthtable.var ~vars:1 0)) in
  let buf = lut_cell f (Truthtable.var ~vars:1 0) in
  Library.make
    ~name:(Printf.sprintf "fpga-%s" f.name)
    ~tech:(tech f)
    [ inv; buf; flop_cell f ]

let pp ppf f =
  Format.fprintf ppf
    "%s (%s): LUT%d %.0f ps / %.0f um2, hop %.0f ps / %.1f fF, base-%d fanout tree"
    f.name
    (Charm.variant_name f.variant)
    f.lut_k f.lut_delay_ps f.lut_tile_area_um2 f.hop_delay_ps f.hop_cap_ff
    f.hop_fanout_base
