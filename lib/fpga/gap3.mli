(** The three-way FPGA / ASIC / custom gap measurement behind experiment
    E11 and [repro fpga-gap].

    Each {!Charm.variant}'s fixture suite is implemented through both
    backends; the measured area / frequency / dynamic-power ratios
    (geometric means over the suite) are compared against the Charm
    targets, and each gap is decomposed into an exact multiplicative factor
    product ([gap ** share] per component, shares summing to one). The
    custom leg reuses the paper's ASIC->custom model from {!Gap_core}. *)

type side = {
  area_um2 : float;
  min_period_ps : float;
  freq_mhz : float;
  dynamic_mw : float;
}

type pair = {
  design : string;
  luts : int;
  lut_levels : int;
  fpga : side;
  asic : side;
  area_ratio : float;  (** FPGA / ASIC *)
  freq_ratio : float;  (** ASIC / FPGA *)
  power_ratio : float;  (** FPGA / ASIC dynamic, both at the ASIC clock *)
}

type summary = {
  variant : Gap_tech.Charm.variant;
  target : Gap_tech.Charm.ratios;
  pairs : pair list;
  area_ratio : float;
  freq_ratio : float;
  power_ratio : float;
  lut_share : float;
  route_share : float;
}

val logic_fixtures : unit -> (string * Gap_logic.Aig.t) list
val dsp_fixtures : unit -> (string * Gap_logic.Aig.t) list
val memory_fixtures : unit -> (string * Gap_logic.Aig.t) list

val default_vectors : int
val asic_backend : unit -> Backend.t
(** The reference ASIC backend: rich 0.25um library, default flow effort. *)

val measure :
  ?vectors:int ->
  ?fixtures:(string * Gap_logic.Aig.t) list ->
  Gap_tech.Charm.variant ->
  summary

val freq_factors : summary -> (string * float) list
(** Exact factor product of the frequency gap from the measured
    critical-path split (LUT logic vs interconnect). *)

val area_factors : summary -> (string * float) list
val power_factors : summary -> (string * float) list

type t = {
  logic : summary;
  dsp : summary;
  memory : summary;
  asic_custom_speed : float;
  asic_custom_factors : (string * float) list;
  fpga_custom_speed : float;
}

val run : ?vectors:int -> unit -> t

type staged = {
  pipeline : Gap_retime.Pipeline.result;
  stage_slacks : Gap_sta.Sta.stage_slack list;
}

val stage_demo : ?stages:int -> unit -> staged
(** Implement cla16 on the logic fabric, pipeline it (default 4 stages),
    re-annotate routing, and return the stage-resolved slack of the result;
    running it under an {!Gap_obs} recording sink also emits the
    [sta.slack_by_stage.*] histograms that [repro report --by-stage]
    renders. *)

val tolerance : float
(** Relative tolerance of the Charm gates (0.15). *)

type gate = {
  metric : string;
  target_v : float;
  measured : float;
  ok : bool;
}

val gates : t -> gate list
val ok : t -> bool

val to_json : t -> Gap_obs.Json.t
val render : t -> string
