module Netlist = Gap_netlist.Netlist
module Power_est = Gap_netlist.Power_est
module Cell = Gap_liberty.Cell
module Sta = Gap_sta.Sta
module Charm = Gap_tech.Charm
module Json = Gap_obs.Json
module Obs = Gap_obs.Obs

type side = {
  area_um2 : float;
  min_period_ps : float;
  freq_mhz : float;
  dynamic_mw : float;
}

type pair = {
  design : string;
  luts : int;
  lut_levels : int;
  fpga : side;
  asic : side;
  area_ratio : float;
  freq_ratio : float;
  power_ratio : float;
}

type summary = {
  variant : Charm.variant;
  target : Charm.ratios;
  pairs : pair list;
  area_ratio : float;
  freq_ratio : float;
  power_ratio : float;
  lut_share : float;  (** LUT-logic fraction of the FPGA critical period *)
  route_share : float;  (** interconnect fraction *)
}

(* The fixture suites. Combinational datapath cores, sized so a full
   three-variant measurement stays fast enough for the test suite and the
   campaign runner: the logic class drives the headline x35/x3.4/x14
   calibration; the DSP class is multiplier-array silicon; the memory class
   is mux-tree (LUT-RAM-shaped) silicon. *)
let logic_fixtures () =
  [
    ("cla16", Gap_datapath.Adders.cla_adder 16);
    ("alu8", Gap_datapath.Alu.alu 8);
    ("pop16", Gap_datapath.Counting.popcount ~width:16);
  ]

let dsp_fixtures () = [ ("mult8", Gap_datapath.Multiplier.array_multiplier ~width:8) ]
let memory_fixtures () = [ ("shift32", Gap_datapath.Shifter.barrel_shifter ~width:32) ]

let fixtures_of = function
  | Charm.Logic -> logic_fixtures ()
  | Charm.Logic_dsp | Charm.Logic_memory_dsp -> dsp_fixtures ()
  | Charm.Logic_memory -> memory_fixtures ()

(* levels of combinational instances between timing sources and endpoints *)
let comb_depth nl =
  let lvl = Array.make (max 1 (Netlist.num_nets nl)) 0 in
  let deepest = ref 0 in
  Array.iter
    (fun i ->
      if not (Netlist.is_flop nl i) then begin
        let d = ref 0 in
        Netlist.iter_fanins nl i (fun f -> if lvl.(f) > !d then d := lvl.(f));
        let d = !d + 1 in
        lvl.(Netlist.out_net nl i) <- d;
        if d > !deepest then deepest := d
      end)
    (Netlist.topo_instances nl);
  !deepest

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
      exp (List.fold_left (fun a x -> a +. log x) 0. xs /. float_of_int (List.length xs))

(* Split an implementation's critical path into cell time and interconnect
   time. Path steps carry [incr_ps] = cell delay + output wire delay for the
   worst edge, so subtracting the annotated wire delay of each step's net
   recovers the cell part. *)
let path_shares (impl : Backend.impl) =
  let cellt = ref 0. and wiret = ref 0. in
  List.iter
    (fun (s : Sta.step) ->
      match s.Sta.inst with
      | Some _ ->
          let w = Netlist.wire_delay_ps impl.Backend.netlist s.Sta.net in
          wiret := !wiret +. w;
          cellt := !cellt +. Float.max 0. (s.Sta.incr_ps -. w)
      | None ->
          (* launch step: input arrival or flop clk->q + wire *)
          cellt := !cellt +. s.Sta.incr_ps)
    impl.Backend.sta.Sta.critical.Sta.steps;
  let total = Float.max 1e-9 (!cellt +. !wiret) in
  (!cellt /. total, !wiret /. total)

let measure_side ~vectors ~freq_mhz (impl : Backend.impl) =
  let p = Power_est.estimate ~vectors impl.Backend.netlist ~freq_mhz in
  {
    area_um2 = impl.Backend.area_um2;
    min_period_ps = impl.Backend.min_period_ps;
    freq_mhz = impl.Backend.freq_mhz;
    dynamic_mw = p.Power_est.dynamic_mw;
  }

let default_vectors = 256

let asic_backend () =
  let lib = Gap_liberty.Libgen.make Gap_tech.Tech.asic_025um Gap_liberty.Libgen.rich in
  Backend.asic ~lib ()

let measure ?(vectors = default_vectors) ?fixtures variant =
  Obs.span "fpga.gap3" (fun () ->
      let fabric = Fabric.of_variant variant in
      let asic = asic_backend () in
      let fpga = Backend.fpga ~fabric () in
      let fixtures = match fixtures with Some f -> f | None -> fixtures_of variant in
      let shares = ref [] in
      let pairs =
        List.map
          (fun (design, g) ->
            let a = Backend.implement asic ~name:design g in
            let f = Backend.implement fpga ~name:design g in
            (* Charm compares dynamic power with both parts at the same
               clock (a switched-capacitance ratio), so both sides are
               estimated at the ASIC's frequency *)
            let freq = a.Backend.freq_mhz in
            let aside = measure_side ~vectors ~freq_mhz:freq a in
            let fside = measure_side ~vectors ~freq_mhz:freq f in
            shares := path_shares f :: !shares;
            let luts, lut_levels =
              (* recover the mapper stats from the emitted netlist: every
                 combinational instance is one LUT tile *)
              let nl = f.Backend.netlist in
              (List.length (Netlist.combinational_instances nl), comb_depth nl)
            in
            {
              design;
              luts;
              lut_levels;
              fpga = fside;
              asic = aside;
              area_ratio = fside.area_um2 /. aside.area_um2;
              freq_ratio = aside.freq_mhz /. fside.freq_mhz;
              power_ratio = fside.dynamic_mw /. aside.dynamic_mw;
            })
          fixtures
      in
      let lut_share = geomean (List.map fst !shares)
      and route_share = geomean (List.map snd !shares) in
      let norm = lut_share +. route_share in
      {
        variant;
        target = Charm.ratios variant;
        pairs;
        area_ratio = geomean (List.map (fun (p : pair) -> p.area_ratio) pairs);
        freq_ratio = geomean (List.map (fun (p : pair) -> p.freq_ratio) pairs);
        power_ratio = geomean (List.map (fun (p : pair) -> p.power_ratio) pairs);
        lut_share = lut_share /. norm;
        route_share = route_share /. norm;
      })

(* --- factor products --- *)

(* Multiplicative attribution: a gap G with additive shares s_i (sum 1)
   decomposes exactly as the product of G^(s_i). The frequency gap uses the
   measured critical-path split; area and power use the fabric's documented
   routing fraction. *)
let factor_split ~gap ~shares =
  List.map (fun (name, s) -> (name, gap ** s)) shares

let freq_factors s =
  factor_split ~gap:s.freq_ratio
    ~shares:[ ("lut-logic", s.lut_share); ("routing", s.route_share) ]

let area_factors s =
  let fabric = Fabric.of_variant s.variant in
  let r = fabric.Fabric.tile_route_frac in
  factor_split ~gap:s.area_ratio
    ~shares:[ ("lut+config", 1. -. r); ("routing-fabric", r) ]

let power_factors s =
  let fabric = Fabric.of_variant s.variant in
  let r = fabric.Fabric.tile_route_frac in
  factor_split ~gap:s.power_ratio
    ~shares:[ ("lut-caps", 1. -. r); ("routing-caps", r) ]

(* --- the three-way decomposition --- *)

type t = {
  logic : summary;
  dsp : summary;
  memory : summary;
  asic_custom_speed : float;  (** the paper's predicted ASIC->custom gap *)
  asic_custom_factors : (string * float) list;
  fpga_custom_speed : float;  (** product of the two speed gaps *)
}

let run ?(vectors = default_vectors) () =
  let logic = measure ~vectors Charm.Logic in
  let dsp = measure ~vectors Charm.Logic_dsp in
  let memory = measure ~vectors Charm.Logic_memory in
  let asic_custom_speed = Gap_core.Gap_model.predicted_asic_custom_gap () in
  let asic_custom_factors =
    List.map
      (fun (f : Gap_core.Factors.t) -> (f.Gap_core.Factors.factor_name, f.Gap_core.Factors.modeled))
      (Gap_core.Factors.all ())
  in
  {
    logic;
    dsp;
    memory;
    asic_custom_speed;
    asic_custom_factors;
    fpga_custom_speed = logic.freq_ratio *. asic_custom_speed;
  }

(* --- the pipeline-stage showcase ---

   A pipelined fixture on the fabric, so stage-resolved STA has real stage
   boundaries to attribute slack to: shared by experiment E11's demo rows
   and [repro fpga-gap] (whose metrics document then carries the
   [sta.slack_by_stage.*] histograms that [repro report --by-stage]
   renders). *)

type staged = {
  pipeline : Gap_retime.Pipeline.result;
  stage_slacks : Sta.stage_slack list;
}

let stage_demo ?(stages = 4) () =
  let impl =
    Backend.implement
      (Backend.fpga ())
      ~name:"cla16-pipe"
      (Gap_datapath.Adders.cla_adder 16)
  in
  let nl = impl.Backend.netlist in
  let pipeline = Gap_retime.Pipeline.pipeline ~stages nl in
  (* the inserted register nets carry no hop annotation yet *)
  Route.annotate ~fabric:Fabric.logic nl;
  let sta = Sta.analyze nl in
  { pipeline; stage_slacks = Sta.slack_by_stage nl sta }

(* --- gating --- *)

let tolerance = 0.15

type gate = {
  metric : string;
  target_v : float;
  measured : float;
  ok : bool;
}

let gates_of summary =
  let g metric target_v measured =
    {
      metric = Printf.sprintf "%s.%s" (Charm.variant_name summary.variant) metric;
      target_v;
      measured;
      ok = Float.abs ((measured /. target_v) -. 1.) <= tolerance;
    }
  in
  [
    g "area" summary.target.Charm.area summary.area_ratio;
    g "freq" summary.target.Charm.freq summary.freq_ratio;
    g "dynamic-power" summary.target.Charm.dynamic_power summary.power_ratio;
  ]

let gates t = gates_of t.logic @ gates_of t.dsp @ gates_of t.memory

let ok t = List.for_all (fun g -> g.ok) (gates t)

(* --- rendering / JSON --- *)

let side_json s =
  Json.Obj
    [
      ("area_um2", Json.Float s.area_um2);
      ("min_period_ps", Json.Float s.min_period_ps);
      ("freq_mhz", Json.Float s.freq_mhz);
      ("dynamic_mw", Json.Float s.dynamic_mw);
    ]

let pair_json p =
  Json.Obj
    [
      ("design", Json.Str p.design);
      ("luts", Json.Int p.luts);
      ("fpga", side_json p.fpga);
      ("asic", side_json p.asic);
      ("area_ratio", Json.Float p.area_ratio);
      ("freq_ratio", Json.Float p.freq_ratio);
      ("power_ratio", Json.Float p.power_ratio);
    ]

let factors_json fs = Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) fs)

let summary_json s =
  Json.Obj
    [
      ("variant", Json.Str (Charm.variant_name s.variant));
      ( "target",
        Json.Obj
          [
            ("area", Json.Float s.target.Charm.area);
            ("freq", Json.Float s.target.Charm.freq);
            ("dynamic_power", Json.Float s.target.Charm.dynamic_power);
          ] );
      ("designs", Json.List (List.map pair_json s.pairs));
      ("area_ratio", Json.Float s.area_ratio);
      ("freq_ratio", Json.Float s.freq_ratio);
      ("power_ratio", Json.Float s.power_ratio);
      ("freq_factors", factors_json (freq_factors s));
      ("area_factors", factors_json (area_factors s));
      ("power_factors", factors_json (power_factors s));
    ]

let to_json t =
  let gate_json g =
    Json.Obj
      [
        ("metric", Json.Str g.metric);
        ("target", Json.Float g.target_v);
        ("measured", Json.Float g.measured);
        ("ok", Json.Bool g.ok);
      ]
  in
  Json.Obj
    [
      ("version", Json.Int 1);
      ("tolerance", Json.Float tolerance);
      ("logic", summary_json t.logic);
      ("dsp", summary_json t.dsp);
      ("memory", summary_json t.memory);
      ("asic_custom_speed", Json.Float t.asic_custom_speed);
      ("asic_custom_factors", factors_json t.asic_custom_factors);
      ("fpga_custom_speed", Json.Float t.fpga_custom_speed);
      ("gates", Json.List (List.map gate_json (gates t)));
      ("ok", Json.Bool (ok t));
    ]

let render t =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "three-way FPGA / ASIC / custom gap decomposition";
  line "";
  List.iter
    (fun s ->
      line "[%s] target x%.0f area, x%.1f freq, x%.1f dyn power"
        (Charm.variant_name s.variant) s.target.Charm.area s.target.Charm.freq
        s.target.Charm.dynamic_power;
      List.iter
        (fun p ->
          line "  %-8s %5d LUTs   area x%-5.1f freq x%-4.2f power x%-5.1f"
            p.design p.luts p.area_ratio p.freq_ratio p.power_ratio)
        s.pairs;
      line "  geomean          area x%-5.1f freq x%-4.2f power x%-5.1f"
        s.area_ratio s.freq_ratio s.power_ratio;
      let fs = freq_factors s in
      line "  freq factor product: %s = x%.2f"
        (String.concat " * "
           (List.map (fun (k, v) -> Printf.sprintf "%s x%.2f" k v) fs))
        (List.fold_left (fun a (_, v) -> a *. v) 1. fs);
      line "")
    [ t.logic; t.dsp; t.memory ];
  line "ASIC -> custom speed gap (paper model): x%.2f" t.asic_custom_speed;
  line "  factors: %s"
    (String.concat " * "
       (List.map (fun (k, v) -> Printf.sprintf "%s x%.2f" k v) t.asic_custom_factors));
  line "FPGA -> custom speed gap: x%.2f (x%.2f FPGA->ASIC * x%.2f ASIC->custom)"
    t.fpga_custom_speed t.logic.freq_ratio t.asic_custom_speed;
  line "";
  List.iter
    (fun g ->
      line "%-28s target x%-5.1f measured x%-5.2f %s" g.metric g.target_v g.measured
        (if g.ok then "ok" else "OUT OF TOLERANCE"))
    (gates t);
  line "overall: %s (tolerance %.0f%%)" (if ok t then "ok" else "FAILED") (tolerance *. 100.);
  Buffer.contents buf
