(** Fixed-fabric routing model.

    Annotates every driven net with [hops x hop_delay_ps] wire delay and
    [hops x hop_cap_ff] wire capacitance, where the hop count comes from
    {!Fabric.hops} on the net's fanout — the programmable-interconnect
    replacement for {!Gap_place.Wire_estimate}. Idempotent; re-run it after
    a netlist rewrite (e.g. pipelining) to cover new nets.

    Fault site [gap_fpga.route] can corrupt an annotated delay to NaN;
    strict check gates and the supervised STA NaN scan both reject the
    corruption with a typed diagnostic. *)

val annotate : fabric:Fabric.t -> Gap_netlist.Netlist.t -> unit
