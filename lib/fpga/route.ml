module Netlist = Gap_netlist.Netlist
module Fault = Gap_resilience.Fault

(* Fixed-fabric routing annotation: per-net wire delay and capacitance are a
   function of the fanout-driven hop count alone, replacing the ASIC
   placement parasitic estimator. Deterministic and placement-free — the
   interconnect is prefabricated, only the switch settings differ. *)
let annotate ~(fabric : Fabric.t) nl =
  for net = 0 to Netlist.num_nets nl - 1 do
    match Netlist.driver_of nl net with
    | Netlist.From_const _ | Netlist.Undriven -> ()
    | Netlist.From_input _ | Netlist.From_cell _ ->
        let fanout = List.length (Netlist.sinks_of nl net) in
        if fanout > 0 then begin
          let h = float_of_int (Fabric.hops fabric ~fanout) in
          Netlist.set_wire_delay_ps nl net
            (Fault.corrupt_float "gap_fpga.route" (h *. fabric.Fabric.hop_delay_ps));
          Netlist.set_wire_cap_ff nl net (h *. fabric.Fabric.hop_cap_ff)
        end
  done
