module Netlist = Gap_netlist.Netlist
module Check = Gap_netlist.Check
module Library = Gap_liberty.Library
module Sta = Gap_sta.Sta
module Obs = Gap_obs.Obs
module Supervisor = Gap_resilience.Supervisor

type impl = {
  netlist : Netlist.t;
  sta : Sta.t;
  area_um2 : float;
  min_period_ps : float;
  freq_mhz : float;
}

type t = {
  name : string;
  tech : Gap_tech.Tech.t;
  implement : ?name:string -> Gap_logic.Aig.t -> impl;
}

let impl_of ~netlist ~sta =
  {
    netlist;
    sta;
    area_um2 = Netlist.area_um2 netlist;
    min_period_ps = sta.Sta.min_period_ps;
    freq_mhz = Sta.frequency_mhz sta;
  }

let asic ?effort ~lib () =
  {
    name = "asic";
    tech = Library.tech lib;
    implement =
      (fun ?name g ->
        (* delegate to the unchanged ASIC flow: the backend abstraction must
           add nothing — tests assert byte-identity with a direct
           [Flow.run] *)
        let o = Gap_synth.Flow.run ~lib ?effort ?name g in
        impl_of ~netlist:o.Gap_synth.Flow.netlist ~sta:o.Gap_synth.Flow.sta);
  }

let fpga ?(fabric = Fabric.logic) () =
  {
    name = Printf.sprintf "fpga-%s" (Gap_tech.Charm.variant_name fabric.Fabric.variant);
    tech = Fabric.tech fabric;
    implement =
      (fun ?name g ->
        Obs.span "fpga.flow" (fun () ->
            let g = Obs.span "fpga.balance" (fun () -> Gap_synth.Balance.balance g) in
            (* mapping is pure (fresh netlist each call), so a transient
               failure at the [gap_fpga.lutmap] fault point is retried *)
            let r =
              Supervisor.retry ~stage:"fpga.lutmap" (fun () ->
                  Obs.span "fpga.lutmap" (fun () -> Lutmap.map ~fabric ?name g))
            in
            let nl = r.Lutmap.netlist in
            Check.gate ~stage:"fpga.lutmap" nl;
            Obs.span "fpga.route" (fun () -> Route.annotate ~fabric nl);
            Check.gate ~stage:"fpga.route" nl;
            let sta =
              Supervisor.retry ~stage:"fpga.sta" (fun () ->
                  Obs.span "fpga.sta" (fun () -> Sta.analyze nl))
            in
            impl_of ~netlist:nl ~sta));
  }

let implement b ?name g = b.implement ?name g
