module Aig = Gap_logic.Aig
module Cuts = Gap_synth.Cuts
module Netlist = Gap_netlist.Netlist
module Obs = Gap_obs.Obs
module Fault = Gap_resilience.Fault

type result = { netlist : Netlist.t; luts : int; levels : int }

(* Depth-oriented LUT covering: per AND node pick the k-feasible cut that
   minimizes LUT depth, breaking ties toward fewer leaves (fewer used
   inputs, less routing). The classic FlowMap-style objective without the
   area-recovery pass — good enough to track the Charm logic-depth ratios
   on the fixture suite. *)
let choose_cuts ~k g =
  let cuts = Cuts.enumerate ~k g in
  let n = Aig.num_nodes g in
  let best = Array.make n None in
  let depth = Array.make n 0 in
  Array.iter
    (fun id ->
      let best_d = ref max_int and best_sz = ref max_int and best_c = ref None in
      List.iter
        (fun (c : Cuts.cut) ->
          (* the trivial cut {id} cannot implement id *)
          if not (Array.length c.Cuts.leaves = 1 && c.Cuts.leaves.(0) = id)
          then begin
            let d = ref 0 in
            Array.iter (fun l -> if depth.(l) > !d then d := depth.(l)) c.Cuts.leaves;
            let d = 1 + !d and sz = Array.length c.Cuts.leaves in
            if d < !best_d || (d = !best_d && sz < !best_sz) then begin
              best_d := d;
              best_sz := sz;
              best_c := Some c
            end
          end)
        cuts.(id);
      match !best_c with
      | Some c ->
          best.(id) <- Some c;
          depth.(id) <- !best_d
      | None -> failwith (Printf.sprintf "fpga.lutmap: node %d has no usable cut" id))
    (Aig.topo_ands g);
  (best, depth)

let map ~(fabric : Fabric.t) ?(name = "fpga") g =
  Fault.point "gap_fpga.lutmap";
  let best, depth = choose_cuts ~k:fabric.Fabric.lut_k g in
  let n = Aig.num_nodes g in
  (* mark the nodes actually used by the chosen cover, outputs backward *)
  let needed = Array.make n false in
  let rec need id =
    if Aig.is_and g id && not (needed.(id)) then begin
      needed.(id) <- true;
      match best.(id) with
      | Some c -> Array.iter need c.Cuts.leaves
      | None -> assert false
    end
  in
  Array.iter (fun (_, lit) -> need (Aig.id_of_lit lit)) (Aig.outputs g);
  let nl = Netlist.create ~lib:(Fabric.library fabric) name in
  let input_net = Hashtbl.create 64 in
  Array.iter
    (fun (iname, lit) ->
      Hashtbl.replace input_net (Aig.id_of_lit lit) (Netlist.add_input nl iname))
    (Aig.inputs g);
  let node_net = Array.make n (-1) in
  let net_of id =
    match Hashtbl.find_opt input_net id with
    | Some net -> net
    | None ->
        assert (node_net.(id) >= 0);
        node_net.(id)
  in
  let luts = ref 0 and levels = ref 0 in
  Array.iter
    (fun id ->
      if needed.(id) then begin
        let c = Option.get best.(id) in
        let func = Cuts.cut_function g id c in
        let cell = Fabric.lut_cell fabric func in
        let inst = Netlist.add_cell nl cell (Array.map net_of c.Cuts.leaves) in
        node_net.(id) <- Netlist.out_net nl inst;
        incr luts;
        if depth.(id) > !levels then levels := depth.(id)
      end)
    (Aig.topo_ands g);
  (* outputs: a complemented literal costs one inverter LUT1, memoized per
     node so shared complemented outputs share it *)
  let inv_net = Hashtbl.create 8 in
  let inverted net =
    match Hashtbl.find_opt inv_net net with
    | Some v -> v
    | None ->
        let tt = Gap_logic.Truthtable.(lognot (var ~vars:1 0)) in
        let inst = Netlist.add_cell nl (Fabric.lut_cell fabric tt) [| net |] in
        incr luts;
        let v = Netlist.out_net nl inst in
        Hashtbl.replace inv_net net v;
        v
  in
  Array.iter
    (fun (oname, lit) ->
      let id = Aig.id_of_lit lit and compl_ = Aig.is_compl lit in
      let net =
        if id = 0 then Netlist.add_const nl compl_
        else begin
          let base = net_of id in
          if compl_ then inverted base else base
        end
      in
      ignore (Netlist.set_output nl oname net))
    (Aig.outputs g);
  Obs.incr ~by:!luts "fpga.luts";
  Obs.incr ~by:!levels "fpga.lut_levels";
  { netlist = nl; luts = !luts; levels = !levels }
