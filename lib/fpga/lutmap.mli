(** LUT-based technology mapping over the {!Gap_synth.Cuts} enumeration.

    Covers an AIG with k-input LUT instances (k from the fabric), choosing
    per node the depth-minimal cut with a fewest-leaves tie-break. The
    emitted {!Gap_netlist.Netlist.t} carries one freshly-configured LUT cell
    per covered node whose [func] is the actual cut truth table, so every
    downstream consumer — STA, check gates, power simulation, placement —
    works on it unchanged.

    Fault site [gap_fpga.lutmap] fires at stage entry (mapping is pure, so
    the backend retries it under supervision). *)

type result = {
  netlist : Gap_netlist.Netlist.t;
  luts : int;
  levels : int;  (** LUT depth of the cover *)
}

val map : fabric:Fabric.t -> ?name:string -> Gap_logic.Aig.t -> result
