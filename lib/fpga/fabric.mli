(** FPGA fabric description: the technology half of the {!Backend}.

    A fabric fixes the LUT size, the LUT read delay/area/input load, the
    per-hop delay and capacitance of the programmable interconnect, and the
    register parameters. Delay and power still flow through the standard
    {!Gap_liberty.Cell} linear model and {!Gap_sta.Sta} — the fabric only
    decides what cells and wire parasitics the mapped netlist carries, so
    STA and placement run unchanged against either technology.

    Constants are calibrated against {!Gap_tech.Charm}: the fixture-suite
    FPGA/ASIC ratios land on the Charm targets for each variant. *)

type t = {
  name : string;
  variant : Gap_tech.Charm.variant;
  lut_k : int;  (** LUT input count; cuts are enumerated k-feasible *)
  lut_delay_ps : float;  (** LUT read through the config mux *)
  lut_drive_res_kohm : float;
  lut_input_cap_ff : float;
  lut_tile_area_um2 : float;  (** logic + configuration + routing share *)
  tile_route_frac : float;
      (** fraction of the tile that is programmable routing; used for the
          modeled area/power factor split *)
  hop_delay_ps : float;  (** one switch-box hop *)
  hop_cap_ff : float;
  hop_fanout_base : int;  (** fanouts reached per extra hop level *)
  flop_setup_ps : float;
  flop_clk_to_q_ps : float;
  flop_input_cap_ff : float;
  flop_tile_area_um2 : float;
}

val logic : t
(** Soft logic only; calibrated to x35 area / x3.4 freq / x14 power. *)

val logic_dsp : t
(** Hard DSP blocks; calibrated to x25 / x3.5 / x12 on the DSP fixtures. *)

val logic_memory : t
(** Hard block RAM; calibrated to x33 / x3.5 / x14 on the memory fixtures. *)

val of_variant : Gap_tech.Charm.variant -> t

val tech : t -> Gap_tech.Tech.t
(** {!Gap_tech.Tech.fpga_025um}: the ASIC reference process frame, so
    measured ratios are pure architecture gaps. *)

val hops : t -> fanout:int -> int
(** Switch-box hops a net traverses: one to the first sink plus a log-radix
    fanout tree. The fixed-fabric replacement for the parasitic estimator. *)

val lut_name : Gap_logic.Truthtable.t -> string

val lut_cell : t -> Gap_logic.Truthtable.t -> Gap_liberty.Cell.t
(** A LUT instance configured with the given function; the cell's [func] is
    the real cut truth table, so simulation-driven power estimation works. *)

val flop_cell : t -> Gap_liberty.Cell.t

val library : t -> Gap_liberty.Library.t
(** Minimal library (inverter/buffer LUT1 prototypes plus the fabric flop)
    backing mapped netlists; pipelining pulls its registers from here. *)

val pp : Format.formatter -> t -> unit
