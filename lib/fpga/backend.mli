(** Pluggable technology backends.

    A backend turns an AIG into an implemented design — mapped netlist plus
    its timing — through one [implement] entry point, so experiments, DSE
    drivers and the serve daemon can target ASIC standard cells or an FPGA
    fabric without caring which:

    - {!asic} wraps the existing [Gap_synth.Flow.run] unchanged (tests
      assert the wrapper is byte-identical to calling the flow directly);
    - {!fpga} runs balance -> {!Lutmap} -> {!Route} -> [Gap_sta.Sta.analyze]
      on the same netlist/STA substrate, with the same ambient check gates
      ([fpga.lutmap], [fpga.route]) and supervised retry discipline as the
      ASIC flow.

    Both emit netlists that [Gap_place.Placer] and [Gap_retime.Pipeline]
    accept unchanged. *)

type impl = {
  netlist : Gap_netlist.Netlist.t;
  sta : Gap_sta.Sta.t;
  area_um2 : float;
  min_period_ps : float;
  freq_mhz : float;
}

type t = {
  name : string;
  tech : Gap_tech.Tech.t;
  implement : ?name:string -> Gap_logic.Aig.t -> impl;
}

val asic : ?effort:Gap_synth.Flow.effort -> lib:Gap_liberty.Library.t -> unit -> t
val fpga : ?fabric:Fabric.t -> unit -> t
val implement : t -> ?name:string -> Gap_logic.Aig.t -> impl
