type t = {
  name : string;
  tech : Gap_tech.Tech.t;
  cells : Cell.t array;
  classes : (int64 * int, Cell.t list) Hashtbl.t; (* (npn key, n_inputs) *)
  by_base : (string, Cell.t list) Hashtbl.t;
}

let make ~name ~tech cell_list =
  let cells = Array.of_list cell_list in
  let classes = Hashtbl.create 64 in
  let by_base = Hashtbl.create 64 in
  let add_to tbl key cell =
    let existing = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (cell :: existing)
  in
  Array.iter
    (fun (c : Cell.t) ->
      if c.kind = Comb && c.n_inputs <= 4 then
        add_to classes (Cell.npn_key c, c.n_inputs) c;
      add_to by_base c.base c)
    cells;
  (* Sort the drive ladders once. *)
  Hashtbl.iter
    (fun base cs ->
      Hashtbl.replace by_base base
        (List.sort (fun (a : Cell.t) b -> Float.compare a.drive b.drive) cs))
    (Hashtbl.copy by_base);
  { name; tech; cells; classes; by_base }

let name t = t.name
let tech t = t.tech
let cells t = t.cells
let size t = Array.length t.cells

let drives_of t base = Option.value ~default:[] (Hashtbl.find_opt t.by_base base)

let find t ~base ~drive =
  List.find_opt (fun (c : Cell.t) -> Float.abs (c.drive -. drive) < 1e-9) (drives_of t base)

let bases t =
  Hashtbl.fold (fun base _ acc -> base :: acc) t.by_base []
  |> List.sort_uniq String.compare

let cells_matching t f =
  let key = (Gap_logic.Npn.canonical_key f, Gap_logic.Truthtable.vars f) in
  Option.value ~default:[] (Hashtbl.find_opt t.classes key)

let inverters t =
  Array.to_list t.cells |> List.filter Cell.is_inverter
  |> List.sort (fun (a : Cell.t) b -> Float.compare a.drive b.drive)

let buffers t =
  Array.to_list t.cells |> List.filter Cell.is_buffer
  |> List.sort (fun (a : Cell.t) b -> Float.compare a.drive b.drive)

let smallest_inverter t =
  match inverters t with [] -> raise Not_found | c :: _ -> c

let flops t =
  Array.to_list t.cells
  |> List.filter (fun (c : Cell.t) -> match c.kind with Flop _ -> true | _ -> false)
  |> List.sort (fun (a : Cell.t) b -> Float.compare a.drive b.drive)

let smallest_flop t = match flops t with [] -> raise Not_found | c :: _ -> c

let neighbours t (cell : Cell.t) =
  let arr = Array.of_list (drives_of t cell.base) in
  let idx = ref (-1) in
  Array.iteri (fun i (c : Cell.t) -> if c.name = cell.name then idx := i) arr;
  if !idx < 0 then (None, None)
  else
    ( (if !idx > 0 then Some arr.(!idx - 1) else None),
      if !idx < Array.length arr - 1 then Some arr.(!idx + 1) else None )

let next_drive_up t cell = snd (neighbours t cell)
let next_drive_down t cell = fst (neighbours t cell)

let pp_summary ppf t =
  let n_bases = List.length (bases t) in
  Format.fprintf ppf "library %s: %d cells, %d bases, tech %s" t.name
    (Array.length t.cells) n_bases (Gap_tech.Tech.(t.tech.name))
