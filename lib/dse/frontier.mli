(** Pareto extraction over the sweep objectives.

    Objectives are all minimized: cycle time, relative area, relative
    power. A point is on the frontier iff no other point is at least as
    good on every objective and strictly better on one. Ties survive:
    two points with equal objective vectors dominate nothing and both
    stay on the frontier, so re-running a sweep can never flip which of
    two equal designs is reported. *)

type objectives = { delay_ps : float; area : float; power : float }

val of_metrics : Eval.metrics -> objectives

val dominates : objectives -> objectives -> bool
(** [dominates a b]: [a] is no worse on every objective and strictly
    better on at least one (minimizing). *)

val pareto : ('a * objectives) list -> ('a * objectives) list
(** Non-dominated subset, in input order. O(n^2); sweep lattices are
    hundreds of points, not millions. *)
