(** Deterministic Domain worker pool for point evaluation.

    Jobs are claimed off a shared atomic counter, and result slot [i]
    depends only on job [i], so the output array is identical for every
    worker count — parallelism is strictly a wall-clock matter, the same
    contract as the Monte Carlo shards.

    Resilience: worker domains run jobs raw (spans and counters are
    domain-safe; supervision state is not), every spawned domain is joined
    no matter what, and any slot a dead or failing worker left behind is
    re-run on the calling domain under {!Gap_resilience.Supervisor.run_stage}
    — typed outcomes, retry on transients, never raising. A worker killed
    by the [dse.worker] fault site therefore degrades the pool to
    sequential execution of the orphaned slots with byte-identical results,
    recorded in the [dse.pool.degraded] counter. *)

type 'b outcome = ('b, Gap_resilience.Stage_error.t) result

val map :
  ?domains:int ->
  ?policy:Gap_resilience.Supervisor.policy ->
  stage:string ->
  ('a -> 'b) ->
  'a array ->
  'b outcome array
(** [map ~domains ~stage f jobs]: [domains] (default 1) caps the worker
    count at [Array.length jobs]; [policy] (default
    [Supervisor.default_policy]) governs the supervised re-runs. [f] must
    be deterministic and safe to call from worker domains; any lazy state
    it forces must be warmed up first (see {!Eval.warmup}). *)
