type objectives = { delay_ps : float; area : float; power : float }

let of_metrics (m : Eval.metrics) =
  { delay_ps = m.Eval.delay_ps; area = m.Eval.area; power = m.Eval.power }

let dominates a b =
  a.delay_ps <= b.delay_ps && a.area <= b.area && a.power <= b.power
  && (a.delay_ps < b.delay_ps || a.area < b.area || a.power < b.power)

let pareto pts =
  List.filter
    (fun (_, o) -> not (List.exists (fun (_, o') -> dominates o' o) pts))
    pts
