(** Typed design-space specification for the flow's tunable axes.

    A {!point} fixes one value per axis the paper's factor decomposition
    sweeps: pipeline depth, logic depth per instruction (FO4), drive-sizing
    policy, clock-skew budget, domino on/off, floorplanning on/off,
    speed-binning on/off, process-variation sigma scale, and Monte Carlo
    sample count. A {!t} lists candidate values per axis; {!enumerate}
    expands the cartesian lattice in a deterministic row-major order, so a
    sweep's point sequence — and therefore its cache keys and its output —
    is a pure function of the space. *)

type sizing = Minimal | Typical | Rich_tilos
(** Drive-sizing policy: two-drive library with no sizing, a typical
    ASIC flow, or the rich library with TILOS critical-path sizing. *)

type backend = Asic | Fpga
(** Technology backend: ASIC standard cells through the synthesis flow, or
    the LUT fabric through [Gap_fpga.Backend] (modeled in {!Eval} by the
    Charm logic-variant ratios). *)

type point = {
  depth : int;  (** pipeline stages *)
  logic_fo4 : float;  (** total logic per instruction, FO4 (44 ASIC, 36 custom) *)
  sizing : sizing;
  skew_frac : float;  (** skew budget as a fraction of the cycle *)
  domino : bool;  (** dual-rail domino on critical paths *)
  floorplan : bool;  (** careful floorplanning vs automatic scatter *)
  binning : bool;  (** best-fab speed binning vs slow-fab worst-case rating *)
  sigma_scale : float;  (** multiplier on the variation model's sigmas *)
  mc_dies : int;  (** Monte Carlo sample count for the variation arm *)
  backend : backend;  (** implementation technology the point evaluates on *)
}

type t = {
  depths : int list;
  logic_fo4s : float list;
  sizings : sizing list;
  skew_fracs : float list;
  dominos : bool list;
  floorplans : bool list;
  binnings : bool list;
  sigma_scales : float list;
  mc_dies : int list;
  backends : backend list;
}

val size : t -> int
(** Product of the axis lengths. *)

val enumerate : t -> point list
(** Row-major cartesian product, axes varying fastest-last in the field
    order of {!t}. Deterministic: the same space always yields the same
    point sequence. *)

val baseline : point
(** The worst-practice corner every factor is measured against: 1 stage,
    44 FO4, minimal sizing, 10% skew, static logic, scattered floorplan,
    worst-case rating, nominal sigmas. *)

val custom_corner : point
(** The full-custom corner: 4 stages, 36 FO4, rich+TILOS, 5% skew, domino,
    floorplanned, best-fab binned — the point whose gap composite must
    reproduce the paper's x17.8 product. *)

val presets : (string * string * t) list
(** [(name, description, space)]: ["smoke"] (4 points, CI), ["depth-x-sizing"]
    (depth times sizing-policy lattice), ["factor-axes"] (the paper's factor
    corners, 2^7 lattice), ["backend"] (ASIC vs FPGA across the depth times
    sizing lattice), ["variation"] (sigma times sample-count sweep). *)

val find_preset : string -> t option
val preset_names : unit -> string list

val sizing_name : sizing -> string
val sizing_of_name : string -> sizing option
val backend_name : backend -> string
val backend_of_name : string -> backend option

val to_canonical : point -> string
(** Canonical one-line rendering, field order fixed; the content the cache
    key hashes. Floats render via [Gap_obs.Json.float_repr], so two points
    are equal iff their canonical strings are. *)

val point_json : point -> Gap_obs.Json.t
val point_of_json : Gap_obs.Json.t -> (point, string) result
(** Inverse of {!point_json}. A document without a ["backend"] field parses
    as {!Asic}: points persisted before the axis existed were all ASIC
    evaluations. *)
