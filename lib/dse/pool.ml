module Obs = Gap_obs.Obs
module Json = Gap_obs.Json
module Supervisor = Gap_resilience.Supervisor
module Fault = Gap_resilience.Fault

type 'b outcome = ('b, Gap_resilience.Stage_error.t) result

let supervised_run ~policy ~stage f x =
  (Supervisor.run_stage ~policy ~stage (fun () -> f x)).Supervisor.result

let map ?(domains = 1) ?(policy = Supervisor.default_policy) ~stage f jobs =
  let n = Array.length jobs in
  let workers = max 1 (min domains n) in
  Obs.incr ~by:n "dse.pool.jobs";
  if workers = 1 then
    (* sequential: every job directly under the supervisor *)
    Array.map (fun x -> supervised_run ~policy ~stage f x) jobs
  else begin
    let results : 'b option array = Array.make n None in
    let next = Atomic.make 0 in
    let work ~fault_site () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else begin
          (* the kill site sits between claim and execution, so an injected
             worker death orphans exactly the claimed slot — which the
             degradation pass below must repair *)
          if fault_site then Fault.point "dse.worker";
          (* raw failures stay per-slot: the slot is re-run supervised on
             the main domain, because supervision state is main-only *)
          match f jobs.(i) with
          | v -> results.(i) <- Some v
          | exception _ -> ()
        end
      done
    in
    let spawned =
      Array.init (workers - 1) (fun _ -> Domain.spawn (work ~fault_site:true))
    in
    let main_err =
      match work ~fault_site:false () with () -> None | exception e -> Some e
    in
    let dead = ref 0 in
    Array.iter
      (fun d ->
        match Domain.join d with () -> () | exception _ -> incr dead)
      spawned;
    (match main_err with Some e -> raise e | None -> ());
    let orphaned = ref [] in
    (* Option.is_none, not polymorphic [= None]: the slots hold arbitrary
       ['b] payloads (closures, abstract blocks) that structural equality
       must never be asked to walk *)
    Array.iteri
      (fun i r -> if Option.is_none r then orphaned := i :: !orphaned)
      results;
    if !dead > 0 || !orphaned <> [] then begin
      Obs.incr "dse.pool.degraded";
      Obs.event "dse.pool.degrade"
        [
          ("stage", Json.Str stage);
          ("dead_workers", Json.Int !dead);
          ("orphaned_jobs", Json.Int (List.length !orphaned));
          ("domains", Json.Int domains);
        ]
    end;
    Array.mapi
      (fun i x ->
        match results.(i) with
        | Some v -> Ok v
        | None -> supervised_run ~policy ~stage f x)
      jobs
  end
