module Json = Gap_obs.Json
module Obs = Gap_obs.Obs
module Stage_error = Gap_resilience.Stage_error
module Fault = Gap_resilience.Fault

(* Record framing: magic 0xA5, u32-LE payload length, u32-LE CRC-32 of the
   payload, payload = u16-LE key length + key + data. One record, one
   O_APPEND write: a kill leaves a strict byte prefix, which recovery can
   always identify and truncate. *)

let magic = '\xA5'
let header_bytes = 9
let min_payload = 2
let max_record_bytes = 1 lsl 24
let manifest_name = "MANIFEST"
let manifest_version = 1
let default_segment_bytes = 256 * 1024

type t = {
  path : string;
  segment_bytes : int;
  mutable generation : int;
  mutable segments : string list;  (* manifest order; last is active *)
  mutable fd : Unix.file_descr option;  (* active segment, O_APPEND *)
  mutable active_bytes : int;
  mutable records : int;
  mutable stale : bool;  (* manifest flow differed at open *)
  flow : string;  (* the flow every write records *)
}

type info = {
  i_records : int;
  i_keys : int;
  i_segments : int;
  i_generation : int;
  i_flow : string;
  i_bytes : int;
  i_torn : string option;
}

let storage_fault ~store ?(segment = "") ?(offset = -1) detail =
  Stage_error.Storage_fault { stage = "segstore"; store; segment; offset; detail }

let corrupt ~store ~segment ~offset detail =
  raise (Stage_error.Stage_failure (storage_fault ~store ~segment ~offset detail))

let io_fail ~store detail =
  raise (Stage_error.Stage_failure (storage_fault ~store detail))

let seg_name ~generation ~seq = Printf.sprintf "seg-%04d-%04d.seg" generation seq

let is_store path =
  Sys.file_exists path
  && Sys.is_directory path
  && Sys.file_exists (Filename.concat path manifest_name)

(* --- manifest --- *)

let manifest_json ~flow ~generation ~segments =
  Json.Obj
    [
      ("version", Json.Int manifest_version);
      ("flow", Json.Str flow);
      ("generation", Json.Int generation);
      ("segments", Json.List (List.map (fun s -> Json.Str s) segments));
    ]

let write_manifest ~path ~flow ~generation ~segments =
  Gap_util.Atomic_io.write_string
    (Filename.concat path manifest_name)
    (Json.to_string ~pretty:true (manifest_json ~flow ~generation ~segments) ^ "\n")

let read_manifest ~store path =
  let file = Filename.concat path manifest_name in
  let doc =
    match open_in_bin file with
    | exception Sys_error e -> io_fail ~store ("manifest unreadable: " ^ e)
    | ic ->
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        s
  in
  match Json.of_string doc with
  | Error e -> corrupt ~store ~segment:manifest_name ~offset:0 ("malformed manifest: " ^ e)
  | Ok j -> (
      match
        ( Json.member "version" j,
          Json.member "flow" j,
          Json.member "generation" j,
          Json.member "segments" j )
      with
      | Some (Json.Int v), Some (Json.Str flow), Some (Json.Int generation),
        Some (Json.List segs)
        when v = manifest_version ->
          let segments =
            List.map
              (function
                | Json.Str s -> s
                | _ ->
                    corrupt ~store ~segment:manifest_name ~offset:0
                      "manifest segment list holds a non-string")
              segs
          in
          (flow, generation, segments)
      | Some (Json.Int v), _, _, _ when v <> manifest_version ->
          corrupt ~store ~segment:manifest_name ~offset:0
            (Printf.sprintf "manifest version %d, expected %d" v manifest_version)
      | _ -> corrupt ~store ~segment:manifest_name ~offset:0 "malformed manifest")

(* --- framing --- *)

let frame ~key payload =
  let klen = String.length key in
  if klen > 0xFFFF then invalid_arg "Segstore.append: key too long";
  let plen = min_payload + klen + String.length payload in
  if plen > max_record_bytes then invalid_arg "Segstore.append: record too large";
  let b = Buffer.create (header_bytes + plen) in
  Buffer.add_char b magic;
  Buffer.add_int32_le b (Int32.of_int plen);
  let body = Buffer.create plen in
  Buffer.add_int16_le body klen;
  Buffer.add_string body key;
  Buffer.add_string body payload;
  let body = Buffer.contents body in
  Buffer.add_int32_le b (Int32.of_int (Gap_util.Crc32.string body));
  Buffer.add_string b body;
  Buffer.contents b

let u32_at s pos = Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF
let u16_at s pos = String.get_uint16_le s pos

(* Scan one segment's bytes. A torn O_APPEND write leaves a strict prefix of
   the record, so in the last segment (a) a short header, (b) a record
   running past EOF, and (c) a defective *final* record are all recoverable
   tears; the same defects anywhere else — or a wrong magic byte, which no
   tear can produce at a record boundary but a final-record disk tear still
   may — are corruption. Returns the surviving records (reverse order
   appended to [acc]) and the tear offset, if any. *)
let scan_segment ~store ~segment ~is_last bytes acc =
  let len = String.length bytes in
  let recs = ref acc in
  let tear = ref None in
  let pos = ref 0 in
  let fail offset detail =
    if is_last then begin
      tear := Some (offset, detail);
      pos := len (* stop: everything from [offset] is dropped *)
    end
    else corrupt ~store ~segment ~offset detail
  in
  while !pos < len do
    let at = !pos in
    if len - at < header_bytes then fail at "torn record header"
    else if String.get bytes at <> magic then
      (* wrong leading byte: a torn append leaves a strict prefix, and the
         magic is the first byte written, so this is never a tear *)
      corrupt ~store ~segment ~offset:at "bad record magic"
    else begin
      let plen = u32_at bytes (at + 1) in
      if plen < min_payload || plen > max_record_bytes then
        corrupt ~store ~segment ~offset:at
          (Printf.sprintf "implausible record length %d" plen)
      else if at + header_bytes + plen > len then
        fail at "torn record body"
      else begin
        let crc = u32_at bytes (at + 5) in
        let body = String.sub bytes (at + header_bytes) plen in
        if Gap_util.Crc32.string body <> crc then begin
          if is_last && at + header_bytes + plen = len then
            (* the final record of the final segment: a device-level tail
               tear can leave garbage past the torn point, so recover it *)
            fail at "checksum mismatch in final record"
          else corrupt ~store ~segment ~offset:at "record checksum mismatch"
        end
        else begin
          let klen = u16_at body 0 in
          if min_payload + klen > plen then
            corrupt ~store ~segment ~offset:at "record key overruns payload"
          else begin
            let key = String.sub body min_payload klen in
            let payload =
              String.sub body (min_payload + klen) (plen - min_payload - klen)
            in
            recs := (key, payload) :: !recs;
            pos := at + header_bytes + plen
          end
        end
      end
    end
  done;
  (!recs, !tear)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- open + recovery --- *)

let open_append ~store file =
  try Unix.openfile file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  with Unix.Unix_error (e, _, _) ->
    io_fail ~store
      (Printf.sprintf "cannot open %s for append: %s" (Filename.basename file)
         (Unix.error_message e))

let create_fresh ~segment_bytes ~flow path =
  (try Unix.mkdir path 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let seg = seg_name ~generation:1 ~seq:0 in
  let fd = open_append ~store:path (Filename.concat path seg) in
  write_manifest ~path ~flow ~generation:1 ~segments:[ seg ];
  {
    path;
    segment_bytes;
    generation = 1;
    segments = [ seg ];
    fd = Some fd;
    active_bytes = 0;
    records = 0;
    stale = false;
    flow;
  }

(* files an interrupted compaction / roll / atomic write can leave behind *)
let sweep_strays path live =
  match Sys.readdir path with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun name ->
          if
            name <> manifest_name
            && not (List.mem name live)
            && (Filename.check_suffix name ".seg"
               || Filename.check_suffix name ".tmp")
          then try Sys.remove (Filename.concat path name) with Sys_error _ -> ())
        names

let open_store ?(segment_bytes = default_segment_bytes) ~flow path =
  Obs.incr "dse.segstore.open";
  if Sys.file_exists path && not (Sys.is_directory path) then
    io_fail ~store:path "not a segment-store directory";
  if not (is_store path) then begin
    (* missing entirely, or a directory left without a MANIFEST by a kill
       during creation (the manifest is written last): start fresh *)
    if Sys.file_exists path then sweep_strays path [];
    (create_fresh ~segment_bytes ~flow path, [], None)
  end
  else begin
    let mflow, generation, segments = read_manifest ~store:path path in
    if segments = [] then
      corrupt ~store:path ~segment:manifest_name ~offset:0
        "manifest lists no segments";
    sweep_strays path segments;
    let stale = mflow <> flow in
    let last = List.nth segments (List.length segments - 1) in
    let note = ref None in
    let recs = ref [] in
    let total = ref 0 in
    if not stale then
      List.iter
        (fun seg ->
          let file = Filename.concat path seg in
          let bytes =
            try read_file file
            with Sys_error e -> io_fail ~store:path ("segment unreadable: " ^ e)
          in
          let is_last = String.equal seg last in
          let acc, tear = scan_segment ~store:path ~segment:seg ~is_last bytes !recs in
          recs := acc;
          (match tear with
          | None -> total := !total + String.length bytes
          | Some (offset, detail) ->
              (* truncate exactly the torn tail so the next append starts at
                 a record boundary *)
              (try Unix.truncate file offset
               with Unix.Unix_error (e, _, _) ->
                 io_fail ~store:path
                   (Printf.sprintf "cannot truncate torn tail of %s: %s" seg
                      (Unix.error_message e)));
              total := !total + offset;
              Obs.incr "dse.segstore.torn";
              let n =
                Printf.sprintf "%s: truncated torn tail at offset %d (%s)" seg
                  offset detail
              in
              Obs.event "segstore.torn_tail"
                [
                  ("store", Json.Str path);
                  ("segment", Json.Str seg);
                  ("offset", Json.Int offset);
                  ("detail", Json.Str detail);
                ];
              note := Some n))
        segments;
    let records = List.rev !recs in
    let active = Filename.concat path last in
    let active_bytes =
      if stale then 0
      else
        match Unix.stat active with
        | { Unix.st_size; _ } -> st_size
        | exception Unix.Unix_error _ -> 0
    in
    let t =
      {
        path;
        segment_bytes;
        generation;
        segments;
        fd = None;
        active_bytes;
        records = List.length records;
        stale;
        flow;
      }
    in
    if not stale then t.fd <- Some (open_append ~store:path active);
    (t, records, !note)
  end

(* --- writes --- *)

let active_fd t =
  match t.fd with
  | Some fd -> fd
  | None ->
      let last = List.nth t.segments (List.length t.segments - 1) in
      let fd = open_append ~store:t.path (Filename.concat t.path last) in
      t.fd <- Some fd;
      fd

let write_all ~store fd s =
  let len = String.length s in
  let pos = ref 0 in
  (try
     while !pos < len do
       pos := !pos + Unix.write_substring fd s !pos (len - !pos)
     done
   with Unix.Unix_error (e, _, _) ->
     io_fail ~store (Printf.sprintf "append failed: %s" (Unix.error_message e)))

(* split records into segment-sized chunks, at least one segment *)
let plan_segments t recs =
  let chunks = ref [] in
  let current = ref [] in
  let bytes = ref 0 in
  List.iter
    (fun (key, payload) ->
      let r = frame ~key payload in
      if !bytes > 0 && !bytes + String.length r > t.segment_bytes then begin
        chunks := List.rev !current :: !chunks;
        current := [];
        bytes := 0
      end;
      current := r :: !current;
      bytes := !bytes + String.length r)
    recs;
  chunks := List.rev !current :: !chunks;
  List.rev !chunks

let rewrite t recs =
  Fault.point "segstore.compact";
  Obs.span "segstore.compact" (fun () ->
      let generation = t.generation + 1 in
      let chunks = plan_segments t recs in
      let names =
        List.mapi (fun seq _ -> seg_name ~generation ~seq) chunks
      in
      List.iter2
        (fun name chunk ->
          Gap_util.Atomic_io.write_file (Filename.concat t.path name)
            (fun oc -> List.iter (output_string oc) chunk))
        names chunks;
      (* the commit point: a kill before this leaves the old generation
         live (new files are strays, swept next open); after it, the new *)
      write_manifest ~path:t.path ~flow:t.flow ~generation ~segments:names;
      (match t.fd with Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ()) | None -> ());
      t.fd <- None;
      List.iter
        (fun seg ->
          if not (List.mem seg names) then
            try Sys.remove (Filename.concat t.path seg) with Sys_error _ -> ())
        t.segments;
      t.generation <- generation;
      t.segments <- names;
      t.records <- List.length recs;
      t.active_bytes <-
        (match List.rev names with
        | last :: _ -> (
            match Unix.stat (Filename.concat t.path last) with
            | { Unix.st_size; _ } -> st_size
            | exception Unix.Unix_error _ -> 0)
        | [] -> 0);
      t.stale <- false;
      Obs.incr "dse.segstore.compact")

let roll t =
  let seq =
    (* segment names are seg-<gen>-<seq>; the next seq continues the list *)
    List.length t.segments
  in
  let name = seg_name ~generation:t.generation ~seq in
  let file = Filename.concat t.path name in
  let fd = open_append ~store:t.path file in
  (* manifest gains the (still empty) segment before any record lands in
     it: a kill in between leaves a valid store either way *)
  write_manifest ~path:t.path ~flow:t.flow ~generation:t.generation
    ~segments:(t.segments @ [ name ]);
  (match t.fd with Some old -> (try Unix.close old with Unix.Unix_error _ -> ()) | None -> ());
  t.segments <- t.segments @ [ name ];
  t.fd <- Some fd;
  t.active_bytes <- 0;
  Obs.incr "dse.segstore.roll"

let append t ~key payload =
  if t.stale then begin
    (* first write after a stale-flow open: reset to an empty generation
       recorded at the current flow, exactly like the JSON store's
       rewrite-at-current-version *)
    Obs.incr "dse.segstore.reset";
    rewrite t []
  end;
  Fault.point "segstore.append";
  if t.active_bytes >= t.segment_bytes then roll t;
  let r = frame ~key payload in
  write_all ~store:t.path (active_fd t) r;
  t.active_bytes <- t.active_bytes + String.length r;
  t.records <- t.records + 1;
  Obs.incr "dse.segstore.append"

let records t = t.records
let generation t = t.generation
let segment_names t = t.segments
let stale t = t.stale

let close t =
  match t.fd with
  | Some fd ->
      t.fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

(* --- read-only validation --- *)

let validate path =
  match
    if not (Sys.file_exists path) then Error (storage_fault ~store:path "no such store")
    else if not (Sys.is_directory path) then
      Error (storage_fault ~store:path "not a segment-store directory")
    else if not (is_store path) then
      Error (storage_fault ~store:path "missing MANIFEST")
    else begin
      let mflow, generation, segments = read_manifest ~store:path path in
      let last =
        match List.rev segments with
        | l :: _ -> l
        | [] ->
            corrupt ~store:path ~segment:manifest_name ~offset:0
              "manifest lists no segments"
      in
      let records = ref 0 in
      let keys = Hashtbl.create 64 in
      let bytes = ref 0 in
      let torn = ref None in
      List.iter
        (fun seg ->
          let body = read_file (Filename.concat path seg) in
          let is_last = String.equal seg last in
          let recs, tear =
            scan_segment ~store:path ~segment:seg ~is_last body []
          in
          records := !records + List.length recs;
          List.iter (fun (k, _) -> Hashtbl.replace keys k ()) recs;
          bytes := !bytes + String.length body;
          match tear with
          | None -> ()
          | Some (offset, detail) ->
              torn :=
                Some
                  (Printf.sprintf "%s: torn tail at offset %d (%s)" seg offset
                     detail))
        segments;
      Ok
        {
          i_records = !records;
          i_keys = Hashtbl.length keys;
          i_segments = List.length segments;
          i_generation = generation;
          i_flow = mflow;
          i_bytes = !bytes;
          i_torn = !torn;
        }
    end
  with
  | r -> r
  | exception Stage_error.Stage_failure e -> Error e
  | exception Sys_error e -> Error (storage_fault ~store:path ("I/O error: " ^ e))
