module Json = Gap_obs.Json
module Obs = Gap_obs.Obs
module Table = Gap_util.Table
module Supervisor = Gap_resilience.Supervisor
module Stage_error = Gap_resilience.Stage_error

type t = {
  name : string;
  domains : int;
  total : int;
  points : (Space.point * Eval.metrics) array;
  failed : (Space.point * Stage_error.t) list;
  stats : Cache.stats;
}

let stage = "dse.eval"

(* Interruption harness: sequential, store flushed after every fresh
   evaluation, stops after [budget] misses. Every prefix of this loop
   leaves a valid store on disk, so killing it mid-sweep is recoverable
   by construction. *)
let run_interruptible ~budget ~cache pts =
  let kept = ref [] and failed = ref [] and fresh = ref 0 in
  (try
     Array.iter
       (fun p ->
         if !fresh >= budget then raise Exit;
         match Cache.find cache p with
         | Some m -> kept := (p, m) :: !kept
         | None -> (
             let o = Supervisor.run_stage ~stage (fun () -> Eval.point p) in
             match o.Supervisor.result with
             | Ok m ->
                 Cache.add cache p m;
                 Cache.flush cache;
                 incr fresh;
                 kept := (p, m) :: !kept
             | Error e -> failed := (p, e) :: !failed))
       pts
   with Exit -> ());
  (Array.of_list (List.rev !kept), List.rev !failed)

let run_full ~domains ~cache pts =
  let lookups = Array.map (fun p -> Cache.find cache p) pts in
  let miss_idx = ref [] in
  Array.iteri
    (fun i l -> if Option.is_none l then miss_idx := i :: !miss_idx)
    lookups;
  let miss_idx = Array.of_list (List.rev !miss_idx) in
  let misses = Array.map (fun i -> pts.(i)) miss_idx in
  let outcomes = Pool.map ~domains ~stage Eval.point misses in
  let failed = ref [] in
  Array.iteri
    (fun k i ->
      match outcomes.(k) with
      | Ok m ->
          lookups.(i) <- Some m;
          Cache.add cache pts.(i) m
      | Error e -> failed := (pts.(i), e) :: !failed)
    miss_idx;
  Cache.flush cache;
  let kept = ref [] in
  Array.iteri
    (fun i -> function Some m -> kept := (pts.(i), m) :: !kept | None -> ())
    lookups;
  (Array.of_list (List.rev !kept), List.rev !failed)

let run ?(domains = 1) ?capacity ?store ?stop_after ~name space =
  Eval.warmup ();
  Obs.span "dse.sweep" ~attrs:[ ("preset", Json.Str name) ] (fun () ->
      let cache = Cache.create ?capacity ?store () in
      let pts = Array.of_list (Space.enumerate space) in
      let points, failed =
        match stop_after with
        | Some budget -> run_interruptible ~budget ~cache pts
        | None -> run_full ~domains ~cache pts
      in
      Obs.incr ~by:(Array.length points) "dse.sweep.points";
      {
        name;
        domains;
        total = Array.length pts;
        points;
        failed;
        stats = Cache.stats cache;
      })

(* --- rendering --- *)

let axis_cells (p : Space.point) =
  [
    string_of_int p.Space.depth;
    Json.float_repr p.Space.logic_fo4;
    Space.sizing_name p.Space.sizing;
    Json.float_repr p.Space.skew_frac;
    (if p.Space.domino then "yes" else "no");
    (if p.Space.floorplan then "yes" else "no");
    (if p.Space.binning then "yes" else "no");
    Json.float_repr p.Space.sigma_scale;
    string_of_int p.Space.mc_dies;
    Space.backend_name p.Space.backend;
  ]

let axis_header =
  [ "depth"; "fo4"; "sizing"; "skew"; "domino"; "fplan"; "bin"; "sigma"; "dies";
    "tech" ]

let table r =
  let rows =
    Array.to_list r.points
    |> List.map (fun (p, (m : Eval.metrics)) ->
           axis_cells p
           @ [
               Table.fmt_float ~decimals:1 m.Eval.delay_ps;
               Table.fmt_float ~decimals:1 m.Eval.freq_mhz;
               Table.fmt_float ~decimals:3 m.Eval.area;
               Table.fmt_float ~decimals:3 m.Eval.power;
               Table.fmt_ratio m.Eval.composite;
             ])
  in
  Table.render
    ~header:
      (axis_header @ [ "delay_ps"; "freq_mhz"; "area"; "power"; "gap" ])
    rows

let point_metrics_json (p, m) =
  Json.Obj [ ("point", Space.point_json p); ("metrics", Eval.to_json m) ]

let cache_json (s : Cache.stats) =
  Json.Obj
    [
      ("hits", Json.Int s.Cache.hits);
      ("misses", Json.Int s.Cache.misses);
      ("hit_rate", Json.Float (Cache.hit_rate s));
      ("entries", Json.Int s.Cache.entries);
      ("evictions", Json.Int s.Cache.evictions);
    ]

let to_json r =
  Json.Obj
    [
      ("preset", Json.Str r.name);
      ("domains", Json.Int r.domains);
      ("lattice", Json.Int r.total);
      ("evaluated", Json.Int (Array.length r.points));
      ("cache", cache_json r.stats);
      ("failed",
       Json.List
         (List.map
            (fun (p, e) ->
              Json.Obj
                [
                  ("point", Space.point_json p);
                  ("error", Stage_error.to_json e);
                ])
            r.failed));
      ("points", Json.List (List.map point_metrics_json (Array.to_list r.points)));
    ]

let pareto r =
  Array.to_list r.points
  |> List.map (fun ((_, m) as pm) -> (pm, Frontier.of_metrics m))
  |> Frontier.pareto
  |> List.stable_sort (fun (_, a) (_, b) ->
         compare a.Frontier.delay_ps b.Frontier.delay_ps)

let pareto_table r =
  let rows =
    pareto r
    |> List.map (fun (((p : Space.point), (m : Eval.metrics)), o) ->
           axis_cells p
           @ [
               Table.fmt_float ~decimals:1 o.Frontier.delay_ps;
               Table.fmt_float ~decimals:3 o.Frontier.area;
               Table.fmt_float ~decimals:3 o.Frontier.power;
               Table.fmt_ratio m.Eval.composite;
             ])
  in
  Table.render
    ~header:(axis_header @ [ "delay_ps"; "area"; "power"; "gap" ])
    rows

let pareto_json r =
  Json.Obj
    [
      ("preset", Json.Str r.name);
      ("frontier",
       Json.List
         (pareto r
         |> List.map (fun ((p, m), _) -> point_metrics_json (p, m))));
    ]
