(** Content-addressed cache keys for design-space points.

    A key is the FNV-1a hash of the evaluator's {!Eval.flow_version}
    followed by the point's canonical rendering, in hex. Two points collide
    only if their canonical strings collide (property-tested across every
    preset), and bumping the flow version invalidates every stored result
    at once — the store needs no migration logic. The backend axis landed
    with such a bump (["gap-dse-1"] -> ["gap-dse-2"]): results keyed before
    the axis existed read cold instead of aliasing onto the enlarged
    space. *)

val of_point : Space.point -> string
(** 16 hex digits, stable across processes and machines. *)
