let of_point p =
  Gap_util.Hash.(
    to_hex (string (string seed Eval.flow_version) (Space.to_canonical p)))
