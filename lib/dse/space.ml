module Json = Gap_obs.Json

type sizing = Minimal | Typical | Rich_tilos
type backend = Asic | Fpga

type point = {
  depth : int;
  logic_fo4 : float;
  sizing : sizing;
  skew_frac : float;
  domino : bool;
  floorplan : bool;
  binning : bool;
  sigma_scale : float;
  mc_dies : int;
  backend : backend;
}

type t = {
  depths : int list;
  logic_fo4s : float list;
  sizings : sizing list;
  skew_fracs : float list;
  dominos : bool list;
  floorplans : bool list;
  binnings : bool list;
  sigma_scales : float list;
  mc_dies : int list;
  backends : backend list;
}

let size s =
  List.length s.depths * List.length s.logic_fo4s * List.length s.sizings
  * List.length s.skew_fracs * List.length s.dominos
  * List.length s.floorplans * List.length s.binnings
  * List.length s.sigma_scales * List.length s.mc_dies
  * List.length s.backends

let enumerate s =
  (* row-major: later axes vary fastest; plain nested list comprehension so
     the order is manifestly deterministic *)
  List.concat_map
    (fun depth ->
      List.concat_map
        (fun logic_fo4 ->
          List.concat_map
            (fun sizing ->
              List.concat_map
                (fun skew_frac ->
                  List.concat_map
                    (fun domino ->
                      List.concat_map
                        (fun floorplan ->
                          List.concat_map
                            (fun binning ->
                              List.concat_map
                                (fun sigma_scale ->
                                  List.concat_map
                                    (fun mc_dies ->
                                      List.map
                                        (fun backend ->
                                          {
                                            depth;
                                            logic_fo4;
                                            sizing;
                                            skew_frac;
                                            domino;
                                            floorplan;
                                            binning;
                                            sigma_scale;
                                            mc_dies;
                                            backend;
                                          })
                                        s.backends)
                                    s.mc_dies)
                                s.sigma_scales)
                            s.binnings)
                        s.floorplans)
                    s.dominos)
                s.skew_fracs)
            s.sizings)
        s.logic_fo4s)
    s.depths

let baseline =
  {
    depth = 1;
    logic_fo4 = 44.;
    sizing = Minimal;
    skew_frac = 0.10;
    domino = false;
    floorplan = false;
    binning = false;
    sigma_scale = 1.0;
    mc_dies = 4000;
    backend = Asic;
  }

let custom_corner =
  {
    baseline with
    depth = 4;
    logic_fo4 = 36.;
    sizing = Rich_tilos;
    skew_frac = 0.05;
    domino = true;
    floorplan = true;
    binning = true;
  }

(* one-value axes inherit from [baseline]; presets only open the axes their
   sweep is about, so point counts stay tractable *)
let fixed =
  {
    depths = [ baseline.depth ];
    logic_fo4s = [ baseline.logic_fo4 ];
    sizings = [ baseline.sizing ];
    skew_fracs = [ baseline.skew_frac ];
    dominos = [ baseline.domino ];
    floorplans = [ baseline.floorplan ];
    binnings = [ baseline.binning ];
    sigma_scales = [ baseline.sigma_scale ];
    mc_dies = [ baseline.mc_dies ];
    backends = [ baseline.backend ];
  }

let presets =
  [
    ( "smoke",
      "2x2 depth/sizing corner check (4 points, the CI sweep)",
      { fixed with depths = [ 1; 4 ]; sizings = [ Minimal; Rich_tilos ] } );
    ( "depth-x-sizing",
      "pipeline depth x drive-sizing policy lattice (15 points)",
      {
        fixed with
        depths = [ 1; 2; 4; 6; 8 ];
        sizings = [ Minimal; Typical; Rich_tilos ];
      } );
    ( "factor-axes",
      "the paper's five factor axes at both corners (2^7 = 128 points); \
       the best corner reproduces the x17.8 composite",
      {
        fixed with
        depths = [ 1; 4 ];
        logic_fo4s = [ 44.; 36. ];
        sizings = [ Minimal; Rich_tilos ];
        skew_fracs = [ 0.10; 0.05 ];
        dominos = [ false; true ];
        floorplans = [ false; true ];
        binnings = [ false; true ];
      } );
    ( "backend",
      "ASIC standard cells vs FPGA soft logic across the depth x sizing \
       lattice (8 points)",
      {
        fixed with
        depths = [ 1; 4 ];
        sizings = [ Minimal; Rich_tilos ];
        backends = [ Asic; Fpga ];
      } );
    ( "variation",
      "binning gain vs process spread and Monte Carlo resolution (18 points)",
      {
        fixed with
        binnings = [ true ];
        sigma_scales = [ 0.5; 1.0; 1.5 ];
        mc_dies = [ 1000; 2000; 4000; 8000; 16000; 32000 ];
      } );
  ]

let find_preset name =
  List.find_map (fun (n, _, s) -> if n = name then Some s else None) presets

let preset_names () = List.map (fun (n, _, _) -> n) presets

let sizing_name = function
  | Minimal -> "minimal"
  | Typical -> "typical"
  | Rich_tilos -> "rich-tilos"

let sizing_of_name = function
  | "minimal" -> Some Minimal
  | "typical" -> Some Typical
  | "rich-tilos" -> Some Rich_tilos
  | _ -> None

let backend_name = function Asic -> "asic" | Fpga -> "fpga"

let backend_of_name = function
  | "asic" -> Some Asic
  | "fpga" -> Some Fpga
  | _ -> None

let to_canonical p =
  Printf.sprintf
    "depth=%d;logic_fo4=%s;sizing=%s;skew=%s;domino=%b;floorplan=%b;binning=%b;sigma=%s;dies=%d;backend=%s"
    p.depth
    (Json.float_repr p.logic_fo4)
    (sizing_name p.sizing)
    (Json.float_repr p.skew_frac)
    p.domino p.floorplan p.binning
    (Json.float_repr p.sigma_scale)
    p.mc_dies
    (backend_name p.backend)

let point_json p =
  Json.Obj
    [
      ("depth", Json.Int p.depth);
      ("logic_fo4", Json.Float p.logic_fo4);
      ("sizing", Json.Str (sizing_name p.sizing));
      ("skew_frac", Json.Float p.skew_frac);
      ("domino", Json.Bool p.domino);
      ("floorplan", Json.Bool p.floorplan);
      ("binning", Json.Bool p.binning);
      ("sigma_scale", Json.Float p.sigma_scale);
      ("mc_dies", Json.Int p.mc_dies);
      ("backend", Json.Str (backend_name p.backend));
    ]

let point_of_json j =
  (* points persisted before the backend axis existed carry no "backend"
     field: they were all ASIC evaluations, so the missing field defaults *)
  let backend =
    match Json.member "backend" j with
    | None -> Ok Asic
    | Some (Json.Str b) -> (
        match backend_of_name b with
        | Some b -> Ok b
        | None -> Error (Printf.sprintf "unknown backend %S" b))
    | Some _ -> Error "malformed backend field"
  in
  let num = function
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  match
    ( Json.member "depth" j,
      num (Json.member "logic_fo4" j),
      Json.member "sizing" j,
      num (Json.member "skew_frac" j),
      Json.member "domino" j,
      Json.member "floorplan" j,
      Json.member "binning" j,
      num (Json.member "sigma_scale" j),
      Json.member "mc_dies" j )
  with
  | ( Some (Json.Int depth),
      Some logic_fo4,
      Some (Json.Str sz),
      Some skew_frac,
      Some (Json.Bool domino),
      Some (Json.Bool floorplan),
      Some (Json.Bool binning),
      Some sigma_scale,
      Some (Json.Int mc_dies) ) -> (
      match (sizing_of_name sz, backend) with
      | Some sizing, Ok backend ->
          Ok
            {
              depth;
              logic_fo4;
              sizing;
              skew_frac;
              domino;
              floorplan;
              binning;
              sigma_scale;
              mc_dies;
              backend;
            }
      | None, _ -> Error (Printf.sprintf "unknown sizing policy %S" sz)
      | _, Error e -> Error e)
  | _ -> Error "malformed design-space point"
