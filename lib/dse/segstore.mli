(** Append-only checksummed segment store: the crash-only persistence layer
    under {!Cache}.

    A store is a {e directory} holding a [MANIFEST] (strict JSON, written
    only through [Gap_util.Atomic_io]) and the segment files of the current
    generation. Every record is framed as

    {v magic 0xA5 | u32-LE payload length | u32-LE CRC-32 | payload v}

    where the payload carries a length-prefixed key followed by opaque
    record bytes, and each append is a single [O_APPEND] write — a kill
    mid-append leaves a strict prefix of the record, never interleaved
    garbage.

    Recovery on open scans every listed segment in order:

    - a record that runs past the end of the {e last} segment, or a
      defective {e final} record of the last segment, is a torn tail: it is
      truncated away and reported as a note (the store stays valid);
    - any defect {e before} the tail — bad magic, bad CRC, a tear in a
      non-final segment — is real corruption and raises a typed
      [Stage_error.Storage_fault] naming the segment and byte offset.

    Compaction ({!rewrite}) writes the surviving records into a fresh
    generation via temp-file + rename and then atomically replaces the
    MANIFEST, so a kill at any instant leaves either the old or the new
    generation fully valid; stray files from interrupted compactions are
    swept on the next open.

    Appends and compactions pass the [segstore.append] / [segstore.compact]
    fault sites and feed [dse.segstore.*] counters through [Gap_obs]. Not
    domain-safe (same contract as {!Cache}). *)

type t

val open_store :
  ?segment_bytes:int ->
  flow:string ->
  string ->
  t * (string * string) list * string option
(** Open (creating if missing) and recover the store at a directory path.
    Returns the handle, the surviving records as [(key, payload)] in append
    order (duplicate keys included — callers apply last-wins), and the
    recovery note when a torn tail was truncated. A manifest whose recorded
    flow differs from [flow] returns no records (stale results are
    invisible) and the store is reset to an empty generation at the current
    flow on the first write. [segment_bytes] (default 256 KiB) bounds a
    segment before appends roll to a new one.

    @raise Gap_resilience.Stage_error.Stage_failure ([Storage_fault]) on
    pre-tail corruption, a malformed manifest, or an I/O failure. *)

val append : t -> key:string -> string -> unit
(** Append one record with a single [O_APPEND] write, rolling to a new
    segment past the size bound. Passes the [segstore.append] fault site
    before touching the file, so an injected fault never half-writes. *)

val rewrite : t -> (string * string) list -> unit
(** Compact: replace the store's contents with exactly [records] in a fresh
    generation (old segments are deleted only after the new MANIFEST is in
    place). Passes the [segstore.compact] fault site first. *)

val records : t -> int
(** Records in the current generation, loaded plus appended — minus nothing:
    superseded duplicates still count until a {!rewrite} drops them. *)

val generation : t -> int

val segment_names : t -> string list
(** Current generation's segment files, in manifest order. *)

val stale : t -> bool
(** The manifest's flow differed at open and no write has reset it yet. *)

val close : t -> unit

(** {1 Inspection} *)

type info = {
  i_records : int;
  i_keys : int;  (** distinct keys among the surviving records *)
  i_segments : int;
  i_generation : int;
  i_flow : string;
  i_bytes : int;  (** total segment bytes *)
  i_torn : string option;
      (** the note a recovering open would report, without truncating *)
}

val validate : string -> (info, Gap_resilience.Stage_error.t) result
(** Read-only full scan of the store at a directory path: every record of
    every listed segment is re-framed and re-checksummed. Never writes —
    a torn tail is reported in [i_torn], corruption as [Error]. *)

val is_store : string -> bool
(** The path is a directory containing a MANIFEST. *)

val manifest_name : string
(** ["MANIFEST"] — exposed for the chaos campaign's file surgery. *)
