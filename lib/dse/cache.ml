module Json = Gap_obs.Json
module Obs = Gap_obs.Obs
module Stage_error = Gap_resilience.Stage_error
module Supervisor = Gap_resilience.Supervisor

type entry = {
  e_key : string;
  e_point : Space.point;
  e_metrics : Eval.metrics;
  mutable e_tick : int;  (** last-use stamp for LRU eviction *)
}

(* Where the persistent side lives. [Lazy_store] defers touching the disk
   until the first flush — a cache that never flushes never writes, exactly
   like the old JSON store — and is also the holding state for a foreign or
   stale-flow legacy file that the first flush replaces. *)
type backend =
  | Mem
  | Seg of Segstore.t
  | Lazy_store of string

type t = {
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  mutable backend : backend;
  mutable pending : entry list;  (* adds since the last flush, newest first *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable dirty : bool;
  mutable recovery_note : string option;
}

type stats = {
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

type store_info = {
  si_entries : int;
  si_records : int;
  si_segments : int;
  si_generation : int;
  si_flow : string;
  si_format : string;
  si_torn : string option;
}

type store_status =
  | Store of store_info
  | Missing of string
  | Foreign of string
  | Corrupt of Stage_error.t

(* --- the legacy JSON document (read for migration, written by tests) --- *)

let store_version = 1

let entry_json e =
  Json.Obj
    [
      ("key", Json.Str e.e_key);
      ("point", Space.point_json e.e_point);
      ("metrics", Eval.to_json e.e_metrics);
    ]

let entry_of_json j =
  match (Json.member "key" j, Json.member "point" j, Json.member "metrics" j) with
  | Some (Json.Str key), Some pj, Some mj -> (
      match (Space.point_of_json pj, Eval.of_json mj) with
      | Ok p, Ok m -> Some { e_key = key; e_point = p; e_metrics = m; e_tick = 0 }
      | _ -> None)
  | _ -> None

let legacy_store_json entries =
  Json.Obj
    [
      ("version", Json.Int store_version);
      ("flow", Json.Str Eval.flow_version);
      ("entries", Json.List (List.map entry_json entries));
    ]

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      Some s

let parse_legacy s =
  match Json.of_string s with
  | Error e -> Error e
  | Ok j -> (
      match
        (Json.member "version" j, Json.member "flow" j, Json.member "entries" j)
      with
      | Some (Json.Int v), Some (Json.Str flow), Some (Json.List es)
        when v = store_version ->
          Ok (flow, List.filter_map entry_of_json es)
      | Some (Json.Int v), _, _ when v <> store_version ->
          Error (Printf.sprintf "store version %d, expected %d" v store_version)
      | _ -> Error "malformed cache store")

let write_legacy_json path pms =
  let entries =
    List.map
      (fun (p, m) ->
        { e_key = Key.of_point p; e_point = p; e_metrics = m; e_tick = 0 })
      pms
    |> List.sort (fun a b -> String.compare a.e_key b.e_key)
  in
  Gap_util.Atomic_io.write_string path
    (Json.to_string ~pretty:true (legacy_store_json entries) ^ "\n")

(* --- segment-record payloads --- *)

let payload_of_entry e =
  Json.to_string
    (Json.Obj
       [
         ("point", Space.point_json e.e_point);
         ("metrics", Eval.to_json e.e_metrics);
       ])

let entry_of_payload ~store key payload =
  let fail detail =
    raise
      (Stage_error.Stage_failure
         (Stage_error.Storage_fault
            { stage = "dse.cache"; store; segment = ""; offset = -1; detail }))
  in
  match Json.of_string payload with
  | Error e -> fail (Printf.sprintf "undecodable record payload (%s): %s" key e)
  | Ok j -> (
      match (Json.member "point" j, Json.member "metrics" j) with
      | Some pj, Some mj -> (
          match (Space.point_of_json pj, Eval.of_json mj) with
          | Ok p, Ok m -> { e_key = key; e_point = p; e_metrics = m; e_tick = 0 }
          | _ -> fail (Printf.sprintf "record %s does not decode to a point" key))
      | _ -> fail (Printf.sprintf "record %s misses point/metrics" key))

(* --- construction --- *)

let sorted_entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl []
  |> List.sort (fun a b -> String.compare a.e_key b.e_key)

let evict_lru t =
  (* O(n) scan; evictions only happen past [capacity], far off the sweep
     hot path. Ties on the tick (every entry loaded from a store carries
     tick 0 until touched) break on the key, not on Hashtbl iteration
     order, so the surviving set — and therefore the flushed store — is
     byte-identical across runs whatever order the table hashed to. *)
  let better b e =
    b.e_tick < e.e_tick
    || (b.e_tick = e.e_tick && String.compare b.e_key e.e_key <= 0)
  in
  let victim =
    Hashtbl.fold
      (fun _ e acc ->
        match acc with Some b when better b e -> acc | _ -> Some e)
      t.tbl None
  in
  match victim with
  | Some e ->
      Hashtbl.remove t.tbl e.e_key;
      t.evictions <- t.evictions + 1;
      Obs.incr "dse.cache.evict"
  | None -> ()

let migrate_tmp path = path ^ ".migrate"

(* Build a complete segment store from legacy entries at [path ^ ".migrate"],
   then swap it into place. The file is unlinked only after the replacement
   store fully exists; a kill between unlink and rename is recovered by
   [resume_migration] on the next open. *)
let migrate_json path entries =
  Obs.incr "dse.cache.migrations";
  Obs.event "dse.cache.migrate"
    [ ("store", Json.Str path); ("entries", Json.Int (List.length entries)) ];
  let tmp = migrate_tmp path in
  let rec rm_rf p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun n -> rm_rf (Filename.concat p n)) (Sys.readdir p);
        (try Unix.rmdir p with Unix.Unix_error _ -> ())
      end
      else try Sys.remove p with Sys_error _ -> ()
  in
  rm_rf tmp;
  let s, _, _ = Segstore.open_store ~flow:Eval.flow_version tmp in
  List.iter (fun e -> Segstore.append s ~key:e.e_key (payload_of_entry e)) entries;
  Segstore.close s;
  (try Sys.remove path with Sys_error _ -> ());
  Sys.rename tmp path

let resume_migration path =
  (* a kill after the legacy file was unlinked but before the rename: the
     finished replacement store is still parked at the temp path *)
  if (not (Sys.file_exists path)) && Segstore.is_store (migrate_tmp path) then
    Sys.rename (migrate_tmp path) path

let create ?(capacity = 4096) ?store () =
  let t =
    {
      capacity = max 1 capacity;
      tbl = Hashtbl.create 64;
      backend = Mem;
      pending = [];
      tick = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
      dirty = false;
      recovery_note = None;
    }
  in
  (match store with
  | None -> ()
  | Some path ->
      resume_migration path;
      let open_seg () =
        let s, records, note = Segstore.open_store ~flow:Eval.flow_version path in
        t.recovery_note <- note;
        List.iter
          (fun (key, payload) ->
            (* replay in append order: the last record per key wins *)
            Hashtbl.replace t.tbl key (entry_of_payload ~store:path key payload))
          records;
        while Hashtbl.length t.tbl > t.capacity do
          evict_lru t
        done;
        t.backend <- Seg s
      in
      if Sys.file_exists path && Sys.is_directory path then open_seg ()
      else
        match Option.bind (if Sys.file_exists path then Some path else None) read_file with
        | None -> t.backend <- Lazy_store path
        | Some doc -> (
            match parse_legacy doc with
            | Ok (flow, entries) when flow = Eval.flow_version ->
                (* a healthy legacy JSON store: migrate it on first open *)
                migrate_json path
                  (List.filteri (fun i _ -> i < t.capacity) entries);
                open_seg ()
            | Ok _ | Error _ ->
                (* stale flow version or a foreign/corrupt document: start
                   cold; the first flush replaces it with a segment store
                   at the current flow *)
                t.backend <- Lazy_store path;
                t.dirty <- true));
  t

let recovery_note t = t.recovery_note

let touch t e =
  t.tick <- t.tick + 1;
  e.e_tick <- t.tick

let find t p =
  match Hashtbl.find_opt t.tbl (Key.of_point p) with
  | Some e ->
      touch t e;
      t.hits <- t.hits + 1;
      Obs.incr "dse.cache.hit";
      Some e.e_metrics
  | None ->
      t.misses <- t.misses + 1;
      Obs.incr "dse.cache.miss";
      None

let add t p m =
  let key = Key.of_point p in
  let e =
    match Hashtbl.find_opt t.tbl key with
    | Some e ->
        touch t e;
        e
    | None ->
        if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
        let e = { e_key = key; e_point = p; e_metrics = m; e_tick = 0 } in
        touch t e;
        Hashtbl.add t.tbl key e;
        e
  in
  t.pending <- e :: t.pending;
  t.dirty <- true;
  Obs.incr "dse.cache.store"

(* pending adds, newest-first -> one record per key, sorted for
   deterministic on-disk order *)
let pending_records t =
  let seen = Hashtbl.create 16 in
  let uniq =
    List.filter
      (fun e ->
        if Hashtbl.mem seen e.e_key then false
        else begin
          Hashtbl.add seen e.e_key ();
          true
        end)
      t.pending
  in
  List.sort (fun a b -> String.compare a.e_key b.e_key) uniq

let encoded_entries t =
  List.map (fun e -> (e.e_key, payload_of_entry e)) (sorted_entries t)

(* compaction threshold: rewrite once the log holds enough superseded
   records that replay cost is dominated by garbage *)
let compact_due s ~live =
  let records = Segstore.records s in
  records > 64 && records > 2 * live

let do_flush t =
  match t.backend with
  | Mem -> ()
  | Lazy_store path ->
      (* first flush: materialize the store, replacing whatever foreign or
         stale file sat at the path *)
      if Sys.file_exists path && not (Sys.is_directory path) then
        (try Sys.remove path with Sys_error _ -> ());
      let s, _, _ = Segstore.open_store ~flow:Eval.flow_version path in
      List.iter
        (fun e -> Segstore.append s ~key:e.e_key (payload_of_entry e))
        (sorted_entries t);
      t.backend <- Seg s;
      t.pending <- []
  | Seg s ->
      if Segstore.stale s then begin
        (* stale-flow store: one rewrite brings it to the current flow with
           exactly the live entries (usually none) *)
        Segstore.rewrite s (encoded_entries t);
        t.pending <- []
      end
      else begin
        List.iter
          (fun e ->
            (* an entry evicted from memory after being queued still
               persists: the record outlives the LRU, matching a log *)
            Segstore.append s ~key:e.e_key (payload_of_entry e))
          (pending_records t);
        t.pending <- [];
        if compact_due s ~live:(Hashtbl.length t.tbl) then
          Segstore.rewrite s (encoded_entries t)
      end

let flush t =
  match t.backend with
  | Mem -> ()
  | Lazy_store _ | Seg _ ->
      if t.dirty then begin
        (* transient append/compaction faults retry here; duplicate appends
           from a half-done attempt are harmless (last record per key wins) *)
        Supervisor.retry ~stage:"dse.cache.flush" (fun () -> do_flush t);
        t.dirty <- false
      end

let try_flush t =
  match flush t with
  | () -> Ok ()
  | exception Stage_error.Stage_failure e -> Error e

let compact t =
  flush t;
  match t.backend with
  | Seg s ->
      Supervisor.retry ~stage:"dse.cache.compact" (fun () ->
          Segstore.rewrite s (encoded_entries t))
  | Mem | Lazy_store _ -> ()

(* key-sorted listing: renders and stores derived from it are byte-identical
   across runs regardless of insertion order *)
let entries t = List.map (fun e -> (e.e_point, e.e_metrics)) (sorted_entries t)

let stats t =
  {
    entries = Hashtbl.length t.tbl;
    capacity = t.capacity;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
  }

let backend_stats t =
  match t.backend with
  | Seg s ->
      Some
        ( Segstore.records s,
          List.length (Segstore.segment_names s),
          Segstore.generation s )
  | Mem | Lazy_store _ -> None

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let clear path =
  if Sys.file_exists path && not (Sys.is_directory path) then
    (try Sys.remove path with Sys_error _ -> ());
  let s, _, _ = Segstore.open_store ~flow:Eval.flow_version path in
  (* reset even a populated store to an empty fresh generation *)
  Segstore.rewrite s [];
  Segstore.close s

let inspect_store path =
  if not (Sys.file_exists path) then Missing (path ^ ": no such store")
  else if Sys.is_directory path then
    match Segstore.validate path with
    | Error e -> Corrupt e
    | Ok i ->
        Store
          {
            si_entries = i.Segstore.i_keys;
            si_records = i.Segstore.i_records;
            si_segments = i.Segstore.i_segments;
            si_generation = i.Segstore.i_generation;
            si_flow = i.Segstore.i_flow;
            si_format = "segment";
            si_torn = i.Segstore.i_torn;
          }
  else
    match read_file path with
    | None -> Missing (path ^ ": unreadable")
    | Some doc -> (
        match parse_legacy doc with
        | Ok (flow, entries) ->
            let n = List.length entries in
            Store
              {
                si_entries = n;
                si_records = n;
                si_segments = 0;
                si_generation = 0;
                si_flow = flow;
                si_format = "json-legacy";
                si_torn = None;
              }
        | Error e -> Foreign (path ^ ": " ^ e))
