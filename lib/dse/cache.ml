module Json = Gap_obs.Json
module Obs = Gap_obs.Obs

type entry = {
  e_key : string;
  e_point : Space.point;
  e_metrics : Eval.metrics;
  mutable e_tick : int;  (** last-use stamp for LRU eviction *)
}

type t = {
  capacity : int;
  store : string option;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable dirty : bool;
}

type stats = {
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

let store_version = 1

let entry_json e =
  Json.Obj
    [
      ("key", Json.Str e.e_key);
      ("point", Space.point_json e.e_point);
      ("metrics", Eval.to_json e.e_metrics);
    ]

let entry_of_json j =
  match (Json.member "key" j, Json.member "point" j, Json.member "metrics" j) with
  | Some (Json.Str key), Some pj, Some mj -> (
      match (Space.point_of_json pj, Eval.of_json mj) with
      | Ok p, Ok m -> Some { e_key = key; e_point = p; e_metrics = m; e_tick = 0 }
      | _ -> None)
  | _ -> None

let store_json entries =
  Json.Obj
    [
      ("version", Json.Int store_version);
      ("flow", Json.Str Eval.flow_version);
      ("entries", Json.List (List.map entry_json entries));
    ]

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      Some s

let parse_store s =
  match Json.of_string s with
  | Error e -> Error e
  | Ok j -> (
      match
        (Json.member "version" j, Json.member "flow" j, Json.member "entries" j)
      with
      | Some (Json.Int v), Some (Json.Str flow), Some (Json.List es)
        when v = store_version ->
          Ok (flow, List.filter_map entry_of_json es)
      | Some (Json.Int v), _, _ when v <> store_version ->
          Error (Printf.sprintf "store version %d, expected %d" v store_version)
      | _ -> Error "malformed cache store")

let read_store path =
  match read_file path with
  | None -> Error (path ^ ": no such file")
  | Some s -> (
      match parse_store s with
      | Ok (flow, es) -> Ok (List.length es, flow)
      | Error e -> Error (path ^ ": " ^ e))

let create ?(capacity = 4096) ?store () =
  let t =
    {
      capacity = max 1 capacity;
      store;
      tbl = Hashtbl.create 64;
      tick = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
      dirty = false;
    }
  in
  (match Option.map read_file store with
  | Some (Some s) -> (
      match parse_store s with
      | Ok (flow, entries) when flow = Eval.flow_version ->
          List.iter
            (fun e ->
              if Hashtbl.length t.tbl < t.capacity then
                Hashtbl.replace t.tbl e.e_key e)
            entries
      | Ok _ | Error _ ->
          (* stale flow version or a foreign/corrupt document: start cold;
             the next flush rewrites it at the current version *)
          t.dirty <- true)
  | Some None | None -> ());
  t

let touch t e =
  t.tick <- t.tick + 1;
  e.e_tick <- t.tick

let find t p =
  match Hashtbl.find_opt t.tbl (Key.of_point p) with
  | Some e ->
      touch t e;
      t.hits <- t.hits + 1;
      Obs.incr "dse.cache.hit";
      Some e.e_metrics
  | None ->
      t.misses <- t.misses + 1;
      Obs.incr "dse.cache.miss";
      None

let evict_lru t =
  (* O(n) scan; evictions only happen past [capacity], far off the sweep
     hot path. Ties on the tick (every entry loaded from a store carries
     tick 0 until touched) break on the key, not on Hashtbl iteration
     order, so the surviving set — and therefore the flushed store — is
     byte-identical across runs whatever order the table hashed to. *)
  let better b e =
    b.e_tick < e.e_tick
    || (b.e_tick = e.e_tick && String.compare b.e_key e.e_key <= 0)
  in
  let victim =
    Hashtbl.fold
      (fun _ e acc ->
        match acc with Some b when better b e -> acc | _ -> Some e)
      t.tbl None
  in
  match victim with
  | Some e ->
      Hashtbl.remove t.tbl e.e_key;
      t.evictions <- t.evictions + 1;
      Obs.incr "dse.cache.evict"
  | None -> ()

let add t p m =
  let key = Key.of_point p in
  (match Hashtbl.find_opt t.tbl key with
  | Some e -> touch t e
  | None ->
      if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
      let e = { e_key = key; e_point = p; e_metrics = m; e_tick = 0 } in
      touch t e;
      Hashtbl.add t.tbl key e);
  t.dirty <- true;
  Obs.incr "dse.cache.store"

let flush t =
  match t.store with
  | None -> ()
  | Some path ->
      if t.dirty then begin
        let entries =
          Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl []
          |> List.sort (fun a b -> String.compare a.e_key b.e_key)
        in
        Gap_util.Atomic_io.write_string path
          (Json.to_string ~pretty:true (store_json entries) ^ "\n");
        t.dirty <- false
      end

(* key-sorted listing: renders and stores derived from it are byte-identical
   across runs regardless of insertion order *)
let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl []
  |> List.sort (fun a b -> String.compare a.e_key b.e_key)
  |> List.map (fun e -> (e.e_point, e.e_metrics))

let stats t =
  {
    entries = Hashtbl.length t.tbl;
    capacity = t.capacity;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
  }

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let clear path =
  Gap_util.Atomic_io.write_string path
    (Json.to_string ~pretty:true (store_json []) ^ "\n")
