module Json = Gap_obs.Json
module Obs = Gap_obs.Obs
module Model = Gap_variation.Model
module MC = Gap_variation.Montecarlo

type metrics = {
  delay_ps : float;
  freq_mhz : float;
  area : float;
  power : float;
  factors : (string * float) list;
  composite : float;
}

(* bumped to 2 when the backend axis landed: older stores hold points keyed
   without a backend field, and serving them for the enlarged space would
   alias ASIC results onto FPGA points — a version bump reads them cold *)
let flow_version = "gap-dse-2"

(* The paper's Sec. 3 maximum contributions — the anchors every axis
   interpolates toward. Their product is the x17.8 the composite must
   reproduce at the custom corner. *)
let paper_pipelining = 4.00
let paper_floorplanning = 1.25
let paper_sizing = 1.25
let paper_domino = 1.50
let paper_variation = 1.90

(* process constants, matching Pipeline_model.asic_default's 0.25um frame *)
let fo4_ps = 90.
let reg_fo4 = 2.5 (* one register boundary in FO4, skew accounted separately *)
let reg_area_frac = 0.08 (* pipeline register area per extra stage *)

let clamp01 t = Float.max 0. (Float.min 1. t)

(* a ratio r captured at fraction a contributes r^a, Gap_model's [partial] *)
let partial ratio fraction = ratio ** fraction

let validate p =
  let open Space in
  if p.depth < 1 then invalid_arg "Gap_dse.Eval.point: depth < 1";
  if not (p.logic_fo4 > 0.) then invalid_arg "Gap_dse.Eval.point: logic_fo4 <= 0";
  if not (p.skew_frac >= 0. && p.skew_frac < 1.) then
    invalid_arg "Gap_dse.Eval.point: skew_frac outside [0,1)";
  if not (p.sigma_scale >= 0.) then invalid_arg "Gap_dse.Eval.point: sigma_scale < 0";
  if p.mc_dies < 1 then invalid_arg "Gap_dse.Eval.point: mc_dies < 1"

(* --- micro-architecture: depth + logic restructuring + skew --- *)

(* nominal cycle of the uarch axes alone: [L/N + reg] stretched by skew *)
let uarch_period_fo4 ~depth ~logic_fo4 ~skew_frac =
  ((logic_fo4 /. float_of_int depth) +. reg_fo4) /. (1. -. skew_frac)

let uarch_ratio (p : Space.point) =
  uarch_period_fo4 ~depth:Space.baseline.Space.depth
    ~logic_fo4:Space.baseline.Space.logic_fo4
    ~skew_frac:Space.baseline.Space.skew_frac
  /. uarch_period_fo4 ~depth:p.Space.depth ~logic_fo4:p.Space.logic_fo4
       ~skew_frac:p.Space.skew_frac

let uarch_ratio_corner = lazy (uarch_ratio Space.custom_corner)

let pipelining_factor p =
  let r = uarch_ratio p in
  if r <= 1. then 1.
  else
    let t = clamp01 (log r /. log (Lazy.force uarch_ratio_corner)) in
    partial paper_pipelining t

(* --- sizing / floorplanning / domino: discrete fractions --- *)

let sizing_fraction = function
  | Space.Minimal -> 0.
  | Space.Typical -> 0.5
  | Space.Rich_tilos -> 1.

let sizing_factor p = partial paper_sizing (sizing_fraction p.Space.sizing)
let floorplan_factor p = if p.Space.floorplan then paper_floorplanning else 1.
let domino_factor p = if p.Space.domino then paper_domino else 1.

(* --- process variation: Monte Carlo binned best-fab vs worst-case --- *)

let scale_sigmas k (s : Model.sigmas) =
  {
    Model.lot = s.Model.lot *. k;
    wafer = s.Model.wafer *. k;
    die = s.Model.die *. k;
    intra = s.Model.intra *. k;
  }

let nominal_mhz = 250.

(* modeled binning gain: p99 of best-fab silicon over the slow-fab
   worst-case signoff rating, both under the point's sigma scaling *)
let binning_gain ~sigma_scale ~dies =
  let sigmas = scale_sigmas sigma_scale Model.mature in
  let custom = Model.make ~fab_mean:Model.best_fab sigmas in
  let asic = Model.make ~fab_mean:Model.slow_fab sigmas in
  let run = MC.simulate ~model:custom ~nominal_mhz ~dies () in
  MC.percentile run 99. /. (nominal_mhz *. Model.signoff_speed asic)

let binning_gain_ref =
  lazy
    (binning_gain
       ~sigma_scale:Space.custom_corner.Space.sigma_scale
       ~dies:Space.custom_corner.Space.mc_dies)

let variation_factor p =
  if not p.Space.binning then 1.
  else
    let modeled =
      binning_gain ~sigma_scale:p.Space.sigma_scale ~dies:p.Space.mc_dies
    in
    if modeled <= 1. then 1.
    else
      let t = clamp01 (log modeled /. log (Lazy.force binning_gain_ref)) in
      partial paper_variation t

(* --- the objectives --- *)

let sizing_speed = function
  | Space.Minimal -> 1.
  | Space.Typical -> sqrt paper_sizing
  | Space.Rich_tilos -> paper_sizing

let sizing_area = function
  | Space.Minimal -> 1.
  | Space.Typical -> 1.06
  | Space.Rich_tilos -> 1.15

let delay_of (p : Space.point) =
  (* circuit-level factors shorten the logic portion of the cycle; the
     register boundary and skew stretch are irreducible *)
  let logic_speed =
    sizing_speed p.Space.sizing
    *. (if p.Space.domino then paper_domino else 1.)
    *. if p.Space.floorplan then paper_floorplanning else 1.
  in
  let eff_logic = p.Space.logic_fo4 /. float_of_int p.Space.depth /. logic_speed in
  (eff_logic +. reg_fo4) *. fo4_ps /. (1. -. p.Space.skew_frac)

let baseline_delay_ps = lazy (delay_of Space.baseline)

let warmup () =
  (* the memoized anchors are plain [lazy] values, and concurrent first
     forcing from two domains is a race (Lazy.RacyLazy); the pool forces
     them on the main domain before spawning workers *)
  ignore (Lazy.force uarch_ratio_corner);
  ignore (Lazy.force binning_gain_ref);
  ignore (Lazy.force baseline_delay_ps)

let point p =
  validate p;
  Obs.span "dse.eval" (fun () ->
      Obs.incr "dse.evals";
      let f_pipe = pipelining_factor p in
      let f_floor = floorplan_factor p in
      let f_sizing = sizing_factor p in
      let f_domino = domino_factor p in
      let f_var = variation_factor p in
      let composite = f_pipe *. f_floor *. f_sizing *. f_domino *. f_var in
      let delay_ps = delay_of p in
      let area =
        (1. +. (reg_area_frac *. float_of_int (p.Space.depth - 1)))
        *. sizing_area p.Space.sizing
        *. if p.Space.domino then 1.4 else 1.
      in
      let power =
        (* dynamic power tracks area x frequency; dual-rail domino adds
           clock load and guaranteed-transition activity *)
        area
        *. (Lazy.force baseline_delay_ps /. delay_ps)
        *. if p.Space.domino then 1.6 else 1.
      in
      let m =
        {
          delay_ps;
          freq_mhz = 1e6 /. delay_ps;
          area;
          power;
          factors =
            [
              ("pipelining", f_pipe);
              ("floorplanning", f_floor);
              ("sizing", f_sizing);
              ("domino", f_domino);
              ("variation", f_var);
            ];
          composite;
        }
      in
      match p.Space.backend with
      | Space.Asic -> m
      | Space.Fpga ->
          (* the FPGA backend in the modeled DSE is the Charm logic-variant
             architecture gap on top of the point's design practices; the
             design-practice factors themselves are backend-orthogonal *)
          let r = Gap_tech.Charm.ratios Gap_tech.Charm.Logic in
          {
            m with
            delay_ps = m.delay_ps *. r.Gap_tech.Charm.freq;
            freq_mhz = m.freq_mhz /. r.Gap_tech.Charm.freq;
            area = m.area *. r.Gap_tech.Charm.area;
            power = m.power *. r.Gap_tech.Charm.dynamic_power;
          })

let to_json m =
  Json.Obj
    [
      ("delay_ps", Json.Float m.delay_ps);
      ("freq_mhz", Json.Float m.freq_mhz);
      ("area", Json.Float m.area);
      ("power", Json.Float m.power);
      ( "factors",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) m.factors) );
      ("composite", Json.Float m.composite);
    ]

let of_json j =
  let num = function
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  match
    ( num (Json.member "delay_ps" j),
      num (Json.member "freq_mhz" j),
      num (Json.member "area" j),
      num (Json.member "power" j),
      Json.member "factors" j,
      num (Json.member "composite" j) )
  with
  | Some delay_ps, Some freq_mhz, Some area, Some power, Some (Json.Obj fs), Some composite
    -> (
      match
        List.fold_right
          (fun (k, v) acc ->
            match (acc, num (Some v)) with
            | Some fs, Some f -> Some ((k, f) :: fs)
            | _ -> None)
          fs (Some [])
      with
      | Some factors ->
          Ok { delay_ps; freq_mhz; area; power; factors; composite }
      | None -> Error "malformed factor value in metrics")
  | _ -> Error "malformed metrics document"
