(** Sweep engine: enumerate a space, serve points from the cache, evaluate
    the misses on the pool, and render tables / JSON / Pareto frontiers.

    Determinism contract: the point sequence is a pure function of the
    space, result slots are indexed by enumeration position, and
    {!Eval.point} is deterministic — so {!table} output is byte-identical
    across cold/warm cache states and across worker counts. Cache traffic
    (hits, misses, store writes) is reported only through {!stats}, the
    [dse.cache.*] counters and {!to_json}, never in the table. *)

type t = {
  name : string;  (** preset / space label *)
  domains : int;
  total : int;  (** lattice size of the swept space *)
  points : (Space.point * Eval.metrics) array;  (** enumeration order *)
  failed : (Space.point * Gap_resilience.Stage_error.t) list;
      (** points whose evaluation failed even under supervision *)
  stats : Cache.stats;
}

val run :
  ?domains:int ->
  ?capacity:int ->
  ?store:string ->
  ?stop_after:int ->
  name:string ->
  Space.t ->
  t
(** Runs {!Eval.warmup} first, so worker domains never force a lazy anchor.
    [store] persists the cache across runs (atomic rewrite on completion).
    [stop_after n] is the interruption harness: evaluation turns sequential,
    the store is flushed after every fresh evaluation, and the sweep stops
    after [n] cache misses have been evaluated — the on-disk store is a
    valid JSON document at every instant, so a resumed run completes the
    lattice and produces byte-identical tables. *)

val table : t -> string
(** Point-per-row metrics table, byte-identical across cache states and
    worker counts (contains no cache or timing data). *)

val to_json : t -> Gap_obs.Json.t
(** Full document: points, failures, and cache accounting
    ([hits]/[misses]/[hit_rate]) for machine consumers. *)

val pareto : t -> ((Space.point * Eval.metrics) * Frontier.objectives) list
(** Non-dominated points over (delay, area, power), sorted by cycle time
    (stable, so equal-delay points keep enumeration order). *)

val pareto_table : t -> string
(** Frontier table with the gap-composite column; at the full-custom corner
    of the ["factor-axes"] preset the composite renders the paper's x17.8. *)

val pareto_json : t -> Gap_obs.Json.t
