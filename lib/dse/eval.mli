(** Point evaluation: one design-space point to (delay, area, power) plus
    the gap-composite objective.

    Delay, area and power come from the analytic substrate models (FO4
    pipeline arithmetic, register-area and dual-rail overheads); the
    process-variation axis runs the real Monte Carlo sampler, so sample
    count and sigma scaling behave exactly as in E9. The gap composite is
    the paper's Sec. 3 factor product: each axis contributes
    [paper_max ** fraction], where [fraction] is the share of that factor's
    modeled log-range the point unlocks (the {!Gap_core.Gap_model} idiom).
    At {!Space.custom_corner} every fraction is exactly 1, so the composite
    reproduces the paper's 4.00 x 1.25 x 1.25 x 1.50 x 1.90 = x17.8. *)

type metrics = {
  delay_ps : float;  (** nominal cycle time *)
  freq_mhz : float;
  area : float;  (** relative to the unpipelined static baseline *)
  power : float;  (** relative to the same baseline *)
  factors : (string * float) list;
      (** per-axis multipliers, fixed order: pipelining, floorplanning,
          sizing, domino, variation *)
  composite : float;  (** product of the factor multipliers *)
}

val flow_version : string
(** Stamped into every cache key; bump on any change to the evaluation
    semantics so stale stores read as cold. *)

val warmup : unit -> unit
(** Force the memoized reference anchors (corner ratio, binning reference,
    baseline delay) on the calling domain. Must run before {!point} is
    called from concurrent worker domains — lazy forcing is not
    domain-safe. {!Pool.map} callers do this via [Sweep]; direct parallel
    users call it themselves. *)

val point : Space.point -> metrics
(** Deterministic: equal points always produce bit-equal metrics, for any
    worker count and cache state. Safe to call from pool worker domains.
    @raise Invalid_argument on a malformed point (depth < 1, skew >= 1...). *)

val to_json : metrics -> Gap_obs.Json.t
val of_json : Gap_obs.Json.t -> (metrics, string) result
(** Round-trips bit-exactly: floats render via [Json.float_repr]. *)
