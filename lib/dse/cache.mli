(** Content-addressed result cache: in-memory LRU over a crash-only
    {!Segstore} segment store.

    Every evaluated point is stored under its {!Key.of_point}. The
    in-memory side is a bounded LRU; the persistent side is an append-only
    checksummed segment store — a flush appends only the records added
    since the last one (a single [O_APPEND] write each), so a kill at any
    moment leaves a store recovery can always validate: the torn tail is
    truncated with a note, anything worse is a typed
    [Stage_error.Storage_fault]. Compaction folds superseded records away
    into a fresh generation once the log doubles the live set.

    A store whose recorded flow version differs from {!Eval.flow_version}
    loads as empty (stale results are invisible, not wrong) and is reset to
    the current flow on the next flush. A legacy JSON store (pre-segment
    format) at the path is migrated into a segment store on first open; a
    foreign or unparsable file loads cold and is replaced on the first
    flush.

    Lookups and insertions feed the [dse.cache.hit] / [dse.cache.miss] /
    [dse.cache.store] / [dse.cache.evict] counters through [Gap_obs], and
    the same tallies are kept in {!stats} so hit accounting works with the
    no-op sink installed. Not domain-safe: the sweep engine does all cache
    traffic on the main domain. *)

type t

type stats = {
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

val create : ?capacity:int -> ?store:string -> unit -> t
(** [capacity] bounds the in-memory LRU (default 4096; the store's live set
    holds at most the same entries). With [store] the path is opened
    immediately: a segment-store directory is recovered and replayed, a
    current-flow legacy JSON file is migrated in place, and a missing,
    foreign, or stale-flow path loads as empty.

    @raise Gap_resilience.Stage_error.Stage_failure ([Storage_fault]) when
    an existing segment store is corrupt before its recoverable tail. *)

val recovery_note : t -> string option
(** The torn-tail note from the opening recovery, if one was truncated. *)

val find : t -> Space.point -> Eval.metrics option
val add : t -> Space.point -> Eval.metrics -> unit

val flush : t -> unit
(** Persist the adds since the last flush as appended records (no-op
    without a store or when clean). Written key-sorted, so equal caches
    produce byte-identical stores; transient storage faults are retried
    under a supervisor before the typed error propagates. *)

val try_flush : t -> (unit, Gap_resilience.Stage_error.t) result
(** {!flush} for callers that must survive a failing disk (the serve
    scheduler): the typed error is returned instead of raised and the
    pending records stay queued for the next attempt. *)

val compact : t -> unit
(** Flush, then force a compaction: rewrite the store to exactly the live
    entries in a fresh generation. *)

val entries : t -> (Space.point * Eval.metrics) list
(** Every live entry, sorted by cache key — deterministic whatever order
    the hash table iterates in, so listings and documents built from it
    stay byte-identical across runs. *)

val stats : t -> stats

val backend_stats : t -> (int * int * int) option
(** [(records, segments, generation)] of the open segment store — [None]
    until the first flush materializes it (or without a store at all). *)

val hit_rate : stats -> float
(** [hits / (hits + misses)]; 0 when no lookups happened. *)

val clear : string -> unit
(** Reset the store at [path] to an empty fresh generation (replacing any
    legacy JSON file there). *)

(** {1 On-disk inspection} *)

type store_info = {
  si_entries : int;  (** distinct live keys *)
  si_records : int;  (** raw records, duplicates included *)
  si_segments : int;
  si_generation : int;
  si_flow : string;
  si_format : string;  (** ["segment"] or ["json-legacy"] *)
  si_torn : string option;  (** unrecovered torn tail, if the scan saw one *)
}

type store_status =
  | Store of store_info
  | Missing of string
  | Foreign of string  (** a file that parses as none of our formats *)
  | Corrupt of Gap_resilience.Stage_error.t

val inspect_store : string -> store_status
(** Read-only look at whatever lives at [path], without building a cache —
    the [repro cache stats] backend. Never writes, never raises. *)

val write_legacy_json : string -> (Space.point * Eval.metrics) list -> unit
(** Write a store in the pre-segment JSON format — the migration tests' and
    chaos campaign's fixture generator. *)
