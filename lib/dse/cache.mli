(** Content-addressed result cache: in-memory LRU over a persistent JSON
    store.

    Every evaluated point is stored under its {!Key.of_point}. The
    in-memory side is a bounded LRU; the persistent side is a single JSON
    document written exclusively through [Gap_util.Atomic_io], so a kill at
    any moment leaves either the previous store or the new one on disk —
    never a truncated file. A store whose recorded flow version differs
    from {!Eval.flow_version} loads as empty (stale results are invisible,
    not wrong), and is rewritten at the current version on the next flush.

    Lookups and insertions feed the [dse.cache.hit] / [dse.cache.miss] /
    [dse.cache.store] / [dse.cache.evict] counters through [Gap_obs], and
    the same tallies are kept in {!stats} so hit accounting works with the
    no-op sink installed. Not domain-safe: the sweep engine does all cache
    traffic on the main domain. *)

type t

type stats = {
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

val create : ?capacity:int -> ?store:string -> unit -> t
(** [capacity] bounds the in-memory LRU (default 4096; the store holds at
    most the same entries). With [store] the file is loaded immediately —
    missing, malformed, or version-mismatched files load as empty. *)

val find : t -> Space.point -> Eval.metrics option
val add : t -> Space.point -> Eval.metrics -> unit

val flush : t -> unit
(** Atomically rewrite the store (no-op without [store] or when clean).
    Entries are written sorted by key, so equal caches produce
    byte-identical files. *)

val entries : t -> (Space.point * Eval.metrics) list
(** Every live entry, sorted by cache key — deterministic whatever order
    the hash table iterates in, so listings and documents built from it
    stay byte-identical across runs. *)

val stats : t -> stats
val hit_rate : stats -> float
(** [hits / (hits + misses)]; 0 when no lookups happened. *)

val clear : string -> unit
(** Atomically replace the store at [path] with an empty one. *)

val read_store : string -> (int * string, string) result
(** [(entries, flow_version)] of the store on disk, without building a
    cache — the [repro cache stats] backend. *)
