(** Load generator for the [repro serve] daemon — the [repro bench serve]
    backend.

    Drives [clients] concurrent connections through two phases:

    - [waves] barrier-synchronized waves in which every client requests the
      {e same} fresh point at once — the coalescing path under maximum
      contention (ideal cost: one evaluation per wave);
    - [unique] points per client that no other client asks for — the
      queueing/fairness path (ideal cost: one evaluation each).

    Every request's latency is recorded; the result carries the merged
    percentile summary plus the server's own counters, so the benchmark can
    assert on coalescing effectiveness, not just throughput. *)

type result = {
  clients : int;
  waves : int;
  unique : int;
  requests : int;  (** eval requests issued *)
  errors : int;  (** requests answered with a typed error *)
  wall_ns : float;  (** whole run, first connect to last response *)
  p50_ns : float;
  p99_ns : float;
  max_ns : float;
  mean_ns : float;
  throughput_rps : float;
  server : Server.stats;  (** daemon counters after the run *)
  coalesce_rate : float;
      (** coalesced / (coalesced + evals) over the daemon's lifetime *)
  cache_hit_rate : float;  (** cache hits / eval requests *)
}

val run :
  ?clients:int ->
  ?waves:int ->
  ?unique:int ->
  addr:Protocol.addr ->
  server:Server.t ->
  unit ->
  result
(** Defaults: 256 clients, 8 waves, 2 unique points per client. The
    [server] handle is only read for its counters; the traffic itself goes
    through [addr] like any external client's would. *)

val to_json : result -> Protocol.Json.t
