(** The serve chaos campaign: crash-only storage and daemon robustness,
    proven by doing the damage.

    Each scenario wrecks a real store or a real daemon in a specific way —
    SIGKILL mid-workload, truncation at {e every} byte offset of a segment,
    bit-flips before the recoverable tail, armed fault plans at every
    daemon-reachable injection site, interrupted JSON migrations, clients
    that vanish, stall, or flood — and then asserts the two crash-only
    contracts: the store always validates (recovery keeps exactly the
    longest whole-record prefix, anything worse is a typed
    [Storage_fault]), and a warm restart answers the workload
    byte-identically to the never-killed evaluator.

    Coverage is explicit: the campaign partitions {!Gap_resilience.Fault.catalog}
    into the sites it arms itself and the sites delegated to the
    [repro faults] flow campaign; a catalog site claimed by neither fails
    the gate. [repro chaos serve] runs it and [make chaos] writes the
    result to [FAULTS_serve.json], where any non-[ok] document fails
    [make verify] — a scenario cannot fail silently. *)

type outcome = Passed | Failed of string

type scenario_result = {
  name : string;
  detail : string;
  checks : int;  (** assertions that ran (and held, unless [Failed]) *)
  outcome : outcome;
}

type campaign = {
  scenarios : scenario_result list;
  chaos_sites : string list;  (** catalog sites this campaign armed *)
  delegated_sites : string list;
      (** catalog sites owned by the [repro faults] campaign *)
  missing_sites : string list;  (** claimed by neither — fails the gate *)
  ok : bool;
}

val run : unit -> campaign
(** Run every scenario. Never raises: damage is confined to scratch
    directories and in-process daemons, and a scenario's failure is carried
    in its {!outcome}. Forks once (the SIGKILL scenario), so call it before
    the process spawns threads of its own. *)

val to_json : campaign -> Gap_obs.Json.t
(** The [FAULTS_serve.json] document: per-scenario outcomes, the coverage
    partition, totals, and the [ok] gate. *)

val table : campaign -> string
