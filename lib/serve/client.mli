(** Blocking JSONL client for the [repro serve] daemon.

    One connection, one outstanding request at a time: the daemon answers a
    connection's requests in order, so a request is a write of one line and
    a read of one line. Concurrency comes from opening more clients (the
    load generator opens hundreds). Not thread-safe; share nothing. *)

type t

val connect : Protocol.addr -> t
(** @raise Unix.Unix_error when nothing listens there. *)

type connect_error =
  | Connect_timeout of {
      addr : string;
      attempts : int;  (** connect attempts made, including the last *)
      elapsed_s : float;
      last_error : string;  (** rendered errno of the final failure *)
    }

val connect_error_to_string : connect_error -> string

val connect_retry :
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  ?deadline_s:float ->
  Protocol.addr ->
  (t, connect_error) result
(** Retry [connect] under deterministic exponential backoff — attempt [k]
    waits [min max_delay_s (base_delay_s * 2^k)] (defaults 0.01s doubling
    to 0.5s) — until the total [deadline_s] budget (default 5s) runs out,
    then a typed {!Connect_timeout}. For racing a daemon that is still
    binding its socket. *)

val request : t -> Protocol.op -> (Protocol.Json.t, Protocol.err) result
(** Send one request (ids are assigned internally) and block for its
    response. Protocol violations — unparsable line, id mismatch, closed
    socket — surface as [Error (Bad_request _)]. *)

val eval : t -> Gap_dse.Space.point -> (Protocol.Json.t, Protocol.err) result
val ping : t -> bool
val shutdown : t -> unit
(** Fire a shutdown request; the response (or a closed socket) is
    absorbed. *)

val raw_roundtrip : t -> string -> (string, string) result
(** Send an arbitrary line verbatim and read one response line — for
    protocol-abuse tests. *)

val send_line : t -> string -> unit
(** Send one line without reading a response — for chaos scenarios that
    hang up mid-request. *)

val send_raw : t -> string -> unit
(** Send bytes with no newline — an unterminated request for the same
    scenarios. *)

val close : t -> unit
