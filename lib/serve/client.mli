(** Blocking JSONL client for the [repro serve] daemon.

    One connection, one outstanding request at a time: the daemon answers a
    connection's requests in order, so a request is a write of one line and
    a read of one line. Concurrency comes from opening more clients (the
    load generator opens hundreds). Not thread-safe; share nothing. *)

type t

val connect : Protocol.addr -> t
(** @raise Unix.Unix_error when nothing listens there. *)

val connect_retry :
  ?attempts:int -> ?delay_s:float -> Protocol.addr -> (t, string) result
(** Retry [connect] (default 50 attempts, 0.05s apart) — for racing a
    daemon that is still binding its socket. *)

val request : t -> Protocol.op -> (Protocol.Json.t, Protocol.err) result
(** Send one request (ids are assigned internally) and block for its
    response. Protocol violations — unparsable line, id mismatch, closed
    socket — surface as [Error (Bad_request _)]. *)

val eval : t -> Gap_dse.Space.point -> (Protocol.Json.t, Protocol.err) result
val ping : t -> bool
val shutdown : t -> unit
(** Fire a shutdown request; the response (or a closed socket) is
    absorbed. *)

val raw_roundtrip : t -> string -> (string, string) result
(** Send an arbitrary line verbatim and read one response line — for
    protocol-abuse tests. *)

val close : t -> unit
