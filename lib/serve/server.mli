(** The [repro serve] daemon: a multi-client evaluation service over the
    shared content-addressed DSE cache.

    Shape: an accept loop hands each connection to its own thread; request
    threads resolve points against one {!Gap_dse.Cache} (all cache traffic
    under the server lock — the cache itself is not thread-safe) and park
    cache misses in per-client bounded queues; a single scheduler thread
    drains those queues with round-robin fairness into batches it runs on
    {!Gap_dse.Pool.map}, so every evaluation goes through the supervised
    worker pool and a poisoned point comes back as a typed
    {!Gap_resilience.Stage_error.t} instead of killing the server.

    Coalescing: requests for a point already being evaluated attach to the
    in-flight slot instead of enqueuing a second job — N concurrent
    requests for one point cost exactly one evaluation (observable as
    [dse.pool.jobs] and the [serve.coalesced] counter).

    Backpressure: each client may have at most [queue_bound] points queued;
    further eval requests from that client block (its reader thread stops
    consuming the socket, so the kernel's TCP/unix-socket buffers push back
    on the client) until results drain.

    Kill-safety: the persistent store is a crash-only {!Gap_dse.Segstore}
    segment store — each batch appends its fresh results as checksummed
    records in a single write — so killing the daemon at any instant leaves
    a store recovery can validate (at worst a torn tail it truncates). A
    flush that fails with a typed storage error is counted, recorded as a
    [serve.flush_failed] event, and retried with the next batch; it never
    kills the scheduler. *)

type config = {
  addr : Protocol.addr;
  domains : int;  (** worker domains per evaluation batch (default 1) *)
  store : string option;  (** persistent cache store path *)
  capacity : int;  (** in-memory LRU capacity *)
  queue_bound : int;  (** max queued evals per client before it blocks *)
  fair_share : int;  (** max jobs one client contributes per scheduling pass *)
  batch_max : int;  (** max jobs per [Pool.map] batch *)
  history : string option;
      (** append a labelled run snapshot here on shutdown *)
  idle_timeout_s : float option;
      (** evict a connection silent for this long: its reader thread sends a
          typed [Timeout] response (best-effort, if the socket is writable)
          and closes. [None] (default) never evicts. *)
}

val default_config : Protocol.addr -> config
(** domains 1, no store, capacity 4096, queue_bound 64, fair_share 8,
    batch_max 256, no history, no idle timeout. *)

type t

val create : config -> t
(** Loads the store (if any) and warms the evaluator's memoized anchors. *)

val start : t -> unit
(** Bind the socket (an existing Unix-socket path is replaced), then spawn
    the accept and scheduler threads and return. @raise Unix.Unix_error on
    bind failure. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, fail blocked enqueuers with
    [Overloaded], drain already-queued work so attached waiters get real
    results, flush the cache, shut open connections down, join the service
    threads, and append the history snapshot if configured. Idempotent. *)

val wait : t -> unit
(** Block until the server stops (a [shutdown] request, or {!stop} from
    another thread). *)

val stats_json : t -> Gap_obs.Json.t
(** The same document a [stats] request returns. *)

(** {1 Introspection for tests and the load generator} *)

type stats = {
  requests : int;  (** requests handled, any op *)
  evals : int;  (** evaluations actually run (cache+coalesce misses) *)
  coalesced : int;  (** eval requests attached to an in-flight slot *)
  cache_hits : int;  (** eval requests served straight from the cache *)
  errors : int;  (** requests answered with a typed error *)
  batches : int;  (** scheduler batches run *)
  max_batch : int;  (** largest batch *)
  clients_seen : int;
  idle_evictions : int;  (** connections dropped by the idle deadline *)
  flush_failures : int;  (** batch flushes that returned a typed error *)
}

val stats : t -> stats
