module Json = Gap_obs.Json
module Obs = Gap_obs.Obs
module Stage_error = Gap_resilience.Stage_error
module Fault = Gap_resilience.Fault
module Space = Gap_dse.Space
module Eval = Gap_dse.Eval
module Cache = Gap_dse.Cache
module Segstore = Gap_dse.Segstore

(* --- outcomes --- *)

type outcome = Passed | Failed of string

type scenario_result = {
  name : string;
  detail : string;
  checks : int;  (** assertions that ran (and held, unless [Failed]) *)
  outcome : outcome;
}

type campaign = {
  scenarios : scenario_result list;
  chaos_sites : string list;
  delegated_sites : string list;
  missing_sites : string list;
  ok : bool;
}

exception Check_failed of string

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let scenario name detail f =
  let n = ref 0 in
  let check cond msg =
    incr n;
    if not cond then raise (Check_failed msg)
  in
  let outcome =
    match f check with
    | () -> Passed
    | exception Check_failed m -> Failed m
    | exception Stage_error.Stage_failure e ->
        Failed ("uncaught typed error: " ^ Stage_error.to_string e)
    | exception e -> Failed ("uncaught exception: " ^ Printexc.to_string e)
  in
  { name; detail; checks = !n; outcome }

(* --- filesystem helpers --- *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let scratch =
  let n = ref 0 in
  fun () ->
    incr n;
    let p =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "gap_chaos_%d_%d" (Unix.getpid ()) !n)
    in
    rm_rf p;
    p

let with_scratch f =
  let p = scratch () in
  Fun.protect ~finally:(fun () -> rm_rf p; rm_rf (p ^ ".migrate")) (fun () -> f p)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* flat copy: a segment store holds no subdirectories *)
let copy_store src dst =
  Unix.mkdir dst 0o755;
  Array.iter
    (fun n -> write_file (Filename.concat dst n) (read_file (Filename.concat src n)))
    (Sys.readdir src)

(* --- the deterministic workload --- *)

(* distinct points with tiny Monte Carlo arms: an evaluation costs little,
   and the responses are a pure function of the point, so any warm or
   restarted run must reproduce them byte-for-byte *)
let wl_point i =
  {
    Space.baseline with
    Space.sigma_scale = 1.0 +. (0.0001 *. float_of_int (i + 1));
    mc_dies = 16;
  }

let workload = List.init 5 wl_point

let reference_responses =
  lazy (List.map (fun p -> Json.to_string (Eval.to_json (Eval.point p))) workload)

(* --- server plumbing --- *)

let fresh_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gap_chaos_%d_%d.sock" (Unix.getpid ()) !n)

let server_config ?(domains = 1) ?(queue_bound = 64) ?idle_timeout_s ?store addr =
  {
    (Server.default_config addr) with
    Server.domains;
    queue_bound;
    store;
    idle_timeout_s;
  }

let with_server ?domains ?queue_bound ?idle_timeout_s ?store f =
  let sock = fresh_sock () in
  let addr = Protocol.Unix_sock sock in
  let t =
    Server.create (server_config ?domains ?queue_bound ?idle_timeout_s ?store addr)
  in
  Server.start t;
  Fun.protect
    ~finally:(fun () -> Server.stop t)
    (fun () -> f t addr)

let with_client addr f =
  match Client.connect_retry addr with
  | Error e -> raise (Check_failed (Client.connect_error_to_string e))
  | Ok cl -> Fun.protect ~finally:(fun () -> Client.close cl) (fun () -> f cl)

let eval_all cl pts =
  List.map
    (fun p ->
      match Client.eval cl p with
      | Ok j -> Ok (Json.to_string j)
      | Error e -> Error e)
    pts

let check_warm_identity check store =
  (* a restarted daemon on the surviving store must answer the whole
     workload byte-identically to the evaluator itself, serving every
     stored point from the cache *)
  with_server ~store (fun t addr ->
      with_client addr (fun cl ->
          let got = eval_all cl workload in
          List.iteri
            (fun i r ->
              match (r, List.nth (Lazy.force reference_responses) i) with
              | Ok s, expect ->
                  check (s = expect)
                    (Printf.sprintf "warm response %d differs from reference" i)
              | Error e, _ ->
                  raise
                    (Check_failed
                       (Printf.sprintf "warm eval %d failed: %s" i
                          (Protocol.err_to_string e))))
            got;
          let s = Server.stats t in
          check
            (s.Server.evals + s.Server.cache_hits = List.length workload)
            "warm run lost responses");
      match Segstore.validate store with
      | Ok info ->
          check
            (info.Segstore.i_keys = List.length workload)
            (Printf.sprintf "store holds %d keys, expected %d"
               info.Segstore.i_keys (List.length workload))
      | Error e ->
          raise (Check_failed ("store invalid after warm run: " ^ Stage_error.to_string e)))

(* --- scenario: SIGKILL a serving process mid-workload --- *)

let scenario_sigkill () =
  scenario "sigkill-restart"
    "fork a daemon, SIGKILL it mid-workload, validate the store, replay warm"
    (fun check ->
      with_scratch (fun store ->
          let sock = fresh_sock () in
          let addr = Protocol.Unix_sock sock in
          match Unix.fork () with
          | 0 ->
              (* child: serve until killed; never return into the campaign *)
              (try
                 let t = Server.create (server_config ~store addr) in
                 Server.start t;
                 Server.wait t
               with _ -> ());
              Unix._exit 0
          | pid ->
              Fun.protect
                ~finally:(fun () ->
                  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                  (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
                  try Sys.remove sock with Sys_error _ -> ())
                (fun () ->
                  with_client addr (fun cl ->
                      (* land two results, then kill without warning *)
                      List.iteri
                        (fun i r ->
                          match r with
                          | Ok _ -> ()
                          | Error e ->
                              raise
                                (Check_failed
                                   (Printf.sprintf "pre-kill eval %d failed: %s" i
                                      (Protocol.err_to_string e))))
                        (eval_all cl [ wl_point 0; wl_point 1 ]);
                      Unix.kill pid Sys.sigkill;
                      ignore (Unix.waitpid [] pid));
                  (match Segstore.validate store with
                  | Ok info ->
                      check
                        (info.Segstore.i_keys <= List.length workload)
                        "killed store holds more keys than were evaluated"
                  | Error e ->
                      raise
                        (Check_failed
                           ("store invalid after SIGKILL: " ^ Stage_error.to_string e)));
                  check_warm_identity check store)))

(* --- scenario: torn-append matrix over every byte offset --- *)

let scenario_torn_matrix () =
  scenario "torn-append-matrix"
    "truncate a valid store at every byte offset of its segment; recovery \
     must yield exactly the longest whole-record prefix"
    (fun check ->
      with_scratch (fun base ->
          let t, _, _ = Segstore.open_store ~flow:Eval.flow_version base in
          (* varied record sizes so offsets land in every frame field *)
          let recs =
            List.init 6 (fun i ->
                ( Printf.sprintf "key-%02d" i,
                  String.init (17 + (13 * i)) (fun j ->
                      Char.chr (32 + ((i + (7 * j)) mod 95))) ))
          in
          List.iter (fun (k, v) -> Segstore.append t ~key:k v) recs;
          let seg =
            match Segstore.segment_names t with
            | [ s ] -> s
            | l ->
                raise
                  (Check_failed
                     (Printf.sprintf "expected 1 segment, found %d" (List.length l)))
          in
          Segstore.close t;
          let seg_path = Filename.concat base seg in
          let bytes = read_file seg_path in
          let len = String.length bytes in
          (* record end offsets: header (9) + 2-byte keylen + key + payload *)
          let ends =
            List.rev
              (fst
                 (List.fold_left
                    (fun (acc, off) (k, v) ->
                      let e = off + 9 + 2 + String.length k + String.length v in
                      (e :: acc, e))
                    ([ 0 ], 0)
                    recs))
          in
          check (List.nth ends (List.length recs) = len) "frame arithmetic drifted";
          for off = 0 to len do
            let cut = scratch () in
            Fun.protect
              ~finally:(fun () -> rm_rf cut)
              (fun () ->
                copy_store base cut;
                write_file (Filename.concat cut seg) (String.sub bytes 0 off);
                let surviving =
                  List.length (List.filter (fun e -> e <= off) ends) - 1
                in
                match Segstore.validate cut with
                | Ok info ->
                    check
                      (info.Segstore.i_records = surviving)
                      (Printf.sprintf
                         "offset %d: recovery kept %d records, expected %d" off
                         info.Segstore.i_records surviving);
                    check
                      (List.mem off ends = (info.Segstore.i_torn = None))
                      (Printf.sprintf
                         "offset %d: torn note %s a record boundary" off
                         (if List.mem off ends then "at" else "missing off"))
                | Error e ->
                    raise
                      (Check_failed
                         (Printf.sprintf "offset %d: validate rejected a torn tail: %s"
                            off (Stage_error.to_string e))));
            (* sampled recovery-write: reopen (truncating the tear) and
               append; the store must come back fully clean *)
            if off mod 37 = 3 then begin
              let cut = scratch () in
              Fun.protect
                ~finally:(fun () -> rm_rf cut)
                (fun () ->
                  copy_store base cut;
                  write_file (Filename.concat cut seg) (String.sub bytes 0 off);
                  let t2, survived, note = Segstore.open_store ~flow:Eval.flow_version cut in
                  let surviving =
                    List.length (List.filter (fun e -> e <= off) ends) - 1
                  in
                  check (List.length survived = surviving)
                    (Printf.sprintf "offset %d: reopen kept %d, expected %d" off
                       (List.length survived) surviving);
                  check
                    (survived
                    = List.filteri (fun i _ -> i < surviving) recs)
                    (Printf.sprintf "offset %d: surviving prefix not byte-identical" off);
                  check
                    ((note <> None) = not (List.mem off ends))
                    (Printf.sprintf "offset %d: recovery note mismatch" off);
                  Segstore.append t2 ~key:"post-tear" "appended after recovery";
                  Segstore.close t2;
                  match Segstore.validate cut with
                  | Ok info ->
                      check
                        (info.Segstore.i_records = surviving + 1
                        && info.Segstore.i_torn = None)
                        (Printf.sprintf "offset %d: store dirty after recovery append" off)
                  | Error e ->
                      raise
                        (Check_failed
                           (Printf.sprintf "offset %d: invalid after recovery append: %s"
                              off (Stage_error.to_string e))))
            end
          done))

(* --- scenario: corruption before the tail is typed, never repaired --- *)

let scenario_corrupt_pre_tail () =
  scenario "corrupt-pre-tail"
    "flip bytes in non-final records; validation must fail with a typed \
     Storage_fault naming the segment and offset"
    (fun check ->
      with_scratch (fun base ->
          let t, _, _ = Segstore.open_store ~flow:Eval.flow_version base in
          let recs =
            List.init 4 (fun i -> (Printf.sprintf "ck-%d" i, String.make 40 'x'))
          in
          List.iter (fun (k, v) -> Segstore.append t ~key:k v) recs;
          let seg = List.hd (Segstore.segment_names t) in
          Segstore.close t;
          let seg_path = Filename.concat base seg in
          let pristine = read_file seg_path in
          let flip off =
            let b = Bytes.of_string pristine in
            Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x5a));
            write_file seg_path (Bytes.to_string b)
          in
          let rec_len = 9 + 2 + 4 + 40 in
          let expect_fault what off =
            flip off;
            (match Segstore.validate base with
            | Error (Stage_error.Storage_fault { segment; offset; _ }) ->
                check (segment = seg)
                  (Printf.sprintf "%s: fault names segment %S, not %S" what segment seg);
                check (offset >= 0 && offset < String.length pristine)
                  (Printf.sprintf "%s: fault offset %d out of range" what offset)
            | Error e ->
                raise
                  (Check_failed
                     (Printf.sprintf "%s: wrong error class: %s" what
                        (Stage_error.to_string e)))
            | Ok _ -> raise (Check_failed (what ^ ": corruption validated as clean")));
            (* opening for use must refuse with the same typed error *)
            (match Cache.create ~store:base () with
            | exception Stage_error.Stage_failure (Stage_error.Storage_fault _) -> ()
            | exception e ->
                raise
                  (Check_failed
                     (Printf.sprintf "%s: open raised %s, not Storage_fault" what
                        (Printexc.to_string e)))
            | _ -> raise (Check_failed (what ^ ": open accepted a corrupt store")));
            check true "reached";
            write_file seg_path pristine
          in
          expect_fault "payload byte of record 0" (rec_len / 2);
          expect_fault "CRC byte of record 1" (rec_len + 6);
          expect_fault "magic byte of record 2" (2 * rec_len);
          (* low byte of record 1's length: the frame stays in bounds but
             misaligned, so the CRC catches it as pre-tail corruption *)
          expect_fault "length field of record 1" (rec_len + 1);
          (* a corrupted length that overshoots the segment end is
             indistinguishable from a torn append, by construction: the
             last segment's scan must fall back to tear recovery, keeping
             exactly the records before the defect *)
          flip (rec_len + 2);
          (match Segstore.validate base with
          | Ok info ->
              check
                (info.Segstore.i_records = 1 && info.Segstore.i_torn <> None)
                "overshooting length not recovered as a tear"
          | Error e ->
              raise
                (Check_failed
                   ("overshooting length should recover as a tear, got: "
                   ^ Stage_error.to_string e)));
          write_file seg_path pristine;
          match Segstore.validate base with
          | Ok info ->
              check (info.Segstore.i_records = 4 && info.Segstore.i_torn = None)
                "pristine store no longer validates"
          | Error e ->
              raise (Check_failed ("pristine store rejected: " ^ Stage_error.to_string e))))

(* --- scenarios: armed fault plans at every daemon-reachable site --- *)

let injected_at site report =
  match List.assoc_opt site report.Fault.injected with Some n -> n | None -> 0

let scenario_fault_append () =
  scenario "fault:segstore.append"
    "transient append fault during batch flushes recovers by retry; store \
     and warm replay stay intact"
    (fun check ->
      with_scratch (fun store ->
          let result, report =
            Fault.with_plan
              [ Fault.spec "segstore.append" Stage_error.Transient ]
              (fun () ->
                with_server ~store (fun t addr ->
                    with_client addr (fun cl ->
                        List.iteri
                          (fun i r ->
                            match r with
                            | Ok _ -> ()
                            | Error e ->
                                raise
                                  (Check_failed
                                     (Printf.sprintf "eval %d failed under fault: %s" i
                                        (Protocol.err_to_string e))))
                          (eval_all cl workload));
                    check
                      ((Server.stats t).Server.flush_failures = 0)
                      "flush reported failure despite retry budget"))
          in
          (match result with
          | Ok () -> ()
          | Error e ->
              raise (Check_failed ("campaign body raised: " ^ Printexc.to_string e)));
          check (injected_at "segstore.append" report >= 1)
            "segstore.append site never injected";
          check_warm_identity check store))

let scenario_fault_compact () =
  scenario "fault:segstore.compact"
    "transient compaction fault recovers by retry from the intact old \
     generation; the live set survives byte-identically"
    (fun check ->
      with_scratch (fun store ->
          let entries_sig c =
            String.concat "\n"
              (List.map
                 (fun (p, m) ->
                   Json.to_string (Space.point_json p) ^ "=" ^ Json.to_string (Eval.to_json m))
                 (Cache.entries c))
          in
          let c = Cache.create ~store () in
          List.iter (fun p -> Cache.add c p (Eval.point p)) workload;
          Cache.flush c;
          let before = entries_sig c in
          let gen_before =
            match Cache.backend_stats c with
            | Some (_, _, g) -> g
            | None -> raise (Check_failed "no backend after flush")
          in
          let result, report =
            Fault.with_plan
              [ Fault.spec "segstore.compact" Stage_error.Transient ]
              (fun () -> Cache.compact c)
          in
          (match result with
          | Ok () -> ()
          | Error e ->
              raise
                (Check_failed ("compact did not recover: " ^ Printexc.to_string e)));
          check (injected_at "segstore.compact" report >= 1)
            "segstore.compact site never injected";
          check (entries_sig c = before) "live set changed across faulted compaction";
          (match Cache.backend_stats c with
          | Some (records, _, g) ->
              check (g > gen_before) "compaction did not advance the generation";
              check (records = List.length workload) "compaction lost or duplicated records"
          | None -> raise (Check_failed "backend vanished after compaction"));
          (match Segstore.validate store with
          | Ok info ->
              check (info.Segstore.i_torn = None) "compacted store reports a torn tail"
          | Error e ->
              raise
                (Check_failed
                   ("store invalid after faulted compaction: " ^ Stage_error.to_string e)));
          let c2 = Cache.create ~store () in
          check (entries_sig c2 = before) "reloaded live set differs"))

let scenario_fault_batch () =
  scenario "fault:serve.batch"
    "transient batch fault recovers invisibly; an exhausted retry budget \
     resolves the batch with typed per-request errors and the daemon survives"
    (fun check ->
      with_scratch (fun store ->
          let result, report =
            Fault.with_plan
              [ Fault.spec "serve.batch" Stage_error.Transient ]
              (fun () ->
                with_server ~store (fun _ addr ->
                    with_client addr (fun cl ->
                        List.iteri
                          (fun i r ->
                            match (r, List.nth (Lazy.force reference_responses) i) with
                            | Ok s, expect ->
                                check (s = expect)
                                  (Printf.sprintf "response %d differs under recovered fault" i)
                            | Error e, _ ->
                                raise
                                  (Check_failed
                                     (Printf.sprintf "eval %d failed under one-shot fault: %s"
                                        i (Protocol.err_to_string e))))
                          (eval_all cl workload))))
          in
          (match result with
          | Ok () -> ()
          | Error e ->
              raise (Check_failed ("campaign body raised: " ^ Printexc.to_string e)));
          check (injected_at "serve.batch" report >= 1) "serve.batch site never injected";
          (* exhaustion: more consecutive injections than the retry budget *)
          let result, report =
            Fault.with_plan
              [ Fault.spec ~hits:8 "serve.batch" Stage_error.Transient ]
              (fun () ->
                with_server (fun t addr ->
                    with_client addr (fun cl ->
                        (match Client.eval cl (wl_point 0) with
                        | Error (Protocol.Bad_request m) ->
                            (* the wire collapses stage errors client-side;
                               the typed payload must still carry the
                               injection *)
                            check
                              (contains ~sub:"injected" m)
                              "exhausted batch error does not carry the typed payload"
                        | Error e ->
                            raise
                              (Check_failed
                                 ("exhausted batch returned wrong class: "
                                 ^ Protocol.err_to_string e))
                        | Ok _ ->
                            raise (Check_failed "exhausted retry budget still succeeded"));
                        check (Client.ping cl) "daemon died with the failed batch";
                        let s = Server.stats t in
                        check (s.Server.errors >= 1) "typed failure not counted")))
          in
          (match result with
          | Ok () -> ()
          | Error e ->
              raise (Check_failed ("campaign body raised: " ^ Printexc.to_string e)));
          check (injected_at "serve.batch" report >= 3)
            "exhaustion plan injected fewer faults than the retry budget";
          check_warm_identity check store))

let scenario_fault_worker () =
  scenario "fault:dse.worker"
    "a worker domain killed mid-sweep degrades the pool without losing or \
     corrupting any response"
    (fun check ->
      let result, report =
        Fault.with_plan
          [ Fault.spec "dse.worker" Stage_error.Worker_kill ]
          (fun () ->
            with_server ~domains:4 (fun _ addr ->
                with_client addr (fun cl ->
                    match Client.request cl (Protocol.Sweep "smoke") with
                    | Ok doc ->
                        let geti k =
                          match Json.member k doc with
                          | Some (Json.Int n) -> n
                          | _ -> raise (Check_failed ("sweep doc missing " ^ k))
                        in
                        check (geti "evaluated" = geti "lattice")
                          "worker kill lost sweep points";
                        check (geti "refused" = 0) "worker kill refused points";
                        (match Json.member "failed" doc with
                        | Some (Json.List []) -> check true "no failed points"
                        | _ -> raise (Check_failed "worker kill failed points"))
                    | Error e ->
                        raise
                          (Check_failed
                             ("sweep failed under worker kill: "
                             ^ Protocol.err_to_string e)))))
      in
      (match result with
      | Ok () -> ()
      | Error e -> raise (Check_failed ("campaign body raised: " ^ Printexc.to_string e)));
      check (injected_at "dse.worker" report >= 1) "dse.worker site never injected")

(* --- scenario: crash-safe JSON migration --- *)

let scenario_migration () =
  scenario "json-migration"
    "a legacy JSON store migrates to segments on first open; warm replay is \
     byte-identical and an interrupted migration resumes"
    (fun check ->
      with_scratch (fun store ->
          let entries = List.map (fun p -> (p, Eval.point p)) workload in
          Cache.write_legacy_json store entries;
          with_server ~store (fun t addr ->
              with_client addr (fun cl ->
                  List.iteri
                    (fun i r ->
                      match (r, List.nth (Lazy.force reference_responses) i) with
                      | Ok s, expect ->
                          check (s = expect)
                            (Printf.sprintf "migrated response %d differs" i)
                      | Error e, _ ->
                          raise
                            (Check_failed
                               (Printf.sprintf "eval %d failed on migrated store: %s" i
                                  (Protocol.err_to_string e))))
                    (eval_all cl workload);
                  let s = Server.stats t in
                  check (s.Server.evals = 0)
                    "migrated store re-evaluated instead of serving warm";
                  check (s.Server.cache_hits = List.length workload)
                    "migrated store missed warm hits"));
          (match Cache.inspect_store store with
          | Cache.Store i ->
              check (i.Cache.si_format = "segment") "store did not migrate to segments";
              check (i.Cache.si_entries = List.length workload) "migration lost entries"
          | _ -> raise (Check_failed "migrated store not inspectable"));
          (* interrupted rename window: the segment generation is complete at
             path^".migrate" and the JSON original is already gone *)
          let moved = store ^ ".migrate" in
          rm_rf moved;
          Sys.rename store moved;
          let c = Cache.create ~store () in
          check
            ((Cache.stats c).Cache.entries = List.length workload)
            "resumed migration lost entries";
          check (Sys.file_exists store && Sys.is_directory store)
            "resumed migration left no store";
          check (not (Sys.file_exists moved)) "resumed migration left the temp dir"))

(* --- scenarios: misbehaving clients --- *)

let scenario_disconnect () =
  scenario "client-disconnect"
    "a client that vanishes mid-request must not wedge the daemon or poison \
     later clients"
    (fun check ->
      with_scratch (fun store ->
          with_server ~store (fun t addr ->
              (* fire an eval and hang up without reading the response *)
              (match Client.connect_retry addr with
              | Error e -> raise (Check_failed (Client.connect_error_to_string e))
              | Ok cl ->
                  Client.send_line cl
                    (Json.to_string
                       (Protocol.request_to_json
                          { Protocol.id = 1; op = Protocol.Eval (wl_point 0) }));
                  Client.close cl);
              (* and one that hangs up mid-line *)
              (match Client.connect_retry addr with
              | Error e -> raise (Check_failed (Client.connect_error_to_string e))
              | Ok cl ->
                  Client.send_raw cl "{\"id\": 2, \"op\": \"ev";
                  Client.close cl);
              with_client addr (fun cl ->
                  check (Client.ping cl) "daemon unreachable after disconnects";
                  match Client.eval cl (wl_point 1) with
                  | Ok s ->
                      check
                        (Json.to_string s = List.nth (Lazy.force reference_responses) 1)
                        "response corrupted after disconnects"
                  | Error e ->
                      raise
                        (Check_failed
                           ("eval failed after disconnects: " ^ Protocol.err_to_string e)));
              let s = Server.stats t in
              check (s.Server.clients_seen >= 3) "disconnected clients not registered")))

let scenario_idle_eviction () =
  scenario "slow-reader-eviction"
    "a silent connection is evicted at the idle deadline with a typed \
     timeout response; active clients are untouched"
    (fun check ->
      with_server ~idle_timeout_s:0.3 (fun t addr ->
          let sa = Protocol.sockaddr_of_addr addr in
          let fd = Unix.socket ~cloexec:true (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          Fun.protect
            ~finally:(fun () -> try close_out_noerr oc with _ -> ())
            (fun () ->
              Unix.connect fd sa;
              output_string oc "{\"id\": 1, \"op\": \"ping\"}\n";
              flush oc;
              check (input_line ic <> "") "no ping response";
              (* now go silent past the deadline; the daemon must speak first *)
              (match input_line ic with
              | line -> (
                  match Json.of_string line with
                  | Error e -> raise (Check_failed ("unparsable eviction line: " ^ e))
                  | Ok j -> (
                      match Protocol.response_of_json j with
                      | Ok { Protocol.r_id = 0; body = Error (Protocol.Timeout _) } ->
                          check true "typed timeout received"
                      | Ok _ -> raise (Check_failed "eviction response not a typed timeout")
                      | Error e -> raise (Check_failed ("bad eviction response: " ^ e))))
              | exception End_of_file ->
                  (* a hangup without the courtesy line only passes if the
                     socket genuinely went unwritable; treat as failure to
                     keep the contract strict *)
                  raise (Check_failed "evicted without a typed timeout response"));
              (match input_line ic with
              | _ -> raise (Check_failed "connection survived its eviction")
              | exception End_of_file -> check true "connection closed after eviction"));
          (* an active client outlives many idle periods *)
          with_client addr (fun cl ->
              for _ = 1 to 3 do
                Unix.sleepf 0.1;
                check (Client.ping cl) "active client evicted"
              done);
          let s = Server.stats t in
          check (s.Server.idle_evictions >= 1) "eviction not counted"))

let scenario_overload () =
  scenario "overload"
    "concurrent clients flooding a tiny queue bound all complete correctly \
     through backpressure, and the store survives"
    (fun check ->
      with_scratch (fun store ->
          let clients = 4 and per_client = 6 in
          let results = Array.make clients [] in
          with_server ~store ~queue_bound:2 (fun t addr ->
              let threads =
                Array.init clients (fun c ->
                    Thread.create
                      (fun () ->
                        match Client.connect_retry addr with
                        | Error e ->
                            results.(c) <- [ Error (Client.connect_error_to_string e) ]
                        | Ok cl ->
                            Fun.protect
                              ~finally:(fun () -> Client.close cl)
                              (fun () ->
                                results.(c) <-
                                  List.init per_client (fun i ->
                                      let p =
                                        {
                                          (wl_point 0) with
                                          Space.sigma_scale =
                                            2.0
                                            +. (0.0001
                                               *. float_of_int ((c * per_client) + i));
                                        }
                                      in
                                      match Client.eval cl p with
                                      | Ok j -> Ok (Json.to_string j)
                                      | Error e -> Error (Protocol.err_to_string e))))
                      ())
              in
              Array.iter Thread.join threads;
              Array.iteri
                (fun c rs ->
                  check (List.length rs = per_client)
                    (Printf.sprintf "client %d lost responses" c);
                  List.iteri
                    (fun i r ->
                      match r with
                      | Ok _ -> ()
                      | Error e ->
                          raise
                            (Check_failed
                               (Printf.sprintf "client %d response %d: %s" c i e)))
                    rs)
                results;
              let s = Server.stats t in
              check (s.Server.evals = clients * per_client)
                (Printf.sprintf "expected %d evals, ran %d" (clients * per_client)
                   s.Server.evals));
          match Segstore.validate store with
          | Ok info ->
              check
                (info.Segstore.i_keys = clients * per_client)
                "store lost entries under overload";
              check (info.Segstore.i_torn = None) "store torn after graceful stop"
          | Error e ->
              raise
                (Check_failed ("store invalid after overload: " ^ Stage_error.to_string e))))

(* --- coverage --- *)

(* sites this campaign arms itself, from the daemon inward *)
let chaos_sites = [ "segstore.append"; "segstore.compact"; "serve.batch"; "dse.worker" ]

(* flow layers whose sites the [repro faults] campaign owns; its own
   module-initialisation assert keeps that campaign total over the catalog *)
let delegated_layers = [ "synth"; "sta"; "place"; "mc"; "dse"; "gap_fpga" ]

let coverage () =
  let catalog_sites = List.map (fun (s, _, _) -> s) Fault.catalog in
  let delegated =
    List.filter
      (fun s -> (not (List.mem s chaos_sites)) && List.mem (Fault.layer s) delegated_layers)
      catalog_sites
  in
  let missing =
    List.filter
      (fun s -> (not (List.mem s chaos_sites)) && not (List.mem s delegated))
      catalog_sites
  in
  (delegated, missing)

(* --- the campaign --- *)

let run () =
  (* explicit sequencing: the fork scenario MUST run before anything spawns
     a worker domain (OCaml 5 forbids fork afterwards), and a list literal
     does not promise evaluation order *)
  let s_sigkill = scenario_sigkill () in
  let s_torn = scenario_torn_matrix () in
  let s_corrupt = scenario_corrupt_pre_tail () in
  let s_append = scenario_fault_append () in
  let s_compact = scenario_fault_compact () in
  let s_batch = scenario_fault_batch () in
  let s_worker = scenario_fault_worker () in
  let s_migrate = scenario_migration () in
  let s_disconnect = scenario_disconnect () in
  let s_idle = scenario_idle_eviction () in
  let s_overload = scenario_overload () in
  let scenarios =
    [
      s_sigkill; s_torn; s_corrupt; s_append; s_compact; s_batch; s_worker;
      s_migrate; s_disconnect; s_idle; s_overload;
    ]
  in
  let delegated, missing = coverage () in
  let ok =
    missing = []
    && List.for_all
         (fun s -> match s.outcome with Passed -> s.checks > 0 | Failed _ -> false)
         scenarios
  in
  { scenarios; chaos_sites; delegated_sites = delegated; missing_sites = missing; ok }

let to_json c =
  let scenario_json s =
    Json.Obj
      ([
         ("name", Json.Str s.name);
         ("detail", Json.Str s.detail);
         ("checks", Json.Int s.checks);
         ( "outcome",
           Json.Str (match s.outcome with Passed -> "passed" | Failed _ -> "failed") );
       ]
      @ match s.outcome with Passed -> [] | Failed m -> [ ("error", Json.Str m) ])
  in
  let strs l = Json.List (List.map (fun s -> Json.Str s) l) in
  Json.Obj
    [
      ("version", Json.Int 1);
      ("campaign", Json.Str "serve-chaos");
      ("scenarios", Json.List (List.map scenario_json c.scenarios));
      ( "coverage",
        Json.Obj
          [
            ("chaos", strs c.chaos_sites);
            ("delegated", strs c.delegated_sites);
            ("missing", strs c.missing_sites);
          ] );
      ( "totals",
        Json.Obj
          [
            ("scenarios", Json.Int (List.length c.scenarios));
            ( "checks",
              Json.Int (List.fold_left (fun a s -> a + s.checks) 0 c.scenarios) );
            ( "failed",
              Json.Int
                (List.length
                   (List.filter
                      (fun s -> match s.outcome with Failed _ -> true | _ -> false)
                      c.scenarios)) );
          ] );
      ("ok", Json.Bool c.ok);
    ]

let table c =
  Gap_util.Table.render
    ~aligns:Gap_util.Table.[ Left; Right; Left ]
    ~header:[ "scenario"; "checks"; "outcome" ]
    (List.map
       (fun s ->
         [
           s.name;
           string_of_int s.checks;
           (match s.outcome with Passed -> "passed" | Failed m -> "FAILED: " ^ m);
         ])
       c.scenarios)
