module Json = Gap_obs.Json

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
}

let connect addr =
  let sa = Protocol.sockaddr_of_addr addr in
  let domain = Unix.domain_of_sockaddr sa in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sa
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    next_id = 1;
  }

type connect_error =
  | Connect_timeout of {
      addr : string;
      attempts : int;
      elapsed_s : float;
      last_error : string;
    }

let connect_error_to_string = function
  | Connect_timeout { addr; attempts; elapsed_s; last_error } ->
      Printf.sprintf "connect %s: timed out after %d attempt%s in %.2fs (last error: %s)"
        addr attempts
        (if attempts = 1 then "" else "s")
        elapsed_s last_error

(* Deterministic exponential backoff: attempt [k] sleeps
   [min max_delay_s (base_delay_s * 2^k)] — no jitter, so a failing
   connect produces the same attempt schedule every run. The total
   [deadline_s] budget caps the loop: the final sleep is clipped to the
   time remaining, and one last attempt fires at the deadline so a daemon
   that binds exactly then is still caught. *)
let connect_retry ?(base_delay_s = 0.01) ?(max_delay_s = 0.5) ?(deadline_s = 5.0)
    addr =
  let start = Unix.gettimeofday () in
  let deadline_s = Float.max 0. deadline_s in
  let rec go k =
    match connect addr with
    | t -> Ok t
    | exception Unix.Unix_error (e, _, _) ->
        let last_error = Unix.error_message e in
        let elapsed = Unix.gettimeofday () -. start in
        if elapsed >= deadline_s then
          Error
            (Connect_timeout
               {
                 addr = Protocol.addr_to_string addr;
                 attempts = k + 1;
                 elapsed_s = elapsed;
                 last_error;
               })
        else begin
          let backoff =
            Float.min max_delay_s (base_delay_s *. Float.pow 2. (float_of_int k))
          in
          Unix.sleepf (Float.min backoff (deadline_s -. elapsed));
          go (k + 1)
        end
  in
  go 0

let close t =
  close_out_noerr t.oc;
  close_in_noerr t.ic

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let send_raw t s =
  output_string t.oc s;
  flush t.oc

let raw_roundtrip t line =
  match
    send_line t line;
    input_line t.ic
  with
  | resp -> Ok resp
  | exception End_of_file -> Error "connection closed"
  | exception Sys_error e -> Error e

let request t op =
  let id = t.next_id in
  t.next_id <- id + 1;
  let line = Json.to_string (Protocol.request_to_json { Protocol.id; op }) in
  match raw_roundtrip t line with
  | Error e -> Error (Protocol.Bad_request ("transport: " ^ e))
  | Ok resp_line -> (
      match Json.of_string resp_line with
      | Error e -> Error (Protocol.Bad_request ("malformed response: " ^ e))
      | Ok j -> (
          match Protocol.response_of_json j with
          | Error e -> Error (Protocol.Bad_request e)
          | Ok r when r.Protocol.r_id <> id ->
              Error
                (Protocol.Bad_request
                   (Printf.sprintf "response id %d for request %d"
                      r.Protocol.r_id id))
          | Ok r -> r.Protocol.body))

let eval t p = request t (Protocol.Eval p)

let ping t =
  match request t Protocol.Ping with Ok _ -> true | Error _ -> false

let shutdown t =
  match request t Protocol.Shutdown with Ok _ | Error _ -> ()
