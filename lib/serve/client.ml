module Json = Gap_obs.Json

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
}

let connect addr =
  let sa = Protocol.sockaddr_of_addr addr in
  let domain = Unix.domain_of_sockaddr sa in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sa
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    next_id = 1;
  }

let connect_retry ?(attempts = 50) ?(delay_s = 0.05) addr =
  let rec go n =
    match connect addr with
    | t -> Ok t
    | exception Unix.Unix_error (e, _, _) ->
        if n <= 1 then
          Error
            (Printf.sprintf "connect %s: %s"
               (Protocol.addr_to_string addr)
               (Unix.error_message e))
        else begin
          Unix.sleepf delay_s;
          go (n - 1)
        end
  in
  go (max 1 attempts)

let close t =
  close_out_noerr t.oc;
  close_in_noerr t.ic

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let raw_roundtrip t line =
  match
    send_line t line;
    input_line t.ic
  with
  | resp -> Ok resp
  | exception End_of_file -> Error "connection closed"
  | exception Sys_error e -> Error e

let request t op =
  let id = t.next_id in
  t.next_id <- id + 1;
  let line = Json.to_string (Protocol.request_to_json { Protocol.id; op }) in
  match raw_roundtrip t line with
  | Error e -> Error (Protocol.Bad_request ("transport: " ^ e))
  | Ok resp_line -> (
      match Json.of_string resp_line with
      | Error e -> Error (Protocol.Bad_request ("malformed response: " ^ e))
      | Ok j -> (
          match Protocol.response_of_json j with
          | Error e -> Error (Protocol.Bad_request e)
          | Ok r when r.Protocol.r_id <> id ->
              Error
                (Protocol.Bad_request
                   (Printf.sprintf "response id %d for request %d"
                      r.Protocol.r_id id))
          | Ok r -> r.Protocol.body))

let eval t p = request t (Protocol.Eval p)

let ping t =
  match request t Protocol.Ping with Ok _ -> true | Error _ -> false

let shutdown t =
  match request t Protocol.Shutdown with Ok _ | Error _ -> ()
