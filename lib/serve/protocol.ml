module Json = Gap_obs.Json
module Stage_error = Gap_resilience.Stage_error
module Space = Gap_dse.Space

type op =
  | Eval of Space.point
  | Sweep of string
  | Pareto of string
  | Stats
  | Ping
  | Shutdown

type request = { id : int; op : op }

type err =
  | Bad_request of string
  | Overloaded of string
  | Timeout of string
  | Stage of Stage_error.t

type response = { r_id : int; body : (Json.t, err) result }

let op_name = function
  | Eval _ -> "eval"
  | Sweep _ -> "sweep"
  | Pareto _ -> "pareto"
  | Stats -> "stats"
  | Ping -> "ping"
  | Shutdown -> "shutdown"

let request_to_json r =
  let base = [ ("id", Json.Int r.id); ("op", Json.Str (op_name r.op)) ] in
  let rest =
    match r.op with
    | Eval p -> [ ("point", Space.point_json p) ]
    | Sweep preset | Pareto preset -> [ ("preset", Json.Str preset) ]
    | Stats | Ping | Shutdown -> []
  in
  Json.Obj (base @ rest)

let request_of_json j =
  match Json.member "op" j with
  | Some (Json.Str op) -> (
      let id = match Json.member "id" j with Some (Json.Int i) -> i | _ -> 0 in
      let preset () =
        match Json.member "preset" j with
        | Some (Json.Str s) -> Ok s
        | _ -> Error (Printf.sprintf "%s: missing \"preset\"" op)
      in
      match op with
      | "eval" -> (
          match Json.member "point" j with
          | Some pj -> (
              match Space.point_of_json pj with
              | Ok p -> Ok { id; op = Eval p }
              | Error e -> Error ("eval: bad point: " ^ e))
          | None -> Error "eval: missing \"point\"")
      | "sweep" -> Result.map (fun s -> { id; op = Sweep s }) (preset ())
      | "pareto" -> Result.map (fun s -> { id; op = Pareto s }) (preset ())
      | "stats" -> Ok { id; op = Stats }
      | "ping" -> Ok { id; op = Ping }
      | "shutdown" -> Ok { id; op = Shutdown }
      | other -> Error (Printf.sprintf "unknown op %S" other))
  | Some _ -> Error "\"op\" is not a string"
  | None -> Error "missing \"op\""

let parse_request line =
  match Json.of_string line with
  | Error e -> Error ("malformed JSON: " ^ e)
  | Ok j -> request_of_json j

let err_to_json = function
  | Bad_request m ->
      Json.Obj [ ("kind", Json.Str "bad-request"); ("detail", Json.Str m) ]
  | Overloaded m ->
      Json.Obj [ ("kind", Json.Str "overloaded"); ("detail", Json.Str m) ]
  | Timeout m ->
      Json.Obj [ ("kind", Json.Str "timeout"); ("detail", Json.Str m) ]
  | Stage e ->
      Json.Obj [ ("kind", Json.Str "stage"); ("stage_error", Stage_error.to_json e) ]

let err_of_json j =
  let detail () =
    match Json.member "detail" j with Some (Json.Str s) -> s | _ -> ""
  in
  match Json.member "kind" j with
  | Some (Json.Str "overloaded") -> Overloaded (detail ())
  | Some (Json.Str "timeout") -> Timeout (detail ())
  | Some (Json.Str "stage") ->
      (* the client side needs the rendering, not the taxonomy: carry the
         payload as an opaque bad-request if it does not parse *)
      Bad_request (Json.to_string (Option.value ~default:Json.Null (Json.member "stage_error" j)))
  | _ -> Bad_request (detail ())

let err_to_string = function
  | Bad_request m -> "bad request: " ^ m
  | Overloaded m -> "overloaded: " ^ m
  | Timeout m -> "timeout: " ^ m
  | Stage e -> "stage error: " ^ Stage_error.to_string e

let response_to_json r =
  match r.body with
  | Ok result ->
      Json.Obj
        [ ("id", Json.Int r.r_id); ("ok", Json.Bool true); ("result", result) ]
  | Error e ->
      Json.Obj
        [ ("id", Json.Int r.r_id); ("ok", Json.Bool false); ("error", err_to_json e) ]

let response_of_json j =
  match (Json.member "id" j, Json.member "ok" j) with
  | Some (Json.Int id), Some (Json.Bool true) -> (
      match Json.member "result" j with
      | Some result -> Ok { r_id = id; body = Ok result }
      | None -> Error "ok response without \"result\"")
  | Some (Json.Int id), Some (Json.Bool false) -> (
      match Json.member "error" j with
      | Some e -> Ok { r_id = id; body = Error (err_of_json e) }
      | None -> Error "error response without \"error\"")
  | _ -> Error "response: missing \"id\"/\"ok\""

let render_response r = Json.to_string (response_to_json r)

(* --- addresses --- *)

type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  if String.contains s '/' then Ok (Unix_sock s)
  else
    match String.rindex_opt s ':' with
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 ->
            Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | _ -> Error (Printf.sprintf "bad port in %S" s))
    | None -> (
        match int_of_string_opt s with
        | Some p when p > 0 && p < 65536 -> Ok (Tcp ("127.0.0.1", p))
        | _ ->
            Error
              (Printf.sprintf
                 "%S: expected a socket path (with '/'), HOST:PORT, or PORT" s))

let addr_to_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let sockaddr_of_addr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let ip =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found | Invalid_argument _ -> Unix.inet_addr_loopback
      in
      Unix.ADDR_INET (ip, port)
