module Json = Gap_obs.Json
module Obs = Gap_obs.Obs
module Space = Gap_dse.Space

type result = {
  clients : int;
  waves : int;
  unique : int;
  requests : int;
  errors : int;
  wall_ns : float;
  p50_ns : float;
  p99_ns : float;
  max_ns : float;
  mean_ns : float;
  throughput_rps : float;
  server : Server.stats;
  coalesce_rate : float;
  cache_hit_rate : float;
}

(* Cyclic barrier: all parties block until the last arrives, generation
   counter distinguishes successive waves. *)
type barrier = {
  bm : Mutex.t;
  bc : Condition.t;
  parties : int;
  mutable arrived : int;
  mutable gen : int;
}

let barrier_make parties =
  { bm = Mutex.create (); bc = Condition.create (); parties; arrived = 0; gen = 0 }

let barrier_await b =
  Mutex.lock b.bm;
  let g = b.gen in
  b.arrived <- b.arrived + 1;
  if b.arrived = b.parties then begin
    b.arrived <- 0;
    b.gen <- g + 1;
    Condition.broadcast b.bc
  end
  else
    while b.gen = g do
      Condition.wait b.bc b.bm
    done;
  Mutex.unlock b.bm

(* Fresh points nobody has evaluated before: nudge the variation sigma off
   the baseline by a distinct epsilon per point. Wave points live below
   sigma 1.5, unique points above 2.0, so the phases cannot collide.

   Wave points run the binning Monte Carlo at 1M dies (~100ms): the
   evaluation must outlast at least one systhread preemption tick, or the
   compute-bound scheduler never yields the runtime lock mid-eval and the
   followers — scheduled only after the result lands — all degrade from
   in-flight coalesces to mere cache hits. Unique points stay cheap; their
   phase measures queueing, not contention. *)
let wave_point w =
  {
    Space.baseline with
    Space.sigma_scale = 1.0 +. (0.0001 *. float_of_int (w + 1));
    binning = true;
    mc_dies = 1_000_000;
  }

let unique_point ~unique c u =
  {
    Space.baseline with
    Space.sigma_scale = 2.0 +. (0.0001 *. float_of_int ((c * unique) + u + 1));
    mc_dies = 16;
  }

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let run ?(clients = 256) ?(waves = 8) ?(unique = 2) ~addr ~server () =
  let per_client = waves + unique in
  let lat = Array.make_matrix clients per_client 0. in
  let errs = Array.make clients 0 in
  let barrier = barrier_make clients in
  let fail = Mutex.create () in
  let failures = ref [] in
  let client_body c () =
    match Client.connect_retry addr with
    | Error e ->
        Mutex.lock fail;
        failures :=
          Printf.sprintf "client %d: %s" c (Client.connect_error_to_string e)
          :: !failures;
        Mutex.unlock fail;
        (* release the others: a stuck barrier would hang the whole run *)
        for _ = 1 to per_client do barrier_await barrier done
    | Ok cl ->
        Fun.protect ~finally:(fun () -> Client.close cl)
          (fun () ->
            for w = 0 to waves - 1 do
              barrier_await barrier;
              let t0 = Obs.now_ns () in
              (match Client.eval cl (wave_point w) with
              | Ok _ -> ()
              | Error _ -> errs.(c) <- errs.(c) + 1);
              lat.(c).(w) <- Int64.to_float (Int64.sub (Obs.now_ns ()) t0)
            done;
            for u = 0 to unique - 1 do
              barrier_await barrier;
              let t0 = Obs.now_ns () in
              (match Client.eval cl (unique_point ~unique c u) with
              | Ok _ -> ()
              | Error _ -> errs.(c) <- errs.(c) + 1);
              lat.(c).(waves + u) <- Int64.to_float (Int64.sub (Obs.now_ns ()) t0)
            done)
  in
  let t0 = Obs.now_ns () in
  let threads = Array.init clients (fun c -> Thread.create (client_body c) ()) in
  Array.iter Thread.join threads;
  let wall_ns = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) in
  (match !failures with
  | [] -> ()
  | f :: _ -> failwith ("load generator: " ^ f));
  let all = Array.concat (Array.to_list lat) in
  Array.sort Float.compare all;
  let requests = Array.length all in
  let sum = Array.fold_left ( +. ) 0. all in
  let s = Server.stats server in
  let eval_requests = s.Server.evals + s.Server.coalesced + s.Server.cache_hits in
  {
    clients;
    waves;
    unique;
    requests;
    errors = Array.fold_left ( + ) 0 errs;
    wall_ns;
    p50_ns = percentile all 0.50;
    p99_ns = percentile all 0.99;
    max_ns = (if requests = 0 then 0. else all.(requests - 1));
    mean_ns = (if requests = 0 then 0. else sum /. float_of_int requests);
    throughput_rps =
      (if wall_ns <= 0. then 0. else float_of_int requests /. (wall_ns /. 1e9));
    server = s;
    coalesce_rate =
      (let denom = s.Server.coalesced + s.Server.evals in
       if denom = 0 then 0. else float_of_int s.Server.coalesced /. float_of_int denom);
    cache_hit_rate =
      (if eval_requests = 0 then 0.
       else float_of_int s.Server.cache_hits /. float_of_int eval_requests);
  }

let to_json r =
  Json.Obj
    [
      ("clients", Json.Int r.clients);
      ("waves", Json.Int r.waves);
      ("unique_per_client", Json.Int r.unique);
      ("requests", Json.Int r.requests);
      ("errors", Json.Int r.errors);
      ("wall_ns", Json.Float r.wall_ns);
      ("p50_ns", Json.Float r.p50_ns);
      ("p99_ns", Json.Float r.p99_ns);
      ("max_ns", Json.Float r.max_ns);
      ("mean_ns", Json.Float r.mean_ns);
      ("throughput_rps", Json.Float r.throughput_rps);
      ("evals", Json.Int r.server.Server.evals);
      ("coalesced", Json.Int r.server.Server.coalesced);
      ("cache_hits", Json.Int r.server.Server.cache_hits);
      ("batches", Json.Int r.server.Server.batches);
      ("max_batch", Json.Int r.server.Server.max_batch);
      ("coalesce_rate", Json.Float r.coalesce_rate);
      ("cache_hit_rate", Json.Float r.cache_hit_rate);
    ]
