module Json = Gap_obs.Json
module Obs = Gap_obs.Obs
module History = Gap_obs.History
module Stage_error = Gap_resilience.Stage_error
module Fault = Gap_resilience.Fault
module Supervisor = Gap_resilience.Supervisor
module Space = Gap_dse.Space
module Eval = Gap_dse.Eval
module Key = Gap_dse.Key
module Cache = Gap_dse.Cache
module Pool = Gap_dse.Pool
module Frontier = Gap_dse.Frontier

type config = {
  addr : Protocol.addr;
  domains : int;
  store : string option;
  capacity : int;
  queue_bound : int;
  fair_share : int;
  batch_max : int;
  history : string option;
  idle_timeout_s : float option;
}

let default_config addr =
  {
    addr;
    domains = 1;
    store = None;
    capacity = 4096;
    queue_bound = 64;
    fair_share = 8;
    batch_max = 256;
    history = None;
    idle_timeout_s = None;
  }

(* One in-flight evaluation. Requests for the same key attach to the same
   slot; the scheduler fills [sl_result] exactly once and broadcasts. *)
type slot = {
  sl_key : string;
  sl_point : Space.point;
  sl_client : int;  (* owner for the queue-bound accounting *)
  mutable sl_result : (Eval.metrics, Stage_error.t) result option;
}

type client_q = {
  cl_id : int;
  cl_queue : slot Queue.t;  (* enqueued, not yet handed to a batch *)
  mutable cl_inflight : int;  (* enqueued or batched, not yet resolved *)
  mutable cl_gone : bool;  (* disconnected; reap once inflight drains *)
}

type stats = {
  requests : int;
  evals : int;
  coalesced : int;
  cache_hits : int;
  errors : int;
  batches : int;
  max_batch : int;
  clients_seen : int;
  idle_evictions : int;
  flush_failures : int;
}

type t = {
  cfg : config;
  lock : Mutex.t;
  work_cond : Condition.t;  (* scheduler: work arrived / shutdown *)
  done_cond : Condition.t;  (* waiters: results landed / queue room freed *)
  stopped_cond : Condition.t;
  cache : Cache.t;
  inflight : (string, slot) Hashtbl.t;
  clients : (int, client_q) Hashtbl.t;
  mutable client_order : int list;  (* ascending ids: round-robin universe *)
  mutable rr_cursor : int;  (* rotate fairness start point per batch *)
  mutable n_queued : int;  (* total slots sitting in client queues *)
  mutable next_client : int;
  mutable stopping : bool;
  mutable stopped : bool;
  mutable listen_fd : Unix.file_descr option;
  mutable conns : Unix.file_descr list;  (* live accepted sockets *)
  mutable accept_thread : Thread.t option;
  mutable sched_thread : Thread.t option;
  (* accounting (under [lock]) *)
  mutable n_requests : int;
  mutable n_evals : int;
  mutable n_coalesced : int;
  mutable n_cache_hits : int;
  mutable n_errors : int;
  mutable n_batches : int;
  mutable max_batch : int;
  mutable clients_seen : int;
  mutable n_idle_evictions : int;
  mutable n_flush_failures : int;
}

let create cfg =
  (* force the evaluator's memoized anchors before any worker domain or
     request thread can race the lazies *)
  Eval.warmup ();
  {
    cfg;
    lock = Mutex.create ();
    work_cond = Condition.create ();
    done_cond = Condition.create ();
    stopped_cond = Condition.create ();
    cache = Cache.create ~capacity:cfg.capacity ?store:cfg.store ();
    inflight = Hashtbl.create 64;
    clients = Hashtbl.create 16;
    client_order = [];
    rr_cursor = 0;
    n_queued = 0;
    next_client = 0;
    stopping = false;
    stopped = false;
    listen_fd = None;
    conns = [];
    accept_thread = None;
    sched_thread = None;
    n_requests = 0;
    n_evals = 0;
    n_coalesced = 0;
    n_cache_hits = 0;
    n_errors = 0;
    n_batches = 0;
    max_batch = 0;
    clients_seen = 0;
    n_idle_evictions = 0;
    n_flush_failures = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* --- client bookkeeping (callers hold the lock) --- *)

let register_client t =
  let id = t.next_client in
  t.next_client <- id + 1;
  t.clients_seen <- t.clients_seen + 1;
  let cl = { cl_id = id; cl_queue = Queue.create (); cl_inflight = 0; cl_gone = false } in
  Hashtbl.add t.clients id cl;
  t.client_order <- List.sort compare (id :: t.client_order);
  cl

let reap_client t cl =
  if cl.cl_gone && cl.cl_inflight = 0 && Queue.is_empty cl.cl_queue then begin
    Hashtbl.remove t.clients cl.cl_id;
    t.client_order <- List.filter (fun i -> i <> cl.cl_id) t.client_order
  end

let release_client t cl =
  cl.cl_gone <- true;
  reap_client t cl

(* --- the scheduler --- *)

(* Round-robin batch collection: walk the client list starting at the
   rotating cursor, taking at most [fair_share] slots per client per pass,
   repeating passes until [batch_max] or every queue is empty. A client
   flooding its (bounded) queue therefore delays a one-point client by at
   most one pass, not by its whole backlog. Callers hold the lock. *)
let collect_batch t =
  let order =
    match t.client_order with
    | [] -> []
    | ids ->
        let n = List.length ids in
        let k = t.rr_cursor mod n in
        let rec rotate i = function
          | [] -> []
          | l when i = 0 -> l
          | x :: rest -> rotate (i - 1) rest @ [ x ]
        in
        t.rr_cursor <- t.rr_cursor + 1;
        rotate k ids
  in
  let batch = ref [] in
  let n = ref 0 in
  let progress = ref true in
  while !progress && !n < t.cfg.batch_max do
    progress := false;
    List.iter
      (fun id ->
        match Hashtbl.find_opt t.clients id with
        | None -> ()
        | Some cl ->
            let take = ref 0 in
            while
              !take < t.cfg.fair_share
              && !n < t.cfg.batch_max
              && not (Queue.is_empty cl.cl_queue)
            do
              batch := Queue.pop cl.cl_queue :: !batch;
              t.n_queued <- t.n_queued - 1;
              incr take;
              incr n;
              progress := true
            done)
      order
  done;
  Array.of_list (List.rev !batch)

let resolve_batch t batch outcomes =
  t.n_evals <- t.n_evals + Array.length batch;
  Array.iteri
    (fun i slot ->
      let outcome = outcomes.(i) in
      slot.sl_result <- Some outcome;
      Hashtbl.remove t.inflight slot.sl_key;
      (match outcome with
      | Ok m -> Cache.add t.cache slot.sl_point m
      | Error _ -> ());
      match Hashtbl.find_opt t.clients slot.sl_client with
      | Some cl ->
          cl.cl_inflight <- cl.cl_inflight - 1;
          reap_client t cl
      | None -> ())
    batch;
  (* one crash-only append per batch: a kill at any instant leaves at worst
     a torn tail recovery truncates. A failing disk must not kill the
     scheduler — the typed error is recorded and the pending records stay
     queued for the next batch's attempt. *)
  match Cache.try_flush t.cache with
  | Ok () -> ()
  | Error e ->
      t.n_flush_failures <- t.n_flush_failures + 1;
      Obs.incr "serve.flush_failures";
      Obs.event "serve.flush_failed" [ ("error", Stage_error.to_json e) ]

(* Run one batch through the supervised pool. [Fault.point "serve.batch"]
   sits inside the retry scope, so an injected transient recovers invisibly;
   on exhaustion every slot in the batch resolves with the typed error
   instead of the scheduler dying and wedging its clients. *)
let eval_batch t pts =
  let run () =
    Obs.span "serve.batch"
      ~attrs:[ ("jobs", Json.Int (Array.length pts)) ]
      (fun () ->
        Fault.point "serve.batch";
        Pool.map ~domains:t.cfg.domains ~stage:"serve.eval" Eval.point pts)
  in
  match Supervisor.retry ~stage:"serve.batch" run with
  | outcomes -> outcomes
  | exception Stage_error.Stage_failure e -> Array.map (fun _ -> Error e) pts

let scheduler_loop t =
  let running = ref true in
  while !running do
    let batch =
      locked t (fun () ->
          while t.n_queued = 0 && not t.stopping do
            Condition.wait t.work_cond t.lock
          done;
          if t.n_queued = 0 && t.stopping then begin
            running := false;
            [||]
          end
          else begin
            let b = collect_batch t in
            t.n_batches <- t.n_batches + 1;
            if Array.length b > t.max_batch then t.max_batch <- Array.length b;
            b
          end)
    in
    if Array.length batch > 0 then begin
      let pts = Array.map (fun s -> s.sl_point) batch in
      (* every evaluation runs through the supervised pool: a poisoned
         point produces a typed Stage_error outcome, never a dead server *)
      let outcomes = eval_batch t pts in
      locked t (fun () ->
          resolve_batch t batch outcomes;
          Condition.broadcast t.done_cond)
    end
  done;
  locked t (fun () ->
      (match Cache.try_flush t.cache with
      | Ok () -> ()
      | Error e ->
          t.n_flush_failures <- t.n_flush_failures + 1;
          Obs.incr "serve.flush_failures";
          Obs.event "serve.flush_failed" [ ("error", Stage_error.to_json e) ]);
      Condition.broadcast t.done_cond)

(* --- the request paths (called from connection threads) --- *)

(* Evaluate [pts] for [cl], pipelined through the shared machinery:
   cache hits resolve immediately, in-flight duplicates coalesce onto the
   existing slot, the rest enqueue under the per-client bound (blocking —
   and therefore back-pressuring the socket — when the bound is hit).
   Returns outcomes in input order. *)
let eval_points t cl pts =
  let n = Array.length pts in
  let staged = Array.make n None in
  locked t (fun () ->
      let fresh = ref false in
      Array.iteri
        (fun i p ->
          match Cache.find t.cache p with
          | Some m ->
              t.n_cache_hits <- t.n_cache_hits + 1;
              Obs.incr "serve.cache_hit";
              staged.(i) <- Some (`Done (Ok m))
          | None -> (
              let key = Key.of_point p in
              match Hashtbl.find_opt t.inflight key with
              | Some slot ->
                  t.n_coalesced <- t.n_coalesced + 1;
                  Obs.incr "serve.coalesced";
                  staged.(i) <- Some (`Wait slot)
              | None ->
                  while cl.cl_inflight >= t.cfg.queue_bound && not t.stopping do
                    Condition.wait t.done_cond t.lock
                  done;
                  if t.stopping then
                    staged.(i) <- Some (`Refused (Protocol.Overloaded "server shutting down"))
                  else begin
                    let slot =
                      { sl_key = key; sl_point = p; sl_client = cl.cl_id; sl_result = None }
                    in
                    Hashtbl.add t.inflight key slot;
                    Queue.push slot cl.cl_queue;
                    cl.cl_inflight <- cl.cl_inflight + 1;
                    t.n_queued <- t.n_queued + 1;
                    fresh := true;
                    staged.(i) <- Some (`Wait slot)
                  end))
        pts;
      if !fresh then Condition.signal t.work_cond;
      Array.map
        (function
          | Some (`Done r) -> Ok r
          | Some (`Refused e) -> Error e
          | Some (`Wait slot) ->
              while Option.is_none slot.sl_result do
                Condition.wait t.done_cond t.lock
              done;
              Ok (Option.get slot.sl_result)
          | None -> assert false)
        staged)

let point_metrics_json (p, m) =
  Json.Obj [ ("point", Space.point_json p); ("metrics", Eval.to_json m) ]

let eval_op t cl p =
  match (eval_points t cl [| p |]).(0) with
  | Ok (Ok m) -> Ok (Eval.to_json m)
  | Ok (Error e) -> Error (Protocol.Stage e)
  | Error e -> Error e

(* Chunked so one sweep request cannot occupy more than its queue bound at
   a time; within a chunk the pool still evaluates misses in parallel. *)
let eval_preset t cl space =
  let pts = Array.of_list (Space.enumerate space) in
  let n = Array.length pts in
  let out = Array.make n (Error (Protocol.Overloaded "unreached")) in
  let chunk = max 1 t.cfg.queue_bound in
  let i = ref 0 in
  while !i < n do
    let len = min chunk (n - !i) in
    let res = eval_points t cl (Array.sub pts !i len) in
    Array.blit res 0 out !i len;
    i := !i + len
  done;
  (pts, out)

let sweep_doc ~preset pts out =
  let kept = ref [] and failed = ref [] and refused = ref 0 in
  Array.iteri
    (fun i p ->
      match out.(i) with
      | Ok (Ok m) -> kept := (p, m) :: !kept
      | Ok (Error e) -> failed := (p, e) :: !failed
      | Error _ -> incr refused)
    pts;
  let kept = List.rev !kept and failed = List.rev !failed in
  ( kept,
    Json.Obj
      [
        ("preset", Json.Str preset);
        ("lattice", Json.Int (Array.length pts));
        ("evaluated", Json.Int (List.length kept));
        ("refused", Json.Int !refused);
        ( "failed",
          Json.List
            (List.map
               (fun (p, e) ->
                 Json.Obj
                   [
                     ("point", Space.point_json p);
                     ("error", Stage_error.to_json e);
                   ])
               failed) );
        ("points", Json.List (List.map point_metrics_json kept));
      ] )

let sweep_op t cl preset =
  match Space.find_preset preset with
  | None ->
      Error
        (Protocol.Bad_request
           (Printf.sprintf "unknown preset %S; available: %s" preset
              (String.concat ", " (Space.preset_names ()))))
  | Some space ->
      let pts, out = eval_preset t cl space in
      let _, doc = sweep_doc ~preset pts out in
      Ok doc

let pareto_op t cl preset =
  match Space.find_preset preset with
  | None ->
      Error
        (Protocol.Bad_request
           (Printf.sprintf "unknown preset %S; available: %s" preset
              (String.concat ", " (Space.preset_names ()))))
  | Some space ->
      let pts, out = eval_preset t cl space in
      let kept, _ = sweep_doc ~preset pts out in
      let frontier =
        kept
        |> List.map (fun ((_, m) as pm) -> (pm, Frontier.of_metrics m))
        |> Frontier.pareto
        |> List.stable_sort (fun (_, a) (_, b) ->
               Float.compare a.Frontier.delay_ps b.Frontier.delay_ps)
      in
      Ok
        (Json.Obj
           [
             ("preset", Json.Str preset);
             ( "frontier",
               Json.List
                 (List.map (fun ((p, m), _) -> point_metrics_json (p, m)) frontier)
             );
           ])

let stats t =
  locked t (fun () ->
      {
        requests = t.n_requests;
        evals = t.n_evals;
        coalesced = t.n_coalesced;
        cache_hits = t.n_cache_hits;
        errors = t.n_errors;
        batches = t.n_batches;
        max_batch = t.max_batch;
        clients_seen = t.clients_seen;
        idle_evictions = t.n_idle_evictions;
        flush_failures = t.n_flush_failures;
      })

let stats_json t =
  locked t (fun () ->
      let cs = Cache.stats t.cache in
      Json.Obj
        [
          ("requests", Json.Int t.n_requests);
          ("evals", Json.Int t.n_evals);
          ("coalesced", Json.Int t.n_coalesced);
          ("cache_hits", Json.Int t.n_cache_hits);
          ("errors", Json.Int t.n_errors);
          ("batches", Json.Int t.n_batches);
          ("max_batch", Json.Int t.max_batch);
          ("clients_seen", Json.Int t.clients_seen);
          ("idle_evictions", Json.Int t.n_idle_evictions);
          ("flush_failures", Json.Int t.n_flush_failures);
          ("queue_bound", Json.Int t.cfg.queue_bound);
          ("fair_share", Json.Int t.cfg.fair_share);
          ("domains", Json.Int t.cfg.domains);
          ( "cache",
            Json.Obj
              [
                ("entries", Json.Int cs.Cache.entries);
                ("capacity", Json.Int cs.Cache.capacity);
                ("hits", Json.Int cs.Cache.hits);
                ("misses", Json.Int cs.Cache.misses);
                ("evictions", Json.Int cs.Cache.evictions);
                ("hit_rate", Json.Float (Cache.hit_rate cs));
              ] );
        ])

(* --- shutdown --- *)

let stop t =
  let first =
    locked t (fun () ->
        if t.stopping then false
        else begin
          t.stopping <- true;
          Condition.broadcast t.work_cond;
          Condition.broadcast t.done_cond;
          true
        end)
  in
  if first then begin
    (* Unblock a thread parked in accept(): closing the fd is NOT enough on
       Linux (the blocked syscall holds its own reference), so shut the
       listener down where the OS allows it and self-connect as the
       portable fallback — the accept loop sees [stopping] and exits. *)
    (match t.listen_fd with
    | Some fd -> (
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        try
          let sa = Protocol.sockaddr_of_addr t.cfg.addr in
          let s =
            Unix.socket ~cloexec:true (Unix.domain_of_sockaddr sa)
              Unix.SOCK_STREAM 0
          in
          (try Unix.connect s sa with Unix.Unix_error _ -> ());
          try Unix.close s with Unix.Unix_error _ -> ()
        with Unix.Unix_error _ -> ())
    | None -> ());
    (* the scheduler drains every queued slot before exiting, so attached
       waiters all get real results *)
    (match t.sched_thread with Some th -> Thread.join th | None -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (match t.listen_fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    t.listen_fd <- None;
    (match t.cfg.addr with
    | Protocol.Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
    | Protocol.Tcp _ -> ());
    (* wake blocked readers: a half-closed socket reads EOF, ending its
       connection thread *)
    let conns = locked t (fun () -> t.conns) in
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    locked t (fun () ->
        match Cache.try_flush t.cache with
        | Ok () -> ()
        | Error e ->
            t.n_flush_failures <- t.n_flush_failures + 1;
            Obs.incr "serve.flush_failures";
            Obs.event "serve.flush_failed" [ ("error", Stage_error.to_json e) ]);
    (match t.cfg.history with
    | Some store ->
        let s = stats t in
        History.append store
          (History.make ~label:"serve"
             [
               ("serve.requests", float_of_int s.requests);
               ("serve.evals", float_of_int s.evals);
               ("serve.coalesced", float_of_int s.coalesced);
               ("serve.cache_hits", float_of_int s.cache_hits);
               ("serve.errors", float_of_int s.errors);
             ])
    | None -> ());
    locked t (fun () ->
        t.stopped <- true;
        Condition.broadcast t.stopped_cond)
  end
  else
    locked t (fun () ->
        while not t.stopped do
          Condition.wait t.stopped_cond t.lock
        done)

let wait t =
  locked t (fun () ->
      while not t.stopped do
        Condition.wait t.stopped_cond t.lock
      done)

(* --- connections --- *)

let handle_request t cl req =
  let body =
    match req.Protocol.op with
    | Protocol.Eval p -> eval_op t cl p
    | Protocol.Sweep preset -> sweep_op t cl preset
    | Protocol.Pareto preset -> pareto_op t cl preset
    | Protocol.Stats -> Ok (stats_json t)
    | Protocol.Ping -> Ok (Json.Str "pong")
    | Protocol.Shutdown -> Ok (Json.Str "stopping")
  in
  { Protocol.r_id = req.Protocol.id; body }

let remove_conn t fd =
  locked t (fun () -> t.conns <- List.filter (fun c -> c != fd) t.conns)

(* A line-at-a-time socket reader built on [select], so a connection thread
   parked on a silent client wakes up when the idle deadline passes instead
   of blocking in [read] forever. Carries its own buffer of bytes read past
   the last newline. *)
type read_outcome = Line of string | Eof | Idle

let conn_reader fd =
  let pending = ref "" in
  let chunk = Bytes.create 4096 in
  let take_line () =
    match String.index_opt !pending '\n' with
    | None -> None
    | Some i ->
        let line = String.sub !pending 0 i in
        pending := String.sub !pending (i + 1) (String.length !pending - i - 1);
        Some line
  in
  let rec next timeout_s =
    match take_line () with
    | Some l -> Line l
    | None -> (
        let readable =
          match timeout_s with
          | None -> true (* no deadline: block in read itself *)
          | Some s -> (
              match Unix.select [ fd ] [] [] s with
              | [], _, _ -> false
              | _ -> true
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> true)
        in
        if not readable then Idle
        else
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 ->
              (* EOF with unterminated leftover: deliver it as a last line *)
              if !pending = "" then Eof
              else begin
                let l = !pending in
                pending := "";
                Line l
              end
          | n ->
              pending := !pending ^ Bytes.sub_string chunk 0 n;
              next timeout_s
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> next timeout_s)
  in
  next

let handle_conn t fd =
  let oc = Unix.out_channel_of_descr fd in
  let cl = locked t (fun () -> register_client t) in
  let respond resp =
    output_string oc (Protocol.render_response resp);
    output_char oc '\n';
    flush oc
  in
  let next_line = conn_reader fd in
  (try
     let running = ref true in
     while !running do
       match next_line t.cfg.idle_timeout_s with
       | Eof -> running := false
       | Idle ->
           (* evict, but tell the client why if its socket still accepts a
              write: a typed timeout beats a bare hangup *)
           let timeout = Option.value ~default:0. t.cfg.idle_timeout_s in
           locked t (fun () -> t.n_idle_evictions <- t.n_idle_evictions + 1);
           Obs.incr "serve.idle_evictions";
           (match Unix.select [] [ fd ] [] 0. with
           | _, _ :: _, _ ->
               (try
                  respond
                    {
                      Protocol.r_id = 0;
                      body =
                        Error
                          (Protocol.Timeout
                             (Printf.sprintf
                                "idle for more than %gs; disconnecting" timeout));
                    }
                with Sys_error _ | Unix.Unix_error _ -> ())
           | _ -> ()
           | exception Unix.Unix_error _ -> ());
           running := false
       | Line line when String.trim line = "" -> ()
       | Line line ->
           (* every request runs under a span; spans are thread-safe, so
              concurrent connection threads each keep their own stack *)
           Obs.span "serve.request" (fun () ->
               locked t (fun () -> t.n_requests <- t.n_requests + 1);
               Obs.incr "serve.requests";
               match Protocol.parse_request line with
               | Error e ->
                   Obs.annotate [ ("op", Json.Str "invalid") ];
                   locked t (fun () -> t.n_errors <- t.n_errors + 1);
                   Obs.incr "serve.errors";
                   respond
                     { Protocol.r_id = 0; body = Error (Protocol.Bad_request e) }
               | Ok req ->
                   Obs.annotate [ ("op", Json.Str (Protocol.op_name req.Protocol.op)) ];
                   let resp = handle_request t cl req in
                   (match resp.Protocol.body with
                   | Error _ ->
                       locked t (fun () -> t.n_errors <- t.n_errors + 1);
                       Obs.incr "serve.errors"
                   | Ok _ -> ());
                   respond resp;
                   match req.Protocol.op with
                   | Protocol.Shutdown ->
                       running := false;
                       (* run the graceful shutdown off this thread so the
                          connection can close promptly *)
                       ignore (Thread.create stop t)
                   | _ -> ())
     done
   with
  | Sys_error _ | Unix.Unix_error _ -> ()
  | End_of_file -> ());
  locked t (fun () -> release_client t cl);
  remove_conn t fd;
  (* closing the out channel closes the underlying fd *)
  (try close_out_noerr oc with _ -> ())

let accept_loop t fd =
  let running = ref true in
  while !running do
    match Unix.accept ~cloexec:true fd with
    | conn, _ ->
        if locked t (fun () -> t.stopping) then begin
          (* the wake-up self-connection from [stop], or a client racing
             the shutdown: refuse and leave *)
          (try Unix.close conn with Unix.Unix_error _ -> ());
          running := false
        end
        else begin
          locked t (fun () -> t.conns <- conn :: t.conns);
          ignore (Thread.create (fun () -> handle_conn t conn) ())
        end
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
      ->
        running := locked t (fun () -> not t.stopping)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let bind_socket addr =
  let sa = Protocol.sockaddr_of_addr addr in
  let fd =
    match addr with
    | Protocol.Unix_sock path ->
        (* replace a stale socket from a previous daemon *)
        (try if Sys.file_exists path then Unix.unlink path
         with Sys_error _ | Unix.Unix_error _ -> ());
        Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
    | Protocol.Tcp _ ->
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        fd
  in
  (try
     Unix.bind fd sa;
     Unix.listen fd 256
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let start t =
  (* a client vanishing mid-response must error the write, not kill the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = bind_socket t.cfg.addr in
  t.listen_fd <- Some fd;
  t.sched_thread <- Some (Thread.create scheduler_loop t);
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t fd) ())
