(** Wire protocol for the [repro serve] evaluation daemon.

    Framing is JSONL: one request object per line in, one response object
    per line out, matched by the caller-chosen [id]. Requests ride
    {!Gap_obs.Json}, so the daemon shares the flow's only JSON dialect and
    an eval response body is byte-identical to what the CLI's own
    [Eval.to_json] emits for the same point.

    Request: [{"id": N, "op": "eval", "point": {...}}],
    [{"id": N, "op": "sweep" | "pareto", "preset": "smoke"}],
    [{"id": N, "op": "stats" | "ping" | "shutdown"}].

    Response: [{"id": N, "ok": true, "result": ...}] or
    [{"id": N, "ok": false, "error": {"kind": ..., ...}}]. *)

module Json = Gap_obs.Json

type op =
  | Eval of Gap_dse.Space.point
  | Sweep of string  (** preset name *)
  | Pareto of string  (** preset name *)
  | Stats
  | Ping
  | Shutdown

type request = { id : int; op : op }

type err =
  | Bad_request of string
      (** unparsable line, unknown op, malformed point — the connection
          survives; only this request fails *)
  | Overloaded of string
      (** the daemon is shutting down or refused to queue the work *)
  | Timeout of string
      (** the connection sat idle past the daemon's deadline and is being
          evicted; sent best-effort before the socket closes *)
  | Stage of Gap_resilience.Stage_error.t
      (** a poisoned evaluation: the supervised stage's typed error *)

type response = { r_id : int; body : (Json.t, err) result }

val op_name : op -> string
(** ["eval"], ["sweep"], ... — the wire spelling. *)

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result
val parse_request : string -> (request, string) result
(** One JSONL line to a request. *)

val err_to_json : err -> Json.t
val err_of_json : Json.t -> err
val err_to_string : err -> string

val response_to_json : response -> Json.t
val response_of_json : Json.t -> (response, string) result
val render_response : response -> string
(** One JSONL line (no trailing newline). *)

(** {1 Addresses} *)

type addr =
  | Unix_sock of string  (** filesystem path *)
  | Tcp of string * int  (** host, port *)

val addr_of_string : string -> (addr, string) result
(** ["/path/to.sock"] (any string containing ['/']) is a Unix-domain
    socket; ["HOST:PORT"] and bare ["PORT"] (loopback) are TCP. *)

val addr_to_string : addr -> string
val sockaddr_of_addr : addr -> Unix.sockaddr
