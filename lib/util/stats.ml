type running = {
  mutable n : int;
  mutable mu : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
}

let running () = { n = 0; mu = 0.; m2 = 0.; lo = infinity; hi = neg_infinity }

let add r x =
  r.n <- r.n + 1;
  let delta = x -. r.mu in
  r.mu <- r.mu +. (delta /. float_of_int r.n);
  r.m2 <- r.m2 +. (delta *. (x -. r.mu));
  if x < r.lo then r.lo <- x;
  if x > r.hi then r.hi <- x

let count r = r.n
let mean r = r.mu
let variance r = if r.n < 2 then 0. else r.m2 /. float_of_int (r.n - 1)
let stddev r = sqrt (variance r)
let running_min r = r.lo
let running_max r = r.hi

(* Input guards raise [Invalid_argument] naming the offending function:
   [assert] would vanish under -noassert and let the fold below return
   garbage (0/0, out-of-bounds interpolation) instead of failing. *)
let require_nonempty fn xs =
  if Array.length xs = 0 then invalid_arg (fn ^ ": empty sample")

let mean_of xs =
  require_nonempty "Gap_util.Stats.mean_of" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let stddev_of xs =
  require_nonempty "Gap_util.Stats.stddev_of" xs;
  let r = running () in
  Array.iter (add r) xs;
  stddev r

let percentile_sorted sorted p =
  require_nonempty "Gap_util.Stats.percentile_sorted" sorted;
  if not (p >= 0. && p <= 100.) then
    invalid_arg
      (Printf.sprintf "Gap_util.Stats.percentile_sorted: percentile %g not in [0,100]" p);
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let percentile xs p =
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  percentile_sorted sorted p

let median xs = percentile xs 50.
let minimum xs = Array.fold_left min infinity xs
let maximum xs = Array.fold_left max neg_infinity xs

let histogram ?(bins = 20) xs =
  if bins <= 0 then
    invalid_arg (Printf.sprintf "Gap_util.Stats.histogram: bins = %d (must be positive)" bins);
  require_nonempty "Gap_util.Stats.histogram" xs;
  let lo = minimum xs and hi = maximum xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
  let counts = Array.make bins 0 in
  let index x =
    let i = int_of_float ((x -. lo) /. width) in
    if i >= bins then bins - 1 else if i < 0 then 0 else i
  in
  Array.iter (fun x -> counts.(index x) <- counts.(index x) + 1) xs;
  Array.mapi
    (fun i c ->
      let l = lo +. (float_of_int i *. width) in
      (l, l +. width, c))
    counts

let require_paired fn xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg
      (Printf.sprintf "%s: mismatched lengths (%d vs %d)" fn (Array.length xs)
         (Array.length ys));
  if Array.length xs < 2 then invalid_arg (fn ^ ": need at least two samples")

let correlation xs ys =
  require_paired "Gap_util.Stats.correlation" xs ys;
  let mx = mean_of xs and my = mean_of ys in
  let num = ref 0. and dx2 = ref 0. and dy2 = ref 0. in
  Array.iteri
    (fun i x ->
      let dx = x -. mx and dy = ys.(i) -. my in
      num := !num +. (dx *. dy);
      dx2 := !dx2 +. (dx *. dx);
      dy2 := !dy2 +. (dy *. dy))
    xs;
  if !dx2 = 0. || !dy2 = 0. then 0. else !num /. sqrt (!dx2 *. !dy2)

let linear_fit xs ys =
  require_paired "Gap_util.Stats.linear_fit" xs ys;
  let mx = mean_of xs and my = mean_of ys in
  let num = ref 0. and den = ref 0. in
  Array.iteri
    (fun i x ->
      let dx = x -. mx in
      num := !num +. (dx *. (ys.(i) -. my));
      den := !den +. (dx *. dx))
    xs;
  let slope = if !den = 0. then 0. else !num /. !den in
  (slope, my -. (slope *. mx))
