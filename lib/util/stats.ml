type running = {
  mutable n : int;
  mutable mu : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
}

let running () = { n = 0; mu = 0.; m2 = 0.; lo = infinity; hi = neg_infinity }

let add r x =
  r.n <- r.n + 1;
  let delta = x -. r.mu in
  r.mu <- r.mu +. (delta /. float_of_int r.n);
  r.m2 <- r.m2 +. (delta *. (x -. r.mu));
  if x < r.lo then r.lo <- x;
  if x > r.hi then r.hi <- x

let count r = r.n
let mean r = r.mu
let variance r = if r.n < 2 then 0. else r.m2 /. float_of_int (r.n - 1)
let stddev r = sqrt (variance r)
let running_min r = r.lo
let running_max r = r.hi

(* Input guards raise [Invalid_argument] naming the offending function:
   [assert] would vanish under -noassert and let the fold below return
   garbage (0/0, out-of-bounds interpolation) instead of failing. *)
let require_nonempty fn xs =
  if Array.length xs = 0 then invalid_arg (fn ^ ": empty sample")

let mean_of xs =
  require_nonempty "Gap_util.Stats.mean_of" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let stddev_of xs =
  require_nonempty "Gap_util.Stats.stddev_of" xs;
  let r = running () in
  Array.iter (add r) xs;
  stddev r

let percentile_sorted sorted p =
  require_nonempty "Gap_util.Stats.percentile_sorted" sorted;
  if not (p >= 0. && p <= 100.) then
    invalid_arg
      (Printf.sprintf "Gap_util.Stats.percentile_sorted: percentile %g not in [0,100]" p);
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let percentile xs p =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  percentile_sorted sorted p

let median xs = percentile xs 50.
let minimum xs = Array.fold_left min infinity xs
let maximum xs = Array.fold_left max neg_infinity xs

let histogram ?(bins = 20) xs =
  if bins <= 0 then
    invalid_arg (Printf.sprintf "Gap_util.Stats.histogram: bins = %d (must be positive)" bins);
  require_nonempty "Gap_util.Stats.histogram" xs;
  let lo = minimum xs and hi = maximum xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
  let counts = Array.make bins 0 in
  let index x =
    let i = int_of_float ((x -. lo) /. width) in
    if i >= bins then bins - 1 else if i < 0 then 0 else i
  in
  Array.iter (fun x -> counts.(index x) <- counts.(index x) + 1) xs;
  Array.mapi
    (fun i c ->
      let l = lo +. (float_of_int i *. width) in
      (l, l +. width, c))
    counts

(* --- unboxed sample buffers ---

   Monte Carlo workloads sample millions of float64 values; a Bigarray
   buffer keeps them as flat unboxed memory that worker domains can write
   concurrently (disjoint ranges) without the GC moving it under them.
   Percentile queries run as partial quickselect over a scratch copy —
   each query is O(n) expected, and repeated queries on the same scratch
   get cheaper as earlier partitions accumulate. *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let buf_create n = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout n
let buf_length (b : buf) = Bigarray.Array1.dim b

let buf_of_array a : buf =
  Bigarray.Array1.of_array Bigarray.Float64 Bigarray.C_layout a

let buf_to_array (b : buf) = Array.init (buf_length b) (Bigarray.Array1.get b)

let buf_copy (b : buf) =
  let c = buf_create (buf_length b) in
  Bigarray.Array1.blit b c;
  c

let require_buf_nonempty fn (b : buf) =
  if buf_length b = 0 then invalid_arg (fn ^ ": empty sample")

let buf_mean b =
  require_buf_nonempty "Gap_util.Stats.buf_mean" b;
  let n = buf_length b in
  let sum = ref 0. in
  for i = 0 to n - 1 do
    sum := !sum +. Bigarray.Array1.unsafe_get b i
  done;
  !sum /. float_of_int n

let buf_min b =
  require_buf_nonempty "Gap_util.Stats.buf_min" b;
  let m = ref infinity in
  for i = 0 to buf_length b - 1 do
    let v = Bigarray.Array1.unsafe_get b i in
    if v < !m then m := v
  done;
  !m

let buf_max b =
  require_buf_nonempty "Gap_util.Stats.buf_max" b;
  let m = ref neg_infinity in
  for i = 0 to buf_length b - 1 do
    let v = Bigarray.Array1.unsafe_get b i in
    if v > !m then m := v
  done;
  !m

let buf_count_ge b x =
  let c = ref 0 in
  for i = 0 to buf_length b - 1 do
    if Bigarray.Array1.unsafe_get b i >= x then incr c
  done;
  !c

(* Median-of-three Hoare quickselect. Reorders [b] in place; the k-th
   smallest lands at index k with everything below it to the left. NaN
   inputs would break the partition invariants, so they are rejected
   rather than producing an arbitrary element. *)
let buf_select (b : buf) k =
  let n = buf_length b in
  require_buf_nonempty "Gap_util.Stats.buf_select" b;
  if k < 0 || k >= n then
    invalid_arg
      (Printf.sprintf "Gap_util.Stats.buf_select: rank %d outside [0,%d)" k n);
  let get = Bigarray.Array1.unsafe_get b in
  let set = Bigarray.Array1.unsafe_set b in
  let swap i j =
    let t = get i in
    set i (get j);
    set j t
  in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    (* order (lo, mid, hi) so the pivot is a median and both ends act as
       partition sentinels *)
    if get mid < get !lo then swap mid !lo;
    if get !hi < get !lo then swap !hi !lo;
    if get !hi < get mid then swap !hi mid;
    let pivot = get mid in
    if Float.is_nan pivot then
      invalid_arg "Gap_util.Stats.buf_select: NaN in sample";
    let i = ref (!lo - 1) and j = ref (!hi + 1) in
    let cut = ref !lo in
    (try
       while true do
         incr i;
         while get !i < pivot do
           incr i
         done;
         decr j;
         while get !j > pivot do
           decr j
         done;
         if !i >= !j then begin
           cut := !j;
           raise Exit
         end;
         swap !i !j
       done
     with Exit -> ());
    if k <= !cut then hi := !cut else lo := !cut + 1
  done;
  get k

let buf_percentile b p =
  require_buf_nonempty "Gap_util.Stats.buf_percentile" b;
  if not (p >= 0. && p <= 100.) then
    invalid_arg
      (Printf.sprintf
         "Gap_util.Stats.buf_percentile: percentile %g not in [0,100]" p);
  let n = buf_length b in
  if n = 1 then Bigarray.Array1.get b 0
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    let v_lo = buf_select b lo in
    let v_hi = if hi = lo then v_lo else buf_select b hi in
    v_lo +. (frac *. (v_hi -. v_lo))
  end

let require_paired fn xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg
      (Printf.sprintf "%s: mismatched lengths (%d vs %d)" fn (Array.length xs)
         (Array.length ys));
  if Array.length xs < 2 then invalid_arg (fn ^ ": need at least two samples")

let correlation xs ys =
  require_paired "Gap_util.Stats.correlation" xs ys;
  let mx = mean_of xs and my = mean_of ys in
  let num = ref 0. and dx2 = ref 0. and dy2 = ref 0. in
  Array.iteri
    (fun i x ->
      let dx = x -. mx and dy = ys.(i) -. my in
      num := !num +. (dx *. dy);
      dx2 := !dx2 +. (dx *. dx);
      dy2 := !dy2 +. (dy *. dy))
    xs;
  if !dx2 = 0. || !dy2 = 0. then 0. else !num /. sqrt (!dx2 *. !dy2)

let linear_fit xs ys =
  require_paired "Gap_util.Stats.linear_fit" xs ys;
  let mx = mean_of xs and my = mean_of ys in
  let num = ref 0. and den = ref 0. in
  Array.iteri
    (fun i x ->
      let dx = x -. mx in
      num := !num +. (dx *. (ys.(i) -. my));
      den := !den +. (dx *. dx))
    xs;
  let slope = if !den = 0. then 0. else !num /. !den in
  (slope, my -. (slope *. mx))
