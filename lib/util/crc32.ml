(* IEEE CRC-32 (reflected polynomial 0xEDB88320), table-driven.
   Pure OCaml: the segment store must checksum records without any C
   dependency, and the table fits in 256 immediates. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update";
  let tbl = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := tbl.((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

let string s = update 0 s ~pos:0 ~len:(String.length s)

let bytes b ~pos ~len = update 0 (Bytes.unsafe_to_string b) ~pos ~len
