(** Plain-text table rendering for experiment reports and benchmark output. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the rows out in a boxed ASCII table; columns are
    padded to the widest cell. [aligns] defaults to left for the first column
    and right for the rest (the usual label-then-numbers layout). *)

val print : ?aligns:align list -> header:string list -> string list list -> unit

val to_csv : ?header:string list -> string list list -> string
(** [to_csv rows] renders the rows as CSV with every field quoted (embedded
    quotes doubled), so labels containing commas, quotes or newlines survive
    a spreadsheet import. [header] prepends a header line. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point formatting helper, default 2 decimals. *)

val fmt_ratio : float -> string
(** Renders a speedup factor like ["x3.85"]. *)

val fmt_pct : float -> string
(** Renders a fraction as a percentage, e.g. [0.25 -> "25.0%"]. *)
