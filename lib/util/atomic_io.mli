(** Atomic artifact writes: temp-file + rename.

    Every JSON / JSONL / CSV artifact the flow leaves on disk (metrics
    documents, traces, check reports, checkpoints) goes through this module
    so a crash mid-write can never leave a truncated, unparseable file at
    the destination path. Content is written to [path ^ ".tmp"] in the same
    directory and renamed over [path] only after a successful close; on any
    failure the temp file is removed and the previous contents of [path]
    (if any) survive untouched. *)

val write_file : string -> (out_channel -> unit) -> unit
(** [write_file path f] runs [f] on a channel backed by the temp file, then
    commits. If [f] raises, the temp file is deleted and the exception
    re-raised. *)

val write_string : string -> string -> unit
(** [write_string path s] atomically replaces [path] with contents [s]. *)

(** {1 Streaming writers}

    For artifacts produced incrementally over a whole run (JSONL traces),
    where the channel must outlive a single callback. *)

type writer

val start : string -> writer
(** Open a temp-file-backed writer destined for the given path. *)

val channel : writer -> out_channel

val commit : writer -> unit
(** Flush, close and rename into place. Idempotent. *)

val abort : writer -> unit
(** Close and delete the temp file; the destination is left untouched.
    Idempotent; a no-op after {!commit}. *)
