(* xoshiro256** state lives in a 4-word int64 Bigarray rather than four
   boxed [Int64.t] record fields: ocamlopt compiles int64 Bigarray loads,
   stores, and the arithmetic between them to fully unboxed code even
   without flambda, so the batched fill below — and the Monte Carlo worker
   domains built on it — run allocation-free. Boxed-state drawing used to
   cost ~20 minor words per normal sample, and that steady churn forced
   stop-the-world minor collections across every domain of a parallel
   sampler. *)
type state = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  state : state;  (* xoshiro256** words s0..s3 *)
  mutable spare : float option; (* cached second Box-Muller output *)
}

let default_seed = 0x9E3779B97F4A7C15L

(* splitmix64: used only to expand a single seed into the four xoshiro words,
   as recommended by the xoshiro authors. *)
let splitmix64 state =
  let z = Int64.add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed seed =
  let st = ref seed in
  let state = Bigarray.Array1.create Bigarray.Int64 Bigarray.C_layout 4 in
  state.{0} <- splitmix64 st;
  state.{1} <- splitmix64 st;
  state.{2} <- splitmix64 st;
  state.{3} <- splitmix64 st;
  { state; spare = None }

let create ?(seed = default_seed) () = of_seed seed

let copy t =
  let state = Bigarray.Array1.create Bigarray.Int64 Bigarray.C_layout 4 in
  Bigarray.Array1.blit t.state state;
  { state; spare = t.spare }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let s = t.state in
  let s1 = Bigarray.Array1.unsafe_get s 1 in
  let result = Int64.mul (rotl (Int64.mul s1 5L) 7) 9L in
  let tmp = Int64.shift_left s1 17 in
  Bigarray.Array1.unsafe_set s 2
    (Int64.logxor (Bigarray.Array1.unsafe_get s 2) (Bigarray.Array1.unsafe_get s 0));
  Bigarray.Array1.unsafe_set s 3
    (Int64.logxor (Bigarray.Array1.unsafe_get s 3) s1);
  Bigarray.Array1.unsafe_set s 1
    (Int64.logxor s1 (Bigarray.Array1.unsafe_get s 2));
  Bigarray.Array1.unsafe_set s 0
    (Int64.logxor (Bigarray.Array1.unsafe_get s 0) (Bigarray.Array1.unsafe_get s 3));
  Bigarray.Array1.unsafe_set s 2
    (Int64.logxor (Bigarray.Array1.unsafe_get s 2) tmp);
  Bigarray.Array1.unsafe_set s 3 (rotl (Bigarray.Array1.unsafe_get s 3) 45);
  result

let split t = of_seed (int64 t)
let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t n =
  assert (n > 0);
  if n land (n - 1) = 0 then bits30 t land (n - 1)
  else begin
    (* rejection sampling to avoid modulo bias *)
    let rec draw () =
      let v = bits30 t in
      let bound = (1 lsl 30) - ((1 lsl 30) mod n) in
      if v < bound then v mod n else draw ()
    in
    draw ()
  end

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

(* 53 uniform bits mapped to [0,1) *)
let unit_float t =
  let bits = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bits *. 0x1p-53

let float t x = unit_float t *. x
let float_in t lo hi = lo +. (unit_float t *. (hi -. lo))
let bool t = Int64.logand (int64 t) 1L = 1L

let normal t ~mean ~sigma =
  match t.spare with
  | Some z ->
      t.spare <- None;
      mean +. (sigma *. z)
  | None ->
      let rec pair () =
        let u = unit_float t in
        if u <= 1e-300 then pair () else (u, unit_float t)
      in
      let u1, u2 = pair () in
      let r = sqrt (-2.0 *. log u1) in
      let theta = 2.0 *. Float.pi *. u2 in
      t.spare <- Some (r *. sin theta);
      mean +. (sigma *. (r *. cos theta))

let lognormal t ~mu ~sigma = exp (normal t ~mean:mu ~sigma)

(* vanishingly rare (u <= 1e-300): keep the retry off the unboxed fast path *)
let rec u_nonzero t =
  let u = unit_float t in
  if u <= 1e-300 then u_nonzero t else u

(* Batched standard normals: exactly the stream [normal ~mean:0 ~sigma:1]
   would produce call by call (including the cached spare at entry and
   exit), but with the generator and the Box-Muller transform inlined into
   one loop over the unboxed Bigarray state, so the whole fill allocates
   nothing — worker domains sampling concurrently never trigger a
   stop-the-world minor collection. *)
let normal_std_fill t buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length buf then
    invalid_arg
      (Printf.sprintf "Gap_util.Rng.normal_std_fill: range [%d,%d) outside buffer of %d"
         pos (pos + len) (Array.length buf));
  let i = ref pos in
  let stop = pos + len in
  (match t.spare with
  | Some z when !i < stop ->
      t.spare <- None;
      buf.(!i) <- z;
      incr i
  | _ -> ());
  let s = t.state in
  while stop - !i >= 2 do
    (* u1 — hand-inlined [unit_float] (a function call would re-box the
       result in this non-flambda build) *)
    let s1 = Bigarray.Array1.unsafe_get s 1 in
    let r1 = Int64.mul (rotl (Int64.mul s1 5L) 7) 9L in
    let tmp = Int64.shift_left s1 17 in
    Bigarray.Array1.unsafe_set s 2
      (Int64.logxor (Bigarray.Array1.unsafe_get s 2) (Bigarray.Array1.unsafe_get s 0));
    Bigarray.Array1.unsafe_set s 3
      (Int64.logxor (Bigarray.Array1.unsafe_get s 3) s1);
    Bigarray.Array1.unsafe_set s 1
      (Int64.logxor s1 (Bigarray.Array1.unsafe_get s 2));
    Bigarray.Array1.unsafe_set s 0
      (Int64.logxor (Bigarray.Array1.unsafe_get s 0) (Bigarray.Array1.unsafe_get s 3));
    Bigarray.Array1.unsafe_set s 2
      (Int64.logxor (Bigarray.Array1.unsafe_get s 2) tmp);
    Bigarray.Array1.unsafe_set s 3 (rotl (Bigarray.Array1.unsafe_get s 3) 45);
    let u = Int64.to_float (Int64.shift_right_logical r1 11) *. 0x1p-53 in
    let u1 = if u > 1e-300 then u else u_nonzero t in
    (* u2 *)
    let s1 = Bigarray.Array1.unsafe_get s 1 in
    let r2 = Int64.mul (rotl (Int64.mul s1 5L) 7) 9L in
    let tmp = Int64.shift_left s1 17 in
    Bigarray.Array1.unsafe_set s 2
      (Int64.logxor (Bigarray.Array1.unsafe_get s 2) (Bigarray.Array1.unsafe_get s 0));
    Bigarray.Array1.unsafe_set s 3
      (Int64.logxor (Bigarray.Array1.unsafe_get s 3) s1);
    Bigarray.Array1.unsafe_set s 1
      (Int64.logxor s1 (Bigarray.Array1.unsafe_get s 2));
    Bigarray.Array1.unsafe_set s 0
      (Int64.logxor (Bigarray.Array1.unsafe_get s 0) (Bigarray.Array1.unsafe_get s 3));
    Bigarray.Array1.unsafe_set s 2
      (Int64.logxor (Bigarray.Array1.unsafe_get s 2) tmp);
    Bigarray.Array1.unsafe_set s 3 (rotl (Bigarray.Array1.unsafe_get s 3) 45);
    let u2 = Int64.to_float (Int64.shift_right_logical r2 11) *. 0x1p-53 in
    let r = sqrt (-2.0 *. log u1) in
    let theta = 2.0 *. Float.pi *. u2 in
    Array.unsafe_set buf !i (r *. cos theta);
    Array.unsafe_set buf (!i + 1) (r *. sin theta);
    i := !i + 2
  done;
  if !i < stop then begin
    (* odd tail: runs at most once per fill, the scalar path is fine *)
    let u1 = u_nonzero t in
    let u2 = unit_float t in
    let r = sqrt (-2.0 *. log u1) in
    let theta = 2.0 *. Float.pi *. u2 in
    buf.(!i) <- r *. cos theta;
    t.spare <- Some (r *. sin theta)
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
