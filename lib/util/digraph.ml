type t = {
  succs : (int * float) list Vec.t;
  preds : (int * float) list Vec.t;
  mutable edges : int;
}

let create () = { succs = Vec.create (); preds = Vec.create (); edges = 0 }

let add_node g =
  let id = Vec.push g.succs [] in
  let id' = Vec.push g.preds [] in
  assert (id = id');
  id

let add_nodes g n =
  while Vec.length g.succs < n do
    ignore (add_node g)
  done

let node_count g = Vec.length g.succs
let edge_count g = g.edges

let add_edge g ?(weight = 0.) u v =
  Vec.set g.succs u ((v, weight) :: Vec.get g.succs u);
  Vec.set g.preds v ((u, weight) :: Vec.get g.preds v);
  g.edges <- g.edges + 1

let succ g u = Vec.get g.succs u
let pred g v = Vec.get g.preds v
let out_degree g u = List.length (succ g u)
let in_degree g v = List.length (pred g v)

(* ---- compressed sparse row (frozen) form ---------------------------------

   Flat offset/destination/weight arrays for both directions. The hot loops
   (Kahn topological sort, longest path, STA fanin walks) traverse these with
   plain integer indexing instead of chasing list cells. Row order matters:
   each CSR row stores neighbours in exactly the order the list API returns
   them ([succ]/[pred], i.e. reverse insertion order), so algorithms with
   order-dependent tie-breaking produce identical results on either form. *)

module Csr = struct
  type graph = t

  type t = {
    n : int;
    succ_off : int array;
    succ_dst : int array;
    succ_w : float array;
    pred_off : int array;
    pred_dst : int array;
    pred_w : float array;
  }

  let node_count c = c.n
  let edge_count c = Array.length c.succ_dst
  let out_degree c u = c.succ_off.(u + 1) - c.succ_off.(u)
  let in_degree c v = c.pred_off.(v + 1) - c.pred_off.(v)

  let iter_succ f c u =
    for k = c.succ_off.(u) to c.succ_off.(u + 1) - 1 do
      f c.succ_dst.(k) c.succ_w.(k)
    done

  let iter_pred f c v =
    for k = c.pred_off.(v) to c.pred_off.(v + 1) - 1 do
      f c.pred_dst.(k) c.pred_w.(k)
    done

  (* Generic two-pass constructor. [iter] must enumerate the same edge
     sequence on both invocations. Rows are filled from the back so that each
     row ends up in *reverse* emission order, matching the prepend-built
     adjacency lists of the mutable graph. *)
  let of_edge_iter ~n iter =
    let succ_off = Array.make (n + 1) 0 in
    let pred_off = Array.make (n + 1) 0 in
    let m = ref 0 in
    iter (fun u v _w ->
        succ_off.(u) <- succ_off.(u) + 1;
        pred_off.(v) <- pred_off.(v) + 1;
        incr m);
    let m = !m in
    (* prefix sums: off.(u) becomes the end of row u *)
    let acc = ref 0 in
    for u = 0 to n - 1 do
      acc := !acc + succ_off.(u);
      succ_off.(u) <- !acc
    done;
    succ_off.(n) <- !acc;
    let acc = ref 0 in
    for v = 0 to n - 1 do
      acc := !acc + pred_off.(v);
      pred_off.(v) <- !acc
    done;
    pred_off.(n) <- !acc;
    let succ_dst = Array.make m 0 and succ_w = Array.make m 0. in
    let pred_dst = Array.make m 0 and pred_w = Array.make m 0. in
    let scur = Array.make n 0 and pcur = Array.make n 0 in
    for u = 0 to n - 1 do
      scur.(u) <- succ_off.(u);
      pcur.(u) <- pred_off.(u)
    done;
    iter (fun u v w ->
        let k = scur.(u) - 1 in
        scur.(u) <- k;
        succ_dst.(k) <- v;
        succ_w.(k) <- w;
        let k = pcur.(v) - 1 in
        pcur.(v) <- k;
        pred_dst.(k) <- u;
        pred_w.(k) <- w);
    (* after back-filling, the cursors sit at the start of each row *)
    let starts cur last =
      Array.init (n + 1) (fun u -> if u < n then cur.(u) else last)
    in
    {
      n;
      succ_off = starts scur succ_off.(n);
      succ_dst;
      succ_w;
      pred_off = starts pcur pred_off.(n);
      pred_dst;
      pred_w;
    }

  let of_graph (g : graph) =
    let n = Vec.length g.succs in
    let m = g.edges in
    let succ_off = Array.make (n + 1) 0 in
    let pred_off = Array.make (n + 1) 0 in
    let succ_dst = Array.make m 0 and succ_w = Array.make m 0. in
    let pred_dst = Array.make m 0 and pred_w = Array.make m 0. in
    let k = ref 0 in
    for u = 0 to n - 1 do
      succ_off.(u) <- !k;
      List.iter
        (fun (v, w) ->
          succ_dst.(!k) <- v;
          succ_w.(!k) <- w;
          incr k)
        (succ g u)
    done;
    succ_off.(n) <- !k;
    let k = ref 0 in
    for v = 0 to n - 1 do
      pred_off.(v) <- !k;
      List.iter
        (fun (u, w) ->
          pred_dst.(!k) <- u;
          pred_w.(!k) <- w;
          incr k)
        (pred g v)
    done;
    pred_off.(n) <- !k;
    { n; succ_off; succ_dst; succ_w; pred_off; pred_dst; pred_w }

  let topo_order c =
    let n = c.n in
    let indeg = Array.init n (in_degree c) in
    let queue = Queue.create () in
    Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
    let order = Array.make n 0 in
    let filled = ref 0 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      order.(!filled) <- u;
      incr filled;
      for k = c.succ_off.(u) to c.succ_off.(u + 1) - 1 do
        let v = c.succ_dst.(k) in
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue
      done
    done;
    if !filled = n then Some order else None

  (* Iterative white/gray/black DFS; a gray-to-gray edge closes a cycle and
     the parent chain reconstructs it. Used to produce witnesses when
     [topo_order] fails. *)
  let find_cycle c =
    let n = c.n in
    let color = Array.make n 0 in
    let parent = Array.make n (-1) in
    let cyc = ref None in
    let root = ref 0 in
    while Option.is_none !cyc && !root < n do
      if color.(!root) = 0 then begin
        let stack = Stack.create () in
        color.(!root) <- 1;
        Stack.push (!root, ref c.succ_off.(!root)) stack;
        while Option.is_none !cyc && not (Stack.is_empty stack) do
          let u, k = Stack.top stack in
          if !k >= c.succ_off.(u + 1) then begin
            color.(u) <- 2;
            ignore (Stack.pop stack)
          end
          else begin
            let v = c.succ_dst.(!k) in
            incr k;
            if color.(v) = 0 then begin
              color.(v) <- 1;
              parent.(v) <- u;
              Stack.push (v, ref c.succ_off.(v)) stack
            end
            else if color.(v) = 1 then begin
              (* v -> ... -> u -> v; walk parents from u back to v *)
              let path = ref [ u ] in
              let cur = ref u in
              while !cur <> v do
                cur := parent.(!cur);
                path := !cur :: !path
              done;
              cyc := Some !path
            end
          end
        done
      end;
      incr root
    done;
    !cyc

  let longest_path c ~node_delay =
    match topo_order c with
    | None -> None
    | Some order ->
        let n = c.n in
        let arr = Array.make n 0. in
        Array.iter
          (fun u ->
            let best = ref 0. in
            for k = c.pred_off.(u) to c.pred_off.(u + 1) - 1 do
              let cand = arr.(c.pred_dst.(k)) +. c.pred_w.(k) in
              if cand > !best then best := cand
            done;
            arr.(u) <- !best +. node_delay u)
          order;
        Some arr
end

let freeze = Csr.of_graph

(* Reference (list-traversing) implementations, kept for property tests that
   cross-check the CSR fast paths. *)

let topo_order_ref g =
  let n = node_count g in
  let indeg = Array.init n (in_degree g) in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = Array.make n 0 in
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order.(!filled) <- u;
    incr filled;
    let relax (v, _) =
      indeg.(v) <- indeg.(v) - 1;
      if indeg.(v) = 0 then Queue.add v queue
    in
    List.iter relax (succ g u)
  done;
  if !filled = n then Some order else None

let longest_path_ref g ~node_delay =
  match topo_order_ref g with
  | None -> None
  | Some order ->
      let n = node_count g in
      let arr = Array.make n 0. in
      let visit u =
        let best =
          List.fold_left
            (fun acc (p, w) -> Float.max acc (arr.(p) +. w))
            0. (pred g u)
        in
        arr.(u) <- best +. node_delay u
      in
      Array.iter visit order;
      Some arr

let topo_order g = Csr.topo_order (freeze g)
let is_acyclic g = Option.is_some (topo_order g)
let find_cycle g = Csr.find_cycle (freeze g)
let longest_path g ~node_delay = Csr.longest_path (freeze g) ~node_delay

(* Bellman-Ford over an explicit initial distance vector; shared by
   [bellman_ford] and [feasible_potentials]. *)
let bellman_ford_from g dist =
  let n = node_count g in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    for u = 0 to n - 1 do
      if dist.(u) < infinity then
        let relax (v, w) =
          if dist.(u) +. w < dist.(v) then begin
            dist.(v) <- dist.(u) +. w;
            changed := true
          end
        in
        List.iter relax (succ g u)
    done
  done;
  if !changed then None else Some dist

let bellman_ford g ~source =
  let dist = Array.make (node_count g) infinity in
  dist.(source) <- 0.;
  bellman_ford_from g dist

let feasible_potentials g =
  (* A virtual source with 0-weight edges to all nodes is equivalent to
     starting every distance at 0. *)
  bellman_ford_from g (Array.make (node_count g) 0.)

let scc g =
  let n = node_count g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  (* Iterative Tarjan to survive deep netlists without stack overflow. *)
  let strongconnect v0 =
    let call_stack = Stack.create () in
    Stack.push (v0, succ g v0) call_stack;
    index.(v0) <- !next_index;
    lowlink.(v0) <- !next_index;
    incr next_index;
    Stack.push v0 stack;
    on_stack.(v0) <- true;
    while not (Stack.is_empty call_stack) do
      let v, remaining = Stack.pop call_stack in
      match remaining with
      | (w, _) :: rest ->
          Stack.push (v, rest) call_stack;
          if index.(w) = -1 then begin
            index.(w) <- !next_index;
            lowlink.(w) <- !next_index;
            incr next_index;
            Stack.push w stack;
            on_stack.(w) <- true;
            Stack.push (w, succ g w) call_stack
          end
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
      | [] ->
          if lowlink.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              let w = Stack.pop stack in
              on_stack.(w) <- false;
              comp.(w) <- !next_comp;
              if w = v then continue := false
            done;
            incr next_comp
          end;
          if not (Stack.is_empty call_stack) then begin
            let parent, _ = Stack.top call_stack in
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          end
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  comp
