type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?aligns ~header rows =
  let cols = List.length header in
  assert (List.for_all (fun r -> List.length r = cols) rows);
  let aligns =
    match aligns with
    | Some a ->
        assert (List.length a = cols);
        a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths = Array.make cols 0 in
  let feed row = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row in
  feed header;
  List.iter feed rows;
  let buf = Buffer.create 256 in
  let sep () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line row =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad (List.nth aligns i) widths.(i) cell);
        Buffer.add_string buf " |")
      row;
    Buffer.add_char buf '\n'
  in
  sep ();
  line header;
  sep ();
  List.iter line rows;
  sep ();
  Buffer.contents buf

let print ?aligns ~header rows = print_string (render ?aligns ~header rows)

(* CSV with every field quoted (and quotes doubled), so labels containing
   commas, quotes or newlines survive a spreadsheet import *)
let csv_escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_csv ?header rows =
  let buf = Buffer.create 256 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map csv_escape cells));
    Buffer.add_char buf '\n'
  in
  Option.iter line header;
  List.iter line rows;
  Buffer.contents buf

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let fmt_ratio x = Printf.sprintf "x%.2f" x
let fmt_pct x = Printf.sprintf "%.1f%%" (100. *. x)
