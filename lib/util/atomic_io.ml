let tmp_of path = path ^ ".tmp"

type writer = {
  path : string;
  tmp : string;
  oc : out_channel;
  mutable state : [ `Open | `Committed | `Aborted ];
}

let start path =
  let tmp = tmp_of path in
  { path; tmp; oc = open_out tmp; state = `Open }

let channel w = w.oc

let commit w =
  if w.state = `Open then begin
    close_out w.oc;
    Sys.rename w.tmp w.path;
    w.state <- `Committed
  end

let abort w =
  if w.state = `Open then begin
    (try close_out w.oc with Sys_error _ -> ());
    (try Sys.remove w.tmp with Sys_error _ -> ());
    w.state <- `Aborted
  end

let write_file path f =
  let w = start path in
  match f w.oc with
  | () -> commit w
  | exception e ->
      abort w;
      raise e

let write_string path s = write_file path (fun oc -> output_string oc s)
