(** IEEE CRC-32 (polynomial 0xEDB88320, reflected), pure OCaml.

    The checksum guarding every {!Gap_dse.Segstore} record. Values fit in a
    native [int] on 64-bit hosts (the only hosts the domain pool supports)
    and match the zlib/PNG convention: [string "123456789"] is
    [0xCBF43926]. *)

val string : string -> int
(** CRC-32 of the whole string. *)

val bytes : Bytes.t -> pos:int -> len:int -> int
(** CRC-32 of a byte slice. @raise Invalid_argument on a bad range. *)

val update : int -> string -> pos:int -> len:int -> int
(** Incremental form: [update crc s ~pos ~len] extends [crc] (start from 0)
    with a slice, so a framed record can be checksummed without copying.
    @raise Invalid_argument on a bad range. *)
