(** Deterministic pseudo-random number generation.

    All stochastic parts of the library (Monte Carlo variation sampling,
    simulated annealing, random netlist generation, property tests) draw from
    this module so that every experiment is reproducible from a seed.

    The generator is xoshiro256**, seeded through splitmix64, following the
    reference implementations of Blackman and Vigna. The state lives in an
    int64 Bigarray so that drawing — in particular the batched
    {!normal_std_fill} — compiles to unboxed code and allocates nothing,
    which keeps parallel Monte Carlo workers free of minor-GC barriers. *)

type t
(** Mutable generator state. *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] makes a fresh generator. The default seed is a fixed
    constant, so two generators created without a seed produce identical
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. Streams of the
    parent and child are (statistically) independent; used to give each
    Monte Carlo die or annealing worker its own stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniform bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val normal : t -> mean:float -> sigma:float -> float
(** Gaussian sample by the Box-Muller transform (the spare value is cached, so
    successive calls use both halves of each transform). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [exp] of a [normal] sample with the given underlying parameters. *)

val normal_std_fill : t -> float array -> pos:int -> len:int -> unit
(** [normal_std_fill t buf ~pos ~len] writes [len] standard normal samples
    into [buf.(pos .. pos+len-1)] — bit-identical to [len] successive
    [normal t ~mean:0. ~sigma:1.] calls (the Box-Muller spare is consumed
    at entry and cached at exit exactly as the scalar path would), but with
    the transform inlined so batch consumers pay no per-draw allocation.
    [Invalid_argument] if the range falls outside [buf]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
