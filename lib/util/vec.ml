type 'a t = { mutable data : 'a array; mutable len : int; mutable capacity : int }

(* ['a] has no default value, so the backing array cannot be allocated until
   the first [push]; [capacity] remembers the requested pre-size until then. *)
let create ?(capacity = 16) () = { data = [||]; len = 0; capacity = max 1 capacity }

let length t = t.len
let is_empty t = t.len = 0

let grow t x =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then t.capacity else 2 * cap in
  let data = Array.make ncap x in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.len - 1

let check t i = if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len
let map_to_array f t = Array.init t.len (fun i -> f t.data.(i))
let of_array a = { data = Array.copy a; len = Array.length a; capacity = max 1 (Array.length a) }

let find_index p t =
  let rec loop i =
    if i >= t.len then None else if p t.data.(i) then Some i else loop (i + 1)
  in
  loop 0

let clear t = t.len <- 0
