(** Growable arrays, used as the backbone of the netlist and graph stores.

    Indices handed out by [push] are stable: elements are never moved, so an
    index can serve as a persistent id (net id, node id, ...). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ~capacity ()] pre-sizes the first backing allocation so that
    [capacity] pushes happen without any growth doubling (default 16). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> int
(** Appends and returns the index of the new element. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val map_to_array : ('a -> 'b) -> 'a t -> 'b array
val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t
val find_index : ('a -> bool) -> 'a t -> int option
val clear : 'a t -> unit
