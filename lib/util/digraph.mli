(** Directed graphs over dense integer node ids.

    This is the shared graph machinery behind the netlist timing graph, the
    retiming graph, and the AIG levelizer: topological ordering, cycle
    detection, longest paths, Bellman-Ford (needed by Leiserson-Saxe
    retiming), and Tarjan strongly-connected components. *)

type t

val create : unit -> t

val add_node : t -> int
(** Returns the id of the new node; ids are consecutive from 0. *)

val add_nodes : t -> int -> unit
(** Ensures the graph has at least [n] nodes. *)

val node_count : t -> int
val edge_count : t -> int

val add_edge : t -> ?weight:float -> int -> int -> unit
(** [add_edge g u v] adds a directed edge [u -> v]. Parallel edges are kept. *)

val succ : t -> int -> (int * float) list
(** Successors with edge weights. *)

val pred : t -> int -> (int * float) list
val out_degree : t -> int -> int
val in_degree : t -> int -> int

(** Frozen compressed-sparse-row form: flat offset + packed neighbour/weight
    arrays in both directions. The hot kernels (Kahn topological sort,
    longest-path, the STA fanin walks) run on this representation; each CSR
    row preserves the exact neighbour order of [succ]/[pred], so results are
    identical to the list-based reference implementations. *)
module Csr : sig
  type graph := t
  type t

  val of_graph : graph -> t

  val of_edge_iter : n:int -> ((int -> int -> float -> unit) -> unit) -> t
  (** [of_edge_iter ~n iter] builds a CSR graph over nodes [0..n-1] without an
      intermediate adjacency-list graph. [iter emit] must call [emit u v w]
      once per edge and enumerate the same sequence on both of its two
      invocations (counting pass, fill pass). Rows end up in reverse emission
      order, matching what [of_graph] produces for edges added in the same
      sequence with {!add_edge}. *)

  val node_count : t -> int
  val edge_count : t -> int
  val out_degree : t -> int -> int
  val in_degree : t -> int -> int
  val iter_succ : (int -> float -> unit) -> t -> int -> unit
  val iter_pred : (int -> float -> unit) -> t -> int -> unit
  val topo_order : t -> int array option

  val find_cycle : t -> int list option
  (** Some directed cycle [v0 -> v1 -> ... -> vk -> v0], listed once in edge
      order, when the graph is cyclic; [None] on a DAG. This is the witness
      companion to {!topo_order} returning [None]. *)

  val longest_path : t -> node_delay:(int -> float) -> float array option
end

val freeze : t -> Csr.t
(** Alias of {!Csr.of_graph}: compact a built graph for repeated traversal. *)

val topo_order : t -> int array option
(** Kahn's algorithm; [None] if the graph has a cycle. Freezes to CSR
    internally; one-shot callers pay O(V+E) either way. *)

val is_acyclic : t -> bool

val find_cycle : t -> int list option
(** See {!Csr.find_cycle}; freezes internally. *)

val longest_path : t -> node_delay:(int -> float) -> float array option
(** For a DAG, per-node longest-path arrival: [arr v = node_delay v + max over
    predecessors u of (arr u + weight (u,v))]; [None] on cyclic graphs. *)

val topo_order_ref : t -> int array option
(** List-traversing reference implementation of {!topo_order}; kept so
    property tests can cross-check the CSR fast path. *)

val longest_path_ref : t -> node_delay:(int -> float) -> float array option
(** List-traversing reference implementation of {!longest_path}. *)

val bellman_ford : t -> source:int -> float array option
(** Shortest distances from [source] treating edge weights as lengths;
    [None] when a negative cycle is reachable. Unreachable nodes get
    [infinity]. *)

val feasible_potentials : t -> float array option
(** Solves the difference-constraint system [x(v) - x(u) <= weight (u,v)] for
    all edges, via Bellman-Ford from a virtual source connected to every node
    with weight 0. [None] if the system is infeasible (negative cycle). This
    is the core feasibility test of Leiserson-Saxe retiming. *)

val scc : t -> int array
(** Tarjan strongly-connected components: returns a component id per node,
    numbered in reverse topological order of the condensation. *)
