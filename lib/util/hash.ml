type t = int64

let seed = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let bytes h s =
  let h = ref h in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  !h

let string h s =
  (* terminator byte so adjacent string fields cannot alias across their
     boundary: fold "ab","c" <> fold "a","bc" *)
  byte (bytes h s) 0xff

let int64 h v =
  let h = ref h in
  for i = 0 to 7 do
    h := byte !h (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done;
  !h

let int h v = int64 h (Int64.of_int v)

let float h v =
  let v = if v = 0. then 0. (* merge -0. with 0. *) else v in
  let v = if Float.is_nan v then Float.nan else v in
  int64 h (Int64.bits_of_float v)

let bool h b = byte h (if b then 1 else 0)
let of_string s = bytes seed s
let to_hex h = Printf.sprintf "%016Lx" h
