(** Descriptive statistics used by the Monte Carlo experiments and the
    benchmark harness. *)

(** {1 Running (Welford) accumulator} *)

type running
(** Single-pass accumulator for mean and variance. *)

val running : unit -> running
val add : running -> float -> unit
val count : running -> int
val mean : running -> float
val variance : running -> float
(** Unbiased sample variance; [0.] when fewer than two samples. *)

val stddev : running -> float
val running_min : running -> float
val running_max : running -> float

(** {1 Whole-sample statistics}

    Functions over [float array] samples validate their inputs and raise
    [Invalid_argument] naming the function on an empty sample, an
    out-of-range percentile, a non-positive bin count, or mismatched pair
    lengths. (They used to [assert], which compiles out under [-noassert]
    and then silently returns garbage.) *)

val mean_of : float array -> float
val stddev_of : float array -> float
val percentile_sorted : float array -> float -> float
(** Like {!percentile} but assumes [xs] is already sorted ascending and does
    not copy it; callers that take many percentiles of one sample should sort
    once and use this. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], by linear interpolation between
    order statistics. The input array is not modified. Requires a non-empty
    array. *)

val median : float array -> float
val minimum : float array -> float
val maximum : float array -> float

val histogram : ?bins:int -> float array -> (float * float * int) array
(** [histogram xs] buckets samples into [bins] equal-width bins over
    [\[min, max\]]; each entry is [(lo, hi, count)]. *)

val correlation : float array -> float array -> float
(** Pearson correlation coefficient of two equal-length arrays. *)

val linear_fit : float array -> float array -> float * float
(** [linear_fit xs ys] is the least-squares [(slope, intercept)]. *)
