(** Descriptive statistics used by the Monte Carlo experiments and the
    benchmark harness. *)

(** {1 Running (Welford) accumulator} *)

type running
(** Single-pass accumulator for mean and variance. *)

val running : unit -> running
val add : running -> float -> unit
val count : running -> int
val mean : running -> float
val variance : running -> float
(** Unbiased sample variance; [0.] when fewer than two samples. *)

val stddev : running -> float
val running_min : running -> float
val running_max : running -> float

(** {1 Whole-sample statistics}

    Functions over [float array] samples validate their inputs and raise
    [Invalid_argument] naming the function on an empty sample, an
    out-of-range percentile, a non-positive bin count, or mismatched pair
    lengths. (They used to [assert], which compiles out under [-noassert]
    and then silently returns garbage.) *)

val mean_of : float array -> float
val stddev_of : float array -> float
val percentile_sorted : float array -> float -> float
(** Like {!percentile} but assumes [xs] is already sorted ascending and does
    not copy it; callers that take many percentiles of one sample should sort
    once and use this. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], by linear interpolation between
    order statistics. The input array is not modified. Requires a non-empty
    array. *)

val median : float array -> float
val minimum : float array -> float
val maximum : float array -> float

val histogram : ?bins:int -> float array -> (float * float * int) array
(** [histogram xs] buckets samples into [bins] equal-width bins over
    [\[min, max\]]; each entry is [(lo, hi, count)]. *)

(** {1 Unboxed sample buffers}

    Flat [float64] Bigarray buffers for large sample sets. Worker domains
    may write disjoint ranges concurrently (the buffer never moves under
    the GC), and percentile queries run as partial quickselect instead of
    a full sort: each query is expected O(n), and repeated queries over
    the same buffer get cheaper as earlier partitions accumulate.
    Structural equality ([=]) on two buffers compares dimensions and
    contents, so byte-identity assertions work unchanged. *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val buf_create : int -> buf
(** Fresh uninitialized buffer of the given length. *)

val buf_length : buf -> int
val buf_of_array : float array -> buf
val buf_to_array : buf -> float array
val buf_copy : buf -> buf

val buf_mean : buf -> float
val buf_min : buf -> float
val buf_max : buf -> float
(** Single-pass aggregates; [Invalid_argument] on an empty buffer. *)

val buf_count_ge : buf -> float -> int
(** Number of entries [>= x]; one pass, no ordering required. *)

val buf_select : buf -> int -> float
(** [buf_select b k] is the k-th smallest element (0-based), by in-place
    median-of-three quickselect: [b] is partially reordered so index [k]
    holds its final sorted value. Expected O(n); callers that must keep
    the original order should pass a {!buf_copy}. [Invalid_argument] on an
    empty buffer, an out-of-range rank, or a NaN pivot. *)

val buf_percentile : buf -> float -> float
(** Interpolated percentile over an {e unsorted} buffer via {!buf_select}
    on the two bracketing order statistics — exactly the value
    {!percentile_sorted} returns on the sorted copy, without the sort.
    Partially reorders [b] like {!buf_select}. *)

val correlation : float array -> float array -> float
(** Pearson correlation coefficient of two equal-length arrays. *)

val linear_fit : float array -> float array -> float * float
(** [linear_fit xs ys] is the least-squares [(slope, intercept)]. *)
