(** Stable 64-bit content hashing (FNV-1a).

    The design-space cache keys every evaluated point by a content hash of
    its canonical rendering, so keys must be stable across runs, processes
    and machines — [Hashtbl.hash] guarantees none of that. FNV-1a over the
    canonical byte sequence is tiny, has no per-process state, and its
    reference vectors are easy to pin in tests.

    Values fold left-to-right: [string (int seed 3) "x"] hashes the byte
    sequence of [3] followed by ["x"], so field order matters (hashing is
    order-{e sensitive} by design; callers serialize records in declared
    field order to get order-{e stable} keys). *)

type t = int64

val seed : t
(** The FNV-1a 64-bit offset basis (0xcbf29ce484222325). *)

val string : t -> string -> t
(** Fold the bytes of the string, then a [0xff] terminator byte — so
    ["ab"^"c"] and ["a"^"bc"] hash differently when folded field-wise. *)

val int : t -> int -> t
(** Fold the 8 little-endian bytes of the integer. *)

val int64 : t -> int64 -> t

val float : t -> float -> t
(** Fold the IEEE-754 bits. [-0.] is canonicalized to [0.] and every NaN to
    the canonical quiet NaN, so numerically indistinguishable cache keys
    cannot split. *)

val bool : t -> bool -> t

val of_string : string -> t
(** Plain FNV-1a over the bytes of [s] (no terminator), matching the
    published reference vectors: [of_string "" = seed]. *)

val to_hex : t -> string
(** 16 lowercase hex digits, zero-padded. *)
