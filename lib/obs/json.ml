(* Minimal JSON: a value type, a renderer, and a strict recursive-descent
   parser. Kept dependency-free so every layer of the flow can stream traces
   and metrics documents without pulling in a JSON package. The renderer and
   parser round-trip: [of_string (to_string v) = Ok v] for any value free of
   NaN/infinity (JSON has no spelling for those; they render as null). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- rendering --- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* shortest decimal form that reads back to the same float; integral values
   keep a ".0" so they re-parse as Float, not Int *)
let float_repr x =
  if not (Float.is_finite x) then "null"
  else
    let s = Printf.sprintf "%.12g" x in
    let s = if float_of_string s = x then s else Printf.sprintf "%.17g" x in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let rec render ~indent ~level buf v =
  let nl_pad lv =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (indent * lv) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | Str s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          nl_pad (level + 1);
          render ~indent ~level:(level + 1) buf x)
        xs;
      nl_pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          nl_pad (level + 1);
          escape_to buf k;
          Buffer.add_char buf ':';
          if indent > 0 then Buffer.add_char buf ' ';
          render ~indent ~level:(level + 1) buf x)
        kvs;
      nl_pad level;
      Buffer.add_char buf '}'

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  render ~indent:(if pretty then 2 else 0) ~level:0 buf v;
  Buffer.contents buf

(* --- parsing --- *)

exception Malformed of string

type cursor = { s : string; mutable pos : int }

let error cur msg =
  raise (Malformed (Printf.sprintf "%s at byte %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None

let next cur =
  if cur.pos >= String.length cur.s then error cur "unexpected end of input";
  let c = cur.s.[cur.pos] in
  cur.pos <- cur.pos + 1;
  c

let skip_ws cur =
  while
    cur.pos < String.length cur.s
    && match cur.s.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    cur.pos <- cur.pos + 1
  done

let expect cur c =
  match peek cur with
  | Some d when d = c -> cur.pos <- cur.pos + 1
  | _ -> error cur (Printf.sprintf "expected '%c'" c)

let literal cur word v =
  let n = String.length word in
  if cur.pos + n <= String.length cur.s && String.sub cur.s cur.pos n = word then begin
    cur.pos <- cur.pos + n;
    v
  end
  else error cur (Printf.sprintf "expected '%s'" word)

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let hex4 cur =
  let v = ref 0 in
  for _ = 1 to 4 do
    let d =
      match next cur with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
      | _ -> error cur "bad \\u escape"
    in
    v := (!v lsl 4) lor d
  done;
  !v

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match next cur with
    | '"' -> Buffer.contents buf
    | '\\' ->
        (match next cur with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            let code = hex4 cur in
            let code =
              (* combine surrogate pairs when both halves are present *)
              if
                code >= 0xD800 && code <= 0xDBFF
                && cur.pos + 1 < String.length cur.s
                && cur.s.[cur.pos] = '\\'
                && cur.s.[cur.pos + 1] = 'u'
              then begin
                let save = cur.pos in
                cur.pos <- cur.pos + 2;
                let lo = hex4 cur in
                if lo >= 0xDC00 && lo <= 0xDFFF then
                  0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00)
                else begin
                  cur.pos <- save;
                  code
                end
              end
              else code
            in
            add_utf8 buf code
        | _ -> error cur "bad escape");
        go ()
    | c when Char.code c < 0x20 -> error cur "unescaped control character"
    | c ->
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number cur =
  let start = cur.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while cur.pos < String.length cur.s && is_num_char cur.s.[cur.pos] do
    cur.pos <- cur.pos + 1
  done;
  let token = String.sub cur.s start (cur.pos - start) in
  let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') token in
  if is_float then
    match float_of_string_opt token with
    | Some x -> Float x
    | None -> error cur "bad number"
  else
    match int_of_string_opt token with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt token with
        | Some x -> Float x
        | None -> error cur "bad number")

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | Some '{' ->
      expect cur '{';
      skip_ws cur;
      if peek cur = Some '}' then begin
        expect cur '}';
        Obj []
      end
      else begin
        let kvs = ref [] in
        let rec pair () =
          skip_ws cur;
          let k = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          kvs := (k, v) :: !kvs;
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              expect cur ',';
              pair ()
          | Some '}' -> expect cur '}'
          | _ -> error cur "expected ',' or '}'"
        in
        pair ();
        Obj (List.rev !kvs)
      end
  | Some '[' ->
      expect cur '[';
      skip_ws cur;
      if peek cur = Some ']' then begin
        expect cur ']';
        List []
      end
      else begin
        let xs = ref [] in
        let rec item () =
          let v = parse_value cur in
          xs := v :: !xs;
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              expect cur ',';
              item ()
          | Some ']' -> expect cur ']'
          | _ -> error cur "expected ',' or ']'"
        in
        item ();
        List (List.rev !xs)
      end
  | Some '"' -> Str (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> error cur (Printf.sprintf "unexpected '%c'" c)
  | None -> error cur "unexpected end of input"

let of_string s =
  let cur = { s; pos = 0 } in
  match parse_value cur with
  | v ->
      skip_ws cur;
      if cur.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at byte %d" cur.pos)
      else Ok v
  | exception Malformed m -> Error m

(* --- accessors --- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
