(** Minimal JSON: a value type, a renderer, and a strict parser. Kept
    dependency-free so every layer of the flow can stream traces and metrics
    documents without pulling in a JSON package. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Compact single-line rendering by default; [~pretty:true] indents by two
    spaces. NaN and infinities render as [null] (JSON cannot spell them);
    integral floats keep a [".0"] so they re-parse as [Float]. For any value
    free of NaN/infinity, [of_string (to_string v) = Ok v]. *)

val of_string : string -> (t, string) result
(** Strict parse of a complete JSON document (trailing garbage is an error).
    Handles the full escape set including surrogate pairs (decoded to
    UTF-8). *)

val member : string -> t -> t option
(** [member k (Obj kvs)] is the value bound to [k]; [None] for other
    constructors or a missing key. *)

val float_repr : float -> string
(** The rendering used for [Float]: shortest decimal form that reads back to
    the same float. *)
