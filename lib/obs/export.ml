(* Gap_obs.Export — Chrome trace-event / Perfetto export.

   Converts a parsed JSONL trace into the Chrome trace-event JSON format
   (the "JSON Array Format" with an object wrapper), loadable in
   chrome://tracing and ui.perfetto.dev. Spans become complete ("X")
   events, Obs events become instants ("i"); timestamps are microseconds
   rebased to the earliest record so ts starts at 0 and ascends
   monotonically (the list is ts-sorted as Perfetto requires for
   same-thread slices). *)

let us_of_ns ns = float_of_int ns /. 1e3

(* one synthetic thread per experiment keeps concurrent experiments from
   interleaving their slices on a single track *)
let tid_table () =
  let tbl = Hashtbl.create 8 in
  fun exp ->
    match Hashtbl.find_opt tbl exp with
    | Some tid -> tid
    | None ->
        let tid = Hashtbl.length tbl + 1 in
        Hashtbl.add tbl exp tid;
        tid

let chrome_trace (tr : Trace.t) =
  let t0 =
    List.fold_left
      (fun acc r ->
        let t =
          match r with
          | Trace.Span s -> s.Trace.s_start_ns
          | Trace.Event e -> e.Trace.e_t_ns
        in
        min acc t)
      max_int tr.Trace.records
  in
  let t0 = if t0 = max_int then 0 else t0 in
  let tid_of = tid_table () in
  let args kvs extra =
    match kvs @ extra with [] -> [] | l -> [ ("args", Json.Obj l) ]
  in
  let entries =
    List.map
      (function
        | Trace.Span s ->
            let ts = s.Trace.s_start_ns - t0 in
            ( ts,
              0,
              Json.Obj
                ([
                   ("name", Json.Str s.Trace.s_name);
                   ("cat", Json.Str (if s.Trace.s_exp = "" then "span" else s.Trace.s_exp));
                   ("ph", Json.Str "X");
                   ("ts", Json.Float (us_of_ns ts));
                   ("dur", Json.Float (us_of_ns s.Trace.s_dur_ns));
                   ("pid", Json.Int 1);
                   ("tid", Json.Int (tid_of s.Trace.s_exp));
                 ]
                @ args s.Trace.s_attrs
                    [
                      ("path", Json.Str s.Trace.s_path);
                      ("minor_words", Json.Float s.Trace.s_minor_words);
                      ("major_words", Json.Float s.Trace.s_major_words);
                    ]) )
        | Trace.Event e ->
            let ts = e.Trace.e_t_ns - t0 in
            ( ts,
              1,
              Json.Obj
                ([
                   ("name", Json.Str e.Trace.e_name);
                   ("cat", Json.Str (if e.Trace.e_exp = "" then "event" else e.Trace.e_exp));
                   ("ph", Json.Str "i");
                   ("ts", Json.Float (us_of_ns ts));
                   ("s", Json.Str "t");
                   ("pid", Json.Int 1);
                   ("tid", Json.Int (tid_of e.Trace.e_exp));
                 ]
                @ args e.Trace.e_attrs []) ))
      tr.Trace.records
  in
  (* ts-ascending; instants after slices at equal ts so slices open first *)
  let sorted =
    List.stable_sort
      (fun (ta, ka, _) (tb, kb, _) ->
        match compare ta tb with 0 -> compare ka kb | c -> c)
      entries
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map (fun (_, _, j) -> j) sorted));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_chrome_trace tr path =
  Gap_util.Atomic_io.write_string path
    (Json.to_string ~pretty:true (chrome_trace tr) ^ "\n")
