(** Trace analysis: per-(exp, path) aggregates with self-time attribution,
    top-K rankings, critical-path extraction, and percentile estimates from
    fixed-bucket histogram counts. The reading half of {!Obs}'s telemetry. *)

type node = {
  n_exp : string;
  n_path : string;
  n_name : string;
  n_depth : int;
  n_calls : int;
  n_total_ns : float;
  n_self_ns : float;
      (** total minus the totals of direct children: the wall-clock actually
          attributable to this span's own code *)
  n_min_ns : float;
  n_max_ns : float;
  n_minor_words : float;
  n_major_words : float;
  n_promoted_words : float;
}

type t = {
  nodes : node list;  (** first-seen order *)
  event_counts : (string * int) list;
  span_count : int;
  wall_ns : float;  (** max span end minus min span start; 0 with no spans *)
  truncated : string option;
}

val analyze : Trace.t -> t

val top_by_wall : ?k:int -> t -> node list
(** Nodes ranked by self time, descending. Default [k] = 10. *)

val top_by_alloc : ?k:int -> t -> node list
(** Nodes ranked by minor+major words, descending. *)

val critical_path : t -> node list
(** The heaviest root span, then at each level its heaviest direct child —
    the chain that dominates wall-clock. *)

val hist_percentile : bounds:float array -> counts:int array -> float -> float
(** [hist_percentile ~bounds ~counts q] estimates the q-th percentile
    (0..100) from fixed-bucket counts (the {!Obs} histogram layout:
    [counts.(i)] holds [bounds.(i-1) < v <= bounds.(i)], last is overflow)
    by linear interpolation inside the crossing bucket. [nan] on an empty
    histogram; the overflow bucket reports its lower edge. *)

val hist_summary : Obs.hist_stats -> float * float * float
(** (p50, p90, p99) of a recorded histogram. *)

val render : ?top:int -> t -> string
(** Tables: span tree with self%/alloc, top-K by self time and allocation,
    critical path, event counts. *)

val to_json : ?top:int -> t -> Json.t
