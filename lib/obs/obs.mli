(** Flow-wide telemetry: hierarchical spans, named counters and gauges,
    fixed-bucket histograms, and structured events, all feeding one ambient
    sink. The default sink is a no-op, so instrumented hot paths pay a single
    match when telemetry is off. A recording sink aggregates spans by
    (experiment, path) and can stream one JSON line per closed span / event
    to an out_channel (JSONL trace). *)

type sink

val null : sink
(** The no-op sink. *)

val recorder : ?trace:out_channel -> unit -> sink
(** A fresh recording sink. With [~trace], every closed span and emitted
    event is also written to the channel as one JSON line (the channel is
    not closed by this module). *)

val set : sink -> unit
val get : unit -> sink

val enabled : unit -> bool
(** True when the ambient sink records. Use to gate instrumentation whose
    mere argument construction would cost something. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** Install a sink for the duration of [f]; restores the previous sink even
    on exception. *)

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds. *)

(** {1 Recording} *)

val span : ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] under a span named [name], nested below the
    innermost open span. Wall time (monotonic) and heap allocation (minor,
    major and promoted word deltas, via [Gc.quick_stat]) are aggregated per
    (experiment, '/'-joined path); raw per-call spans go only to the JSONL
    trace. Exception-safe. *)

val annotate : (string * Json.t) list -> unit
(** Attach key/value attributes to the innermost open span. *)

val with_exp : string -> (unit -> 'a) -> 'a
(** Tag every span/counter/event recorded by [f] with the experiment id. *)

val incr : ?by:int -> string -> unit
val gauge : string -> float -> unit

val observe : ?bounds:float array -> string -> float -> unit
(** Record [v] into the named histogram. [counts.(i)] holds values with
    [bounds.(i-1) < v <= bounds.(i)]; the last bucket is overflow. [bounds]
    applies on first observation only; the default is 1-2-5 per decade,
    1e-3..1e9. Safe to call from worker domains. *)

val observe_batch : ?bounds:float array -> string -> float array -> unit
(** Record every value of the array into the named histogram under a single
    recorder-lock acquisition — what a worker domain should call once at
    join time instead of {!observe} per work item. No-op on an empty
    array. *)

val event : string -> (string * Json.t) list -> unit
(** Timestamped structured event; counted, and streamed to the trace. *)

(** {1 Reading a recording back} *)

type span_stats = {
  exp : string;
  path : string;
  name : string;
  depth : int;
  calls : int;
  total_ns : float;
  min_ns : float;
  max_ns : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
}

type hist_stats = {
  bounds : float array;
  counts : int array;
  n : int;
  sum : float;
  min_v : float;
  max_v : float;
}

val spans : sink -> span_stats list
(** Aggregated spans in first-open order. *)

val counters : sink -> (string * int) list
val counter_value : sink -> string -> int
val gauges : sink -> (string * float) list
val gauge_value : sink -> string -> float option
val events : sink -> (string * int) list
val histograms : sink -> (string * hist_stats) list
val histogram_stats : sink -> string -> hist_stats option

(** {1 Export} *)

val pp_ns : float -> string
(** "1.23 s" / "4.56 ms" / "7.89 us" / "12 ns". *)

val summary : sink -> string
(** Pretty tables (via {!Gap_util.Table}) for spans, counters, gauges,
    histograms and events; empty string for the no-op sink. *)

val spans_csv : sink -> string
(** Span aggregates as CSV with raw nanosecond columns. *)

val metrics_json : sink -> Json.t
val write_metrics_json : sink -> string -> unit
(** Pretty-printed {!metrics_json} plus trailing newline, written atomically
    (temp-file + rename) so a crash cannot leave a truncated document. *)
