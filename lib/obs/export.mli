(** Chrome trace-event / Perfetto export of a parsed JSONL trace.

    Spans become complete ("X") events and {!Obs} events instants ("i");
    timestamps are microseconds rebased so [ts] starts at 0, and the
    [traceEvents] list is ts-sorted. The output loads in chrome://tracing
    and ui.perfetto.dev, one synthetic thread per experiment. *)

val chrome_trace : Trace.t -> Json.t

val write_chrome_trace : Trace.t -> string -> unit
(** Pretty-printed document plus trailing newline, written atomically. *)
