(* Gap_obs.Obs — the flow-wide telemetry layer.

   One ambient sink (default: a no-op) receives hierarchical spans, named
   counters and gauges, fixed-bucket histograms, and structured events from
   every instrumented layer (synthesis flow, placer, STA, Monte Carlo).
   Instrumented code pays a single match on the ambient sink when telemetry
   is off, so it is safe to leave instrumentation in hot paths.

   A recording sink aggregates spans by (experiment, path) — path is the
   '/'-joined chain of enclosing span names — and can optionally stream one
   JSON line per closed span / emitted event to an out_channel (JSONL trace).
   Summaries render with Util.Table; the whole recording exports as a single
   metrics JSON document.

   Spans and the experiment tag are owned by the domain that runs the
   experiment; counters, gauges and histograms may be recorded from worker
   domains (the Monte Carlo shards do) and are mutex-protected. *)

let now_ns : unit -> int64 = Monotonic_clock.now

(* --- histograms: counts.(i) holds values v with
   bounds.(i-1) < v <= bounds.(i); counts.(n) is the overflow bucket --- *)

type hist = {
  bounds : float array;
  counts : int array;
  mutable h_n : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

(* 1-2-5 per decade, 1e-3 .. 1e9: serviceable for durations in ns,
   wirelengths in um, and plain counts alike *)
let default_bounds =
  let b = ref [] in
  for d = -3 to 9 do
    let m = 10. ** float_of_int d in
    b := (5. *. m) :: (2. *. m) :: m :: !b
  done;
  Array.of_list (List.rev !b)

(* --- spans --- *)

type frame = {
  f_name : string;
  f_path : string;
  f_exp : string;
  f_depth : int;
  f_start : int64;
  f_minor0 : float;
  f_major0 : float;
  f_promoted0 : float;
  mutable f_attrs : (string * Json.t) list;
}

type span_stats = {
  exp : string;
  path : string;
  name : string;
  depth : int;
  calls : int;
  total_ns : float;
  min_ns : float;
  max_ns : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
}

type agg = {
  a_exp : string;
  a_path : string;
  a_name : string;
  a_depth : int;
  mutable a_calls : int;
  mutable a_total_ns : float;
  mutable a_min_ns : float;
  mutable a_max_ns : float;
  mutable a_minor : float;
  mutable a_major : float;
  mutable a_promoted : float;
}

type recorder = {
  lock : Mutex.t;
  stacks : (int * int, frame list ref) Hashtbl.t;
      (* span stacks are keyed by (domain id, thread id): worker domains
         (the DSE pool, MC shards) and server threads (the serve daemon
         handles every client on its own thread within one domain) may open
         spans concurrently, and each execution context gets its own root.
         A plain DLS stack is not enough — systhreads within a domain share
         DLS, so two client threads would race on one stack ref. The table
         is consulted under [lock]; the ref itself is only ever touched by
         its owning thread. *)
  mutable cur_exp : string;
  aggs : (string, agg) Hashtbl.t;
  mutable agg_order : agg list; (* reverse first-open order *)
  counters : (string, int ref) Hashtbl.t;
  mutable counter_order : string list;
  gauges : (string, float ref) Hashtbl.t;
  mutable gauge_order : string list;
  hists : (string, hist) Hashtbl.t;
  mutable hist_order : string list;
  events : (string, int ref) Hashtbl.t;
  mutable event_order : string list;
  trace : out_channel option;
}

type sink = Noop | Memory of recorder

let null = Noop

let recorder ?trace () =
  Memory
    {
      lock = Mutex.create ();
      stacks = Hashtbl.create 16;
      cur_exp = "";
      aggs = Hashtbl.create 64;
      agg_order = [];
      counters = Hashtbl.create 32;
      counter_order = [];
      gauges = Hashtbl.create 32;
      gauge_order = [];
      hists = Hashtbl.create 16;
      hist_order = [];
      events = Hashtbl.create 16;
      event_order = [];
      trace;
    }

(* --- the ambient sink --- *)

let ambient = ref Noop
let set s = ambient := s
let get () = !ambient
let enabled () = match !ambient with Noop -> false | Memory _ -> true

let with_sink s f =
  let old = !ambient in
  ambient := s;
  Fun.protect ~finally:(fun () -> ambient := old) f

let locked r f =
  Mutex.lock r.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.lock) f

(* the calling context's span stack; created on first use *)
let stack_of r =
  let key = ((Domain.self () :> int), Thread.id (Thread.self ())) in
  locked r (fun () ->
      match Hashtbl.find_opt r.stacks key with
      | Some s -> s
      | None ->
          let s = ref [] in
          Hashtbl.add r.stacks key s;
          s)

let trace_line r j =
  match r.trace with
  | None -> ()
  | Some oc ->
      output_string oc (Json.to_string j);
      output_char oc '\n'

(* callers hold the lock *)
let agg_of r ~exp ~path ~name ~depth =
  let key = exp ^ "\000" ^ path in
  match Hashtbl.find_opt r.aggs key with
  | Some a -> a
  | None ->
      let a =
        {
          a_exp = exp;
          a_path = path;
          a_name = name;
          a_depth = depth;
          a_calls = 0;
          a_total_ns = 0.;
          a_min_ns = infinity;
          a_max_ns = 0.;
          a_minor = 0.;
          a_major = 0.;
          a_promoted = 0.;
        }
      in
      Hashtbl.add r.aggs key a;
      r.agg_order <- a :: r.agg_order;
      a

let span ?(attrs = []) name f =
  match !ambient with
  | Noop -> f ()
  | Memory r ->
      let stack = stack_of r in
      let path, depth =
        match !stack with
        | parent :: _ -> (parent.f_path ^ "/" ^ name, parent.f_depth + 1)
        | [] -> (name, 0)
      in
      let fr =
        (* [Gc.quick_stat] reads the major/promoted tallies without walking
           the heap, so opening a span stays O(1) *)
        let qs = Gc.quick_stat () in
        {
          f_name = name;
          f_path = path;
          f_exp = r.cur_exp;
          f_depth = depth;
          f_start = now_ns ();
          f_minor0 = Gc.minor_words ();
          f_major0 = qs.Gc.major_words;
          f_promoted0 = qs.Gc.promoted_words;
          f_attrs = attrs;
        }
      in
      (* register at open so the summary lists spans in first-open order *)
      locked r (fun () ->
          ignore (agg_of r ~exp:fr.f_exp ~path ~name ~depth));
      stack := fr :: !stack;
      let finish () =
        let dur = Int64.to_float (Int64.sub (now_ns ()) fr.f_start) in
        let minor = Gc.minor_words () -. fr.f_minor0 in
        let qs = Gc.quick_stat () in
        let major = qs.Gc.major_words -. fr.f_major0 in
        let promoted = qs.Gc.promoted_words -. fr.f_promoted0 in
        let rec drop = function
          | top :: rest -> if top == fr then rest else drop rest
          | [] -> []
        in
        stack := drop !stack;
        locked r (fun () ->
            let a = agg_of r ~exp:fr.f_exp ~path ~name ~depth in
            a.a_calls <- a.a_calls + 1;
            a.a_total_ns <- a.a_total_ns +. dur;
            if dur < a.a_min_ns then a.a_min_ns <- dur;
            if dur > a.a_max_ns then a.a_max_ns <- dur;
            a.a_minor <- a.a_minor +. minor;
            a.a_major <- a.a_major +. major;
            a.a_promoted <- a.a_promoted +. promoted;
            trace_line r
              (Json.Obj
                 ([
                    ("type", Json.Str "span");
                    ("exp", Json.Str fr.f_exp);
                    ("path", Json.Str fr.f_path);
                    ("name", Json.Str fr.f_name);
                    ("depth", Json.Int fr.f_depth);
                    ("start_ns", Json.Int (Int64.to_int fr.f_start));
                    ("dur_ns", Json.Int (int_of_float dur));
                    ("minor_words", Json.Float minor);
                    ("major_words", Json.Float major);
                    ("promoted_words", Json.Float promoted);
                  ]
                 @
                 if fr.f_attrs = [] then []
                 else [ ("attrs", Json.Obj fr.f_attrs) ])))
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

(* attach key/value pairs to the innermost open span *)
let annotate kvs =
  match !ambient with
  | Noop -> ()
  | Memory r -> (
      match !(stack_of r) with
      | fr :: _ -> fr.f_attrs <- fr.f_attrs @ kvs
      | [] -> ())

(* scope every span/event recorded by [f] under experiment [id] *)
let with_exp id f =
  match !ambient with
  | Noop -> f ()
  | Memory r ->
      let old = r.cur_exp in
      r.cur_exp <- id;
      Fun.protect ~finally:(fun () -> r.cur_exp <- old) f

let incr ?(by = 1) name =
  match !ambient with
  | Noop -> ()
  | Memory r ->
      locked r (fun () ->
          match Hashtbl.find_opt r.counters name with
          | Some c -> c := !c + by
          | None ->
              Hashtbl.add r.counters name (ref by);
              r.counter_order <- name :: r.counter_order)

let gauge name v =
  match !ambient with
  | Noop -> ()
  | Memory r ->
      locked r (fun () ->
          match Hashtbl.find_opt r.gauges name with
          | Some g -> g := v
          | None ->
              Hashtbl.add r.gauges name (ref v);
              r.gauge_order <- name :: r.gauge_order)

(* must run under [locked r] *)
let hist_find_or_create r bounds name =
  match Hashtbl.find_opt r.hists name with
  | Some h -> h
  | None ->
      let bounds = match bounds with Some b -> b | None -> default_bounds in
      let h =
        {
          bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          h_n = 0;
          h_sum = 0.;
          h_min = infinity;
          h_max = neg_infinity;
        }
      in
      Hashtbl.add r.hists name h;
      r.hist_order <- name :: r.hist_order;
      h

(* must run under [locked r] *)
let hist_insert h v =
  let n = Array.length h.bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v <= h.bounds.(mid) then hi := mid else lo := mid + 1
  done;
  h.counts.(!lo) <- h.counts.(!lo) + 1;
  h.h_n <- h.h_n + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let observe ?bounds name v =
  match !ambient with
  | Noop -> ()
  | Memory r ->
      locked r (fun () -> hist_insert (hist_find_or_create r bounds name) v)

let observe_batch ?bounds name vs =
  if Array.length vs > 0 then
    match !ambient with
    | Noop -> ()
    | Memory r ->
        locked r (fun () ->
            let h = hist_find_or_create r bounds name in
            Array.iter (hist_insert h) vs)

let event name attrs =
  match !ambient with
  | Noop -> ()
  | Memory r ->
      let t = now_ns () in
      locked r (fun () ->
          (match Hashtbl.find_opt r.events name with
          | Some c -> c := !c + 1
          | None ->
              Hashtbl.add r.events name (ref 1);
              r.event_order <- name :: r.event_order);
          trace_line r
            (Json.Obj
               ([
                  ("type", Json.Str "event");
                  ("exp", Json.Str r.cur_exp);
                  ("name", Json.Str name);
                  ("t_ns", Json.Int (Int64.to_int t));
                ]
               @ if attrs = [] then [] else [ ("attrs", Json.Obj attrs) ])))

(* --- reading a recording back --- *)

let spans = function
  | Noop -> []
  | Memory r ->
      List.rev_map
        (fun a ->
          {
            exp = a.a_exp;
            path = a.a_path;
            name = a.a_name;
            depth = a.a_depth;
            calls = a.a_calls;
            total_ns = a.a_total_ns;
            min_ns = (if a.a_calls = 0 then 0. else a.a_min_ns);
            max_ns = a.a_max_ns;
            minor_words = a.a_minor;
            major_words = a.a_major;
            promoted_words = a.a_promoted;
          })
        r.agg_order

let counters = function
  | Noop -> []
  | Memory r ->
      List.rev_map
        (fun name -> (name, !(Hashtbl.find r.counters name)))
        r.counter_order

let counter_value sink name =
  match List.assoc_opt name (counters sink) with Some v -> v | None -> 0

let gauges = function
  | Noop -> []
  | Memory r ->
      List.rev_map
        (fun name -> (name, !(Hashtbl.find r.gauges name)))
        r.gauge_order

let gauge_value sink name = List.assoc_opt name (gauges sink)

let events = function
  | Noop -> []
  | Memory r ->
      List.rev_map
        (fun name -> (name, !(Hashtbl.find r.events name)))
        r.event_order

type hist_stats = {
  bounds : float array;
  counts : int array;
  n : int;
  sum : float;
  min_v : float;
  max_v : float;
}

let histograms = function
  | Noop -> []
  | Memory r ->
      List.rev_map
        (fun name ->
          let h = Hashtbl.find r.hists name in
          ( name,
            {
              bounds = h.bounds;
              counts = h.counts;
              n = h.h_n;
              sum = h.h_sum;
              min_v = h.h_min;
              max_v = h.h_max;
            } ))
        r.hist_order

let histogram_stats sink name = List.assoc_opt name (histograms sink)

(* --- rendering --- *)

let pp_ns ns =
  if Float.is_nan ns then "nan"
  else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let pp_words w =
  if Float.abs w >= 1e6 then Printf.sprintf "%.1f Mw" (w /. 1e6)
  else if Float.abs w >= 1e3 then Printf.sprintf "%.1f kw" (w /. 1e3)
  else Printf.sprintf "%.0f w" w

let span_rows sink =
  List.map
    (fun s ->
      [
        String.make (2 * s.depth) ' ' ^ s.name;
        s.exp;
        string_of_int s.calls;
        pp_ns s.total_ns;
        pp_ns (if s.calls = 0 then 0. else s.total_ns /. float_of_int s.calls);
        pp_ns s.min_ns;
        pp_ns s.max_ns;
        pp_words s.minor_words;
        pp_words s.major_words;
      ])
    (spans sink)

let summary sink =
  match sink with
  | Noop -> ""
  | Memory _ ->
      let buf = Buffer.create 1024 in
      let section title table =
        if table <> "" then begin
          Buffer.add_string buf (Printf.sprintf "== %s ==\n" title);
          Buffer.add_string buf table
        end
      in
      let tbl header aligns rows =
        if rows = [] then "" else Gap_util.Table.render ~aligns ~header rows
      in
      section "spans"
        (tbl
           [ "span"; "exp"; "calls"; "total"; "avg"; "min"; "max"; "alloc"; "major" ]
           Gap_util.Table.[ Left; Left; Right; Right; Right; Right; Right; Right; Right ]
           (span_rows sink));
      section "counters"
        (tbl [ "counter"; "value" ]
           Gap_util.Table.[ Left; Right ]
           (List.map (fun (n, v) -> [ n; string_of_int v ]) (counters sink)));
      section "gauges"
        (tbl [ "gauge"; "value" ]
           Gap_util.Table.[ Left; Right ]
           (List.map (fun (n, v) -> [ n; Printf.sprintf "%.6g" v ]) (gauges sink)));
      section "histograms"
        (tbl
           [ "histogram"; "n"; "mean"; "min"; "max" ]
           Gap_util.Table.[ Left; Right; Right; Right; Right ]
           (List.map
              (fun (name, (h : hist_stats)) ->
                let f v = if h.n = 0 then "-" else Printf.sprintf "%.4g" v in
                [
                  name;
                  string_of_int h.n;
                  f (if h.n = 0 then 0. else h.sum /. float_of_int h.n);
                  f h.min_v;
                  f h.max_v;
                ])
              (histograms sink)));
      section "events"
        (tbl [ "event"; "count" ]
           Gap_util.Table.[ Left; Right ]
           (List.map (fun (n, v) -> [ n; string_of_int v ]) (events sink)));
      Buffer.contents buf

(* span aggregates as CSV (raw ns, spreadsheet-friendly) *)
let spans_csv sink =
  Gap_util.Table.to_csv
    ~header:
      [ "exp"; "path"; "depth"; "calls"; "total_ns"; "avg_ns"; "min_ns"; "max_ns";
        "minor_words"; "major_words"; "promoted_words" ]
    (List.map
       (fun s ->
         [
           s.exp;
           s.path;
           string_of_int s.depth;
           string_of_int s.calls;
           Printf.sprintf "%.0f" s.total_ns;
           Printf.sprintf "%.1f"
             (if s.calls = 0 then 0. else s.total_ns /. float_of_int s.calls);
           Printf.sprintf "%.0f" s.min_ns;
           Printf.sprintf "%.0f" s.max_ns;
           Printf.sprintf "%.0f" s.minor_words;
           Printf.sprintf "%.0f" s.major_words;
           Printf.sprintf "%.0f" s.promoted_words;
         ])
       (spans sink))

let metrics_json sink =
  let span_json s =
    Json.Obj
      [
        ("exp", Json.Str s.exp);
        ("path", Json.Str s.path);
        ("name", Json.Str s.name);
        ("depth", Json.Int s.depth);
        ("calls", Json.Int s.calls);
        ("total_ns", Json.Float s.total_ns);
        ("avg_ns",
         Json.Float (if s.calls = 0 then 0. else s.total_ns /. float_of_int s.calls));
        ("min_ns", Json.Float s.min_ns);
        ("max_ns", Json.Float s.max_ns);
        ("minor_words", Json.Float s.minor_words);
        ("major_words", Json.Float s.major_words);
        ("promoted_words", Json.Float s.promoted_words);
      ]
  in
  let hist_json (name, (h : hist_stats)) =
    let bucket i c =
      Json.Obj
        [
          ("le",
           if i < Array.length h.bounds then Json.Float h.bounds.(i)
           else Json.Str "inf");
          ("count", Json.Int c);
        ]
    in
    let buckets =
      Array.to_list h.counts
      |> List.mapi (fun i c -> (i, c))
      |> List.filter (fun (_, c) -> c > 0)
      |> List.map (fun (i, c) -> bucket i c)
    in
    Json.Obj
      [
        ("name", Json.Str name);
        ("n", Json.Int h.n);
        ("sum", Json.Float h.sum);
        ("mean", if h.n = 0 then Json.Null else Json.Float (h.sum /. float_of_int h.n));
        ("min", if h.n = 0 then Json.Null else Json.Float h.min_v);
        ("max", if h.n = 0 then Json.Null else Json.Float h.max_v);
        ("buckets", Json.List buckets);
      ]
  in
  Json.Obj
    [
      ("version", Json.Int 1);
      ("spans", Json.List (List.map span_json (spans sink)));
      ("counters",
       Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (counters sink)));
      ("gauges",
       Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) (gauges sink)));
      ("events",
       Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (events sink)));
      ("histograms", Json.List (List.map hist_json (histograms sink)));
    ]

let write_metrics_json sink path =
  Gap_util.Atomic_io.write_file path (fun oc ->
      output_string oc (Json.to_string ~pretty:true (metrics_json sink));
      output_char oc '\n')
