(** Append-only run-history store ([BENCH_history.jsonl]) and cross-run
    regression diffing.

    One JSON object per line: a labelled, host-tagged snapshot of named
    metrics plus a calibration number measured at record time. An append is
    a single [O_APPEND] write of one line, so concurrent writers (daemon +
    CLI, parallel CI jobs) never drop each other's entries; a truncated
    final line from a killed writer is dropped on read and shed for good by
    {!compact}. Diffs normalize wall-clock ratios by the two entries'
    calibration ratio, so a slower host does not read as a regression. *)

type meta = {
  host : string;
  domains : int;  (** [Domain.recommended_domain_count] at record time *)
  ocaml_version : string;
  timestamp : string;  (** ISO-8601 UTC *)
}

type entry = {
  label : string;
  meta : meta;
  calibration_ns : float;  (** 0. = unknown (e.g. trace-derived entries) *)
  metrics : (string * float) list;
}

val meta_now : unit -> meta
val iso8601_now : unit -> string

val calibrate : unit -> float
(** Time a fixed deterministic FP kernel, best-of-5 — the unitless "how
    fast is this host" number stored with every snapshot. *)

val make :
  ?meta:meta -> ?calibration_ns:float -> label:string ->
  (string * float) list -> entry
(** Snapshot with current host meta and a fresh calibration unless given. *)

val meta_json : meta -> Json.t
val to_json : entry -> Json.t
val of_json : Json.t -> (entry, string) result

val read : string -> (entry list * string option, string) result
(** Entries in append order, plus a note when a truncated tail was
    dropped. A missing file reads as ([], None)). *)

val append : string -> entry -> unit
(** One [O_APPEND] write of one JSONL line — atomic against concurrent
    appenders (the whole line lands, interleaved with other writers'
    whole lines, never torn across them). *)

val compact : string -> unit
(** Rewrite the store (temp + rename) from its parseable entries, dropping
    a truncated tail. Not safe against concurrent {!append}ers: an entry
    landing mid-rewrite is lost — housekeeping use only. *)

val find : entry list -> string -> entry option
(** Selector: ["last"], ["prev"], ["@N"] (0-based index), or a label (the
    latest entry carrying it). *)

type delta = {
  metric : string;
  base : float;
  cur : float;
  ratio : float;  (** cur / base, raw *)
  norm_ratio : float;  (** ratio divided by the hosts' calibration ratio *)
  pct : float;  (** (norm_ratio - 1) x 100; positive = slower *)
}

type diff = {
  deltas : delta list;
  only_base : string list;
  only_cur : string list;
  cal_ratio : float;
}

val diff : baseline:entry -> current:entry -> diff
val regressions : gate_pct:float -> diff -> delta list
val render_diff : ?gate_pct:float -> diff -> string
