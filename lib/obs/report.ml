(* Gap_obs.Report — the analysis half of the observatory.

   Takes a parsed Trace.t and computes what the raw JSONL cannot show
   directly: per-(exp, path) aggregates with *self* time (total minus the
   time spent in direct children, the number that actually attributes
   wall-clock to code), top-K rankings by wall and by allocation, the
   critical path (the heaviest root-to-leaf chain of span totals), and
   p50/p90/p99 estimates from fixed-bucket histogram counts. *)

type node = {
  n_exp : string;
  n_path : string;
  n_name : string;
  n_depth : int;
  n_calls : int;
  n_total_ns : float;
  n_self_ns : float;
  n_min_ns : float;
  n_max_ns : float;
  n_minor_words : float;
  n_major_words : float;
  n_promoted_words : float;
}

type t = {
  nodes : node list; (* first-seen order *)
  event_counts : (string * int) list;
  span_count : int;
  wall_ns : float; (* max span end minus min span start, 0 with no spans *)
  truncated : string option;
}

let parent_path path =
  match String.rindex_opt path '/' with
  | Some i -> Some (String.sub path 0 i)
  | None -> None

let analyze (tr : Trace.t) =
  let tbl : (string * string, node) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let t_min = ref max_int and t_max = ref min_int and span_count = ref 0 in
  List.iter
    (fun (s : Trace.span) ->
      incr span_count;
      if s.Trace.s_start_ns < !t_min then t_min := s.Trace.s_start_ns;
      let fin = s.Trace.s_start_ns + s.Trace.s_dur_ns in
      if fin > !t_max then t_max := fin;
      let key = (s.Trace.s_exp, s.Trace.s_path) in
      let dur = float_of_int s.Trace.s_dur_ns in
      match Hashtbl.find_opt tbl key with
      | Some n ->
          Hashtbl.replace tbl key
            {
              n with
              n_calls = n.n_calls + 1;
              n_total_ns = n.n_total_ns +. dur;
              n_min_ns = Float.min n.n_min_ns dur;
              n_max_ns = Float.max n.n_max_ns dur;
              n_minor_words = n.n_minor_words +. s.Trace.s_minor_words;
              n_major_words = n.n_major_words +. s.Trace.s_major_words;
              n_promoted_words = n.n_promoted_words +. s.Trace.s_promoted_words;
            }
      | None ->
          order := key :: !order;
          Hashtbl.add tbl key
            {
              n_exp = s.Trace.s_exp;
              n_path = s.Trace.s_path;
              n_name = s.Trace.s_name;
              n_depth = s.Trace.s_depth;
              n_calls = 1;
              n_total_ns = dur;
              n_self_ns = 0.;
              n_min_ns = dur;
              n_max_ns = dur;
              n_minor_words = s.Trace.s_minor_words;
              n_major_words = s.Trace.s_major_words;
              n_promoted_words = s.Trace.s_promoted_words;
            })
    (Trace.spans tr);
  (* self time: a span's total minus its direct children's totals. The path
     encodes the full ancestry, so "children of (exp, P)" is exactly the set
     of aggregated paths one segment below P in the same experiment. *)
  let child_total : (string * string, float) Hashtbl.t = Hashtbl.create 64 in
  (* accumulate in first-open order, not Hashtbl.iter order: float addition
     is not associative, so a hash-order walk could flip low bits of a
     parent's child total between runs and break byte-identical renders *)
  List.iter
    (fun ((exp, path) as key) ->
      let n = Hashtbl.find tbl key in
      match parent_path path with
      | Some p ->
          let k = (exp, p) in
          Hashtbl.replace child_total k
            (n.n_total_ns
            +. match Hashtbl.find_opt child_total k with Some v -> v | None -> 0.)
      | None -> ())
    (List.rev !order);
  let nodes =
    List.rev_map
      (fun key ->
        let n = Hashtbl.find tbl key in
        let children =
          match Hashtbl.find_opt child_total key with Some v -> v | None -> 0.
        in
        { n with n_self_ns = Float.max 0. (n.n_total_ns -. children) })
      !order
  in
  let event_counts =
    let etbl = Hashtbl.create 16 and eorder = ref [] in
    List.iter
      (fun (e : Trace.event) ->
        match Hashtbl.find_opt etbl e.Trace.e_name with
        | Some c -> c := !c + 1
        | None ->
            Hashtbl.add etbl e.Trace.e_name (ref 1);
            eorder := e.Trace.e_name :: !eorder)
      (Trace.events tr);
    List.rev_map (fun name -> (name, !(Hashtbl.find etbl name))) !eorder
  in
  {
    nodes;
    event_counts;
    span_count = !span_count;
    wall_ns =
      (if !span_count = 0 then 0. else float_of_int (!t_max - !t_min));
    truncated = tr.Trace.truncated;
  }

let top_by_wall ?(k = 10) t =
  let sorted =
    List.stable_sort (fun a b -> Float.compare b.n_self_ns a.n_self_ns) t.nodes
  in
  List.filteri (fun i _ -> i < k) sorted

let top_by_alloc ?(k = 10) t =
  let words n = n.n_minor_words +. n.n_major_words in
  let sorted =
    List.stable_sort (fun a b -> Float.compare (words b) (words a)) t.nodes
  in
  List.filteri (fun i _ -> i < k) sorted

(* heaviest root, then repeatedly the heaviest direct child *)
let critical_path t =
  let roots = List.filter (fun n -> n.n_depth = 0) t.nodes in
  let heaviest = function
    | [] -> None
    | n :: rest ->
        Some
          (List.fold_left
             (fun best c -> if c.n_total_ns > best.n_total_ns then c else best)
             n rest)
  in
  match heaviest roots with
  | None -> []
  | Some root ->
      let rec descend cur acc =
        let children =
          List.filter
            (fun n ->
              n.n_exp = cur.n_exp
              && n.n_depth = cur.n_depth + 1
              &&
              match parent_path n.n_path with
              | Some p -> String.equal p cur.n_path
              | None -> false)
            t.nodes
        in
        match heaviest children with
        | Some c -> descend c (c :: acc)
        | None -> List.rev acc
      in
      descend root [ root ]

(* --- percentile estimation from fixed-bucket counts ---

   counts.(i) holds values v with bounds.(i-1) < v <= bounds.(i), counts at
   the end is overflow. The q-quantile is found by walking the cumulative
   counts and interpolating linearly inside the bucket that crosses it —
   exact at bucket edges, within one bucket width elsewhere. *)
let hist_percentile ~bounds ~counts q =
  let nb = Array.length bounds in
  if Array.length counts <> nb + 1 then
    invalid_arg "Report.hist_percentile: counts must be one longer than bounds";
  if not (q >= 0. && q <= 100.) then
    invalid_arg "Report.hist_percentile: q outside 0..100";
  let n = Array.fold_left ( + ) 0 counts in
  if n = 0 then nan
  else begin
    let target = q /. 100. *. float_of_int n in
    let cum = ref 0. and i = ref 0 in
    while
      !i < nb + 1 && !cum +. float_of_int counts.(!i) < target
    do
      cum := !cum +. float_of_int counts.(!i);
      incr i
    done;
    if !i >= nb then
      (* overflow bucket: no upper edge, report its lower edge *)
      if nb = 0 then nan else bounds.(nb - 1)
    else begin
      let lo = if !i = 0 then 0. else bounds.(!i - 1) in
      let hi = bounds.(!i) in
      let c = float_of_int counts.(!i) in
      if c <= 0. then hi
      else lo +. ((hi -. lo) *. ((target -. !cum) /. c))
    end
  end

let hist_summary (h : Obs.hist_stats) =
  let p q = hist_percentile ~bounds:h.Obs.bounds ~counts:h.Obs.counts q in
  (p 50., p 90., p 99.)

(* --- rendering --- *)

let pct part whole = if whole <= 0. then 0. else 100. *. part /. whole

let node_row wall n =
  [
    String.make (2 * n.n_depth) ' ' ^ n.n_name;
    n.n_exp;
    string_of_int n.n_calls;
    Obs.pp_ns n.n_total_ns;
    Obs.pp_ns n.n_self_ns;
    Printf.sprintf "%.1f%%" (pct n.n_self_ns wall);
    Obs.pp_ns (n.n_total_ns /. float_of_int (max 1 n.n_calls));
    Printf.sprintf "%.0f" n.n_minor_words;
    Printf.sprintf "%.0f" n.n_major_words;
  ]

let render ?(top = 10) t =
  let buf = Buffer.create 1024 in
  let section title rows header aligns =
    if rows <> [] then begin
      Buffer.add_string buf (Printf.sprintf "== %s ==\n" title);
      Buffer.add_string buf (Gap_util.Table.render ~aligns ~header rows)
    end
  in
  Buffer.add_string buf
    (Printf.sprintf "trace: %d spans, %d aggregated paths, wall %s\n"
       t.span_count (List.length t.nodes) (Obs.pp_ns t.wall_ns));
  (match t.truncated with
  | Some note ->
      Buffer.add_string buf
        (Printf.sprintf "note: truncated tail dropped (%s)\n" note)
  | None -> ());
  let span_header =
    [ "span"; "exp"; "calls"; "total"; "self"; "self%"; "avg"; "minor_w"; "major_w" ]
  in
  let span_aligns =
    Gap_util.Table.[ Left; Left; Right; Right; Right; Right; Right; Right; Right ]
  in
  section "span tree (first-open order)"
    (List.map (node_row t.wall_ns) t.nodes)
    span_header span_aligns;
  section
    (Printf.sprintf "top %d by self time" top)
    (List.map (node_row t.wall_ns) (top_by_wall ~k:top t))
    span_header span_aligns;
  section
    (Printf.sprintf "top %d by allocation" top)
    (List.map (node_row t.wall_ns) (top_by_alloc ~k:top t))
    span_header span_aligns;
  section "critical path (heaviest chain)"
    (List.map (node_row t.wall_ns) (critical_path t))
    span_header span_aligns;
  section "events"
    (List.map (fun (n, c) -> [ n; string_of_int c ]) t.event_counts)
    [ "event"; "count" ]
    Gap_util.Table.[ Left; Right ];
  Buffer.contents buf

let node_json wall n =
  Json.Obj
    [
      ("exp", Json.Str n.n_exp);
      ("path", Json.Str n.n_path);
      ("name", Json.Str n.n_name);
      ("depth", Json.Int n.n_depth);
      ("calls", Json.Int n.n_calls);
      ("total_ns", Json.Float n.n_total_ns);
      ("self_ns", Json.Float n.n_self_ns);
      ("self_pct", Json.Float (pct n.n_self_ns wall));
      ("min_ns", Json.Float n.n_min_ns);
      ("max_ns", Json.Float n.n_max_ns);
      ("minor_words", Json.Float n.n_minor_words);
      ("major_words", Json.Float n.n_major_words);
      ("promoted_words", Json.Float n.n_promoted_words);
    ]

let to_json ?(top = 10) t =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("span_count", Json.Int t.span_count);
      ("wall_ns", Json.Float t.wall_ns);
      ( "truncated",
        match t.truncated with Some s -> Json.Str s | None -> Json.Null );
      ("nodes", Json.List (List.map (node_json t.wall_ns) t.nodes));
      ( "top_by_self_ns",
        Json.List (List.map (node_json t.wall_ns) (top_by_wall ~k:top t)) );
      ( "top_by_alloc",
        Json.List (List.map (node_json t.wall_ns) (top_by_alloc ~k:top t)) );
      ( "critical_path",
        Json.List (List.map (node_json t.wall_ns) (critical_path t)) );
      ( "events",
        Json.Obj (List.map (fun (n, c) -> (n, Json.Int c)) t.event_counts) );
    ]
