(** Strict reader for the JSONL traces {!Obs.recorder} [~trace] emits.

    Every complete line must parse as a JSON object with the span/event
    schema; a malformed {e final} line — the signature of a run killed
    mid-write — is dropped and reported in [truncated] instead of failing
    the read. Any earlier malformed or mis-typed line is an error naming
    the line number. [major_words] / [promoted_words] default to 0 when
    absent, so traces written before they joined the schema still read. *)

type span = {
  s_exp : string;
  s_path : string;  (** '/'-joined chain of enclosing span names *)
  s_name : string;
  s_depth : int;
  s_start_ns : int;  (** raw monotonic clock; only differences mean anything *)
  s_dur_ns : int;
  s_minor_words : float;
  s_major_words : float;
  s_promoted_words : float;
  s_attrs : (string * Json.t) list;
}

type event = {
  e_exp : string;
  e_name : string;
  e_t_ns : int;
  e_attrs : (string * Json.t) list;
}

type record = Span of span | Event of event

type t = {
  records : record list;
      (** file order: spans in close order (inner before outer), events at
          emission time *)
  line_count : int;  (** parsed lines, excluding a dropped truncated tail *)
  truncated : string option;
      (** parse error of a malformed final line, when one was dropped *)
}

val parse_line : line:int -> string -> (record, string) result
val of_string : string -> (t, string) result
val read_file : string -> (t, string) result

val spans : t -> span list
val events : t -> event list
