(* Gap_obs.History — append-only run-history store and cross-run diffing.

   One JSON object per line in BENCH_history.jsonl: a labelled, host-tagged
   snapshot of named metrics (ns/run, total span ns, ...) plus a host
   calibration number measured at record time. An append is one O_APPEND
   write of one line: concurrent writers (the serve daemon plus a CLI run,
   two parallel CI jobs) interleave whole lines instead of silently
   dropping each other's entries the way the old read-all + rewrite cycle
   did. A truncated tail from a killed writer is dropped on read, like
   Trace does; [compact] rewrites the file through Util.Atomic_io
   (temp + rename) to shed such tails.

   Diffing two entries normalizes each wall-clock ratio by the ratio of the
   calibration numbers, so "this host is 1.4x slower than the one that
   recorded the baseline" does not read as a regression. The calibration
   loop is a fixed deterministic FP kernel timed best-of-5. *)

type meta = {
  host : string;
  domains : int;
  ocaml_version : string;
  timestamp : string; (* ISO-8601 UTC *)
}

type entry = {
  label : string;
  meta : meta;
  calibration_ns : float; (* 0. = unknown (e.g. trace-derived entries) *)
  metrics : (string * float) list;
}

let iso8601_now () =
  let t = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

let meta_now () =
  {
    host = (try Unix.gethostname () with Unix.Unix_error _ -> "unknown");
    domains = Domain.recommended_domain_count ();
    ocaml_version = Sys.ocaml_version;
    timestamp = iso8601_now ();
  }

(* fixed FP kernel, best-of-5: a unitless "how fast is this host" number
   recorded alongside every snapshot so diffs can normalize across hosts *)
let calibrate () =
  let best = ref infinity in
  for _ = 1 to 5 do
    let t0 = Obs.now_ns () in
    let acc = ref 0. in
    for i = 1 to 200_000 do
      acc := !acc +. sqrt (float_of_int i)
    done;
    ignore (Sys.opaque_identity !acc);
    let dt = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) in
    if dt < !best then best := dt
  done;
  !best

let make ?meta ?calibration_ns ~label metrics =
  {
    label;
    meta = (match meta with Some m -> m | None -> meta_now ());
    calibration_ns =
      (match calibration_ns with Some c -> c | None -> calibrate ());
    metrics;
  }

(* --- JSON --- *)

let meta_json m =
  Json.Obj
    [
      ("host", Json.Str m.host);
      ("domains", Json.Int m.domains);
      ("ocaml_version", Json.Str m.ocaml_version);
      ("timestamp", Json.Str m.timestamp);
    ]

let to_json e =
  Json.Obj
    [
      ("schema", Json.Int 1);
      ("label", Json.Str e.label);
      ("meta", meta_json e.meta);
      ("calibration_ns", Json.Float e.calibration_ns);
      ("metrics", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) e.metrics));
    ]

let num = function
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | _ -> None

let of_json j =
  let str k d = match Json.member k j with Some (Json.Str s) -> s | _ -> d in
  match Json.member "metrics" j with
  | Some (Json.Obj kvs) ->
      let metrics =
        List.filter_map
          (fun (k, v) -> match num v with Some f -> Some (k, f) | None -> None)
          kvs
      in
      let meta =
        match Json.member "meta" j with
        | Some m ->
            {
              host = (match Json.member "host" m with Some (Json.Str s) -> s | _ -> "unknown");
              domains =
                (match Json.member "domains" m with Some (Json.Int i) -> i | _ -> 0);
              ocaml_version =
                (match Json.member "ocaml_version" m with Some (Json.Str s) -> s | _ -> "");
              timestamp =
                (match Json.member "timestamp" m with Some (Json.Str s) -> s | _ -> "");
            }
        | None -> { host = "unknown"; domains = 0; ocaml_version = ""; timestamp = "" }
      in
      Ok
        {
          label = str "label" "";
          meta;
          calibration_ns =
            (match Option.bind (Json.member "calibration_ns" j) num with
            | Some c -> c
            | None -> 0.);
          metrics;
        }
  | Some _ -> Error "history entry: \"metrics\" is not an object"
  | None -> Error "history entry: missing \"metrics\""

(* --- the store --- *)

let read path =
  if not (Sys.file_exists path) then Ok ([], None)
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error e -> Error e
    | s ->
        let lines =
          List.filteri (fun _ (_, l) -> String.trim l <> "")
            (List.mapi (fun i l -> (i + 1, l)) (String.split_on_char '\n' s))
        in
        let last_line = match List.rev lines with (n, _) :: _ -> n | [] -> 0 in
        let rec go acc = function
          | [] -> Ok (List.rev acc, None)
          | (n, l) :: rest -> (
              match Json.of_string l with
              | Error e when n = last_line ->
                  Ok (List.rev acc, Some (Printf.sprintf "line %d: %s" n e))
              | Error e -> Error (Printf.sprintf "line %d: %s" n e)
              | Ok j -> (
                  match of_json j with
                  | Ok e -> go (e :: acc) rest
                  | Error e -> Error (Printf.sprintf "line %d: %s" n e)))
        in
        go [] lines

(* One O_APPEND write per entry. The kernel serializes O_APPEND writes, so
   two processes (or threads) appending concurrently each land a whole line
   — the previous read-modify-write-through-rename implementation let the
   slower writer clobber the faster one's entry. *)
let append path e =
  let line = Json.to_string (to_json e) ^ "\n" in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let len = String.length line in
      let n = Unix.write_substring fd line 0 len in
      if n <> len then
        (* regular files complete single writes; anything else is a real
           I/O failure worth surfacing *)
        raise (Sys_error (Printf.sprintf "%s: short history append" path)))

(* Compaction is the one place temp+rename survives: rewrite the file from
   its parseable entries, shedding any truncated tail a killed writer left.
   Concurrent appends during the rewrite can be lost, so call it from
   housekeeping paths only, never racing a live daemon. *)
let compact path =
  match read path with
  | Error _ -> ()
  | Ok (entries, _truncated) ->
      let buf = Buffer.create 4096 in
      List.iter
        (fun e ->
          Buffer.add_string buf (Json.to_string (to_json e));
          Buffer.add_char buf '\n')
        entries;
      Gap_util.Atomic_io.write_string path (Buffer.contents buf)

(* selector: "last" / "prev" / "@N" (0-based index) / a label (latest
   entry carrying it) *)
let find entries sel =
  let n = List.length entries in
  let nth i = if i >= 0 && i < n then Some (List.nth entries i) else None in
  match sel with
  | "last" -> nth (n - 1)
  | "prev" -> nth (n - 2)
  | _ ->
      if String.length sel > 1 && sel.[0] = '@' then
        match int_of_string_opt (String.sub sel 1 (String.length sel - 1)) with
        | Some i -> nth i
        | None -> None
      else
        List.fold_left
          (fun acc e -> if e.label = sel then Some e else acc)
          None entries

(* --- diffing --- *)

type delta = {
  metric : string;
  base : float;
  cur : float;
  ratio : float; (* cur / base, raw *)
  norm_ratio : float; (* ratio divided by the hosts' calibration ratio *)
  pct : float; (* (norm_ratio - 1) * 100; positive = slower = regression *)
}

type diff = {
  deltas : delta list;
  only_base : string list; (* metrics the current run no longer reports *)
  only_cur : string list; (* metrics new in the current run *)
  cal_ratio : float; (* cur calibration / base calibration, 1. if unknown *)
}

let diff ~baseline ~current =
  let cal_ratio =
    if baseline.calibration_ns > 0. && current.calibration_ns > 0. then
      current.calibration_ns /. baseline.calibration_ns
    else 1.
  in
  let deltas =
    List.filter_map
      (fun (name, base) ->
        match List.assoc_opt name current.metrics with
        | Some cur when base > 0. ->
            let ratio = cur /. base in
            let norm_ratio = ratio /. cal_ratio in
            Some
              { metric = name; base; cur; ratio; norm_ratio;
                pct = (norm_ratio -. 1.) *. 100. }
        | _ -> None)
      baseline.metrics
  in
  {
    deltas;
    only_base =
      List.filter_map
        (fun (n, _) ->
          if List.mem_assoc n current.metrics then None else Some n)
        baseline.metrics;
    only_cur =
      List.filter_map
        (fun (n, _) ->
          if List.mem_assoc n baseline.metrics then None else Some n)
        current.metrics;
    cal_ratio;
  }

let regressions ~gate_pct d =
  List.filter (fun dl -> dl.pct > gate_pct) d.deltas

let render_diff ?gate_pct d =
  let buf = Buffer.create 1024 in
  if d.cal_ratio <> 1. then
    Buffer.add_string buf
      (Printf.sprintf
         "host calibration ratio (current/base): %.3f — deltas are normalized\n"
         d.cal_ratio);
  let rows =
    List.map
      (fun dl ->
        let flag =
          match gate_pct with
          | Some g when dl.pct > g -> "REGRESSED"
          | Some g when dl.pct < -.g -> "improved"
          | _ -> ""
        in
        [
          dl.metric;
          Printf.sprintf "%.0f" dl.base;
          Printf.sprintf "%.0f" dl.cur;
          Printf.sprintf "%.3f" dl.norm_ratio;
          Printf.sprintf "%+.1f%%" dl.pct;
          flag;
        ])
      (List.stable_sort (fun a b -> Float.compare b.pct a.pct) d.deltas)
  in
  if rows <> [] then
    Buffer.add_string buf
      (Gap_util.Table.render
         ~aligns:Gap_util.Table.[ Left; Right; Right; Right; Right; Left ]
         ~header:[ "metric"; "base"; "current"; "norm ratio"; "delta"; "" ]
         rows);
  if d.only_base <> [] then
    Buffer.add_string buf
      (Printf.sprintf "only in baseline: %s\n" (String.concat ", " d.only_base));
  if d.only_cur <> [] then
    Buffer.add_string buf
      (Printf.sprintf "only in current: %s\n" (String.concat ", " d.only_cur));
  Buffer.contents buf
