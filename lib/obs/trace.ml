(* Gap_obs.Trace — strict reader for the JSONL traces Obs.recorder ~trace
   emits.

   Every complete line must be a valid JSON object with the span/event
   schema; a malformed *final* line is tolerated (a killed run truncates
   mid-line) and reported in [truncated] rather than failing the whole
   read. Any other malformed or mis-typed line is an error naming the line
   number — traces are machine-written, so leniency would only hide bugs in
   the writer. *)

type span = {
  s_exp : string;
  s_path : string;
  s_name : string;
  s_depth : int;
  s_start_ns : int;
  s_dur_ns : int;
  s_minor_words : float;
  s_major_words : float;
  s_promoted_words : float;
  s_attrs : (string * Json.t) list;
}

type event = {
  e_exp : string;
  e_name : string;
  e_t_ns : int;
  e_attrs : (string * Json.t) list;
}

type record = Span of span | Event of event

type t = {
  records : record list; (* file order: spans in close order, events inline *)
  line_count : int; (* parsed lines, excluding a dropped truncated tail *)
  truncated : string option; (* note about a malformed final line, if any *)
}

let str_field line j k =
  match Json.member k j with
  | Some (Json.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "line %d: field %S is not a string" line k)
  | None -> Error (Printf.sprintf "line %d: missing field %S" line k)

let int_field line j k =
  match Json.member k j with
  | Some (Json.Int i) -> Ok i
  | Some (Json.Float f) when Float.is_integer f -> Ok (int_of_float f)
  | Some _ -> Error (Printf.sprintf "line %d: field %S is not an integer" line k)
  | None -> Error (Printf.sprintf "line %d: missing field %S" line k)

(* numeric field absent in pre-PR-7 traces: default 0 so old traces read *)
let float_field_opt line j k =
  match Json.member k j with
  | Some (Json.Float f) -> Ok f
  | Some (Json.Int i) -> Ok (float_of_int i)
  | Some Json.Null -> Ok 0.
  | Some _ -> Error (Printf.sprintf "line %d: field %S is not a number" line k)
  | None -> Ok 0.

let attrs_field line j =
  match Json.member "attrs" j with
  | Some (Json.Obj kvs) -> Ok kvs
  | Some _ -> Error (Printf.sprintf "line %d: field \"attrs\" is not an object" line)
  | None -> Ok []

let ( let* ) = Result.bind

let parse_record ~line j =
  match j with
  | Json.Obj _ -> (
      let* ty = str_field line j "type" in
      match ty with
      | "span" ->
          let* s_exp = str_field line j "exp" in
          let* s_path = str_field line j "path" in
          let* s_name = str_field line j "name" in
          let* s_depth = int_field line j "depth" in
          let* s_start_ns = int_field line j "start_ns" in
          let* s_dur_ns = int_field line j "dur_ns" in
          let* s_minor_words = float_field_opt line j "minor_words" in
          let* s_major_words = float_field_opt line j "major_words" in
          let* s_promoted_words = float_field_opt line j "promoted_words" in
          let* s_attrs = attrs_field line j in
          if s_dur_ns < 0 then
            Error (Printf.sprintf "line %d: negative dur_ns" line)
          else
            Ok
              (Span
                 {
                   s_exp;
                   s_path;
                   s_name;
                   s_depth;
                   s_start_ns;
                   s_dur_ns;
                   s_minor_words;
                   s_major_words;
                   s_promoted_words;
                   s_attrs;
                 })
      | "event" ->
          let* e_exp = str_field line j "exp" in
          let* e_name = str_field line j "name" in
          let* e_t_ns = int_field line j "t_ns" in
          let* e_attrs = attrs_field line j in
          Ok (Event { e_exp; e_name; e_t_ns; e_attrs })
      | other -> Error (Printf.sprintf "line %d: unknown record type %S" line other))
  | _ -> Error (Printf.sprintf "line %d: not a JSON object" line)

let parse_line ~line s =
  match Json.of_string s with
  | Ok j -> parse_record ~line j
  | Error e -> Error (Printf.sprintf "line %d: %s" line e)

let of_string s =
  let lines = String.split_on_char '\n' s in
  (* index the non-empty lines so the error message matches the file *)
  let numbered =
    List.filteri (fun _ (_, l) -> String.trim l <> "")
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  let last_line = match List.rev numbered with (n, _) :: _ -> n | [] -> 0 in
  let rec go acc count = function
    | [] -> Ok { records = List.rev acc; line_count = count; truncated = None }
    | (n, l) :: rest -> (
        match parse_line ~line:n l with
        | Ok r -> go (r :: acc) (count + 1) rest
        | Error e ->
            if n = last_line && Result.is_error (Json.of_string l) then
              (* a killed writer truncates mid-line: drop the tail, note it *)
              Ok
                {
                  records = List.rev acc;
                  line_count = count;
                  truncated = Some e;
                }
            else Error e)
  in
  go [] 0 numbered

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | s -> of_string s

let spans t =
  List.filter_map (function Span s -> Some s | Event _ -> None) t.records

let events t =
  List.filter_map (function Event e -> Some e | Span _ -> None) t.records
