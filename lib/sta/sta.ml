module Netlist = Gap_netlist.Netlist
module Cell = Gap_liberty.Cell
module Obs = Gap_obs.Obs

(* endpoint slack buckets (ps): slack can be negative, so the default
   positive-decade bounds would collapse everything into one bucket *)
let slack_bounds_ps =
  [|
    -5000.; -2000.; -1000.; -500.; -200.; -100.; -50.; -20.; -10.; 0.; 10.;
    20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000.; 10000.;
  |]

type config = {
  clock_period_ps : float option;
  clock_skew_ps : float;
  input_arrival_ps : float;
  derate : float;
}

let default_config =
  { clock_period_ps = None; clock_skew_ps = 0.; input_arrival_ps = 0.; derate = 1.0 }
let config_with_skew skew = { default_config with clock_skew_ps = skew }

(* logic-depth buckets for the stage-resolved slack histograms: shallow
   paths (a few gates between flops) fail timing for different reasons than
   deep ones, so slack is reported per depth band *)
let depth_bucket d =
  if d <= 4 then "01_04"
  else if d <= 8 then "05_08"
  else if d <= 12 then "09_12"
  else if d <= 16 then "13_16"
  else if d <= 24 then "17_24"
  else "25_up"

type step = {
  what : string;
  inst : int option;
  net : int;
  arrival_ps : float;
  incr_ps : float;
}

type path = { steps : step list; endpoint : string; required_ps : float; slack_ps : float }

type t = {
  netlist_name : string;
  arrival : float array;
  required : float array;
  min_period_ps : float;
  period_ps : float;
  critical : path;
  endpoint_count : int;
  clock_skew_ps : float;
}

(* --- pipeline-stage attribution ---

   The stage of an endpoint is the register depth of its data cone: paths
   from primary inputs to the first flop rank are stage 1, between flop
   ranks 1 and 2 stage 2, and so on; primary outputs land in the stage after
   the deepest register feeding them. Depth is structural (over drivers, not
   the worst-path predecessor chain), so every endpoint has a stage even
   when another path is critical. *)

let stage_label st = Printf.sprintf "s%02d" st

let reg_depths nl =
  let nnets = Netlist.num_nets nl in
  (* -2 = unvisited, -1 = on the recursion stack: a register feedback loop
     (counter, FSM) re-entering its own cone restarts the count — the loop
     is its own stage boundary *)
  let memo = Array.make (max 1 nnets) (-2) in
  let rec depth_of net =
    if memo.(net) >= 0 then memo.(net)
    else if memo.(net) = -1 then 0
    else begin
      memo.(net) <- -1;
      let d =
        match Netlist.driver_of nl net with
        | Netlist.From_input _ | Netlist.From_const _ | Netlist.Undriven -> 0
        | Netlist.From_cell i when Netlist.is_flop nl i ->
            1 + depth_of (Netlist.fanin nl i 0)
        | Netlist.From_cell i ->
            let m = ref 0 in
            Netlist.iter_fanins nl i (fun f ->
                let df = depth_of f in
                if df > !m then m := df);
            !m
      in
      memo.(net) <- d;
      d
    end
  in
  depth_of

type stage_slack = {
  stage : int;
  worst_ps : float;
  total_ps : float;
  endpoints : int;
}

(* Setup requirement of a flop endpoint: data must arrive [setup + skew]
   before the capturing edge. *)
let endpoint_margin (cfg : config) cell =
  match Cell.seq_timing cell with
  | Some seq -> seq.Cell.setup_ps +. cfg.clock_skew_ps
  | None -> 0.

let analyze_body cfg nl =
  let nnets = Netlist.num_nets nl in
  let visited = ref 0 and edges = ref 0 in
  let arrival = Array.make (max 1 nnets) neg_infinity in
  (* predecessor for path tracing: the instance whose output set this net's
     arrival, and the fanin net through which the worst path came *)
  let pred = Array.make (max 1 nnets) None in
  (* Sources. *)
  for n = 0 to nnets - 1 do
    match Netlist.driver_of nl n with
    | Netlist.From_input _ -> arrival.(n) <- cfg.input_arrival_ps
    | Netlist.From_const _ -> arrival.(n) <- 0.
    | Netlist.From_cell i when Netlist.is_flop nl i ->
        (* launch path: clk->q plus the flop output driving its load *)
        let cell = Netlist.cell_of nl i in
        let clk_to_q =
          match Cell.seq_timing cell with Some s -> s.Cell.clk_to_q_ps | None -> 0.
        in
        let drive = cell.Cell.drive_res_kohm *. Netlist.net_load_ff nl n in
        arrival.(n) <- (cfg.derate *. (clk_to_q +. drive)) +. Netlist.wire_delay_ps nl n
    | Netlist.From_cell _ -> ()
    | Netlist.Undriven -> arrival.(n) <- 0.
  done;
  let order = Netlist.topo_instances nl in
  let inst_delay = Array.make (max 1 (Netlist.num_instances nl)) 0. in
  Array.iter
    (fun i ->
      if not (Netlist.is_flop nl i) then begin
        incr visited;
        let cell = Netlist.cell_of nl i in
        let onet = Netlist.out_net nl i in
        let load = Netlist.net_load_ff nl onet in
        let d = cfg.derate *. Cell.delay_ps cell ~load_ff:load in
        inst_delay.(i) <- d;
        let worst = ref neg_infinity and worst_net = ref (-1) in
        Netlist.iter_fanins nl i (fun fnet ->
            incr edges;
            if arrival.(fnet) > !worst then begin
              worst := arrival.(fnet);
              worst_net := fnet
            end);
        let base = if !worst = neg_infinity then 0. else !worst in
        let a = base +. d +. Netlist.wire_delay_ps nl onet in
        if a > arrival.(onet) then begin
          arrival.(onet) <- a;
          pred.(onet) <- (if !worst_net >= 0 then Some (i, !worst_net) else Some (i, -1))
        end
      end)
    order;
  Array.iteri (fun n a -> if a = neg_infinity then arrival.(n) <- 0.) arrival;
  (* Endpoints: required margin against the clock period. *)
  let endpoints = ref [] in
  (* flop D pins *)
  List.iter
    (fun i ->
      let cell = Netlist.cell_of nl i in
      let d_net = Netlist.fanin nl i 0 in
      let margin = endpoint_margin cfg cell in
      endpoints :=
        (d_net, margin, Printf.sprintf "u%d/D (%s)" i cell.Cell.name) :: !endpoints)
    (Netlist.flops nl);
  for port = 0 to Netlist.num_outputs nl - 1 do
    endpoints :=
      (Netlist.output_net nl port, 0., Printf.sprintf "out %s" (Netlist.output_name nl port))
      :: !endpoints
  done;
  let min_period = ref 0. in
  let worst_endpoint = ref None in
  List.iter
    (fun (net, margin, ep_name) ->
      let need = arrival.(net) +. margin in
      if need > !min_period then begin
        min_period := need;
        worst_endpoint := Some (net, margin, ep_name)
      end)
    !endpoints;
  let period = match cfg.clock_period_ps with Some p -> p | None -> !min_period in
  (* Backward required-time pass. *)
  let required = Array.make (max 1 nnets) infinity in
  List.iter
    (fun (net, margin, _) -> required.(net) <- Float.min required.(net) (period -. margin))
    !endpoints;
  for k = Array.length order - 1 downto 0 do
    let i = order.(k) in
    if not (Netlist.is_flop nl i) then begin
      let onet = Netlist.out_net nl i in
      let r = required.(onet) -. inst_delay.(i) -. Netlist.wire_delay_ps nl onet in
      Netlist.iter_fanins nl i (fun fnet ->
          required.(fnet) <- Float.min required.(fnet) r)
    end
  done;
  (* Critical path trace from the worst endpoint. *)
  let critical =
    match !worst_endpoint with
    | None ->
        { steps = []; endpoint = "(no endpoints)"; required_ps = period; slack_ps = 0. }
    | Some (net, margin, ep_name) ->
        let rec trace net acc =
          let step_of ~what ~inst ~incr =
            { what; inst; net; arrival_ps = arrival.(net); incr_ps = incr }
          in
          match pred.(net) with
          | Some (i, from_net) when from_net >= 0 ->
              let cell = Netlist.cell_of nl i in
              let incr = arrival.(net) -. arrival.(from_net) in
              trace from_net (step_of ~what:(Printf.sprintf "u%d:%s" i cell.Cell.name) ~inst:(Some i) ~incr :: acc)
          | Some (i, _) ->
              let cell = Netlist.cell_of nl i in
              step_of ~what:(Printf.sprintf "u%d:%s" i cell.Cell.name) ~inst:(Some i) ~incr:arrival.(net) :: acc
          | None ->
              let what =
                match Netlist.driver_of nl net with
                | Netlist.From_input port -> Printf.sprintf "in %s" (Netlist.input_name nl port)
                | Netlist.From_cell i -> Printf.sprintf "u%d/Q" i
                | Netlist.From_const _ -> "const"
                | Netlist.Undriven -> "undriven"
              in
              step_of ~what ~inst:None ~incr:arrival.(net) :: acc
        in
        let steps = trace net [] in
        let required_ps = period -. margin in
        { steps; endpoint = ep_name; required_ps; slack_ps = required_ps -. arrival.(net) }
  in
  if Obs.enabled () then begin
    Obs.annotate
      [
        ("nets", Gap_obs.Json.Int nnets);
        ("instances", Gap_obs.Json.Int (Netlist.num_instances nl));
        ("endpoints", Gap_obs.Json.Int (List.length !endpoints));
      ];
    Obs.incr ~by:!visited "sta.visited_instances";
    Obs.incr ~by:!edges "sta.fanin_edges";
    Obs.incr ~by:(List.length !endpoints) "sta.endpoints";
    (* stage-resolved slack: logic depth of the worst path into each
       endpoint, walking the predecessor chain (it stops at launch points —
       inputs, constants, flop Q pins — so the count is gates per pipeline
       stage, not per whole design) *)
    let depth_memo = Array.make (max 1 nnets) (-1) in
    let rec logic_depth net =
      if depth_memo.(net) >= 0 then depth_memo.(net)
      else begin
        let d =
          match pred.(net) with
          | Some (_, from_net) when from_net >= 0 -> 1 + logic_depth from_net
          | Some (_, _) -> 1
          | None -> 0
        in
        depth_memo.(net) <- d;
        d
      end
    in
    (* pipeline-stage-resolved slack: which register-to-register stage each
       endpoint closes, so a report can say "stage 3 is the one that doesn't
       make timing" instead of one whole-design histogram *)
    let stage_of = reg_depths nl in
    List.iter
      (fun (net, margin, _) ->
        let slack = period -. margin -. arrival.(net) in
        Obs.observe ~bounds:slack_bounds_ps "sta.endpoint_slack_ps" slack;
        Obs.observe ~bounds:slack_bounds_ps
          ("sta.slack_by_depth." ^ depth_bucket (logic_depth net))
          slack;
        Obs.observe ~bounds:slack_bounds_ps
          ("sta.slack_by_stage." ^ stage_label (1 + stage_of net))
          slack)
      !endpoints
  end;
  {
    netlist_name = Netlist.name nl;
    arrival;
    required;
    min_period_ps = !min_period;
    period_ps = period;
    critical;
    endpoint_count = List.length !endpoints;
    clock_skew_ps = cfg.clock_skew_ps;
  }

let analyze ?(config = default_config) nl =
  Obs.span "sta.analyze" (fun () ->
      Gap_resilience.Fault.point "sta.analyze";
      let t = analyze_body config nl in
      (* Under supervision a NaN arrival (a corrupted parasitic upstream) is
         a typed numeric fault instead of a silently wrong report: NaN never
         survives the [need > min_period] maximization, so without this scan
         the corruption would vanish into a plausible-looking period.
         [neg_infinity] is the legitimate init value for unreached nets. *)
      if Gap_resilience.Supervisor.supervised () then
        Array.iteri
          (fun net a ->
            if Float.is_nan a then
              raise
                (Gap_resilience.Stage_error.Stage_failure
                   (Gap_resilience.Stage_error.Numeric_fault
                      {
                        stage = "sta.analyze";
                        what = Printf.sprintf "arrival_ps[net %d]" net;
                        value = a;
                      })))
          t.arrival;
      t)

let slack t net = t.required.(net) -. t.arrival.(net)

let slack_by_stage nl t =
  let depth_of = reg_depths nl in
  let tbl = Hashtbl.create 16 in
  let add net margin =
    let stage = 1 + depth_of net in
    let slack = t.period_ps -. margin -. t.arrival.(net) in
    let w, tot, n =
      try Hashtbl.find tbl stage with Not_found -> (infinity, 0., 0)
    in
    Hashtbl.replace tbl stage (Float.min w slack, tot +. slack, n + 1)
  in
  List.iter
    (fun i ->
      let cell = Netlist.cell_of nl i in
      let margin =
        match Cell.seq_timing cell with
        | Some seq -> seq.Cell.setup_ps +. t.clock_skew_ps
        | None -> 0.
      in
      add (Netlist.fanin nl i 0) margin)
    (Netlist.flops nl);
  for port = 0 to Netlist.num_outputs nl - 1 do
    add (Netlist.output_net nl port) 0.
  done;
  Hashtbl.fold
    (fun stage (w, tot, n) acc ->
      { stage; worst_ps = w; total_ps = tot; endpoints = n } :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.stage b.stage)

let net_criticality t net =
  let s = slack t net in
  if t.period_ps <= 0. then 0.
  else Float.max 0. (1. -. (Float.max 0. s /. t.period_ps))

let frequency_mhz t = Gap_util.Units.mhz_of_period_ps t.min_period_ps

let fo4_depth t ~lib =
  let fo4 = Gap_tech.Tech.fo4_ps (Gap_liberty.Library.tech lib) in
  t.min_period_ps /. fo4

let instance_on_critical_path t i =
  List.exists (fun s -> s.inst = Some i) t.critical.steps
