(** Static timing analysis.

    Single-clock, worst-case (late) analysis over the linear delay model:

    - timing sources are primary inputs (arriving at [input_arrival_ps]) and
      flop outputs (arriving at clk->q);
    - a combinational instance adds [cell delay under its output load] plus
      the output net's annotated wire delay;
    - timing endpoints are primary outputs and flop D pins (which must meet
      setup); the clock skew budget is charged once per register-to-register
      transfer, as in the paper's overhead accounting ("there is typically 10%
      clock skew or more for ASICs", Sec. 4.1).

    [min_period_ps] is the smallest period at which every endpoint meets
    timing; combinational designs report their critical delay through primary
    outputs the same way. *)

type config = {
  clock_period_ps : float option;  (** for slack reporting; [None] = use min period *)
  clock_skew_ps : float;
  input_arrival_ps : float;
  derate : float;
      (** process/voltage/temperature corner multiplier on every cell delay
          (1.0 = nominal). Library signoff at the slow corner corresponds to
          [1 /. Gap_variation.Model.signoff_speed] — see Sec. 8.2's
          "worst case speeds quoted by ASIC library estimates". *)
}

val default_config : config
val config_with_skew : float -> config

val depth_bucket : int -> string
(** Logic-depth band used for the depth-resolved slack histograms
    ([sta.slack_by_depth.<bucket>] through {!Gap_obs}): ["01_04"],
    ["05_08"], ["09_12"], ["13_16"], ["17_24"], ["25_up"]. *)

val slack_bounds_ps : float array
(** Bucket bounds shared by every slack histogram ([sta.endpoint_slack_ps],
    [sta.slack_by_depth.*], [sta.slack_by_stage.*]); [repro report
    --by-stage] uses them to reconstruct percentiles from emitted metrics. *)

val stage_label : int -> string
(** Pipeline-stage suffix of the [sta.slack_by_stage.<label>] histograms:
    [stage_label 3 = "s03"]. *)

type step = {
  what : string;  (** human-readable point, e.g. ["u12:NAND2_X2"] *)
  inst : int option;
  net : int;
  arrival_ps : float;
  incr_ps : float;
}

type path = {
  steps : step list;  (** source first *)
  endpoint : string;
  required_ps : float;
  slack_ps : float;
}

type t = {
  netlist_name : string;
  arrival : float array;  (** per net *)
  required : float array;  (** per net, against the analysis period *)
  min_period_ps : float;
  period_ps : float;  (** the period slacks are reported against *)
  critical : path;
  endpoint_count : int;
  clock_skew_ps : float;  (** the skew budget the analysis was run with *)
}

val analyze : ?config:config -> Gap_netlist.Netlist.t -> t

val slack : t -> int -> float
(** Per-net slack. *)

type stage_slack = {
  stage : int;  (** 1-based: stage 1 is primary inputs to the first flop rank *)
  worst_ps : float;
  total_ps : float;
  endpoints : int;
}

val slack_by_stage : Gap_netlist.Netlist.t -> t -> stage_slack list
(** Pipeline-stage-resolved slack, attributed by register-to-register stage
    boundaries (the structural register depth of each endpoint's data cone).
    Computed on demand from an existing analysis — the STA hot path is
    untouched. Stages are sorted ascending; the per-stage endpoint counts
    sum to [endpoint_count], and the minimum [worst_ps] over stages equals
    the whole-design worst slack. *)

val net_criticality : t -> int -> float
(** [1.] on the critical path, decreasing with slack; used by placement. *)

val frequency_mhz : t -> float
val fo4_depth : t -> lib:Gap_liberty.Library.t -> float
(** Logic depth of the critical path in technology FO4 units. *)

val instance_on_critical_path : t -> int -> bool
