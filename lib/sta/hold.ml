module Netlist = Gap_netlist.Netlist
module Cell = Gap_liberty.Cell

type violation = {
  flop : int;
  min_arrival_ps : float;
  required_ps : float;
  slack_ps : float;
}

type t = {
  min_arrival : float array;
  violations : violation list;
  worst_slack_ps : float;
  checked_endpoints : int;
}

let analyze ?(skew_ps = 0.) ?(input_min_arrival_ps = infinity) nl =
  let nnets = Netlist.num_nets nl in
  let min_arrival = Array.make (max 1 nnets) infinity in
  (* fast-corner sources: flop Q changes at min clk->q (intrinsic only);
     primary inputs are assumed hold-safe by the environment unless an
     explicit early-arrival is given *)
  for net = 0 to nnets - 1 do
    match Netlist.driver_of nl net with
    | Netlist.From_input _ -> min_arrival.(net) <- input_min_arrival_ps
    | Netlist.From_const _ -> () (* constants never change: +inf *)
    | Netlist.From_cell i when Netlist.is_flop nl i ->
        let cell = Netlist.cell_of nl i in
        let clkq =
          match Cell.seq_timing cell with Some s -> s.Cell.clk_to_q_ps | None -> 0.
        in
        min_arrival.(net) <- clkq
    | Netlist.From_cell _ | Netlist.Undriven -> ()
  done;
  let order = Netlist.topo_instances nl in
  Array.iter
    (fun i ->
      if not (Netlist.is_flop nl i) then begin
        let cell = Netlist.cell_of nl i in
        (* fast corner: unloaded intrinsic delay *)
        let d = cell.Cell.intrinsic_ps in
        let earliest =
          Array.fold_left
            (fun acc net -> Float.min acc min_arrival.(net))
            infinity (Netlist.fanins_of nl i)
        in
        let onet = Netlist.out_net nl i in
        if earliest +. d < min_arrival.(onet) then min_arrival.(onet) <- earliest +. d
      end)
    order;
  let violations = ref [] in
  let worst = ref infinity in
  let checked = ref 0 in
  List.iter
    (fun f ->
      let cell = Netlist.cell_of nl f in
      match Cell.seq_timing cell with
      | None -> ()
      | Some seq ->
          incr checked;
          let d_net = (Netlist.fanins_of nl f).(0) in
          let arrival = min_arrival.(d_net) in
          if arrival < infinity then begin
            let required = seq.Cell.hold_ps +. skew_ps in
            let slack = arrival -. required in
            if slack < !worst then worst := slack;
            if slack < 0. then
              violations :=
                { flop = f; min_arrival_ps = arrival; required_ps = required; slack_ps = slack }
                :: !violations
          end)
    (Netlist.flops nl);
  let violations =
    List.sort (fun a b -> Float.compare a.slack_ps b.slack_ps) !violations
  in
  {
    min_arrival;
    violations;
    worst_slack_ps = (if !worst = infinity then 0. else !worst);
    checked_endpoints = !checked;
  }

let violation_count t = List.length t.violations

let padding_needed_ps t =
  match t.violations with [] -> 0. | v :: _ -> -.v.slack_ps
