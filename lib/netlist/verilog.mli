(** Structural Verilog interchange for mapped netlists.

    The writer emits a single flat module using the library's cell names with
    conventional pin names ([A], [B], [C], [D] for data inputs in pin order,
    [Y] for the output, plus [CK] on sequential cells). The reader parses the
    same subset back against a library, so netlists can round-trip to other
    tools (or between sessions) and be re-timed here.

    Supported subset: one module; [input]/[output]/[wire] declarations
    (scalar only — buses are emitted bit-blasted); cell instances with named
    port connections; [1'b0]/[1'b1] constant connections; [//] comments. *)

val write : Netlist.t -> string
(** Verilog source of the netlist. Net and instance names are sanitized to
    Verilog identifiers; primary port names are preserved when legal. *)

val write_to_channel : out_channel -> Netlist.t -> unit

exception Parse_error of string * int  (** message, line number *)

val read : lib:Gap_liberty.Library.t -> string -> Netlist.t
(** Parses Verilog produced by {!write} (or equivalent hand-written
    structural code) into a netlist over [lib]. Cells are resolved by name;
    unknown cells, undeclared nets, or pin-count mismatches raise
    {!Parse_error}. *)

val pin_name : int -> string
(** The conventional name of data-input pin [i] in bijective base-26:
    A..Z, then AA, AB, ... so any cell arity has a name. Raises
    [Invalid_argument] on a negative index. *)

val pin_index : string -> int option
(** Inverse of {!pin_name}: [pin_index (pin_name i) = Some i]. [None] for
    strings that are not uppercase A-Z sequences. *)
