module Vec = Gap_util.Vec

type driver = From_input of int | From_cell of int | From_const of bool | Undriven
type sink = To_pin of int * int | To_output of int

type net = {
  mutable nname : string;
  mutable driver : driver;
  mutable sinks : sink list;
  mutable wcap : float;
  mutable wdelay : float;
}

type instance = {
  iname : string;
  mutable cell : Gap_liberty.Cell.t;
  mutable fanins : int array;
  mutable onet : int;
  (* location, unboxed so [place] allocates nothing on the annealer's hot
     path; [x_um]/[y_um] are meaningless while [placed] is false *)
  mutable x_um : float;
  mutable y_um : float;
  mutable placed : bool;
}

type t = {
  name : string;
  lib : Gap_liberty.Library.t;
  nets : net Vec.t;
  insts : instance Vec.t;
  ins : (string * int) Vec.t;
  outs : (string * int) Vec.t;
}

let create ~lib name =
  { name; lib; nets = Vec.create (); insts = Vec.create (); ins = Vec.create (); outs = Vec.create () }

let name t = t.name
let lib t = t.lib

let new_net t nname driver =
  Vec.push t.nets { nname; driver; sinks = []; wcap = 0.; wdelay = 0. }

let add_input t pname =
  let net = new_net t pname Undriven in
  let port = Vec.push t.ins (pname, net) in
  (Vec.get t.nets net).driver <- From_input port;
  net

let add_const t b = new_net t (if b then "const1" else "const0") (From_const b)

let add_net t nname = new_net t nname Undriven

let unsafe_set_driver t n d = (Vec.get t.nets n).driver <- d

let unsafe_set_fanins t i fanins =
  (Vec.get t.insts i).fanins <- Array.copy fanins

let add_cell t cell fanins =
  assert (Array.length fanins = cell.Gap_liberty.Cell.n_inputs);
  let inst_id = Vec.length t.insts in
  let iname = Printf.sprintf "u%d" inst_id in
  let onet = new_net t (Printf.sprintf "n%d" (Vec.length t.nets)) (From_cell inst_id) in
  let id =
    Vec.push t.insts
      { iname; cell; fanins = Array.copy fanins; onet; x_um = 0.; y_um = 0.; placed = false }
  in
  assert (id = inst_id);
  Array.iteri
    (fun pin net ->
      let n = Vec.get t.nets net in
      n.sinks <- To_pin (inst_id, pin) :: n.sinks)
    fanins;
  inst_id

let set_output t pname net =
  let port = Vec.push t.outs (pname, net) in
  let n = Vec.get t.nets net in
  n.sinks <- To_output port :: n.sinks;
  port

let num_nets t = Vec.length t.nets
let num_instances t = Vec.length t.insts
let num_inputs t = Vec.length t.ins
let num_outputs t = Vec.length t.outs
let input_net t i = snd (Vec.get t.ins i)
let input_name t i = fst (Vec.get t.ins i)
let output_net t i = snd (Vec.get t.outs i)
let output_name t i = fst (Vec.get t.outs i)
let cell_of t i = (Vec.get t.insts i).cell
let instance_name t i = (Vec.get t.insts i).iname
let fanins_of t i = Array.copy (Vec.get t.insts i).fanins
let num_fanins t i = Array.length (Vec.get t.insts i).fanins
let fanin t i k = (Vec.get t.insts i).fanins.(k)
let iter_fanins t i f = Array.iter f (Vec.get t.insts i).fanins
let out_net t i = (Vec.get t.insts i).onet
let driver_of t n = (Vec.get t.nets n).driver
let sinks_of t n = (Vec.get t.nets n).sinks
let net_name t n = (Vec.get t.nets n).nname
let is_flop t i = Gap_liberty.Cell.is_sequential (cell_of t i)

let flops t =
  let acc = ref [] in
  Vec.iteri (fun i inst -> if Gap_liberty.Cell.is_sequential inst.cell then acc := i :: !acc) t.insts;
  List.rev !acc

let combinational_instances t =
  let acc = ref [] in
  Vec.iteri (fun i inst -> if not (Gap_liberty.Cell.is_sequential inst.cell) then acc := i :: !acc) t.insts;
  List.rev !acc

let wire_cap_ff t n = (Vec.get t.nets n).wcap
let set_wire_cap_ff t n c = (Vec.get t.nets n).wcap <- c
let wire_delay_ps t n = (Vec.get t.nets n).wdelay
let set_wire_delay_ps t n d = (Vec.get t.nets n).wdelay <- d

let clear_parasitics t =
  Vec.iter
    (fun n ->
      n.wcap <- 0.;
      n.wdelay <- 0.)
    t.nets

let place t i ~x_um ~y_um =
  let inst = Vec.get t.insts i in
  inst.x_um <- x_um;
  inst.y_um <- y_um;
  inst.placed <- true

let location t i =
  let inst = Vec.get t.insts i in
  if inst.placed then Some (inst.x_um, inst.y_um) else None

let pin_load_ff t = function
  | To_output _ -> 0.
  | To_pin (inst, _) -> (cell_of t inst).Gap_liberty.Cell.input_cap_ff

let net_load_ff t n =
  let net = Vec.get t.nets n in
  List.fold_left (fun acc s -> acc +. pin_load_ff t s) net.wcap net.sinks

let replace_cell t i cell =
  let inst = Vec.get t.insts i in
  assert (cell.Gap_liberty.Cell.n_inputs = inst.cell.Gap_liberty.Cell.n_inputs);
  inst.cell <- cell

let rewire_pin t ~inst ~pin net =
  let instance = Vec.get t.insts inst in
  let old_net = instance.fanins.(pin) in
  let old = Vec.get t.nets old_net in
  old.sinks <- List.filter (fun s -> s <> To_pin (inst, pin)) old.sinks;
  instance.fanins.(pin) <- net;
  let n = Vec.get t.nets net in
  n.sinks <- To_pin (inst, pin) :: n.sinks

let rewire_output t port net =
  let pname, old_net = Vec.get t.outs port in
  let old = Vec.get t.nets old_net in
  old.sinks <- List.filter (fun s -> s <> To_output port) old.sinks;
  Vec.set t.outs port (pname, net);
  let n = Vec.get t.nets net in
  n.sinks <- To_output port :: n.sinks

let insert_on_sinks t cell ~net ~sinks =
  assert (cell.Gap_liberty.Cell.n_inputs = 1);
  let inst = add_cell t cell [| net |] in
  let new_net = out_net t inst in
  let move = function
    | To_pin (i, p) -> rewire_pin t ~inst:i ~pin:p new_net
    | To_output port -> rewire_output t port new_net
  in
  List.iter move sinks;
  inst

let area_um2 t =
  Vec.fold (fun acc inst -> acc +. inst.cell.Gap_liberty.Cell.area_um2) 0. t.insts

exception Combinational_cycle of int list

let () =
  Printexc.register_printer (function
    | Combinational_cycle insts ->
        Some
          (Printf.sprintf "Gap_netlist.Netlist.Combinational_cycle (%s)"
             (String.concat " -> " (List.map string_of_int insts)))
    | _ -> None)

(* Graph over instances; edges follow combinational paths only: a flop's
   output is a timing source, so no edge leaves a flop. Built straight into
   CSR form — no per-edge list cells — since this runs on every STA call. *)
let comb_csr t =
  let iter emit =
    Vec.iteri
      (fun i inst ->
        Array.iter
          (fun net ->
            match (Vec.get t.nets net).driver with
            | From_cell d when not (is_flop t d) -> emit d i 0.
            | From_cell _ | From_input _ | From_const _ | Undriven -> ())
          inst.fanins)
      t.insts
  in
  Gap_util.Digraph.Csr.of_edge_iter ~n:(num_instances t) iter

let combinational_cycle t =
  let csr = comb_csr t in
  match Gap_util.Digraph.Csr.topo_order csr with
  | Some _ -> None
  | None -> Gap_util.Digraph.Csr.find_cycle csr

let topo_instances t =
  let csr = comb_csr t in
  match Gap_util.Digraph.Csr.topo_order csr with
  | Some order -> order
  | None ->
      let cycle =
        match Gap_util.Digraph.Csr.find_cycle csr with Some c -> c | None -> []
      in
      raise (Combinational_cycle cycle)

let pp_stats ppf t =
  Format.fprintf ppf "%s: %d instances (%d flops), %d nets, %d in, %d out, %.0f um2"
    t.name (num_instances t)
    (List.length (flops t))
    (num_nets t) (num_inputs t) (num_outputs t) (area_um2 t)
