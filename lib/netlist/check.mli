(** Flow-wide design-rule checks on netlists.

    Every invariant the flow relies on is a named {e rule} producing typed
    {!diagnostic}s with a concrete witness (the offending net / instance /
    cycle, by id {e and} name) instead of a bare [failwith] somewhere deep in
    a kernel. Checks run in two groups:

    - {!check}: structural and electrical rules, valid on any netlist;
    - {!check_placed}: placement rules, meaningful only after the placement
      flow has back-annotated locations.

    On top of the pure checkers sits the {e stage-gate} machinery: the
    synthesis and placement stages call {!gate} at their boundaries
    (post-map, post-buffer, post-sizing, post-hold-fix, post-annotation).
    With no gate policy installed this is one word read per stage; under
    {!with_gates} each gate records its diagnostics (and per-rule [Gap_obs]
    counters), and in strict mode raises {!Gate_failed} on the first rule
    violation of severity [Error]. *)

type severity = Error | Warning | Info

type witness =
  | Net of { net : int; name : string }
  | Instance of { inst : int; name : string }
  | Pin of { inst : int; name : string; pin : int }
      (** an input pin of an instance *)
  | Port of { port : int; name : string }  (** a primary output port *)
  | Cycle of { insts : int list; names : string list }
      (** instance ids and names in edge order; the loop closes back to the
          first element *)
  | Measure of { net : int; name : string; value : float; limit : float }
      (** an electrical quantity against the limit it violates *)

type diagnostic = {
  rule : string;  (** stable rule id, e.g. ["comb-cycle"] *)
  severity : severity;
  witness : witness;
  detail : string;  (** human-readable one-liner *)
}

(** {1 Rule catalog}

    {v
    rule               severity  fires when
    -----------------  --------  ------------------------------------------
    undriven-net       Error     a net has no driver
    floating-input     Error     an instance input pin is fed by an
                                 undriven net (pinpoints the consumer)
    output-undriven    Error     a primary output is fed by an undriven net
    multi-driver       Error     two sources claim one net, or the net's
                                 driver annotation disagrees with the
                                 claiming source
    arity-mismatch     Error     an instance's fanin count differs from its
                                 cell's input count
    comb-cycle         Error     a purely combinational loop exists; the
                                 witness carries the cycle itself
    bad-parasitic      Error     a net's wire cap or wire delay is negative
                                 or NaN
    const-output       Warning   a primary output is tied to a constant
    max-fanout         Warning   a net has more sinks than
                                 [config.max_fanout]
    max-cap            Warning   a cell drives more than
                                 [config.max_electrical_effort] times its
                                 own input capacitance (library electrical
                                 rule)
    dangling-net       Info      a net has no sinks (usually benign)
    unplaced-instance  Error     (placed only) an instance has no location
    out-of-core        Error     (placed only) a location is negative or
                                 outside [config.die_um]
    v} *)

val rules : (string * severity * string) list
(** The full catalog as [(id, severity, description)], in report order. *)

type config = {
  max_fanout : int option;  (** [None] disables the [max-fanout] rule *)
  max_electrical_effort : float option;
      (** driver load limit as a multiple of the driving cell's input
          capacitance; [None] disables [max-cap] *)
  die_um : (float * float) option;
      (** core bounds for [out-of-core]; negative coordinates are flagged
          even when [None] *)
}

val default_config : config
(** [max_fanout = Some 64], [max_electrical_effort = Some 128.],
    [die_um = None]. *)

val check : ?config:config -> Netlist.t -> diagnostic list
(** Structural + electrical + parasitic rules, in deterministic order. *)

val check_placed : ?config:config -> Netlist.t -> diagnostic list
(** Placement rules ([unplaced-instance], [out-of-core]). *)

val errors : diagnostic list -> diagnostic list
(** Only the [Error]-severity diagnostics. *)

val is_clean : Netlist.t -> bool
(** No [Error] diagnostics from {!check} (warnings and info are allowed). *)

val severity_string : severity -> string
(** ["error"] / ["warning"] / ["info"]. *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit
val diagnostic_json : diagnostic -> Gap_obs.Json.t

(** {1 Stage gates} *)

type gate_report = {
  stage : string;  (** e.g. ["synth.map"] *)
  design : string;  (** netlist name *)
  diagnostics : diagnostic list;
}

val gate_report_json : gate_report -> Gap_obs.Json.t

exception Gate_failed of string * diagnostic list
(** Stage name and the [Error] diagnostics that tripped it (strict mode). *)

val gates_on : unit -> bool

val with_gates :
  ?strict:bool -> ?config:config -> (unit -> 'a) -> 'a * gate_report list
(** Run [f] with stage gates armed; returns its value and every gate report
    in execution order. With [~strict:true] the first gate whose diagnostics
    include an [Error] raises {!Gate_failed} instead. The previous policy is
    restored on exit (gates nest). *)

val gate : ?placed:bool -> stage:string -> Netlist.t -> unit
(** A stage boundary. No-op (one word read) unless {!with_gates} is active;
    otherwise runs {!check} (plus {!check_placed} with [~placed:true]),
    appends a {!gate_report}, and bumps [Gap_obs] counters
    [check.gates], [check.diagnostics] and [check.rule.<id>]. *)
