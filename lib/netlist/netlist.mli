(** Mutable gate-level netlist database.

    The netlist is the post-mapping representation: instances of library
    cells connected by nets, with primary inputs/outputs and a single
    implicit clock driving all flops. Sizing, buffering, placement
    back-annotation, and domino conversion all mutate this structure;
    {!Sta} reads it.

    Cells are single-output. Nets carry optional wire parasitics
    ([wire_cap_ff], [wire_delay_ps]) that default to zero and are filled in
    by the placement flow — pre-layout timing is the zero-wire-load model. *)

type t

type driver =
  | From_input of int  (** primary input port index *)
  | From_cell of int  (** instance id *)
  | From_const of bool
  | Undriven

type sink =
  | To_pin of int * int  (** instance id, input pin index *)
  | To_output of int  (** primary output port index *)

val create : lib:Gap_liberty.Library.t -> string -> t
val name : t -> string
val lib : t -> Gap_liberty.Library.t

(** {1 Construction} *)

val add_input : t -> string -> int
(** Declares a primary input; returns the net it drives. *)

val add_const : t -> bool -> int
(** A constant-driven net. *)

val add_net : t -> string -> int
(** A named, initially undriven net. Importers create these first and attach
    a driver later; {!Check} flags any still undriven when checking runs. *)

val unsafe_set_driver : t -> int -> driver -> unit
(** Overwrite a net's driver annotation without touching the claimed
    source's own bookkeeping. This is a low-level escape hatch for importers
    and for injecting defects in checker tests: it can make the netlist
    inconsistent (e.g. a driver annotation pointing at an instance whose
    output is a different net), which {!Check} reports as [multi-driver]. *)

val unsafe_set_fanins : t -> int -> int array -> unit
(** Replace an instance's fanin array (copied) without updating any sink
    list and without arity validation. Same caveats as
    {!unsafe_set_driver}; {!Check} reports arity mismatches. *)

val add_cell : t -> Gap_liberty.Cell.t -> int array -> int
(** [add_cell t cell fanins] instantiates [cell] with input pin [i] tied to
    net [fanins.(i)]; returns the instance id. The output net is created
    alongside and can be fetched with {!out_net}. [fanins] length must equal
    the cell's input count. *)

val set_output : t -> string -> int -> int
(** Declares a primary output fed by the given net; returns the port index. *)

(** {1 Topology accessors} *)

val num_nets : t -> int
val num_instances : t -> int
val num_inputs : t -> int
val num_outputs : t -> int
val input_net : t -> int -> int
val input_name : t -> int -> string
val output_net : t -> int -> int
val output_name : t -> int -> string
val cell_of : t -> int -> Gap_liberty.Cell.t

val instance_name : t -> int -> string
(** The instance's stable name ([u<id>]); used in reports and witnesses. *)

val fanins_of : t -> int -> int array
(** Fresh copy of the fanin-net array; safe to mutate. Hot loops should use
    the non-allocating {!num_fanins}/{!fanin}/{!iter_fanins} instead. *)

val num_fanins : t -> int -> int
val fanin : t -> int -> int -> int
(** [fanin t i k] is the net driving pin [k] of instance [i], without copying
    the fanin array. *)

val iter_fanins : t -> int -> (int -> unit) -> unit
(** [iter_fanins t i f] applies [f] to each fanin net of [i] in pin order,
    without allocating. *)

val out_net : t -> int -> int
val driver_of : t -> int -> driver
val sinks_of : t -> int -> sink list
val net_name : t -> int -> string

val is_flop : t -> int -> bool
val flops : t -> int list
val combinational_instances : t -> int list

(** {1 Parasitics and placement} *)

val wire_cap_ff : t -> int -> float
val set_wire_cap_ff : t -> int -> float -> unit
val wire_delay_ps : t -> int -> float
val set_wire_delay_ps : t -> int -> float -> unit
val clear_parasitics : t -> unit

val place : t -> int -> x_um:float -> y_um:float -> unit
val location : t -> int -> (float * float) option

(** {1 Loads} *)

val pin_load_ff : t -> sink -> float
(** Input capacitance presented by a sink ([0.] for primary outputs, which we
    treat as ideal). *)

val net_load_ff : t -> int -> float
(** Total load a driver sees: sink pin caps + wire cap. *)

(** {1 Rewrites (used by sizing / buffering / domino)} *)

val replace_cell : t -> int -> Gap_liberty.Cell.t -> unit
(** Swap the library cell of an instance; input count must match. *)

val rewire_pin : t -> inst:int -> pin:int -> int -> unit
(** Reconnect one input pin to another net. *)

val rewire_output : t -> int -> int -> unit
(** [rewire_output t port net] repoints a primary output. *)

val insert_on_sinks : t -> Gap_liberty.Cell.t -> net:int -> sinks:sink list -> int
(** Insert a (single-input) cell driven by [net] and move the given sinks of
    [net] onto the new cell's output net; returns the new instance id. This is
    the fanout-buffering primitive. *)

(** {1 Aggregates} *)

val area_um2 : t -> float

exception Combinational_cycle of int list
(** A purely combinational loop; the payload is one witness cycle as
    instance ids in edge order [i0 -> i1 -> ... -> i0]. *)

val topo_instances : t -> int array
(** Combinational-topological order: an instance appears after the drivers of
    all its inputs, except that flop outputs are treated as sources (cycles
    through registers are fine; purely combinational cycles raise
    {!Combinational_cycle} carrying the offending instance path). *)

val combinational_cycle : t -> int list option
(** The witness cycle {!topo_instances} would raise with, or [None] when the
    combinational graph is acyclic. Never raises; used by {!Check}. *)

val pp_stats : Format.formatter -> t -> unit
