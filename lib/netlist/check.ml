module Json = Gap_obs.Json
module Obs = Gap_obs.Obs

type severity = Error | Warning | Info

type witness =
  | Net of { net : int; name : string }
  | Instance of { inst : int; name : string }
  | Pin of { inst : int; name : string; pin : int }
  | Port of { port : int; name : string }
  | Cycle of { insts : int list; names : string list }
  | Measure of { net : int; name : string; value : float; limit : float }

type diagnostic = {
  rule : string;
  severity : severity;
  witness : witness;
  detail : string;
}

let rules =
  [
    ("undriven-net", Error, "net has no driver");
    ("floating-input", Error, "instance input pin fed by an undriven net");
    ("output-undriven", Error, "primary output fed by an undriven net");
    ("multi-driver", Error, "conflicting or inconsistent net drivers");
    ("arity-mismatch", Error, "instance fanin count differs from cell arity");
    ("comb-cycle", Error, "purely combinational loop");
    ("bad-parasitic", Error, "negative or NaN wire parasitic");
    ("const-output", Warning, "primary output tied to a constant");
    ("max-fanout", Warning, "net sink count exceeds the fanout limit");
    ("max-cap", Warning, "driver load exceeds the library electrical limit");
    ("dangling-net", Info, "net has no sinks");
    ("unplaced-instance", Error, "instance has no location after placement");
    ("out-of-core", Error, "placed location outside the core area");
  ]

type config = {
  max_fanout : int option;
  max_electrical_effort : float option;
  die_um : (float * float) option;
}

let default_config =
  { max_fanout = Some 64; max_electrical_effort = Some 128.; die_um = None }

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* How one net can be claimed as driven. Instances claim their output net,
   input ports claim their port net; constants exist only in the driver
   annotation itself. *)
type source = Src_cell of int | Src_input of int | Src_const of bool

let check ?(config = default_config) t =
  let acc = ref [] in
  let emit rule severity witness detail =
    acc := { rule; severity; witness; detail } :: !acc
  in
  let net_witness n = Net { net = n; name = Netlist.net_name t n } in
  let describe_source = function
    | Src_cell i ->
        Printf.sprintf "instance %s (id %d)" (Netlist.instance_name t i) i
    | Src_input p ->
        Printf.sprintf "input %s (port %d)" (Netlist.input_name t p) p
    | Src_const b -> Printf.sprintf "constant %d" (if b then 1 else 0)
  in
  (* claimed sources per net *)
  let claims = Array.make (max 1 (Netlist.num_nets t)) [] in
  for i = Netlist.num_instances t - 1 downto 0 do
    let n = Netlist.out_net t i in
    claims.(n) <- Src_cell i :: claims.(n)
  done;
  for p = Netlist.num_inputs t - 1 downto 0 do
    let n = Netlist.input_net t p in
    claims.(n) <- Src_input p :: claims.(n)
  done;
  for n = 0 to Netlist.num_nets t - 1 do
    let driver = Netlist.driver_of t n in
    let sources =
      match driver with From_const b -> claims.(n) @ [ Src_const b ] | _ -> claims.(n)
    in
    (match driver with
    | Netlist.Undriven ->
        if sources = [] then
          emit "undriven-net" Error (net_witness n)
            (Printf.sprintf "net %s (id %d) has no driver"
               (Netlist.net_name t n) n)
    | Netlist.From_input _ | Netlist.From_cell _ | Netlist.From_const _ -> ());
    (* multiple or inconsistent drivers *)
    (match sources with
    | [] -> (
        (* nothing claims this net, but the annotation may still point at a
           source — a stale annotation from a low-level rewrite *)
        match driver with
        | Netlist.From_cell i ->
            emit "multi-driver" Error (net_witness n)
              (Printf.sprintf
                 "net %s (id %d) annotated as driven by %s, whose output is \
                  net %d"
                 (Netlist.net_name t n) n
                 (describe_source (Src_cell i))
                 (Netlist.out_net t i))
        | Netlist.From_input p ->
            emit "multi-driver" Error (net_witness n)
              (Printf.sprintf
                 "net %s (id %d) annotated as driven by %s, whose net is %d"
                 (Netlist.net_name t n) n
                 (describe_source (Src_input p))
                 (Netlist.input_net t p))
        | Netlist.Undriven | Netlist.From_const _ -> ())
    | [ single ] ->
        let agrees =
          match (driver, single) with
          | Netlist.From_cell i, Src_cell j -> i = j
          | Netlist.From_input p, Src_input q -> p = q
          | Netlist.From_const _, Src_const _ -> true
          | _ -> false
        in
        if not agrees then
          emit "multi-driver" Error (net_witness n)
            (Printf.sprintf
               "net %s (id %d) is driven by %s but annotated otherwise"
               (Netlist.net_name t n) n (describe_source single))
    | many ->
        emit "multi-driver" Error (net_witness n)
          (Printf.sprintf "net %s (id %d) driven by %d sources: %s"
             (Netlist.net_name t n) n (List.length many)
             (String.concat ", " (List.map describe_source many))));
    (* parasitics *)
    let wcap = Netlist.wire_cap_ff t n and wdelay = Netlist.wire_delay_ps t n in
    let bad v = Float.is_nan v || v < 0. in
    if bad wcap || bad wdelay then
      emit "bad-parasitic" Error
        (Measure
           {
             net = n;
             name = Netlist.net_name t n;
             value = (if bad wcap then wcap else wdelay);
             limit = 0.;
           })
        (Printf.sprintf
           "net %s (id %d) has wire cap %g fF, wire delay %g ps"
           (Netlist.net_name t n) n wcap wdelay);
    (* electrical rules *)
    let sinks = Netlist.sinks_of t n in
    (match config.max_fanout with
    | Some limit when List.length sinks > limit ->
        emit "max-fanout" Warning
          (Measure
             {
               net = n;
               name = Netlist.net_name t n;
               value = float_of_int (List.length sinks);
               limit = float_of_int limit;
             })
          (Printf.sprintf "net %s (id %d) has %d sinks (limit %d)"
             (Netlist.net_name t n) n (List.length sinks) limit)
    | Some _ | None -> ());
    (match (config.max_electrical_effort, driver) with
    | Some h_max, Netlist.From_cell i ->
        let cin = (Netlist.cell_of t i).Gap_liberty.Cell.input_cap_ff in
        if cin > 0. then begin
          let load = Netlist.net_load_ff t n in
          let limit = h_max *. cin in
          if load > limit then
            emit "max-cap" Warning
              (Measure
                 { net = n; name = Netlist.net_name t n; value = load; limit })
              (Printf.sprintf
                 "net %s (id %d): %s drives %.1f fF, limit %.1f fF (h = %g)"
                 (Netlist.net_name t n) n
                 (describe_source (Src_cell i))
                 load limit h_max)
        end
    | _ -> ());
    if sinks = [] then
      emit "dangling-net" Info (net_witness n)
        (Printf.sprintf "net %s (id %d) has no sinks" (Netlist.net_name t n) n)
  done;
  (* per-instance rules *)
  for i = 0 to Netlist.num_instances t - 1 do
    let cell = Netlist.cell_of t i in
    let arity = cell.Gap_liberty.Cell.n_inputs in
    let fanins = Netlist.num_fanins t i in
    if fanins <> arity then
      emit "arity-mismatch" Error
        (Instance { inst = i; name = Netlist.instance_name t i })
        (Printf.sprintf "instance %s (id %d): %d fanins but cell %s has %d inputs"
           (Netlist.instance_name t i) i fanins cell.Gap_liberty.Cell.name arity);
    for pin = 0 to fanins - 1 do
      match Netlist.driver_of t (Netlist.fanin t i pin) with
      | Netlist.Undriven ->
          emit "floating-input" Error
            (Pin { inst = i; name = Netlist.instance_name t i; pin })
            (Printf.sprintf "instance %s (id %d) pin %d floats on undriven net %d"
               (Netlist.instance_name t i) i pin (Netlist.fanin t i pin))
      | Netlist.From_input _ | Netlist.From_cell _ | Netlist.From_const _ -> ()
    done
  done;
  (* primary outputs *)
  for port = 0 to Netlist.num_outputs t - 1 do
    let witness = Port { port; name = Netlist.output_name t port } in
    match Netlist.driver_of t (Netlist.output_net t port) with
    | Netlist.Undriven ->
        emit "output-undriven" Error witness
          (Printf.sprintf "primary output %s (port %d) fed by undriven net %d"
             (Netlist.output_name t port) port (Netlist.output_net t port))
    | Netlist.From_const b ->
        emit "const-output" Warning witness
          (Printf.sprintf "primary output %s (port %d) tied to constant %d"
             (Netlist.output_name t port) port (if b then 1 else 0))
    | Netlist.From_input _ | Netlist.From_cell _ -> ()
  done;
  (* combinational cycle, with the loop itself as witness *)
  (match Netlist.combinational_cycle t with
  | None -> ()
  | Some insts ->
      let names = List.map (Netlist.instance_name t) insts in
      emit "comb-cycle" Error
        (Cycle { insts; names })
        (Printf.sprintf "combinational cycle: %s -> %s"
           (String.concat " -> " names)
           (match names with first :: _ -> first | [] -> "?")));
  List.rev !acc

let check_placed ?(config = default_config) t =
  let acc = ref [] in
  for i = 0 to Netlist.num_instances t - 1 do
    let witness = Instance { inst = i; name = Netlist.instance_name t i } in
    match Netlist.location t i with
    | None ->
        acc :=
          {
            rule = "unplaced-instance";
            severity = Error;
            witness;
            detail =
              Printf.sprintf "instance %s (id %d) has no location"
                (Netlist.instance_name t i) i;
          }
          :: !acc
    | Some (x, y) ->
        let out_low = x < 0. || y < 0. in
        let out_high =
          match config.die_um with
          | Some (w, h) -> x > w || y > h
          | None -> false
        in
        if out_low || out_high then
          acc :=
            {
              rule = "out-of-core";
              severity = Error;
              witness;
              detail =
                (match config.die_um with
                | Some (w, h) ->
                    Printf.sprintf
                      "instance %s (id %d) at (%.2f, %.2f) outside core \
                       (%.2f x %.2f)"
                      (Netlist.instance_name t i) i x y w h
                | None ->
                    Printf.sprintf
                      "instance %s (id %d) at negative location (%.2f, %.2f)"
                      (Netlist.instance_name t i) i x y);
            }
            :: !acc
  done;
  List.rev !acc

let errors ds = List.filter (fun d -> d.severity = Error) ds
let is_clean t = errors (check t) = []

let pp_diagnostic ppf d =
  Format.fprintf ppf "[%s] %s: %s" (severity_string d.severity) d.rule d.detail

let witness_json = function
  | Net { net; name } ->
      Json.Obj [ ("kind", Json.Str "net"); ("id", Json.Int net); ("name", Json.Str name) ]
  | Instance { inst; name } ->
      Json.Obj
        [ ("kind", Json.Str "instance"); ("id", Json.Int inst); ("name", Json.Str name) ]
  | Pin { inst; name; pin } ->
      Json.Obj
        [
          ("kind", Json.Str "pin");
          ("id", Json.Int inst);
          ("name", Json.Str name);
          ("pin", Json.Int pin);
        ]
  | Port { port; name } ->
      Json.Obj
        [ ("kind", Json.Str "port"); ("id", Json.Int port); ("name", Json.Str name) ]
  | Cycle { insts; names } ->
      Json.Obj
        [
          ("kind", Json.Str "cycle");
          ("instances", Json.List (List.map (fun i -> Json.Int i) insts));
          ("path", Json.List (List.map (fun s -> Json.Str s) names));
        ]
  | Measure { net; name; value; limit } ->
      Json.Obj
        [
          ("kind", Json.Str "measure");
          ("id", Json.Int net);
          ("name", Json.Str name);
          ("value", Json.Float value);
          ("limit", Json.Float limit);
        ]

let diagnostic_json d =
  Json.Obj
    [
      ("rule", Json.Str d.rule);
      ("severity", Json.Str (severity_string d.severity));
      ("detail", Json.Str d.detail);
      ("witness", witness_json d.witness);
    ]

(* ---- stage gates -------------------------------------------------------- *)

type gate_report = {
  stage : string;
  design : string;
  diagnostics : diagnostic list;
}

let gate_report_json r =
  Json.Obj
    [
      ("stage", Json.Str r.stage);
      ("design", Json.Str r.design);
      ("diagnostics", Json.List (List.map diagnostic_json r.diagnostics));
    ]

exception Gate_failed of string * diagnostic list

let () =
  Printexc.register_printer (function
    | Gate_failed (stage, errs) ->
        Some
          (Printf.sprintf "Gap_netlist.Check.Gate_failed (%s: %s)" stage
             (String.concat "; " (List.map (fun d -> d.rule ^ ": " ^ d.detail) errs)))
    | _ -> None)

type gate_state = {
  g_config : config;
  strict : bool;
  mutable log : gate_report list;  (** reverse execution order *)
}

let gate_state : gate_state option ref = ref None
let gates_on () = Option.is_some !gate_state

let with_gates ?(strict = false) ?(config = default_config) f =
  let st = { g_config = config; strict; log = [] } in
  let prev = !gate_state in
  gate_state := Some st;
  Fun.protect
    ~finally:(fun () -> gate_state := prev)
    (fun () ->
      let v = f () in
      (v, List.rev st.log))

let gate ?(placed = false) ~stage t =
  match !gate_state with
  | None -> ()
  | Some st ->
      let ds =
        check ~config:st.g_config t
        @ (if placed then check_placed ~config:st.g_config t else [])
      in
      st.log <- { stage; design = Netlist.name t; diagnostics = ds } :: st.log;
      Obs.incr "check.gates";
      Obs.incr ~by:(List.length ds) "check.diagnostics";
      List.iter (fun d -> Obs.incr ("check.rule." ^ d.rule)) ds;
      if st.strict then
        match errors ds with
        | [] -> ()
        | errs -> raise (Gate_failed (stage, errs))

(* Teach the resilience supervisor's exception classifier about this
   module's typed failures, so a gate tripping inside a supervised stage
   surfaces as a [Stage_error.Netlist_defect] instead of an unclassified
   exception. The first Error diagnostic is the representative witness. *)
let () =
  Gap_resilience.Stage_error.register_classifier (fun ~stage e ->
      match e with
      | Gate_failed (gate_stage, errs) ->
          let rule, detail =
            match errs with
            | d :: _ -> (d.rule, Format.asprintf "%a" pp_diagnostic d)
            | [] -> ("gate", "gate failed with no diagnostics")
          in
          ignore stage;
          Some
            (Gap_resilience.Stage_error.Netlist_defect
               { stage = gate_stage; rule; detail })
      | Netlist.Combinational_cycle insts ->
          Some
            (Gap_resilience.Stage_error.Netlist_defect
               {
                 stage;
                 rule = "comb-cycle";
                 detail =
                   Printf.sprintf "combinational cycle through instances [%s]"
                     (String.concat "; " (List.map string_of_int insts));
               })
      | _ -> None)
