type t = { factor_name : string; paper_max : float; modeled : float; how : string }

let tech = Gap_tech.Tech.asic_025um

let memo f =
  let cache = ref None in
  fun () ->
    match !cache with
    | Some v -> v
    | None ->
        let v = f () in
        cache := Some v;
        v

let microarchitecture =
  memo (fun () ->
      (* Unpipelined ASIC datapath: 44 FO4 of logic + one register boundary.
         Custom restructuring: the same work split over 4 stages with custom
         latch overhead, as in the IBM PPC. Same FO4 so only
         micro-architecture moves. *)
      let asic = { Gap_uarch.Pipeline_model.asic_default with fo4_ps = 90. } in
      let custom =
        { Gap_uarch.Pipeline_model.custom_default with fo4_ps = 90. (* isolate uarch *) }
      in
      let f_unpiped = Gap_uarch.Pipeline_model.frequency_mhz asic ~stages:1 in
      let f_custom = Gap_uarch.Pipeline_model.frequency_mhz custom ~stages:4 in
      {
        factor_name = "micro-architecture (pipelining, logic levels)";
        paper_max = 4.00;
        modeled = f_custom /. f_unpiped;
        how = "Pipeline_model: 44 FO4 unpipelined ASIC vs 4-stage custom-latch pipeline";
      })

let floorplanning =
  memo (fun () ->
      let speedup =
        Gap_interconnect.Bacpac.floorplan_speedup ~tech ~logic_depth_fo4:44.
          ~chip:Gap_interconnect.Bacpac.default_chip
      in
      {
        factor_name = "floorplanning and placement";
        paper_max = 1.25;
        modeled = speedup;
        how = "Bacpac: cross-chip vs module-local critical path, 100 mm^2 die";
      })

let sizing_and_circuit =
  memo (fun () ->
      (* Post-layout sizing, the scenario of Sec. 6.2: initial synthesis picks
         drives from wire-load estimates; after placement, TILOS resizes
         against the real wire parasitics. Wire loads make drive strength
         matter (uniformly scaled gates are load-insensitive under logical
         effort). *)
      let g = Gap_datapath.Adders.cla_adder 16 in
      let rich_lib = Gap_liberty.Libgen.(make tech rich) in
      let effort = { Gap_synth.Flow.default_effort with tilos_moves = 0 } in
      let outcome = Gap_synth.Flow.run ~lib:rich_lib ~effort ~name:"cla16" g in
      let nl = outcome.Gap_synth.Flow.netlist in
      ignore (Gap_place.Placer.place nl);
      Gap_place.Wire_estimate.annotate nl;
      let before = (Gap_sta.Sta.analyze nl).Gap_sta.Sta.min_period_ps in
      ignore (Gap_synth.Sizing.tilos nl);
      let after = (Gap_sta.Sta.analyze nl).Gap_sta.Sta.min_period_ps in
      {
        factor_name = "transistor/wire sizing, circuit design";
        paper_max = 1.25;
        modeled = before /. after;
        how =
          "Flow: placed 16-bit CLA with wire loads, synthesis-estimated drives \
           vs post-layout TILOS resizing";
      })

let dynamic_logic =
  memo (fun () ->
      (* Max contribution: the circuit classes domino favors (parallel-prefix
         adder carry trees, control cones), with the domino netlist given the
         same back-end effort (buffering + sizing) as the static flow. *)
      let rich_lib = Gap_liberty.Libgen.(make tech rich) in
      let domino_lib = Gap_liberty.Libgen.(make tech domino) in
      let effort = { Gap_synth.Flow.default_effort with tilos_moves = 0 } in
      let ratio g =
        let static = Gap_synth.Flow.run ~lib:rich_lib ~effort g in
        let dom = Gap_domino.Dualrail.map_aig ~domino_lib g in
        ignore (Gap_synth.Buffering.buffer_fanout dom);
        ignore (Gap_synth.Sizing.tilos dom);
        static.Gap_synth.Flow.sta.Gap_sta.Sta.min_period_ps
        /. (Gap_sta.Sta.analyze dom).Gap_sta.Sta.min_period_ps
      in
      let adder = ratio (Gap_datapath.Adders.kogge_stone_adder 32) in
      let control =
        ratio (Gap_datapath.Random_logic.generate ~inputs:48 ~outputs:24 ~gates:1000 ())
      in
      {
        factor_name = "dynamic logic on critical paths";
        paper_max = 1.50;
        modeled = sqrt (adder *. control);
        how =
          "Dualrail+sizing: 32-bit Kogge-Stone adder and a control cone, static \
           flow vs dual-rail domino (geomean)";
      })

let process_variation =
  memo (fun () ->
      let nominal = 250. in
      let custom_model =
        Gap_variation.Model.make ~fab_mean:Gap_variation.Model.best_fab
          Gap_variation.Model.mature
      in
      let asic_model =
        Gap_variation.Model.make ~fab_mean:Gap_variation.Model.slow_fab
          Gap_variation.Model.mature
      in
      let custom =
        Gap_variation.Montecarlo.simulate ~model:custom_model ~nominal_mhz:nominal
          ~dies:8000 ()
      in
      let asic =
        Gap_variation.Montecarlo.simulate ~model:asic_model ~nominal_mhz:nominal
          ~dies:8000 ()
      in
      {
        factor_name = "process variation and accessibility";
        paper_max = 1.90;
        modeled = Gap_variation.Binning.custom_best_vs_asic_worst ~custom ~asic;
        how = "Monte Carlo: best-fab p99 bin vs slow-fab worst-case signoff";
      })

let all () =
  [
    microarchitecture ();
    floorplanning ();
    sizing_and_circuit ();
    dynamic_logic ();
    process_variation ();
  ]

let ranked factors =
  List.sort (fun a b -> Float.compare b.modeled a.modeled) factors

let composite factors = List.fold_left (fun acc f -> acc *. f.modeled) 1. factors
let paper_composite factors = List.fold_left (fun acc f -> acc *. f.paper_max) 1. factors
