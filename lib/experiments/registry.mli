(** All reproduced experiments, in paper order. *)

val all : (string * string * (unit -> Exp.result)) list
(** The paper's claims, E1..E10: (id, short title, runner). *)

val extensions : (string * string * (unit -> Exp.result)) list
(** Our extensions beyond the paper (X1..): power, economics, ablations. *)

val find : string -> (unit -> Exp.result) option
(** Case-insensitive lookup by id (e.g. "e3"). *)

(** {1 Tunable experiments}

    E3 (pipeline depth/skew/overheads), E4 (Leff, cycle FO4, ALU width) and
    E9 (dies, nominal frequency, sigma scale) take typed parameter records.
    Omitting [params] uses each module's [default], and every other entry
    point ({!find}, {!run_all}) runs at defaults — so default output is
    byte-identical to the unparameterized experiments. *)

val run_e3 : ?params:E3_pipelining.params -> unit -> Exp.result
val run_e4 : ?params:E4_fo4_depth.params -> unit -> Exp.result
val run_e9 : ?params:E9_process_variation.params -> unit -> Exp.result

val run_all : unit -> Exp.result list
val run_extensions : unit -> Exp.result list
val summary : Exp.result list -> string
(** Pass/checkable counts per experiment plus a total line. *)
