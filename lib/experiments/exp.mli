(** Shared experiment plumbing: every reproduced table/figure is an
    {!result} of labeled rows carrying the paper's value next to ours, with
    an in-range verdict where the paper states a checkable range. *)

type row = {
  label : string;
  paper : string;  (** the paper's claim, as printed *)
  measured : string;
  verdict : verdict;
}

and verdict =
  | Pass  (** measured falls in the paper's stated range *)
  | Near of string  (** outside but close; explanation attached *)
  | Info  (** context row, nothing to check *)

type result = {
  id : string;
  title : string;
  section : string;  (** paper section the claim comes from *)
  rows : row list;
  notes : string list;
}

val row : ?verdict:verdict -> label:string -> paper:string -> measured:string -> unit -> row
val check : float -> lo:float -> hi:float -> verdict
(** [Pass] when within [lo..hi] (inclusive, with 2% slop), else [Near]
    explaining the miss. *)

val ratio : float -> string
val pct : float -> string
val mhz : float -> string
val ps : float -> string
val f1 : float -> string
(** one decimal *)

val render : result -> string
val print : result -> unit

val to_csv : result -> string
(** One CSV line per row: [id,label,paper,measured,verdict]; quotes are
    escaped by doubling. Useful for collecting all tables into a sheet. *)

val passes : result -> int * int
(** (passing rows, checkable rows). *)

val observed : string -> (unit -> result) -> unit -> result
(** [observed id run] wraps an experiment body so it executes under a
    [Gap_obs] root span named ["exp." ^ id], with every span, counter and
    event recorded below tagged by the owning experiment id. With the no-op
    sink installed this adds two function calls and nothing else. *)
