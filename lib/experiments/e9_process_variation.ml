(** E9 (Sec. 8): process variation and accessibility.

    Monte Carlo over the hierarchical variation model, plus the binning
    arithmetic: typical-vs-worst-case, top-bin gain, fab-to-fab span,
    speed-test gain, new-process spread, and the maturity anchors (Intel 856
    shrink, library updates). *)

module V = Gap_variation.Model
module MC = Gap_variation.Montecarlo
module B = Gap_variation.Binning

type params = {
  dies : int;  (** Monte Carlo sample count per arm *)
  nominal_mhz : float;  (** nominal design frequency *)
  sigma_scale : float;  (** multiplier on every sigma of the variation model *)
}

let default = { dies = 20000; nominal_mhz = 250.; sigma_scale = 1.0 }

let scale_sigmas k (s : V.sigmas) =
  {
    V.lot = s.V.lot *. k;
    wafer = s.V.wafer *. k;
    die = s.V.die *. k;
    intra = s.V.intra *. k;
  }

let run_with p =
  let dies = p.dies in
  let nominal = p.nominal_mhz in
  let mature = scale_sigmas p.sigma_scale V.mature in
  let new_process = scale_sigmas p.sigma_scale V.new_process in
  let typical = MC.simulate ~model:(V.make ~fab_mean:V.typical_fab mature) ~nominal_mhz:nominal ~dies () in
  let slow_fab = MC.simulate ~seed:7L ~model:(V.make ~fab_mean:V.slow_fab mature) ~nominal_mhz:nominal ~dies () in
  let best_fab = MC.simulate ~seed:9L ~model:(V.make ~fab_mean:V.best_fab mature) ~nominal_mhz:nominal ~dies () in
  let new_proc = MC.simulate ~seed:11L ~model:(V.make new_process) ~nominal_mhz:nominal ~dies () in
  let typ_vs_worst = MC.percentile typical 50. /. (nominal *. V.signoff_speed (V.make ~fab_mean:V.slow_fab mature)) in
  let top_bin = B.top_bin_vs_typical new_proc in
  let custom_vs_asic = B.custom_best_vs_asic_worst ~custom:best_fab ~asic:slow_fab in
  let test_gain = B.speed_test_gain typical in
  let shrink = Gap_variation.Maturity.shrink_speed_gain ~linear_shrink:0.05 in
  let spread = Gap_variation.Maturity.initial_spread in
  let top_bin_yield = MC.fraction_above new_proc (MC.percentile new_proc 99.) in
  {
    Exp.id = "E9";
    title = "process variation, binning, and fab access";
    section = "Sec. 8";
    rows =
      [
        Exp.row
          ~verdict:(Exp.check typ_vs_worst ~lo:1.6 ~hi:1.7)
          ~label:"typical silicon vs worst-case rating (slow fab)" ~paper:"60-70% faster"
          ~measured:(Exp.ratio typ_vs_worst) ();
        Exp.row
          ~verdict:(Exp.check top_bin ~lo:1.2 ~hi:1.4)
          ~label:"fastest bins vs typical (new process)" ~paper:"20-40% faster"
          ~measured:(Exp.ratio top_bin) ();
        Exp.row
          ~verdict:(Exp.check top_bin_yield ~lo:0.0 ~hi:0.05)
          ~label:"yield of that top bin" ~paper:"without sufficient yield"
          ~measured:(Exp.pct top_bin_yield) ();
        Exp.row
          ~verdict:(Exp.check custom_vs_asic ~lo:1.7 ~hi:2.2)
          ~label:"fastest custom (best fab) vs ASIC worst-case (slow fab)"
          ~paper:"~90% faster"
          ~measured:(Exp.ratio custom_vs_asic) ();
        Exp.row
          ~verdict:(Exp.check B.fab_to_fab_span ~lo:0.20 ~hi:0.25)
          ~label:"same design across foundries" ~paper:"20-25%"
          ~measured:(Exp.pct B.fab_to_fab_span) ();
        Exp.row
          ~verdict:(Exp.check test_gain ~lo:1.25 ~hi:1.45)
          ~label:"per-part speed testing vs worst-case rating" ~paper:"30-40%"
          ~measured:(Exp.ratio test_gain) ();
        Exp.row
          ~verdict:(Exp.check spread ~lo:0.30 ~hi:0.40)
          ~label:"new-process shipped-speed spread (Intel 0.18um: 533-733 MHz)"
          ~paper:"30-40%"
          ~measured:(Exp.pct spread) ();
        Exp.row
          ~verdict:(Exp.check shrink ~lo:0.15 ~hi:0.21)
          ~label:"5% optical shrink (Intel 856)" ~paper:"+18% speed"
          ~measured:(Exp.pct shrink) ();
        Exp.row
          ~verdict:
            (Exp.check (Gap_variation.Maturity.library_update_gain ~months:24.) ~lo:0.15
               ~hi:0.20)
          ~label:"library re-characterization over a generation" ~paper:"up to 20%"
          ~measured:(Exp.pct (Gap_variation.Maturity.library_update_gain ~months:24.))
          ();
      ];
    notes =
      [
        Printf.sprintf "Monte Carlo: %d dies per arm; typical-fab p1/p50/p99 = %s / %s / %s"
          dies
          (Exp.mhz (MC.percentile typical 1.))
          (Exp.mhz (MC.percentile typical 50.))
          (Exp.mhz (MC.percentile typical 99.));
      ];
  }

let run () = run_with default
