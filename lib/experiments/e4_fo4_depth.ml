(** E4 (Sec. 4): logic depth in FO4 delays.

    The paper's FO4 depths (Alpha 15, IBM PPC 13, Xtensa ~44) are checked two
    ways: the FO4 rule must recover each chip's frequency (as in E1), and our
    own synthesis flow must put an Xtensa-class single-cycle ALU datapath in
    the ~40-50 FO4 range on the 0.25um ASIC library. *)

module P = Gap_uarch.Processors

type params = {
  ibm_leff_um : float;  (** effective channel length for the FO4 rule row *)
  cycle_fo4 : float;  (** FO4 depths per cycle for the frequency row *)
  alu_width : int;  (** operand width of the synthesized ALUs *)
}

let default = { ibm_leff_um = 0.15; cycle_fo4 = 13.; alu_width = 32 }

let run_with p =
  let tech = Gap_tech.Tech.asic_025um in
  let lib = Gap_liberty.Libgen.(make tech rich) in
  let ibm_fo4_ps = Gap_tech.Fo4.of_leff_um p.ibm_leff_um in
  (* our Xtensa-like datapath: a single-cycle ALU with block carry-lookahead,
     a reasonable synthesis result *)
  let alu = Gap_datapath.Alu.alu ~adder:`Cla p.alu_width in
  let outcome =
    Gap_synth.Flow.run ~lib ~name:(Printf.sprintf "alu%d" p.alu_width) alu
  in
  let measured_depth = Gap_sta.Sta.fo4_depth outcome.Gap_synth.Flow.sta ~lib in
  let ripple = Gap_datapath.Alu.alu ~adder:`Ripple p.alu_width in
  let ripple_depth =
    Gap_sta.Sta.fo4_depth
      (Gap_synth.Flow.run ~lib
         ~name:(Printf.sprintf "alu%dr" p.alu_width)
         ripple)
        .Gap_synth.Flow.sta ~lib
  in
  (* with a datapath library (Kogge-Stone via macro cells) *)
  let alu_fast = Gap_datapath.Alu.alu ~adder:`Kogge_stone p.alu_width in
  let fast =
    Gap_synth.Flow.run ~lib
      ~name:(Printf.sprintf "alu%d-ks" p.alu_width)
      alu_fast
  in
  let fast_depth = Gap_sta.Sta.fo4_depth fast.Gap_synth.Flow.sta ~lib in
  {
    Exp.id = "E4";
    title = "FO4 logic depths per cycle";
    section = "Sec. 4 (footnotes 1-2)";
    rows =
      [
        Exp.row
          ~verdict:(Exp.check ibm_fo4_ps ~lo:74. ~hi:76.)
          ~label:
            (Printf.sprintf "FO4 delay at Leff %.2fum (IBM PPC)" p.ibm_leff_um)
          ~paper:"75 ps" ~measured:(Exp.ps ibm_fo4_ps) ();
        Exp.row
          ~verdict:
            (Exp.check (1e6 /. (p.cycle_fo4 *. ibm_fo4_ps)) ~lo:975. ~hi:1080.)
          ~label:
            (Printf.sprintf "%.0f FO4 cycle at %s" p.cycle_fo4
               (Exp.ps ibm_fo4_ps))
          ~paper:"1.0 GHz"
          ~measured:(Exp.mhz (1e6 /. (p.cycle_fo4 *. ibm_fo4_ps)))
          ();
        Exp.row
          ~verdict:(Exp.check P.alpha_21264a.P.fo4_depth ~lo:15. ~hi:15.)
          ~label:"Alpha 21264 depth (from Harris/Horowitz)" ~paper:"15 FO4"
          ~measured:(Exp.f1 P.alpha_21264a.P.fo4_depth) ();
        Exp.row
          ~verdict:
            (if measured_depth <= 44. && ripple_depth >= 44. then Exp.Pass
             else Exp.check 44. ~lo:measured_depth ~hi:ripple_depth)
          ~label:"Xtensa's 44 FO4 within our synthesized ALU range" ~paper:"~44 FO4"
          ~measured:
            (Printf.sprintf "%.1f (CLA) .. %.1f (ripple)" measured_depth ripple_depth)
          ();
        Exp.row
          ~verdict:(Exp.check (ripple_depth /. fast_depth) ~lo:1.3 ~hi:3.5)
          ~label:"datapath-library ALU (Kogge-Stone) vs ripple" ~paper:"fewer levels (Sec. 4.2)"
          ~measured:(Printf.sprintf "%.1f FO4 (x%.2f)" fast_depth (ripple_depth /. fast_depth))
          ();
      ];
    notes =
      [
        "the ALU depth stands in for Xtensa's execute stage: the paper's 44 FO4 is \
         the whole 250 MHz cycle";
      ];
  }

let run () = run_with default
