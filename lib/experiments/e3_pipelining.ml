(** E3 (Sec. 4): pipelining speedups.

    Analytic rows reproduce the paper's overhead arithmetic (N stages at
    overhead fraction v give N/(1+v)); netlist rows actually pipeline a
    mapped 16x16 multiplier with cutset register insertion and measure the
    STA speedup, ASIC flops + 10% skew versus custom latches + 5% skew.
    A retiming row shows Leiserson-Saxe rebalancing an unbalanced pipe. *)

module Flow = Gap_synth.Flow
module Sta = Gap_sta.Sta
module Overhead = Gap_retime.Overhead
module Pipeline = Gap_retime.Pipeline

let tech = Gap_tech.Tech.asic_025um

type params = {
  asic_stages : int;  (** netlist + analytic pipeline depth, ASIC arm *)
  custom_stages : int;
  asic_skew_frac : float;  (** skew budget as a fraction of the cycle *)
  custom_skew_frac : float;
  asic_overhead_frac : float;  (** analytic N/(1+v) overhead fraction *)
  custom_overhead_frac : float;
  asic_stage_fo4 : float;  (** per-stage logic depth for the overhead rows *)
  custom_stage_fo4 : float;
  mult_width : int;  (** the pipelined multiplier's operand width *)
}

let default =
  {
    asic_stages = 5;
    custom_stages = 4;
    asic_skew_frac = 0.10;
    custom_skew_frac = 0.05;
    asic_overhead_frac = 0.30;
    custom_overhead_frac = 0.20;
    asic_stage_fo4 = 13.;
    custom_stage_fo4 = 11.;
    mult_width = 16;
  }

let netlist_speedup ~lib ~skew_frac ~stages g =
  let effort = { Flow.default_effort with tilos_moves = 0 } in
  let build () = (Flow.run ~lib ~effort g).Flow.netlist in
  let comb = (Sta.analyze (build ())).Sta.min_period_ps in
  let reg = Overhead.register_overhead_ps ~lib ~skew_ps:0. in
  let measure n =
    let nl = build () in
    let cycle_est =
      ((comb /. float_of_int n) +. reg) /. (1. -. skew_frac)
    in
    let config = Sta.config_with_skew (skew_frac *. cycle_est) in
    (Pipeline.pipeline ~config ~stages:n nl).Gap_retime.Pipeline.period_after_ps
  in
  let p1 = measure 1 in
  let pn = measure stages in
  (p1 /. pn, p1, pn)

let retiming_demo () =
  (* a 6-node ring of 2-delay stages whose 3 registers are all bunched on one
     edge: the register-free path covers all six nodes (period 12); retiming
     spreads the registers so each stage holds two nodes (period 4) *)
  let g = Gap_retime.Retime.create () in
  let nodes = Array.init 6 (fun _ -> Gap_retime.Retime.add_node g ~delay:2.) in
  for i = 0 to 5 do
    let regs = if i = 5 then 3 else 0 in
    Gap_retime.Retime.add_edge g ~src:nodes.(i) ~dst:nodes.((i + 1) mod 6) ~regs
  done;
  let before = Gap_retime.Retime.clock_period g in
  let after, _ = Gap_retime.Retime.min_period g in
  (before, after)

let run_with p =
  let asic_lib = Gap_liberty.Libgen.(make tech rich) in
  let custom_lib = Gap_liberty.Libgen.(make tech custom) in
  let s5 =
    Overhead.paper_speedup ~stages:p.asic_stages
      ~overhead_frac:p.asic_overhead_frac
  in
  let s4 =
    Overhead.paper_speedup ~stages:p.custom_stages
      ~overhead_frac:p.custom_overhead_frac
  in
  let fo4 = Gap_tech.Tech.fo4_ps tech in
  let asic_ovh =
    Overhead.overhead_fraction ~lib:asic_lib ~skew_frac:p.asic_skew_frac
      ~stage_logic_ps:(p.asic_stage_fo4 *. fo4)
  in
  let custom_ovh =
    Overhead.overhead_fraction ~lib:custom_lib ~skew_frac:p.custom_skew_frac
      ~stage_logic_ps:(p.custom_stage_fo4 *. fo4)
  in
  let g = Gap_datapath.Multiplier.array_multiplier ~width:p.mult_width in
  let asic_speedup, asic_p1, asic_p5 =
    netlist_speedup ~lib:asic_lib ~skew_frac:p.asic_skew_frac
      ~stages:p.asic_stages g
  in
  let custom_speedup, _, _ =
    netlist_speedup ~lib:custom_lib ~skew_frac:p.custom_skew_frac
      ~stages:p.custom_stages g
  in
  let rt_before, rt_after = retiming_demo () in
  {
    Exp.id = "E3";
    title = "pipelining speedups with register + skew overheads";
    section = "Sec. 4";
    rows =
      [
        Exp.row
          ~verdict:(Exp.check s5 ~lo:3.7 ~hi:3.9)
          ~label:
            (Printf.sprintf "%d-stage ASIC pipe, %.0f%% overhead (analytic)"
               p.asic_stages
               (100. *. p.asic_overhead_frac))
          ~paper:"x3.8" ~measured:(Exp.ratio s5) ();
        Exp.row
          ~verdict:(Exp.check s4 ~lo:3.3 ~hi:3.5)
          ~label:
            (Printf.sprintf "%d-stage custom pipe, %.0f%% overhead (analytic)"
               p.custom_stages
               (100. *. p.custom_overhead_frac))
          ~paper:"x3.4" ~measured:(Exp.ratio s4) ();
        Exp.row
          ~verdict:(Exp.check asic_ovh ~lo:0.25 ~hi:0.40)
          ~label:
            (Printf.sprintf "ASIC per-stage overhead @ %.0f FO4 stage"
               p.asic_stage_fo4)
          ~paper:"~30%" ~measured:(Exp.pct asic_ovh) ();
        Exp.row
          ~verdict:(Exp.check custom_ovh ~lo:0.15 ~hi:0.28)
          ~label:
            (Printf.sprintf "custom per-stage overhead @ %.0f FO4 stage"
               p.custom_stage_fo4)
          ~paper:"~20%" ~measured:(Exp.pct custom_ovh) ();
        Exp.row
          ~verdict:(Exp.check asic_speedup ~lo:3.0 ~hi:4.3)
          ~label:
            (Printf.sprintf "mult%d netlist, %d stages, ASIC flops + %.0f%% skew"
               p.mult_width p.asic_stages
               (100. *. p.asic_skew_frac))
          ~paper:"~x3.8" ~measured:(Exp.ratio asic_speedup) ();
        Exp.row
          ~verdict:(Exp.check custom_speedup ~lo:2.8 ~hi:3.8)
          ~label:
            (Printf.sprintf
               "mult%d netlist, %d stages, custom latches + %.0f%% skew"
               p.mult_width p.custom_stages
               (100. *. p.custom_skew_frac))
          ~paper:"~x3.4" ~measured:(Exp.ratio custom_speedup) ();
        Exp.row
          ~verdict:(Exp.check (rt_before /. rt_after) ~lo:2.5 ~hi:3.5)
          ~label:"retiming rebalances a bunched-register ring (Leiserson-Saxe)"
          ~paper:"balanced x3"
          ~measured:
            (Printf.sprintf "%.1f -> %.1f (x%.2f)" rt_before rt_after
               (rt_before /. rt_after))
          ();
      ];
    notes =
      [
        Printf.sprintf
          "mult%d: unpipelined registered period %s, %d-stage period %s; stage \
           imbalance from gate-granularity cuts is visible, as Sec. 4.1 predicts"
          p.mult_width (Exp.ps asic_p1) p.asic_stages (Exp.ps asic_p5);
      ];
  }

let run () = run_with default
