module Json = Gap_obs.Json
module Obs = Gap_obs.Obs
module Stage_error = Gap_resilience.Stage_error
module Fault = Gap_resilience.Fault
module Supervisor = Gap_resilience.Supervisor
module Checkpoint = Gap_resilience.Checkpoint

(* --- checkpointed experiment runs --- *)

type exp_record = {
  id : string;
  title : string;
  render : string;
  pass : int;
  checkable : int;
}

type run_outcome = Done of exp_record | Failed of string * Stage_error.t

let title_of id =
  match
    List.find_opt (fun (i, _, _) -> i = id) (Registry.all @ Registry.extensions)
  with
  | Some (_, title, _) -> title
  | None -> id

let campaign_tag = "experiments"

let record_json r =
  Json.Obj
    [
      ("id", Json.Str r.id);
      ("title", Json.Str r.title);
      ("render", Json.Str r.render);
      ("pass", Json.Int r.pass);
      ("checkable", Json.Int r.checkable);
    ]

let record_of_json j =
  match
    ( Json.member "id" j,
      Json.member "title" j,
      Json.member "render" j,
      Json.member "pass" j,
      Json.member "checkable" j )
  with
  | ( Some (Json.Str id),
      Some (Json.Str title),
      Some (Json.Str render),
      Some (Json.Int pass),
      Some (Json.Int checkable) ) ->
      { id; title; render; pass; checkable }
  | _ -> failwith "checkpoint: malformed experiment record"

let save_checkpoint path ids completed =
  Checkpoint.save ~path ~campaign:campaign_tag
    (Json.Obj
       [
         ("ids", Json.List (List.map (fun id -> Json.Str id) ids));
         ("completed", Json.List (List.map record_json (List.rev completed)));
       ])

let load_checkpoint path =
  match Checkpoint.load ~path with
  | Error e -> failwith e
  | Ok (campaign, payload) ->
      if campaign <> campaign_tag then
        failwith
          (Printf.sprintf "%s: checkpoint is a %S campaign, not experiments"
             path campaign);
      let str_list = function
        | Some (Json.List l) ->
            List.map (function Json.Str s -> s | _ -> failwith "checkpoint: bad id") l
        | _ -> failwith "checkpoint: missing ids"
      in
      let records =
        match Json.member "completed" payload with
        | Some (Json.List l) -> List.map record_of_json l
        | _ -> failwith "checkpoint: missing completed list"
      in
      (str_list (Json.member "ids" payload), records)

let run_loop ?checkpoint ?stop_after ~ids ~completed () =
  let runs =
    List.map
      (fun id ->
        match Registry.find id with
        | Some run -> (id, run)
        | None -> failwith (Printf.sprintf "unknown experiment id %s" id))
      ids
  in
  (* [completed] holds records in reverse completion order *)
  let completed = ref (List.rev completed) in
  let recorded id =
    List.find_opt (fun r -> r.id = id) !completed
  in
  Option.iter (fun path -> save_checkpoint path ids !completed) checkpoint;
  let fresh = ref 0 in
  let stopped = ref false in
  let outcomes = ref [] in
  List.iter
    (fun (id, run) ->
      if not !stopped then
        match recorded id with
        | Some r -> outcomes := Done r :: !outcomes
        | None ->
            if match stop_after with Some k -> !fresh >= k | None -> false then
              stopped := true
            else begin
              incr fresh;
              let o =
                Supervisor.run_stage ~policy:Supervisor.no_retry
                  ~stage:("exp." ^ id) run
              in
              match o.Supervisor.result with
              | Ok result ->
                  let pass, checkable = Exp.passes result in
                  let r =
                    {
                      id;
                      (* the result's own title, not the registry's short one:
                         Registry.summary prints the former and [output] must
                         stay byte-identical to it *)
                      title = result.Exp.title;
                      render = Exp.render result;
                      pass;
                      checkable;
                    }
                  in
                  completed := r :: !completed;
                  Option.iter
                    (fun path -> save_checkpoint path ids !completed)
                    checkpoint;
                  outcomes := Done r :: !outcomes
              | Error err -> outcomes := Failed (id, err) :: !outcomes
            end)
    runs;
  List.rev !outcomes

let run_experiments ?checkpoint ?stop_after ~ids () =
  run_loop ?checkpoint ?stop_after ~ids ~completed:[] ()

let resume_experiments ~checkpoint ?stop_after () =
  let ids, completed = load_checkpoint checkpoint in
  run_loop ~checkpoint ?stop_after ~ids ~completed ()

let output outcomes =
  let buf = Buffer.create 4096 in
  List.iter
    (function
      | Done r -> Buffer.add_string buf r.render
      | Failed (id, err) ->
          Buffer.add_string buf
            (Printf.sprintf "=== %s: FAILED ===\n%s\n" id
               (Stage_error.to_string err)))
    outcomes;
  Buffer.add_char buf '\n';
  let total_p = ref 0 and total_c = ref 0 and failures = ref 0 in
  List.iter
    (function
      | Done r ->
          total_p := !total_p + r.pass;
          total_c := !total_c + r.checkable;
          Buffer.add_string buf
            (Printf.sprintf "%-4s %-45s %d/%d in paper range\n" r.id r.title
               r.pass r.checkable)
      | Failed (id, _) ->
          incr failures;
          Buffer.add_string buf
            (Printf.sprintf "%-4s %-45s FAILED\n" id (title_of id)))
    outcomes;
  Buffer.add_string buf
    (Printf.sprintf
       "TOTAL: %d/%d checkable claims within the paper's stated ranges\n"
       !total_p !total_c);
  if !failures > 0 then
    Buffer.add_string buf
      (Printf.sprintf "FAILED: %d experiment(s) did not complete\n" !failures);
  Buffer.contents buf

let all_passed outcomes =
  List.for_all
    (function Done r -> r.pass = r.checkable | Failed _ -> false)
    outcomes

(* --- the fault campaign --- *)

type fault_outcome =
  | Recovered
  | Degraded
  | Failed_typed of Stage_error.t
  | Silent
  | Uncaught of string
  | Not_exercised

type site_result = {
  site : string;
  kind : Stage_error.fault_kind;
  driver : string;
  hits : int;
  injected : int;
  retries : int;
  degraded : int;
  outcome : fault_outcome;
}

let outcome_string = function
  | Recovered -> "recovered"
  | Degraded -> "degraded"
  | Failed_typed _ -> "failed-typed"
  | Silent -> "silent"
  | Uncaught _ -> "uncaught"
  | Not_exercised -> "not-exercised"

(* Small deterministic drivers, one per subsystem, sized so a full campaign
   stays fast. Each returns unit; what matters is which fault sites it
   reaches and which recovery mechanism owns them. *)

let campaign_lib () =
  Gap_liberty.Libgen.make Gap_tech.Tech.asic_025um Gap_liberty.Libgen.rich

let driver_synth () =
  let lib = campaign_lib () in
  ignore
    (Gap_synth.Flow.run ~lib ~name:"cla16" (Gap_datapath.Adders.cla_adder 16))

let low_effort_netlist () =
  let lib = campaign_lib () in
  (Gap_synth.Flow.run ~lib ~effort:Gap_synth.Flow.low_effort ~name:"cla16"
     (Gap_datapath.Adders.cla_adder 16))
    .Gap_synth.Flow.netlist

let driver_place () =
  let nl = low_effort_netlist () in
  ignore
    (Gap_place.Placer.place
       ~options:{ Gap_place.Placer.default_options with sweeps = 30; seed = 5L }
       nl)

let driver_annotate () =
  let nl = low_effort_netlist () in
  ignore
    (Gap_place.Placer.place
       ~options:{ Gap_place.Placer.default_options with sweeps = 10; seed = 5L }
       nl);
  (* strict gates so a corrupted parasitic trips the bad-parasitic rule as a
     typed Gate_failed -> Netlist_defect; the supervised STA NaN scan is the
     second line of defense *)
  let (), (_ : Gap_netlist.Check.gate_report list) =
    Gap_netlist.Check.with_gates ~strict:true (fun () ->
        Gap_place.Wire_estimate.annotate nl;
        ignore (Gap_sta.Sta.analyze nl))
  in
  ()

let driver_fpga () =
  (* same defense-in-depth as [driver_annotate]: strict gates catch a
     NaN hop delay as a typed Gate_failed, the supervised STA NaN scan is
     the second line; the transient lutmap fault is retried inside the
     backend itself *)
  let (_ : Gap_fpga.Backend.impl), (_ : Gap_netlist.Check.gate_report list) =
    Gap_netlist.Check.with_gates ~strict:true (fun () ->
        Gap_fpga.Backend.implement
          (Gap_fpga.Backend.fpga ())
          ~name:"cla16"
          (Gap_datapath.Adders.cla_adder 16))
  in
  ()

let driver_mc () =
  let model = Gap_variation.Model.make Gap_variation.Model.mature in
  ignore
    (Gap_variation.Montecarlo.simulate ~seed:77L ~domains:4 ~model
       ~nominal_mhz:250. ~dies:8192 ())

let driver_dse () =
  (* binned points so every job runs a Monte Carlo pass: pool workers hold
     their claims long enough that spawned domains reliably reach the
     [dse.worker] site before the main domain drains the queue *)
  let space =
    {
      Gap_dse.Space.depths = [ 1; 4 ];
      logic_fo4s = [ 44. ];
      sizings = [ Gap_dse.Space.Minimal ];
      skew_fracs = [ 0.10 ];
      dominos = [ false ];
      floorplans = [ false ];
      binnings = [ true ];
      sigma_scales = [ 0.75; 1.0 ];
      mc_dies = [ 2048; 4096 ];
      backends = [ Gap_dse.Space.Asic ];
    }
  in
  ignore (Gap_dse.Sweep.run ~domains:4 ~name:"faults-dse" space)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let with_tmp_store f =
  let path = Filename.temp_file "gap_faults_store" ".store" in
  Sys.remove path;
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

(* cheap distinct points: tiny MC arms so an evaluation costs microseconds *)
let store_point i =
  {
    Gap_dse.Space.baseline with
    Gap_dse.Space.sigma_scale = 1.0 +. (0.0001 *. float_of_int i);
    mc_dies = 16;
  }

let driver_segstore_flush () =
  with_tmp_store (fun path ->
      let cache = Gap_dse.Cache.create ~store:path () in
      for i = 0 to 3 do
        let p = store_point i in
        Gap_dse.Cache.add cache p (Gap_dse.Eval.point p)
      done;
      (* the flush appends under the cache's own supervisor: an injected
         transient at [segstore.append] recovers via retry, and the
         re-appended duplicates are harmless (last record per key wins) *)
      Gap_dse.Cache.flush cache)

let driver_segstore_compact () =
  with_tmp_store (fun path ->
      let cache = Gap_dse.Cache.create ~store:path () in
      for i = 0 to 3 do
        let p = store_point i in
        Gap_dse.Cache.add cache p (Gap_dse.Eval.point p)
      done;
      Gap_dse.Cache.flush cache;
      (* the generation rewrite hits [segstore.compact]; its commit point is
         the manifest replace, so the retried attempt starts from the intact
         old generation *)
      Gap_dse.Cache.compact cache)

let driver_serve_batch () =
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gap_faults_serve_%d.sock" (Unix.getpid ()))
  in
  (try Sys.remove sock with Sys_error _ -> ());
  let addr = Gap_serve.Protocol.Unix_sock sock in
  let server = Gap_serve.Server.create (Gap_serve.Server.default_config addr) in
  Gap_serve.Server.start server;
  Fun.protect
    ~finally:(fun () -> Gap_serve.Server.stop server)
    (fun () ->
      match Gap_serve.Client.connect_retry addr with
      | Error e -> failwith (Gap_serve.Client.connect_error_to_string e)
      | Ok cl ->
          Fun.protect
            ~finally:(fun () -> Gap_serve.Client.close cl)
            (fun () ->
              (* a cache miss forces a scheduler batch, which runs with
                 [serve.batch] inside its retry scope *)
              match Gap_serve.Client.eval cl (store_point 0) with
              | Ok _ -> ()
              | Error e -> failwith (Gap_serve.Protocol.err_to_string e)))

(* (site, kind, driver name, driver, max skip): [max_skip] bounds the
   seeded skip so the fault always lands within the hits the driver
   generates (e.g. the synth driver maps exactly once) *)
let plan_catalog =
  [
    ("synth.map", Stage_error.Transient, "synth-cla16", driver_synth, 0);
    ("synth.sizing", Stage_error.Transient, "synth-cla16", driver_synth, 0);
    ("sta.analyze", Stage_error.Transient, "synth-cla16", driver_synth, 5);
    ("place.sweep", Stage_error.Transient, "place-cla16", driver_place, 20);
    ("place.sweep", Stage_error.Deadline, "place-cla16", driver_place, 20);
    ("place.parasitic", Stage_error.Corrupt, "annotate-cla16", driver_annotate, 10);
    ("gap_fpga.lutmap", Stage_error.Transient, "fpga-cla16", driver_fpga, 0);
    ("gap_fpga.route", Stage_error.Corrupt, "fpga-cla16", driver_fpga, 20);
    ("mc.worker", Stage_error.Worker_kill, "mc-8k-x4", driver_mc, 2);
    ("mc.budget", Stage_error.Deadline, "mc-8k-x4", driver_mc, 0);
    ("dse.worker", Stage_error.Worker_kill, "dse-sweep-x4", driver_dse, 2);
    ("segstore.append", Stage_error.Transient, "segstore-flush", driver_segstore_flush, 2);
    ("segstore.compact", Stage_error.Transient, "segstore-compact", driver_segstore_compact, 0);
    ("serve.batch", Stage_error.Transient, "serve-eval", driver_serve_batch, 0);
  ]

let () =
  (* keep the executable campaign in lockstep with the declared catalog *)
  assert (
    List.for_all
      (fun (site, kinds, _) ->
        List.for_all
          (fun kind ->
            List.exists (fun (s, k, _, _, _) -> s = site && k = kind) plan_catalog)
          kinds)
      Fault.catalog)

let run_one ~skip (site, kind, driver_name, driver, _) =
  let sink = Obs.recorder () in
  let result, freport =
    Obs.with_sink sink (fun () ->
        Fault.with_plan
          [ Fault.spec ~skip site kind ]
          (fun () ->
            let o =
              Supervisor.run_stage ~policy:Supervisor.no_retry
                ~stage:driver_name driver
            in
            match o.Supervisor.result with
            | Ok () -> ()
            | Error err -> raise (Stage_error.Stage_failure err)))
  in
  let hits =
    match List.assoc_opt site freport.Fault.sites_hit with Some n -> n | None -> 0
  in
  let injected =
    match List.assoc_opt site freport.Fault.injected with Some n -> n | None -> 0
  in
  let retries = Obs.counter_value sink "resilience.retries" in
  let degraded =
    Obs.counter_value sink "mc.degraded_runs"
    + Obs.counter_value sink "place.anneal_recoveries"
    + Obs.counter_value sink "dse.pool.degraded"
  in
  let outcome =
    if injected = 0 then Not_exercised
    else
      match result with
      | Ok () ->
          if degraded > 0 then Degraded
          else if retries > 0 then Recovered
          else Silent
      | Error (Stage_error.Stage_failure err) -> Failed_typed err
      | Error e -> Uncaught (Printexc.to_string e)
  in
  { site; kind; driver = driver_name; hits; injected; retries; degraded; outcome }

let run_faults ?(seed = 2027L) () =
  let rng = Gap_util.Rng.create ~seed () in
  List.map
    (fun ((_, _, _, _, max_skip) as entry) ->
      let skip = if max_skip <= 0 then 0 else Gap_util.Rng.int rng (max_skip + 1) in
      run_one ~skip entry)
    plan_catalog

let faults_ok results =
  results <> []
  && List.for_all
       (fun r ->
         r.injected > 0
         &&
         match r.outcome with
         | Recovered | Degraded | Failed_typed _ -> true
         | Silent | Uncaught _ | Not_exercised -> false)
       results

let faults_json ~seed results =
  let site_json r =
    Json.Obj
      ([
         ("site", Json.Str r.site);
         ("kind", Json.Str (Stage_error.kind_string r.kind));
         ("driver", Json.Str r.driver);
         ("hits", Json.Int r.hits);
         ("injected", Json.Int r.injected);
         ("retries", Json.Int r.retries);
         ("degraded", Json.Int r.degraded);
         ("outcome", Json.Str (outcome_string r.outcome));
       ]
      @
      match r.outcome with
      | Failed_typed err -> [ ("error", Stage_error.to_json err) ]
      | Uncaught e -> [ ("error", Json.Str e) ]
      | _ -> [])
  in
  let count p = List.length (List.filter p results) in
  Json.Obj
    [
      ("version", Json.Int 1);
      ("seed", Json.Int (Int64.to_int seed));
      ("sites", Json.List (List.map site_json results));
      ( "totals",
        Json.Obj
          [
            ("sites", Json.Int (List.length results));
            ( "injected",
              Json.Int (List.fold_left (fun a r -> a + r.injected) 0 results) );
            ("recovered", Json.Int (count (fun r -> r.outcome = Recovered)));
            ("degraded", Json.Int (count (fun r -> r.outcome = Degraded)));
            ( "failed_typed",
              Json.Int
                (count (fun r ->
                     match r.outcome with Failed_typed _ -> true | _ -> false)) );
            ( "bad",
              Json.Int
                (count (fun r ->
                     match r.outcome with
                     | Silent | Uncaught _ | Not_exercised -> true
                     | _ -> false)) );
          ] );
      ("ok", Json.Bool (faults_ok results));
    ]

let faults_table results =
  Gap_util.Table.render
    ~aligns:Gap_util.Table.[ Left; Left; Left; Right; Right; Right; Right; Left ]
    ~header:[ "site"; "kind"; "driver"; "hits"; "inj"; "retry"; "degrade"; "outcome" ]
    (List.map
       (fun r ->
         [
           r.site;
           Stage_error.kind_string r.kind;
           r.driver;
           string_of_int r.hits;
           string_of_int r.injected;
           string_of_int r.retries;
           string_of_int r.degraded;
           (match r.outcome with
           | Failed_typed err ->
               "failed-typed: " ^ Stage_error.to_string err
           | o -> outcome_string o);
         ])
       results)
