type verdict = Pass | Near of string | Info

type row = { label : string; paper : string; measured : string; verdict : verdict }

type result = {
  id : string;
  title : string;
  section : string;
  rows : row list;
  notes : string list;
}

let row ?(verdict = Info) ~label ~paper ~measured () = { label; paper; measured; verdict }

let check x ~lo ~hi =
  let slop = 0.02 *. (hi -. lo +. Float.abs lo) in
  if x >= lo -. slop && x <= hi +. slop then Pass
  else
    Near
      (Printf.sprintf "%.2f vs %.2f..%.2f (%+.0f%% off nearest bound)" x lo hi
         (100.
         *. (if x < lo then (x -. lo) /. lo else (x -. hi) /. hi)))

let ratio x = Printf.sprintf "x%.2f" x
let pct x = Printf.sprintf "%.0f%%" (100. *. x)
let mhz = Gap_util.Units.pp_freq_mhz
let ps = Gap_util.Units.pp_time_ps
let f1 x = Printf.sprintf "%.1f" x

let verdict_str = function
  | Pass -> "ok"
  | Near s -> "NEAR: " ^ s
  | Info -> ""

let render r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "=== %s: %s (paper %s) ===\n" r.id r.title r.section);
  let rows =
    List.map
      (fun row -> [ row.label; row.paper; row.measured; verdict_str row.verdict ])
      r.rows
  in
  Buffer.add_string buf
    (Gap_util.Table.render
       ~aligns:[ Gap_util.Table.Left; Right; Right; Left ]
       ~header:[ "claim"; "paper"; "measured"; "verdict" ]
       rows);
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "note: %s\n" n)) r.notes;
  Buffer.contents buf

let print r = print_string (render r)

let to_csv r =
  Gap_util.Table.to_csv
    (List.map
       (fun row ->
         [ r.id; row.label; row.paper; row.measured; verdict_str row.verdict ])
       r.rows)

(* Run experiment [id] under a root span with every span/counter/event the
   layers below record tagged by the owning experiment id. With the no-op
   sink this adds two function calls and nothing else. *)
let observed id f () =
  Gap_obs.Obs.with_exp id (fun () -> Gap_obs.Obs.span ("exp." ^ id) f)

let passes r =
  List.fold_left
    (fun (p, c) row ->
      match row.verdict with
      | Pass -> (p + 1, c + 1)
      | Near _ -> (p, c + 1)
      | Info -> (p, c))
    (0, 0) r.rows
