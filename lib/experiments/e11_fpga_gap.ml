(** E11: the three-way FPGA / ASIC / custom gap.

    The paper closes the ASIC-to-custom gap; the same methodology extends one
    technology rung down. Each Charm variant's fixture suite is implemented
    through both the standard-cell flow and the LUT-fabric backend at the
    same 0.25um node, the measured area / frequency / dynamic-power ratios
    are checked against the Charm constants (x35 / x3.4 / x14 for soft
    logic, narrowing with hard DSP and memory blocks), and the FPGA-to-custom
    speed gap is composed as the product of the measured FPGA-to-ASIC leg and
    the paper's modeled ASIC-to-custom leg. Pipeline-stage-resolved STA shows
    where the FPGA cycle goes once a fixture is pipelined. *)

module Gap3 = Gap_fpga.Gap3
module Charm = Gap_tech.Charm

let variant_rows (s : Gap3.summary) =
  let name = Charm.variant_name s.Gap3.variant in
  let tol = Gap3.tolerance in
  let check_ratio target v =
    Exp.check v ~lo:(target *. (1. -. tol)) ~hi:(target *. (1. +. tol))
  in
  let t = s.Gap3.target in
  [
    Exp.row
      ~verdict:(check_ratio t.Charm.area s.Gap3.area_ratio)
      ~label:(Printf.sprintf "%s: FPGA/ASIC area" name)
      ~paper:(Printf.sprintf "~%.0fx (Charm)" t.Charm.area)
      ~measured:(Exp.ratio s.Gap3.area_ratio) ();
    Exp.row
      ~verdict:(check_ratio t.Charm.freq s.Gap3.freq_ratio)
      ~label:(Printf.sprintf "%s: ASIC/FPGA frequency" name)
      ~paper:(Printf.sprintf "~%.1fx (Charm)" t.Charm.freq)
      ~measured:(Exp.ratio s.Gap3.freq_ratio) ();
    Exp.row
      ~verdict:(check_ratio t.Charm.dynamic_power s.Gap3.power_ratio)
      ~label:(Printf.sprintf "%s: FPGA/ASIC dynamic power" name)
      ~paper:(Printf.sprintf "~%.0fx (Charm)" t.Charm.dynamic_power)
      ~measured:(Exp.ratio s.Gap3.power_ratio) ();
  ]

let factor_row label factors total =
  Exp.row ~verdict:Exp.Info ~label
    ~paper:"exact product"
    ~measured:
      (String.concat " * "
         (List.map (fun (n, v) -> Printf.sprintf "%s %s" n (Exp.ratio v)) factors)
      ^ " = " ^ Exp.ratio total)
    ()

(* the stage-resolved showcase: a pipelined FPGA implementation, stage
   boundaries at the inserted register ranks, slack attributed per stage *)
let stage_rows () =
  let d = Gap3.stage_demo () in
  let r = d.Gap3.pipeline in
  Exp.row ~verdict:Exp.Info ~label:"cla16 on the fabric, pipelined x4"
    ~paper:"L/N + reg"
    ~measured:
      (Printf.sprintf "%s -> %s (speedup %s)"
         (Exp.ps r.Gap_retime.Pipeline.period_before_ps)
         (Exp.ps r.Gap_retime.Pipeline.period_after_ps)
         (Exp.ratio r.Gap_retime.Pipeline.speedup))
    ()
  :: List.map
       (fun (st : Gap_sta.Sta.stage_slack) ->
         Exp.row ~verdict:Exp.Info
           ~label:
             (Printf.sprintf "  stage %s slack (%d endpoints)"
                (Gap_sta.Sta.stage_label st.Gap_sta.Sta.stage)
                st.Gap_sta.Sta.endpoints)
           ~paper:"worst >= 0"
           ~measured:
             (Printf.sprintf "worst %s, mean %s"
                (Exp.ps st.Gap_sta.Sta.worst_ps)
                (Exp.ps
                   (st.Gap_sta.Sta.total_ps
                   /. float_of_int (max 1 st.Gap_sta.Sta.endpoints))))
           ())
       d.Gap3.stage_slacks

let run () =
  let t = Gap3.run () in
  let speed = t.Gap3.asic_custom_speed in
  {
    Exp.id = "E11";
    title = "FPGA / ASIC / custom three-way gap";
    section = "Sec. 1 extended (Charm fpga2asic)";
    rows =
      variant_rows t.Gap3.logic
      @ variant_rows t.Gap3.dsp
      @ variant_rows t.Gap3.memory
      @ [
          factor_row "logic frequency gap decomposition"
            (Gap3.freq_factors t.Gap3.logic)
            t.Gap3.logic.Gap3.freq_ratio;
          factor_row "logic area gap decomposition"
            (Gap3.area_factors t.Gap3.logic)
            t.Gap3.logic.Gap3.area_ratio;
          Exp.row
            ~verdict:(Exp.check speed ~lo:6.0 ~hi:8.0)
            ~label:"ASIC -> custom speed leg (paper model)" ~paper:"6-8x"
            ~measured:(Exp.ratio speed) ();
          Exp.row ~verdict:Exp.Info ~label:"FPGA -> custom speed product"
            ~paper:"FPGA->ASIC * ASIC->custom"
            ~measured:
              (Printf.sprintf "%s * %s = %s"
                 (Exp.ratio t.Gap3.logic.Gap3.freq_ratio)
                 (Exp.ratio speed)
                 (Exp.ratio t.Gap3.fpga_custom_speed))
            ();
        ]
      @ stage_rows ();
    notes =
      [
        "FPGA and ASIC sides share the 0.25um frame, so the ratios are pure \
         architecture gaps, as in Charm's same-node comparison";
        "dynamic power is the switched-capacitance ratio with both sides \
         clocked at the ASIC frequency; FPGA static power is excluded";
        Printf.sprintf
          "Charm gates carry a %.0f%% tolerance; repro fpga-gap exits \
           non-zero outside it"
          (Gap3.tolerance *. 100.);
      ];
  }
