let all =
  [
    ("E1", "processor speeds and the 6-8x gap", E1_processors.run);
    ("E2", "factor overview table", E2_factors.run);
    ("E3", "pipelining speedups", E3_pipelining.run);
    ("E4", "FO4 logic depths", E4_fo4_depth.run);
    ("E5", "clock skew and latch overhead", E5_clock_skew.run);
    ("E6", "floorplanning and global wires", E6_floorplanning.run);
    ("E7", "library richness and sizing", E7_library_sizing.run);
    ("E8", "dynamic logic", E8_dynamic_logic.run);
    ("E9", "process variation and binning", E9_process_variation.run);
    ("E10", "residual gap analysis", E10_residual.run);
    ("E11", "FPGA/ASIC/custom three-way gap", E11_fpga_gap.run);
  ]

let extensions =
  [
    ("X1", "power costs of circuit styles", X1_power.run);
    ("X2", "speed-bin economics", X2_economics.run);
    ("X3", "flow ablations and extension models", X3_ablations.run);
    ("X4", "feedback loops vs pipelining", X4_sequential.run);
    ("X5", "regularity, area, multi-issue", X5_area_regularity.run);
    ("X6", "optimal pipeline depth and hold safety", X6_optimal_depth.run);
    ("X7", "noise margins and skew-tolerance cost", X7_noise_hold.run);
    ("X8", "deep-submicron trends", X8_scaling_trends.run);
  ]

let run_e3 ?(params = E3_pipelining.default) () =
  Exp.observed "E3" (fun () -> E3_pipelining.run_with params) ()

let run_e4 ?(params = E4_fo4_depth.default) () =
  Exp.observed "E4" (fun () -> E4_fo4_depth.run_with params) ()

let run_e9 ?(params = E9_process_variation.default) () =
  Exp.observed "E9" (fun () -> E9_process_variation.run_with params) ()

let find id =
  let id = String.uppercase_ascii id in
  List.find_map
    (fun (i, _, f) -> if i = id then Some (Exp.observed i f) else None)
    (all @ extensions)

let run_all () = List.map (fun (id, _, f) -> Exp.observed id f ()) all
let run_extensions () = List.map (fun (id, _, f) -> Exp.observed id f ()) extensions

let summary results =
  let buf = Buffer.create 256 in
  let total_p = ref 0 and total_c = ref 0 in
  List.iter
    (fun (r : Exp.result) ->
      let p, c = Exp.passes r in
      total_p := !total_p + p;
      total_c := !total_c + c;
      Buffer.add_string buf
        (Printf.sprintf "%-4s %-45s %d/%d in paper range\n" r.Exp.id r.Exp.title p c))
    results;
  Buffer.add_string buf
    (Printf.sprintf "TOTAL: %d/%d checkable claims within the paper's stated ranges\n"
       !total_p !total_c);
  Buffer.contents buf
