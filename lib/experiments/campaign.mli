(** Supervised experiment campaigns: per-experiment isolation,
    checkpoint/resume, and the deterministic fault-injection campaign.

    This module is the engine behind [repro all --checkpoint], [repro
    resume] and [repro faults]; it lives in the library (not the CLI) so
    the property tests can drive kill+resume and fault campaigns in
    process. *)

(** {1 Checkpointed experiment runs} *)

type exp_record = {
  id : string;
  title : string;
  render : string;  (** the experiment's full rendered report *)
  pass : int;
  checkable : int;
}

type run_outcome =
  | Done of exp_record
  | Failed of string * Gap_resilience.Stage_error.t
      (** experiment id and the typed reason *)

val run_experiments :
  ?checkpoint:string ->
  ?stop_after:int ->
  ids:string list ->
  unit ->
  run_outcome list
(** Run the experiments in order, each under a {!Gap_resilience.Supervisor}
    stage so one failure cannot kill the campaign. With [?checkpoint] the
    campaign state is atomically rewritten after every completed experiment
    (failures are not recorded, so a resume retries them). [?stop_after]
    ends the run after that many fresh experiments — the test-suite
    stand-in for a kill.

    @raise Failure on an unknown experiment id. *)

val resume_experiments :
  checkpoint:string -> ?stop_after:int -> unit -> run_outcome list
(** Reload a checkpoint and continue its campaign: completed experiments
    are replayed from their recorded renders (byte-identical, since every
    experiment is deterministic), the rest run fresh, and the checkpoint
    keeps advancing.

    @raise Failure if the checkpoint is missing, malformed, of the wrong
    version, or not an experiment campaign. *)

val output : run_outcome list -> string
(** The byte stream [repro all] prints: every report in order (failed
    experiments render as a typed FAILED block), a blank line, then the
    summary table. For an all-[Done] list this is byte-identical to the
    pre-resilience output. *)

val all_passed : run_outcome list -> bool
(** No [Failed] outcome and every row of every experiment in range. *)

(** {1 The fault campaign} *)

type fault_outcome =
  | Recovered  (** the supervisor retried the stage and it completed *)
  | Degraded
      (** a fallback path absorbed the fault (best-so-far placement,
          sequential Monte Carlo) and the driver completed *)
  | Failed_typed of Gap_resilience.Stage_error.t
      (** the driver failed, but with a typed diagnostic — acceptable *)
  | Silent  (** the fault fired yet nothing recovered or complained — a bug *)
  | Uncaught of string  (** an unclassified exception escaped — a bug *)
  | Not_exercised  (** the driver never reached the site — a campaign bug *)

type site_result = {
  site : string;
  kind : Gap_resilience.Stage_error.fault_kind;
  driver : string;
  hits : int;  (** times the driver reached the site *)
  injected : int;  (** faults actually fired *)
  retries : int;  (** supervisor retries recorded during the run *)
  degraded : int;  (** degradation events recorded during the run *)
  outcome : fault_outcome;
}

val outcome_string : fault_outcome -> string

val run_faults : ?seed:int64 -> unit -> site_result list
(** Inject every (site, kind) of {!Gap_resilience.Fault.catalog} into a
    small deterministic driver that reaches it, one fault per run, and
    classify what happened. [seed] (default 2027) picks each spec's [skip]
    deterministically, so faults land mid-run, not only at the first hit. *)

val faults_ok : site_result list -> bool
(** Every site exercised and injected, and no [Silent]/[Uncaught]. *)

val faults_json : seed:int64 -> site_result list -> Gap_obs.Json.t
(** The [FAULTS_report.json] document: per-site results plus totals. *)

val faults_table : site_result list -> string
(** Human-readable summary table. *)
