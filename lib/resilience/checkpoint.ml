module Json = Gap_obs.Json

let version = 1

let save ~path ~campaign payload =
  let doc =
    Json.Obj
      [
        ("version", Json.Int version);
        ("campaign", Json.Str campaign);
        ("payload", payload);
      ]
  in
  Gap_util.Atomic_io.write_string path (Json.to_string ~pretty:true doc ^ "\n")

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | s -> (
      match Json.of_string s with
      | Error e -> Error (Printf.sprintf "%s: malformed checkpoint: %s" path e)
      | Ok doc -> (
          match (Json.member "version" doc, Json.member "campaign" doc, Json.member "payload" doc) with
          | Some (Json.Int v), Some (Json.Str campaign), Some payload ->
              if v <> version then
                Error
                  (Printf.sprintf "%s: checkpoint version %d, expected %d" path v
                     version)
              else Ok (campaign, payload)
          | _ -> Error (Printf.sprintf "%s: not a checkpoint document" path)))
