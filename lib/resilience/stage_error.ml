module Json = Gap_obs.Json

type fault_kind = Transient | Corrupt | Deadline | Worker_kill

type t =
  | Netlist_defect of { stage : string; rule : string; detail : string }
  | Numeric_fault of { stage : string; what : string; value : float }
  | Deadline_exceeded of {
      stage : string;
      elapsed_ns : int64;
      budget_ns : int64;
    }
  | Worker_failed of { stage : string; worker : int; error : string }
  | Injected of { site : string; kind : fault_kind }
  | Storage_fault of {
      stage : string;
      store : string;
      segment : string;
      offset : int;
      detail : string;
    }
  | Exhausted_retries of { stage : string; attempts : int; last : t }
  | Interrupted of { stage : string }
  | Unclassified of { stage : string; exn_text : string }

exception Stage_failure of t

let stage = function
  | Netlist_defect { stage; _ }
  | Numeric_fault { stage; _ }
  | Deadline_exceeded { stage; _ }
  | Worker_failed { stage; _ }
  | Storage_fault { stage; _ }
  | Exhausted_retries { stage; _ }
  | Interrupted { stage }
  | Unclassified { stage; _ } ->
      stage
  | Injected { site; _ } -> site

let kind_string = function
  | Transient -> "transient"
  | Corrupt -> "corrupt"
  | Deadline -> "deadline"
  | Worker_kill -> "worker-kill"

let kind_of_string = function
  | "transient" -> Some Transient
  | "corrupt" -> Some Corrupt
  | "deadline" -> Some Deadline
  | "worker-kill" -> Some Worker_kill
  | _ -> None

let retryable = function
  | Injected { kind = Transient; _ } | Worker_failed _ -> true
  | Netlist_defect _ | Numeric_fault _ | Deadline_exceeded _
  | Injected _ | Storage_fault _ | Exhausted_retries _ | Interrupted _
  | Unclassified _ ->
      false

let rec to_string = function
  | Netlist_defect { stage; rule; detail } ->
      Printf.sprintf "[%s] netlist defect (%s): %s" stage rule detail
  | Numeric_fault { stage; what; value } ->
      Printf.sprintf "[%s] numeric fault: %s = %h" stage what value
  | Deadline_exceeded { stage; elapsed_ns; budget_ns } ->
      Printf.sprintf "[%s] deadline exceeded: %Ld ns elapsed of %Ld ns budget"
        stage elapsed_ns budget_ns
  | Worker_failed { stage; worker; error } ->
      Printf.sprintf "[%s] worker %d failed: %s" stage worker error
  | Injected { site; kind } ->
      Printf.sprintf "[%s] injected %s fault" site (kind_string kind)
  | Storage_fault { stage; store; segment; offset; detail } ->
      Printf.sprintf "[%s] storage fault in %s (segment %s, offset %d): %s"
        stage store
        (if segment = "" then "-" else segment)
        offset detail
  | Exhausted_retries { stage; attempts; last } ->
      Printf.sprintf "[%s] gave up after %d attempt%s; last error: %s" stage
        attempts
        (if attempts = 1 then "" else "s")
        (to_string last)
  | Interrupted { stage } -> Printf.sprintf "[%s] interrupted" stage
  | Unclassified { stage; exn_text } ->
      Printf.sprintf "[%s] unclassified exception: %s" stage exn_text

let rec to_json e =
  let base tag fields =
    Json.Obj (("error", Json.Str tag) :: ("stage", Json.Str (stage e)) :: fields)
  in
  match e with
  | Netlist_defect { rule; detail; _ } ->
      base "netlist-defect"
        [ ("rule", Json.Str rule); ("detail", Json.Str detail) ]
  | Numeric_fault { what; value; _ } ->
      base "numeric-fault"
        [ ("what", Json.Str what); ("value", Json.Float value) ]
  | Deadline_exceeded { elapsed_ns; budget_ns; _ } ->
      base "deadline-exceeded"
        [
          ("elapsed_ns", Json.Int (Int64.to_int elapsed_ns));
          ("budget_ns", Json.Int (Int64.to_int budget_ns));
        ]
  | Worker_failed { worker; error; _ } ->
      base "worker-failed"
        [ ("worker", Json.Int worker); ("detail", Json.Str error) ]
  | Injected { kind; _ } ->
      base "injected" [ ("kind", Json.Str (kind_string kind)) ]
  | Storage_fault { store; segment; offset; detail; _ } ->
      base "storage-fault"
        [
          ("store", Json.Str store);
          ("segment", Json.Str segment);
          ("offset", Json.Int offset);
          ("detail", Json.Str detail);
        ]
  | Exhausted_retries { attempts; last; _ } ->
      base "exhausted-retries"
        [ ("attempts", Json.Int attempts); ("last", to_json last) ]
  | Interrupted _ -> base "interrupted" []
  | Unclassified { exn_text; _ } ->
      base "unclassified" [ ("detail", Json.Str exn_text) ]

let () =
  Printexc.register_printer (function
    | Stage_failure e ->
        Some (Printf.sprintf "Gap_resilience.Stage_error.Stage_failure (%s)" (to_string e))
    | _ -> None)

(* classifiers, consulted in registration order *)
let classifiers : (stage:string -> exn -> t option) list ref = ref []
let register_classifier c = classifiers := !classifiers @ [ c ]

let of_exn ~stage:st e =
  match e with
  | Stage_failure err -> err
  | _ -> (
      let rec try_all = function
        | [] -> None
        | c :: rest -> ( match c ~stage:st e with Some v -> Some v | None -> try_all rest)
      in
      match try_all !classifiers with
      | Some v -> v
      | None -> Unclassified { stage = st; exn_text = Printexc.to_string e })
