(** Versioned checkpoint files for long campaigns.

    A checkpoint is a single JSON document
    [{ "version": n; "campaign": s; "payload": ... }] written atomically
    (temp-file + rename via [Gap_util.Atomic_io]), so a kill at any moment
    leaves either the previous checkpoint or the new one on disk — never a
    truncated file. [repro resume] reloads it and continues the campaign;
    because every experiment is deterministic, the resumed run's final
    output is byte-identical to an uninterrupted one. *)

val version : int

val save : path:string -> campaign:string -> Gap_obs.Json.t -> unit
(** Atomically (re)write the checkpoint. *)

val load : path:string -> (string * Gap_obs.Json.t, string) result
(** [(campaign, payload)], or a human-readable reason (missing file,
    malformed JSON, version mismatch). *)
