(** Supervised stage execution: retries, deadlines, typed outcomes.

    Two entry points:

    - {!retry} is recovery-transparent: it re-runs a stage whose failure is
      {!Stage_error.retryable}, with deterministic exponential backoff
      (recorded, never slept — the flow is CPU-bound and campaigns must be
      fast and reproducible), and raises a typed
      [Stage_error.Stage_failure] when the budget runs out. Untyped
      exceptions that no classifier recognises propagate unchanged so real
      bugs are not masked.
    - {!run_stage} never raises: it converts whatever escapes the stage into
      a {!Stage_error.t} and returns a structured {!outcome}, so a driver
      (e.g. [repro all]) can report partial results instead of dying on the
      first error.

    Both record [resilience.*] counters and events through [Gap_obs].
    Deadlines are cooperative: long loops (anneal sweeps, Monte Carlo
    shards) call {!poll_deadline}, one word read when no deadline is set. *)

type policy = {
  max_retries : int;  (** retries after the first attempt *)
  backoff_base_ns : int64;
      (** attempt [k] is charged [backoff_base_ns * 2^k]; recorded in the
          attempt log and the [resilience.backoff_ns] counter *)
}

val default_policy : policy
(** 2 retries, 1 ms base backoff. *)

val no_retry : policy

type attempt = { number : int; error : Stage_error.t; backoff_ns : int64 }

type 'a outcome = {
  stage : string;
  result : ('a, Stage_error.t) result;
  attempts : attempt list;  (** failed attempts, in execution order *)
}

val recovered : 'a outcome -> bool
(** Succeeded, but only after at least one failed attempt. *)

val retry : ?policy:policy -> stage:string -> (unit -> 'a) -> 'a
val run_stage : ?policy:policy -> stage:string -> (unit -> 'a) -> 'a outcome

val supervised : unit -> bool
(** True inside {!retry} / {!run_stage}; numeric guards arm only then so an
    unsupervised flow stays byte-identical to pre-resilience behavior. *)

val guard_finite : stage:string -> what:string -> float -> float
(** Identity when unsupervised or finite; otherwise raises
    [Stage_failure (Numeric_fault _)]. *)

val with_deadline_ns : int64 -> (unit -> 'a) -> 'a
(** Arm a cooperative deadline [budget] ns from now for the duration of the
    callback (restored on exit; an enclosing tighter deadline wins). *)

val poll_deadline : stage:string -> unit
(** Raise [Stage_failure (Deadline_exceeded _)] if an armed deadline has
    passed. One word read when none is armed. *)

val attempt_json : attempt -> Gap_obs.Json.t
