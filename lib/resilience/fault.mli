(** Deterministic fault injection at named flow sites.

    Follows the same ambient-policy idiom as [Gap_obs] and
    [Gap_netlist.Check]: with no plan armed, every {!point} /
    {!corrupt_float} call is a single word read and the flow's outputs are
    byte-identical to a build without the injector. Under {!with_plan} the
    named sites consult the plan and fail deterministically — a plan says
    {e which hit} of {e which site} fails, never a probability, so a
    campaign replays exactly from its spec (seeds only choose specs).

    Sites may be hit from worker domains (the Monte Carlo shards hit
    [mc.worker]); the armed state is mutex-protected. *)

type spec = {
  site : string;  (** catalog site name, e.g. ["place.sweep"] *)
  kind : Stage_error.fault_kind;
  skip : int;  (** let this many hits pass before injecting *)
  hits : int;  (** then inject on this many consecutive hits *)
}

val spec : ?skip:int -> ?hits:int -> string -> Stage_error.fault_kind -> spec
(** [skip] defaults to 0, [hits] to 1. *)

type report = {
  sites_hit : (string * int) list;  (** every site reached, with hit counts *)
  injected : (string * int) list;  (** sites where a fault actually fired *)
}

val catalog : (string * Stage_error.fault_kind list * string) list
(** Every registered injection site as [(site, applicable kinds,
    description)]. The fault campaign ([repro faults]) iterates this; a site
    instrumented in the flow but missing here will never be exercised, so
    keep the two in sync. [repro faults --list] prints it verbatim, and the
    serve chaos campaign asserts it exercised every site it declares
    reachable from the daemon. *)

val layer : string -> string
(** The site's owning layer: the prefix before the first ['.']
    (["segstore.append"] -> ["segstore"]). *)

val armed : unit -> bool

val point : string -> unit
(** A raise-style site. No-op unless a plan targeting [site] is armed with
    remaining hits, in which case it raises
    [Stage_error.Stage_failure (Injected { site; kind })]. Records the hit
    either way when armed. *)

val corrupt_float : string -> float -> float
(** A data-corruption site: identity unless an armed [Corrupt] spec has
    remaining hits, in which case it returns [nan]. *)

val with_plan : spec list -> (unit -> 'a) -> ('a, exn) result * report
(** Arm the plan for the duration of [f] (plans do not nest; the previous
    plan is restored on exit). Never re-raises: the result carries [f]'s
    value or the escaping exception, alongside the hit/injection report. *)
