module Obs = Gap_obs.Obs
module Json = Gap_obs.Json

type policy = { max_retries : int; backoff_base_ns : int64 }

let default_policy = { max_retries = 2; backoff_base_ns = 1_000_000L }
let no_retry = { max_retries = 0; backoff_base_ns = 0L }

type attempt = { number : int; error : Stage_error.t; backoff_ns : int64 }

type 'a outcome = {
  stage : string;
  result : ('a, Stage_error.t) result;
  attempts : attempt list;
}

let recovered o = Result.is_ok o.result && o.attempts <> []

(* supervision depth: guards arm only when a supervisor is on the stack *)
let depth = ref 0
let supervised () = !depth > 0

let supervise f =
  incr depth;
  Fun.protect ~finally:(fun () -> decr depth) f

let guard_finite ~stage ~what v =
  if !depth > 0 && not (Float.is_finite v) then
    raise
      (Stage_error.Stage_failure (Stage_error.Numeric_fault { stage; what; value = v }));
  v

(* --- cooperative deadlines: (absolute deadline, budget) --- *)

let deadline : (int64 * int64) option ref = ref None

let with_deadline_ns budget f =
  let now = Obs.now_ns () in
  let mine = Int64.add now budget in
  let prev = !deadline in
  let armed =
    match prev with
    | Some (d, b) when d <= mine -> Some (d, b) (* enclosing deadline is tighter *)
    | _ -> Some (mine, budget)
  in
  deadline := armed;
  Fun.protect ~finally:(fun () -> deadline := prev) f

let poll_deadline ~stage =
  match !deadline with
  | None -> ()
  | Some (d, budget) ->
      let now = Obs.now_ns () in
      if now > d then
        raise
          (Stage_error.Stage_failure
             (Stage_error.Deadline_exceeded
                {
                  stage;
                  elapsed_ns = Int64.sub now (Int64.sub d budget);
                  budget_ns = budget;
                }))

let attempt_json a =
  Json.Obj
    [
      ("attempt", Json.Int a.number);
      ("error", Stage_error.to_json a.error);
      ("backoff_ns", Json.Int (Int64.to_int a.backoff_ns));
    ]

(* the shared retry loop: [on_give_up] decides what the final failure
   becomes (raise for [retry], a value for [run_stage]) *)
let run_attempts ~policy ~stage ~on_give_up f =
  supervise (fun () ->
      let rec go number acc =
        match f () with
        | v ->
            if acc <> [] then begin
              Obs.incr "resilience.recovered";
              Obs.event "resilience.recover"
                [ ("stage", Json.Str stage); ("attempts", Json.Int (number + 1)) ]
            end;
            Ok (v, List.rev acc)
        | exception e ->
            let err = Stage_error.of_exn ~stage e in
            if number < policy.max_retries && Stage_error.retryable err then begin
              let backoff_ns =
                Int64.shift_left policy.backoff_base_ns number
              in
              Obs.incr "resilience.retries";
              Obs.incr ~by:(Int64.to_int backoff_ns) "resilience.backoff_ns";
              Obs.event "resilience.retry"
                [
                  ("stage", Json.Str stage);
                  ("attempt", Json.Int number);
                  ("error", Json.Str (Stage_error.to_string err));
                  ("backoff_ns", Json.Int (Int64.to_int backoff_ns));
                ];
              go (number + 1) ({ number; error = err; backoff_ns } :: acc)
            end
            else begin
              Obs.incr "resilience.failures";
              on_give_up ~original:e ~err ~attempts:(List.rev acc) ~number
            end
      in
      go 0 [])

let retry ?(policy = default_policy) ~stage f =
  let res =
    run_attempts ~policy ~stage f ~on_give_up:(fun ~original ~err ~attempts ~number ->
        match (attempts, original) with
        | [], Stage_error.Stage_failure _ -> raise original
        | [], _ when (match err with Stage_error.Unclassified _ -> true | _ -> false)
          ->
            (* nobody recognises it and we never retried: not ours to wrap *)
            raise original
        | [], _ -> raise (Stage_error.Stage_failure err)
        | _ ->
            raise
              (Stage_error.Stage_failure
                 (Stage_error.Exhausted_retries
                    { stage; attempts = number + 1; last = err })))
  in
  match res with Ok (v, _) -> v | Error _ -> assert false

let run_stage ?(policy = default_policy) ~stage f =
  match
    run_attempts ~policy ~stage f ~on_give_up:(fun ~original:_ ~err ~attempts ~number ->
        let final =
          if attempts = [] then err
          else Stage_error.Exhausted_retries { stage; attempts = number + 1; last = err }
        in
        Error (final, attempts))
  with
  | Ok (v, attempts) -> { stage; result = Ok v; attempts }
  | Error (err, attempts) -> { stage; result = Error err; attempts }
