(** The unified error taxonomy for flow stages.

    Every way a stage of the flow (synthesis, placement, STA, Monte Carlo
    variation) can fail is a constructor of {!t}, carrying the owning stage
    and a concrete payload, instead of a bare exception somewhere deep in a
    kernel. The {!Supervisor} converts exceptions escaping a supervised
    stage into these values via {!of_exn}; layers that own richer exception
    types (e.g. [Gap_netlist.Check.Gate_failed]) teach the classifier about
    them with {!register_classifier}. *)

type fault_kind =
  | Transient  (** fails a bounded number of times, then succeeds: retry *)
  | Corrupt  (** silently corrupts a numeric value (NaN): detect + reject *)
  | Deadline  (** budget/deadline exhaustion: degrade, don't retry *)
  | Worker_kill  (** kills a worker domain: rejoin + fall back *)

type t =
  | Netlist_defect of { stage : string; rule : string; detail : string }
      (** a design-rule violation surfaced at a stage boundary *)
  | Numeric_fault of { stage : string; what : string; value : float }
      (** a NaN/infinite quantity where a finite one is required *)
  | Deadline_exceeded of {
      stage : string;
      elapsed_ns : int64;
      budget_ns : int64;
    }
  | Worker_failed of { stage : string; worker : int; error : string }
      (** a worker domain died; [error] is the printed cause *)
  | Injected of { site : string; kind : fault_kind }
      (** a fault deliberately raised by {!Fault} at a named site *)
  | Storage_fault of {
      stage : string;
      store : string;
      segment : string;
      offset : int;
      detail : string;
    }
      (** a persistent store failed validation: corruption before the
          recoverable tail, a malformed manifest, or an I/O failure.
          [segment] is [""] when the defect is not segment-local. *)
  | Exhausted_retries of { stage : string; attempts : int; last : t }
      (** the retry budget ran out; [last] is the final attempt's error *)
  | Interrupted of { stage : string }
      (** a campaign was cut short; resume from the last checkpoint *)
  | Unclassified of { stage : string; exn_text : string }
      (** an exception no classifier recognised *)

exception Stage_failure of t
(** The one exception resilient code raises and supervisors catch. A
    registered printer renders the payload via {!to_string}. *)

val stage : t -> string
(** The owning stage or fault site. *)

val kind_string : fault_kind -> string
(** ["transient"] / ["corrupt"] / ["deadline"] / ["worker-kill"]. *)

val kind_of_string : string -> fault_kind option

val retryable : t -> bool
(** Whether re-running the stage can plausibly succeed: true for
    [Injected Transient] and [Worker_failed], false for everything else
    (corruption persists, deadlines and defects need a different remedy). *)

val to_string : t -> string
val to_json : t -> Gap_obs.Json.t

val register_classifier : (stage:string -> exn -> t option) -> unit
(** Teach {!of_exn} about a library-specific exception. Classifiers run in
    registration order; the first [Some] wins. *)

val of_exn : stage:string -> exn -> t
(** [Stage_failure e] maps to [e]; otherwise the registered classifiers are
    consulted; otherwise [Unclassified] with [Printexc.to_string]. *)
