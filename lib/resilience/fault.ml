module Obs = Gap_obs.Obs

type spec = {
  site : string;
  kind : Stage_error.fault_kind;
  skip : int;
  hits : int;
}

let spec ?(skip = 0) ?(hits = 1) site kind = { site; kind; skip; hits }

type report = {
  sites_hit : (string * int) list;
  injected : (string * int) list;
}

let catalog =
  [
    ("synth.map", [ Stage_error.Transient ], "technology mapping fails transiently; the flow retries");
    ("synth.sizing", [ Stage_error.Transient ], "TILOS sizing fails transiently at stage entry; the flow retries");
    ("sta.analyze", [ Stage_error.Transient ], "timing analysis fails transiently; the caller retries");
    ("place.sweep", [ Stage_error.Transient; Stage_error.Deadline ],
     "an anneal sweep dies; the placer falls back to its best-so-far checkpoint");
    ("place.parasitic", [ Stage_error.Corrupt ],
     "a back-annotated wire delay is corrupted to NaN; gates/STA reject it with a typed diagnostic");
    ("mc.worker", [ Stage_error.Worker_kill ],
     "a Monte Carlo worker domain dies; all domains are joined and the run degrades to sequential");
    ("mc.budget", [ Stage_error.Deadline ],
     "the Monte Carlo budget is exhausted up front; the run degrades to fewer domains");
    ("dse.worker", [ Stage_error.Worker_kill ],
     "a DSE pool worker domain dies after claiming a point; the pool rejoins and \
      re-runs the orphaned points sequentially under supervision");
    ("segstore.append", [ Stage_error.Transient ],
     "a segment-store record append fails transiently before the write; the \
      cache flush retries and duplicate appends stay harmless (last record \
      per key wins)");
    ("segstore.compact", [ Stage_error.Transient ],
     "a segment-store compaction fails transiently before writing the new \
      generation; the old generation stays fully valid and the caller \
      retries");
    ("gap_fpga.lutmap", [ Stage_error.Transient ],
     "LUT covering fails transiently at stage entry; the FPGA backend \
      retries the pure mapping");
    ("gap_fpga.route", [ Stage_error.Corrupt ],
     "a fixed-fabric routing hop delay is corrupted to NaN; strict gates \
      and the supervised STA NaN scan reject it with a typed diagnostic");
    ("serve.batch", [ Stage_error.Transient ],
     "a server scheduler batch dies before evaluation; the scheduler retries \
      the batch, then resolves every attached request with a typed error \
      instead of wedging its clients");
  ]

let layer site =
  match String.index_opt site '.' with
  | Some i -> String.sub site 0 i
  | None -> site

(* armed state: one option read when off; mutex-protected because worker
   domains hit sites too *)
type slot = { s_kind : Stage_error.fault_kind; mutable s_skip : int; mutable s_hits : int }

type state = {
  lock : Mutex.t;
  slots : (string, slot) Hashtbl.t;
  hit_counts : (string, int ref) Hashtbl.t;
  mutable hit_order : string list;  (* reverse first-hit order *)
  inj_counts : (string, int ref) Hashtbl.t;
  mutable inj_order : string list;
}

let ambient : state option ref = ref None
let armed () = Option.is_some !ambient

let locked st f =
  Mutex.lock st.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.lock) f

let bump tbl order name =
  (match Hashtbl.find_opt tbl name with
  | Some c -> incr c
  | None ->
      Hashtbl.add tbl name (ref 1);
      order := name :: !order);
  ()

(* decide under the lock; raise outside it *)
let consume st site =
  locked st (fun () ->
      let o = ref st.hit_order in
      bump st.hit_counts o site;
      st.hit_order <- !o;
      match Hashtbl.find_opt st.slots site with
      | None -> None
      | Some slot ->
          if slot.s_skip > 0 then begin
            slot.s_skip <- slot.s_skip - 1;
            None
          end
          else if slot.s_hits > 0 then begin
            slot.s_hits <- slot.s_hits - 1;
            let o = ref st.inj_order in
            bump st.inj_counts o site;
            st.inj_order <- !o;
            Some slot.s_kind
          end
          else None)

let point site =
  match !ambient with
  | None -> ()
  | Some st -> (
      match consume st site with
      | None -> ()
      | Some kind ->
          Obs.incr "fault.injected";
          Obs.event "fault.inject"
            [
              ("site", Gap_obs.Json.Str site);
              ("kind", Gap_obs.Json.Str (Stage_error.kind_string kind));
            ];
          raise (Stage_error.Stage_failure (Stage_error.Injected { site; kind })))

let corrupt_float site v =
  match !ambient with
  | None -> v
  | Some st -> (
      match consume st site with
      | Some Stage_error.Corrupt ->
          Obs.incr "fault.injected";
          Obs.event "fault.inject"
            [
              ("site", Gap_obs.Json.Str site);
              ("kind", Gap_obs.Json.Str (Stage_error.kind_string Stage_error.Corrupt));
            ];
          Float.nan
      | Some kind ->
          (* a raise-kind spec armed at a corruption site still raises *)
          Obs.incr "fault.injected";
          raise (Stage_error.Stage_failure (Stage_error.Injected { site; kind }))
      | None -> v)

let with_plan specs f =
  let st =
    {
      lock = Mutex.create ();
      slots = Hashtbl.create 8;
      hit_counts = Hashtbl.create 16;
      hit_order = [];
      inj_counts = Hashtbl.create 8;
      inj_order = [];
    }
  in
  List.iter
    (fun s ->
      Hashtbl.replace st.slots s.site
        { s_kind = s.kind; s_skip = s.skip; s_hits = s.hits })
    specs;
  let prev = !ambient in
  ambient := Some st;
  let result =
    Fun.protect
      ~finally:(fun () -> ambient := prev)
      (fun () -> match f () with v -> Ok v | exception e -> Error e)
  in
  let dump counts order =
    List.rev_map (fun name -> (name, !(Hashtbl.find counts name))) order
  in
  (result, { sites_hit = dump st.hit_counts st.hit_order;
             injected = dump st.inj_counts st.inj_order })
