(** Half-perimeter wirelength: the standard placement cost model. *)

val of_points : (float * float) list -> float
(** Bounding-box semi-perimeter of a set of pin locations (um). Empty or
    singleton sets cost 0. *)

val net_length_um : Gap_netlist.Netlist.t -> int -> float
(** HPWL of one net from the placed locations of its driver and sink
    instances; unplaced pins and port pins are skipped. *)

val total_um : Gap_netlist.Netlist.t -> float

(** Incremental HPWL for annealing: per-net bounding boxes plus CSR pin/net
    adjacency, updated in O(pins of the moved instance) per move with a
    recompute-on-shrink fallback. Cached per-net lengths are bit-identical to
    {!net_length_um} on the same placement. *)
module Cache : sig
  type t

  val create : Gap_netlist.Netlist.t -> t
  (** Snapshot of the netlist's current instance locations. *)

  val move : t -> int -> x_um:float -> y_um:float -> unit
  (** [move c i ~x_um ~y_um] places instance [i] (writing through to the
      netlist) and refreshes the bounding boxes of every net touching it. *)

  val net_length_um : t -> int -> float
  val total_um : t -> float
  (** Sum of the cached per-net lengths in ascending net order — the same
      fold as a from-scratch {!Hpwl.total_um} over the same placement. *)

  val lengths : t -> float array
  (** The internal per-net length array, indexed by net id. Read-only view
      for hot loops; do not mutate. *)

  val nets_of_instance : t -> int -> int array
  (** Sorted, deduplicated ids of the nets touching an instance (its output
      net plus fanins); a fresh array. *)

  (** {2 Snapshot / rollback}

      A rejection-heavy annealer saves the affected nets' boxes before a
      trial move and restores them verbatim on reject, instead of paying for
      the inverse moves. [rollback] restores exactly the floats [snapshot]
      saved. The caller must also restore the moved instances' mirrored
      coordinates with {!set_xy}; netlist locations are left stale until the
      caller re-commits its placement (annealing never reads them). *)

  val snapshot : t -> int array -> int -> unit
  (** [snapshot c nets m] saves the boxes of [nets.(0 .. m-1)]. *)

  val rollback : t -> int array -> int -> unit
  (** [rollback c nets m] restores what the last [snapshot] saved; [nets]
      and [m] must match that call. *)

  val set_xy : t -> int -> x_um:float -> y_um:float -> unit
  (** Restore an already-placed instance's mirrored coordinates without
      touching any net box — only meaningful as part of rollback. *)
end
