module Netlist = Gap_netlist.Netlist

let of_points = function
  | [] | [ _ ] -> 0.
  | (x0, y0) :: rest ->
      let xmin = ref x0 and xmax = ref x0 and ymin = ref y0 and ymax = ref y0 in
      List.iter
        (fun (x, y) ->
          if x < !xmin then xmin := x;
          if x > !xmax then xmax := x;
          if y < !ymin then ymin := y;
          if y > !ymax then ymax := y)
        rest;
      !xmax -. !xmin +. (!ymax -. !ymin)

let net_points nl net =
  let pts = ref [] in
  (match Netlist.driver_of nl net with
  | Netlist.From_cell i -> (
      match Netlist.location nl i with Some p -> pts := p :: !pts | None -> ())
  | Netlist.From_input _ | Netlist.From_const _ | Netlist.Undriven -> ());
  List.iter
    (function
      | Netlist.To_pin (i, _) -> (
          match Netlist.location nl i with Some p -> pts := p :: !pts | None -> ())
      | Netlist.To_output _ -> ())
    (Netlist.sinks_of nl net);
  !pts

let net_length_um nl net = of_points (net_points nl net)

let total_um nl =
  let acc = ref 0. in
  for net = 0 to Netlist.num_nets nl - 1 do
    acc := !acc +. net_length_um nl net
  done;
  !acc

(* ---- incremental cache ---------------------------------------------------

   Per-net bounding boxes plus CSR pin/net adjacency, so an annealing move
   costs O(pins of the moved instance) instead of re-walking every net's sink
   list. Moving a pin off a bounding-box edge can shrink the box, which a box
   alone cannot tell; those nets are recomputed from their (few) pins — the
   classic recompute-on-shrink fallback. Cached per-net lengths are exact
   (bit-identical to [net_length_um]) because mins/maxes do not depend on the
   order they were folded in. *)

module Cache = struct
  type t = {
    nl : Netlist.t;
    (* instance coordinates mirrored out of the netlist *)
    inst_x : float array;
    inst_y : float array;
    placed : bool array;
    (* net -> distinct instances with a pin on it (driver or sink), CSR *)
    pin_off : int array;
    pin_inst : int array;
    (* instance -> distinct nets it touches (output + fanins), CSR, sorted *)
    net_off : int array;
    net_ids : int array;
    (* per-net bounding box over placed pins *)
    xmin : float array;
    xmax : float array;
    ymin : float array;
    ymax : float array;
    npts : int array;  (** number of placed distinct pin instances *)
    len : float array;
    (* scratch for snapshot/rollback: 5 floats per saved net
       (xmin xmax ymin ymax len) plus its pin count *)
    mutable snap_box : float array;
    mutable snap_npts : int array;
  }

  let net_length_um c net = c.len.(net)
  let lengths c = c.len

  let total_um c =
    (* ascending-index fold, the same order as a from-scratch [total_um] *)
    let acc = ref 0. in
    for net = 0 to Array.length c.len - 1 do
      acc := !acc +. c.len.(net)
    done;
    !acc

  let nets_of_instance c i =
    Array.sub c.net_ids c.net_off.(i) (c.net_off.(i + 1) - c.net_off.(i))

  let box_length c net =
    if c.npts.(net) = 0 then 0.
    else c.xmax.(net) -. c.xmin.(net) +. (c.ymax.(net) -. c.ymin.(net))

  let recompute c net =
    let xmin = ref infinity and xmax = ref neg_infinity in
    let ymin = ref infinity and ymax = ref neg_infinity in
    let count = ref 0 in
    for k = c.pin_off.(net) to c.pin_off.(net + 1) - 1 do
      let i = c.pin_inst.(k) in
      if c.placed.(i) then begin
        incr count;
        let x = c.inst_x.(i) and y = c.inst_y.(i) in
        if x < !xmin then xmin := x;
        if x > !xmax then xmax := x;
        if y < !ymin then ymin := y;
        if y > !ymax then ymax := y
      end
    done;
    c.npts.(net) <- !count;
    c.xmin.(net) <- !xmin;
    c.xmax.(net) <- !xmax;
    c.ymin.(net) <- !ymin;
    c.ymax.(net) <- !ymax;
    c.len.(net) <- box_length c net

  let sorted_uniq a =
    (* int net ids: monomorphic compare, not the polymorphic fallback *)
    Array.sort Int.compare a;
    let n = Array.length a in
    if n = 0 then a
    else begin
      let w = ref 1 in
      for k = 1 to n - 1 do
        if a.(k) <> a.(!w - 1) then begin
          a.(!w) <- a.(k);
          incr w
        end
      done;
      Array.sub a 0 !w
    end

  let create nl =
    let ninsts = Netlist.num_instances nl in
    let nnets = Netlist.num_nets nl in
    let inst_x = Array.make (max 1 ninsts) 0. in
    let inst_y = Array.make (max 1 ninsts) 0. in
    let placed = Array.make (max 1 ninsts) false in
    for i = 0 to ninsts - 1 do
      match Netlist.location nl i with
      | Some (x, y) ->
          inst_x.(i) <- x;
          inst_y.(i) <- y;
          placed.(i) <- true
      | None -> ()
    done;
    (* instance -> nets (sorted, deduped) *)
    let per_inst =
      Array.init ninsts (fun i ->
          let nets = Array.make (1 + Netlist.num_fanins nl i) (Netlist.out_net nl i) in
          let k = ref 1 in
          Netlist.iter_fanins nl i (fun net ->
              nets.(!k) <- net;
              incr k);
          sorted_uniq nets)
    in
    let net_off = Array.make (ninsts + 1) 0 in
    for i = 0 to ninsts - 1 do
      net_off.(i + 1) <- net_off.(i) + Array.length per_inst.(i)
    done;
    let net_ids = Array.make (max 1 net_off.(ninsts)) 0 in
    Array.iteri (fun i nets -> Array.blit nets 0 net_ids net_off.(i) (Array.length nets)) per_inst;
    (* net -> pin instances (deduped) *)
    let per_net =
      Array.init nnets (fun net ->
          let acc = ref [] in
          (match Netlist.driver_of nl net with
          | Netlist.From_cell i -> acc := i :: !acc
          | Netlist.From_input _ | Netlist.From_const _ | Netlist.Undriven -> ());
          List.iter
            (function
              | Netlist.To_pin (i, _) -> acc := i :: !acc
              | Netlist.To_output _ -> ())
            (Netlist.sinks_of nl net);
          sorted_uniq (Array.of_list !acc))
    in
    let pin_off = Array.make (nnets + 1) 0 in
    for net = 0 to nnets - 1 do
      pin_off.(net + 1) <- pin_off.(net) + Array.length per_net.(net)
    done;
    let pin_inst = Array.make (max 1 pin_off.(nnets)) 0 in
    Array.iteri (fun net pins -> Array.blit pins 0 pin_inst pin_off.(net) (Array.length pins)) per_net;
    let c =
      {
        nl;
        inst_x;
        inst_y;
        placed;
        pin_off;
        pin_inst;
        net_off;
        net_ids;
        xmin = Array.make (max 1 nnets) infinity;
        xmax = Array.make (max 1 nnets) neg_infinity;
        ymin = Array.make (max 1 nnets) infinity;
        ymax = Array.make (max 1 nnets) neg_infinity;
        npts = Array.make (max 1 nnets) 0;
        len = Array.make (max 1 nnets) 0.;
        snap_box = [||];
        snap_npts = [||];
      }
    in
    for net = 0 to nnets - 1 do
      recompute c net
    done;
    c

  let move c i ~x_um ~y_um =
    Netlist.place c.nl i ~x_um ~y_um;
    let was_placed = c.placed.(i) in
    let x0 = c.inst_x.(i) and y0 = c.inst_y.(i) in
    c.placed.(i) <- true;
    c.inst_x.(i) <- x_um;
    c.inst_y.(i) <- y_um;
    for k = c.net_off.(i) to c.net_off.(i + 1) - 1 do
      let net = c.net_ids.(k) in
      let on_boundary =
        was_placed
        && (x0 = c.xmin.(net) || x0 = c.xmax.(net) || y0 = c.ymin.(net)
          || y0 = c.ymax.(net))
      in
      if on_boundary then recompute c net
      else begin
        (* old point strictly inside the box (or newly placed): the box can
           only grow *)
        if not was_placed then c.npts.(net) <- c.npts.(net) + 1;
        if x_um < c.xmin.(net) then c.xmin.(net) <- x_um;
        if x_um > c.xmax.(net) then c.xmax.(net) <- x_um;
        if y_um < c.ymin.(net) then c.ymin.(net) <- y_um;
        if y_um > c.ymax.(net) then c.ymax.(net) <- y_um;
        c.len.(net) <- box_length c net
      end
    done

  (* Snapshot / rollback: an annealer that rejects most moves can save the
     affected nets' boxes up front and restore them verbatim instead of
     re-running the (recompute-heavy) inverse moves. The restored floats are
     the saved ones, bit for bit. *)

  let snapshot c nets m =
    if Array.length c.snap_npts < m then begin
      c.snap_box <- Array.make (5 * m) 0.;
      c.snap_npts <- Array.make m 0
    end;
    for k = 0 to m - 1 do
      let net = nets.(k) in
      let b = 5 * k in
      c.snap_box.(b) <- c.xmin.(net);
      c.snap_box.(b + 1) <- c.xmax.(net);
      c.snap_box.(b + 2) <- c.ymin.(net);
      c.snap_box.(b + 3) <- c.ymax.(net);
      c.snap_box.(b + 4) <- c.len.(net);
      c.snap_npts.(k) <- c.npts.(net)
    done

  let rollback c nets m =
    for k = 0 to m - 1 do
      let net = nets.(k) in
      let b = 5 * k in
      c.xmin.(net) <- c.snap_box.(b);
      c.xmax.(net) <- c.snap_box.(b + 1);
      c.ymin.(net) <- c.snap_box.(b + 2);
      c.ymax.(net) <- c.snap_box.(b + 3);
      c.len.(net) <- c.snap_box.(b + 4);
      c.npts.(net) <- c.snap_npts.(k)
    done

  let set_xy c i ~x_um ~y_um =
    c.inst_x.(i) <- x_um;
    c.inst_y.(i) <- y_um
end
