module Netlist = Gap_netlist.Netlist

type result = {
  routed_len_um : float array;
  total_len_um : float;
  overflowed_cells : int;
  max_usage : int;
  capacity : int;
  grid_side : int;
}

(* pins of a net as placed instance locations *)
let net_pins nl net =
  let pts = ref [] in
  (match Netlist.driver_of nl net with
  | Netlist.From_cell i -> (
      match Netlist.location nl i with Some p -> pts := p :: !pts | None -> ())
  | _ -> ());
  List.iter
    (function
      | Netlist.To_pin (i, _) -> (
          match Netlist.location nl i with Some p -> pts := p :: !pts | None -> ())
      | Netlist.To_output _ -> ())
    (Netlist.sinks_of nl net);
  !pts

let route ?(capacity = 8) nl =
  assert (capacity >= 1);
  (* grid geometry from the placement extent *)
  let max_x = ref 0. and max_y = ref 0. and pitch = ref 0. in
  let placed = ref 0 in
  for i = 0 to Netlist.num_instances nl - 1 do
    match Netlist.location nl i with
    | Some (x, y) ->
        incr placed;
        if x > !max_x then max_x := x;
        if y > !max_y then max_y := y
    | None -> ()
  done;
  if !placed = 0 then invalid_arg "Router.route: netlist is not placed";
  (* infer pitch as the smallest non-zero coordinate step; fall back to area *)
  pitch := sqrt (Netlist.area_um2 nl /. float_of_int (max 1 !placed));
  let pitch = Float.max 1. !pitch in
  let side = 2 + int_of_float (Float.max !max_x !max_y /. pitch) in
  let cell_of (x, y) =
    let cx = min (side - 1) (max 0 (int_of_float (x /. pitch))) in
    let cy = min (side - 1) (max 0 (int_of_float (y /. pitch))) in
    (cx, cy)
  in
  let usage = Array.make (side * side) 0 in
  let idx cx cy = (cy * side) + cx in
  (* Dijkstra between two grid cells; cost 1 + congestion penalty per step *)
  let dist = Array.make (side * side) infinity in
  let touched = ref [] in
  let route_two (sx, sy) (tx, ty) =
    List.iter (fun i -> dist.(i) <- infinity) !touched;
    touched := [];
    let heap = Gap_util.Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
    let push d cell =
      if d < dist.(cell) then begin
        if dist.(cell) = infinity then touched := cell :: !touched;
        dist.(cell) <- d;
        Gap_util.Heap.push heap (d, cell)
      end
    in
    let prev = Hashtbl.create 64 in
    push 0. (idx sx sy);
    let target = idx tx ty in
    let found = ref false in
    while (not !found) && not (Gap_util.Heap.is_empty heap) do
      match Gap_util.Heap.pop heap with
      | None -> ()
      | Some (d, cell) ->
          if cell = target then found := true
          else if d <= dist.(cell) then begin
            let cx = cell mod side and cy = cell / side in
            let consider nx ny =
              if nx >= 0 && nx < side && ny >= 0 && ny < side then begin
                let ncell = idx nx ny in
                let u = usage.(ncell) in
                let penalty =
                  if u < capacity then float_of_int u /. float_of_int capacity
                  else 4. *. float_of_int (u - capacity + 1)
                in
                let nd = d +. 1. +. penalty in
                if nd < dist.(ncell) then begin
                  Hashtbl.replace prev ncell cell;
                  push nd ncell
                end
              end
            in
            consider (cx + 1) cy;
            consider (cx - 1) cy;
            consider cx (cy + 1);
            consider cx (cy - 1)
          end
    done;
    if not !found then 0
    else begin
      (* walk back, bump usage, count steps *)
      let steps = ref 0 in
      let cur = ref target in
      let src = idx sx sy in
      while !cur <> src do
        usage.(!cur) <- usage.(!cur) + 1;
        incr steps;
        cur := Hashtbl.find prev !cur
      done;
      usage.(src) <- usage.(src) + 1;
      !steps
    end
  in
  let routed = Array.make (max 1 (Netlist.num_nets nl)) 0. in
  for net = 0 to Netlist.num_nets nl - 1 do
    let pins = List.map cell_of (net_pins nl net) in
    let pins =
      (* (cx, cy) int pairs: monomorphic compare, not the polymorphic fallback *)
      List.sort_uniq
        (fun (ax, ay) (bx, by) ->
          match Int.compare ax bx with 0 -> Int.compare ay by | c -> c)
        pins
    in
    match pins with
    | [] | [ _ ] -> ()
    | first :: rest ->
        (* connect each remaining pin to the nearest already-connected one *)
        let connected = ref [ first ] in
        let remaining = ref rest in
        let total = ref 0 in
        while !remaining <> [] do
          (* nearest (connected, remaining) pair *)
          let best = ref None in
          List.iter
            (fun (rx, ry) ->
              List.iter
                (fun (cx, cy) ->
                  let d = abs (rx - cx) + abs (ry - cy) in
                  match !best with
                  | Some (bd, _, _) when bd <= d -> ()
                  | _ -> best := Some (d, (cx, cy), (rx, ry)))
                !connected)
            !remaining;
          match !best with
          | None -> remaining := []
          | Some (_, from_cell, to_cell) ->
              total := !total + route_two from_cell to_cell;
              connected := to_cell :: !connected;
              remaining := List.filter (fun p -> p <> to_cell) !remaining
        done;
        routed.(net) <- float_of_int !total *. pitch
  done;
  let overflowed = Array.fold_left (fun acc u -> if u > capacity then acc + 1 else acc) 0 usage in
  let max_usage = Array.fold_left max 0 usage in
  {
    routed_len_um = routed;
    total_len_um = Array.fold_left ( +. ) 0. routed;
    overflowed_cells = overflowed;
    max_usage;
    capacity;
    grid_side = side;
  }

let annotate nl r =
  let tech = Gap_liberty.Library.tech (Netlist.lib nl) in
  let wire = Gap_interconnect.Wire.of_tech tech in
  let drv = Gap_interconnect.Repeater.default_driver tech in
  for net = 0 to Netlist.num_nets nl - 1 do
    let len = r.routed_len_um.(net) in
    if len > 0. then begin
      Netlist.set_wire_cap_ff nl net (Gap_interconnect.Wire.total_c_ff wire ~length_um:len);
      let bare = Gap_interconnect.Wire.rc_delay_ps wire ~length_um:len in
      Netlist.set_wire_delay_ps nl net
        (Float.min bare (Gap_interconnect.Repeater.optimal_delay_ps drv wire ~length_um:len))
    end
  done;
  Gap_netlist.Check.gate ~placed:true ~stage:"place.route_annotate" nl

let detour_factor nl r =
  let hpwl = Hpwl.total_um nl in
  if hpwl <= 0. then 1. else r.total_len_um /. hpwl
