module Netlist = Gap_netlist.Netlist

let annotate ?(use_repeaters = true) nl =
  let tech = Gap_liberty.Library.tech (Netlist.lib nl) in
  let wire = Gap_interconnect.Wire.of_tech tech in
  let drv = Gap_interconnect.Repeater.default_driver tech in
  for net = 0 to Netlist.num_nets nl - 1 do
    let len = Hpwl.net_length_um nl net in
    if len > 0. then begin
      Netlist.set_wire_cap_ff nl net (Gap_interconnect.Wire.total_c_ff wire ~length_um:len);
      let bare = Gap_interconnect.Wire.rc_delay_ps wire ~length_um:len in
      let delay =
        if use_repeaters then
          Float.min bare
            (Gap_interconnect.Repeater.optimal_delay_ps drv wire ~length_um:len)
        else bare
      in
      (* fault site: a corrupted (NaN) wire delay must be caught by the
         bad-parasitic gate rule or the supervised STA NaN scan downstream *)
      Netlist.set_wire_delay_ps nl net
        (Gap_resilience.Fault.corrupt_float "place.parasitic" delay)
    end
  done;
  Gap_netlist.Check.gate ~placed:true ~stage:"place.annotate" nl

let clear nl = Netlist.clear_parasitics nl
